//! Checkers for the paper's §5.3 headline system claims.

use apollo_nn::ModelConfig;
use apollo_optim::memory::MethodSpec;

use crate::gpu::Gpu;
use crate::memory::{MemoryOptions, TrainingMemoryModel, WeightPrecision};

/// Outcome of one claim check.
#[derive(Debug, Clone, PartialEq)]
pub struct ClaimResult {
    /// What was checked.
    pub claim: String,
    /// Estimated memory requirement, GiB.
    pub required_gib: f64,
    /// Capacity of the target GPU, GiB.
    pub capacity_gib: f64,
    /// Whether the claim holds under the model.
    pub holds: bool,
}

fn check(claim: &str, required: f64, gpu: &Gpu) -> ClaimResult {
    ClaimResult {
        claim: claim.to_string(),
        required_gib: required,
        capacity_gib: gpu.memory_gib,
        holds: required <= gpu.memory_gib,
    }
}

/// §5.3: "APOLLO-Mini unlocks pre-training LLaMA-13B on A100 80GB with
/// naive DDP" (per-GPU footprint must fit, no sharding).
pub fn llama_13b_ddp_on_a100() -> ClaimResult {
    let mem = TrainingMemoryModel::new(&ModelConfig::llama_13b());
    let opts = MemoryOptions::figure1(256);
    let total = mem.breakdown(MethodSpec::ApolloMini, &opts).total_gib();
    check(
        "LLaMA-13B + APOLLO-Mini fits one A100-80GB (naive DDP, bs 1)",
        total,
        &Gpu::a100_80g(),
    )
}

/// The same 13B check for AdamW — expected to *fail*, which is why the
/// paper calls the APOLLO-Mini result an unlock.
pub fn llama_13b_ddp_adamw_counterfactual() -> ClaimResult {
    let mem = TrainingMemoryModel::new(&ModelConfig::llama_13b());
    // AdamW under naive DDP cannot use the layer-wise trick (the full
    // gradient must exist for the bucketed all-reduce).
    let opts = MemoryOptions::standard(1, 256);
    let total = mem.breakdown(MethodSpec::AdamW, &opts).total_gib();
    check(
        "LLaMA-13B + AdamW fits one A100-80GB (counterfactual)",
        total,
        &Gpu::a100_80g(),
    )
}

/// §5.3: "Combination with weight quantization unlocks pre-training
/// LLaMA-7B under 12 GB" (Q-APOLLO-Mini: INT8 weights, layer-wise grads).
pub fn llama_7b_under_12gb() -> ClaimResult {
    let mem = TrainingMemoryModel::new(&ModelConfig::llama_7b());
    let opts = MemoryOptions {
        weights: WeightPrecision::Int8 { group: 128 },
        ..MemoryOptions::figure1(256)
    };
    let total = mem.breakdown(MethodSpec::ApolloMini, &opts).total_gib();
    check(
        "LLaMA-7B + Q-APOLLO-Mini fits a 12 GB GPU (layer-wise grads, bs 1)",
        total,
        &Gpu::consumer_12g(),
    )
}

/// The 7B/12GB check for full-precision AdamW — the counterfactual that
/// fails by a wide margin.
pub fn llama_7b_adamw_counterfactual() -> ClaimResult {
    let mem = TrainingMemoryModel::new(&ModelConfig::llama_7b());
    let total = mem
        .breakdown(MethodSpec::AdamW, &MemoryOptions::standard(1, 256))
        .total_gib();
    check(
        "LLaMA-7B + AdamW fits a 12 GB GPU (counterfactual)",
        total,
        &Gpu::consumer_12g(),
    )
}

/// All claim checks, for the report binary.
pub fn all_claims() -> Vec<ClaimResult> {
    vec![
        llama_13b_ddp_on_a100(),
        llama_13b_ddp_adamw_counterfactual(),
        llama_7b_under_12gb(),
        llama_7b_adamw_counterfactual(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apollo_mini_13b_claim_holds() {
        let r = llama_13b_ddp_on_a100();
        assert!(r.holds, "required {} GiB", r.required_gib);
    }

    #[test]
    fn adamw_13b_counterfactual_fails() {
        let r = llama_13b_ddp_adamw_counterfactual();
        assert!(!r.holds, "AdamW 13B should NOT fit: {} GiB", r.required_gib);
    }

    #[test]
    fn q_apollo_mini_7b_under_12gb_holds() {
        let r = llama_7b_under_12gb();
        assert!(r.holds, "required {} GiB", r.required_gib);
        // The paper says ~11 GB; sanity-check we're in that band, not at 2.
        assert!(
            (6.0..12.0).contains(&r.required_gib),
            "required {}",
            r.required_gib
        );
    }

    #[test]
    fn adamw_7b_counterfactual_fails_hugely() {
        let r = llama_7b_adamw_counterfactual();
        assert!(!r.holds);
        assert!(r.required_gib > 3.0 * r.capacity_gib);
    }

    #[test]
    fn all_claims_reports_four() {
        assert_eq!(all_claims().len(), 4);
    }
}
