#!/bin/sh
# Regenerates every table and figure. Logs to results/logs/<id>.log and
# JSON to results/<id>.json. APOLLO_SCALE can trade fidelity vs time.
set -x
run() {
  bin=$1; scale=${2:-1}
  APOLLO_SCALE=$scale cargo run -q --release -p apollo-bench --bin "$bin" \
    > "results/logs/$bin.log" 2>&1
}
# Analytic (instant)
run table1_memory
run fig1_memory
run fig1_throughput
run claims_system
# Training-based, most important first
run table2_pretrain "$APOLLO_SCALE_T2"
run fig5_projection_rank
run table3_llama7b
run fig2_llama7b
run fig3_structured_lr
run fig4_ratio
run fig6_curves
run fig7_longcontext
run fig9_svd_spikes
run table4_commonsense
run table5_mmlu
run table6_quantized
run table7_granularity
run ablations
