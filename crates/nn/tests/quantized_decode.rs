//! Fast-tier tolerance contract for the INT8+BF16 decode path.
//!
//! The exact decode path promises bit-equivalence
//! (`decode_equivalence.rs`); the quantized path promises *bounded drift*
//! instead. These tests pin that bound against the dequantized-weight
//! oracle under the same adversarial schedules the exact contract uses:
//! chunked prefill, interleaved multi-sequence batches, and long
//! single-token decode runs.

use apollo_nn::{DecodeBackend, KvCache, LinearMode, LlamaModel, ModelConfig, QuantizedModel};
use apollo_tensor::{Matrix, Rng};

fn tiny_pair(seed: u64) -> (LlamaModel, QuantizedModel) {
    let cfg = ModelConfig::test_tiny();
    let mut rng = Rng::seed_from_u64(seed);
    let model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
    let qm = QuantizedModel::from_model(&model);
    (model, qm)
}

/// Relative-error bound between the quantized decode and the dequantized
/// oracle. Quantization error is excluded by construction (the oracle
/// holds the same dequantized weights); what remains is BF16 KV rounding
/// (2⁻⁸ relative per element) compounded across layers/positions plus the
/// Fast-tier arithmetic drift.
const DECODE_TOL: f32 = 3e-2;

fn assert_rows_close(step: &str, exact: &Matrix, fast: &Matrix) {
    assert_eq!(exact.shape(), fast.shape(), "{step}: shape");
    for (a, b) in exact.as_slice().iter().zip(fast.as_slice()) {
        assert!(
            (a - b).abs() <= DECODE_TOL * a.abs().max(1.0),
            "{step}: {a} vs {b}"
        );
    }
}

#[test]
fn chunked_prefill_tracks_oracle_within_tolerance() {
    let (model, qm) = tiny_pair(0xA1);
    let oracle = qm.dequantize_into(&model);
    let mut rng = Rng::seed_from_u64(1);
    let vocab = model.config().vocab_size;
    let tokens: Vec<u32> = (0..17).map(|_| rng.below(vocab) as u32).collect();

    // Prefill in ragged chunks (3, then 7, then the rest), then decode.
    let mut ec: Vec<KvCache> = vec![oracle.new_kv_cache(32)];
    let mut qc = vec![qm.new_kv_cache(32)];
    for chunk in [&tokens[..3], &tokens[3..10], &tokens[10..]] {
        let rows: Vec<(usize, u32)> = chunk.iter().map(|&t| (0, t)).collect();
        let he = oracle.forward_cached(&mut ec, &rows);
        let hq = qm.forward_cached(&mut qc, &rows);
        assert_rows_close("prefill chunk", &he, &hq);
    }
    for step in 0..8 {
        let t = (step * 5 % vocab) as u32;
        let he = oracle.forward_cached(&mut ec, &[(0, t)]);
        let hq = qm.forward_cached(&mut qc, &[(0, t)]);
        assert_rows_close(&format!("decode step {step}"), &he, &hq);
        let le = oracle.lm_logits(&he);
        let lq = qm.lm_logits(&hq);
        assert_rows_close(&format!("logits step {step}"), &le, &lq);
    }
}

#[test]
fn interleaved_batches_track_oracle_within_tolerance() {
    let (model, qm) = tiny_pair(0xA2);
    let oracle = qm.dequantize_into(&model);
    let vocab = model.config().vocab_size;

    // Two sequences interleaved in one call, then asymmetric continuation:
    // the quantized path must respect the same row/position semantics.
    let mut ec: Vec<KvCache> = (0..2).map(|_| oracle.new_kv_cache(16)).collect();
    let mut qc = (0..2).map(|_| qm.new_kv_cache(16)).collect::<Vec<_>>();
    let schedule: &[&[(usize, u32)]] = &[
        &[(0, 1), (1, 2), (0, 3), (1, 4), (1, 5)],
        &[(1, 6), (0, 7)],
        &[(0, 8), (0, 9), (1, 10)],
    ];
    for (i, rows) in schedule.iter().enumerate() {
        assert!(rows.iter().all(|&(_, t)| (t as usize) < vocab));
        let he = oracle.forward_cached(&mut ec, rows);
        let hq = qm.forward_cached(&mut qc, rows);
        assert_rows_close(&format!("batch call {i}"), &he, &hq);
    }
    assert_eq!(qc[0].len(), 5);
    assert_eq!(qc[1].len(), 5);
}

#[test]
fn backend_greedy_decode_mostly_agrees_with_exact_over_long_horizon() {
    // End-to-end through the DecodeBackend interface: greedy (argmax)
    // token streams from the exact backend and the INT8 snapshot of the
    // same weights should agree at nearly every step for a random init.
    let (model, qm) = tiny_pair(0xA3);
    let vocab = model.config().vocab_size;
    let exact: DecodeBackend = model.into();
    let int8: DecodeBackend = qm.into();

    let horizon = 24usize;
    let run = |b: &DecodeBackend| -> Vec<u32> {
        let mut caches = b.new_caches(1, horizon + 4);
        let mut out = Vec::new();
        let mut h = b.forward_cached(&mut caches, &[(0, 2), (0, 5), (0, 11)]);
        for _ in 0..horizon {
            let mut row = Matrix::zeros(1, h.cols());
            row.row_mut(0).copy_from_slice(h.row(h.rows() - 1));
            let logits = b.lm_logits(&row);
            let l = logits.row(0);
            let tok = (0..l.len()).max_by(|&a, &b| l[a].total_cmp(&l[b])).unwrap() as u32;
            assert!((tok as usize) < vocab);
            out.push(tok);
            h = b.forward_cached(&mut caches, &[(0, tok)]);
        }
        out
    };
    let te = run(&exact);
    let tq = run(&int8);
    let agree = te.iter().zip(&tq).filter(|(a, b)| a == b).count();
    assert!(
        agree * 10 >= horizon * 7,
        "only {agree}/{horizon} greedy tokens agree: {te:?} vs {tq:?}"
    );
}
