//! End-to-end determinism and behaviour tests for the PBT driver.

use apollo_obs::{Obs, TraceEvent};
use apollo_search::{run_search, SearchConfig};

fn tiny(seed: u64) -> SearchConfig {
    SearchConfig {
        rounds: 3,
        round_steps: 4,
        batch: 2,
        eval_seqs: 4,
        ..SearchConfig::tiny(seed)
    }
}

#[test]
fn same_seed_gives_byte_identical_frontier_json() {
    let cfg = tiny(7);
    let a = run_search(&cfg, &Obs::disabled()).unwrap();
    let b = run_search(&cfg, &Obs::disabled()).unwrap();
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "two runs with the same seed must serialize byte-identically"
    );
}

#[test]
fn different_seeds_diverge() {
    let a = run_search(&tiny(7), &Obs::disabled()).unwrap();
    let b = run_search(&tiny(8), &Obs::disabled()).unwrap();
    assert_ne!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap()
    );
}

#[test]
fn thread_count_does_not_change_results() {
    // The per-member thread pin changes scheduling, never numerics: the
    // tensor kernels partition deterministically at any thread count.
    let one = tiny(9);
    let four = SearchConfig {
        threads_per_member: 4,
        ..tiny(9)
    };
    let a = run_search(&one, &Obs::disabled()).unwrap();
    let b = run_search(&four, &Obs::disabled()).unwrap();
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "thread count must not leak into the frontier"
    );
}

#[test]
fn exploit_replaces_the_bottom_quantile_each_round() {
    let cfg = tiny(7);
    let report = run_search(&cfg, &Obs::disabled()).unwrap();
    // quantile 0.25 of 4 members = 1 clone per boundary, no clone after
    // the final round.
    assert_eq!(report.lineage.len(), cfg.rounds - 1);
    assert_eq!(report.rounds_log.len(), cfg.rounds);
    for (i, r) in report.rounds_log.iter().enumerate() {
        assert_eq!(r.round, i);
        assert_eq!(r.step, (i + 1) * cfg.round_steps);
        assert_eq!(r.members.len(), cfg.population);
        assert!(r.best_ppl.is_finite());
        assert!(r.members.iter().all(|m| m.ppl >= r.best_ppl));
    }
    for l in &report.lineage {
        assert_ne!(l.member, l.source, "a member never clones itself");
        assert!(!l.changes.is_empty(), "every clone must perturb something");
        assert!(matches!(
            l.optimizer_state.as_str(),
            "transplanted" | "reset"
        ));
    }
    assert!(report.best.ppl.is_finite());
    let last = report.rounds_log.last().unwrap();
    assert_eq!(report.best.member, last.best_member);
    assert_eq!(report.best.ppl, last.best_ppl);
}

#[test]
fn search_emits_pinned_trace_events_and_counters() {
    let dir = std::env::temp_dir().join("apollo-search-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("search-trace.jsonl");
    let cfg = SearchConfig {
        rounds: 2,
        round_steps: 3,
        batch: 2,
        eval_seqs: 4,
        ..SearchConfig::tiny(3)
    };
    let obs = Obs::with_trace(&path, 1).unwrap();
    let report = run_search(&cfg, &obs).unwrap();
    let events = apollo_obs::read_trace(&path).unwrap();
    let count = |k: &str| events.iter().filter(|e| e.kind() == k).count();
    assert_eq!(count("SearchRound"), cfg.rounds);
    // start + finish per member, clone + perturb per lineage entry.
    assert_eq!(
        count("MemberEvent"),
        2 * cfg.population + 2 * report.lineage.len()
    );
    for e in &events {
        if let TraceEvent::MemberEvent { event, .. } = e {
            assert!(matches!(
                event.as_str(),
                "start" | "clone" | "perturb" | "finish"
            ));
        }
    }
    assert_eq!(obs.counter_value("search.rounds"), cfg.rounds as u64);
    assert_eq!(
        obs.counter_value("search.clones"),
        report.lineage.len() as u64
    );
    assert_eq!(
        obs.counter_value("search.evals"),
        (cfg.rounds * cfg.population) as u64
    );
    assert!(obs.counter_value("search.perturbations") >= obs.counter_value("search.clones"));
}

#[test]
fn baseline_runs_the_static_grid_with_the_same_budget() {
    let cfg = SearchConfig {
        rounds: 2,
        round_steps: 3,
        batch: 2,
        eval_seqs: 4,
        baseline: true,
        ..SearchConfig::tiny(5)
    };
    let report = run_search(&cfg, &Obs::disabled()).unwrap();
    assert_eq!(report.baseline.len(), 4, "fig4 grid has four configs");
    assert!(report.baseline.iter().all(|b| b.ppl.is_finite()));
    // Population 4 starts as exactly the static grid with shared init and
    // data, so a never-replaced survivor matches its static twin exactly;
    // the evolved best can only do at least as well as that.
    let best_static = report
        .baseline
        .iter()
        .map(|b| b.ppl)
        .fold(f32::INFINITY, f32::min);
    assert!(
        report.best.ppl <= best_static * 1.01,
        "evolved best {} should be within 1% of best static {}",
        report.best.ppl,
        best_static
    );
}

#[test]
fn invalid_configs_are_rejected() {
    assert!(run_search(
        &SearchConfig {
            rounds: 0,
            ..SearchConfig::tiny(1)
        },
        &Obs::disabled()
    )
    .is_err());
    assert!(run_search(
        &SearchConfig {
            quantile: 0.9,
            ..SearchConfig::tiny(1)
        },
        &Obs::disabled()
    )
    .is_err());
    assert!(run_search(
        &SearchConfig {
            eval_seqs: 0,
            ..SearchConfig::tiny(1)
        },
        &Obs::disabled()
    )
    .is_err());
}
