//! Bitwise equivalence of the fused single-pass kernels (`fused.rs`)
//! against the staged references they replace, plus finite-difference
//! gradchecks of every fused backward.
//!
//! Each fused kernel replicates the reference's per-element float
//! expressions and keeps every reduction in the reference's strict
//! sequential order, and the pooled row-band partition is a pure function
//! of `(rows, threads)` — so for finite inputs the results must be
//! *bit-identical*, not merely close, at every thread count. Shapes
//! include degenerate, prime, and pool-crossing sizes (the elementwise
//! FLOP gate passes around `rows · cols · per_elem ≥ 2^20`).

use apollo_tensor::fused::{self, reference, ChannelScale};
use apollo_tensor::{set_thread_override, Matrix, Rng};
use proptest::prelude::*;

/// Asserts `got` and `want` agree bit-for-bit (shape and every element's
/// `to_bits`), reporting the first mismatching index on failure.
fn assert_bits_eq(got: &Matrix, want: &Matrix, what: &str) {
    assert_eq!(got.shape(), want.shape(), "{what}: shape mismatch");
    for (idx, (g, w)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        assert!(
            g.to_bits() == w.to_bits(),
            "{what}: bit mismatch at flat index {idx}: got {g} ({:#010x}), want {w} ({:#010x})",
            g.to_bits(),
            w.to_bits()
        );
    }
}

fn assert_scalar_bits_eq(got: f32, want: f32, what: &str) {
    assert!(
        got.to_bits() == want.to_bits(),
        "{what}: scalar bit mismatch: got {got} ({:#010x}), want {want} ({:#010x})",
        got.to_bits(),
        want.to_bits()
    );
}

/// Runs every fused kernel against its staged reference at one thread
/// count on a `rows × cols` problem.
fn check_all_fused(rows: usize, cols: usize, seed: u64, threads: usize) {
    set_thread_override(Some(threads));
    let mut rng = Rng::seed_from_u64(seed);
    let ctx = format!("({rows}x{cols}, threads={threads})");

    // rmsnorm forward + backward
    let x = Matrix::randn(rows, cols, &mut rng);
    let gain = Matrix::rand_uniform(1, cols, 0.5, 1.5, &mut rng);
    let gout = Matrix::randn(rows, cols, &mut rng);
    let (yf, invf) = fused::fused_rmsnorm_fwd(&x, &gain, 1e-5);
    let (yr, invr) = reference::rmsnorm_fwd(&x, &gain, 1e-5);
    assert_bits_eq(&yf, &yr, &format!("rmsnorm_fwd {ctx}"));
    for (i, (a, b)) in invf.iter().zip(&invr).enumerate() {
        assert_scalar_bits_eq(*a, *b, &format!("rmsnorm inv_rms[{i}] {ctx}"));
    }
    let (dxf, dgf) = fused::fused_rmsnorm_bwd(&x, &gain, &gout, &invf);
    let (dxr, dgr) = reference::rmsnorm_bwd(&x, &gain, &gout, &invr);
    assert_bits_eq(&dxf, &dxr, &format!("rmsnorm_bwd dx {ctx}"));
    assert_bits_eq(&dgf, &dgr, &format!("rmsnorm_bwd dg {ctx}"));

    // swiglu forward + backward
    let a = Matrix::randn(rows, cols, &mut rng);
    let b = Matrix::randn(rows, cols, &mut rng);
    assert_bits_eq(
        &fused::fused_swiglu_fwd(&a, &b),
        &reference::swiglu_fwd(&a, &b),
        &format!("swiglu_fwd {ctx}"),
    );
    let (daf, dbf) = fused::fused_swiglu_bwd(&a, &b, &gout);
    let (dar, dbr) = reference::swiglu_bwd(&a, &b, &gout);
    assert_bits_eq(&daf, &dar, &format!("swiglu_bwd da {ctx}"));
    assert_bits_eq(&dbf, &dbr, &format!("swiglu_bwd db {ctx}"));

    // softmax cross-entropy forward + backward
    let logits = Matrix::randn(rows, cols, &mut rng);
    let targets: Vec<u32> = (0..rows).map(|r| (r % cols) as u32).collect();
    let (lf, exps, denoms) = fused::fused_softmax_xent_fwd(&logits, &targets);
    let (lr, probs) = reference::softmax_xent_fwd(&logits, &targets);
    assert_scalar_bits_eq(lf, lr, &format!("softmax_xent loss {ctx}"));
    // The fused cache (unnormalized exps + denoms) must reproduce the
    // staged normalized probabilities cell by cell.
    for (r, denom) in denoms.iter().enumerate() {
        for j in 0..cols {
            assert_scalar_bits_eq(
                exps.get(r, j) / denom,
                probs.get(r, j),
                &format!("softmax prob ({r},{j}) {ctx}"),
            );
        }
    }
    let upstream = 0.7f32;
    assert_bits_eq(
        &fused::fused_softmax_xent_bwd(&exps, &denoms, &targets, upstream),
        &reference::softmax_xent_bwd(&probs, &targets, upstream),
        &format!("softmax_xent_bwd {ctx}"),
    );

    // rope: fused vs staged, forward and inverse
    if cols.is_multiple_of(2) {
        let heads = if cols.is_multiple_of(4) { 2 } else { 1 };
        let seq = rows.div_ceil(2).max(1);
        for inverse in [false, true] {
            let mut xf = Matrix::randn(rows, cols, &mut rng);
            let mut xr = xf.clone();
            fused::rope_apply(&mut xf, seq, heads, 10_000.0, inverse);
            reference::rope_apply(&mut xr, seq, heads, 10_000.0, inverse);
            assert_bits_eq(&xf, &xr, &format!("rope_apply inv={inverse} {ctx}"));
        }
    }

    // axpy chain (weight decay on and off)
    for decay in [1.0f32, 0.9995] {
        let mut yf = Matrix::randn(rows, cols, &mut rng);
        let mut yr = yf.clone();
        let xv = Matrix::randn(rows, cols, &mut rng);
        fused::fused_axpy_chain(&mut yf, decay, -0.01, &xv);
        reference::axpy_chain(&mut yr, decay, -0.01, &xv);
        assert_bits_eq(&yf, &yr, &format!("axpy_chain decay={decay} {ctx}"));
    }

    // adam moments + full update, two consecutive steps (t = 1, 2)
    let g1 = Matrix::randn(rows, cols, &mut rng);
    let g2 = Matrix::randn(rows, cols, &mut rng);
    let (beta1, beta2, eps, lr) = (0.9f32, 0.999f32, 1e-8f32, 0.01f32);
    let mut mf = Matrix::zeros(rows, cols);
    let mut vf = Matrix::zeros(rows, cols);
    let mut uf = Matrix::zeros(0, 0);
    let mut mr = Matrix::zeros(rows, cols);
    let mut vr = Matrix::zeros(rows, cols);
    let mut ur = Matrix::zeros(0, 0);
    for (t, g) in [(1i32, &g1), (2, &g2)] {
        let bc1 = 1.0 - beta1.powi(t);
        let bc2 = 1.0 - beta2.powi(t);
        fused::fused_adam_moments(&mut mf, &mut vf, &mut uf, g, beta1, beta2, bc1, bc2, eps);
        reference::adam_moments(&mut mr, &mut vr, &mut ur, g, beta1, beta2, bc1, bc2, eps);
        assert_bits_eq(&mf, &mr, &format!("adam m (t={t}) {ctx}"));
        assert_bits_eq(&vf, &vr, &format!("adam v (t={t}) {ctx}"));
        assert_bits_eq(&uf, &ur, &format!("adam upd (t={t}) {ctx}"));
    }
    let mut wf = Matrix::randn(rows, cols, &mut rng);
    let mut wr = wf.clone();
    let mut mf = Matrix::zeros(rows, cols);
    let mut vf = Matrix::zeros(rows, cols);
    let mut mr = Matrix::zeros(rows, cols);
    let mut vr = Matrix::zeros(rows, cols);
    for (t, g) in [(1i32, &g1), (2, &g2)] {
        let bc1 = 1.0 - beta1.powi(t);
        let bc2 = 1.0 - beta2.powi(t);
        let decay = 1.0 - lr * 0.1;
        fused::fused_adam_update(
            &mut wf, g, &mut mf, &mut vf, beta1, beta2, bc1, bc2, eps, lr, decay,
        );
        reference::adam_update(
            &mut wr, g, &mut mr, &mut vr, beta1, beta2, bc1, bc2, eps, lr, decay,
        );
        assert_bits_eq(&wf, &wr, &format!("adam w (t={t}) {ctx}"));
    }

    // apollo scaled-update construction, all three channel geometries
    let grad = Matrix::randn(rows, cols, &mut rng);
    let col_s: Vec<f32> = (0..cols).map(|j| 0.5 + 0.01 * j as f32).collect();
    let row_s: Vec<f32> = (0..rows).map(|r| 1.5 - 0.003 * r as f32).collect();
    let scales = [
        ChannelScale::Tensor(1.37),
        ChannelScale::Cols(&col_s),
        ChannelScale::Rows(&row_s),
    ];
    for (si, s) in scales.iter().enumerate() {
        let mut uf = Matrix::zeros(0, 0);
        let mut ur = Matrix::zeros(0, 0);
        let nf = fused::fused_apollo_scale(&mut uf, &grad, *s, 11.313_708);
        let nr = reference::apollo_scale(&mut ur, &grad, *s, 11.313_708);
        assert_bits_eq(&uf, &ur, &format!("apollo_scale[{si}] update {ctx}"));
        assert_scalar_bits_eq(nf, nr, &format!("apollo_scale[{si}] norm {ctx}"));
    }

    set_thread_override(None);
}

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

#[test]
fn adversarial_shapes_match_reference_at_all_thread_counts() {
    // (rows, cols): degenerate, prime, wide, tall, and two sizes crossing
    // the elementwise parallelism gate (rows·cols·per_elem ≥ 2^20 with
    // rows ≥ 2·threads) so the pooled row-band path actually runs.
    let shapes = [
        (1, 1),
        (1, 7),
        (7, 13),
        (3, 257),   // wide: row loops with a lane tail
        (257, 3),   // tall
        (64, 96),   // typical norm/activation panel, below the gate
        (128, 512), // proxy activation panel; crosses the high-cost gates
        (512, 600), // crosses every kernel's gate at 2+ threads
    ];
    for (si, &(rows, cols)) in shapes.iter().enumerate() {
        for &t in &THREAD_COUNTS {
            check_all_fused(rows, cols, 0xF05E_D000 + si as u64, t);
        }
    }
}

#[test]
fn results_are_invariant_across_thread_counts() {
    // Compare thread counts against each other directly on a pool-crossing
    // shape (not just against the reference).
    let mut rng = Rng::seed_from_u64(44);
    let x = Matrix::randn(512, 600, &mut rng);
    let gain = Matrix::rand_uniform(1, 600, 0.5, 1.5, &mut rng);
    set_thread_override(Some(1));
    let (base, _) = fused::fused_rmsnorm_fwd(&x, &gain, 1e-5);
    for &t in &THREAD_COUNTS[1..] {
        set_thread_override(Some(t));
        let (y, _) = fused::fused_rmsnorm_fwd(&x, &gain, 1e-5);
        assert_bits_eq(&y, &base, &format!("rmsnorm threads={t} vs threads=1"));
    }
    set_thread_override(None);
}

#[test]
fn rope_row_matches_rope_apply_per_row() {
    // Cross-impl equivalence of the decode path's per-row entry point
    // against the graph path's whole-matrix rotation: row r of rope_apply
    // is rope_row at position r % seq.
    let (seq, heads, hd) = (6, 2, 8);
    let rows = 2 * seq; // batch 2
    let mut rng = Rng::seed_from_u64(45);
    let x = Matrix::randn(rows, heads * hd, &mut rng);
    let mut whole = x.clone();
    fused::rope_apply(&mut whole, seq, heads, 10_000.0, false);
    for r in 0..rows {
        let mut row = x.row(r).to_vec();
        fused::rope_row(&mut row, r % seq, heads, hd, 10_000.0);
        for (j, (a, b)) in row.iter().zip(whole.row(r)).enumerate() {
            assert!(
                a.to_bits() == b.to_bits(),
                "rope row {r} col {j}: {a} vs {b}"
            );
        }
    }
}

/// Central finite-difference gradient of scalar-valued `f` w.r.t. `param`.
fn numeric_grad(mut f: impl FnMut(&Matrix) -> f32, param: &Matrix, eps: f32) -> Matrix {
    let mut g = Matrix::zeros(param.rows(), param.cols());
    for r in 0..param.rows() {
        for c in 0..param.cols() {
            let mut p = param.clone();
            p.set(r, c, param.get(r, c) + eps);
            let hi = f(&p);
            p.set(r, c, param.get(r, c) - eps);
            let lo = f(&p);
            g.set(r, c, (hi - lo) / (2.0 * eps));
        }
    }
    g
}

fn assert_grad_close(analytic: &Matrix, numeric: &Matrix, tol: f32) {
    assert_eq!(analytic.shape(), numeric.shape());
    for (a, n) in analytic.as_slice().iter().zip(numeric.as_slice()) {
        let scale = 1.0 + a.abs().max(n.abs());
        assert!((a - n).abs() / scale < tol, "analytic {a} vs numeric {n}");
    }
}

#[test]
fn fused_rmsnorm_bwd_gradchecks() {
    let mut rng = Rng::seed_from_u64(46);
    let x0 = Matrix::randn(3, 6, &mut rng);
    let g0 = Matrix::rand_uniform(1, 6, 0.5, 1.5, &mut rng);
    let w = Matrix::randn(3, 6, &mut rng); // loss = Σ w ⊙ y
    let loss = |x: &Matrix, g: &Matrix| {
        let (y, _) = fused::fused_rmsnorm_fwd(x, g, 1e-5);
        y.hadamard(&w).sum()
    };
    let (_, inv) = fused::fused_rmsnorm_fwd(&x0, &g0, 1e-5);
    let (dx, dg) = fused::fused_rmsnorm_bwd(&x0, &g0, &w, &inv);
    assert_grad_close(&dx, &numeric_grad(|p| loss(p, &g0), &x0, 1e-2), 3e-2);
    assert_grad_close(&dg, &numeric_grad(|p| loss(&x0, p), &g0, 1e-2), 3e-2);
}

#[test]
fn fused_swiglu_bwd_gradchecks() {
    let mut rng = Rng::seed_from_u64(47);
    let a0 = Matrix::randn(2, 5, &mut rng);
    let b0 = Matrix::randn(2, 5, &mut rng);
    let w = Matrix::randn(2, 5, &mut rng);
    let loss = |a: &Matrix, b: &Matrix| fused::fused_swiglu_fwd(a, b).hadamard(&w).sum();
    let (da, db) = fused::fused_swiglu_bwd(&a0, &b0, &w);
    assert_grad_close(&da, &numeric_grad(|p| loss(p, &b0), &a0, 1e-2), 2e-2);
    assert_grad_close(&db, &numeric_grad(|p| loss(&a0, p), &b0, 1e-2), 2e-2);
}

#[test]
fn fused_softmax_xent_bwd_gradchecks() {
    let logits0 = Matrix::from_rows(&[&[2.0, 0.0, -1.0], &[0.5, 0.5, 0.5]]);
    let targets = [0u32, 2];
    let upstream = 1.0f32;
    let loss = |l: &Matrix| fused::fused_softmax_xent_fwd(l, &targets).0;
    let (_, exps, denoms) = fused::fused_softmax_xent_fwd(&logits0, &targets);
    let dl = fused::fused_softmax_xent_bwd(&exps, &denoms, &targets, upstream);
    assert_grad_close(&dl, &numeric_grad(loss, &logits0, 1e-3), 1e-2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_shapes_match_reference(
        seed in any::<u64>(),
        rows in 1usize..24,
        cols in 1usize..40,
        ti in 0usize..THREAD_COUNTS.len(),
    ) {
        check_all_fused(rows, cols, seed, THREAD_COUNTS[ti]);
    }
}
