#!/usr/bin/env python3
"""Extracts headline numbers from results/*.json into a markdown summary.

Run after `scripts/run_all.sh`; the output is pasted into EXPERIMENTS.md's
measured sections (and kept in results/summary.md for reference).
"""
import json
import os

R = os.path.join(os.path.dirname(__file__), "..", "results")


def load(name):
    path = os.path.join(R, name + ".json")
    if not os.path.exists(path):
        return None
    with open(path) as f:
        return json.load(f)


def main():
    out = []

    t2 = load("table2_pretrain")
    if t2:
        sizes = sorted({c["size"] for c in t2}, key=lambda s: ["60M", "130M", "350M", "1B"].index(s))
        methods = []
        for c in t2:
            if c["method"] not in methods:
                methods.append(c["method"])
        out.append("## Table 2 (measured proxy ppl | paper-geometry memory)\n")
        out.append("| Method | " + " | ".join(sizes) + " |")
        out.append("|---" * (len(sizes) + 1) + "|")
        for m in methods:
            row = [m]
            for s in sizes:
                cell = next((c for c in t2 if c["method"] == m and c["size"] == s), None)
                row.append(f"{cell['ppl']:.2f} / {cell['memory_gib']:.2f}G" if cell else "—")
            out.append("| " + " | ".join(row) + " |")
        out.append("")

    t3 = load("table3_llama7b")
    if t3:
        out.append("## Table 3 (7B proxy)\n")
        for r in t3:
            cks = ", ".join(f"{s}:{p:.2f}" for s, p in r["checkpoints"])
            out.append(f"- {r['method']}: opt mem {r['optimizer_memory_gib']:.1f}G; ppl {cks}")
        out.append("")

    for name, title, fmt in [
        ("table4_commonsense", "Table 4 (commonsense accuracy %)", "avg"),
        ("table5_mmlu", "Table 5 (MMLU accuracy %)", "avg"),
    ]:
        t = load(name)
        if t:
            out.append(f"## {title}\n")
            for r in t:
                accs = ", ".join(f"{n}:{a:.1f}" for n, a in r["accuracies"])
                out.append(f"- {r['method']}: avg {r['average']:.2f} ({accs})")
            out.append("")

    t6 = load("table6_quantized")
    if t6:
        out.append("## Table 6 (quantized-weight training)\n")
        for size in ["60M", "130M", "350M"]:
            cells = [c for c in t6 if c["size"] == size]
            if cells:
                row = ", ".join(f"{c['method']}:{c['ppl']:.2f}" for c in cells)
                out.append(f"- {size}: {row}")
        out.append("")

    t7 = load("table7_granularity")
    if t7:
        out.append("## Table 7 (granularity)\n")
        for c in t7:
            out.append(f"- {c['method']}/{c['granularity']} {c['size']}: {c['ppl']:.2f}")
        out.append("")

    f5 = load("fig5_projection_rank")
    if f5:
        out.append("## Fig. 5 (SVD vs RP; rank sweep)\n")
        for p in f5:
            out.append(f"- {p['method']} r={p['rank']}: {p['ppl']:.2f}")
        out.append("")

    f3 = load("fig3_structured_lr")
    if f3:
        out.append("## Fig. 3\n")
        for l in f3:
            out.append(f"- {l['optimizer']}: final ppl {l['final_ppl']:.2f}")
        out.append("")

    f4 = load("fig4_ratio")
    if f4:
        out.append("## Fig. 4 (scaling-factor ratios vs √(r/n))\n")
        for r in f4:
            out.append(
                f"- {r['param']} r={r['rank']}: expected {r['expected']:.3f}, "
                f"measured {r['measured_mean']:.3f} [{r['measured_p10']:.3f}, {r['measured_p90']:.3f}]"
            )
        out.append("")

    f6 = load("fig6_curves")
    if f6:
        out.append("## Fig. 6 (curves)\n")
        for l in f6:
            pts = ", ".join(f"{s}:{p:.1f}" for s, p in l["eval_ppls"])
            out.append(f"- {l['optimizer']}: {pts}")
        out.append("")

    f7 = load("fig7_longcontext")
    if f7:
        out.append("## Fig. 7 (long context)\n")
        for r in f7:
            out.append(f"- {r['label']}: {r['final_ppl']:.2f}")
        out.append("")

    f9 = load("fig9_svd_spikes")
    if f9:
        g = f9["measured_proxy_galore_ms"]
        a = f9["measured_proxy_apollo_ms"]
        if g and a:
            med = lambda xs: sorted(xs)[len(xs) // 2]
            out.append("## Fig. 9 (measured step times, ms)\n")
            out.append(f"- GaLore: median {med(g):.0f}, max {max(g):.0f} (spike {max(g)/med(g):.1f}x)")
            out.append(f"- APOLLO: median {med(a):.0f}, max {max(a):.0f} (spike {max(a)/med(a):.1f}x)")
            out.append("")

    ab = load("ablations")
    if ab:
        out.append("## Ablations\n")
        for p in ab:
            out.append(f"- {p['sweep']}={p['value']:.3g}: ppl {p['ppl']:.2f}")
        out.append("")

    text = "\n".join(out)
    with open(os.path.join(R, "summary.md"), "w") as f:
        f.write(text)
    print(text)


if __name__ == "__main__":
    main()
