//! SGD and SGD-with-momentum: the memory floor the paper compares against.

use apollo_tensor::Matrix;

use crate::state::{StateReader, StateWriter};
use crate::{check_state_header, save_state_header, Optimizer, ParamUpdate};

/// Plain stochastic gradient descent with decoupled weight decay.
///
/// Zero optimizer state — the memory target APOLLO-Mini matches. Known to
/// train transformers poorly (Zhang et al., 2024a), which Table 2's
/// reproduction confirms at proxy scale.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Decoupled weight-decay coefficient λ.
    pub weight_decay: f32,
}

impl Sgd {
    /// SGD without weight decay.
    pub fn new() -> Self {
        Sgd { weight_decay: 0.0 }
    }
}

impl Default for Sgd {
    fn default() -> Self {
        Self::new()
    }
}

impl Optimizer for Sgd {
    fn name(&self) -> String {
        "SGD".to_string()
    }

    fn step(&mut self, params: &mut [ParamUpdate<'_>], lr: f32) {
        for p in params {
            if self.weight_decay > 0.0 {
                p.value.scale_assign(1.0 - lr * self.weight_decay);
            }
            p.value.axpy(-lr, p.grad);
        }
    }

    fn state_elems(&self) -> usize {
        0
    }

    fn state_save(&self) -> Result<Vec<u8>, String> {
        // Stateless, but still checkpointable: the header alone lets a
        // resumed run verify the optimizer kind matches.
        let mut w = StateWriter::new();
        save_state_header(&mut w, &self.name());
        Ok(w.into_bytes())
    }

    fn state_load(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = StateReader::new(bytes);
        check_state_header(&mut r, &self.name())?;
        r.expect_exhausted()
    }
}

/// SGD with heavy-ball momentum.
#[derive(Debug, Clone)]
pub struct SgdMomentum {
    /// Momentum coefficient β.
    pub beta: f32,
    /// Decoupled weight-decay coefficient λ.
    pub weight_decay: f32,
    momenta: Vec<Matrix>,
}

impl SgdMomentum {
    /// Creates SGD-M with the given momentum coefficient.
    pub fn new(beta: f32) -> Self {
        SgdMomentum {
            beta,
            weight_decay: 0.0,
            momenta: Vec::new(),
        }
    }
}

impl Optimizer for SgdMomentum {
    fn name(&self) -> String {
        format!("SGD-M(β={})", self.beta)
    }

    fn step(&mut self, params: &mut [ParamUpdate<'_>], lr: f32) {
        if self.momenta.is_empty() {
            self.momenta = params
                .iter()
                .map(|p| Matrix::zeros(p.value.rows(), p.value.cols()))
                .collect();
        }
        assert_eq!(
            self.momenta.len(),
            params.len(),
            "parameter list changed between steps"
        );
        for (p, m) in params.iter_mut().zip(&mut self.momenta) {
            m.ema_assign(self.beta, p.grad);
            if self.weight_decay > 0.0 {
                p.value.scale_assign(1.0 - lr * self.weight_decay);
            }
            p.value.axpy(-lr, m);
        }
    }

    fn state_elems(&self) -> usize {
        self.momenta.iter().map(Matrix::len).sum()
    }

    fn reset_state(&mut self) {
        self.momenta.clear();
    }

    fn state_save(&self) -> Result<Vec<u8>, String> {
        let mut w = StateWriter::new();
        save_state_header(&mut w, &self.name());
        w.u64(self.momenta.len() as u64);
        for m in &self.momenta {
            w.matrix(m);
        }
        Ok(w.into_bytes())
    }

    fn state_load(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = StateReader::new(bytes);
        check_state_header(&mut r, &self.name())?;
        let n = r.len()?;
        let mut momenta = Vec::with_capacity(n);
        for _ in 0..n {
            momenta.push(r.matrix()?);
        }
        r.expect_exhausted()?;
        self.momenta = momenta;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad_step(opt: &mut dyn Optimizer, w: &mut Matrix, lr: f32) {
        // Gradient of ½‖w‖²: g = w.
        let g = w.clone();
        let mut binding = [ParamUpdate {
            name: "w",
            value: w,
            grad: &g,
            projectable: true,
        }];
        opt.step(&mut binding, lr);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut w = Matrix::full(2, 2, 4.0);
        let mut opt = Sgd::new();
        for _ in 0..50 {
            quad_step(&mut opt, &mut w, 0.1);
        }
        assert!(w.fro_norm() < 0.1, "‖w‖ = {}", w.fro_norm());
    }

    #[test]
    fn sgd_has_zero_state() {
        let opt = Sgd::new();
        assert_eq!(opt.state_elems(), 0);
        assert_eq!(opt.state_bytes(), 0);
    }

    #[test]
    fn sgd_weight_decay_shrinks_weights() {
        let mut w = Matrix::full(1, 1, 1.0);
        let g = Matrix::zeros(1, 1);
        let mut opt = Sgd { weight_decay: 0.5 };
        opt.step(
            &mut [ParamUpdate {
                name: "w",
                value: &mut w,
                grad: &g,
                projectable: true,
            }],
            0.1,
        );
        assert!((w.get(0, 0) - 0.95).abs() < 1e-6);
    }

    #[test]
    fn momentum_accumulates_and_converges() {
        let mut w = Matrix::full(2, 2, 4.0);
        let mut opt = SgdMomentum::new(0.9);
        for _ in 0..200 {
            quad_step(&mut opt, &mut w, 0.05);
        }
        assert!(w.fro_norm() < 0.1, "‖w‖ = {}", w.fro_norm());
        assert_eq!(opt.state_elems(), 4);
    }

    #[test]
    #[should_panic(expected = "parameter list changed")]
    fn momentum_detects_param_list_change() {
        let mut opt = SgdMomentum::new(0.9);
        let mut w = Matrix::zeros(1, 1);
        quad_step(&mut opt, &mut w, 0.1);
        let g1 = Matrix::zeros(1, 1);
        let g2 = Matrix::zeros(1, 1);
        let mut w1 = Matrix::zeros(1, 1);
        let mut w2 = Matrix::zeros(1, 1);
        let mut two = [
            ParamUpdate {
                name: "a",
                value: &mut w1,
                grad: &g1,
                projectable: true,
            },
            ParamUpdate {
                name: "b",
                value: &mut w2,
                grad: &g2,
                projectable: true,
            },
        ];
        opt.step(&mut two, 0.1);
    }
}
