//! Fig. 2: LLaMA-7B validation perplexity against *wall-clock* time under
//! a fixed training-time budget.
//!
//! The proxy runs give ppl-vs-step curves; the analytic throughput model
//! (Fig. 1 right) converts each method's steps to hours on 8×A100-80G. The
//! reproduction target is the crossover story: AdamW is so much slower per
//! token that APOLLO/Mini finish far more optimization within the budget,
//! and APOLLO overtakes GaLore midway.

use apollo_bench::{pretrain_run, print_table, scaled, write_json, Method};
use apollo_nn::ModelConfig;
use apollo_optim::memory::MethodSpec;
use apollo_sysmodel::{Gpu, MemoryOptions, ThroughputModel};
use apollo_train::TrainConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Series {
    method: String,
    /// Modeled optimizer steps per hour at 7B on 8×A100 (total batch 512
    /// sequences per step, micro-batch from the memory search).
    steps_per_hour: f64,
    /// `(modeled hours, proxy val ppl)` points.
    curve: Vec<(f64, f32)>,
}

fn main() {
    let cfg = ModelConfig::tiny_7b();
    let steps = scaled(100);
    let eval_every = (steps / 8).max(1);

    // Modeled step rate: a fixed 512-sequence global batch per optimizer
    // step, assembled from memory-bound micro-batches (as in §5.1).
    let mut thr = ThroughputModel::new(&ModelConfig::llama_7b(), Gpu::a100_80g(), 8, 256);
    thr.svd_refresh_period = 1000;
    let std = MemoryOptions::standard(1, 256);
    let lw = MemoryOptions {
        layer_wise_grad: true,
        ..std
    };
    let step_rate = |spec: MethodSpec, opts: &MemoryOptions| {
        let r = thr.report(spec, opts);
        // seconds per 512-sequence optimizer step = micro-steps × micro time
        let micro_steps = (512f64 / (r.micro_batch.max(1) * 8) as f64).ceil();
        3600.0 / (micro_steps * r.step_seconds)
    };
    let cases = [
        (Method::AdamW, step_rate(MethodSpec::AdamW, &std)),
        (
            Method::GaLore,
            step_rate(MethodSpec::GaLore { rank: 1024 }, &lw),
        ),
        (
            Method::Apollo,
            step_rate(MethodSpec::Apollo { rank: 256 }, &lw),
        ),
        (Method::ApolloMini, step_rate(MethodSpec::ApolloMini, &lw)),
    ];

    let mut series = Vec::new();
    for (m, steps_per_hour) in cases {
        eprintln!("[fig2] {} ...", m.label());
        let tc = TrainConfig {
            steps,
            lr: m.default_lr(),
            grad_clip: m.grad_clip(),
            eval_every,
            eval_seqs: 32,
            merge_every: None,
            record_step_times: false,
            grad_accum: 1,
            quantize_weights: None,
        };
        let log = pretrain_run(&cfg, m, steps, 1, 42, Some(tc));
        // Map proxy steps to modeled hours: the paper's 150K-step budget
        // over our proxy budget.
        let paper_steps_per_proxy_step = 150_000.0 / steps as f64;
        let curve = log
            .eval_ppls
            .iter()
            .map(|&(s, p)| {
                let hours = s as f64 * paper_steps_per_proxy_step / steps_per_hour;
                (hours, p)
            })
            .collect();
        series.push(Series {
            method: m.label().to_string(),
            steps_per_hour,
            curve,
        });
    }

    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|s| {
            let (end_h, end_ppl) = *s.curve.last().unwrap();
            vec![
                s.method.clone(),
                format!("{:.0}", s.steps_per_hour),
                format!("{:.0} h", end_h),
                format!("{:.2}", end_ppl),
            ]
        })
        .collect();
    print_table(
        "Fig. 2 — modeled time-to-budget at 7B (proxy ppl, modeled hours for 150K steps)",
        &[
            "Method",
            "Steps/hour (7B model)",
            "Hours for full budget",
            "Final ppl",
        ],
        &rows,
    );
    println!(
        "\nPaper shape: only APOLLO/Mini finish the 150K-step budget inside ~15 days; \
         AdamW's wall-clock is ≈3x theirs; APOLLO passes GaLore mid-training."
    );
    write_json("fig2_llama7b", &series);
}
