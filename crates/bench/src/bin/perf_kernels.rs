//! Performance harness: matmul GFLOP/s at the Table-8 proxy shapes and
//! steps/sec for a tiny-proxy pretrain per optimizer.
//!
//! Emits `BENCH_kernels.json` and `BENCH_train.json` into the output
//! directory (first positional argument, default `.`). Run via
//! `scripts/bench.sh`, which pins the thread count for reproducibility.
//!
//! Modes:
//! - *(default)* full sweep: 5 timing reps per kernel/shape plus a
//!   30-step pretrain per optimizer.
//! - `--smoke`: shorter kernel timing reps, for CI (the pretrain keeps
//!   its 30 steps so steps/sec stays comparable to the baseline).
//! - `--losses`: prints the bit pattern of every training loss of a
//!   fixed-seed APOLLO pretrain and exits — a before/after diff of this
//!   output proves kernel changes kept training bit-identical.
//! - `--merge`: max-merge this sweep into JSONs already present in the
//!   output directory (per-entry best across runs) — the CI smoke stage
//!   sweeps twice so one load burst cannot fake a regression.

use apollo_bench::perf::{proxy_shapes, time_best, KernelEntry, KernelReport, TrainReport};
use apollo_bench::{perf::TrainEntry, Method};
use apollo_nn::ModelConfig;
use apollo_tensor::fused::{self, ChannelScale};
use apollo_tensor::{current_threads, Matrix, Rng};

/// One named kernel closure in the per-shape sweep.
type KernelCase<'a> = (&'a str, Box<dyn FnMut() + 'a>);

/// One fused-section case: name, per-element FLOP estimate, closure.
type FusedCase<'a> = (&'a str, usize, Box<dyn FnMut() + 'a>);

fn kernel_sweep(mode: &str) -> KernelReport {
    // Smoke raises the rep count and only shrinks the timing window:
    // time_best needs one clean rep, so more short reps beat fewer long
    // ones on a shared CI box where a CPU-steal burst can span several
    // consecutive windows.
    let (reps, min_secs) = if mode == "smoke" {
        (7, 0.03)
    } else {
        (5, 0.05)
    };
    let mut entries = Vec::new();
    for (shape, m, k, n) in proxy_shapes() {
        let mut rng = Rng::seed_from_u64(0xBE7C);
        let a = Matrix::randn(m, k, &mut rng);
        let b = Matrix::randn(k, n, &mut rng);
        let bt = b.transpose();
        let at = a.transpose();
        let flops = 2.0 * (m * k * n) as f64;
        let kernels: [KernelCase; 3] = [
            ("matmul", Box::new(|| drop(a.matmul(&b)))),
            ("matmul_transb", Box::new(|| drop(a.matmul_transb(&bt)))),
            ("matmul_transa", Box::new(|| drop(at.matmul_transa(&b)))),
        ];
        for (name, mut f) in kernels {
            let secs = time_best(reps, min_secs, &mut f);
            let gflops = flops / secs / 1e9;
            eprintln!("[kernel] {shape:>10} {name:<14} {gflops:7.3} GFLOP/s");
            entries.push(KernelEntry {
                shape: shape.clone(),
                kernel: name.to_string(),
                m,
                k,
                n,
                gflops,
            });
        }
    }
    KernelReport {
        threads: current_threads(),
        mode: mode.to_string(),
        entries,
    }
}

/// Fused-vs-unfused pairs: each fused kernel is timed against the staged
/// `fused::reference` implementation it replaced, at one transformer-proxy
/// shape. Both arms of a pair share the FLOP estimate, so the GFLOP/s ratio
/// in `BENCH_kernels.json` is the memory-traffic speedup directly.
fn fused_sweep(mode: &str) -> Vec<KernelEntry> {
    let (reps, min_secs) = if mode == "smoke" {
        (7, 0.03)
    } else {
        (5, 0.05)
    };
    let (rows, cols) = (512usize, 2048usize);
    let shape = format!("{rows}x{cols}");
    let mut rng = Rng::seed_from_u64(0xF5ED);
    let x = Matrix::randn(rows, cols, &mut rng);
    let gain = Matrix::randn(1, cols, &mut rng);
    let gout = Matrix::randn(rows, cols, &mut rng);
    let a = Matrix::randn(rows, cols, &mut rng);
    let b = Matrix::randn(rows, cols, &mut rng);
    let g = Matrix::randn(rows, cols, &mut rng);
    let targets: Vec<u32> = (0..rows).map(|r| (r * 97 % cols) as u32).collect();
    let (_, inv_rms) = fused::fused_rmsnorm_fwd(&x, &gain, 1e-5);
    // Optimizer state mutates across timing reps; the moments are EMAs of a
    // fixed gradient and the weight decays geometrically, so magnitudes stay
    // bounded and the timing stationary.
    let mut w_f = Matrix::randn(rows, cols, &mut rng);
    let mut w_u = w_f.clone();
    let (mut m_f, mut v_f) = (Matrix::zeros(rows, cols), Matrix::zeros(rows, cols));
    let (mut m_u, mut v_u) = (Matrix::zeros(rows, cols), Matrix::zeros(rows, cols));
    let col_scales: Vec<f32> = (0..cols).map(|j| 0.5 + (j % 7) as f32 * 0.1).collect();
    let (mut upd_f, mut upd_u) = (Matrix::zeros(rows, cols), Matrix::zeros(rows, cols));
    let (b1, b2, bc1, bc2, eps, lr, decay) = (
        0.9f32, 0.999f32, 0.99f32, 0.999f32, 1e-8f32, 1e-3f32, 0.999f32,
    );

    // Fused/unfused arms adjacent, same FLOP estimate per pair.
    let cases: Vec<FusedCase> = vec![
        ("fused_rmsnorm_fwd", 4, {
            let (x, gain) = (&x, &gain);
            Box::new(move || drop(fused::fused_rmsnorm_fwd(x, gain, 1e-5)))
        }),
        ("unfused_rmsnorm_fwd", 4, {
            let (x, gain) = (&x, &gain);
            Box::new(move || drop(fused::reference::rmsnorm_fwd(x, gain, 1e-5)))
        }),
        ("fused_rmsnorm_bwd", 10, {
            let (x, gain, gout, inv) = (&x, &gain, &gout, &inv_rms);
            Box::new(move || drop(fused::fused_rmsnorm_bwd(x, gain, gout, inv)))
        }),
        ("unfused_rmsnorm_bwd", 10, {
            let (x, gain, gout, inv) = (&x, &gain, &gout, &inv_rms);
            Box::new(move || drop(fused::reference::rmsnorm_bwd(x, gain, gout, inv)))
        }),
        ("fused_swiglu_fwd", 16, {
            let (a, b) = (&a, &b);
            Box::new(move || drop(fused::fused_swiglu_fwd(a, b)))
        }),
        ("unfused_swiglu_fwd", 16, {
            let (a, b) = (&a, &b);
            Box::new(move || drop(fused::reference::swiglu_fwd(a, b)))
        }),
        ("fused_swiglu_bwd", 24, {
            let (a, b, gout) = (&a, &b, &gout);
            Box::new(move || drop(fused::fused_swiglu_bwd(a, b, gout)))
        }),
        ("unfused_swiglu_bwd", 24, {
            let (a, b, gout) = (&a, &b, &gout);
            Box::new(move || drop(fused::reference::swiglu_bwd(a, b, gout)))
        }),
        ("fused_softmax_xent_fwd", 24, {
            let (x, t) = (&x, &targets);
            Box::new(move || drop(fused::fused_softmax_xent_fwd(x, t)))
        }),
        ("unfused_softmax_xent_fwd", 24, {
            let (x, t) = (&x, &targets);
            Box::new(move || drop(fused::reference::softmax_xent_fwd(x, t)))
        }),
        ("fused_adam_update", 12, {
            let g = &g;
            Box::new(move || {
                fused::fused_adam_update(
                    &mut w_f, g, &mut m_f, &mut v_f, b1, b2, bc1, bc2, eps, lr, decay,
                );
            })
        }),
        ("unfused_adam_update", 12, {
            let g = &g;
            Box::new(move || {
                fused::reference::adam_update(
                    &mut w_u, g, &mut m_u, &mut v_u, b1, b2, bc1, bc2, eps, lr, decay,
                );
            })
        }),
        ("fused_apollo_scale", 5, {
            let (g, s) = (&g, &col_scales);
            Box::new(move || {
                fused::fused_apollo_scale(&mut upd_f, g, ChannelScale::Cols(s), 0.01);
            })
        }),
        ("unfused_apollo_scale", 5, {
            let (g, s) = (&g, &col_scales);
            Box::new(move || {
                fused::reference::apollo_scale(&mut upd_u, g, ChannelScale::Cols(s), 0.01);
            })
        }),
    ];

    let mut entries = Vec::new();
    for (name, per_elem, mut f) in cases {
        let flops = (rows * cols * per_elem) as f64;
        let secs = time_best(reps, min_secs, &mut f);
        let gflops = flops / secs / 1e9;
        eprintln!("[fused]  {shape:>10} {name:<24} {gflops:7.3} GFLOP/s");
        entries.push(KernelEntry {
            shape: shape.clone(),
            kernel: name.to_string(),
            m: rows,
            k: cols,
            n: 0,
            gflops,
        });
    }
    entries
}

fn train_sweep() -> TrainReport {
    let cfg = ModelConfig::tiny_60m();
    // Same step count in both modes: steps/sec is only comparable at equal
    // amortization of periodic work (GaLore's SVD refresh dominates short
    // runs), and 30 steps is already cheap enough for the CI smoke stage.
    let steps = 30;
    let batch = 2;
    let methods = [
        Method::AdamW,
        Method::Apollo,
        Method::ApolloMini,
        Method::GaLore,
    ];
    let mut entries = Vec::new();
    for method in methods {
        let log = apollo_bench::pretrain_run(&cfg, method, steps, batch, 42, None);
        let final_loss = log.train_losses.last().map_or(f32::NAN, |&(_, l)| l);
        let steps_per_sec = steps as f64 / log.wall_secs.max(1e-9);
        eprintln!(
            "[train] {:<14} {steps_per_sec:6.2} steps/s  final loss {final_loss:.4}",
            method.label()
        );
        entries.push(TrainEntry {
            optimizer: method.label().to_string(),
            steps_per_sec,
            wall_secs: log.wall_secs,
            final_loss,
        });
    }
    TrainReport {
        model: cfg.name.to_string(),
        steps,
        batch,
        threads: current_threads(),
        entries,
    }
}

/// Prints `step loss-bits` lines for a fixed-seed APOLLO pretrain; a diff
/// of this output across code versions is the bit-identity check.
fn print_loss_bits() {
    let cfg = ModelConfig::tiny_60m();
    let log = apollo_bench::pretrain_run(&cfg, Method::Apollo, 20, 2, 7, None);
    for (step, loss) in &log.train_losses {
        println!("{step} {:08x}", loss.to_bits());
    }
}

fn main() {
    let mut mode = "full".to_string();
    let mut out_dir = ".".to_string();
    let mut merge = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => mode = "smoke".to_string(),
            "--losses" => mode = "losses".to_string(),
            "--merge" => merge = true,
            other => out_dir = other.to_string(),
        }
    }
    if mode == "losses" {
        print_loss_bits();
        return;
    }
    let mut kernels = kernel_sweep(&mode);
    kernels.entries.extend(fused_sweep(&mode));
    let mut train = train_sweep();
    if merge {
        if let Some(prev) = read_report::<KernelReport>(&out_dir, "BENCH_kernels.json") {
            kernels.merge_best(&prev);
        }
        if let Some(prev) = read_report::<TrainReport>(&out_dir, "BENCH_train.json") {
            train.merge_best(&prev);
        }
    }
    write_report(&out_dir, "BENCH_kernels.json", &kernels);
    write_report(&out_dir, "BENCH_train.json", &train);
}

/// Reads a previously written report for `--merge`; `None` if absent or
/// unparsable (a fresh sweep then stands on its own).
fn read_report<T: serde::Deserialize>(out_dir: &str, name: &str) -> Option<T> {
    let path = std::path::Path::new(out_dir).join(name);
    let data = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&data).ok()
}

fn write_report(out_dir: &str, name: &str, value: &impl serde::Serialize) {
    let path = std::path::Path::new(out_dir).join(name);
    let data = serde_json::to_string_pretty(value).expect("serialize bench report");
    std::fs::write(&path, data).expect("write bench json");
    eprintln!("[saved {}]", path.display());
}
