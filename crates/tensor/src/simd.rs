//! Explicit-SIMD fast-path kernels (the `NumericsMode::Fast` tier).
//!
//! Every function here computes the same mathematical expression as its
//! exact counterpart in `matmul.rs` / `fused.rs`, but relaxes the bitwise
//! contract: reductions run over 8 independent lanes and are combined at
//! the end (reassociation), multiplies and adds contract into FMA where
//! the hardware has it, and `exp` uses a vectorized polynomial instead of
//! libm. Two implementations back each entry point:
//!
//! - **AVX2 + FMA** via `std::arch` f32x8 intrinsics, selected when the
//!   one-shot runtime probe ([`crate::numerics::simd_tier`]) reports
//!   [`SimdTier::Avx2`];
//! - a **portable fallback** written as hand-unrolled 8-lane loops with
//!   the same reassociated lane structure, so both tiers satisfy the same
//!   tolerance contract (and LLVM still autovectorizes the lanes on
//!   whatever the target baseline is).
//!
//! Accuracy contract (pinned by `tensor/tests/fast_numerics.rs`, see
//! DESIGN.md "Numerics modes"): dot-product-shaped reductions over `k`
//! terms stay within a relative error of a few `k`-scaled ULPs of the
//! exact kernels; the polynomial `exp` is accurate to ≲2 ULP over the
//! softmax/SiLU input range. These kernels must never be reached from
//! exact mode — callers gate on [`crate::numerics::current_numerics`].

use crate::numerics::{simd_tier, SimdTier};

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

/// Reassociated dot product `Σ a[i]·b[i]` (8 lanes + FMA on AVX2).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "simd::dot: length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd_tier() == SimdTier::Avx2 {
        // SAFETY: tier probe confirmed avx2+fma.
        return unsafe { avx2::dot(a, b) };
    }
    portable::dot(a, b)
}

/// Reassociated sum of squares `Σ x[i]²`.
pub fn sum_squares(x: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if simd_tier() == SimdTier::Avx2 {
        // SAFETY: tier probe confirmed avx2+fma.
        return unsafe { avx2::sum_squares(x) };
    }
    portable::sum_squares(x)
}

/// Maximum element (`f32::max` fold; NaN-free inputs by contract).
pub fn max_slice(x: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if simd_tier() == SimdTier::Avx2 {
        // SAFETY: tier probe confirmed avx2+fma.
        return unsafe { avx2::max_slice(x) };
    }
    portable::max_slice(x)
}

// ---------------------------------------------------------------------------
// Elementwise chains
// ---------------------------------------------------------------------------

/// `out[i] += s · x[i]` (FMA on AVX2).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn axpy(out: &mut [f32], s: f32, x: &[f32]) {
    assert_eq!(out.len(), x.len(), "simd::axpy: length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd_tier() == SimdTier::Avx2 {
        // SAFETY: tier probe confirmed avx2+fma.
        unsafe { avx2::axpy(out, s, x) };
        return;
    }
    portable::axpy(out, s, x);
}

/// RMSNorm write: `out[i] = x[i] · inv · gain[i]`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn scale_gain(out: &mut [f32], x: &[f32], inv: f32, gain: &[f32]) {
    assert_eq!(out.len(), x.len(), "simd::scale_gain: length mismatch");
    assert_eq!(out.len(), gain.len(), "simd::scale_gain: gain mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd_tier() == SimdTier::Avx2 {
        // SAFETY: tier probe confirmed avx2+fma.
        unsafe { avx2::scale_gain(out, x, inv, gain) };
        return;
    }
    portable::scale_gain(out, x, inv, gain);
}

/// SwiGLU forward: `out[i] = a[i] · σ(a[i]) · b[i]` with the vectorized
/// polynomial `exp` on AVX2 (scalar libm `exp` on the portable tier).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn silu_mul(a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), b.len(), "simd::silu_mul: length mismatch");
    assert_eq!(a.len(), out.len(), "simd::silu_mul: out mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd_tier() == SimdTier::Avx2 {
        // SAFETY: tier probe confirmed avx2+fma.
        unsafe { avx2::silu_mul(a, b, out) };
        return;
    }
    portable::silu_mul(a, b, out);
}

/// Softmax inner pass: `row[i] = exp(row[i] − maxv)`, returning the
/// reassociated sum of the exponentials.
pub fn softmax_exp_sum(row: &mut [f32], maxv: f32) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if simd_tier() == SimdTier::Avx2 {
        // SAFETY: tier probe confirmed avx2+fma.
        return unsafe { avx2::softmax_exp_sum(row, maxv) };
    }
    portable::softmax_exp_sum(row, maxv)
}

/// Fused Adam element chain (the fast arm of `fused_adam_update`):
/// updates `m`/`v` in place and writes
/// `w ← w · decay − lr · (m/bc₁)/(√(v/bc₂) + eps)`.
#[allow(clippy::too_many_arguments)]
pub fn adam_weight_update(
    w: &mut [f32],
    g: &[f32],
    m: &mut [f32],
    v: &mut [f32],
    beta1: f32,
    beta2: f32,
    bc1: f32,
    bc2: f32,
    eps: f32,
    lr: f32,
    decay: f32,
) {
    assert_eq!(w.len(), g.len(), "simd::adam_weight_update: w/g mismatch");
    assert_eq!(m.len(), g.len(), "simd::adam_weight_update: m/g mismatch");
    assert_eq!(v.len(), g.len(), "simd::adam_weight_update: v/g mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd_tier() == SimdTier::Avx2 {
        // SAFETY: tier probe confirmed avx2+fma.
        unsafe { avx2::adam_weight_update(w, g, m, v, beta1, beta2, bc1, bc2, eps, lr, decay) };
        return;
    }
    portable::adam_weight_update(w, g, m, v, beta1, beta2, bc1, bc2, eps, lr, decay);
}

// ---------------------------------------------------------------------------
// Matmul micro-kernels
// ---------------------------------------------------------------------------

/// Fast gemv band: `out[j − lo] += Σ_p arow[p] · b[p·n + j]` for
/// `j ∈ [lo, hi)`, `p` outer with one broadcast and FMA over contiguous
/// 8-lane `b` runs. Per-element accumulation order matches the exact
/// kernel (`p` ascending); only the multiply-add contraction differs.
pub fn gemv_band(arow: &[f32], b: &[f32], n: usize, lo: usize, hi: usize, out: &mut [f32]) {
    debug_assert_eq!(out.len(), hi - lo);
    #[cfg(target_arch = "x86_64")]
    if simd_tier() == SimdTier::Avx2 {
        // SAFETY: tier probe confirmed avx2+fma.
        unsafe { avx2::gemv_band(arow, b, n, lo, hi, out) };
        return;
    }
    portable::gemv_band(arow, b, n, lo, hi, out);
}

/// Fast full-width packed register tile (width 32, the packed kernels'
/// `NR`): `orow[j] = Σ_p arow[p] · block[p·32 + j]` with four f32x8 FMA
/// accumulators on AVX2.
///
/// # Panics
///
/// Panics if `orow` is not exactly 32 wide.
pub fn tile_packed32(arow: &[f32], block: &[f32], orow: &mut [f32]) {
    assert_eq!(orow.len(), 32, "simd::tile_packed32: tile must be 32 wide");
    #[cfg(target_arch = "x86_64")]
    if simd_tier() == SimdTier::Avx2 {
        // SAFETY: tier probe confirmed avx2+fma.
        unsafe { avx2::tile_packed32(arow, block, orow) };
        return;
    }
    portable::tile_packed32(arow, block, orow);
}

// ---------------------------------------------------------------------------
// Quantized / reduced-precision operand kernels
// ---------------------------------------------------------------------------

/// INT8 dequant-axpy: `out[j] += s · q[j]` converting each `i8` lane to
/// `f32` in registers — the inner loop of the fused dequant-gemv, which
/// never materializes the f32 weight row.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn i8_axpy(out: &mut [f32], s: f32, q: &[i8]) {
    assert_eq!(out.len(), q.len(), "simd::i8_axpy: length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd_tier() == SimdTier::Avx2 {
        // SAFETY: tier probe confirmed avx2+fma.
        unsafe { avx2::i8_axpy(out, s, q) };
        return;
    }
    portable::i8_axpy(out, s, q);
}

/// Fused group-quantized INT8 GEMV:
/// `out[j] += x[p] · scales[(p·cols + j)/group] · q[p·cols + j]` summed
/// over `p` — one dispatched call for the whole matrix-vector product,
/// walking constant-scale row segments internally and converting `i8`
/// lanes to f32 in registers. Zero `x[p]` rows are skipped.
///
/// # Panics
///
/// Panics if `q`, `scales`, or `out` are inconsistent with
/// `x.len() × cols` and `group`.
pub fn i8_gemv(x: &[f32], q: &[i8], scales: &[f32], cols: usize, group: usize, out: &mut [f32]) {
    assert_eq!(q.len(), x.len() * cols, "simd::i8_gemv: data shape");
    assert_eq!(out.len(), cols, "simd::i8_gemv: out shape");
    assert!(group > 0, "simd::i8_gemv: zero group");
    assert!(
        scales.len() * group >= q.len(),
        "simd::i8_gemv: scales too short"
    );
    #[cfg(target_arch = "x86_64")]
    if simd_tier() == SimdTier::Avx2 {
        // Register-blocked fast path: when both `cols` and `group` are
        // multiples of 64, every 64-lane column panel of every row sits
        // inside a single quantization group, so the panel accumulates in
        // eight ymm registers across all rows with one scale broadcast per
        // row — no per-row output traffic, no segment walk. This covers
        // the square projections, row-major `down`, and the LM head;
        // ragged widths (e.g. the 172-wide gate/up) take the general
        // segment-walking kernel.
        // SAFETY: tier probe confirmed avx2+fma; bounds asserted above.
        if cols.is_multiple_of(64) && group.is_multiple_of(64) {
            unsafe { avx2::i8_gemv_panels(x, q, scales, cols, group, out) };
        } else {
            unsafe { avx2::i8_gemv(x, q, scales, cols, group, out) };
        }
        return;
    }
    portable::i8_gemv(x, q, scales, cols, group, out);
}

/// BF16-operand dot product: `Σ a[i] · decode(kb[i])`, widening each
/// `u16` bf16 payload to f32 in registers (shift-left-16 bit cast).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dot_bf16(a: &[f32], kb: &[u16]) -> f32 {
    assert_eq!(a.len(), kb.len(), "simd::dot_bf16: length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd_tier() == SimdTier::Avx2 {
        // SAFETY: tier probe confirmed avx2+fma.
        return unsafe { avx2::dot_bf16(a, kb) };
    }
    portable::dot_bf16(a, kb)
}

/// BF16-operand axpy: `out[i] += s · decode(vb[i])`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn axpy_bf16(out: &mut [f32], s: f32, vb: &[u16]) {
    assert_eq!(out.len(), vb.len(), "simd::axpy_bf16: length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd_tier() == SimdTier::Avx2 {
        // SAFETY: tier probe confirmed avx2+fma.
        unsafe { avx2::axpy_bf16(out, s, vb) };
        return;
    }
    portable::axpy_bf16(out, s, vb);
}

// ---------------------------------------------------------------------------
// Fused whole-head attention kernels
// ---------------------------------------------------------------------------
//
// Decode-time attention touches every cached position once per head; doing
// that as one `dot`/`axpy` call per position costs a dispatch, a slice
// bound check, and a horizontal reduction *per position* — thousands of
// calls per decoded token on the tiny proxies, which dominates the decode
// budget. These kernels move the position loop inside a single dispatched
// call: one call scores a whole head against the cache, one call mixes
// probs·V for a whole head.

/// Attention scores for one head over `out.len()` cached positions:
/// `out[j] = scale · Σ_d q[d] · kc[j·stride + off + d]` with f32 keys.
///
/// # Panics
///
/// Panics if the last position's head segment overruns `kc`.
pub fn attn_scores(q: &[f32], kc: &[f32], stride: usize, off: usize, scale: f32, out: &mut [f32]) {
    let n = out.len();
    assert!(
        n == 0 || (n - 1) * stride + off + q.len() <= kc.len(),
        "simd::attn_scores: cache overrun"
    );
    #[cfg(target_arch = "x86_64")]
    if simd_tier() == SimdTier::Avx2 {
        // SAFETY: tier probe confirmed avx2+fma; bounds asserted above.
        unsafe { avx2::attn_scores(q, kc, stride, off, scale, out) };
        return;
    }
    portable::attn_scores(q, kc, stride, off, scale, out);
}

/// Attention scores for one head with BF16 keys decoded in register:
/// `out[j] = scale · Σ_d q[d] · decode(kc[j·stride + off + d])`.
///
/// # Panics
///
/// Panics if the last position's head segment overruns `kc`.
pub fn attn_scores_bf16(
    q: &[f32],
    kc: &[u16],
    stride: usize,
    off: usize,
    scale: f32,
    out: &mut [f32],
) {
    let n = out.len();
    assert!(
        n == 0 || (n - 1) * stride + off + q.len() <= kc.len(),
        "simd::attn_scores_bf16: cache overrun"
    );
    #[cfg(target_arch = "x86_64")]
    if simd_tier() == SimdTier::Avx2 {
        // SAFETY: tier probe confirmed avx2+fma; bounds asserted above.
        unsafe { avx2::attn_scores_bf16(q, kc, stride, off, scale, out) };
        return;
    }
    portable::attn_scores_bf16(q, kc, stride, off, scale, out);
}

/// probs·V mix for one head over f32 values:
/// `out[d] += Σ_j p[j] · vc[j·stride + off + d]` (callers fold the softmax
/// denominator into `p` beforehand).
///
/// # Panics
///
/// Panics if the last position's head segment overruns `vc`.
pub fn attn_mix(p: &[f32], vc: &[f32], stride: usize, off: usize, out: &mut [f32]) {
    let n = p.len();
    assert!(
        n == 0 || (n - 1) * stride + off + out.len() <= vc.len(),
        "simd::attn_mix: cache overrun"
    );
    #[cfg(target_arch = "x86_64")]
    if simd_tier() == SimdTier::Avx2 {
        // SAFETY: tier probe confirmed avx2+fma; bounds asserted above.
        unsafe { avx2::attn_mix(p, vc, stride, off, out) };
        return;
    }
    portable::attn_mix(p, vc, stride, off, out);
}

/// probs·V mix for one head over BF16 values decoded in register:
/// `out[d] += Σ_j p[j] · decode(vc[j·stride + off + d])`.
///
/// # Panics
///
/// Panics if the last position's head segment overruns `vc`.
pub fn attn_mix_bf16(p: &[f32], vc: &[u16], stride: usize, off: usize, out: &mut [f32]) {
    let n = p.len();
    assert!(
        n == 0 || (n - 1) * stride + off + out.len() <= vc.len(),
        "simd::attn_mix_bf16: cache overrun"
    );
    #[cfg(target_arch = "x86_64")]
    if simd_tier() == SimdTier::Avx2 {
        // SAFETY: tier probe confirmed avx2+fma; bounds asserted above.
        unsafe { avx2::attn_mix_bf16(p, vc, stride, off, out) };
        return;
    }
    portable::attn_mix_bf16(p, vc, stride, off, out);
}

// ---------------------------------------------------------------------------
// Portable fallback: hand-unrolled 8-lane loops
// ---------------------------------------------------------------------------

mod portable {
    /// Splits a reduction into 8 independent lane accumulators combined
    /// pairwise at the end — the same association as the AVX2 tier's
    /// horizontal sum, so both tiers land within the same tolerance.
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        let mut acc = [0.0f32; 8];
        let chunks = a.len() / 8;
        for c in 0..chunks {
            let av = &a[c * 8..c * 8 + 8];
            let bv = &b[c * 8..c * 8 + 8];
            for i in 0..8 {
                acc[i] += av[i] * bv[i];
            }
        }
        let mut tail = 0.0f32;
        for i in chunks * 8..a.len() {
            tail += a[i] * b[i];
        }
        hsum8(acc) + tail
    }

    pub fn sum_squares(x: &[f32]) -> f32 {
        let mut acc = [0.0f32; 8];
        let chunks = x.len() / 8;
        for c in 0..chunks {
            let xv = &x[c * 8..c * 8 + 8];
            for i in 0..8 {
                acc[i] += xv[i] * xv[i];
            }
        }
        let mut tail = 0.0f32;
        for &v in &x[chunks * 8..] {
            tail += v * v;
        }
        hsum8(acc) + tail
    }

    pub fn max_slice(x: &[f32]) -> f32 {
        x.iter().cloned().fold(f32::MIN, f32::max)
    }

    pub fn axpy(out: &mut [f32], s: f32, x: &[f32]) {
        for (o, &v) in out.iter_mut().zip(x) {
            *o += s * v;
        }
    }

    pub fn scale_gain(out: &mut [f32], x: &[f32], inv: f32, gain: &[f32]) {
        for ((o, &v), &g) in out.iter_mut().zip(x).zip(gain) {
            *o = v * inv * g;
        }
    }

    pub fn silu_mul(a: &[f32], b: &[f32], out: &mut [f32]) {
        for ((o, &av), &bv) in out.iter_mut().zip(a).zip(b) {
            *o = av / (1.0 + (-av).exp()) * bv;
        }
    }

    pub fn softmax_exp_sum(row: &mut [f32], maxv: f32) -> f32 {
        let mut acc = [0.0f32; 8];
        let chunks = row.len() / 8;
        for c in 0..chunks {
            let lane = &mut row[c * 8..c * 8 + 8];
            for (i, e) in lane.iter_mut().enumerate() {
                *e = (*e - maxv).exp();
                acc[i] += *e;
            }
        }
        let mut tail = 0.0f32;
        for e in row[chunks * 8..].iter_mut() {
            *e = (*e - maxv).exp();
            tail += *e;
        }
        hsum8(acc) + tail
    }

    #[allow(clippy::too_many_arguments)]
    pub fn adam_weight_update(
        w: &mut [f32],
        g: &[f32],
        m: &mut [f32],
        v: &mut [f32],
        beta1: f32,
        beta2: f32,
        bc1: f32,
        bc2: f32,
        eps: f32,
        lr: f32,
        decay: f32,
    ) {
        for i in 0..g.len() {
            let gv = g[i];
            let mv = beta1 * m[i] + (1.0 - beta1) * gv;
            let vv = beta2 * v[i] + (1.0 - beta2) * gv * gv;
            m[i] = mv;
            v[i] = vv;
            let u = (mv / bc1) / ((vv / bc2).sqrt() + eps);
            w[i] = w[i] * decay + (-lr) * u;
        }
    }

    pub fn gemv_band(arow: &[f32], b: &[f32], n: usize, lo: usize, hi: usize, out: &mut [f32]) {
        for (p, &av) in arow.iter().enumerate() {
            let brow = &b[p * n + lo..p * n + hi];
            for (ov, &bv) in out.iter_mut().zip(brow) {
                *ov += av * bv;
            }
        }
    }

    pub fn tile_packed32(arow: &[f32], block: &[f32], orow: &mut [f32]) {
        let mut acc = [0.0f32; 32];
        for (brow, &av) in block.chunks_exact(32).zip(arow) {
            for (aj, &bv) in acc.iter_mut().zip(brow) {
                *aj += av * bv;
            }
        }
        orow.copy_from_slice(&acc);
    }

    pub fn i8_axpy(out: &mut [f32], s: f32, q: &[i8]) {
        for (o, &qv) in out.iter_mut().zip(q) {
            *o += s * f32::from(qv);
        }
    }

    pub fn i8_gemv(
        x: &[f32],
        q: &[i8],
        scales: &[f32],
        cols: usize,
        group: usize,
        out: &mut [f32],
    ) {
        // Same incremental group walk as the AVX2 tier — one division per
        // segment would dominate these short rows.
        let mut g = 0usize;
        let mut rem = 0usize;
        for (p, &xv) in x.iter().enumerate() {
            if xv != 0.0 {
                let base = p * cols;
                let mut j = 0;
                let mut gg = g;
                let mut seg_left = group - rem;
                while j < cols {
                    let width = seg_left.min(cols - j);
                    i8_axpy(
                        &mut out[j..j + width],
                        xv * scales[gg],
                        &q[base + j..base + j + width],
                    );
                    j += width;
                    gg += 1;
                    seg_left = group;
                }
            }
            rem += cols;
            while rem >= group {
                g += 1;
                rem -= group;
            }
        }
    }

    pub fn dot_bf16(a: &[f32], kb: &[u16]) -> f32 {
        let mut acc = [0.0f32; 8];
        let chunks = a.len() / 8;
        for c in 0..chunks {
            let av = &a[c * 8..c * 8 + 8];
            let kv = &kb[c * 8..c * 8 + 8];
            for i in 0..8 {
                acc[i] += av[i] * decode(kv[i]);
            }
        }
        let mut tail = 0.0f32;
        for i in chunks * 8..a.len() {
            tail += a[i] * decode(kb[i]);
        }
        hsum8(acc) + tail
    }

    pub fn axpy_bf16(out: &mut [f32], s: f32, vb: &[u16]) {
        for (o, &bv) in out.iter_mut().zip(vb) {
            *o += s * decode(bv);
        }
    }

    pub fn attn_scores(
        q: &[f32],
        kc: &[f32],
        stride: usize,
        off: usize,
        scale: f32,
        out: &mut [f32],
    ) {
        for (j, o) in out.iter_mut().enumerate() {
            let kh = &kc[j * stride + off..j * stride + off + q.len()];
            *o = dot(q, kh) * scale;
        }
    }

    pub fn attn_scores_bf16(
        q: &[f32],
        kc: &[u16],
        stride: usize,
        off: usize,
        scale: f32,
        out: &mut [f32],
    ) {
        for (j, o) in out.iter_mut().enumerate() {
            let kh = &kc[j * stride + off..j * stride + off + q.len()];
            *o = dot_bf16(q, kh) * scale;
        }
    }

    pub fn attn_mix(p: &[f32], vc: &[f32], stride: usize, off: usize, out: &mut [f32]) {
        for (j, &pj) in p.iter().enumerate() {
            let vh = &vc[j * stride + off..j * stride + off + out.len()];
            axpy(out, pj, vh);
        }
    }

    pub fn attn_mix_bf16(p: &[f32], vc: &[u16], stride: usize, off: usize, out: &mut [f32]) {
        for (j, &pj) in p.iter().enumerate() {
            let vh = &vc[j * stride + off..j * stride + off + out.len()];
            axpy_bf16(out, pj, vh);
        }
    }

    #[inline]
    fn decode(bits: u16) -> f32 {
        f32::from_bits(u32::from(bits) << 16)
    }

    /// Pairwise lane combine — mirrors the AVX2 horizontal-sum tree.
    #[inline]
    fn hsum8(acc: [f32; 8]) -> f32 {
        ((acc[0] + acc[4]) + (acc[2] + acc[6])) + ((acc[1] + acc[5]) + (acc[3] + acc[7]))
    }
}

// ---------------------------------------------------------------------------
// AVX2 + FMA tier
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::*;

    /// Horizontal sum of one f32x8 accumulator (pairwise tree; the
    /// portable tier's `hsum8` mirrors this association).
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn hsum(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps(v, 1);
        let s = _mm_add_ps(lo, hi);
        let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
        let s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
        _mm_cvtss_f32(s)
    }

    /// Polynomial `exp` (Cephes-style), ≲2 ULP over the softmax/SiLU
    /// range; inputs are clamped to ±88.37 so extremes saturate to
    /// 0 / f32::MAX-scale like libm does.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn exp_ps(x: __m256) -> __m256 {
        let hi = _mm256_set1_ps(88.376_26);
        let lo = _mm256_set1_ps(-88.376_26);
        let x = _mm256_min_ps(_mm256_max_ps(x, lo), hi);
        let log2e = _mm256_set1_ps(std::f32::consts::LOG2_E);
        let fx = _mm256_floor_ps(_mm256_fmadd_ps(x, log2e, _mm256_set1_ps(0.5)));
        // x −= fx·ln2, split into high/low parts for accuracy.
        let c1 = _mm256_set1_ps(0.693_359_4);
        let c2 = _mm256_set1_ps(-2.121_944_4e-4);
        let x = _mm256_fnmadd_ps(fx, c1, x);
        let x = _mm256_fnmadd_ps(fx, c2, x);
        let z = _mm256_mul_ps(x, x);
        let mut y = _mm256_set1_ps(1.987_569_1e-4);
        y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.398_199_9e-3));
        y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(8.333_452e-3));
        y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(4.166_579_6e-2));
        y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.666_666_5e-1));
        y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(0.5));
        y = _mm256_fmadd_ps(y, z, x);
        y = _mm256_add_ps(y, _mm256_set1_ps(1.0));
        // y ·= 2^fx via exponent-field construction.
        let emm0 = _mm256_cvttps_epi32(fx);
        let emm0 = _mm256_add_epi32(emm0, _mm256_set1_epi32(127));
        let pow2n = _mm256_castsi256_ps(_mm256_slli_epi32(emm0, 23));
        _mm256_mul_ps(y, pow2n)
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
        unsafe {
            let mut acc0 = _mm256_setzero_ps();
            let mut acc1 = _mm256_setzero_ps();
            let chunks = a.len() / 16;
            for c in 0..chunks {
                let pa = a.as_ptr().add(c * 16);
                let pb = b.as_ptr().add(c * 16);
                acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(pa), _mm256_loadu_ps(pb), acc0);
                acc1 =
                    _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(8)), _mm256_loadu_ps(pb.add(8)), acc1);
            }
            let mut i = chunks * 16;
            if i + 8 <= a.len() {
                acc0 = _mm256_fmadd_ps(
                    _mm256_loadu_ps(a.as_ptr().add(i)),
                    _mm256_loadu_ps(b.as_ptr().add(i)),
                    acc0,
                );
                i += 8;
            }
            let mut tail = 0.0f32;
            while i < a.len() {
                tail += a[i] * b[i];
                i += 1;
            }
            hsum(_mm256_add_ps(acc0, acc1)) + tail
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn sum_squares(x: &[f32]) -> f32 {
        unsafe {
            let mut acc = _mm256_setzero_ps();
            let chunks = x.len() / 8;
            for c in 0..chunks {
                let v = _mm256_loadu_ps(x.as_ptr().add(c * 8));
                acc = _mm256_fmadd_ps(v, v, acc);
            }
            let mut tail = 0.0f32;
            for &v in &x[chunks * 8..] {
                tail += v * v;
            }
            hsum(acc) + tail
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn max_slice(x: &[f32]) -> f32 {
        unsafe {
            let mut best = f32::MIN;
            let chunks = x.len() / 8;
            if chunks > 0 {
                let mut m = _mm256_loadu_ps(x.as_ptr());
                for c in 1..chunks {
                    m = _mm256_max_ps(m, _mm256_loadu_ps(x.as_ptr().add(c * 8)));
                }
                let mut lanes = [0.0f32; 8];
                _mm256_storeu_ps(lanes.as_mut_ptr(), m);
                for v in lanes {
                    best = best.max(v);
                }
            }
            for &v in &x[chunks * 8..] {
                best = best.max(v);
            }
            best
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn axpy(out: &mut [f32], s: f32, x: &[f32]) {
        unsafe {
            let sv = _mm256_set1_ps(s);
            let chunks = out.len() / 8;
            for c in 0..chunks {
                let po = out.as_mut_ptr().add(c * 8);
                let o = _mm256_loadu_ps(po);
                let v = _mm256_loadu_ps(x.as_ptr().add(c * 8));
                _mm256_storeu_ps(po, _mm256_fmadd_ps(sv, v, o));
            }
            for i in chunks * 8..out.len() {
                out[i] += s * x[i];
            }
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn scale_gain(out: &mut [f32], x: &[f32], inv: f32, gain: &[f32]) {
        unsafe {
            let iv = _mm256_set1_ps(inv);
            let chunks = out.len() / 8;
            for c in 0..chunks {
                let v = _mm256_loadu_ps(x.as_ptr().add(c * 8));
                let g = _mm256_loadu_ps(gain.as_ptr().add(c * 8));
                let r = _mm256_mul_ps(_mm256_mul_ps(v, iv), g);
                _mm256_storeu_ps(out.as_mut_ptr().add(c * 8), r);
            }
            for i in chunks * 8..out.len() {
                out[i] = x[i] * inv * gain[i];
            }
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn silu_mul(a: &[f32], b: &[f32], out: &mut [f32]) {
        unsafe {
            let one = _mm256_set1_ps(1.0);
            let chunks = out.len() / 8;
            for c in 0..chunks {
                let av = _mm256_loadu_ps(a.as_ptr().add(c * 8));
                let bv = _mm256_loadu_ps(b.as_ptr().add(c * 8));
                // σ(a) = 1 / (1 + e^{−a}); silu = a·σ(a).
                let e = exp_ps(_mm256_sub_ps(_mm256_setzero_ps(), av));
                let sig = _mm256_div_ps(one, _mm256_add_ps(one, e));
                let r = _mm256_mul_ps(_mm256_mul_ps(av, sig), bv);
                _mm256_storeu_ps(out.as_mut_ptr().add(c * 8), r);
            }
            for i in chunks * 8..out.len() {
                let av = a[i];
                out[i] = av / (1.0 + (-av).exp()) * b[i];
            }
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn softmax_exp_sum(row: &mut [f32], maxv: f32) -> f32 {
        unsafe {
            let mv = _mm256_set1_ps(maxv);
            let mut acc = _mm256_setzero_ps();
            let chunks = row.len() / 8;
            for c in 0..chunks {
                let p = row.as_mut_ptr().add(c * 8);
                let e = exp_ps(_mm256_sub_ps(_mm256_loadu_ps(p), mv));
                _mm256_storeu_ps(p, e);
                acc = _mm256_add_ps(acc, e);
            }
            let mut tail = 0.0f32;
            for e in row[chunks * 8..].iter_mut() {
                *e = (*e - maxv).exp();
                tail += *e;
            }
            hsum(acc) + tail
        }
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn adam_weight_update(
        w: &mut [f32],
        g: &[f32],
        m: &mut [f32],
        v: &mut [f32],
        beta1: f32,
        beta2: f32,
        bc1: f32,
        bc2: f32,
        eps: f32,
        lr: f32,
        decay: f32,
    ) {
        unsafe {
            let b1 = _mm256_set1_ps(beta1);
            let ob1 = _mm256_set1_ps(1.0 - beta1);
            let b2 = _mm256_set1_ps(beta2);
            let ob2 = _mm256_set1_ps(1.0 - beta2);
            let ibc1 = _mm256_set1_ps(1.0 / bc1);
            let ibc2 = _mm256_set1_ps(1.0 / bc2);
            let epsv = _mm256_set1_ps(eps);
            let lrv = _mm256_set1_ps(-lr);
            let dv = _mm256_set1_ps(decay);
            let chunks = g.len() / 8;
            for c in 0..chunks {
                let pg = g.as_ptr().add(c * 8);
                let pm = m.as_mut_ptr().add(c * 8);
                let pv = v.as_mut_ptr().add(c * 8);
                let pw = w.as_mut_ptr().add(c * 8);
                let gv = _mm256_loadu_ps(pg);
                let mv = _mm256_fmadd_ps(b1, _mm256_loadu_ps(pm), _mm256_mul_ps(ob1, gv));
                let vv = _mm256_fmadd_ps(
                    b2,
                    _mm256_loadu_ps(pv),
                    _mm256_mul_ps(_mm256_mul_ps(ob2, gv), gv),
                );
                _mm256_storeu_ps(pm, mv);
                _mm256_storeu_ps(pv, vv);
                let denom = _mm256_add_ps(_mm256_sqrt_ps(_mm256_mul_ps(vv, ibc2)), epsv);
                let u = _mm256_div_ps(_mm256_mul_ps(mv, ibc1), denom);
                let wv = _mm256_fmadd_ps(_mm256_loadu_ps(pw), dv, _mm256_mul_ps(lrv, u));
                _mm256_storeu_ps(pw, wv);
            }
            for i in chunks * 8..g.len() {
                let gv = g[i];
                let mv = beta1 * m[i] + (1.0 - beta1) * gv;
                let vv = beta2 * v[i] + (1.0 - beta2) * gv * gv;
                m[i] = mv;
                v[i] = vv;
                let u = (mv * (1.0 / bc1)) / ((vv * (1.0 / bc2)).sqrt() + eps);
                w[i] = w[i] * decay + (-lr) * u;
            }
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn gemv_band(
        arow: &[f32],
        b: &[f32],
        n: usize,
        lo: usize,
        hi: usize,
        out: &mut [f32],
    ) {
        unsafe {
            let width = hi - lo;
            let chunks = width / 8;
            for (p, &av) in arow.iter().enumerate() {
                let sv = _mm256_set1_ps(av);
                let brow = b.as_ptr().add(p * n + lo);
                for c in 0..chunks {
                    let po = out.as_mut_ptr().add(c * 8);
                    let o = _mm256_loadu_ps(po);
                    _mm256_storeu_ps(po, _mm256_fmadd_ps(sv, _mm256_loadu_ps(brow.add(c * 8)), o));
                }
                for (j, o) in out.iter_mut().enumerate().skip(chunks * 8) {
                    *o += av * *brow.add(j);
                }
            }
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn tile_packed32(arow: &[f32], block: &[f32], orow: &mut [f32]) {
        unsafe {
            let mut a0 = _mm256_setzero_ps();
            let mut a1 = _mm256_setzero_ps();
            let mut a2 = _mm256_setzero_ps();
            let mut a3 = _mm256_setzero_ps();
            for (p, &av) in arow.iter().enumerate() {
                let sv = _mm256_set1_ps(av);
                let pb = block.as_ptr().add(p * 32);
                a0 = _mm256_fmadd_ps(sv, _mm256_loadu_ps(pb), a0);
                a1 = _mm256_fmadd_ps(sv, _mm256_loadu_ps(pb.add(8)), a1);
                a2 = _mm256_fmadd_ps(sv, _mm256_loadu_ps(pb.add(16)), a2);
                a3 = _mm256_fmadd_ps(sv, _mm256_loadu_ps(pb.add(24)), a3);
            }
            _mm256_storeu_ps(orow.as_mut_ptr(), a0);
            _mm256_storeu_ps(orow.as_mut_ptr().add(8), a1);
            _mm256_storeu_ps(orow.as_mut_ptr().add(16), a2);
            _mm256_storeu_ps(orow.as_mut_ptr().add(24), a3);
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn i8_axpy(out: &mut [f32], s: f32, q: &[i8]) {
        unsafe {
            let sv = _mm256_set1_ps(s);
            let chunks = out.len() / 8;
            for c in 0..chunks {
                // 8 × i8 → i32 → f32, then FMA into the accumulator row.
                let qi = _mm_loadl_epi64(q.as_ptr().add(c * 8).cast());
                let qw = _mm256_cvtepi8_epi32(qi);
                let qf = _mm256_cvtepi32_ps(qw);
                let po = out.as_mut_ptr().add(c * 8);
                _mm256_storeu_ps(po, _mm256_fmadd_ps(sv, qf, _mm256_loadu_ps(po)));
            }
            for i in chunks * 8..out.len() {
                out[i] += s * f32::from(q[i]);
            }
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn i8_gemv(
        x: &[f32],
        q: &[i8],
        scales: &[f32],
        cols: usize,
        group: usize,
        out: &mut [f32],
    ) {
        unsafe {
            // Group index tracked incrementally across the flat row-major
            // walk — an integer division per segment costs more than the
            // whole 8-lane inner iteration at these row widths.
            let mut g = 0usize; // group index of the row's first element
            let mut rem = 0usize; // offset of the row start within group g
            for (p, &xv) in x.iter().enumerate() {
                if xv != 0.0 {
                    let base = p * cols;
                    let mut j = 0;
                    let mut gg = g;
                    let mut seg_left = group - rem;
                    while j < cols {
                        let width = seg_left.min(cols - j);
                        let s = xv * *scales.get_unchecked(gg);
                        let sv = _mm256_set1_ps(s);
                        let qp = q.as_ptr().add(base + j);
                        let chunks = width / 8;
                        for c in 0..chunks {
                            let qi = _mm_loadl_epi64(qp.add(c * 8).cast());
                            let qf = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(qi));
                            let po = out.as_mut_ptr().add(j + c * 8);
                            _mm256_storeu_ps(po, _mm256_fmadd_ps(sv, qf, _mm256_loadu_ps(po)));
                        }
                        for d in chunks * 8..width {
                            out[j + d] += s * f32::from(*qp.add(d));
                        }
                        j += width;
                        gg += 1;
                        seg_left = group;
                    }
                }
                rem += cols;
                while rem >= group {
                    g += 1;
                    rem -= group;
                }
            }
        }
    }

    /// Register-blocked dot-form gemv for shapes where every 64-lane column
    /// panel of every row lies inside one quantization group (caller checks
    /// `cols % 64 == 0 && group % 64 == 0`, which makes every panel's flat
    /// offset a multiple of 64 and hence group-aligned). Each panel holds
    /// its 64 partial sums in eight ymm accumulators across the whole row
    /// loop: one scale broadcast and eight convert+FMA chains per row, no
    /// per-row output loads/stores and no in-row segment walk.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn i8_gemv_panels(
        x: &[f32],
        q: &[i8],
        scales: &[f32],
        cols: usize,
        group: usize,
        out: &mut [f32],
    ) {
        unsafe {
            let rows = x.len();
            let mut jb = 0usize;
            while jb < cols {
                let mut acc = [_mm256_setzero_ps(); 8];
                // Group index of flat offset `p*cols + jb`, advanced by
                // remainder tracking instead of a division per row.
                let mut g = jb / group;
                let mut rem = jb % group;
                let mut qp = q.as_ptr().add(jb);
                for p in 0..rows {
                    let s = *x.get_unchecked(p) * *scales.get_unchecked(g);
                    let sv = _mm256_set1_ps(s);
                    for (r, a) in acc.iter_mut().enumerate() {
                        let qi = _mm_loadl_epi64(qp.add(r * 8).cast());
                        let qf = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(qi));
                        *a = _mm256_fmadd_ps(sv, qf, *a);
                    }
                    qp = qp.add(cols);
                    rem += cols;
                    while rem >= group {
                        g += 1;
                        rem -= group;
                    }
                }
                for (r, a) in acc.iter().enumerate() {
                    let po = out.as_mut_ptr().add(jb + r * 8);
                    _mm256_storeu_ps(po, _mm256_add_ps(_mm256_loadu_ps(po), *a));
                }
                jb += 64;
            }
        }
    }

    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn load_bf16x8(p: *const u16) -> __m256 {
        unsafe {
            let half = _mm_loadu_si128(p.cast());
            let wide = _mm256_cvtepu16_epi32(half);
            _mm256_castsi256_ps(_mm256_slli_epi32(wide, 16))
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot_bf16(a: &[f32], kb: &[u16]) -> f32 {
        unsafe {
            let mut acc = _mm256_setzero_ps();
            let chunks = a.len() / 8;
            for c in 0..chunks {
                let av = _mm256_loadu_ps(a.as_ptr().add(c * 8));
                let kv = load_bf16x8(kb.as_ptr().add(c * 8));
                acc = _mm256_fmadd_ps(av, kv, acc);
            }
            let mut tail = 0.0f32;
            for i in chunks * 8..a.len() {
                tail += a[i] * f32::from_bits(u32::from(kb[i]) << 16);
            }
            hsum(acc) + tail
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn attn_scores(
        q: &[f32],
        kc: &[f32],
        stride: usize,
        off: usize,
        scale: f32,
        out: &mut [f32],
    ) {
        unsafe {
            let hd = q.len();
            let chunks = hd / 8;
            for (j, o) in out.iter_mut().enumerate() {
                let kp = kc.as_ptr().add(j * stride + off);
                let mut acc = _mm256_setzero_ps();
                for c in 0..chunks {
                    acc = _mm256_fmadd_ps(
                        _mm256_loadu_ps(q.as_ptr().add(c * 8)),
                        _mm256_loadu_ps(kp.add(c * 8)),
                        acc,
                    );
                }
                let mut tail = 0.0f32;
                for (d, &qv) in q.iter().enumerate().skip(chunks * 8) {
                    tail += qv * *kp.add(d);
                }
                *o = (hsum(acc) + tail) * scale;
            }
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn attn_scores_bf16(
        q: &[f32],
        kc: &[u16],
        stride: usize,
        off: usize,
        scale: f32,
        out: &mut [f32],
    ) {
        unsafe {
            let hd = q.len();
            let chunks = hd / 8;
            for (j, o) in out.iter_mut().enumerate() {
                let kp = kc.as_ptr().add(j * stride + off);
                let mut acc = _mm256_setzero_ps();
                for c in 0..chunks {
                    acc = _mm256_fmadd_ps(
                        _mm256_loadu_ps(q.as_ptr().add(c * 8)),
                        load_bf16x8(kp.add(c * 8)),
                        acc,
                    );
                }
                let mut tail = 0.0f32;
                for (d, &qv) in q.iter().enumerate().skip(chunks * 8) {
                    tail += qv * f32::from_bits(u32::from(*kp.add(d)) << 16);
                }
                *o = (hsum(acc) + tail) * scale;
            }
        }
    }

    /// Shared structure of the f32/BF16 mixes: accumulate up to 32 output
    /// lanes in registers across the whole position loop, so each `vc`
    /// element is touched exactly once and `out` is written exactly once.
    macro_rules! attn_mix_impl {
        ($p:ident, $vc:ident, $stride:ident, $off:ident, $out:ident, $load:ident, $dec:ident) => {{
            let hd = $out.len();
            let mut base = 0usize;
            // Blocks of 32 lanes (4 accumulators), then 8, then scalar tail.
            while base + 8 <= hd {
                let width = ((hd - base) / 8).min(4) * 8;
                let mut acc = [_mm256_setzero_ps(); 4];
                let regs = width / 8;
                for (j, &pj) in $p.iter().enumerate() {
                    let sv = _mm256_set1_ps(pj);
                    let vp = $vc.as_ptr().add(j * $stride + $off + base);
                    for (r, a) in acc.iter_mut().take(regs).enumerate() {
                        *a = _mm256_fmadd_ps(sv, $load(vp.add(r * 8)), *a);
                    }
                }
                for (r, a) in acc.iter().take(regs).enumerate() {
                    let po = $out.as_mut_ptr().add(base + r * 8);
                    _mm256_storeu_ps(po, _mm256_add_ps(_mm256_loadu_ps(po), *a));
                }
                base += width;
            }
            for d in base..hd {
                let mut acc = 0.0f32;
                for (j, &pj) in $p.iter().enumerate() {
                    acc += pj * $dec($vc.as_ptr().add(j * $stride + $off + d));
                }
                $out[d] += acc;
            }
        }};
    }

    #[inline]
    unsafe fn decode_elem(p: *const f32) -> f32 {
        unsafe { *p }
    }

    #[inline]
    unsafe fn decode_elem_bf16(p: *const u16) -> f32 {
        unsafe { f32::from_bits(u32::from(*p) << 16) }
    }

    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn load_f32x8(p: *const f32) -> __m256 {
        unsafe { _mm256_loadu_ps(p) }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn attn_mix(p: &[f32], vc: &[f32], stride: usize, off: usize, out: &mut [f32]) {
        unsafe { attn_mix_impl!(p, vc, stride, off, out, load_f32x8, decode_elem) }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn attn_mix_bf16(p: &[f32], vc: &[u16], stride: usize, off: usize, out: &mut [f32]) {
        unsafe { attn_mix_impl!(p, vc, stride, off, out, load_bf16x8, decode_elem_bf16) }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn axpy_bf16(out: &mut [f32], s: f32, vb: &[u16]) {
        unsafe {
            let sv = _mm256_set1_ps(s);
            let chunks = out.len() / 8;
            for c in 0..chunks {
                let vv = load_bf16x8(vb.as_ptr().add(c * 8));
                let po = out.as_mut_ptr().add(c * 8);
                _mm256_storeu_ps(po, _mm256_fmadd_ps(sv, vv, _mm256_loadu_ps(po)));
            }
            for i in chunks * 8..out.len() {
                out[i] += s * f32::from_bits(u32::from(vb[i]) << 16);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    fn randvec(n: usize, rng: &mut Rng) -> Vec<f32> {
        (0..n).map(|_| rng.gauss()).collect()
    }

    fn rel_err(a: f32, b: f32) -> f32 {
        (a - b).abs() / b.abs().max(1e-6)
    }

    #[test]
    fn dot_matches_reference_within_tolerance() {
        let mut rng = Rng::seed_from_u64(11);
        for n in [0usize, 1, 7, 8, 16, 33, 257] {
            let a = randvec(n, &mut rng);
            let b = randvec(n, &mut rng);
            let exact: f64 = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| f64::from(x) * f64::from(y))
                .sum();
            let fast = dot(&a, &b);
            assert!(
                (f64::from(fast) - exact).abs() <= 1e-4 * exact.abs().max(1.0),
                "n={n}: {fast} vs {exact}"
            );
        }
    }

    #[test]
    fn exp_paths_agree_with_libm() {
        let mut row: Vec<f32> = (-40..=40).map(|i| i as f32 * 0.5).collect();
        let reference: Vec<f32> = row.iter().map(|&x| x.exp()).collect();
        let sum = softmax_exp_sum(&mut row, 0.0);
        let mut ref_sum = 0.0f64;
        for (&got, &want) in row.iter().zip(&reference) {
            assert!(rel_err(got, want) < 1e-5, "exp({want:?}): {got} vs {want}");
            ref_sum += f64::from(want);
        }
        assert!((f64::from(sum) - ref_sum).abs() <= 1e-4 * ref_sum);
    }

    #[test]
    fn i8_and_bf16_operand_kernels_match_scalar() {
        let mut rng = Rng::seed_from_u64(12);
        for n in [1usize, 5, 8, 24, 100] {
            let q: Vec<i8> = (0..n).map(|_| (rng.gauss() * 40.0) as i8).collect();
            let mut out = vec![0.0f32; n];
            i8_axpy(&mut out, 0.25, &q);
            for (o, &qv) in out.iter().zip(&q) {
                assert_eq!(*o, 0.25 * f32::from(qv));
            }

            let x = randvec(n, &mut rng);
            let kb: Vec<u16> = x.iter().map(|&v| (v.to_bits() >> 16) as u16).collect();
            let want: f32 = x
                .iter()
                .zip(&kb)
                .map(|(&a, &k)| a * f32::from_bits(u32::from(k) << 16))
                .sum();
            let got = dot_bf16(&x, &kb);
            assert!((got - want).abs() <= 1e-3 * want.abs().max(1.0));
        }
    }

    #[test]
    fn i8_gemv_matches_reference_on_panel_and_ragged_shapes() {
        let mut rng = Rng::seed_from_u64(15);
        // (rows, cols, group): first three hit the register-blocked panel
        // path (cols and group both multiples of 64), the rest the general
        // segment walk (ragged widths, groups crossing row boundaries).
        for (rows, cols, group) in [
            (64usize, 64usize, 128usize),
            (172, 64, 128),
            (64, 512, 64),
            (64, 172, 128),
            (5, 13, 7),
        ] {
            let x = randvec(rows, &mut rng);
            let q: Vec<i8> = (0..rows * cols)
                .map(|_| (rng.gauss() * 40.0) as i8)
                .collect();
            let scales: Vec<f32> = (0..(rows * cols).div_ceil(group))
                .map(|_| rng.gauss().abs() * 0.1 + 0.01)
                .collect();
            let mut out = vec![0.0f32; cols];
            i8_gemv(&x, &q, &scales, cols, group, &mut out);
            for (j, &got) in out.iter().enumerate() {
                let want: f64 = (0..rows)
                    .map(|p| {
                        let flat = p * cols + j;
                        f64::from(x[p]) * f64::from(scales[flat / group]) * f64::from(q[flat])
                    })
                    .sum();
                assert!(
                    (f64::from(got) - want).abs() <= 1e-4 * want.abs().max(1.0),
                    "{rows}x{cols} g{group} j={j}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn fused_attention_kernels_match_per_position_loops() {
        let mut rng = Rng::seed_from_u64(14);
        // hd sweeps a vector-multiple and a ragged width; stride > hd
        // exercises the strided cache walk with off != 0.
        for (hd, stride, off, n_pos) in [(16usize, 64usize, 16usize, 20usize), (12, 40, 4, 7)] {
            let q = randvec(hd, &mut rng);
            let kc = randvec((n_pos - 1) * stride + off + hd, &mut rng);
            let kb: Vec<u16> = kc.iter().map(|&v| (v.to_bits() >> 16) as u16).collect();
            let scale = 0.25f32;

            let mut scores = vec![0.0f32; n_pos];
            attn_scores(&q, &kc, stride, off, scale, &mut scores);
            for (j, &got) in scores.iter().enumerate() {
                let want: f64 = (0..hd)
                    .map(|d| f64::from(q[d]) * f64::from(kc[j * stride + off + d]))
                    .sum::<f64>()
                    * f64::from(scale);
                assert!(
                    (f64::from(got) - want).abs() <= 1e-4 * want.abs().max(1.0),
                    "j={j}"
                );
            }
            let mut scores_b = vec![0.0f32; n_pos];
            attn_scores_bf16(&q, &kb, stride, off, scale, &mut scores_b);
            for (j, &got) in scores_b.iter().enumerate() {
                let want: f32 = (0..hd)
                    .map(|d| q[d] * f32::from_bits(u32::from(kb[j * stride + off + d]) << 16))
                    .sum::<f32>()
                    * scale;
                assert!(
                    (got - want).abs() <= 1e-3 * want.abs().max(1.0),
                    "bf16 j={j}"
                );
            }

            let p = randvec(n_pos, &mut rng);
            let mut mixed = vec![1.0f32; hd];
            attn_mix(&p, &kc, stride, off, &mut mixed);
            for d in 0..hd {
                let want: f64 = 1.0
                    + (0..n_pos)
                        .map(|j| f64::from(p[j]) * f64::from(kc[j * stride + off + d]))
                        .sum::<f64>();
                assert!(
                    (f64::from(mixed[d]) - want).abs() <= 1e-4 * want.abs().max(1.0),
                    "d={d}"
                );
            }
            let mut mixed_b = vec![0.0f32; hd];
            attn_mix_bf16(&p, &kb, stride, off, &mut mixed_b);
            for d in 0..hd {
                let want: f64 = (0..n_pos)
                    .map(|j| {
                        f64::from(p[j])
                            * f64::from(f32::from_bits(u32::from(kb[j * stride + off + d]) << 16))
                    })
                    .sum();
                assert!(
                    (f64::from(mixed_b[d]) - want).abs() <= 1e-4 * want.abs().max(1.0),
                    "bf16 d={d}"
                );
            }
        }
    }

    #[test]
    fn gemv_band_matches_exact_band() {
        let mut rng = Rng::seed_from_u64(13);
        let (k, n) = (37, 53);
        let a = randvec(k, &mut rng);
        let b = randvec(k * n, &mut rng);
        let mut fast = vec![0.0f32; n];
        gemv_band(&a, &b, n, 0, n, &mut fast);
        for j in 0..n {
            let exact: f64 = (0..k)
                .map(|p| f64::from(a[p]) * f64::from(b[p * n + j]))
                .sum();
            assert!(
                (f64::from(fast[j]) - exact).abs() <= 1e-4 * exact.abs().max(1.0),
                "col {j}"
            );
        }
    }
}
