//! AdamW (full-precision and 8-bit state variants) and the Section-3
//! structured channel-wise AdamW used to motivate APOLLO.

use apollo_obs::{Obs, TraceEvent};
use apollo_tensor::Matrix;

use crate::limiter::{LimiterOutcome, NormGrowthLimiter};
use crate::state::{StateReader, StateWriter};
use crate::{
    check_state_header, norm_ratio_scales, save_state_header, AdamMoments, Optimizer, ParamUpdate,
};

/// The AdamW baseline (Loshchilov & Hutter), with optional block-wise
/// 8-bit state quantization.
///
/// Full state: first and second moments, `2mn` per `m × n` tensor — the
/// memory burden the paper sets out to remove.
#[derive(Debug, Clone)]
pub struct AdamW {
    /// First-moment decay β₁.
    pub beta1: f32,
    /// Second-moment decay β₂.
    pub beta2: f32,
    /// Numerical-stability ε.
    pub eps: f32,
    /// Decoupled weight decay λ.
    pub weight_decay: f32,
    quant_group: Option<usize>,
    states: Vec<AdamMoments>,
}

impl AdamW {
    /// Standard AdamW (β₁=0.9, β₂=0.999, ε=1e-8, λ=0).
    pub fn new() -> Self {
        AdamW {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            quant_group: None,
            states: Vec::new(),
        }
    }

    /// 8-bit Adam: moments stored block-wise INT8-quantized with the given
    /// group size (128 in the paper's references).
    pub fn adam8bit(group: usize) -> Self {
        AdamW {
            quant_group: Some(group),
            ..Self::new()
        }
    }

    /// Sets the decoupled weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }
}

impl Default for AdamW {
    fn default() -> Self {
        Self::new()
    }
}

impl Optimizer for AdamW {
    fn name(&self) -> String {
        match self.quant_group {
            None => "AdamW".to_string(),
            Some(g) => format!("8-bit Adam(g={g})"),
        }
    }

    fn step(&mut self, params: &mut [ParamUpdate<'_>], lr: f32) {
        if self.states.is_empty() {
            self.states = params
                .iter()
                .map(|p| {
                    let (r, c) = p.value.shape();
                    match self.quant_group {
                        None => AdamMoments::new(r, c),
                        Some(group) => AdamMoments::new_quantized(r, c, group),
                    }
                })
                .collect();
        }
        assert_eq!(self.states.len(), params.len(), "parameter list changed");
        for (p, st) in params.iter_mut().zip(&mut self.states) {
            st.step_weight(
                p.value,
                p.grad,
                self.beta1,
                self.beta2,
                self.eps,
                lr,
                self.weight_decay,
            );
        }
    }

    fn state_elems(&self) -> usize {
        self.states.iter().map(AdamMoments::elems).sum()
    }

    fn state_bytes(&self) -> usize {
        self.states.iter().map(AdamMoments::bytes).sum()
    }

    fn reset_state(&mut self) {
        self.states.clear();
    }

    fn state_save(&self) -> Result<Vec<u8>, String> {
        let mut w = StateWriter::new();
        save_state_header(&mut w, &self.name());
        w.u64(self.states.len() as u64);
        for st in &self.states {
            st.save_into(&mut w);
        }
        Ok(w.into_bytes())
    }

    fn state_load(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = StateReader::new(bytes);
        check_state_header(&mut r, &self.name())?;
        let n = r.len()?;
        let mut states = Vec::with_capacity(n);
        for _ in 0..n {
            states.push(AdamMoments::load_from(&mut r)?);
        }
        r.expect_exhausted()?;
        self.states = states;
        Ok(())
    }
}

/// AdamW with the paper's **structured channel-wise learning-rate rule**
/// (Section 3.2, Fig. 3): maintains full AdamW moments, but applies the
/// update as `G · diag(s)` with one norm-ratio factor per channel instead of
/// element-wise, optionally guarded by the norm-growth limiter.
///
/// Same memory as AdamW — this optimizer exists to *validate the coarsening*
/// that APOLLO later makes memory-efficient, and to provide the full-rank
/// golden reference for the √(n/r) scaling-factor study (Fig. 4).
#[derive(Debug, Clone)]
pub struct AdamWChannelwise {
    /// First-moment decay β₁.
    pub beta1: f32,
    /// Second-moment decay β₂.
    pub beta2: f32,
    /// Numerical-stability ε.
    pub eps: f32,
    /// Decoupled weight decay λ.
    pub weight_decay: f32,
    /// Whether the norm-growth limiter guards each tensor update.
    pub use_limiter: bool,
    states: Vec<AdamMoments>,
    limiters: Vec<NormGrowthLimiter>,
    /// Per-param full-rank scratch for the scaled update — reused
    /// allocations, not optimizer state (excluded from `state_elems` and
    /// save/load).
    bufs: Vec<Matrix>,
    /// Channel scaling factors of the last step, per parameter (empty for
    /// non-projectable tensors). Consumed by the Fig. 4 probe.
    pub last_scales: Vec<Vec<f32>>,
    /// Observability handle; disabled (free) unless attached.
    obs: Obs,
}

impl AdamWChannelwise {
    /// Creates the structured-rule optimizer (limiter on, γ = 1.01).
    pub fn new() -> Self {
        AdamWChannelwise {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            use_limiter: true,
            states: Vec::new(),
            limiters: Vec::new(),
            bufs: Vec::new(),
            last_scales: Vec::new(),
            obs: Obs::disabled(),
        }
    }

    /// Disables the norm-growth limiter (the orange curve of Fig. 3).
    pub fn without_limiter(mut self) -> Self {
        self.use_limiter = false;
        self
    }
}

impl Default for AdamWChannelwise {
    fn default() -> Self {
        Self::new()
    }
}

impl Optimizer for AdamWChannelwise {
    fn name(&self) -> String {
        if self.use_limiter {
            "AdamW-channelwise+NL".to_string()
        } else {
            "AdamW-channelwise".to_string()
        }
    }

    fn step(&mut self, params: &mut [ParamUpdate<'_>], lr: f32) {
        if self.states.is_empty() {
            self.states = params
                .iter()
                .map(|p| AdamMoments::new(p.value.rows(), p.value.cols()))
                .collect();
            self.limiters = params
                .iter()
                .map(|_| NormGrowthLimiter::paper_default())
                .collect();
            self.bufs = params.iter().map(|_| Matrix::zeros(0, 0)).collect();
            self.last_scales = vec![Vec::new(); params.len()];
        }
        assert_eq!(self.states.len(), params.len(), "parameter list changed");
        for (i, p) in params.iter_mut().enumerate() {
            let gt = self.states[i].update(p.grad, self.beta1, self.beta2, self.eps);
            // Build the applied update in per-param scratch instead of
            // cloning a full matrix every step.
            let update = &mut self.bufs[i];
            if p.projectable && p.value.rows() > 1 && p.value.cols() > 1 {
                // Channel along the larger dimension (Eq. 3).
                let along_cols = p.value.rows() <= p.value.cols();
                let s = norm_ratio_scales(gt, p.grad, along_cols);
                update.copy_from(p.grad);
                if along_cols {
                    update.scale_cols(&s);
                } else {
                    update.scale_rows(&s);
                }
                self.last_scales[i] = s;
            } else {
                update.copy_from(gt);
                self.last_scales[i].clear();
            }
            if self.obs.sample_due() && self.obs.has_trace() {
                if let Some(ev) =
                    apollo_obs::scale_summary(self.obs.step(), p.name, &self.last_scales[i])
                {
                    self.obs.emit(|| ev);
                }
            }
            if self.use_limiter {
                let pre = if self.obs.has_trace() {
                    update.fro_norm()
                } else {
                    0.0
                };
                match self.limiters[i].apply(update) {
                    LimiterOutcome::Clamped => {
                        self.obs.counter("limiter_clips", 1);
                        if self.obs.has_trace() {
                            let post = update.fro_norm();
                            let ratio = if post > 1e-30 { pre / post } else { 1.0 };
                            let step = self.obs.step();
                            let name = p.name;
                            self.obs.emit(|| TraceEvent::LimiterClip {
                                step,
                                param: name.to_string(),
                                ratio,
                            });
                        }
                    }
                    LimiterOutcome::NonFinite => {
                        self.obs.counter("limiter_non_finite", 1);
                    }
                    LimiterOutcome::Passed => {}
                }
            }
            let decay = if self.weight_decay > 0.0 {
                1.0 - lr * self.weight_decay
            } else {
                1.0
            };
            apollo_tensor::fused::fused_axpy_chain(p.value, decay, -lr, update);
        }
    }

    fn state_elems(&self) -> usize {
        let moments: usize = self.states.iter().map(AdamMoments::elems).sum();
        let limiter = if self.use_limiter {
            self.limiters.len()
        } else {
            0
        };
        moments + limiter
    }

    fn reset_state(&mut self) {
        self.states.clear();
        self.limiters.clear();
        self.bufs.clear();
        self.last_scales.clear();
    }

    fn attach_observer(&mut self, obs: Obs) {
        self.obs = obs;
    }

    fn state_save(&self) -> Result<Vec<u8>, String> {
        let mut w = StateWriter::new();
        save_state_header(&mut w, &self.name());
        w.u64(self.states.len() as u64);
        for st in &self.states {
            st.save_into(&mut w);
        }
        w.u64(self.limiters.len() as u64);
        for l in &self.limiters {
            l.save_into(&mut w);
        }
        w.u64(self.last_scales.len() as u64);
        for s in &self.last_scales {
            w.f32_slice(s);
        }
        Ok(w.into_bytes())
    }

    fn state_load(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = StateReader::new(bytes);
        check_state_header(&mut r, &self.name())?;
        let n = r.len()?;
        let mut states = Vec::with_capacity(n);
        for _ in 0..n {
            states.push(AdamMoments::load_from(&mut r)?);
        }
        let nl = r.len()?;
        if nl != n {
            return Err(format!("limiter count {nl} != moment count {n}"));
        }
        let mut limiters = Vec::with_capacity(nl);
        for _ in 0..nl {
            limiters.push(NormGrowthLimiter::load_from(&mut r)?);
        }
        let ns = r.len()?;
        let mut last_scales = Vec::with_capacity(ns);
        for _ in 0..ns {
            last_scales.push(r.f32_slice()?);
        }
        r.expect_exhausted()?;
        self.bufs = (0..states.len()).map(|_| Matrix::zeros(0, 0)).collect();
        self.states = states;
        self.limiters = limiters;
        self.last_scales = last_scales;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apollo_tensor::{Matrix, Rng};

    fn one_param_step(opt: &mut dyn Optimizer, w: &mut Matrix, g: &Matrix, lr: f32) {
        let mut params = [ParamUpdate {
            name: "w",
            value: w,
            grad: g,
            projectable: true,
        }];
        opt.step(&mut params, lr);
    }

    #[test]
    fn adamw_first_step_is_signed_lr() {
        // With bias correction, step 1 moves each weight by ≈ lr·sign(g).
        let mut w = Matrix::zeros(1, 3);
        let g = Matrix::from_rows(&[&[0.3, -2.0, 0.0]]);
        let mut opt = AdamW::new();
        one_param_step(&mut opt, &mut w, &g, 0.1);
        assert!((w.get(0, 0) + 0.1).abs() < 1e-3);
        assert!((w.get(0, 1) - 0.1).abs() < 1e-3);
        assert_eq!(w.get(0, 2), 0.0);
    }

    #[test]
    fn adamw_converges_on_quadratic() {
        let mut w = Matrix::full(4, 4, 3.0);
        let mut opt = AdamW::new();
        // Quadratic loss ½‖w‖² ⇒ gradient = w; refresh a reused buffer
        // instead of cloning a fresh matrix every iteration.
        let mut g = Matrix::zeros(4, 4);
        for _ in 0..300 {
            g.copy_from(&w);
            one_param_step(&mut opt, &mut w, &g, 0.05);
        }
        assert!(w.fro_norm() < 0.2, "‖w‖ = {}", w.fro_norm());
    }

    #[test]
    fn adamw_state_is_2mn() {
        let mut w = Matrix::zeros(6, 10);
        let g = Matrix::full(6, 10, 1.0);
        let mut opt = AdamW::new();
        one_param_step(&mut opt, &mut w, &g, 0.01);
        assert_eq!(opt.state_elems(), 2 * 6 * 10);
        assert_eq!(opt.state_bytes(), 8 * 6 * 10);
    }

    #[test]
    fn adamw_weight_decay_pulls_toward_zero() {
        let mut w = Matrix::full(1, 1, 1.0);
        let g = Matrix::zeros(1, 1);
        let mut opt = AdamW::new().with_weight_decay(0.1);
        one_param_step(&mut opt, &mut w, &g, 0.1);
        assert!(w.get(0, 0) < 1.0);
    }

    #[test]
    fn adam8bit_tracks_full_adam_direction() {
        let mut rng = Rng::seed_from_u64(70);
        let g = Matrix::randn(8, 32, &mut rng);
        let mut w_full = Matrix::zeros(8, 32);
        let mut w_q = Matrix::zeros(8, 32);
        let mut full = AdamW::new();
        let mut quant = AdamW::adam8bit(32);
        for _ in 0..5 {
            one_param_step(&mut full, &mut w_full, &g, 0.01);
            one_param_step(&mut quant, &mut w_q, &g, 0.01);
        }
        let dot: f32 = w_full
            .as_slice()
            .iter()
            .zip(w_q.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        let cos = dot / (w_full.fro_norm() * w_q.fro_norm());
        assert!(cos > 0.98, "cosine {cos}");
    }

    #[test]
    fn adam8bit_state_bytes_are_about_a_quarter() {
        let mut w = Matrix::zeros(16, 128);
        let g = Matrix::full(16, 128, 1.0);
        let mut opt = AdamW::adam8bit(128);
        one_param_step(&mut opt, &mut w, &g, 0.01);
        let full_bytes = 4 * 2 * 16 * 128;
        assert!(opt.state_bytes() * 3 < full_bytes, "{}", opt.state_bytes());
    }

    #[test]
    fn channelwise_converges_on_quadratic() {
        let mut w = Matrix::full(4, 8, 3.0);
        let mut opt = AdamWChannelwise::new();
        let mut g = Matrix::zeros(4, 8);
        for _ in 0..400 {
            g.copy_from(&w);
            one_param_step(&mut opt, &mut w, &g, 0.05);
        }
        assert!(w.fro_norm() < 0.5, "‖w‖ = {}", w.fro_norm());
    }

    #[test]
    fn channelwise_update_is_scaled_raw_gradient() {
        // The update direction per channel must be parallel to the raw
        // gradient column, not the Adam update.
        let mut rng = Rng::seed_from_u64(71);
        let g = Matrix::randn(4, 8, &mut rng);
        let mut w = Matrix::zeros(4, 8);
        let mut opt = AdamWChannelwise::new().without_limiter();
        one_param_step(&mut opt, &mut w, &g, 1.0);
        // w = −G·diag(s) ⇒ each column of w ∝ corresponding column of g.
        for j in 0..8 {
            let wcol = w.col(j);
            let gcol = g.col(j);
            let dot: f32 = wcol.iter().zip(&gcol).map(|(a, b)| a * b).sum();
            let na = wcol.iter().map(|x| x * x).sum::<f32>().sqrt();
            let nb = gcol.iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!(
                (dot.abs() / (na * nb) - 1.0).abs() < 1e-4,
                "column {j} not parallel"
            );
        }
    }

    #[test]
    fn channelwise_exposes_scaling_factors() {
        let mut rng = Rng::seed_from_u64(72);
        let g = Matrix::randn(4, 8, &mut rng);
        let mut w = Matrix::zeros(4, 8);
        let mut opt = AdamWChannelwise::new();
        one_param_step(&mut opt, &mut w, &g, 0.01);
        assert_eq!(opt.last_scales[0].len(), 8);
        assert!(opt.last_scales[0].iter().all(|&s| s > 0.0));
    }

    #[test]
    fn channelwise_falls_back_to_elementwise_for_vectors() {
        let mut w = Matrix::zeros(1, 8);
        let g = Matrix::full(1, 8, 1.0);
        let mut opt = AdamWChannelwise::new();
        let mut params = [ParamUpdate {
            name: "norm.gain",
            value: &mut w,
            grad: &g,
            projectable: false,
        }];
        opt.step(&mut params, 0.1);
        assert!(opt.last_scales[0].is_empty());
        assert!(w.get(0, 0) < 0.0);
    }

    #[test]
    fn channelwise_state_includes_limiter_scalars() {
        let mut w = Matrix::zeros(4, 8);
        let g = Matrix::full(4, 8, 1.0);
        let mut opt = AdamWChannelwise::new();
        one_param_step(&mut opt, &mut w, &g, 0.1);
        assert_eq!(opt.state_elems(), 2 * 4 * 8 + 1);
    }
}
