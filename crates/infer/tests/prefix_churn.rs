//! Prefix-cache correctness under churn, at the scheduler level.
//!
//! The contract pinned here: serving with the radix-tree prefix cache
//! enabled — under eviction pressure, re-insertion, `CacheFull`
//! retirement, mid-stream cancellation, and mixed-adapter batches — is
//! **byte-identical** to serving the same requests cold, one at a time,
//! with the cache disabled. Eviction plus re-insertion must never serve
//! stale KV rows.

use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock};

use apollo_infer::{GenConfig, GenRequest, GenResult, Outcome, SchedConfig, Scheduler, ServeStats};
use apollo_nn::{AdapterRegistry, DecodeBackend, LinearMode, LlamaModel, LoraAdapter, ModelConfig};
use apollo_obs::Obs;
use apollo_tensor::{Matrix, Rng};
use proptest::prelude::*;

/// A LoRA model with nonzero adapters (B is zero-initialized, so perturb it).
fn nonzero_lora(cfg: &ModelConfig, seed: u64) -> LlamaModel {
    let mut rng = Rng::seed_from_u64(seed);
    let mut model = LlamaModel::new(
        cfg,
        LinearMode::LoRa {
            rank: 2,
            alpha: 4.0,
        },
        &mut rng,
    );
    for p in &mut model.params {
        if p.name.ends_with(".lora_b") {
            p.value = Matrix::randn(p.value.rows(), p.value.cols(), &mut rng);
        }
    }
    model
}

/// The dense model a LoRA model decomposes over: `.base` backbones become
/// the dense weights; embedding, norms and head copy across by name.
fn dense_base_of(lora: &LlamaModel) -> LlamaModel {
    let mut rng = Rng::seed_from_u64(0);
    let mut dense = LlamaModel::new(lora.config(), LinearMode::Dense, &mut rng);
    for p in &mut dense.params {
        let base_name = format!("{}.base", p.name);
        let src = lora
            .params
            .iter()
            .find(|q| q.name == p.name || q.name == base_name)
            .unwrap_or_else(|| panic!("no LoRA source for {}", p.name));
        p.value = src.value.clone();
    }
    dense
}

/// Shared serving stack: one dense base model, three distinct resident
/// adapters (`t0..t2`), and the byte size of one exported KV row.
fn stack() -> &'static (Arc<LlamaModel>, Arc<AdapterRegistry>, usize) {
    static STACK: OnceLock<(Arc<LlamaModel>, Arc<AdapterRegistry>, usize)> = OnceLock::new();
    STACK.get_or_init(|| {
        let cfg = ModelConfig::test_tiny();
        let base = Arc::new(dense_base_of(&nonzero_lora(&cfg, 0xC0A)));
        let adapters: Vec<(String, LoraAdapter)> = (0..3u64)
            .map(|i| {
                let m = nonzero_lora(&cfg, 0xC0B + i);
                (format!("t{i}"), LoraAdapter::from_model(&m).unwrap())
            })
            .collect();
        let registry = Arc::new(AdapterRegistry::resident(adapters));
        let backend = DecodeBackend::from(Arc::clone(&base));
        let mut caches = backend.new_caches(1, 8);
        backend.forward_cached(&mut caches, &[(0, 1), (0, 2)]);
        let row_bytes = caches.export_rows(0, 0, 2).memory_bytes() / 2;
        assert!(row_bytes > 0);
        (base, registry, row_bytes)
    })
}

fn sched_cfg(prefix_cache_bytes: usize, max_active: usize, kv_capacity: usize) -> SchedConfig {
    SchedConfig {
        max_active,
        queue_cap: 64,
        prefill_chunk: 4,
        kv_capacity,
        prefix_cache_bytes,
    }
}

fn multi_scheduler(cfg: SchedConfig) -> Scheduler {
    let (model, registry, _) = stack();
    Scheduler::new_multi(
        Arc::clone(model),
        cfg,
        Obs::disabled(),
        Arc::clone(registry),
        Arc::new(ServeStats::default()),
    )
}

/// The cold reference: each request alone through a one-slot scheduler
/// with the prefix cache disabled.
fn serve_serially(reqs: &[GenRequest], kv_capacity: usize) -> Vec<(Vec<u32>, Outcome)> {
    reqs.iter()
        .map(|r| {
            let mut s = multi_scheduler(sched_cfg(0, 1, kv_capacity));
            s.submit(r.clone()).expect("serial submit fits");
            let res = s.run_to_completion();
            assert_eq!(res.len(), 1);
            (res[0].tokens.clone(), res[0].outcome)
        })
        .collect()
}

/// Asserts each result matches the cold reference for its request index.
fn assert_matches_cold(
    results: &[GenResult],
    ids: &[u64],
    cold: &[(Vec<u32>, Outcome)],
    what: &str,
) {
    assert_eq!(results.len(), cold.len(), "{what}: result count");
    for res in results {
        let idx = ids.iter().position(|&id| id == res.id).expect("known id");
        assert_eq!(
            res.tokens, cold[idx].0,
            "{what}: request {idx} tokens diverged from cold serving"
        );
        assert_eq!(res.outcome, cold[idx].1, "{what}: request {idx} outcome");
    }
}

/// A deterministic multi-tenant workload: `n_groups` shared prefixes,
/// `group_size` requests each, adapters and suffixes drawn from `salt`.
fn workload(salt: u64, n_groups: usize, group_size: usize, prefix_len: usize) -> Vec<GenRequest> {
    let (model, _, _) = stack();
    let vocab = model.config().vocab_size;
    let mut rng = Rng::seed_from_u64(salt);
    let prefixes: Vec<Vec<u32>> = (0..n_groups)
        .map(|_| (0..prefix_len).map(|_| rng.below(vocab) as u32).collect())
        .collect();
    let mut reqs = Vec::new();
    for (g, prefix) in prefixes.iter().enumerate() {
        for k in 0..group_size {
            let mut prompt = prefix.clone();
            let suffix_len = 1 + rng.below(4);
            prompt.extend((0..suffix_len).map(|_| rng.below(vocab) as u32));
            let adapter = match rng.below(4) {
                0 => None,
                a => Some(a as u32 - 1),
            };
            reqs.push(GenRequest {
                prompt,
                cfg: GenConfig {
                    max_new_tokens: 2 + k % 3,
                    temperature: if k % 2 == 0 { 0.0 } else { 0.8 },
                    top_k: 8,
                    top_p: 0.95,
                    seed: salt ^ ((g * 31 + k) as u64),
                    stop_token: None,
                },
                deadline: None,
                adapter,
            });
        }
    }
    reqs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random multi-tenant workloads under a tight byte budget: the cache
    /// churns (evictions fire, arena slots are recycled, edges split), and
    /// every request — including a full second round over the same
    /// prompts, which re-inserts whatever was evicted — stays
    /// byte-identical to cold serving.
    #[test]
    fn churned_cache_serving_is_byte_identical_to_cold(
        salt in any::<u64>(),
        n_groups in 2usize..4,
        group_size in 2usize..4,
        prefix_len in 4usize..10,
        budget_rows in 4usize..24,
    ) {
        let (_, _, row_bytes) = stack();
        let reqs = workload(salt, n_groups, group_size, prefix_len);
        let kv = 32;
        let cold = serve_serially(&reqs, kv);

        let mut sched = multi_scheduler(sched_cfg(budget_rows * row_bytes, 3, kv));
        let stats = sched.stats();
        // Round 1: populate + churn. Round 2: hit what survived, re-insert
        // what was evicted — stale KV would surface here as divergence.
        for round in 0..2 {
            let ids: Vec<u64> = reqs
                .iter()
                .map(|r| sched.submit(r.clone()).expect("submit fits"))
                .collect();
            let results = sched.run_to_completion();
            assert_matches_cold(&results, &ids, &cold, &format!("round {round}"));
        }
        prop_assert_eq!(
            stats.prefix_lookups.load(Ordering::Relaxed),
            2 * reqs.len() as u64
        );
    }
}

#[test]
fn shared_prefix_hits_are_byte_identical_and_counted() {
    // Two requests per adapter key (3 adapters + base), all sharing one
    // 12-token system prefix. With 2 slots the first wave inserts each
    // key's prefix before the second wave admits, so the second wave must
    // hit — and still match cold serving bit for bit.
    let (model, _, _) = stack();
    let vocab = model.config().vocab_size;
    let mut rng = Rng::seed_from_u64(0x51A2);
    let prefix: Vec<u32> = (0..12).map(|_| rng.below(vocab) as u32).collect();
    let keys = [None, Some(0u32), Some(1), Some(2)];
    let reqs: Vec<GenRequest> = (0..8)
        .map(|i| {
            let mut prompt = prefix.clone();
            prompt.extend((0..2).map(|_| rng.below(vocab) as u32));
            GenRequest {
                prompt,
                cfg: GenConfig {
                    max_new_tokens: 4,
                    temperature: 0.7,
                    seed: 0x1000 + i as u64,
                    ..GenConfig::default()
                },
                deadline: None,
                adapter: keys[i % keys.len()],
            }
        })
        .collect();
    let kv = 32;
    let cold = serve_serially(&reqs, kv);

    let mut sched = multi_scheduler(sched_cfg(1 << 20, 2, kv));
    let stats = sched.stats();
    let ids: Vec<u64> = reqs
        .iter()
        .map(|r| sched.submit(r.clone()).expect("submit fits"))
        .collect();
    let results = sched.run_to_completion();
    assert_matches_cold(&results, &ids, &cold, "shared prefix");
    let hits = stats.prefix_hits.load(Ordering::Relaxed);
    assert!(
        hits >= 4,
        "second wave must hit its key's prefix, got {hits}"
    );
    assert!(stats.prefix_hit_tokens.load(Ordering::Relaxed) >= 4 * 12);
    assert!(stats.hit_rate() > 0.0);
}

#[test]
fn mixed_adapter_tick_matches_serial_per_adapter() {
    // One scheduler tick batching 3 adapters + the base model must give
    // each request the tokens it gets served alone (row independence).
    let (model, _, _) = stack();
    let vocab = model.config().vocab_size;
    let mut rng = Rng::seed_from_u64(0x311C);
    let reqs: Vec<GenRequest> = [None, Some(0u32), Some(1), Some(2)]
        .into_iter()
        .enumerate()
        .map(|(i, adapter)| GenRequest {
            prompt: (0..6).map(|_| rng.below(vocab) as u32).collect(),
            cfg: GenConfig {
                max_new_tokens: 8,
                temperature: 0.6,
                seed: 0x2000 + i as u64,
                ..GenConfig::default()
            },
            deadline: None,
            adapter,
        })
        .collect();
    let kv = 32;
    let cold = serve_serially(&reqs, kv);

    let mut sched = multi_scheduler(sched_cfg(0, 4, kv));
    let ids: Vec<u64> = reqs
        .iter()
        .map(|r| sched.submit(r.clone()).expect("submit fits"))
        .collect();
    let mut results = Vec::new();
    let mut max_active = 0;
    while !sched.is_idle() {
        sched.tick();
        max_active = max_active.max(sched.active());
        results.extend(sched.take_finished());
    }
    assert_eq!(
        max_active, 4,
        "all four adapters must decode in the same ticks"
    );
    assert_matches_cold(&results, &ids, &cold, "mixed adapters");
}

#[test]
fn cache_full_retirement_matches_cold_and_prefix_still_serves() {
    // A sequence that fills its slot retires CacheFull with the same
    // partial output as cold serving, its lease is returned, and the
    // prefix it left behind still serves later requests exactly.
    let (model, _, _) = stack();
    let vocab = model.config().vocab_size;
    let mut rng = Rng::seed_from_u64(0xCAFE);
    let prompt: Vec<u32> = (0..8).map(|_| rng.below(vocab) as u32).collect();
    let kv = 12; // prompt 8 + a handful of decode rows, far short of 32
    let overflow = GenRequest {
        prompt: prompt.clone(),
        cfg: GenConfig {
            max_new_tokens: 32,
            temperature: 0.5,
            seed: 0x3000,
            ..GenConfig::default()
        },
        deadline: None,
        adapter: Some(1),
    };
    let follow = GenRequest {
        prompt: prompt.clone(),
        cfg: GenConfig {
            max_new_tokens: 3,
            temperature: 0.0,
            seed: 0x3001,
            ..GenConfig::default()
        },
        deadline: None,
        adapter: Some(1),
    };
    let cold = serve_serially(std::slice::from_ref(&overflow), kv);
    assert_eq!(cold[0].1, Outcome::CacheFull, "reference must overflow");
    let cold_follow = serve_serially(std::slice::from_ref(&follow), kv);

    let mut sched = multi_scheduler(sched_cfg(1 << 20, 2, kv));
    let stats = sched.stats();
    let id0 = sched.submit(overflow).expect("submit fits");
    let res = sched.run_to_completion();
    assert_matches_cold(&res, &[id0], &cold, "cache-full");

    let id1 = sched.submit(follow).expect("submit fits");
    let res = sched.run_to_completion();
    assert_matches_cold(&res, &[id1], &cold_follow, "post-overflow hit");
    assert_eq!(stats.prefix_hits.load(Ordering::Relaxed), 1);
}

#[test]
fn cancel_mid_stream_leaves_cache_and_neighbors_intact() {
    // Cancelling one of two prefix-sharing requests mid-decode must not
    // disturb the survivor, and the shared prefix must keep serving
    // (the cancelled request's lease is released at retirement).
    let (model, _, _) = stack();
    let vocab = model.config().vocab_size;
    let mut rng = Rng::seed_from_u64(0xD15C);
    let prefix: Vec<u32> = (0..10).map(|_| rng.below(vocab) as u32).collect();
    let req = |suffix: u32, seed: u64| GenRequest {
        prompt: prefix.iter().copied().chain([suffix]).collect(),
        cfg: GenConfig {
            max_new_tokens: 10,
            temperature: 0.9,
            seed,
            ..GenConfig::default()
        },
        deadline: None,
        adapter: Some(2),
    };
    let victim = req(1, 0x4000);
    let survivor = req(2, 0x4001);
    let later = req(3, 0x4002);
    let kv = 32;
    let cold = serve_serially(&[survivor.clone(), later.clone()], kv);

    let mut sched = multi_scheduler(sched_cfg(1 << 20, 2, kv));
    let stats = sched.stats();
    let victim_id = sched.submit(victim).expect("submit fits");
    let survivor_id = sched.submit(survivor).expect("submit fits");
    for _ in 0..4 {
        sched.tick();
    }
    assert!(sched.cancel(victim_id), "victim is in flight");
    let mut results = sched.run_to_completion();
    let vpos = results
        .iter()
        .position(|r| r.id == victim_id)
        .expect("victim retires");
    assert_eq!(results.remove(vpos).outcome, Outcome::Cancelled);
    assert_matches_cold(&results, &[survivor_id], &cold[..1], "survivor");

    let later_id = sched.submit(later).expect("submit fits");
    let results = sched.run_to_completion();
    assert_matches_cold(&results, &[later_id], &cold[1..], "after cancel");
    assert!(stats.prefix_hits.load(Ordering::Relaxed) >= 1);
}

#[test]
fn stats_report_churn_evictions_and_kv_usage() {
    // Under a one-prompt budget, alternating disjoint prompts must evict
    // and the shared stats must say so.
    let (model, _, row_bytes) = stack();
    let row_bytes = *row_bytes;
    let vocab = model.config().vocab_size;
    let mut rng = Rng::seed_from_u64(0x57A7);
    let kv = 32;
    let mut sched = multi_scheduler(sched_cfg(10 * row_bytes, 1, kv));
    let stats = sched.stats();
    for i in 0..6u64 {
        let prompt: Vec<u32> = (0..9).map(|_| rng.below(vocab) as u32).collect();
        sched
            .submit(GenRequest {
                prompt,
                cfg: GenConfig {
                    max_new_tokens: 2,
                    temperature: 0.0,
                    seed: i,
                    ..GenConfig::default()
                },
                deadline: None,
                adapter: None,
            })
            .expect("submit fits");
        sched.run_to_completion();
    }
    assert_eq!(stats.prefix_lookups.load(Ordering::Relaxed), 6);
    assert!(
        stats.prefix_evictions.load(Ordering::Relaxed) >= 1,
        "disjoint prompts past the budget must evict"
    );
    assert!(stats.prefix_cached_bytes.load(Ordering::Relaxed) <= 10 * row_bytes as u64);
    // Cold rows + cached rows cover every prompt token exactly once.
    let covered = stats.prefill_tokens.load(Ordering::Relaxed)
        + stats.prefix_hit_tokens.load(Ordering::Relaxed);
    assert!(covered >= 6 * 9, "prompt coverage {covered} < 54");
    assert_eq!(stats.adapters_registered.load(Ordering::Relaxed), 3);
}
