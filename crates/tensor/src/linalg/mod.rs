//! Small-scale dense linear algebra: Householder QR, one-sided Jacobi SVD,
//! and randomized (sketch-based) SVD.
//!
//! GaLore and the "APOLLO w. SVD" variant need the top-`r` left singular
//! vectors of each gradient matrix; everything here exists to serve that,
//! plus the QR step of the randomized range finder.

mod qr;
mod svd;

pub use qr::qr_thin;
pub use svd::{randomized_svd, svd_jacobi, Svd};
