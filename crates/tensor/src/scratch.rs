//! Reusable scratch-buffer pool for `f32` workspaces.
//!
//! Training allocates the same handful of buffer sizes over and over:
//! matmul outputs, autograd gradients, packed kernel panels, optimizer
//! update vectors. Routing those through a thread-local freelist turns the
//! steady-state allocation rate to ~zero — after the first step every
//! `Matrix::zeros` is a warm, page-mapped buffer.
//!
//! The pool is thread-local (no locks); a `Vec<f32>`'s storage has no
//! thread affinity, so buffers freed on one thread and reused on another
//! would also be fine — they simply land in different freelists.
//!
//! Buffers are recycled explicitly ([`recycle`]) rather than via a `Drop`
//! impl on `Matrix`, which would forbid moving the data out (`into_vec`)
//! and would churn the pool on every temporary. The high-traffic recycle
//! points are the autograd graph (dropped once per step) and the kernels'
//! internal panels.

use std::cell::RefCell;

/// Retain at most this many free buffers per thread.
const MAX_BUFS: usize = 64;

/// Retain at most this many total f32 elements per thread (256 MiB).
const MAX_ELEMS: usize = 64 << 20;

thread_local! {
    static FREE: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
}

/// Takes a zeroed buffer of exactly `len` elements, reusing pooled storage
/// when a large-enough buffer is available (best capacity fit).
pub fn take_zeroed(len: usize) -> Vec<f32> {
    let reused = FREE.with(|f| {
        let mut free = f.borrow_mut();
        let mut best: Option<(usize, usize)> = None;
        for (i, buf) in free.iter().enumerate() {
            let cap = buf.capacity();
            if cap >= len && best.is_none_or(|(_, c)| cap < c) {
                best = Some((i, cap));
                if cap == len {
                    break;
                }
            }
        }
        best.map(|(i, _)| free.swap_remove(i))
    });
    match reused {
        Some(mut buf) => {
            buf.clear();
            buf.resize(len, 0.0);
            buf
        }
        None => vec![0.0; len],
    }
}

/// Returns a buffer's storage to the thread's freelist. Buffers beyond the
/// count/byte caps are dropped (truly freed) instead.
pub fn recycle(mut buf: Vec<f32>) {
    if buf.capacity() == 0 {
        return;
    }
    FREE.with(|f| {
        let mut free = f.borrow_mut();
        let held: usize = free.iter().map(Vec::capacity).sum();
        if free.len() >= MAX_BUFS || held + buf.capacity() > MAX_ELEMS {
            return;
        }
        buf.clear();
        free.push(buf);
    });
}

/// Number of buffers currently pooled on this thread (for tests/metrics).
pub fn pooled_buffers() -> usize {
    FREE.with(|f| f.borrow().len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_zeroed_buffer_of_exact_len() {
        let buf = take_zeroed(17);
        assert_eq!(buf.len(), 17);
        assert!(buf.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn recycled_storage_is_reused_and_rezeroed() {
        let mut buf = take_zeroed(100);
        buf.iter_mut().for_each(|x| *x = 3.5);
        let ptr = buf.as_ptr();
        let cap = buf.capacity();
        recycle(buf);
        let again = take_zeroed(80);
        assert_eq!(again.as_ptr(), ptr, "expected storage reuse");
        assert_eq!(again.capacity(), cap);
        assert!(again.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_buffer() {
        recycle(Vec::with_capacity(1000));
        recycle(Vec::with_capacity(50));
        recycle(Vec::with_capacity(200));
        let buf = take_zeroed(60);
        assert_eq!(buf.capacity(), 200);
        // Drain so later tests on this thread start clean.
        while pooled_buffers() > 0 {
            let _ = take_zeroed(1);
        }
    }

    #[test]
    fn pool_respects_count_cap() {
        for _ in 0..(MAX_BUFS + 10) {
            recycle(Vec::with_capacity(8));
        }
        assert!(pooled_buffers() <= MAX_BUFS);
        while pooled_buffers() > 0 {
            let _ = take_zeroed(1);
        }
    }
}
