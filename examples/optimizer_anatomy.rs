//! Anatomy of an APOLLO step: run Algorithm 1 by hand on one weight matrix
//! and print each intermediate quantity — projected gradient, auxiliary
//! moments, channel-wise scaling factors — next to AdamW's element-wise
//! update, showing where the memory goes (and doesn't).
//!
//! ```sh
//! cargo run --release --example optimizer_anatomy
//! ```

use apollo_repro::optim::{AdamW, Apollo, Optimizer, ParamUpdate, ProjKind, Projector};
use apollo_repro::tensor::{Matrix, Rng};

fn main() {
    let (m, n, r) = (8usize, 32usize, 4usize);
    let mut rng = Rng::seed_from_u64(7);
    let grad = Matrix::randn(m, n, &mut rng);

    println!("weight W: {m}x{n}   gradient G: {m}x{n}   rank r = {r}\n");

    // Step 1: project the gradient with P ~ N(0, 1/r), regenerated from a
    // stored seed — the only persistent "projection state" is that seed.
    let mut projector = Projector::new(ProjKind::Random, r, 200, 99);
    projector.begin_step(&grad);
    let low_rank = projector.project(&grad);
    println!(
        "Step 1  R = P·G          shape {}x{} ({}x smaller than G)",
        low_rank.rows(),
        low_rank.cols(),
        grad.len() / low_rank.len()
    );

    // Steps 2-4 happen inside the optimizer; run it and inspect.
    let mut apollo = Apollo::new(r, 200);
    let mut w_apollo = Matrix::zeros(m, n);
    apollo.step(
        &mut [ParamUpdate {
            name: "w",
            value: &mut w_apollo,
            grad: &grad,
            projectable: true,
        }],
        1.0,
    );
    let scales = &apollo.last_scales[0];
    println!(
        "Step 3  channel scales s: {} factors, mean {:.3}, min {:.3}, max {:.3}",
        scales.len(),
        scales.iter().sum::<f32>() / scales.len() as f32,
        scales.iter().cloned().fold(f32::MAX, f32::min),
        scales.iter().cloned().fold(0.0f32, f32::max),
    );
    println!("Step 4  update = G·diag(s): per-column direction identical to raw G\n");

    let mut adamw = AdamW::new();
    let mut w_adamw = Matrix::zeros(m, n);
    adamw.step(
        &mut [ParamUpdate {
            name: "w",
            value: &mut w_adamw,
            grad: &grad,
            projectable: true,
        }],
        1.0,
    );

    println!("optimizer state held after one step:");
    println!(
        "  AdamW  : {:>6} f32 elems   (M and V, both {m}x{n})",
        adamw.state_elems()
    );
    println!(
        "  APOLLO : {:>6} f32 elems   (M^R and V^R, both {r}x{n}, + seed + limiter norm)",
        apollo.state_elems()
    );
    let mut mini = Apollo::mini(200);
    let mut w_mini = Matrix::zeros(m, n);
    mini.step(
        &mut [ParamUpdate {
            name: "w",
            value: &mut w_mini,
            grad: &grad,
            projectable: true,
        }],
        1.0,
    );
    println!(
        "  Mini   : {:>6} f32 elems   (rank-1 moments, 2n+2 — SGD-level)",
        mini.state_elems()
    );
}
