//! Threaded serving loop around the deterministic [`Scheduler`].
//!
//! A [`Server`] owns one worker thread that drains an admission channel
//! into the scheduler, ticks it while work is in flight, and routes each
//! sampled token and each retired [`GenResult`] back to the submitting
//! caller through a per-request event channel. Callers hold a
//! [`GenHandle`]: block on [`GenHandle::wait`] /
//! [`GenHandle::wait_timeout`] for the final result, or consume
//! [`GenEvent`]s one at a time for chunked streaming.
//!
//! Robustness properties the network front-end builds on:
//!
//! - **Admission is bounded twice and never blocks.** The
//!   `mpsc::sync_channel` bounds in-transit submissions and the
//!   scheduler's own `queue_cap` bounds accepted-but-not-admitted
//!   requests; [`Server::submit`] reports a full channel as
//!   [`SubmitError::QueueFull`] and validates prompts up front, so every
//!   rejection carries its reason (and is counted — see
//!   `infer.rejected.*`).
//! - **Dropping a [`GenHandle`] cancels its request.** A disconnected
//!   client can never pin a scheduler slot: the drop sends a cancel
//!   ticket, the worker retires the request with [`Outcome::Cancelled`]
//!   and frees the slot (or queue position) on the next loop.
//! - **Drain is explicit.** [`Server::begin_drain`] stops admission
//!   ([`SubmitError::QueueFull`] to new work) while in-flight requests
//!   finish; dropping the server drains and joins the worker.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use apollo_nn::{AdapterRegistry, DecodeBackend};
use apollo_obs::Obs;

use crate::scheduler::{
    observe_rejection, GenRequest, GenResult, SchedConfig, Scheduler, SubmitError,
};
use crate::stats::ServeStats;

/// One submission in transit to the worker.
struct Envelope {
    ticket: u64,
    req: GenRequest,
    reply: mpsc::Sender<GenEvent>,
}

/// One streamed event of a submitted request.
#[derive(Debug, Clone)]
pub enum GenEvent {
    /// The next sampled token, in order.
    Token(u32),
    /// The request retired; carries the full output (every token
    /// previously streamed, in the same order).
    Finished(GenResult),
}

/// Why a wait on a [`GenHandle`] returned without a result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitError {
    /// The timeout elapsed; the request is still in flight and the handle
    /// stays valid (retry, or drop it to cancel the request).
    TimedOut,
    /// The server shut down before the request could finish.
    ServerGone,
}

/// Receives the result of one submitted request. Dropping the handle
/// before the request finished cancels it — the scheduler retires it with
/// [`Outcome::Cancelled`] and reclaims the slot.
pub struct GenHandle {
    ticket: u64,
    rx: Receiver<GenEvent>,
    cancel: mpsc::Sender<u64>,
    finished: bool,
}

impl GenHandle {
    /// Blocks until the request retires. Returns `None` only if the server
    /// was dropped before the request could finish.
    pub fn wait(mut self) -> Option<GenResult> {
        loop {
            match self.rx.recv() {
                Ok(GenEvent::Finished(res)) => {
                    self.finished = true;
                    return Some(res);
                }
                Ok(GenEvent::Token(_)) => {}
                Err(_) => {
                    self.finished = true; // nothing left to cancel
                    return None;
                }
            }
        }
    }

    /// Blocks until the request retires or `timeout` elapses, skipping
    /// intermediate token events. On [`WaitError::TimedOut`] the handle
    /// stays live: call again to keep waiting, or drop it to cancel.
    ///
    /// # Errors
    ///
    /// [`WaitError::TimedOut`] when the deadline passes first,
    /// [`WaitError::ServerGone`] when the server shut down.
    pub fn wait_timeout(&mut self, timeout: Duration) -> Result<GenResult, WaitError> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.next_event(deadline.saturating_duration_since(Instant::now()))? {
                GenEvent::Finished(res) => return Ok(res),
                GenEvent::Token(_) => {}
            }
        }
    }

    /// Receives the next event (token or finish) within `timeout`.
    ///
    /// # Errors
    ///
    /// [`WaitError::TimedOut`] when no event arrives in time,
    /// [`WaitError::ServerGone`] when the server shut down.
    pub fn next_event(&mut self, timeout: Duration) -> Result<GenEvent, WaitError> {
        match self.rx.recv_timeout(timeout) {
            Ok(ev) => {
                if matches!(ev, GenEvent::Finished(_)) {
                    self.finished = true;
                }
                Ok(ev)
            }
            Err(RecvTimeoutError::Timeout) => Err(WaitError::TimedOut),
            Err(RecvTimeoutError::Disconnected) => {
                self.finished = true;
                Err(WaitError::ServerGone)
            }
        }
    }
}

impl Drop for GenHandle {
    fn drop(&mut self) {
        if !self.finished {
            // Best-effort: if the worker is gone the request is gone too.
            let _ = self.cancel.send(self.ticket);
        }
    }
}

/// A running generation server. Dropping it finishes all accepted requests
/// and joins the worker thread.
pub struct Server {
    tx: Option<SyncSender<Envelope>>,
    cancel_tx: mpsc::Sender<u64>,
    worker: Option<JoinHandle<()>>,
    obs: Obs,
    kv_capacity: usize,
    next_ticket: AtomicUsize,
    in_flight: Arc<AtomicUsize>,
    draining: Arc<AtomicBool>,
    registry: Arc<AdapterRegistry>,
    stats: Arc<ServeStats>,
}

impl Server {
    /// Spawns the worker thread around a fresh [`Scheduler`]. Accepts any
    /// decode backend (`Arc<LlamaModel>` or an INT8 `QuantizedModel`).
    pub fn start(model: impl Into<DecodeBackend>, cfg: SchedConfig, obs: Obs) -> Self {
        Self::start_multi(model, cfg, obs, Arc::new(AdapterRegistry::empty()))
    }

    /// [`Server::start`] with multi-tenant adapter routing: requests may
    /// carry an adapter id from `registry`, and serving counters land in
    /// the shared [`ServeStats`] (see [`Server::stats`]).
    ///
    /// # Panics
    ///
    /// Panics on a non-empty registry over an INT8 backend (see
    /// [`Scheduler::new_multi`]).
    pub fn start_multi(
        model: impl Into<DecodeBackend>,
        cfg: SchedConfig,
        obs: Obs,
        registry: Arc<AdapterRegistry>,
    ) -> Self {
        let model = model.into();
        let stats = Arc::new(ServeStats::default());
        let (tx, rx) = mpsc::sync_channel::<Envelope>(cfg.queue_cap.max(1));
        let (cancel_tx, cancel_rx) = mpsc::channel::<u64>();
        let in_flight = Arc::new(AtomicUsize::new(0));
        let kv_capacity = cfg.kv_capacity;
        let queue_cap = cfg.queue_cap;
        let worker = {
            let obs = obs.clone();
            let in_flight = Arc::clone(&in_flight);
            let registry = Arc::clone(&registry);
            let stats = Arc::clone(&stats);
            std::thread::Builder::new()
                .name("apollo-infer-server".to_string())
                .spawn(move || {
                    let sched = Scheduler::new_multi(model, cfg, obs, registry, stats);
                    serve(sched, queue_cap, rx, cancel_rx, &in_flight);
                })
                .expect("spawn inference server thread")
        };
        Server {
            tx: Some(tx),
            cancel_tx,
            worker: Some(worker),
            obs,
            kv_capacity,
            next_ticket: AtomicUsize::new(0),
            in_flight,
            draining: Arc::new(AtomicBool::new(false)),
            registry,
            stats,
        }
    }

    /// The adapter registry requests route against (empty for
    /// single-tenant servers).
    pub fn registry(&self) -> &Arc<AdapterRegistry> {
        &self.registry
    }

    /// The shared serving counters written by the scheduler tick.
    pub fn stats(&self) -> &Arc<ServeStats> {
        &self.stats
    }

    /// Requests accepted (queued or running) and not yet retired. The
    /// front-end sheds load against this before the hard queue bound.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Per-slot KV capacity (the longest admissible prompt).
    pub fn kv_capacity(&self) -> usize {
        self.kv_capacity
    }

    /// Stops admitting new work; in-flight requests keep running. Further
    /// [`Server::submit`] calls fail with [`SubmitError::QueueFull`].
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::Relaxed);
    }

    /// Whether [`Server::begin_drain`] was called.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Relaxed)
    }

    /// Submits a request without blocking.
    ///
    /// # Errors
    ///
    /// [`SubmitError::EmptyPrompt`] / [`SubmitError::PromptTooLong`] for
    /// requests that could never run (validated here, before the worker,
    /// so callers get the reason synchronously), and
    /// [`SubmitError::QueueFull`] when the admission channel is at
    /// capacity or the server is draining (graceful rejection: the caller
    /// may retry later). Every rejection is counted under
    /// `infer.rejected.*` and traced.
    pub fn submit(&self, req: GenRequest) -> Result<GenHandle, SubmitError> {
        if req.prompt.is_empty() {
            observe_rejection(&self.obs, SubmitError::EmptyPrompt);
            return Err(SubmitError::EmptyPrompt);
        }
        if req.prompt.len() > self.kv_capacity {
            observe_rejection(&self.obs, SubmitError::PromptTooLong);
            return Err(SubmitError::PromptTooLong);
        }
        if req
            .adapter
            .is_some_and(|id| (id as usize) >= self.registry.len())
        {
            observe_rejection(&self.obs, SubmitError::UnknownAdapter);
            return Err(SubmitError::UnknownAdapter);
        }
        if self.is_draining() {
            observe_rejection(&self.obs, SubmitError::QueueFull);
            return Err(SubmitError::QueueFull);
        }
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed) as u64;
        let (reply, rx) = mpsc::channel();
        let env = Envelope { ticket, req, reply };
        match self.tx.as_ref().expect("server running").try_send(env) {
            Ok(()) => {
                self.in_flight.fetch_add(1, Ordering::Relaxed);
                Ok(GenHandle {
                    ticket,
                    rx,
                    cancel: self.cancel_tx.clone(),
                    finished: false,
                })
            }
            Err(mpsc::TrySendError::Full(_)) | Err(mpsc::TrySendError::Disconnected(_)) => {
                observe_rejection(&self.obs, SubmitError::QueueFull);
                Err(SubmitError::QueueFull)
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Closing the channel tells the worker to finish in-flight work
        // and exit; join so results are flushed before we return.
        self.tx.take();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// Per-request routing state held by the worker.
struct Route {
    ticket: u64,
    reply: mpsc::Sender<GenEvent>,
}

/// Worker loop: apply cancellations, drain submissions, tick while busy,
/// stream progress, dispatch results, park while idle.
fn serve(
    mut sched: Scheduler,
    queue_cap: usize,
    rx: Receiver<Envelope>,
    cancel_rx: Receiver<u64>,
    in_flight: &AtomicUsize,
) {
    let mut routes: HashMap<u64, Route> = HashMap::new(); // sched id -> route
    let mut tickets: HashMap<u64, u64> = HashMap::new(); // ticket -> sched id
    let mut cancelled_early: HashSet<u64> = HashSet::new(); // tickets cancelled pre-submit
    let mut held: Option<Envelope> = None; // submission awaiting queue room
    let mut open = true;
    while open || !sched.is_idle() || held.is_some() {
        // Cancellations first: a dropped handle must free its slot even if
        // the admission channel is busy.
        while let Ok(ticket) = cancel_rx.try_recv() {
            match tickets.get(&ticket) {
                Some(&id) => {
                    sched.cancel(id);
                }
                None => {
                    cancelled_early.insert(ticket);
                }
            }
        }
        // Admit as many in-transit submissions as the scheduler queue takes.
        // Block (briefly) only when there is nothing to tick.
        while sched.queue_depth() < queue_cap {
            let env = if let Some(env) = held.take() {
                env
            } else if open && sched.is_idle() {
                match rx.recv_timeout(Duration::from_millis(50)) {
                    Ok(env) => env,
                    Err(RecvTimeoutError::Timeout) => break,
                    Err(RecvTimeoutError::Disconnected) => {
                        open = false;
                        break;
                    }
                }
            } else {
                match rx.try_recv() {
                    Ok(env) => env,
                    Err(mpsc::TryRecvError::Empty) => break,
                    Err(mpsc::TryRecvError::Disconnected) => {
                        open = false;
                        break;
                    }
                }
            };
            if cancelled_early.remove(&env.ticket) {
                in_flight.fetch_sub(1, Ordering::Relaxed);
                continue; // dropped before it ever reached the scheduler
            }
            // Clone so the envelope survives the (rare) hold-and-retry path.
            match sched.submit(env.req.clone()) {
                Ok(id) => {
                    tickets.insert(env.ticket, id);
                    routes.insert(
                        id,
                        Route {
                            ticket: env.ticket,
                            reply: env.reply,
                        },
                    );
                }
                Err(SubmitError::QueueFull) => {
                    // Raced a concurrent burst past the depth check; hold
                    // the envelope and retry after the next tick frees room.
                    held = Some(env);
                    break;
                }
                Err(_) => {
                    // Invalid request (rejection already counted by the
                    // scheduler): drop the reply sender so the handle's
                    // `wait()` returns `None`.
                    in_flight.fetch_sub(1, Ordering::Relaxed);
                    drop(env.reply);
                }
            }
        }
        if !sched.is_idle() {
            sched.tick();
        }
        for (id, tok) in sched.take_progress() {
            if let Some(route) = routes.get(&id) {
                let _ = route.reply.send(GenEvent::Token(tok));
            }
        }
        for result in sched.take_finished() {
            if let Some(route) = routes.remove(&result.id) {
                tickets.remove(&route.ticket);
                in_flight.fetch_sub(1, Ordering::Relaxed);
                let _ = route.reply.send(GenEvent::Finished(result));
            }
        }
    }
}
