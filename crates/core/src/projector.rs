//! Low-rank gradient projection: random Gaussian (APOLLO's SVD-free choice)
//! or SVD-based (GaLore's choice, and the "APOLLO w. SVD" variant).

use apollo_tensor::linalg::{randomized_svd, svd_jacobi};
use apollo_tensor::{Matrix, Rng};

/// How the projection subspace is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProjKind {
    /// i.i.d. Gaussian `N(0, 1/r)`, regenerated from a stored seed — nothing
    /// but the seed is persisted (Algorithm 1), so projection state is free.
    Random,
    /// Top-`r` singular vectors of the current gradient, recomputed every
    /// `update_freq` steps and cached (GaLore). Costs `min(m,n)·r` state.
    Svd,
}

/// A per-tensor low-rank projector.
///
/// The *smaller* tensor dimension is projected down to `rank`, preserving
/// the larger (channel) dimension, matching the paper's `R = P·G ∈ ℝ^{r×n}`
/// for `m ≤ n` and the mirrored layout otherwise.
///
/// Call [`Projector::begin_step`] once per optimizer step before
/// [`Projector::project`]; the subspace refreshes every `update_freq` steps
/// (re-seed for [`ProjKind::Random`], fresh SVD for [`ProjKind::Svd`]).
#[derive(Debug, Clone)]
pub struct Projector {
    kind: ProjKind,
    rank: usize,
    update_freq: usize,
    seed: u64,
    step: usize,
    /// Cached orthonormal basis (`small_dim × r`) for the SVD kind.
    cached_basis: Option<Matrix>,
}

impl Projector {
    /// Creates a projector.
    ///
    /// # Panics
    ///
    /// Panics if `rank == 0` or `update_freq == 0`.
    pub fn new(kind: ProjKind, rank: usize, update_freq: usize, seed: u64) -> Self {
        assert!(rank > 0, "rank must be positive");
        assert!(update_freq > 0, "update_freq must be positive");
        Projector {
            kind,
            rank,
            update_freq,
            seed,
            step: 0,
            cached_basis: None,
        }
    }

    /// The projection rank actually used for a tensor (clamped to the
    /// smaller dimension).
    pub fn effective_rank(&self, g: &Matrix) -> usize {
        self.rank.min(g.rows()).min(g.cols())
    }

    /// The configured rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The subspace kind.
    pub fn kind(&self) -> ProjKind {
        self.kind
    }

    /// Changes the refresh interval mid-run (the population-search explore
    /// step mutates it between rounds). The step counter is untouched, so
    /// the next refresh fires at the next multiple of the *new* interval —
    /// deterministic regardless of when the change lands.
    ///
    /// # Panics
    ///
    /// Panics if `update_freq == 0`.
    pub fn set_update_freq(&mut self, update_freq: usize) {
        assert!(update_freq > 0, "update_freq must be positive");
        self.update_freq = update_freq;
    }

    /// Stable display label for the subspace kind (trace events).
    pub fn kind_label(&self) -> &'static str {
        match self.kind {
            ProjKind::Random => "random",
            ProjKind::Svd => "svd",
        }
    }

    /// Advances the step counter and refreshes the subspace when due.
    /// `g` is the current gradient (consulted only by the SVD kind).
    /// Returns whether the subspace was refreshed this step, so callers
    /// can surface refresh events to observability.
    pub fn begin_step(&mut self, g: &Matrix) -> bool {
        let refreshed = self.step.is_multiple_of(self.update_freq);
        if refreshed {
            match self.kind {
                ProjKind::Random => {
                    // Derive an independent new seed, exactly the
                    // "seed ← new random seed" line of Algorithm 1.
                    let mut rng = Rng::seed_from_u64(self.seed ^ 0x5EED_CAFE);
                    self.seed = rng.next_u64();
                }
                ProjKind::Svd => {
                    self.cached_basis = Some(self.compute_svd_basis(g));
                }
            }
        }
        self.step += 1;
        refreshed
    }

    fn compute_svd_basis(&self, g: &Matrix) -> Matrix {
        let (m, n) = g.shape();
        let r = self.effective_rank(g);
        let small = m.min(n);
        // Basis = top-r singular vectors on the *smaller* side.
        let svd = if small <= 128 {
            svd_jacobi(g).truncate(r)
        } else {
            let mut rng = Rng::seed_from_u64(self.seed ^ 0x51D);
            randomized_svd(g, r, 8, 1, &mut rng)
        };
        if m <= n {
            svd.u // m × r
        } else {
            svd.v // n × r
        }
    }

    /// The random Gaussian factor for the current seed (`small_dim × r`,
    /// entries `N(0, 1/r)`), regenerated on demand.
    fn random_basis(&self, small_dim: usize, r: usize) -> Matrix {
        let mut rng = Rng::seed_from_u64(self.seed);
        Matrix::randn_scaled(small_dim, r, (1.0 / r as f32).sqrt(), &mut rng)
    }

    /// Resolves the basis as a borrow: the SVD kind lends its cached basis
    /// (no clone), the random kind regenerates into `generated`, whose
    /// storage the caller recycles.
    fn basis<'a>(
        &'a self,
        generated: &'a mut Option<Matrix>,
        small: usize,
        rank: usize,
        what: &str,
    ) -> &'a Matrix {
        match self.kind {
            ProjKind::Random => generated.insert(self.random_basis(small, rank)),
            ProjKind::Svd => self
                .cached_basis
                .as_ref()
                .unwrap_or_else(|| panic!("begin_step must run before {what} for the SVD kind")),
        }
    }

    /// Projects the gradient into the low-rank space: `r × n` when
    /// `rows ≤ cols`, `m × r` otherwise.
    pub fn project(&self, g: &Matrix) -> Matrix {
        let small = g.rows().min(g.cols());
        let mut generated = None;
        let b = self.basis(&mut generated, small, self.effective_rank(g), "project");
        let out = if g.rows() <= g.cols() {
            b.matmul_transa(g) // (r × m)·(m × n) = r × n
        } else {
            g.matmul(b) // (m × n)·(n × r) = m × r
        };
        if let Some(m) = generated {
            m.recycle();
        }
        out
    }

    /// Maps a low-rank tensor back to the full space (GaLore's
    /// `G̃ = P·Ñ`).
    pub fn project_back(&self, r: &Matrix, full_shape: (usize, usize)) -> Matrix {
        let (m, n) = full_shape;
        // Rebuild the basis for the full shape; `r` carries the other dim.
        let small = m.min(n);
        let rank = r.rows().min(r.cols()).min(self.rank);
        let mut generated = None;
        let b = self.basis(&mut generated, small, rank, "project_back");
        let out = if m <= n {
            b.matmul(r) // (m × r)·(r × n)
        } else {
            r.matmul_transb(b) // (m × r)·(r × n)ᵀ… (m × r)·(n × r)ᵀ = m × n
        };
        if let Some(g) = generated {
            g.recycle();
        }
        out
    }

    pub(crate) fn save_into(&self, w: &mut crate::state::StateWriter) {
        w.u8(match self.kind {
            ProjKind::Random => 0,
            ProjKind::Svd => 1,
        });
        w.u64(self.rank as u64);
        w.u64(self.update_freq as u64);
        w.u64(self.seed);
        w.u64(self.step as u64);
        w.opt_matrix(self.cached_basis.as_ref());
    }

    pub(crate) fn load_from(r: &mut crate::state::StateReader<'_>) -> Result<Self, String> {
        let kind = match r.u8()? {
            0 => ProjKind::Random,
            1 => ProjKind::Svd,
            other => return Err(format!("unknown projector kind tag {other}")),
        };
        let rank = r.len()?;
        let update_freq = r.len()?;
        if rank == 0 || update_freq == 0 {
            return Err(format!(
                "invalid projector state: rank {rank}, update_freq {update_freq}"
            ));
        }
        let seed = r.u64()?;
        let step = r.len()?;
        let cached_basis = r.opt_matrix()?;
        Ok(Projector {
            kind,
            rank,
            update_freq,
            seed,
            step,
            cached_basis,
        })
    }

    /// Persisted state in f32-equivalents: the cached basis for SVD, nothing
    /// for the random kind (only a 64-bit seed, counted by the caller's
    /// per-tensor constant).
    pub fn state_elems(&self) -> usize {
        match self.kind {
            ProjKind::Random => 0,
            ProjKind::Svd => self.cached_basis.as_ref().map_or(0, Matrix::len),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grad(m: usize, n: usize, seed: u64) -> Matrix {
        let mut rng = Rng::seed_from_u64(seed);
        Matrix::randn(m, n, &mut rng)
    }

    #[test]
    fn random_projection_shapes_follow_orientation() {
        let mut p = Projector::new(ProjKind::Random, 4, 10, 1);
        let g_wide = grad(8, 20, 1);
        p.begin_step(&g_wide);
        assert_eq!(p.project(&g_wide).shape(), (4, 20));
        let g_tall = grad(20, 8, 2);
        assert_eq!(p.project(&g_tall).shape(), (20, 4));
    }

    #[test]
    fn random_projection_is_deterministic_within_a_window() {
        let mut p = Projector::new(ProjKind::Random, 4, 100, 7);
        let g = grad(8, 16, 3);
        p.begin_step(&g);
        let r1 = p.project(&g);
        p.begin_step(&g); // still inside the window → same seed
        let r2 = p.project(&g);
        assert_eq!(r1, r2);
    }

    #[test]
    fn random_projection_reseeds_at_update_freq() {
        let mut p = Projector::new(ProjKind::Random, 4, 2, 7);
        let g = grad(8, 16, 3);
        p.begin_step(&g);
        let r1 = p.project(&g);
        p.begin_step(&g);
        let r2 = p.project(&g);
        assert_eq!(r1, r2, "step 2 still in window");
        p.begin_step(&g); // step 3 → refresh
        let r3 = p.project(&g);
        assert_ne!(r1, r3, "seed must change after update_freq steps");
    }

    #[test]
    fn random_projection_preserves_norms_in_expectation() {
        // JL: ‖P·x‖² concentrates around ‖x‖² — check within 20% at r=64.
        let mut p = Projector::new(ProjKind::Random, 64, 10, 11);
        let g = grad(128, 200, 5);
        p.begin_step(&g);
        let r = p.project(&g);
        let ratio = (r.fro_norm() / g.fro_norm()).powi(2);
        assert!((0.8..1.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn svd_projection_captures_low_rank_gradients_exactly() {
        // Rank-2 gradient: project → back must reconstruct it.
        let u = grad(10, 2, 6);
        let v = grad(14, 2, 7);
        let g = u.matmul_transb(&v);
        let mut p = Projector::new(ProjKind::Svd, 2, 1, 0);
        p.begin_step(&g);
        let r = p.project(&g);
        let back = p.project_back(&r, g.shape());
        let err = back.sub(&g).fro_norm() / g.fro_norm();
        assert!(err < 1e-3, "reconstruction error {err}");
    }

    #[test]
    fn svd_projection_tall_orientation() {
        let u = grad(14, 2, 8);
        let v = grad(10, 2, 9);
        let g = u.matmul_transb(&v); // 14 × 10, rows > cols
        let mut p = Projector::new(ProjKind::Svd, 2, 1, 0);
        p.begin_step(&g);
        let r = p.project(&g);
        assert_eq!(r.shape(), (14, 2));
        let back = p.project_back(&r, g.shape());
        let err = back.sub(&g).fro_norm() / g.fro_norm();
        assert!(err < 1e-3, "reconstruction error {err}");
    }

    #[test]
    fn effective_rank_is_clamped() {
        let p = Projector::new(ProjKind::Random, 100, 10, 0);
        assert_eq!(p.effective_rank(&Matrix::zeros(4, 32)), 4);
    }

    #[test]
    fn state_elems_random_is_zero_and_svd_counts_basis() {
        let g = grad(8, 16, 4);
        let mut pr = Projector::new(ProjKind::Random, 4, 10, 0);
        pr.begin_step(&g);
        assert_eq!(pr.state_elems(), 0);
        let mut ps = Projector::new(ProjKind::Svd, 4, 10, 0);
        ps.begin_step(&g);
        assert_eq!(ps.state_elems(), 8 * 4);
    }

    #[test]
    fn random_project_back_approximates_identity_at_high_rank() {
        let g = grad(64, 100, 12);
        let mut p = Projector::new(ProjKind::Random, 64, 10, 3);
        p.begin_step(&g);
        let back = p.project_back(&p.project(&g), g.shape());
        // PᵀP ≈ I at full rank; correlation with g should dominate.
        let dot: f32 = back
            .as_slice()
            .iter()
            .zip(g.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        let cos = dot / (back.fro_norm() * g.fro_norm());
        assert!(cos > 0.6, "cosine {cos}");
    }
}
