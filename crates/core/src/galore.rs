//! The low-rank *gradient update* baselines: GaLore, Fira, and Flora.
//!
//! These differ from APOLLO in that they compute the **update itself** in
//! the low-rank space and project it back (`G̃ = P·Ñ`), whereas APOLLO only
//! *estimates scaling factors* there and applies them to the raw full-rank
//! gradient.

use apollo_obs::{Obs, TraceEvent};

use crate::limiter::{LimiterOutcome, NormGrowthLimiter};
use crate::projector::{ProjKind, Projector};
use crate::state::{StateReader, StateWriter};
use crate::{
    check_state_header, norm_ratio_scales, save_state_header, AdamMoments, Optimizer, ParamUpdate,
};

#[derive(Debug, Clone)]
enum LowRankState {
    Dense(AdamMoments),
    LowRank {
        moments: AdamMoments,
        projector: Projector,
        limiter: NormGrowthLimiter,
    },
}

/// **GaLore** (Zhao et al., 2024): AdamW moments on the projected gradient,
/// update projected back to full rank:
/// `R = PᵀG`, `Ñ = AdamW(R)`, `W ← W − η·scale·P·Ñ`.
///
/// The projection is the top-`r` SVD basis of the gradient, refreshed every
/// `update_freq` steps — the expensive step APOLLO eliminates. A random
/// projection variant (`with_random_projection`) exists for the Fig. 5
/// ablation, where it is shown to degrade GaLore badly.
#[derive(Debug, Clone)]
pub struct GaLore {
    /// First-moment decay β₁.
    pub beta1: f32,
    /// Second-moment decay β₂.
    pub beta2: f32,
    /// Numerical-stability ε.
    pub eps: f32,
    /// Decoupled weight decay λ.
    pub weight_decay: f32,
    /// GaLore scale factor applied to the reconstructed update (0.25 in the
    /// official pre-training recipe).
    pub scale: f32,
    /// Projection rank r.
    pub rank: usize,
    /// Subspace refresh period T.
    pub update_freq: usize,
    /// Projection kind (SVD by default).
    pub proj_kind: ProjKind,
    quant_group: Option<usize>,
    seed: u64,
    states: Vec<LowRankState>,
    name_override: Option<&'static str>,
    /// Observability handle; disabled (free) unless attached. Shared by
    /// the Fira/Flora wrappers through their inner `GaLore`.
    obs: Obs,
}

impl GaLore {
    /// Standard GaLore: SVD projection, scale 0.25.
    pub fn new(rank: usize, update_freq: usize) -> Self {
        GaLore {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            scale: 0.25,
            rank,
            update_freq,
            proj_kind: ProjKind::Svd,
            quant_group: None,
            seed: 0x6A10,
            states: Vec::new(),
            name_override: None,
            obs: Obs::disabled(),
        }
    }

    /// 8-bit GaLore: low-rank moments stored INT8 (Table 3).
    pub fn galore8bit(rank: usize, update_freq: usize, group: usize) -> Self {
        GaLore {
            quant_group: Some(group),
            ..Self::new(rank, update_freq)
        }
    }

    /// Replaces the SVD subspace with a pure random projection (Fig. 5
    /// ablation — this is what breaks GaLore's accuracy).
    pub fn with_random_projection(mut self) -> Self {
        self.proj_kind = ProjKind::Random;
        self
    }

    /// Overrides the update scale factor.
    pub fn with_scale(mut self, scale: f32) -> Self {
        self.scale = scale;
        self
    }

    /// Sets the decoupled weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    fn moments_for(&self, rows: usize, cols: usize) -> AdamMoments {
        match self.quant_group {
            None => AdamMoments::new(rows, cols),
            Some(g) => AdamMoments::new_quantized(rows, cols, g),
        }
    }

    fn init_states(&mut self, params: &[ParamUpdate<'_>]) {
        self.states = params
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let (r, c) = p.value.shape();
                if p.projectable && r > 1 && c > 1 {
                    let rank = self.rank.min(r).min(c);
                    let (mr, mc) = if r <= c { (rank, c) } else { (r, rank) };
                    LowRankState::LowRank {
                        moments: self.moments_for(mr, mc),
                        projector: Projector::new(
                            self.proj_kind,
                            rank,
                            self.update_freq,
                            self.seed.wrapping_add(i as u64),
                        ),
                        limiter: NormGrowthLimiter::paper_default(),
                    }
                } else {
                    LowRankState::Dense(self.moments_for(r, c))
                }
            })
            .collect();
    }

    /// Shared step used by GaLore itself and by Fira (which adds the
    /// norm-scaled residual term).
    fn step_inner(&mut self, params: &mut [ParamUpdate<'_>], lr: f32, fira_residual: bool) {
        if self.states.is_empty() {
            self.init_states(params);
        }
        assert_eq!(self.states.len(), params.len(), "parameter list changed");
        let (beta1, beta2, eps) = (self.beta1, self.beta2, self.eps);
        let decay = 1.0 - lr * self.weight_decay;
        for (p, st) in params.iter_mut().zip(&mut self.states) {
            // The two arms apply the update inline: the dense arm borrows
            // the moments' scratch, the low-rank arm recycles its
            // temporaries — neither clones a full matrix.
            match st {
                LowRankState::Dense(moments) => {
                    moments.step_weight(p.value, p.grad, beta1, beta2, eps, lr, self.weight_decay);
                }
                LowRankState::LowRank {
                    moments,
                    projector,
                    limiter,
                } => {
                    if projector.begin_step(p.grad) {
                        self.obs.counter("projector_refresh", 1);
                        let step = self.obs.step();
                        let rank = projector.effective_rank(p.grad);
                        let kind = projector.kind_label();
                        let name = p.name;
                        self.obs.emit(|| TraceEvent::ProjectorRefresh {
                            step,
                            param: name.to_string(),
                            kind: kind.to_string(),
                            rank,
                        });
                    }
                    let r = projector.project(p.grad);
                    let nt = moments.update(&r, beta1, beta2, eps);
                    let mut back = projector.project_back(nt, p.grad.shape());
                    back.scale_assign(self.scale);
                    if fira_residual {
                        // Fira: add the residual (G − P·PᵀG), scaled
                        // channel-wise by ‖back‖/‖P·PᵀG‖ norm ratios.
                        let low = projector.project_back(&r, p.grad.shape());
                        let mut residual = p.grad.sub(&low);
                        let along_cols = p.grad.rows() <= p.grad.cols();
                        let s = norm_ratio_scales(&back, &low, along_cols);
                        if along_cols {
                            residual.scale_cols(&s);
                        } else {
                            residual.scale_rows(&s);
                        }
                        if self.obs.sample_due() && self.obs.has_trace() {
                            if let Some(ev) = apollo_obs::scale_summary(self.obs.step(), p.name, &s)
                            {
                                self.obs.emit(|| ev);
                            }
                        }
                        back.add_assign(&residual);
                        low.recycle();
                        residual.recycle();
                        let pre = if self.obs.has_trace() {
                            back.fro_norm()
                        } else {
                            0.0
                        };
                        match limiter.apply(&mut back) {
                            LimiterOutcome::Clamped => {
                                self.obs.counter("limiter_clips", 1);
                                if self.obs.has_trace() {
                                    let post = back.fro_norm();
                                    let ratio = if post > 1e-30 { pre / post } else { 1.0 };
                                    let step = self.obs.step();
                                    let name = p.name;
                                    self.obs.emit(|| TraceEvent::LimiterClip {
                                        step,
                                        param: name.to_string(),
                                        ratio,
                                    });
                                }
                            }
                            LimiterOutcome::NonFinite => {
                                self.obs.counter("limiter_non_finite", 1);
                            }
                            LimiterOutcome::Passed => {}
                        }
                    }
                    // `decay` is exactly 1.0 when weight decay is off, and
                    // a decay-1.0 multiply is a bit-exact no-op, so the
                    // fused tail needs no branch.
                    apollo_tensor::fused::fused_axpy_chain(p.value, decay, -lr, &back);
                    back.recycle();
                    r.recycle();
                }
            }
        }
    }

    fn state_elems_inner(&self, fira: bool) -> usize {
        self.states
            .iter()
            .map(|s| match s {
                LowRankState::Dense(m) => m.elems(),
                LowRankState::LowRank {
                    moments, projector, ..
                } => {
                    // Table 1 — GaLore: mr + 2nr (SVD basis + moments);
                    // random projection stores only a seed (+1, as Flora);
                    // Fira adds the limiter scalar (+1).
                    let proj = match projector.kind() {
                        ProjKind::Svd => projector.state_elems(),
                        ProjKind::Random => 1,
                    };
                    moments.elems() + proj + usize::from(fira)
                }
            })
            .sum()
    }

    /// Shared `state_save` used by GaLore, Fira, and Flora; `name` embeds
    /// the concrete optimizer so checkpoints cannot cross wrappers.
    fn state_save_inner(&self, name: &str) -> Result<Vec<u8>, String> {
        let mut w = StateWriter::new();
        save_state_header(&mut w, name);
        w.u64(self.states.len() as u64);
        for st in &self.states {
            match st {
                LowRankState::Dense(moments) => {
                    w.u8(0);
                    moments.save_into(&mut w);
                }
                LowRankState::LowRank {
                    moments,
                    projector,
                    limiter,
                } => {
                    w.u8(1);
                    moments.save_into(&mut w);
                    projector.save_into(&mut w);
                    limiter.save_into(&mut w);
                }
            }
        }
        Ok(w.into_bytes())
    }

    fn state_load_inner(&mut self, bytes: &[u8], name: &str) -> Result<(), String> {
        let mut r = StateReader::new(bytes);
        check_state_header(&mut r, name)?;
        let n = r.len()?;
        let mut states = Vec::with_capacity(n);
        for _ in 0..n {
            states.push(match r.u8()? {
                0 => LowRankState::Dense(AdamMoments::load_from(&mut r)?),
                1 => LowRankState::LowRank {
                    moments: AdamMoments::load_from(&mut r)?,
                    projector: Projector::load_from(&mut r)?,
                    limiter: NormGrowthLimiter::load_from(&mut r)?,
                },
                other => return Err(format!("unknown GaLore state tag {other}")),
            });
        }
        r.expect_exhausted()?;
        self.states = states;
        Ok(())
    }

    fn state_bytes_inner(&self) -> usize {
        self.states
            .iter()
            .map(|s| match s {
                LowRankState::Dense(m) => m.bytes(),
                LowRankState::LowRank {
                    moments, projector, ..
                } => {
                    let proj = match projector.kind() {
                        ProjKind::Svd => 4 * projector.state_elems(),
                        ProjKind::Random => 8,
                    };
                    moments.bytes() + proj
                }
            })
            .sum()
    }
}

impl Optimizer for GaLore {
    fn name(&self) -> String {
        if let Some(n) = self.name_override {
            return n.to_string();
        }
        match (self.quant_group, self.proj_kind) {
            (Some(g), _) => format!("8-bit GaLore(g={g})"),
            (None, ProjKind::Svd) => "GaLore".to_string(),
            (None, ProjKind::Random) => "GaLore w. RP".to_string(),
        }
    }

    fn step(&mut self, params: &mut [ParamUpdate<'_>], lr: f32) {
        self.step_inner(params, lr, false);
    }

    fn state_elems(&self) -> usize {
        self.state_elems_inner(false)
    }

    fn state_bytes(&self) -> usize {
        self.state_bytes_inner()
    }

    fn reset_state(&mut self) {
        self.states.clear();
    }

    fn attach_observer(&mut self, obs: Obs) {
        self.obs = obs;
    }

    fn state_save(&self) -> Result<Vec<u8>, String> {
        self.state_save_inner(&self.name())
    }

    fn state_load(&mut self, bytes: &[u8]) -> Result<(), String> {
        self.state_load_inner(bytes, &self.name())
    }
}

/// **Fira** (Chen et al., 2024): GaLore plus the norm-scaled full-rank
/// error residual, `G̃ = P·Ñ + s ⊙ (G − P·PᵀG)`, guarded by the norm-growth
/// limiter. Simulates a full-rank update at GaLore-plus-one-scalar memory.
#[derive(Debug, Clone)]
pub struct Fira(GaLore);

impl Fira {
    /// Standard Fira: SVD projection, scale 0.25, limiter γ = 1.01.
    pub fn new(rank: usize, update_freq: usize) -> Self {
        Fira(GaLore::new(rank, update_freq))
    }

    /// Random-projection variant (Fig. 5 ablation).
    pub fn with_random_projection(self) -> Self {
        Fira(self.0.with_random_projection())
    }

    /// Overrides the update scale factor.
    pub fn with_scale(self, scale: f32) -> Self {
        Fira(self.0.with_scale(scale))
    }

    /// Sets the decoupled weight decay.
    pub fn with_weight_decay(self, wd: f32) -> Self {
        Fira(self.0.with_weight_decay(wd))
    }
}

impl Optimizer for Fira {
    fn name(&self) -> String {
        match self.0.proj_kind {
            ProjKind::Svd => "Fira".to_string(),
            ProjKind::Random => "Fira w. RP".to_string(),
        }
    }

    fn step(&mut self, params: &mut [ParamUpdate<'_>], lr: f32) {
        self.0.step_inner(params, lr, true);
    }

    fn state_elems(&self) -> usize {
        self.0.state_elems_inner(true)
    }

    fn state_bytes(&self) -> usize {
        self.0.state_bytes_inner() + self.0.states.len()
    }

    fn reset_state(&mut self) {
        self.0.states.clear();
    }

    fn attach_observer(&mut self, obs: Obs) {
        self.0.obs = obs;
    }

    fn state_save(&self) -> Result<Vec<u8>, String> {
        self.0.state_save_inner(&self.name())
    }

    fn state_load(&mut self, bytes: &[u8]) -> Result<(), String> {
        let name = self.name();
        self.0.state_load_inner(bytes, &name)
    }
}

/// **Flora** (Hao et al., 2024): gradient compression by *random*
/// projection with the update reconstructed from compressed moments —
/// functionally GaLore with a seed-only random subspace. Works for
/// fine-tuning but trails AdamW badly in pre-training (Table 1 row,
/// reproduced in Fig. 5).
#[derive(Debug, Clone)]
pub struct Flora(GaLore);

impl Flora {
    /// Flora with scale 1.0 (no GaLore-style damping).
    pub fn new(rank: usize, update_freq: usize) -> Self {
        let mut inner = GaLore::new(rank, update_freq)
            .with_random_projection()
            .with_scale(1.0);
        inner.name_override = Some("Flora");
        Flora(inner)
    }
}

impl Optimizer for Flora {
    fn name(&self) -> String {
        "Flora".to_string()
    }

    fn step(&mut self, params: &mut [ParamUpdate<'_>], lr: f32) {
        self.0.step_inner(params, lr, false);
    }

    fn state_elems(&self) -> usize {
        self.0.state_elems_inner(false)
    }

    fn state_bytes(&self) -> usize {
        self.0.state_bytes_inner()
    }

    fn reset_state(&mut self) {
        self.0.states.clear();
    }

    fn attach_observer(&mut self, obs: Obs) {
        self.0.obs = obs;
    }

    fn state_save(&self) -> Result<Vec<u8>, String> {
        self.0.state_save_inner(&self.name())
    }

    fn state_load(&mut self, bytes: &[u8]) -> Result<(), String> {
        let name = self.name();
        self.0.state_load_inner(bytes, &name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apollo_tensor::{Matrix, Rng};

    fn one_step(opt: &mut dyn Optimizer, w: &mut Matrix, g: &Matrix, lr: f32) {
        let mut params = [ParamUpdate {
            name: "w",
            value: w,
            grad: g,
            projectable: true,
        }];
        opt.step(&mut params, lr);
    }

    #[test]
    fn galore_converges_on_quadratic() {
        let mut rng = Rng::seed_from_u64(90);
        let mut w = Matrix::randn(8, 24, &mut rng).scale(3.0);
        let mut opt = GaLore::new(4, 20).with_scale(1.0);
        // Quadratic loss ½‖w‖² ⇒ gradient = w; refresh a reused buffer
        // instead of cloning a fresh matrix every iteration.
        let mut g = Matrix::zeros(8, 24);
        for _ in 0..600 {
            g.copy_from(&w);
            one_step(&mut opt, &mut w, &g, 0.05);
        }
        assert!(w.fro_norm() < 1.5, "‖w‖ = {}", w.fro_norm());
    }

    #[test]
    fn galore_update_lives_in_the_projection_subspace() {
        // With SVD projection, the update P·Ñ has rank ≤ r.
        let mut rng = Rng::seed_from_u64(91);
        let g = Matrix::randn(8, 24, &mut rng);
        let mut w = Matrix::zeros(8, 24);
        let mut opt = GaLore::new(2, 100);
        one_step(&mut opt, &mut w, &g, 1.0);
        let svd = apollo_tensor::linalg::svd_jacobi(&w);
        let tail_energy: f32 = svd.s[2..].iter().map(|s| s * s).sum();
        let total: f32 = svd.s.iter().map(|s| s * s).sum();
        assert!(tail_energy / total < 1e-6, "update rank exceeds r");
    }

    #[test]
    fn galore_state_matches_table1() {
        let (m, n, r) = (8, 32, 4);
        let mut w = Matrix::zeros(m, n);
        let g = Matrix::full(m, n, 1.0);
        let mut opt = GaLore::new(r, 100);
        one_step(&mut opt, &mut w, &g, 0.01);
        assert_eq!(opt.state_elems(), m * r + 2 * n * r);
    }

    #[test]
    fn fira_state_matches_table1() {
        let (m, n, r) = (8, 32, 4);
        let mut w = Matrix::zeros(m, n);
        let g = Matrix::full(m, n, 1.0);
        let mut opt = Fira::new(r, 100);
        one_step(&mut opt, &mut w, &g, 0.01);
        assert_eq!(opt.state_elems(), m * r + 2 * n * r + 1);
    }

    #[test]
    fn flora_state_matches_table1() {
        let (m, n, r) = (8, 32, 4);
        let mut w = Matrix::zeros(m, n);
        let g = Matrix::full(m, n, 1.0);
        let mut opt = Flora::new(r, 100);
        one_step(&mut opt, &mut w, &g, 0.01);
        assert_eq!(opt.state_elems(), 2 * n * r + 1);
    }

    #[test]
    fn fira_update_is_full_rank() {
        // The residual term restores energy outside the subspace.
        let mut rng = Rng::seed_from_u64(92);
        let g = Matrix::randn(8, 24, &mut rng);
        let mut w = Matrix::zeros(8, 24);
        let mut opt = Fira::new(2, 100).with_scale(1.0);
        one_step(&mut opt, &mut w, &g, 1.0);
        let svd = apollo_tensor::linalg::svd_jacobi(&w);
        let tail_energy: f32 = svd.s[2..].iter().map(|s| s * s).sum();
        let total: f32 = svd.s.iter().map(|s| s * s).sum();
        assert!(
            tail_energy / total > 1e-4,
            "Fira update must carry out-of-subspace energy"
        );
    }

    #[test]
    fn fira_converges_on_quadratic() {
        let mut rng = Rng::seed_from_u64(93);
        let mut w = Matrix::randn(8, 24, &mut rng).scale(3.0);
        let mut opt = Fira::new(4, 20).with_scale(1.0);
        let mut g = Matrix::zeros(8, 24);
        for _ in 0..600 {
            g.copy_from(&w);
            one_step(&mut opt, &mut w, &g, 0.05);
        }
        assert!(w.fro_norm() < 1.5, "‖w‖ = {}", w.fro_norm());
    }

    #[test]
    fn galore8bit_uses_fewer_state_bytes() {
        let (m, n, r) = (16, 256, 64);
        let g = Matrix::full(m, n, 1.0);
        let mut w = Matrix::zeros(m, n);
        let mut q = GaLore::galore8bit(r, 100, 128);
        let mut f = GaLore::new(r, 100);
        one_step(&mut q, &mut w, &g, 0.01);
        let mut w2 = Matrix::zeros(m, n);
        one_step(&mut f, &mut w2, &g, 0.01);
        assert!(q.state_bytes() < f.state_bytes() / 2);
    }

    #[test]
    fn dense_fallback_for_non_projectable() {
        let mut w = Matrix::zeros(1, 16);
        let g = Matrix::full(1, 16, 1.0);
        let mut opt = GaLore::new(4, 100);
        let mut params = [ParamUpdate {
            name: "norm",
            value: &mut w,
            grad: &g,
            projectable: false,
        }];
        opt.step(&mut params, 0.1);
        assert_eq!(opt.state_elems(), 2 * 16);
        assert!(w.get(0, 0) < 0.0);
    }

    #[test]
    fn names_are_distinct() {
        assert_eq!(GaLore::new(4, 10).name(), "GaLore");
        assert_eq!(
            GaLore::new(4, 10).with_random_projection().name(),
            "GaLore w. RP"
        );
        assert_eq!(Fira::new(4, 10).name(), "Fira");
        assert_eq!(Flora::new(4, 10).name(), "Flora");
        assert!(GaLore::galore8bit(4, 10, 128).name().contains("8-bit"));
    }
}
