//! Matrix-multiplication kernels.
//!
//! The three kernels (`a·b`, `a·bᵀ`, `aᵀ·b`) share one register-tiled
//! micro-kernel: outputs are computed in bands of [`NR`] columns whose
//! accumulators live in registers for the whole `k` loop, so the per-`p`
//! traffic is a handful of contiguous vector loads instead of a
//! load+store sweep over the output row. Strided operands are packed into
//! contiguous panels first (`aᵀ` column panels, `bᵀ` interleaved panels)
//! via the scratch-buffer pool, which is what lets rustc autovectorize the
//! inner loops.
//!
//! Numerics are deliberately pinned: every output element accumulates its
//! `k` products in ascending-`p` order (with the same skip of exactly-zero
//! `a` entries as the reference loop), so results are bit-identical to the
//! naive serial kernel — and, because rows are computed independently,
//! bit-identical across thread counts too.
//!
//! Parallel kernels run row bands on the persistent worker pool
//! ([`crate::pool`]); the band partition depends only on `(rows, threads)`,
//! never on pool scheduling.

use crate::matrix::Matrix;
use crate::numerics::{current_numerics, NumericsMode};
use crate::{pool, scratch, simd};

/// Whether kernels issued from this thread run the relaxed SIMD tier.
/// Resolved once per kernel entry (on the issuing thread) so a single
/// call never mixes tiers across pool bands.
fn fast_mode() -> bool {
    current_numerics() == NumericsMode::Fast
}

/// Multiplications below this many FLOPs (`2 * m * k * n`) run
/// single-threaded; the dispatch cost dominates for tiny matrices.
const PAR_MIN_FLOPS: usize = 1 << 20;

/// Default thread cap when `APOLLO_NUM_THREADS` is unset: the kernels stop
/// scaling well past 8 bands at proxy sizes.
const DEFAULT_MAX_THREADS: usize = 8;

/// Register-tile width (output columns per accumulator block). 32 f32
/// accumulators fit the vector register file with room for operands on
/// both SSE2 (8×4) and AVX2 (4×8) lowerings.
const NR: usize = 32;

/// FLOP count of an `m×k · k×n` multiplication (one multiply + one add per
/// inner-product term), used for the [`PAR_MIN_FLOPS`] gate.
fn matmul_flops(m: usize, k: usize, n: usize) -> usize {
    2 * m * k * n
}

/// Whether an `m`-row kernel invocation of `flops` total FLOPs should run
/// on the worker pool. Pure so the threshold boundary is unit-testable.
/// Shared with the fused elementwise kernels (`crate::fused`), which gate
/// on the same threshold so one contract governs all pooled row splits.
pub(crate) fn should_parallelize(threads: usize, m: usize, flops: usize) -> bool {
    threads > 1 && flops >= PAR_MIN_FLOPS && m >= 2 * threads
}

/// Column-band variant of the gate for the m = 1 gemv path: the row gate
/// can never pass at a single output row, so gemv splits output *columns*
/// across the pool instead.
fn should_parallelize_gemv(threads: usize, n: usize, flops: usize) -> bool {
    threads > 1 && flops >= PAR_MIN_FLOPS && n >= 2 * threads
}

/// Resolves the thread count from an optional `APOLLO_NUM_THREADS` override.
///
/// The override must parse as an integer ≥ 1 to take effect; anything else
/// (unset, empty, `0`, garbage) falls back to `available / cap`. Kept as a
/// pure function so it is unit-testable without mutating the environment.
fn resolve_threads(over: Option<&str>, available: usize) -> usize {
    match over.and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => available.min(DEFAULT_MAX_THREADS),
    }
}

fn env_threads() -> usize {
    use std::sync::OnceLock;
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        let available = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        resolve_threads(
            std::env::var("APOLLO_NUM_THREADS").ok().as_deref(),
            available,
        )
    })
}

std::thread_local! {
    /// Per-thread override of the kernel thread count, for tests and the
    /// bench harness which need to sweep thread counts within one process
    /// (the `APOLLO_NUM_THREADS` value is cached once per process).
    static THREAD_OVERRIDE: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// Overrides the kernel thread count for matmuls issued *from the calling
/// thread* (`None` restores the `APOLLO_NUM_THREADS`/auto behaviour).
///
/// Results are bit-identical across thread counts by construction, so this
/// only affects performance — it exists so tests and benches can sweep
/// counts in-process.
pub fn set_thread_override(n: Option<usize>) {
    THREAD_OVERRIDE.with(|c| c.set(n.map(|n| n.max(1))));
}

/// The kernel thread count that matmuls issued from the calling thread will
/// use: the [`set_thread_override`] value if set, else `APOLLO_NUM_THREADS`,
/// else `min(available_parallelism, 8)`.
pub fn current_threads() -> usize {
    THREAD_OVERRIDE
        .with(|c| c.get())
        .unwrap_or_else(env_threads)
}

/// Scoped (RAII) form of [`set_thread_override`]: pins the calling thread's
/// kernel thread count to `n` (clamped to ≥ 1) and restores the *previous*
/// override — including "no override" — when the guard drops.
///
/// Long-lived worker threads that pin a thread count for one task (DDP
/// replicas, population-search members) must use this instead of a raw
/// [`set_thread_override`] call, which would leak the override into
/// whatever runs on the thread next.
#[must_use = "the override is reverted when the guard drops"]
#[derive(Debug)]
pub struct ThreadOverrideGuard {
    prev: Option<usize>,
}

impl ThreadOverrideGuard {
    /// Pins the calling thread's kernel thread count until drop.
    pub fn new(n: usize) -> Self {
        let prev = THREAD_OVERRIDE.with(|c| c.replace(Some(n.max(1))));
        ThreadOverrideGuard { prev }
    }
}

impl Drop for ThreadOverrideGuard {
    fn drop(&mut self) {
        THREAD_OVERRIDE.with(|c| c.set(self.prev));
    }
}

/// Register-tiled row-band kernel: `out[lo..hi] = a_rows[lo..hi] · b` where
/// `a_rows` is row-major with stride `k` and `b` row-major with stride `n`.
///
/// Each [`NR`]-column block of an output row accumulates in a register
/// array across the whole `k` loop; per `p` that costs one `a` broadcast
/// plus `NR` contiguous `b` lanes. Accumulation per element is ascending-`p`
/// with exactly-zero `a` entries skipped — the same order and skips as the
/// reference loop, hence bit-identical results.
/// Packs a row-major `k×n` operand (stride `n`) into column-band
/// interleaved panels: the `w`-wide band at column `j0` is a contiguous
/// `k×w` block at offset `j0·k` with `block[p·w + j] = src[p·n + j0 + j]`.
///
/// One accumulation step of the micro-kernel then loads its `NR` lanes
/// from a single contiguous 128-byte run instead of a 4·n-strided strip —
/// the strided form costs a TLB/prefetch stall per `p` once `n` spans
/// hundreds of pages.
fn pack_panels(src: &[f32], k: usize, n: usize) -> Vec<f32> {
    let mut panel = scratch::take_zeroed(k * n);
    if k == 0 {
        return panel;
    }
    let mut j0 = 0;
    while j0 < n {
        let w = NR.min(n - j0);
        let block = &mut panel[j0 * k..(j0 + w) * k];
        for (p, srow) in src.chunks_exact(n).enumerate() {
            block[p * w..(p + 1) * w].copy_from_slice(&srow[j0..j0 + w]);
        }
        j0 += w;
    }
    panel
}

/// Packs the transpose of a row-major `n×k` operand into the same
/// interleaved panel layout as [`pack_panels`]: `block[p·w + j] =
/// src[(j0+j)·k + p]`, i.e. panel columns are `src` *rows* (the `a·bᵀ`
/// case).
fn pack_panels_transposed(src: &[f32], n: usize, k: usize) -> Vec<f32> {
    let mut panel = scratch::take_zeroed(k * n);
    if k == 0 {
        return panel;
    }
    let mut j0 = 0;
    while j0 < n {
        let w = NR.min(n - j0);
        let block = &mut panel[j0 * k..(j0 + w) * k];
        for j in 0..w {
            let srow = &src[(j0 + j) * k..(j0 + j + 1) * k];
            for (p, &sv) in srow.iter().enumerate() {
                block[p * w + j] = sv;
            }
        }
        j0 += w;
    }
    panel
}

/// The shared band sweep: computes output rows `[lo, hi)` from row-major
/// `a_rows` (stride `k`) against a packed panel of the second operand.
/// Panel band outer, rows inner, so one `k×NR` block stays cache-hot
/// across the whole row band.
#[allow(clippy::too_many_arguments)]
fn run_packed(
    a_rows: &[f32],
    k: usize,
    panel: &[f32],
    n: usize,
    lo: usize,
    hi: usize,
    out: &mut [f32],
    fast: bool,
) {
    if k == 0 {
        return; // out is pre-zeroed; an empty inner dim contributes nothing
    }
    let rows = &a_rows[lo * k..hi * k];
    let n_rows = hi - lo;
    let mut j0 = 0;
    while j0 < n {
        let w = NR.min(n - j0);
        let block = &panel[j0 * k..(j0 + w) * k];
        if w == NR && fast {
            // Relaxed tier: the FMA register tile replaces both the paired
            // and single-row exact tiles (tails below stay on the exact
            // tile — they are a < NR-column sliver, within tolerance).
            for (band_r, arow) in rows.chunks_exact(k).enumerate() {
                simd::tile_packed32(arow, block, &mut out[band_r * n + j0..band_r * n + j0 + NR]);
            }
        } else if w == NR {
            // Rows in pairs: one block load feeds two accumulator sets,
            // doubling FLOPs per byte of L1 traffic.
            let mut band_r = 0;
            while band_r + 2 <= n_rows {
                let (o0, o1) = out[band_r * n + j0..].split_at_mut(n);
                tile_packed2(
                    &rows[band_r * k..(band_r + 1) * k],
                    &rows[(band_r + 1) * k..(band_r + 2) * k],
                    block,
                    &mut o0[..NR],
                    &mut o1[..NR],
                );
                band_r += 2;
            }
            if band_r < n_rows {
                tile_packed(
                    &rows[band_r * k..(band_r + 1) * k],
                    block,
                    &mut out[band_r * n + j0..band_r * n + j0 + NR],
                );
            }
        } else {
            for (band_r, arow) in rows.chunks_exact(k).enumerate() {
                tile_packed_tail(
                    arow,
                    block,
                    w,
                    &mut out[band_r * n + j0..band_r * n + j0 + w],
                );
            }
        }
        j0 += w;
    }
}

/// Two-row register tile: identical per-element accumulation to
/// [`tile_packed`] run on each row separately (the two accumulator sets
/// are independent chains), but each packed block line is loaded once for
/// both rows.
#[inline]
fn tile_packed2(arow0: &[f32], arow1: &[f32], block: &[f32], orow0: &mut [f32], orow1: &mut [f32]) {
    let mut acc0 = [0.0f32; NR];
    let mut acc1 = [0.0f32; NR];
    for ((brow, &av0), &av1) in block.chunks_exact(NR).zip(arow0).zip(arow1) {
        let brow: &[f32; NR] = brow.try_into().unwrap();
        for ((a0, a1), &bv) in acc0.iter_mut().zip(acc1.iter_mut()).zip(brow) {
            *a0 += av0 * bv;
            *a1 += av1 * bv;
        }
    }
    orow0.copy_from_slice(&acc0);
    orow1.copy_from_slice(&acc1);
}

/// Full-width register tile: `orow[j] = Σ_p a[p] · block[p·NR + j]`, each
/// output element accumulated in ascending-`p` order.
///
/// There is no skip of exactly-zero `a` entries (the reference loop's
/// branch was dropped for vectorization): for finite operands adding
/// `±0·bv` never changes an accumulator that starts at `+0.0`, so results
/// stay bit-identical; only `0·∞`/`0·NaN` products differ, which training
/// guards against upstream (`has_non_finite` sentinels).
///
/// Kept as its own function (one accumulator array per specialization) so
/// LLVM promotes `acc` to vector registers for the whole `p` loop instead
/// of sharing a stack slot with the tail path.
#[inline]
fn tile_packed(arow: &[f32], block: &[f32], orow: &mut [f32]) {
    let mut acc = [0.0f32; NR];
    for (brow, &av) in block.chunks_exact(NR).zip(arow) {
        let brow: &[f32; NR] = brow.try_into().unwrap();
        for (aj, &bv) in acc.iter_mut().zip(brow) {
            *aj += av * bv;
        }
    }
    orow.copy_from_slice(&acc);
}

/// Remainder tile (`w < NR` columns) of the packed-panel kernel.
#[inline]
fn tile_packed_tail(arow: &[f32], block: &[f32], w: usize, orow: &mut [f32]) {
    let mut acc = [0.0f32; NR];
    for (brow, &av) in block.chunks_exact(w).zip(arow) {
        for (aj, &bv) in acc[..w].iter_mut().zip(brow) {
            *aj += av * bv;
        }
    }
    orow.copy_from_slice(&acc[..w]);
}

/// Raw output pointer shared across pool tasks; tasks write disjoint row
/// bands.
#[derive(Clone, Copy)]
struct OutPtr(*mut f32);

impl OutPtr {
    /// Accessor (rather than direct field use) so closures capture the
    /// whole `Sync` wrapper, not the raw pointer field.
    fn get(self) -> *mut f32 {
        self.0
    }
}

// SAFETY: tasks index disjoint bands, established by the band partition in
// `parallel_rows`.
unsafe impl Send for OutPtr {}
unsafe impl Sync for OutPtr {}

/// Runs `run(lo, hi, band_out)` over row bands of an `m × n_out` output,
/// on the worker pool when the FLOP gate passes, serially otherwise.
///
/// The band partition is a pure function of `(m, threads)` and every row
/// is computed independently, so the output is bit-identical for any
/// thread count (including 1).
fn parallel_rows(
    m: usize,
    flops: usize,
    run: impl Fn(usize, usize, &mut [f32]) + Sync,
    n_out: usize,
) -> Vec<f32> {
    let threads = current_threads();
    let mut out = scratch::take_zeroed(m * n_out);
    if !should_parallelize(threads, m, flops) {
        run(0, m, &mut out);
        return out;
    }
    let band = m.div_ceil(threads);
    let n_bands = m.div_ceil(band);
    let ptr = OutPtr(out.as_mut_ptr());
    let run = &run;
    pool::Pool::run(threads, n_bands, &move |t| {
        let lo = t * band;
        let hi = ((t + 1) * band).min(m);
        // SAFETY: bands are disjoint row ranges of `out`, and `out` outlives
        // the blocking `Pool::run` call.
        let chunk =
            unsafe { std::slice::from_raw_parts_mut(ptr.get().add(lo * n_out), (hi - lo) * n_out) };
        run(lo, hi, chunk);
    });
    out
}

/// `1×k · k×n` product, the hot shape of a KV-cached decode step (one
/// residual row against every weight matrix). Output columns are split
/// into per-thread bands on the worker pool; each element still
/// accumulates its `k` products in ascending-`p` order, so results are
/// bit-identical to the reference loop and invariant across thread counts
/// (the band partition is a pure function of `(n, threads)`).
fn gemv(arow: &[f32], b: &Matrix) -> Vec<f32> {
    let (k, n) = b.shape();
    let threads = current_threads();
    let fast = fast_mode();
    let mut out = scratch::take_zeroed(n);
    if !should_parallelize_gemv(threads, n, matmul_flops(1, k, n)) {
        if fast {
            simd::gemv_band(arow, b.as_slice(), n, 0, n, &mut out);
        } else {
            gemv_band(arow, b, 0, n, &mut out);
        }
        return out;
    }
    let band = n.div_ceil(threads);
    let n_bands = n.div_ceil(band);
    let ptr = OutPtr(out.as_mut_ptr());
    pool::Pool::run(threads, n_bands, &move |t| {
        let lo = t * band;
        let hi = ((t + 1) * band).min(n);
        // SAFETY: bands are disjoint column ranges of `out`, which outlives
        // the blocking `Pool::run` call.
        let chunk = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(lo), hi - lo) };
        if fast {
            simd::gemv_band(arow, b.as_slice(), n, lo, hi, chunk);
        } else {
            gemv_band(arow, b, lo, hi, chunk);
        }
    });
    out
}

/// One column band of the gemv: `out[j - lo] = Σ_p arow[p] · b[p, j]`,
/// with `p` outer (one broadcast, contiguous `b` lanes inner) and
/// ascending-`p` accumulation per element, as in the reference loop.
fn gemv_band(arow: &[f32], b: &Matrix, lo: usize, hi: usize, out: &mut [f32]) {
    for (p, &av) in arow.iter().enumerate() {
        let brow = &b.row(p)[lo..hi];
        for (ov, &bv) in out.iter_mut().zip(brow) {
            *ov += av * bv;
        }
    }
}

/// `a · b`.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dims {}x{} · {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    // Single-row products — the KV-cached decode-step hot shape — go
    // through the column-banded gemv path: the row-band partition the other
    // paths parallelize over degenerates to one task at m = 1.
    if m == 1 {
        let data = gemv(a.row(0), b);
        return Matrix::from_vec(1, n, data);
    }
    let fast = fast_mode();
    // Packing costs k·n copies against 2·m·k·n FLOPs of compute; for a
    // handful of rows the straight row-sweep wins.
    if m < 4 {
        let run = |lo: usize, hi: usize, out: &mut [f32]| {
            for (band_r, r) in (lo..hi).enumerate() {
                let arow = a.row(r);
                let crow = &mut out[band_r * n..(band_r + 1) * n];
                if fast {
                    simd::gemv_band(arow, b.as_slice(), n, 0, n, crow);
                    continue;
                }
                for (p, &av) in arow.iter().enumerate() {
                    let brow = b.row(p);
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        *cv += av * bv;
                    }
                }
            }
        };
        let data = parallel_rows(m, matmul_flops(m, k, n), run, n);
        return Matrix::from_vec(m, n, data);
    }
    let panel = pack_panels(b.as_slice(), k, n);
    let data = parallel_rows(
        m,
        matmul_flops(m, k, n),
        |lo, hi, out| run_packed(a.as_slice(), k, &panel, n, lo, hi, out, fast),
        n,
    );
    scratch::recycle(panel);
    Matrix::from_vec(m, n, data)
}

/// `a · bᵀ` without materializing the transpose.
///
/// `b`'s rows become output columns, so the kernel first packs `b` into
/// column-interleaved panels (`panel[j0*k + p*w + j] = b[(j0+j)*k + p]` for
/// the `w`-wide band at `j0`): the `NR` lanes of one accumulation step then
/// load contiguously and each output element keeps its plain sequential
/// dot-product order, bit-identical to the scalar loop.
///
/// # Panics
///
/// Panics if `a.cols() != b.cols()`.
pub fn matmul_transb(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_transb: inner dims {}x{} · ({}x{})ᵀ",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.rows());
    let fast = fast_mode();
    // Packing costs k·n writes against 2·m·k·n FLOPs of compute; below a
    // few rows the scalar dot loop wins (and rank-1 projector products with
    // k = 0 or n = 0 have nothing to pack).
    if m < 4 || k == 0 || n == 0 {
        let run = |lo: usize, hi: usize, out: &mut [f32]| {
            for (band_r, r) in (lo..hi).enumerate() {
                let arow = a.row(r);
                for c in 0..n {
                    let brow = b.row(c);
                    out[band_r * n + c] = if fast {
                        simd::dot(arow, brow)
                    } else {
                        let mut acc = 0.0f32;
                        for p in 0..k {
                            acc += arow[p] * brow[p];
                        }
                        acc
                    };
                }
            }
        };
        let data = parallel_rows(m, matmul_flops(m, k, n), run, n);
        return Matrix::from_vec(m, n, data);
    }
    let panel = pack_panels_transposed(b.as_slice(), n, k);
    let data = parallel_rows(
        m,
        matmul_flops(m, k, n),
        |lo, hi, out| run_packed(a.as_slice(), k, &panel, n, lo, hi, out, fast),
        n,
    );
    scratch::recycle(panel);
    Matrix::from_vec(m, n, data)
}

/// `aᵀ · b` without materializing the transpose.
///
/// `a`'s columns are the output rows; the kernel packs `aᵀ` (a `k`-strided
/// gather per column) into a contiguous row-major panel once, then reuses
/// the shared register-tiled band kernel. Per-element accumulation stays
/// ascending-`p` with the same zero skip as the reference loop.
///
/// # Panics
///
/// Panics if `a.rows() != b.rows()`.
pub fn matmul_transa(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_transa: inner dims ({}x{})ᵀ · {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (k, m, n) = (a.rows(), a.cols(), b.cols());
    if m * k * n < 4096 {
        // Tiny products (projector rank-1 paths, tests): the transpose
        // pack would rival the compute. out[r, c] = sum_p a[p, r]·b[p, c];
        // p ascends per element, as in the tiled path.
        let run = |lo: usize, hi: usize, out: &mut [f32]| {
            for p in 0..k {
                let arow = a.row(p);
                let brow = b.row(p);
                for (band_r, r) in (lo..hi).enumerate() {
                    let av = arow[r];
                    let orow = &mut out[band_r * n..(band_r + 1) * n];
                    for (ov, &bv) in orow.iter_mut().zip(brow) {
                        *ov += av * bv;
                    }
                }
            }
        };
        let data = parallel_rows(m, matmul_flops(m, k, n), run, n);
        return Matrix::from_vec(m, n, data);
    }
    // Pack aᵀ row-major with a cache-blocked transpose (both the reads and
    // the writes stay within a TB×TB tile that fits L1), then reuse the
    // shared packed band sweep.
    const TB: usize = 32;
    let mut at = scratch::take_zeroed(m * k);
    let mut pb = 0;
    while pb < k {
        let p_hi = (pb + TB).min(k);
        let mut rb = 0;
        while rb < m {
            let r_hi = (rb + TB).min(m);
            for p in pb..p_hi {
                let arow = &a.row(p)[rb..r_hi];
                for (r, &av) in arow.iter().enumerate() {
                    at[(rb + r) * k + p] = av;
                }
            }
            rb = r_hi;
        }
        pb = p_hi;
    }
    let panel = pack_panels(b.as_slice(), k, n);
    let fast = fast_mode();
    let data = parallel_rows(
        m,
        matmul_flops(m, k, n),
        |lo, hi, out| run_packed(&at, k, &panel, n, lo, hi, out, fast),
        n,
    );
    scratch::recycle(panel);
    scratch::recycle(at);
    Matrix::from_vec(m, n, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn naive(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for p in 0..a.cols() {
                    acc += a.get(i, p) * b.get(p, j);
                }
                c.set(i, j, acc);
            }
        }
        c
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "{x} vs {y}"
            );
        }
    }

    #[test]
    fn matmul_matches_naive() {
        let mut rng = Rng::seed_from_u64(2);
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (17, 9, 23), (64, 32, 48)] {
            let a = Matrix::randn(m, k, &mut rng);
            let b = Matrix::randn(k, n, &mut rng);
            assert_close(&matmul(&a, &b), &naive(&a, &b), 1e-4);
        }
    }

    #[test]
    fn matmul_transb_matches_explicit_transpose() {
        let mut rng = Rng::seed_from_u64(3);
        for &(m, n) in &[(13, 11), (2, 11), (64, 40)] {
            let a = Matrix::randn(m, 7, &mut rng);
            let b = Matrix::randn(n, 7, &mut rng);
            assert_close(&matmul_transb(&a, &b), &matmul(&a, &b.transpose()), 1e-4);
        }
    }

    #[test]
    fn matmul_transa_matches_explicit_transpose() {
        let mut rng = Rng::seed_from_u64(4);
        for &(m, n) in &[(13, 11), (40, 64)] {
            let a = Matrix::randn(7, m, &mut rng);
            let b = Matrix::randn(7, n, &mut rng);
            assert_close(&matmul_transa(&a, &b), &matmul(&a.transpose(), &b), 1e-4);
        }
    }

    #[test]
    fn large_parallel_path_matches_naive() {
        let mut rng = Rng::seed_from_u64(5);
        let a = Matrix::randn(200, 120, &mut rng);
        let b = Matrix::randn(120, 90, &mut rng);
        assert_close(&matmul(&a, &b), &naive(&a, &b), 1e-3);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = Rng::seed_from_u64(6);
        let a = Matrix::randn(9, 9, &mut rng);
        assert_close(&matmul(&a, &Matrix::identity(9)), &a, 1e-6);
        assert_close(&matmul(&Matrix::identity(9), &a), &a, 1e-6);
    }

    #[test]
    #[should_panic(expected = "matmul: inner dims")]
    fn dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn flop_gate_counts_two_flops_per_term() {
        // The doc contract for PAR_MIN_FLOPS is 2·m·k·n (one multiply + one
        // add); this pins the kernels' gate argument to that convention.
        assert_eq!(matmul_flops(3, 5, 7), 2 * 3 * 5 * 7);
    }

    #[test]
    fn parallel_gate_boundary() {
        // Exactly at the threshold parallelizes; one FLOP below does not.
        let m = 4096;
        assert!(should_parallelize(2, m, PAR_MIN_FLOPS));
        assert!(!should_parallelize(2, m, PAR_MIN_FLOPS - 1));
        // Too few rows or a single thread never parallelizes.
        assert!(!should_parallelize(1, m, PAR_MIN_FLOPS));
        assert!(!should_parallelize(8, 15, PAR_MIN_FLOPS));
        // A shape whose 2·m·k·n crosses the gate while m·k·n does not:
        // the off-by-2× this test guards against.
        let (m, k, n) = (128, 64, 80);
        assert!(matmul_flops(m, k, n) >= PAR_MIN_FLOPS);
        assert!(m * k * n < PAR_MIN_FLOPS);
        assert!(should_parallelize(2, m, matmul_flops(m, k, n)));
    }

    #[test]
    fn gemv_gate_boundary() {
        // The column gate mirrors the row gate with n in place of m.
        let n = 4096;
        assert!(should_parallelize_gemv(2, n, PAR_MIN_FLOPS));
        assert!(!should_parallelize_gemv(2, n, PAR_MIN_FLOPS - 1));
        assert!(!should_parallelize_gemv(1, n, PAR_MIN_FLOPS));
        assert!(!should_parallelize_gemv(8, 15, PAR_MIN_FLOPS));
    }

    #[test]
    fn gemv_matches_naive_across_thread_counts() {
        // Large enough that 2·k·n crosses the FLOP gate, so the pooled
        // column-band path actually runs at threads > 1.
        let mut rng = Rng::seed_from_u64(9);
        let (k, n) = (521, 1031);
        assert!(matmul_flops(1, k, n) >= PAR_MIN_FLOPS);
        let a = Matrix::randn(1, k, &mut rng);
        let b = Matrix::randn(k, n, &mut rng);
        let want = naive(&a, &b);
        for threads in [1, 3, 8] {
            set_thread_override(Some(threads));
            let got = matmul(&a, &b);
            for (x, y) in got.as_slice().iter().zip(want.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "threads={threads}: {x} vs {y}");
            }
        }
        set_thread_override(None);
    }

    #[test]
    fn thread_override_guard_restores_previous_state() {
        // Guards must restore whatever was in effect before them — a raw
        // override, another guard's value, or no override at all — and
        // nest correctly.
        let baseline = current_threads();
        {
            let _g = ThreadOverrideGuard::new(3);
            assert_eq!(current_threads(), 3);
            {
                let _inner = ThreadOverrideGuard::new(5);
                assert_eq!(current_threads(), 5);
            }
            assert_eq!(current_threads(), 3, "inner guard must restore outer");
        }
        assert_eq!(current_threads(), baseline, "guard leaked an override");
        // A guard over a raw override restores the raw override, and the
        // clamp matches set_thread_override's.
        set_thread_override(Some(7));
        {
            let _g = ThreadOverrideGuard::new(0);
            assert_eq!(current_threads(), 1, "zero clamps to one");
        }
        assert_eq!(current_threads(), 7);
        set_thread_override(None);
    }

    #[test]
    fn thread_override_guard_isolates_concurrent_members() {
        // Two worker threads pinned to different counts (the
        // population-search member setup) must each see their own override
        // while it is live and their thread's original state after it
        // drops — no cross-thread or post-drop leakage.
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for threads in [2usize, 6] {
                handles.push(s.spawn(move || {
                    let before = current_threads();
                    {
                        let _g = ThreadOverrideGuard::new(threads);
                        assert_eq!(current_threads(), threads);
                        // Give the sibling time to overlap: overrides are
                        // thread-local, so the sibling's pin is invisible.
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        assert_eq!(current_threads(), threads, "sibling leaked in");
                    }
                    assert_eq!(current_threads(), before, "override leaked out");
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
        });
    }

    #[test]
    fn thread_override_parses_valid_values() {
        assert_eq!(resolve_threads(Some("4"), 16), 4);
        assert_eq!(resolve_threads(Some(" 12 "), 16), 12);
        // The override may exceed the default cap.
        assert_eq!(resolve_threads(Some("32"), 16), 32);
        assert_eq!(resolve_threads(Some("1"), 16), 1);
    }

    #[test]
    fn thread_override_rejects_invalid_values() {
        assert_eq!(resolve_threads(None, 16), 8);
        assert_eq!(resolve_threads(Some(""), 16), 8);
        assert_eq!(resolve_threads(Some("0"), 16), 8);
        assert_eq!(resolve_threads(Some("-2"), 16), 8);
        assert_eq!(resolve_threads(Some("lots"), 16), 8);
        assert_eq!(resolve_threads(Some("3.5"), 4), 4);
        assert_eq!(resolve_threads(None, 2), 2);
    }
}
