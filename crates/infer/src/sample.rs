//! Next-token sampling over LM-head logits.
//!
//! All strategies are driven by the deterministic [`apollo_tensor::Rng`]
//! and break probability ties by ascending token id, so a `(logits, seed)`
//! pair maps to exactly one token on every machine and at every thread
//! count — the property that makes batched generation byte-identical to
//! serial generation.

use apollo_tensor::Rng;

/// Per-request generation settings.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Maximum number of tokens to generate.
    pub max_new_tokens: usize,
    /// Softmax temperature; `0` (or below) selects greedy argmax.
    pub temperature: f32,
    /// Keep only the `k` most probable tokens (`0` disables the filter).
    pub top_k: usize,
    /// Keep the smallest prefix of tokens whose cumulative probability
    /// reaches `p` (`>= 1.0` disables the filter).
    pub top_p: f32,
    /// Seed of the per-request [`Rng`]; requests with equal seeds and
    /// prompts generate identical tokens regardless of batching.
    pub seed: u64,
    /// Generation stops after emitting this token, if set.
    pub stop_token: Option<u32>,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_new_tokens: 32,
            temperature: 0.0,
            top_k: 0,
            top_p: 1.0,
            seed: 0,
            stop_token: None,
        }
    }
}

/// Greedy argmax: the first index attaining the maximum (ties break toward
/// the lower token id).
fn argmax(logits: &[f32]) -> u32 {
    let mut best = 0usize;
    for (j, &v) in logits.iter().enumerate() {
        if v > logits[best] {
            best = j;
        }
    }
    best as u32
}

/// Samples the next token from one row of LM-head logits.
///
/// Temperature `<= 0` is greedy argmax and draws nothing from `rng`;
/// otherwise the logits are softmaxed at the given temperature, filtered
/// by top-k and then top-p (nucleus), renormalized, and sampled with a
/// single `rng.uniform()` draw over the cumulative distribution, candidates
/// ordered by descending probability with ascending-id tie-breaks.
///
/// # Panics
///
/// Panics if `logits` is empty.
pub fn sample(logits: &[f32], cfg: &GenConfig, rng: &mut Rng) -> u32 {
    assert!(!logits.is_empty(), "sample: empty logits");
    if cfg.temperature <= 0.0 {
        return argmax(logits);
    }
    // Softmax at temperature, max-subtracted for stability.
    let maxv = logits.iter().cloned().fold(f32::MIN, f32::max);
    let mut probs: Vec<f32> = logits
        .iter()
        .map(|&x| ((x - maxv) / cfg.temperature).exp())
        .collect();
    let denom: f32 = probs.iter().sum();
    for p in probs.iter_mut() {
        *p /= denom;
    }
    // Candidates by descending probability, ascending id on ties: the
    // comparison key is total, so the order is unique and deterministic.
    let mut order: Vec<usize> = (0..probs.len()).collect();
    order.sort_by(|&a, &b| probs[b].total_cmp(&probs[a]).then(a.cmp(&b)));
    let mut keep = order.len();
    if cfg.top_k > 0 {
        keep = keep.min(cfg.top_k);
    }
    if cfg.top_p < 1.0 {
        let mut cum = 0.0f32;
        for (i, &id) in order[..keep].iter().enumerate() {
            cum += probs[id];
            if cum >= cfg.top_p {
                keep = i + 1;
                break;
            }
        }
    }
    let kept = &order[..keep.max(1)];
    let total: f32 = kept.iter().map(|&id| probs[id]).sum();
    // One uniform draw over the renormalized cumulative distribution. The
    // final candidate absorbs any rounding shortfall.
    let u = rng.uniform() * total;
    let mut cum = 0.0f32;
    for &id in kept {
        cum += probs[id];
        if u < cum {
            return id as u32;
        }
    }
    kept[kept.len() - 1] as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(temperature: f32, top_k: usize, top_p: f32) -> GenConfig {
        GenConfig {
            temperature,
            top_k,
            top_p,
            ..GenConfig::default()
        }
    }

    #[test]
    fn greedy_takes_first_max() {
        let mut rng = Rng::seed_from_u64(0);
        let logits = [0.5, 2.0, 2.0, -1.0];
        assert_eq!(sample(&logits, &cfg(0.0, 0, 1.0), &mut rng), 1);
    }

    #[test]
    fn top_k_one_is_greedy_at_any_temperature() {
        let mut rng = Rng::seed_from_u64(1);
        let logits = [0.1, 3.0, 1.0, 2.5];
        for _ in 0..20 {
            assert_eq!(sample(&logits, &cfg(1.5, 1, 1.0), &mut rng), 1);
        }
    }

    #[test]
    fn tiny_top_p_keeps_only_the_mode() {
        let mut rng = Rng::seed_from_u64(2);
        let logits = [0.0, 4.0, 0.0, 0.0];
        for _ in 0..20 {
            assert_eq!(sample(&logits, &cfg(1.0, 0, 0.01), &mut rng), 1);
        }
    }

    #[test]
    fn same_seed_same_draws() {
        let logits: Vec<f32> = (0..32).map(|i| ((i * 7) % 11) as f32 * 0.3).collect();
        let c = cfg(0.8, 8, 0.9);
        let run = || {
            let mut rng = Rng::seed_from_u64(42);
            (0..50)
                .map(|_| sample(&logits, &c, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sampled_ids_are_in_range_and_varied() {
        let logits: Vec<f32> = (0..16).map(|i| (i as f32 * 0.1).sin()).collect();
        let c = cfg(1.0, 0, 1.0);
        let mut rng = Rng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let t = sample(&logits, &c, &mut rng);
            assert!((t as usize) < 16);
            seen.insert(t);
        }
        assert!(seen.len() > 3, "temperature sampling must actually vary");
    }
}
