//! End-to-end serving harness: an in-process HTTP front-end over the
//! continuous-batching scheduler, driven by the open-loop Poisson load
//! generator over real loopback sockets.
//!
//! Two measurements land in `BENCH_serve.json` (output directory is the
//! first positional argument, default `.`):
//!
//! - **steady**: an arrival rate the server can absorb — tail latency
//!   (p50/p99/p99.9) and goodput are the regression signal.
//! - **overload**: a deliberately undersized server at several times its
//!   capacity — the shed rate shows admission control engaging instead of
//!   the queue growing without bound (informational, not gated).
//!
//! `--smoke` shrinks the request counts for CI; `--merge` best-merges this
//! run into an existing `BENCH_serve.json` (per-metric best across runs,
//! min for latencies and max for throughputs, for the double-sweep CI
//! smoke stage).

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use apollo_bench::perf::{InferEntry, ServeReport};
use apollo_infer::{run_loadgen, FaultMix, Frontend, LoadConfig, SchedConfig, ServeConfig};
use apollo_nn::{
    AdapterRegistry, LinearMode, LlamaModel, LoraAdapter, ModelConfig, QuantizedModel,
};
use apollo_obs::Obs;
use apollo_tensor::{current_numerics, current_threads, simd_tier, Matrix, Rng};

/// Per-request workload: short prompts and decodes so a steady run stays
/// well inside the tiny proxy's capacity and the tail reflects queueing,
/// not raw decode time.
const PROMPT_LEN: usize = 16;
const MAX_NEW_TOKENS: usize = 16;
/// The overload run decodes longer sequences so the offered rate sits
/// several times over the single-slot server's capacity — otherwise the
/// tiny proxy is fast enough to absorb the burst and nothing is shed.
const OVERLOAD_NEW_TOKENS: usize = 64;

/// Multi-tenant prefix scenario: a 160-token shared system prompt, an
/// 8-token unique suffix, and 80% of requests reusing their tenant's
/// prefix — the traffic shape the radix-tree prefix cache targets.
const PREFIX_LEN: usize = 160;
const PREFIX_PROMPT_LEN: usize = 168;
const PREFIX_NEW_TOKENS: usize = 8;
const PREFIX_REUSE: f64 = 0.8;
const PREFIX_ADAPTERS: usize = 3;

struct RunSpec {
    steady_requests: usize,
    steady_rate: f64,
    overload_requests: usize,
    overload_rate: f64,
    prefix_requests: usize,
    prefix_rate: f64,
}

fn loadcfg(addr: String, requests: usize, rate: f64, seed: u64) -> LoadConfig {
    LoadConfig {
        addr,
        requests,
        rate,
        seed,
        prompt_len: PROMPT_LEN,
        max_new_tokens: MAX_NEW_TOKENS,
        deadline_ms: 30_000,
        stream: false,
        faults: FaultMix::none(),
        timeout: Duration::from_secs(60),
        ..LoadConfig::default()
    }
}

/// A LoRA adapter compatible with `cfg`, with a nonzero delta (`B` is
/// zero-initialized at construction, so perturb it).
fn lora_adapter(cfg: &ModelConfig, seed: u64) -> LoraAdapter {
    let mut rng = Rng::seed_from_u64(seed);
    let mut m = LlamaModel::new(
        cfg,
        LinearMode::LoRa {
            rank: 4,
            alpha: 8.0,
        },
        &mut rng,
    );
    for p in &mut m.params {
        if p.name.ends_with(".lora_b") {
            p.value = Matrix::randn(p.value.rows(), p.value.cols(), &mut rng);
        }
    }
    LoraAdapter::from_model(&m).expect("LoRA source model")
}

/// One prefix-heavy multi-adapter run. Returns the loadgen report, the
/// prefix-cache hit rate, and the *effective* prefill throughput —
/// `(cold rows + cached rows) / prefill seconds`, counting cached rows as
/// served work the cache saved the server from recomputing.
fn run_prefix_scenario(
    model: &Arc<LlamaModel>,
    registry: &Arc<AdapterRegistry>,
    cache_bytes: usize,
    requests: usize,
    rate: f64,
) -> (apollo_infer::LoadReport, f64, f64) {
    let sched = SchedConfig {
        max_active: 4,
        queue_cap: 64,
        prefill_chunk: 32,
        kv_capacity: PREFIX_PROMPT_LEN + PREFIX_NEW_TOKENS,
        prefix_cache_bytes: cache_bytes,
    };
    let serve = ServeConfig {
        default_deadline: Duration::from_secs(30),
        ..ServeConfig::default()
    };
    let front = Frontend::start_multi(
        Arc::clone(model),
        sched,
        serve,
        Obs::disabled(),
        Arc::clone(registry),
    )
    .expect("bind loopback listener");
    let mut lcfg = loadcfg(front.local_addr().to_string(), requests, rate, 0xAE1);
    lcfg.prompt_len = PREFIX_PROMPT_LEN;
    lcfg.max_new_tokens = PREFIX_NEW_TOKENS;
    lcfg.prefix_reuse = PREFIX_REUSE;
    lcfg.prefix_len = PREFIX_LEN;
    lcfg.adapters = PREFIX_ADAPTERS;

    // Warmup: a short all-reuse burst populates each tenant's prefix, so
    // the measured run sees the cache in steady state (the cold server
    // ignores this — it has nothing to warm). The seed must match the
    // measured run: shared-prefix tokens are derived from it. Measured
    // numbers are deltas past this point.
    let mut warm_cfg = lcfg.clone();
    warm_cfg.requests = 4 * PREFIX_ADAPTERS;
    warm_cfg.rate = 10.0;
    warm_cfg.prefix_reuse = 1.0;
    run_loadgen(&warm_cfg).expect("prefix warmup run");
    let stats = front.stats();
    let load = |f: &std::sync::atomic::AtomicU64| f.load(Ordering::Relaxed);
    let before = (
        load(&stats.prefill_tokens),
        load(&stats.prefix_hit_tokens),
        load(&stats.prefill_us),
        load(&stats.prefix_lookups),
        load(&stats.prefix_hits),
    );

    let report = run_loadgen(&lcfg).expect("prefix loadgen run");
    let prefill = load(&stats.prefill_tokens) - before.0;
    let hit = load(&stats.prefix_hit_tokens) - before.1;
    let us = (load(&stats.prefill_us) - before.2).max(1);
    let lookups = (load(&stats.prefix_lookups) - before.3).max(1);
    let hits = load(&stats.prefix_hits) - before.4;
    let drain = front.shutdown();
    assert_eq!(drain.forced, 0, "prefix run must drain cleanly");
    assert_eq!(
        report.transport_errors, 0,
        "prefix run must not drop connections"
    );
    assert!(report.ok > 0, "prefix run produced no successful requests");
    let effective = (prefill + hit) as f64 / (us as f64 / 1e6);
    let hit_rate = if cache_bytes == 0 {
        0.0
    } else {
        hits as f64 / lookups as f64
    };
    (report, hit_rate, effective)
}

fn main() {
    let mut mode = "full".to_string();
    let mut out_dir = ".".to_string();
    let mut merge = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => mode = "smoke".to_string(),
            "--merge" => merge = true,
            other => out_dir = other.to_string(),
        }
    }
    let spec = if mode == "smoke" {
        RunSpec {
            steady_requests: 30,
            steady_rate: 20.0,
            overload_requests: 24,
            overload_rate: 200.0,
            prefix_requests: 30,
            prefix_rate: 40.0,
        }
    } else {
        RunSpec {
            steady_requests: 150,
            steady_rate: 20.0,
            overload_requests: 60,
            overload_rate: 200.0,
            prefix_requests: 100,
            prefix_rate: 40.0,
        }
    };

    let cfg = ModelConfig::tiny_60m();
    let mut rng = Rng::seed_from_u64(0x5E4E);
    let model = Arc::new(LlamaModel::new(&cfg, LinearMode::Dense, &mut rng));

    // Steady load: generously provisioned server, arrival rate well under
    // capacity. The tail is queueing jitter plus per-request decode time.
    let sched = SchedConfig {
        max_active: 4,
        queue_cap: 64,
        prefill_chunk: 16,
        kv_capacity: PROMPT_LEN + MAX_NEW_TOKENS,
        prefix_cache_bytes: 0,
    };
    let serve = ServeConfig {
        default_deadline: Duration::from_secs(30),
        ..ServeConfig::default()
    };
    // Metrics-enabled Obs so the scheduler's run-start `infer.mem.*`
    // gauges (weight + KV-cache footprint) land in the report.
    let obs = Obs::enabled(usize::MAX);
    let front = Frontend::start(Arc::clone(&model), sched, serve, obs.clone())
        .expect("bind loopback listener");
    let steady = run_loadgen(&loadcfg(
        front.local_addr().to_string(),
        spec.steady_requests,
        spec.steady_rate,
        0xACE,
    ))
    .expect("steady loadgen run");
    let report = front.shutdown();
    assert_eq!(report.forced, 0, "steady run must drain cleanly");
    assert_eq!(
        steady.transport_errors, 0,
        "steady run must not drop connections"
    );
    assert!(steady.ok > 0, "steady run produced no successful requests");
    eprintln!(
        "[serve] steady ({} req @ {:.0}/s): p50 {:7.1} ms  p99 {:7.1} ms  p99.9 {:7.1} ms  \
         goodput {:6.1} req/s",
        steady.sent,
        spec.steady_rate,
        steady.p50_ms,
        steady.p99_ms,
        steady.p999_ms,
        steady.goodput_rps
    );
    let metrics = obs.metrics().expect("metrics-enabled obs");
    let weight_bytes = metrics
        .gauge("infer.mem.weight_bytes")
        .expect("scheduler emits weight-footprint gauge at start");
    let kv_bytes = metrics
        .gauge("infer.mem.kv_bytes")
        .expect("scheduler emits KV-footprint gauge at start");

    // INT8+BF16 footprint: start (and immediately drain) a front-end over
    // the quantized snapshot of the same model — the run-start gauges are
    // all this measurement needs, and going through `Frontend::start`
    // keeps the number tied to what serving actually allocates.
    let int8_obs = Obs::enabled(usize::MAX);
    let int8_sched = SchedConfig {
        max_active: 4,
        queue_cap: 64,
        prefill_chunk: 16,
        kv_capacity: PROMPT_LEN + MAX_NEW_TOKENS,
        prefix_cache_bytes: 0,
    };
    let int8_front = Frontend::start(
        QuantizedModel::from_model(&model),
        int8_sched,
        ServeConfig::default(),
        int8_obs.clone(),
    )
    .expect("bind loopback listener");
    int8_front.shutdown();
    let int8_metrics = int8_obs.metrics().expect("metrics-enabled obs");
    let int8_weight_bytes = int8_metrics
        .gauge("infer.mem.weight_bytes")
        .expect("scheduler emits weight-footprint gauge at start");
    let int8_kv_bytes = int8_metrics
        .gauge("infer.mem.kv_bytes")
        .expect("scheduler emits KV-footprint gauge at start");
    eprintln!(
        "[serve] memory: f32 weights {:.0} B + kv {:.0} B | int8 weights {:.0} B + bf16 kv {:.0} B",
        weight_bytes, kv_bytes, int8_weight_bytes, int8_kv_bytes
    );
    assert!(
        int8_weight_bytes < weight_bytes && int8_kv_bytes < kv_bytes,
        "quantized serving must allocate strictly less than f32 serving"
    );

    // Overload: a single decode slot and a tiny queue at ~10x capacity.
    // Retries are disabled so every shed response is counted once.
    let sched = SchedConfig {
        max_active: 1,
        queue_cap: 4,
        prefill_chunk: 16,
        kv_capacity: PROMPT_LEN + OVERLOAD_NEW_TOKENS,
        prefix_cache_bytes: 0,
    };
    let serve = ServeConfig {
        shed_watermark: 2,
        default_deadline: Duration::from_secs(30),
        ..ServeConfig::default()
    };
    let front = Frontend::start(Arc::clone(&model), sched, serve, Obs::disabled())
        .expect("bind loopback listener");
    let mut over_cfg = loadcfg(
        front.local_addr().to_string(),
        spec.overload_requests,
        spec.overload_rate,
        0xBEE,
    );
    over_cfg.max_new_tokens = OVERLOAD_NEW_TOKENS;
    over_cfg.max_retries = 0;
    let overload = run_loadgen(&over_cfg).expect("overload loadgen run");
    let report = front.shutdown();
    assert_eq!(report.forced, 0, "overload run must drain cleanly");
    assert_eq!(
        overload.transport_errors, 0,
        "shedding must answer with 429, not dropped connections"
    );
    eprintln!(
        "[serve] overload ({} req @ {:.0}/s): ok {}  shed {}  shed rate {:.3}",
        overload.sent, spec.overload_rate, overload.ok, overload.shed, overload.shed_rate
    );

    // Multi-tenant prefix cache: the same shared-system-prompt traffic
    // (80% reuse of a 128-token tenant prefix, 3 LoRA adapters over the
    // shared base) served twice — cold with the cache disabled, then with
    // the radix-tree prefix cache on. The speedup is the headline number:
    // cached rows never re-prefill, so effective prefill throughput climbs
    // with the reuse rate.
    let registry = Arc::new(AdapterRegistry::resident(
        (0..PREFIX_ADAPTERS)
            .map(|i| (format!("tenant{i}"), lora_adapter(&cfg, 0xADA0 + i as u64)))
            .collect(),
    ));
    let (_, _, cold_eff) =
        run_prefix_scenario(&model, &registry, 0, spec.prefix_requests, spec.prefix_rate);
    let (warm, hit_rate, warm_eff) = run_prefix_scenario(
        &model,
        &registry,
        64 << 20,
        spec.prefix_requests,
        spec.prefix_rate,
    );
    let prefix_speedup = warm_eff / cold_eff.max(1.0);
    assert!(hit_rate > 0.0, "prefix-heavy traffic must hit the cache");
    assert!(
        prefix_speedup > 1.0,
        "cached prefill must beat cold prefill, got {prefix_speedup:.2}x"
    );
    eprintln!(
        "[serve] prefix ({} req @ {:.0}/s, reuse {:.0}%, {} adapters): cold {:8.0} tok/s  \
         cached {:8.0} tok/s  ({prefix_speedup:.2}x, hit rate {hit_rate:.3})",
        warm.sent,
        spec.prefix_rate,
        PREFIX_REUSE * 100.0,
        PREFIX_ADAPTERS,
        cold_eff,
        warm_eff,
    );

    let entry = |metric: &str, value: f64, unit: &str| InferEntry {
        metric: metric.to_string(),
        value,
        unit: unit.to_string(),
    };
    let mut report = ServeReport {
        model: cfg.name.to_string(),
        threads: current_threads(),
        mode,
        numerics: current_numerics().name().to_string(),
        simd_tier: simd_tier().name().to_string(),
        requests: spec.steady_requests,
        rate: spec.steady_rate,
        entries: vec![
            entry("steady_p50_ms", f64::from(steady.p50_ms), "ms"),
            entry("steady_p99_ms", f64::from(steady.p99_ms), "ms"),
            entry("steady_p999_ms", f64::from(steady.p999_ms), "ms"),
            entry("steady_goodput_rps", f64::from(steady.goodput_rps), "req/s"),
            entry("overload_shed_rate", f64::from(overload.shed_rate), "ratio"),
            entry("mem_weight_bytes", weight_bytes, "bytes"),
            entry("mem_kv_bytes", kv_bytes, "bytes"),
            entry("int8_mem_weight_bytes", int8_weight_bytes, "bytes"),
            entry("int8_mem_kv_bytes", int8_kv_bytes, "bytes"),
            entry("cold_prefill_tok_per_sec", cold_eff, "tok/s"),
            entry("prefix_hit_prefill_tok_per_sec", warm_eff, "tok/s"),
            entry("prefix_prefill_speedup", prefix_speedup, "x"),
            entry("cache_hit_rate", hit_rate, "ratio"),
            entry(
                "multi_adapter_goodput",
                f64::from(warm.goodput_rps),
                "req/s",
            ),
        ],
    };
    let path = std::path::Path::new(&out_dir).join("BENCH_serve.json");
    if merge {
        if let Some(prev) = std::fs::read_to_string(&path)
            .ok()
            .and_then(|d| serde_json::from_str::<ServeReport>(&d).ok())
        {
            report.merge_best(&prev);
        }
    }
    let data = serde_json::to_string_pretty(&report).expect("serialize bench report");
    std::fs::write(&path, data).expect("write bench json");
    eprintln!("[saved {}]", path.display());
}
