//! Minimal HTTP/1.1 over `std::net` — just enough wire protocol for the
//! serving front-end, with hard limits everywhere a client could stall or
//! bloat us.
//!
//! Scope (deliberately small, zero dependencies):
//!
//! - Requests: request line + headers + `Content-Length` body. Chunked
//!   *request* bodies are rejected (`501`-class [`HttpError::Malformed`]);
//!   only responses stream.
//! - Responses: fixed-length (`Content-Length`) or chunked
//!   (`Transfer-Encoding: chunked`) via [`ChunkedWriter`]; the client side
//!   ([`read_response`], [`ChunkedReader`]) decodes both.
//! - Timeouts: an **idle timeout** bounds the wait for the *first* byte of
//!   a request (keep-alive connections park here), and a separate
//!   **header deadline** bounds the time from first byte to a complete
//!   head — the slow-loris defense: trickling one byte per second resets
//!   an idle timer but cannot outrun an absolute deadline.
//! - Limits: maximum head bytes and maximum body bytes; exceeding either
//!   is [`HttpError::TooLarge`] and the connection is dropped.
//!
//! Parsing is split so the grammar is unit-testable without sockets:
//! [`parse_head`] is pure bytes-in, head-out; [`read_request`] owns only
//! the socket pacing.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Hard limits applied to every connection.
#[derive(Debug, Clone, Copy)]
pub struct HttpLimits {
    /// Maximum bytes of request line + headers.
    pub max_head_bytes: usize,
    /// Maximum bytes of request body.
    pub max_body_bytes: usize,
    /// Wait for the first byte of a request (keep-alive idle).
    pub idle_timeout: Duration,
    /// Absolute deadline from first byte to complete head + body.
    pub header_deadline: Duration,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_head_bytes: 8 * 1024,
            max_body_bytes: 256 * 1024,
            idle_timeout: Duration::from_secs(5),
            header_deadline: Duration::from_secs(2),
        }
    }
}

/// Everything that can go wrong reading or writing one HTTP exchange.
#[derive(Debug)]
pub enum HttpError {
    /// No request arrived within the idle timeout (benign on keep-alive).
    IdleTimeout,
    /// A request started but did not complete within the header deadline
    /// (slow-loris or a stalled peer).
    DeadlineExceeded,
    /// The peer closed mid-request.
    Truncated,
    /// The head or body exceeded its byte limit.
    TooLarge,
    /// The bytes do not parse as HTTP/1.1.
    Malformed(&'static str),
    /// Transport error.
    Io(io::Error),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::IdleTimeout => write!(f, "idle timeout"),
            HttpError::DeadlineExceeded => write!(f, "request deadline exceeded"),
            HttpError::Truncated => write!(f, "connection closed mid-request"),
            HttpError::TooLarge => write!(f, "request exceeds size limit"),
            HttpError::Malformed(why) => write!(f, "malformed request: {why}"),
            HttpError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// A parsed request head plus body.
#[derive(Debug, Clone)]
pub struct Request {
    pub method: String,
    pub path: String,
    /// Header names lowercased; values trimmed.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// First header value for `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange (HTTP/1.1 defaults to keep-alive).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// A parsed response, body fully read (chunked responses are reassembled).
#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Response {
    /// First header value for `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A parsed request head: `(method, path, headers)`, header names
/// lowercased.
pub type ParsedHead = (String, String, Vec<(String, String)>);

/// Parses `METHOD SP PATH SP HTTP/1.1\r\n(header\r\n)*\r\n` into
/// `(method, path, headers)`. Pure — no I/O — so the grammar and its
/// rejection cases are unit-testable.
///
/// # Errors
///
/// [`HttpError::Malformed`] naming the first rule violated.
pub fn parse_head(head: &[u8]) -> Result<ParsedHead, HttpError> {
    let text = std::str::from_utf8(head).map_err(|_| HttpError::Malformed("head is not utf-8"))?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().ok_or(HttpError::Malformed("empty head"))?;
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("");
    let path = parts.next().ok_or(HttpError::Malformed("missing path"))?;
    let version = parts
        .next()
        .ok_or(HttpError::Malformed("missing http version"))?;
    if parts.next().is_some() {
        return Err(HttpError::Malformed("extra tokens in request line"));
    }
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::Malformed("bad method"));
    }
    if !path.starts_with('/') {
        return Err(HttpError::Malformed("path must start with /"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Malformed("unsupported http version"));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break; // blank line terminating the head
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::Malformed("header without colon"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Malformed("bad header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok((method.to_string(), path.to_string(), headers))
}

/// Reads until `buf` contains `pattern` or `limit` bytes, pacing each read
/// against `deadline`. Returns the index just past the pattern.
fn read_until(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    pattern: &[u8],
    limit: usize,
    deadline: Instant,
) -> Result<usize, HttpError> {
    loop {
        if let Some(pos) = find(buf, pattern) {
            return Ok(pos + pattern.len());
        }
        if buf.len() >= limit {
            return Err(HttpError::TooLarge);
        }
        read_some(stream, buf, deadline)?;
    }
}

/// One bounded read appended to `buf`; errors on close or deadline.
fn read_some(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    deadline: Instant,
) -> Result<(), HttpError> {
    let remaining = deadline.saturating_duration_since(Instant::now());
    if remaining.is_zero() {
        return Err(HttpError::DeadlineExceeded);
    }
    stream.set_read_timeout(Some(remaining))?;
    let mut chunk = [0u8; 4096];
    match stream.read(&mut chunk) {
        Ok(0) => Err(HttpError::Truncated),
        Ok(n) => {
            buf.extend_from_slice(&chunk[..n]);
            Ok(())
        }
        Err(e) if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            Err(HttpError::DeadlineExceeded)
        }
        Err(e) => Err(HttpError::Io(e)),
    }
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// Reads one full request off the socket.
///
/// Waits up to `limits.idle_timeout` for the first byte; once bytes start
/// arriving, the whole head + body must complete within
/// `limits.header_deadline` (the slow-loris defense). Returns `None` when
/// the peer closed the connection cleanly before sending anything — the
/// normal end of a keep-alive session.
///
/// # Errors
///
/// See [`HttpError`]; notably [`HttpError::Malformed`] if the request has
/// a `Transfer-Encoding` (chunked request bodies are unsupported) or a
/// body without `Content-Length`.
pub fn read_request(
    stream: &mut TcpStream,
    limits: &HttpLimits,
) -> Result<Option<Request>, HttpError> {
    // Phase 1: wait for the first byte under the idle timeout.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let idle_deadline = Instant::now() + limits.idle_timeout;
    match read_some(stream, &mut buf, idle_deadline) {
        Ok(()) => {}
        Err(HttpError::Truncated) => return Ok(None), // clean keep-alive close
        Err(HttpError::DeadlineExceeded) => return Err(HttpError::IdleTimeout),
        Err(e) => return Err(e),
    }
    // Phase 2: absolute deadline from first byte to a complete request.
    let deadline = Instant::now() + limits.header_deadline;
    let head_end = read_until(
        stream,
        &mut buf,
        b"\r\n\r\n",
        limits.max_head_bytes,
        deadline,
    )?;
    let (method, path, headers) = parse_head(&buf[..head_end - 2])?; // keep final \r\n of last header
    let mut req = Request {
        method,
        path,
        headers,
        body: Vec::new(),
    };
    if req.header("transfer-encoding").is_some() {
        return Err(HttpError::Malformed("chunked request bodies unsupported"));
    }
    let content_length = match req.header("content-length") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed("bad content-length"))?,
        None => 0,
    };
    if content_length > limits.max_body_bytes {
        return Err(HttpError::TooLarge);
    }
    let mut body: Vec<u8> = buf[head_end..].to_vec();
    while body.len() < content_length {
        read_some(stream, &mut body, deadline)?;
    }
    if body.len() > content_length {
        // Pipelined bytes beyond the declared body: reject rather than
        // silently desync the connection.
        return Err(HttpError::Malformed("bytes beyond content-length"));
    }
    req.body = body;
    Ok(Some(req))
}

/// Canonical reason phrase for the status codes this server emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a fixed-length response (`Content-Length` computed from `body`).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Length: {}\r\nContent-Type: application/json\r\n",
        status,
        status_reason(status),
        body.len()
    );
    for (k, v) in extra_headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Streams a `Transfer-Encoding: chunked` response body. Call
/// [`ChunkedWriter::start`] once, [`ChunkedWriter::chunk`] per payload,
/// and [`ChunkedWriter::finish`] to terminate the stream.
pub struct ChunkedWriter<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> ChunkedWriter<'a> {
    /// Writes the response head and returns the body writer.
    ///
    /// # Errors
    ///
    /// Propagates socket write errors.
    pub fn start(
        stream: &'a mut TcpStream,
        status: u16,
        extra_headers: &[(&str, String)],
    ) -> io::Result<Self> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nTransfer-Encoding: chunked\r\nContent-Type: application/x-ndjson\r\n",
            status,
            status_reason(status)
        );
        for (k, v) in extra_headers {
            head.push_str(k);
            head.push_str(": ");
            head.push_str(v);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.flush()?;
        Ok(ChunkedWriter { stream })
    }

    /// Writes one non-empty chunk and flushes it (each chunk should reach
    /// the client promptly — this is a streaming API).
    ///
    /// # Errors
    ///
    /// Propagates socket write errors (a disconnected client surfaces
    /// here as `BrokenPipe`/`ConnectionReset`).
    pub fn chunk(&mut self, data: &[u8]) -> io::Result<()> {
        debug_assert!(!data.is_empty(), "empty chunk would terminate the stream");
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Writes the zero-length terminator.
    ///
    /// # Errors
    ///
    /// Propagates socket write errors.
    pub fn finish(self) -> io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

/// Writes one client request with an optional body.
pub fn write_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> io::Result<()> {
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nHost: apollo\r\nContent-Length: {}\r\n",
        body.len()
    );
    for (k, v) in extra_headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Client-side response head: status + headers, body not yet read.
pub struct ResponseHead {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    /// Bytes read past the head (start of the body).
    pub leftover: Vec<u8>,
}

impl ResponseHead {
    /// First header value for `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads a response status line + headers within `deadline_in`.
///
/// # Errors
///
/// See [`HttpError`].
pub fn read_response_head(
    stream: &mut TcpStream,
    deadline_in: Duration,
) -> Result<ResponseHead, HttpError> {
    let deadline = Instant::now() + deadline_in;
    let mut buf = Vec::with_capacity(1024);
    let head_end = read_until(stream, &mut buf, b"\r\n\r\n", 64 * 1024, deadline)?;
    let text = std::str::from_utf8(&buf[..head_end - 4])
        .map_err(|_| HttpError::Malformed("head is not utf-8"))?;
    let mut lines = text.split("\r\n");
    let status_line = lines.next().ok_or(HttpError::Malformed("empty head"))?;
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("bad status line"));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or(HttpError::Malformed("bad status code"))?;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::Malformed("header without colon"))?;
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(ResponseHead {
        status,
        headers,
        leftover: buf[head_end..].to_vec(),
    })
}

/// Incremental decoder for a chunked response body — lets a client observe
/// individual streamed chunks (and disconnect between them, for fault
/// injection).
pub struct ChunkedReader<'a> {
    stream: &'a mut TcpStream,
    buf: Vec<u8>,
    deadline: Instant,
    done: bool,
}

impl<'a> ChunkedReader<'a> {
    /// Starts decoding after [`read_response_head`]; `leftover` is the
    /// head's overrun bytes.
    pub fn new(stream: &'a mut TcpStream, leftover: Vec<u8>, deadline_in: Duration) -> Self {
        ChunkedReader {
            stream,
            buf: leftover,
            deadline: Instant::now() + deadline_in,
            done: false,
        }
    }

    /// Returns the next chunk payload, or `None` after the terminator.
    ///
    /// # Errors
    ///
    /// See [`HttpError`].
    pub fn next_chunk(&mut self) -> Result<Option<Vec<u8>>, HttpError> {
        if self.done {
            return Ok(None);
        }
        // Read the size line.
        let line_end = loop {
            if let Some(pos) = find(&self.buf, b"\r\n") {
                break pos;
            }
            read_some(self.stream, &mut self.buf, self.deadline)?;
        };
        let size_text = std::str::from_utf8(&self.buf[..line_end])
            .map_err(|_| HttpError::Malformed("chunk size not utf-8"))?;
        let size = usize::from_str_radix(size_text.trim(), 16)
            .map_err(|_| HttpError::Malformed("bad chunk size"))?;
        self.buf.drain(..line_end + 2);
        if size == 0 {
            self.done = true;
            return Ok(None);
        }
        while self.buf.len() < size + 2 {
            read_some(self.stream, &mut self.buf, self.deadline)?;
        }
        let payload = self.buf[..size].to_vec();
        self.buf.drain(..size + 2); // payload + trailing \r\n
        Ok(Some(payload))
    }
}

/// Reads and fully assembles one response (fixed-length or chunked).
///
/// # Errors
///
/// See [`HttpError`].
pub fn read_response(stream: &mut TcpStream, deadline_in: Duration) -> Result<Response, HttpError> {
    let start = Instant::now();
    let head = read_response_head(stream, deadline_in)?;
    let remaining = deadline_in.saturating_sub(start.elapsed());
    let mut body;
    if head
        .header("transfer-encoding")
        .is_some_and(|v| v.eq_ignore_ascii_case("chunked"))
    {
        body = Vec::new();
        let status = head.status;
        let headers = head.headers.clone();
        let mut reader = ChunkedReader::new(stream, head.leftover, remaining);
        while let Some(chunk) = reader.next_chunk()? {
            body.extend_from_slice(&chunk);
        }
        return Ok(Response {
            status,
            headers,
            body,
        });
    }
    let content_length = match head.header("content-length") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed("bad content-length"))?,
        None => 0,
    };
    body = head.leftover.clone();
    let deadline = Instant::now() + remaining;
    while body.len() < content_length {
        read_some(stream, &mut body, deadline)?;
    }
    body.truncate(content_length);
    Ok(Response {
        status: head.status,
        headers: head.headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_head_accepts_a_minimal_request() {
        let (method, path, headers) =
            parse_head(b"GET /healthz HTTP/1.1\r\nHost: x\r\n").expect("parses");
        assert_eq!(method, "GET");
        assert_eq!(path, "/healthz");
        assert_eq!(headers, vec![("host".to_string(), "x".to_string())]);
    }

    #[test]
    fn parse_head_lowercases_header_names_and_trims_values() {
        let (_, _, headers) =
            parse_head(b"POST /generate HTTP/1.1\r\nContent-Length:  42 \r\n").expect("parses");
        assert_eq!(
            headers,
            vec![("content-length".to_string(), "42".to_string())]
        );
    }

    #[test]
    fn parse_head_rejects_each_grammar_violation() {
        let cases: &[&[u8]] = &[
            b"",                                 // empty
            b"GET /x",                           // no version
            b"get /x HTTP/1.1",                  // lowercase method
            b"GET x HTTP/1.1",                   // path missing leading slash
            b"GET /x HTTP/2.0",                  // unsupported version
            b"GET /x HTTP/1.1 extra",            // extra token
            b"GET /x HTTP/1.1\r\nno-colon-here", // header without colon
            b"GET /x HTTP/1.1\r\nbad name: v",   // space in header name
            b"\xff\xfe /x HTTP/1.1",             // not utf-8
        ];
        for case in cases {
            assert!(
                matches!(parse_head(case), Err(HttpError::Malformed(_))),
                "should reject {:?}",
                String::from_utf8_lossy(case)
            );
        }
    }

    #[test]
    fn request_helpers_read_headers_and_close_intent() {
        let req = Request {
            method: "GET".to_string(),
            path: "/".to_string(),
            headers: vec![("connection".to_string(), "Close".to_string())],
            body: Vec::new(),
        };
        assert!(req.wants_close());
        assert_eq!(req.header("connection"), Some("Close"));
        assert_eq!(req.header("missing"), None);
    }

    #[test]
    fn status_reasons_cover_the_emitted_codes() {
        for code in [200u16, 400, 404, 405, 408, 413, 429, 503] {
            assert_ne!(status_reason(code), "Unknown", "missing reason for {code}");
        }
    }
}
