//! Threaded serving loop around the deterministic [`Scheduler`].
//!
//! A [`Server`] owns one worker thread that drains an admission channel
//! into the scheduler, ticks it while work is in flight, and routes each
//! retired [`GenResult`] back to the submitting caller through a
//! per-request channel. Callers hold a [`GenHandle`] and block on
//! [`GenHandle::wait`] whenever they want the result.
//!
//! Admission is bounded twice: the crossbeam-free `mpsc::sync_channel`
//! bounds in-transit submissions, and the scheduler's own `queue_cap`
//! bounds accepted-but-not-admitted requests. [`Server::submit`] never
//! blocks — a full channel is reported as [`SubmitError::QueueFull`].

use std::collections::HashMap;
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use apollo_nn::LlamaModel;
use apollo_obs::Obs;

use crate::scheduler::{GenRequest, GenResult, SchedConfig, Scheduler, SubmitError};

/// One submission in transit to the worker.
struct Envelope {
    req: GenRequest,
    reply: mpsc::Sender<GenResult>,
}

/// Receives the result of one submitted request.
pub struct GenHandle {
    rx: Receiver<GenResult>,
}

impl GenHandle {
    /// Blocks until the request retires. Returns `None` only if the server
    /// was dropped before the request could finish.
    pub fn wait(self) -> Option<GenResult> {
        self.rx.recv().ok()
    }
}

/// A running generation server. Dropping it finishes all accepted requests
/// and joins the worker thread.
pub struct Server {
    tx: Option<SyncSender<Envelope>>,
    worker: Option<JoinHandle<()>>,
}

impl Server {
    /// Spawns the worker thread around a fresh [`Scheduler`].
    pub fn start(model: Arc<LlamaModel>, cfg: SchedConfig, obs: Obs) -> Self {
        let (tx, rx) = mpsc::sync_channel::<Envelope>(cfg.queue_cap.max(1));
        let worker = std::thread::Builder::new()
            .name("apollo-infer-server".to_string())
            .spawn(move || serve(Scheduler::new(model, cfg, obs), rx))
            .expect("spawn inference server thread");
        Server {
            tx: Some(tx),
            worker: Some(worker),
        }
    }

    /// Submits a request without blocking.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] when the admission channel is at
    /// capacity (graceful rejection: the caller may retry later).
    pub fn submit(&self, req: GenRequest) -> Result<GenHandle, SubmitError> {
        let (reply, rx) = mpsc::channel();
        let env = Envelope { req, reply };
        match self.tx.as_ref().expect("server running").try_send(env) {
            Ok(()) => Ok(GenHandle { rx }),
            Err(mpsc::TrySendError::Full(_)) | Err(mpsc::TrySendError::Disconnected(_)) => {
                Err(SubmitError::QueueFull)
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Closing the channel tells the worker to finish in-flight work
        // and exit; join so results are flushed before we return.
        self.tx.take();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// Worker loop: drain submissions, tick while busy, park while idle.
fn serve(mut sched: Scheduler, rx: Receiver<Envelope>) {
    let mut replies: HashMap<u64, mpsc::Sender<GenResult>> = HashMap::new();
    let mut open = true;
    while open || !sched.is_idle() {
        // Admit as many in-transit submissions as the scheduler queue takes.
        // Block only when there is nothing to tick; otherwise just drain.
        loop {
            let env = if open && sched.is_idle() {
                match rx.recv_timeout(Duration::from_millis(50)) {
                    Ok(env) => env,
                    Err(RecvTimeoutError::Timeout) => break,
                    Err(RecvTimeoutError::Disconnected) => {
                        open = false;
                        break;
                    }
                }
            } else {
                match rx.try_recv() {
                    Ok(env) => env,
                    Err(mpsc::TryRecvError::Empty) => break,
                    Err(mpsc::TryRecvError::Disconnected) => {
                        open = false;
                        break;
                    }
                }
            };
            match sched.submit(env.req) {
                Ok(id) => {
                    replies.insert(id, env.reply);
                }
                Err(_) => {
                    // Scheduler-side rejection (over-long/empty prompt, or a
                    // queue burst beyond queue_cap): drop the reply sender so
                    // the handle's `wait()` returns `None`.
                    drop(env.reply);
                    break;
                }
            }
        }
        if sched.is_idle() {
            continue;
        }
        sched.tick();
        for result in sched.take_finished() {
            if let Some(reply) = replies.remove(&result.id) {
                let _ = reply.send(result);
            }
        }
    }
}
