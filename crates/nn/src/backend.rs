//! Decode backend selection: exact f32 vs INT8+BF16 fast path.
//!
//! [`DecodeBackend`] lets the serving stack (`apollo-infer`) run either the
//! bit-exact [`LlamaModel::forward_cached`] path or the quantized
//! [`QuantizedModel`] path through one interface. Caches come as
//! [`DecodeCaches`] — a homogeneous pool matching the backend's tier, so a
//! scheduler never mixes f32 and BF16 caches.
//!
//! The enum is deliberately *not* a trait object: both variants are known,
//! the dispatch is one match in a hot loop, and keeping the concrete types
//! visible preserves the exact path's bit-equivalence contract (nothing is
//! erased behind a vtable that tests can't name).

use std::sync::Arc;

use apollo_tensor::Matrix;

use crate::adapter::LoraAdapter;
use crate::config::ModelConfig;
use crate::decode::{KvCache, KvSpan};
use crate::model::LlamaModel;
use crate::quantized::{Bf16KvCache, Bf16Span, QuantizedModel};

/// A decode-capable model: the exact f32 model or an INT8 snapshot.
#[derive(Debug, Clone)]
pub enum DecodeBackend {
    /// Bit-exact f32 decode against f32 KV caches.
    Exact(Arc<LlamaModel>),
    /// Fast-tier INT8-weight decode against BF16 KV caches.
    Int8(Arc<QuantizedModel>),
}

impl From<Arc<LlamaModel>> for DecodeBackend {
    fn from(m: Arc<LlamaModel>) -> Self {
        DecodeBackend::Exact(m)
    }
}

impl From<LlamaModel> for DecodeBackend {
    fn from(m: LlamaModel) -> Self {
        DecodeBackend::Exact(Arc::new(m))
    }
}

impl From<Arc<QuantizedModel>> for DecodeBackend {
    fn from(m: Arc<QuantizedModel>) -> Self {
        DecodeBackend::Int8(m)
    }
}

impl From<QuantizedModel> for DecodeBackend {
    fn from(m: QuantizedModel) -> Self {
        DecodeBackend::Int8(Arc::new(m))
    }
}

/// One KV cache per scheduler slot, all of the backend's tier.
#[derive(Debug, Clone)]
pub enum DecodeCaches {
    /// f32 caches for [`DecodeBackend::Exact`].
    F32(Vec<KvCache>),
    /// BF16 caches for [`DecodeBackend::Int8`].
    Bf16(Vec<Bf16KvCache>),
}

impl DecodeCaches {
    /// Number of cache slots.
    pub fn num_slots(&self) -> usize {
        match self {
            DecodeCaches::F32(c) => c.len(),
            DecodeCaches::Bf16(c) => c.len(),
        }
    }

    /// Positions filled in slot `i`.
    pub fn slot_len(&self, i: usize) -> usize {
        match self {
            DecodeCaches::F32(c) => c[i].len(),
            DecodeCaches::Bf16(c) => c[i].len(),
        }
    }

    /// Positions still available in slot `i`.
    pub fn remaining(&self, i: usize) -> usize {
        match self {
            DecodeCaches::F32(c) => c[i].remaining(),
            DecodeCaches::Bf16(c) => c[i].remaining(),
        }
    }

    /// Resets slot `i` for a new sequence.
    pub fn clear(&mut self, i: usize) {
        match self {
            DecodeCaches::F32(c) => c[i].clear(),
            DecodeCaches::Bf16(c) => c[i].clear(),
        }
    }

    /// Total bytes of K/V storage across all slots and layers — the
    /// `infer.mem.kv_bytes` gauge.
    pub fn memory_bytes(&self) -> usize {
        match self {
            DecodeCaches::F32(c) => c.iter().map(KvCache::memory_bytes).sum(),
            DecodeCaches::Bf16(c) => c.iter().map(Bf16KvCache::memory_bytes).sum(),
        }
    }

    /// Bytes of K/V storage actually filled (positions `0..len` of every
    /// slot) — the live-usage number `GET /stats` reports, as opposed to
    /// [`DecodeCaches::memory_bytes`]'s allocated capacity.
    pub fn used_bytes(&self) -> usize {
        let per_pos = |total: usize, slots: usize, cap: usize| {
            if slots == 0 || cap == 0 {
                0
            } else {
                total / (slots * cap)
            }
        };
        match self {
            DecodeCaches::F32(c) => {
                let cap = c.first().map_or(0, KvCache::capacity);
                let unit = per_pos(self.memory_bytes(), c.len(), cap);
                c.iter().map(|s| s.len() * unit).sum()
            }
            DecodeCaches::Bf16(c) => {
                let cap = c.first().map_or(0, Bf16KvCache::capacity);
                let unit = per_pos(self.memory_bytes(), c.len(), cap);
                c.iter().map(|s| s.len() * unit).sum()
            }
        }
    }

    /// Copies positions `lo..hi` of slot `i` into an owned [`KvBlock`] of
    /// the pool's tier.
    pub fn export_rows(&self, i: usize, lo: usize, hi: usize) -> KvBlock {
        match self {
            DecodeCaches::F32(c) => KvBlock::F32(c[i].export_rows(lo, hi)),
            DecodeCaches::Bf16(c) => KvBlock::Bf16(c[i].export_rows(lo, hi)),
        }
    }

    /// Appends a block's rows at slot `i`'s current length (bitwise copy).
    ///
    /// # Panics
    ///
    /// Panics if the block's tier does not match the pool's.
    pub fn append_block(&mut self, i: usize, block: &KvBlock) {
        match (self, block) {
            (DecodeCaches::F32(c), KvBlock::F32(s)) => c[i].append_span(s),
            (DecodeCaches::Bf16(c), KvBlock::Bf16(s)) => c[i].append_span(s),
            _ => panic!("append_block: block tier does not match caches"),
        }
    }
}

/// An owned KV span at either tier — what the prefix cache stores. Blocks
/// hold their own copies, so cache eviction never touches rows already
/// appended into a slot.
#[derive(Debug, Clone)]
pub enum KvBlock {
    /// Exact-tier span.
    F32(KvSpan),
    /// BF16-tier span.
    Bf16(Bf16Span),
}

impl KvBlock {
    /// Token positions covered.
    pub fn rows(&self) -> usize {
        match self {
            KvBlock::F32(s) => s.rows(),
            KvBlock::Bf16(s) => s.rows(),
        }
    }

    /// Bytes of storage across all layers.
    pub fn memory_bytes(&self) -> usize {
        match self {
            KvBlock::F32(s) => s.memory_bytes(),
            KvBlock::Bf16(s) => s.memory_bytes(),
        }
    }

    /// An owned copy of rows `lo..hi`.
    pub fn slice(&self, lo: usize, hi: usize) -> KvBlock {
        match self {
            KvBlock::F32(s) => KvBlock::F32(s.slice(lo, hi)),
            KvBlock::Bf16(s) => KvBlock::Bf16(s.slice(lo, hi)),
        }
    }
}

impl DecodeBackend {
    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        match self {
            DecodeBackend::Exact(m) => m.config(),
            DecodeBackend::Int8(m) => m.config(),
        }
    }

    /// Short tier name for traces and bench reports.
    pub fn mode_name(&self) -> &'static str {
        match self {
            DecodeBackend::Exact(_) => "exact-f32",
            DecodeBackend::Int8(_) => "int8-bf16",
        }
    }

    /// Bytes of weight storage — the `infer.mem.weight_bytes` gauge.
    /// f32 counts every parameter at 4 bytes; INT8 counts quantized data +
    /// scales plus the f32 embedding and norms.
    pub fn weight_bytes(&self) -> usize {
        match self {
            DecodeBackend::Exact(m) => m.params.iter().map(|p| p.value.len() * 4).sum(),
            DecodeBackend::Int8(m) => m.weight_bytes(),
        }
    }

    /// Allocates `slots` caches of `capacity` positions each, at the
    /// backend's tier.
    pub fn new_caches(&self, slots: usize, capacity: usize) -> DecodeCaches {
        match self {
            DecodeBackend::Exact(m) => {
                DecodeCaches::F32((0..slots).map(|_| m.new_kv_cache(capacity)).collect())
            }
            DecodeBackend::Int8(m) => {
                DecodeCaches::Bf16((0..slots).map(|_| m.new_kv_cache(capacity)).collect())
            }
        }
    }

    /// Runs the trunk over a batch of rows (see
    /// [`LlamaModel::forward_cached`] for the row/position semantics,
    /// which both tiers share).
    ///
    /// # Panics
    ///
    /// Panics if `caches` is not the tier this backend allocates.
    pub fn forward_cached(&self, caches: &mut DecodeCaches, rows: &[(usize, u32)]) -> Matrix {
        match (self, caches) {
            (DecodeBackend::Exact(m), DecodeCaches::F32(c)) => m.forward_cached(c, rows),
            (DecodeBackend::Int8(m), DecodeCaches::Bf16(c)) => m.forward_cached(c, rows),
            _ => panic!("forward_cached: cache tier does not match backend"),
        }
    }

    /// [`DecodeBackend::forward_cached`] with optional per-row LoRA
    /// adapters (see [`LlamaModel::forward_cached_with`]).
    ///
    /// # Panics
    ///
    /// Panics on tier mismatch, or if any adapter is supplied on the INT8
    /// tier — quantized weights fold the whole projection into one INT8
    /// matrix, so there is no base/delta split to route adapters through.
    pub fn forward_cached_with(
        &self,
        caches: &mut DecodeCaches,
        rows: &[(usize, u32)],
        adapters: &[Option<&LoraAdapter>],
    ) -> Matrix {
        match (self, caches) {
            (DecodeBackend::Exact(m), DecodeCaches::F32(c)) => {
                m.forward_cached_with(c, rows, adapters)
            }
            (DecodeBackend::Int8(m), DecodeCaches::Bf16(c)) => {
                assert!(
                    adapters.iter().all(Option::is_none),
                    "forward_cached_with: adapters require the exact backend"
                );
                m.forward_cached(c, rows)
            }
            _ => panic!("forward_cached: cache tier does not match backend"),
        }
    }

    /// Decodes final-norm hidden rows through the LM head.
    pub fn lm_logits(&self, hidden: &Matrix) -> Matrix {
        match self {
            DecodeBackend::Exact(m) => m.lm_logits(hidden),
            DecodeBackend::Int8(m) => m.lm_logits(hidden),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinearMode;
    use apollo_tensor::Rng;

    fn tiny_backends() -> (DecodeBackend, DecodeBackend) {
        let cfg = ModelConfig::test_tiny();
        let mut rng = Rng::seed_from_u64(80);
        let model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
        let qm = QuantizedModel::from_model(&model);
        (DecodeBackend::from(model), DecodeBackend::from(qm))
    }

    #[test]
    fn both_tiers_decode_through_one_interface() {
        let (exact, int8) = tiny_backends();
        for b in [&exact, &int8] {
            let mut caches = b.new_caches(2, 8);
            assert_eq!(caches.num_slots(), 2);
            let h = b.forward_cached(&mut caches, &[(0, 1), (1, 2), (0, 3)]);
            let logits = b.lm_logits(&h);
            assert_eq!(logits.rows(), 3);
            assert_eq!(logits.cols(), b.config().vocab_size);
            assert_eq!(caches.slot_len(0), 2);
            assert_eq!(caches.slot_len(1), 1);
            assert_eq!(caches.remaining(0), 6);
            assert!(caches.memory_bytes() > 0);
            caches.clear(0);
            assert_eq!(caches.slot_len(0), 0);
        }
    }

    #[test]
    fn int8_backend_reports_smaller_footprint() {
        let (exact, int8) = tiny_backends();
        assert!(int8.weight_bytes() < exact.weight_bytes());
        let ec = exact.new_caches(1, 16);
        let qc = int8.new_caches(1, 16);
        assert_eq!(qc.memory_bytes() * 2, ec.memory_bytes());
        assert_eq!(exact.mode_name(), "exact-f32");
        assert_eq!(int8.mode_name(), "int8-bf16");
    }

    #[test]
    #[should_panic(expected = "cache tier does not match")]
    fn tier_mismatch_panics() {
        let (exact, int8) = tiny_backends();
        let mut wrong = int8.new_caches(1, 4);
        exact.forward_cached(&mut wrong, &[(0, 1)]);
    }
}
