//! Serial generation: one request, one KV cache, token-at-a-time decode.
//!
//! This is both the simplest way to sample from a checkpoint (the CLI
//! `generate` subcommand) and the byte-identity reference the
//! continuous-batching scheduler is tested against.

use apollo_nn::{DecodeBackend, LlamaModel};
use apollo_tensor::{Matrix, Rng};

use crate::sample::{sample, GenConfig};

/// Generates up to `cfg.max_new_tokens` tokens after `prompt`, invoking
/// `on_token` as each token is decided (for streaming output). Returns all
/// generated tokens, including a trailing stop token if one fired.
///
/// Deterministic: the per-request [`Rng`] is seeded from `cfg.seed`, and
/// the KV-cached forward is bit-identical across thread counts, so equal
/// `(model, prompt, cfg)` always yields equal tokens.
///
/// # Panics
///
/// Panics if the prompt is empty or a token is out of vocabulary.
pub fn generate(
    model: &LlamaModel,
    prompt: &[u32],
    cfg: &GenConfig,
    mut on_token: impl FnMut(u32),
) -> Vec<u32> {
    assert!(!prompt.is_empty(), "generate: empty prompt");
    let mut caches = vec![model.new_kv_cache(prompt.len() + cfg.max_new_tokens)];
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut out = Vec::with_capacity(cfg.max_new_tokens);

    // Prefill the whole prompt in one call; only the last row's logits are
    // needed (chunking would give bit-identical logits either way).
    let rows: Vec<(usize, u32)> = prompt.iter().map(|&t| (0, t)).collect();
    let hidden = model.forward_cached(&mut caches, &rows);
    let mut last = last_row_logits(model, &hidden);

    while out.len() < cfg.max_new_tokens {
        let tok = sample(&last, cfg, &mut rng);
        out.push(tok);
        on_token(tok);
        if cfg.stop_token == Some(tok) || out.len() == cfg.max_new_tokens {
            break;
        }
        let hidden = model.forward_cached(&mut caches, &[(0, tok)]);
        last = last_row_logits(model, &hidden);
    }
    out
}

/// Serial generation against any [`DecodeBackend`] — the exact f32 model
/// or an INT8+BF16 snapshot. Semantics match [`generate`] (same sampling,
/// same stopping rules); with [`DecodeBackend::Exact`] the produced tokens
/// are byte-identical to [`generate`] on the wrapped model.
///
/// # Panics
///
/// Panics if the prompt is empty or a token is out of vocabulary.
pub fn generate_backend(
    backend: &DecodeBackend,
    prompt: &[u32],
    cfg: &GenConfig,
    mut on_token: impl FnMut(u32),
) -> Vec<u32> {
    assert!(!prompt.is_empty(), "generate_backend: empty prompt");
    let mut caches = backend.new_caches(1, prompt.len() + cfg.max_new_tokens);
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut out = Vec::with_capacity(cfg.max_new_tokens);

    let rows: Vec<(usize, u32)> = prompt.iter().map(|&t| (0, t)).collect();
    let hidden = backend.forward_cached(&mut caches, &rows);
    let mut last = last_row_logits_backend(backend, &hidden);

    while out.len() < cfg.max_new_tokens {
        let tok = sample(&last, cfg, &mut rng);
        out.push(tok);
        on_token(tok);
        if cfg.stop_token == Some(tok) || out.len() == cfg.max_new_tokens {
            break;
        }
        let hidden = backend.forward_cached(&mut caches, &[(0, tok)]);
        last = last_row_logits_backend(backend, &hidden);
    }
    out
}

/// LM-head logits of the last hidden row only.
fn last_row_logits(model: &LlamaModel, hidden: &Matrix) -> Vec<f32> {
    let mut row = Matrix::zeros(1, hidden.cols());
    row.row_mut(0)
        .copy_from_slice(hidden.row(hidden.rows() - 1));
    model.lm_logits(&row).as_slice().to_vec()
}

/// LM-head logits of the last hidden row only, via the backend interface.
fn last_row_logits_backend(backend: &DecodeBackend, hidden: &Matrix) -> Vec<f32> {
    let mut row = Matrix::zeros(1, hidden.cols());
    row.row_mut(0)
        .copy_from_slice(hidden.row(hidden.rows() - 1));
    backend.lm_logits(&row).as_slice().to_vec()
}
