//! Deterministic pseudo-random number generation.
//!
//! APOLLO's headline memory trick is that the projection matrix `P` is never
//! stored: only a 64-bit seed is kept, and `P` is regenerated on demand from
//! that seed (Algorithm 1, "Step 1"). That requires a fully deterministic,
//! cheap, seedable generator — so we implement xoshiro256++ with a splitmix64
//! seeder rather than relying on an external crate whose stream might change
//! between versions.

/// A seedable xoshiro256++ pseudo-random number generator.
///
/// Streams are stable across platforms and releases of this crate: the same
/// seed always regenerates the same projection matrix, which the APOLLO
/// optimizer relies on for correctness of its seed-only state.
#[derive(Debug, Clone, PartialEq)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second output of the Box-Muller transform.
    spare_gauss: Option<f32>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The full 256-bit state is expanded with splitmix64, which guarantees a
    /// non-zero state for every seed (including zero).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng {
            s,
            spare_gauss: None,
        }
    }

    /// Returns the next 64 uniformly random bits (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f32` in `[0, 1)` with 24 bits of randomness.
    pub fn uniform(&mut self) -> f32 {
        ((self.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }

    /// Returns a uniform `f32` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_in(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo <= hi, "uniform_in: empty range [{lo}, {hi})");
        lo + (hi - lo) * self.uniform()
    }

    /// Returns a uniform integer in `[0, n)` via rejection-free Lemire
    /// reduction (bias is negligible for the ranges used here).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below: n must be positive");
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Returns a standard-normal sample via the Box-Muller transform.
    pub fn gauss(&mut self) -> f32 {
        if let Some(z) = self.spare_gauss.take() {
            return z;
        }
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = self.uniform().max(1e-12);
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = core::f32::consts::TAU * u2;
        self.spare_gauss = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Returns a normal sample with the given mean and standard deviation.
    pub fn gauss_with(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.gauss()
    }

    /// Derives an independent child generator; used to give each weight
    /// matrix / data shard its own reproducible stream.
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }

    /// Captures the full generator state for checkpointing: the 256-bit
    /// xoshiro state plus the cached Box-Muller spare (bit-preserved).
    pub fn state(&self) -> ([u64; 4], Option<u32>) {
        (self.s, self.spare_gauss.map(f32::to_bits))
    }

    /// Rebuilds a generator from a [`Rng::state`] capture, continuing the
    /// stream bit-exactly where it left off.
    pub fn from_state(s: [u64; 4], spare_gauss_bits: Option<u32>) -> Self {
        Rng {
            s,
            spare_gauss: spare_gauss_bits.map(f32::from_bits),
        }
    }

    /// Fisher-Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gauss_moments_are_standard_normal() {
        let mut rng = Rng::seed_from_u64(4);
        let n = 100_000;
        let (mut sum, mut sumsq) = (0.0f64, 0.0f64);
        for _ in 0..n {
            let z = rng.gauss() as f64;
            sum += z;
            sumsq += z * z;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Rng::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let k = rng.below(10);
            assert!(k < 10);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(6);
        let mut xs: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = Rng::seed_from_u64(9);
        let mut a = root.fork();
        let mut b = root.fork();
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn state_roundtrip_is_bit_exact() {
        let mut rng = Rng::seed_from_u64(11);
        // Park an odd number of gauss draws so the Box-Muller spare is live.
        rng.gauss();
        let (s, spare) = rng.state();
        assert!(spare.is_some(), "spare should be cached after one draw");
        let mut restored = Rng::from_state(s, spare);
        for _ in 0..64 {
            assert_eq!(rng.gauss().to_bits(), restored.gauss().to_bits());
            assert_eq!(rng.next_u64(), restored.next_u64());
        }
    }

    #[test]
    fn zero_seed_is_valid() {
        let mut rng = Rng::seed_from_u64(0);
        // State must not be all-zero (xoshiro would then be stuck at 0).
        let outputs: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert!(outputs.iter().any(|&x| x != 0));
    }
}
