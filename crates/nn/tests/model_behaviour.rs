//! Behavioural tests of the LLaMA proxy model beyond unit scope:
//! permutation/shift properties, batching consistency, and mode parity.

use apollo_nn::{LinearMode, LlamaModel, ModelConfig};
use apollo_tensor::Rng;

fn model(seed: u64, mode: LinearMode) -> (ModelConfig, LlamaModel) {
    let cfg = ModelConfig::test_tiny();
    let mut rng = Rng::seed_from_u64(seed);
    let m = LlamaModel::new(&cfg, mode, &mut rng);
    (cfg, m)
}

#[test]
fn batch_elements_are_independent() {
    // Loss of a 2-batch equals the mean of the two 1-batch losses.
    let (cfg, m) = model(1, LinearMode::Dense);
    let mut rng = Rng::seed_from_u64(2);
    let seq = cfg.max_seq;
    let a: Vec<u32> = (0..seq).map(|_| rng.below(cfg.vocab_size) as u32).collect();
    let b: Vec<u32> = (0..seq).map(|_| rng.below(cfg.vocab_size) as u32).collect();
    let ta: Vec<u32> = a.iter().map(|&t| (t + 1) % cfg.vocab_size as u32).collect();
    let tb: Vec<u32> = b.iter().map(|&t| (t + 2) % cfg.vocab_size as u32).collect();

    let la = m.eval_loss(&a, &ta, 1);
    let lb = m.eval_loss(&b, &tb, 1);
    let mut both = a.clone();
    both.extend_from_slice(&b);
    let mut tboth = ta.clone();
    tboth.extend_from_slice(&tb);
    let lab = m.eval_loss(&both, &tboth, 2);
    assert!(
        (lab - (la + lb) / 2.0).abs() < 1e-4,
        "batch mean: {lab} vs {}",
        (la + lb) / 2.0
    );
}

#[test]
fn position_matters_thanks_to_rope() {
    // A sequence and its rotation give different losses: the model is not
    // bag-of-words.
    let (cfg, m) = model(3, LinearMode::Dense);
    let seq = cfg.max_seq;
    let a: Vec<u32> = (0..seq as u32).map(|i| i % 7).collect();
    let mut rotated = a.clone();
    rotated.rotate_left(3);
    let t: Vec<u32> = a.iter().map(|&x| (x + 1) % 7).collect();
    let la = m.eval_loss(&a, &t, 1);
    let lr = m.eval_loss(&rotated, &t, 1);
    assert!(
        (la - lr).abs() > 1e-6,
        "rotation had no effect: {la} vs {lr}"
    );
}

#[test]
fn classification_prediction_is_argmax_consistent() {
    // classify() must agree with the minimal-loss label.
    let (cfg, mut m) = model(4, LinearMode::Dense);
    let mut rng = Rng::seed_from_u64(5);
    let tokens: Vec<u32> = (0..cfg.max_seq)
        .map(|_| rng.below(cfg.vocab_size) as u32)
        .collect();
    let pred = m.classify(&tokens, 1)[0];
    // Evaluate the class loss for a few labels: the predicted one can't be
    // beaten.
    let (pred_loss, _) = m.class_loss_and_grads(&tokens, &[pred], 1);
    for label in [0u32, 1, 2, 3] {
        let (l, _) = m.class_loss_and_grads(&tokens, &[label], 1);
        assert!(
            pred_loss <= l + 1e-5,
            "label {label} beats argmax: {l} < {pred_loss}"
        );
    }
}

#[test]
fn all_linear_modes_produce_finite_losses_and_grads() {
    for mode in [
        LinearMode::Dense,
        LinearMode::LoRa {
            rank: 2,
            alpha: 4.0,
        },
        LinearMode::Factored { rank: 2 },
    ] {
        let (cfg, mut m) = model(6, mode);
        let mut rng = Rng::seed_from_u64(7);
        let tokens: Vec<u32> = (0..2 * cfg.max_seq)
            .map(|_| rng.below(cfg.vocab_size) as u32)
            .collect();
        let targets: Vec<u32> = tokens
            .iter()
            .map(|&t| (t + 1) % cfg.vocab_size as u32)
            .collect();
        let (loss, grads) = m.loss_and_grads(&tokens, &targets, 2);
        assert!(loss.is_finite(), "{mode:?}");
        for (p, g) in m.params.iter().zip(&grads) {
            if let Some(g) = g {
                assert!(g.all_finite(), "{mode:?} {}", p.name);
            }
        }
    }
}

#[test]
fn factored_model_has_fewer_parameters_than_dense() {
    let (_, dense) = model(8, LinearMode::Dense);
    let (_, factored) = model(8, LinearMode::Factored { rank: 2 });
    assert!(factored.num_trainable() < dense.num_trainable());
}

#[test]
fn merge_adapters_is_noop_for_dense_and_factored() {
    for mode in [LinearMode::Dense, LinearMode::Factored { rank: 2 }] {
        let (cfg, mut m) = model(9, mode);
        let before: Vec<_> = m.params.iter().map(|p| p.value.clone()).collect();
        m.merge_adapters(&mut Rng::seed_from_u64(10));
        for (b, p) in before.iter().zip(&m.params) {
            assert_eq!(b, &p.value, "{:?} changed {}", mode, p.name);
        }
        let _ = cfg;
    }
}
