//! Offline shim for `serde`: the `Serialize`/`Deserialize` traits over a
//! JSON-like [`Value`] tree, plus re-exported derive macros.
//!
//! This is **not** the real serde — it covers exactly the surface the
//! APOLLO reproduction uses: derived impls for plain structs and enums
//! (unit and struct variants, no `#[serde(...)]` attributes), and the
//! primitive/collection impls those derives need.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON number that round-trips unsigned 64-bit seeds exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Unsigned integer (anything without a sign, dot, or exponent).
    U(u64),
    /// Negative integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Number {
    /// The number as `f64` (lossy for large integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(u) => u as f64,
            Number::I(i) => i as f64,
            Number::F(f) => f,
        }
    }

    /// The number as `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(u) => Some(u),
            Number::I(i) if i >= 0 => Some(i as u64),
            Number::F(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            _ => None,
        }
    }

    /// The number as `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(u) if u <= i64::MAX as u64 => Some(u as i64),
            Number::I(i) => Some(i),
            Number::F(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(f as i64),
            _ => None,
        }
    }
}

/// The serialized data model: a JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` (also used for non-finite floats, as in real serde_json).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Num(Number),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object, erroring descriptively when absent.
    pub fn get_field(&self, name: &str) -> Result<&Value, DeError> {
        match self {
            Value::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError(format!("missing field `{name}`"))),
            other => Err(DeError(format!(
                "expected object with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// A short human-readable tag for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// A deserialization error with a human-readable message.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// `Value` round-trips through itself, so callers that need lenient,
// schema-free parsing (optional fields with defaults — e.g. the serving
// front-end's request bodies) can deserialize into a `Value` tree and walk
// it by hand.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, found {}", other.kind()))),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => n
                        .as_u64()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| {
                            DeError(format!("number out of range for {}", stringify!($t)))
                        }),
                    other => Err(DeError(format!(
                        "expected number, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i < 0 {
                    Value::Num(Number::I(i))
                } else {
                    Value::Num(Number::U(i as u64))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => n
                        .as_i64()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .ok_or_else(|| {
                            DeError(format!("number out of range for {}", stringify!($t)))
                        }),
                    other => Err(DeError(format!(
                        "expected number, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let f = *self as f64;
                if f.is_finite() {
                    Value::Num(Number::F(f))
                } else {
                    // Real serde_json writes null for non-finite floats.
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => Ok(n.as_f64() as $t),
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(DeError(format!(
                        "expected number, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(xs) => xs.iter().map(T::from_value).collect(),
            other => Err(DeError(format!("expected array, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let xs = Vec::<T>::from_value(v)?;
        let n = xs.len();
        <[T; N]>::try_from(xs)
            .map_err(|_| DeError(format!("expected array of length {N}, found {n}")))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $i:tt),+),)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Arr(xs) => {
                        let expect = [$($i),+].len();
                        if xs.len() != expect {
                            return Err(DeError(format!(
                                "expected {}-tuple, found array of {}", expect, xs.len()
                            )));
                        }
                        Ok(($($t::from_value(&xs[$i])?,)+))
                    }
                    other => Err(DeError(format!(
                        "expected array, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
}
