//! Table 3: LLaMA-7B pre-training (proxy) — validation perplexity at four
//! checkpoints plus the paper-geometry optimizer memory.

use apollo_bench::{pretrain_run, print_table, scaled, write_json, Method};
use apollo_nn::ModelConfig;
use apollo_optim::memory::MethodSpec;
use apollo_sysmodel::TrainingMemoryModel;
use apollo_train::TrainConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    method: String,
    optimizer_memory_gib: f64,
    checkpoints: Vec<(usize, f32)>,
}

/// Optimizer-state GiB on the real LLaMA-7B geometry (BF16 states, INT8
/// where the method quantizes).
fn optimizer_memory_7b(method: Method) -> f64 {
    let cfg = ModelConfig::llama_7b();
    let mem = TrainingMemoryModel::new(&cfg);
    let (spec, bytes_per_elem) = match method {
        Method::Adam8bit => (MethodSpec::AdamW, 1.0),
        Method::GaLore8bit => (MethodSpec::GaLore { rank: 1024 }, 1.0),
        Method::Apollo => (MethodSpec::Apollo { rank: 256 }, 2.0),
        Method::ApolloMini => (MethodSpec::ApolloMini, 2.0),
        _ => (MethodSpec::AdamW, 2.0),
    };
    spec.state_elems(mem.shapes()) as f64 * bytes_per_elem / (1u64 << 30) as f64
}

fn main() {
    let cfg = ModelConfig::tiny_7b();
    let steps = scaled(100);
    let eval_every = (steps / 4).max(1);
    // Paper checkpoints 40K/80K/120K/150K map to quarters of the budget.
    let methods = [
        Method::Adam8bit,
        Method::GaLore8bit,
        Method::Apollo,
        Method::ApolloMini,
    ];
    let mut rows = Vec::new();
    for m in methods {
        eprintln!("[table3] {} ({steps} steps) ...", m.label());
        let tc = TrainConfig {
            steps,
            lr: m.default_lr(),
            grad_clip: m.grad_clip(),
            eval_every,
            eval_seqs: 32,
            merge_every: None,
            record_step_times: false,
            grad_accum: 1,
            quantize_weights: None,
        };
        let log = pretrain_run(&cfg, m, steps, 1, 42, Some(tc));
        rows.push(Row {
            method: m.label().to_string(),
            optimizer_memory_gib: optimizer_memory_7b(m),
            checkpoints: log.eval_ppls.clone(),
        });
    }
    let n_ck = rows[0].checkpoints.len();
    let mut headers: Vec<String> = vec!["Method".into(), "Opt. mem (7B)".into()];
    headers.extend(rows[0].checkpoints.iter().map(|&(s, _)| format!("ppl@{s}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut row = vec![r.method.clone(), format!("{:.1}G", r.optimizer_memory_gib)];
            row.extend(
                r.checkpoints
                    .iter()
                    .take(n_ck)
                    .map(|&(_, p)| format!("{p:.2}")),
            );
            row
        })
        .collect();
    print_table(
        &format!("Table 3 — 7B-proxy pre-training, checkpoints over {steps} steps"),
        &header_refs,
        &table,
    );
    println!(
        "\nPaper shape: APOLLO/Mini beat the 8-bit baselines by a clear ppl margin at every \
         checkpoint, with 1.6G / ~0G optimizer memory vs 13G / 4.9G."
    );
    write_json("table3_llama7b", &rows);
}
