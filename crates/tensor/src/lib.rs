//! Dense `f32` matrix kernels, deterministic RNG, and small-scale linear
//! algebra used throughout the APOLLO reproduction.
//!
//! The paper's algorithms (AdamW, GaLore, Fira, APOLLO, APOLLO-Mini) are all
//! expressed over 2-D weight matrices, so this crate deliberately provides a
//! 2-D row-major [`Matrix`] rather than a general N-d tensor. Higher-rank
//! shapes (batch × seq × hidden) are flattened to `(batch·seq) × hidden` by
//! the layers in `apollo-nn`.
//!
//! # Example
//!
//! ```
//! use apollo_tensor::{Matrix, Rng};
//!
//! let mut rng = Rng::seed_from_u64(7);
//! let a = Matrix::randn(4, 8, &mut rng);
//! let b = Matrix::randn(8, 3, &mut rng);
//! let c = a.matmul(&b);
//! assert_eq!((c.rows(), c.cols()), (4, 3));
//! ```

pub mod bf16;

mod matmul;
mod matrix;
mod numerics;
mod rng;

pub mod fused;
pub mod linalg;
pub mod pool;
pub mod scratch;
pub mod simd;

pub use matmul::{current_threads, set_thread_override, ThreadOverrideGuard};
pub use matrix::Matrix;
pub use numerics::{
    current_numerics, set_numerics_default, set_numerics_override, simd_tier, NumericsMode,
    SimdTier,
};
pub use rng::Rng;

/// Machine-epsilon-scale tolerance used by tests and iterative algorithms.
pub const EPS: f32 = 1e-6;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_example_compiles() {
        let mut rng = Rng::seed_from_u64(7);
        let a = Matrix::randn(4, 8, &mut rng);
        let b = Matrix::randn(8, 3, &mut rng);
        let c = a.matmul(&b);
        assert_eq!((c.rows(), c.cols()), (4, 3));
    }
}
