//! The continuous-batching scheduler.
//!
//! A fixed number of *slots* hold in-flight sequences, each with its own
//! reusable [`KvCache`]. Every [`Scheduler::tick`] admits queued requests
//! into free slots, runs one batched prefill pass (up to `prefill_chunk`
//! prompt rows per sequence) and one batched decode pass (one row per
//! decoding sequence) through [`LlamaModel::forward_cached`], samples with
//! each request's own [`Rng`], retires finished sequences, and back-fills
//! the freed slots on the next tick.
//!
//! Because every row of the batched forward is bit-identical to the same
//! row computed alone, and sampling state is per-request, the tokens a
//! request receives are byte-identical to running it serially through
//! [`crate::engine::generate`] — regardless of what else shares the batch.
//! `tests/scheduler.rs` pins this.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use apollo_nn::{AdapterRegistry, DecodeBackend, DecodeCaches, LoraAdapter};
use apollo_obs::{Obs, TraceEvent};
use apollo_tensor::{Matrix, Rng};

use crate::prefix::{PrefixCache, PrefixLease};
use crate::sample::{sample, GenConfig};
use crate::stats::ServeStats;

/// Scheduler sizing and batching policy.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Number of slots (sequences decoded concurrently).
    pub max_active: usize,
    /// Bound of the admission queue; [`Scheduler::submit`] rejects beyond it.
    pub queue_cap: usize,
    /// Maximum prompt rows prefilled per sequence per tick. Caps the
    /// latency a long prompt can impose on already-decoding sequences.
    pub prefill_chunk: usize,
    /// KV capacity per slot (longest prompt + generation it can hold).
    pub kv_capacity: usize,
    /// Byte budget of the radix-tree prefix cache; 0 disables prefix
    /// caching (every request prefills cold, the pre-existing behavior).
    pub prefix_cache_bytes: usize,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            max_active: 4,
            queue_cap: 64,
            prefill_chunk: 16,
            kv_capacity: 512,
            prefix_cache_bytes: 0,
        }
    }
}

/// One generation request.
#[derive(Debug, Clone, Default)]
pub struct GenRequest {
    /// Prompt token ids (must be non-empty and fit the slot KV capacity
    /// together with `cfg.max_new_tokens`).
    pub prompt: Vec<u32>,
    /// Sampling and stopping settings.
    pub cfg: GenConfig,
    /// Optional SLO deadline measured from submission. A request still
    /// queued past it retires with [`Outcome::Deadline`] and no tokens; a
    /// sequence still running past it retires with its partial output.
    pub deadline: Option<Duration>,
    /// Adapter id (from [`AdapterRegistry::id`]) whose LoRA delta decodes
    /// this request; `None` serves the shared base model.
    pub adapter: Option<u32>,
}

/// Why a request retired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Generated `max_new_tokens`.
    Done,
    /// Emitted the configured stop token.
    StopToken,
    /// Exceeded its deadline.
    Deadline,
    /// Filled its slot's KV cache before finishing.
    CacheFull,
    /// Cancelled by the submitter (e.g. the client disconnected).
    Cancelled,
}

impl Outcome {
    /// Stable label used in trace events.
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Done => "done",
            Outcome::StopToken => "stop_token",
            Outcome::Deadline => "deadline",
            Outcome::CacheFull => "cache_full",
            Outcome::Cancelled => "cancelled",
        }
    }
}

/// A retired request's output.
#[derive(Debug, Clone)]
pub struct GenResult {
    /// Id returned by [`Scheduler::submit`] (admission order).
    pub id: u64,
    /// Generated tokens (may be partial for deadline/cache retirement).
    pub tokens: Vec<u32>,
    /// Why the request retired.
    pub outcome: Outcome,
}

/// Rejection reasons for [`Scheduler::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue is at `queue_cap`.
    QueueFull,
    /// The prompt alone exceeds the per-slot KV capacity.
    PromptTooLong,
    /// The prompt is empty.
    EmptyPrompt,
    /// The request names an adapter id the registry does not know.
    UnknownAdapter,
}

impl SubmitError {
    /// Stable label used in rejection counters and trace events.
    pub fn label(self) -> &'static str {
        match self {
            SubmitError::QueueFull => "queue_full",
            SubmitError::PromptTooLong => "prompt_too_long",
            SubmitError::EmptyPrompt => "empty_prompt",
            SubmitError::UnknownAdapter => "unknown_adapter",
        }
    }
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "admission queue full"),
            SubmitError::PromptTooLong => write!(f, "prompt exceeds KV capacity"),
            SubmitError::EmptyPrompt => write!(f, "empty prompt"),
            SubmitError::UnknownAdapter => write!(f, "unknown adapter"),
        }
    }
}

/// Counts a submit rejection under `infer.rejected.{label}` and emits a
/// `Sentinel` trace event. Shared by [`Scheduler::submit`] and the
/// admission paths layered above it ([`crate::Server`]), so every
/// rejection is visible no matter where it was decided.
pub(crate) fn observe_rejection(obs: &Obs, err: SubmitError) {
    let kind = err.label();
    obs.counter(&format!("infer.rejected.{kind}"), 1);
    let step = obs.step();
    obs.emit(|| TraceEvent::Sentinel {
        step,
        kind: format!("submit_rejected.{kind}"),
        action: "rejected".to_string(),
    });
}

/// A queued, not-yet-admitted request.
struct Pending {
    id: u64,
    req: GenRequest,
    submitted: Instant,
}

/// An in-flight sequence occupying a slot.
struct Active {
    id: u64,
    prompt: Vec<u32>,
    cfg: GenConfig,
    deadline: Option<Duration>,
    /// When the request entered the queue; deadlines count from here.
    submitted: Instant,
    admitted: Instant,
    /// Prompt tokens in the cache so far (cached-prefix rows count as fed).
    fed: usize,
    /// Sampled tokens; the last one is the next decode input.
    generated: Vec<u32>,
    rng: Rng,
    /// The resolved adapter (id kept for the prefix-cache key). The `Arc`
    /// pins the weights: registry eviction can drop its own reference but
    /// never the copy a running sequence decodes with.
    adapter: Option<(u32, Arc<LoraAdapter>)>,
    /// Prefix-cache lease held until retirement (eviction guard).
    lease: Option<PrefixLease>,
    /// Set when the sequence finished this tick.
    outcome: Option<Outcome>,
}

impl Active {
    fn prefilling(&self) -> bool {
        self.fed < self.prompt.len()
    }
}

/// Deterministic continuous-batching core. Single-threaded: the caller
/// drives it by calling [`Scheduler::tick`] (the threaded [`crate::Server`]
/// wraps it in a worker loop).
pub struct Scheduler {
    backend: DecodeBackend,
    cfg: SchedConfig,
    obs: Obs,
    queue: VecDeque<Pending>,
    slots: Vec<Option<Active>>,
    caches: DecodeCaches,
    registry: Arc<AdapterRegistry>,
    prefix: PrefixCache,
    stats: Arc<ServeStats>,
    finished: Vec<GenResult>,
    /// Tokens sampled since the last [`Scheduler::take_progress`] call,
    /// in sampling order — the feed for chunked response streaming.
    progress: Vec<(u64, u32)>,
    /// Lookup count at the last `PrefixCache` trace emission.
    prefix_traced_at: u64,
    tick: usize,
    next_id: u64,
}

impl Scheduler {
    /// Creates a scheduler with one KV cache per slot. Accepts anything
    /// convertible to a [`DecodeBackend`] — an `Arc<LlamaModel>` for exact
    /// decode (all pre-existing call sites) or an `Arc<QuantizedModel>`
    /// for the INT8 fast path. Single-tenant: no adapters.
    pub fn new(model: impl Into<DecodeBackend>, cfg: SchedConfig, obs: Obs) -> Self {
        Self::new_multi(
            model,
            cfg,
            obs,
            Arc::new(AdapterRegistry::empty()),
            Arc::new(ServeStats::default()),
        )
    }

    /// [`Scheduler::new`] with multi-tenant routing: requests may name any
    /// adapter registered in `registry`, and serving counters land in
    /// `stats` for the `/stats` endpoint.
    ///
    /// # Panics
    ///
    /// Panics on a non-empty registry over an INT8 backend (quantized
    /// weights fold the projections, so there is no base/delta split), or
    /// on the [`Scheduler::new`] sizing conditions.
    pub fn new_multi(
        model: impl Into<DecodeBackend>,
        cfg: SchedConfig,
        obs: Obs,
        registry: Arc<AdapterRegistry>,
        stats: Arc<ServeStats>,
    ) -> Self {
        assert!(cfg.max_active > 0, "scheduler needs at least one slot");
        assert!(cfg.prefill_chunk > 0, "prefill_chunk must be positive");
        let backend = model.into();
        assert!(
            registry.is_empty() || matches!(backend, DecodeBackend::Exact(_)),
            "adapters require the exact decode backend"
        );
        let caches = backend.new_caches(cfg.max_active, cfg.kv_capacity);
        // Resident-memory gauges: weights are shared across slots, the KV
        // pool scales with `max_active × kv_capacity`. Emitted once — both
        // are fixed for the scheduler's lifetime.
        obs.gauge("infer.mem.weight_bytes", backend.weight_bytes() as f64);
        obs.gauge("infer.mem.kv_bytes", caches.memory_bytes() as f64);
        ServeStats::set(&stats.adapters_registered, registry.len() as u64);
        let prefix = PrefixCache::new(cfg.prefix_cache_bytes);
        Scheduler {
            backend,
            slots: (0..cfg.max_active).map(|_| None).collect(),
            caches,
            cfg,
            obs,
            registry,
            prefix,
            stats,
            queue: VecDeque::new(),
            finished: Vec::new(),
            progress: Vec::new(),
            prefix_traced_at: 0,
            tick: 0,
            next_id: 0,
        }
    }

    /// The shared serving-stats sink (for the frontend's `/stats`).
    pub fn stats(&self) -> Arc<ServeStats> {
        Arc::clone(&self.stats)
    }

    /// The adapter registry requests route against.
    pub fn registry(&self) -> Arc<AdapterRegistry> {
        Arc::clone(&self.registry)
    }

    /// Enqueues a request, returning its id, or rejects it without side
    /// effects when the queue is full or the request cannot ever fit.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] at `queue_cap` pending requests,
    /// [`SubmitError::EmptyPrompt`] / [`SubmitError::PromptTooLong`] for
    /// requests that could never run.
    pub fn submit(&mut self, req: GenRequest) -> Result<u64, SubmitError> {
        if req.prompt.is_empty() {
            return Err(self.reject(SubmitError::EmptyPrompt));
        }
        if req.prompt.len() > self.cfg.kv_capacity {
            return Err(self.reject(SubmitError::PromptTooLong));
        }
        if req
            .adapter
            .is_some_and(|id| (id as usize) >= self.registry.len())
        {
            return Err(self.reject(SubmitError::UnknownAdapter));
        }
        if self.queue.len() >= self.cfg.queue_cap {
            return Err(self.reject(SubmitError::QueueFull));
        }
        let id = self.next_id;
        self.next_id += 1;
        self.queue.push_back(Pending {
            id,
            req,
            submitted: Instant::now(),
        });
        Ok(id)
    }

    /// Counts a rejection under `infer.rejected.*` and emits a Sentinel
    /// trace event, so rejected work never vanishes silently.
    fn reject(&self, err: SubmitError) -> SubmitError {
        observe_rejection(&self.obs, err);
        err
    }

    /// Cancels a request by id: a queued request retires immediately, an
    /// in-flight one retires on the next tick — either way the slot (or
    /// queue position) is reclaimed and a [`GenResult`] with
    /// [`Outcome::Cancelled`] and the tokens generated so far is produced.
    /// Returns `false` when the id is unknown or already retired.
    pub fn cancel(&mut self, id: u64) -> bool {
        if let Some(pos) = self.queue.iter().position(|p| p.id == id) {
            let pending = self.queue.remove(pos).expect("position is in bounds");
            self.finish_unadmitted(pending.id, pending.req.prompt.len(), Outcome::Cancelled);
            return true;
        }
        for act in self.slots.iter_mut().flatten() {
            if act.id == id && act.outcome.is_none() {
                act.outcome = Some(Outcome::Cancelled);
                return true;
            }
        }
        false
    }

    /// Pending (not yet admitted) request count.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Sequences currently occupying slots.
    pub fn active(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Whether no work remains (no queued or in-flight sequences).
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.active() == 0
    }

    /// Takes every result retired since the last call, in retirement order.
    pub fn take_finished(&mut self) -> Vec<GenResult> {
        std::mem::take(&mut self.finished)
    }

    /// Takes every `(request id, token)` sampled since the last call, in
    /// sampling order. Streaming callers drain this after each tick; batch
    /// callers can ignore it (the buffer is cleared on retirement anyway
    /// via this call or the next).
    pub fn take_progress(&mut self) -> Vec<(u64, u32)> {
        std::mem::take(&mut self.progress)
    }

    /// Runs one scheduling step: admit → prefill pass → decode pass →
    /// retire → back-fill. Returns how many results retired this tick.
    pub fn tick(&mut self) -> usize {
        let t0 = Instant::now();
        let retired_before = self.finished.len();
        self.expire_queued();
        self.admit();
        self.expire_deadlines();

        // --- batched prefill -------------------------------------------------
        let mut prefill_rows: Vec<(usize, u32)> = Vec::new();
        let mut prefill_ads: Vec<Option<Arc<LoraAdapter>>> = Vec::new();
        let mut sample_after_prefill: Vec<(usize, usize)> = Vec::new(); // (slot, row)
        for (slot, act) in self.slots.iter_mut().enumerate() {
            let Some(act) = act else { continue };
            if !act.prefilling() || act.outcome.is_some() {
                continue;
            }
            let take = self.cfg.prefill_chunk.min(act.prompt.len() - act.fed);
            for i in 0..take {
                prefill_rows.push((slot, act.prompt[act.fed + i]));
                prefill_ads.push(act.adapter.as_ref().map(|(_, a)| Arc::clone(a)));
            }
            act.fed += take;
            if !act.prefilling() {
                // Prefill completes this tick: the last prompt row's logits
                // seed the first sampled token.
                sample_after_prefill.push((slot, prefill_rows.len() - 1));
            }
        }
        let p0 = Instant::now();
        if !prefill_rows.is_empty() {
            let ads: Vec<Option<&LoraAdapter>> = prefill_ads.iter().map(|a| a.as_deref()).collect();
            let hidden = self
                .backend
                .forward_cached_with(&mut self.caches, &prefill_rows, &ads);
            // Freshly-completed prefills feed the prefix cache before
            // decode can extend the slot (cache rows `0..prompt.len()` are
            // exactly the prompt's KV at this point).
            let evictions_before = self.prefix.eviction_count();
            for &(slot, _) in &sample_after_prefill {
                let act = self.slots[slot].as_ref().expect("completing slot");
                let key = act.adapter.as_ref().map(|(aid, _)| *aid);
                let caches = &self.caches;
                self.prefix
                    .insert(key, &act.prompt, |lo, hi| caches.export_rows(slot, lo, hi));
            }
            let evicted = self.prefix.eviction_count() - evictions_before;
            if evicted > 0 {
                self.obs.counter("infer.prefix.evictions", evicted);
            }
            let picked = gather_rows(&hidden, sample_after_prefill.iter().map(|&(_, r)| r));
            let logits = self.backend.lm_logits(&picked);
            for (i, &(slot, _)) in sample_after_prefill.iter().enumerate() {
                self.sample_into_slot(slot, logits.row(i));
            }
        }
        let prefill_ms = ms_since(p0);

        // --- batched decode --------------------------------------------------
        let mut decode_rows: Vec<(usize, u32)> = Vec::new();
        let mut decode_ads: Vec<Option<Arc<LoraAdapter>>> = Vec::new();
        let mut decode_slots: Vec<usize> = Vec::new();
        for (slot, act) in self.slots.iter().enumerate() {
            let Some(act) = act else { continue };
            if act.prefilling() || act.outcome.is_some() {
                continue;
            }
            let Some(&last) = act.generated.last() else {
                continue;
            };
            if self.caches.remaining(slot) == 0 {
                continue; // retired as CacheFull below
            }
            decode_rows.push((slot, last));
            decode_ads.push(act.adapter.as_ref().map(|(_, a)| Arc::clone(a)));
            decode_slots.push(slot);
        }
        let d0 = Instant::now();
        if !decode_rows.is_empty() {
            let ads: Vec<Option<&LoraAdapter>> = decode_ads.iter().map(|a| a.as_deref()).collect();
            let hidden = self
                .backend
                .forward_cached_with(&mut self.caches, &decode_rows, &ads);
            let logits = self.backend.lm_logits(&hidden);
            for (i, &slot) in decode_slots.iter().enumerate() {
                self.sample_into_slot(slot, logits.row(i));
            }
        }
        let decode_ms = ms_since(d0);

        self.retire();
        let retired = self.finished.len() - retired_before;

        self.tick += 1;
        self.obs.set_step(self.tick);
        self.obs
            .counter("infer.prefill_tokens", prefill_rows.len() as u64);
        self.obs
            .counter("infer.decode_tokens", decode_rows.len() as u64);
        self.obs.gauge("infer.queue_depth", self.queue.len() as f64);
        self.obs.gauge("infer.active", self.active() as f64);
        let (tick, queue_depth, active) = (self.tick, self.queue.len(), self.active());
        let (n_prefill, n_decode) = (prefill_rows.len(), decode_rows.len());
        self.obs.emit(|| TraceEvent::InferStep {
            step: tick,
            prefill_rows: n_prefill,
            decode_rows: n_decode,
            queue_depth,
            active,
            prefill_ms,
            decode_ms,
            total_ms: ms_since(t0),
        });
        self.publish_stats(n_prefill as u64, n_decode as u64, prefill_ms);
        retired
    }

    /// Mirrors the tick's numbers into the shared [`ServeStats`] and, when
    /// prefix-cache activity happened since the last emission, a
    /// `PrefixCache` trace event.
    fn publish_stats(&mut self, prefill: u64, decode: u64, prefill_ms: f32) {
        use std::sync::atomic::Ordering;
        let s = &self.stats;
        s.prefill_tokens.fetch_add(prefill, Ordering::Relaxed);
        s.decode_tokens.fetch_add(decode, Ordering::Relaxed);
        s.prefill_us
            .fetch_add((f64::from(prefill_ms) * 1e3) as u64, Ordering::Relaxed);
        ServeStats::set(&s.kv_used_bytes, self.caches.used_bytes() as u64);
        ServeStats::set(&s.prefix_lookups, self.prefix.lookup_count());
        ServeStats::set(&s.prefix_hits, self.prefix.hit_count());
        ServeStats::set(&s.prefix_hit_tokens, self.prefix.hit_token_count());
        ServeStats::set(&s.prefix_cached_bytes, self.prefix.bytes() as u64);
        ServeStats::set(&s.prefix_nodes, self.prefix.node_count() as u64);
        ServeStats::set(&s.prefix_evictions, self.prefix.eviction_count());
        ServeStats::set(&s.adapters_registered, self.registry.len() as u64);
        ServeStats::set(&s.adapters_resident, self.registry.resident_count() as u64);
        ServeStats::set(&s.adapter_loads, self.registry.load_count());
        ServeStats::set(&s.adapter_evictions, self.registry.eviction_count());
        self.obs
            .gauge("infer.prefix.cached_bytes", self.prefix.bytes() as f64);
        if self.prefix.enabled() && self.prefix.lookup_count() != self.prefix_traced_at {
            self.prefix_traced_at = self.prefix.lookup_count();
            let (step, lookups, hits) = (
                self.tick,
                self.prefix.lookup_count(),
                self.prefix.hit_count(),
            );
            let (hit_tokens, cached_bytes) = (self.prefix.hit_token_count(), self.prefix.bytes());
            let (nodes, evictions) = (self.prefix.node_count(), self.prefix.eviction_count());
            self.obs.emit(|| TraceEvent::PrefixCache {
                step,
                lookups,
                hits,
                hit_tokens,
                cached_bytes,
                nodes,
                evictions,
            });
        }
    }

    /// Runs ticks until all queued and in-flight work retires, returning
    /// every result. Intended for tests and batch (non-server) use.
    pub fn run_to_completion(&mut self) -> Vec<GenResult> {
        let mut out = Vec::new();
        while !self.is_idle() {
            self.tick();
            self.progress.clear(); // batch callers don't stream
            out.append(&mut self.finished);
        }
        out
    }

    /// Moves queued requests into free slots: resolves the adapter, runs
    /// the prefix-cache lookup, and appends any cached KV rows so the
    /// prefill pass only sees the unmatched suffix.
    fn admit(&mut self) {
        for slot in 0..self.slots.len() {
            if self.slots[slot].is_some() {
                continue;
            }
            // Pop until a request admits; a failed adapter load retires
            // its request and tries the next one for the same slot.
            loop {
                let Some(Pending { id, req, submitted }) = self.queue.pop_front() else {
                    return;
                };
                let adapter = match req.adapter {
                    None => None,
                    Some(aid) => match self.registry.resolve(aid) {
                        Ok(a) => Some((aid, a)),
                        Err(err) => {
                            self.obs.counter("infer.adapter.load_failed", 1);
                            let step = self.tick;
                            self.obs.emit(|| TraceEvent::Sentinel {
                                step,
                                kind: "adapter_load_failed".to_string(),
                                action: err,
                            });
                            self.finish_unadmitted(id, req.prompt.len(), Outcome::Cancelled);
                            continue;
                        }
                    },
                };
                self.caches.clear(slot);
                let mut fed = 0;
                let mut lease = None;
                if self.prefix.enabled() {
                    self.obs.counter("infer.prefix.lookups", 1);
                    let key = adapter.as_ref().map(|(aid, _)| *aid);
                    if let Some(hit) = self.prefix.lookup(key, &req.prompt) {
                        for block in &hit.blocks {
                            self.caches.append_block(slot, block);
                        }
                        fed = hit.matched;
                        lease = Some(hit.lease);
                        self.obs.counter("infer.prefix.hits", 1);
                        self.obs
                            .counter("infer.prefix.hit_tokens", hit.matched as u64);
                    }
                }
                self.slots[slot] = Some(Active {
                    id,
                    rng: Rng::seed_from_u64(req.cfg.seed),
                    prompt: req.prompt,
                    cfg: req.cfg,
                    deadline: req.deadline,
                    submitted,
                    admitted: Instant::now(),
                    fed,
                    generated: Vec::new(),
                    adapter,
                    lease,
                    outcome: None,
                });
                break;
            }
        }
    }

    /// Retires queued requests whose deadline passed before admission —
    /// under overload a dead request must not waste a slot and a prefill.
    fn expire_queued(&mut self) {
        let mut i = 0;
        while i < self.queue.len() {
            let expired = self.queue[i]
                .req
                .deadline
                .is_some_and(|d| self.queue[i].submitted.elapsed() >= d);
            if expired {
                let pending = self.queue.remove(i).expect("index is in bounds");
                self.finish_unadmitted(pending.id, pending.req.prompt.len(), Outcome::Deadline);
            } else {
                i += 1;
            }
        }
    }

    /// Marks sequences past their deadline for retirement. Runs before the
    /// forward passes, so a sequence whose deadline expired between ticks
    /// retires as [`Outcome::Deadline`] even if this tick's sample would
    /// have emitted its stop token; a stop token sampled on the same tick
    /// the deadline *would* expire wins, because sampling precedes the
    /// next expiry check.
    fn expire_deadlines(&mut self) {
        for act in self.slots.iter_mut().flatten() {
            if act.outcome.is_none() {
                if let Some(d) = act.deadline {
                    if act.submitted.elapsed() >= d {
                        act.outcome = Some(Outcome::Deadline);
                    }
                }
            }
        }
    }

    /// Pushes a result for a request that never reached a slot (queued
    /// expiry or queued cancellation), with the same counters and trace
    /// event retirement emits.
    fn finish_unadmitted(&mut self, id: u64, prompt_tokens: usize, outcome: Outcome) {
        self.obs.counter("infer.requests_retired", 1);
        let tick = self.tick;
        self.obs.emit(|| TraceEvent::InferRequest {
            step: tick,
            id,
            prompt_tokens,
            new_tokens: 0,
            tokens_per_sec: 0.0,
            outcome: outcome.label().to_string(),
        });
        self.finished.push(GenResult {
            id,
            tokens: Vec::new(),
            outcome,
        });
    }

    /// Samples the next token for `slot` from one logits row and updates
    /// its terminal state.
    fn sample_into_slot(&mut self, slot: usize, logits: &[f32]) {
        let act = self.slots[slot].as_mut().expect("sampling an empty slot");
        let tok = sample(logits, &act.cfg, &mut act.rng);
        act.generated.push(tok);
        self.progress.push((act.id, tok));
        if act.cfg.stop_token == Some(tok) {
            act.outcome = Some(Outcome::StopToken);
        } else if act.generated.len() >= act.cfg.max_new_tokens {
            act.outcome = Some(Outcome::Done);
        } else if self.caches.remaining(slot) == 0 {
            act.outcome = Some(Outcome::CacheFull);
        }
    }

    /// Frees slots whose sequences finished, pushing their results.
    fn retire(&mut self) {
        for slot in 0..self.slots.len() {
            let done = matches!(&self.slots[slot], Some(a) if a.outcome.is_some());
            if !done {
                continue;
            }
            let mut act = self.slots[slot].take().expect("checked above");
            let outcome = act.outcome.expect("checked above");
            if let Some(lease) = act.lease.take() {
                self.prefix.release(lease);
            }
            let secs = act.admitted.elapsed().as_secs_f64().max(1e-9);
            let tokens_per_sec = act.generated.len() as f64 / secs;
            self.obs.counter("infer.requests_retired", 1);
            self.obs.gauge("infer.tokens_per_sec", tokens_per_sec);
            let (tick, id) = (self.tick, act.id);
            let (prompt_tokens, new_tokens) = (act.prompt.len(), act.generated.len());
            self.obs.emit(|| TraceEvent::InferRequest {
                step: tick,
                id,
                prompt_tokens,
                new_tokens,
                tokens_per_sec,
                outcome: outcome.label().to_string(),
            });
            self.finished.push(GenResult {
                id: act.id,
                tokens: act.generated,
                outcome,
            });
        }
    }
}

/// Copies the given rows of `src` into a new dense matrix, in order.
fn gather_rows(src: &Matrix, rows: impl Iterator<Item = usize>) -> Matrix {
    let idx: Vec<usize> = rows.collect();
    let mut out = Matrix::zeros(idx.len(), src.cols());
    for (i, &r) in idx.iter().enumerate() {
        out.row_mut(i).copy_from_slice(src.row(r));
    }
    out
}

/// Elapsed milliseconds since `t0` as `f32`.
fn ms_since(t0: Instant) -> f32 {
    t0.elapsed().as_secs_f64() as f32 * 1e3
}
