//! Resident LoRA adapters for multi-tenant serving.
//!
//! A [`LoraAdapter`] is the low-rank part of a fine-tuned LoRA model —
//! per-layer `(A, B, alpha/rank)` triples for the seven projection
//! linears — extracted from a checkpointed [`LlamaModel`] in
//! [`crate::LinearMode::LoRa`] mode. N adapters stay resident over one
//! shared dense base model; at decode time each batch row's delta
//! `(x·A)·B · (alpha/rank)` is applied on top of the shared base
//! projection without ever materializing the per-tenant dense weight
//! (see [`crate::LlamaModel::forward_cached_with`]).
//!
//! The adapter deliberately carries **only** the low-rank factors: a LoRA
//! fine-tune also trains the norms, embedding and LM head, but those are
//! shared tensors the server cannot specialize per row without forking
//! the whole trunk. Serving an adapter therefore means "base model +
//! low-rank projection deltas"; DESIGN.md documents this contract.
//!
//! [`AdapterRegistry`] maps tenant names to adapter ids, optionally under
//! a residency cap: with a loader hook installed, adapters past the cap
//! are evicted LRU and transparently reloaded from their v2 checkpoints
//! on the next request that routes to them.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use apollo_tensor::Matrix;

use crate::config::ModelConfig;
use crate::model::LlamaModel;

/// One low-rank projection delta: `Δy = (x·A)·B · scale`.
#[derive(Debug, Clone)]
pub(crate) struct LowRankDelta {
    /// `in × rank`.
    pub(crate) a: Matrix,
    /// `rank × out`.
    pub(crate) b: Matrix,
    /// `alpha / rank`, matching [`crate::LinearMode::LoRa`].
    pub(crate) scale: f32,
}

/// The seven projection deltas of one transformer layer.
#[derive(Debug, Clone)]
pub(crate) struct AdapterLayer {
    pub(crate) wq: LowRankDelta,
    pub(crate) wk: LowRankDelta,
    pub(crate) wv: LowRankDelta,
    pub(crate) wo: LowRankDelta,
    pub(crate) gate: LowRankDelta,
    pub(crate) up: LowRankDelta,
    pub(crate) down: LowRankDelta,
}

/// The low-rank deltas of a LoRA fine-tune, ready to apply per batch row.
#[derive(Debug, Clone)]
pub struct LoraAdapter {
    pub(crate) layers: Vec<AdapterLayer>,
    rank: usize,
    hidden: usize,
    intermediate: usize,
}

impl LoraAdapter {
    /// Extracts the adapter from a model built (or loaded) in
    /// [`crate::LinearMode::LoRa`] mode. The frozen backbone, norms,
    /// embedding and LM head are *not* carried over — only the `A`/`B`
    /// factors and their scale.
    ///
    /// # Errors
    ///
    /// Returns an error if the model's linears are not in LoRA mode.
    pub fn from_model(model: &LlamaModel) -> Result<Self, String> {
        let delta = |lin: &crate::linear::Linear| -> Result<LowRankDelta, String> {
            let (a, b, scale) = lin
                .lora_indices()
                .ok_or_else(|| format!("adapter source is {:?}, not LoRA", lin.mode()))?;
            Ok(LowRankDelta {
                a: model.params[a].value.clone(),
                b: model.params[b].value.clone(),
                scale,
            })
        };
        let layers = model
            .layers
            .iter()
            .map(|l| {
                Ok(AdapterLayer {
                    wq: delta(&l.wq)?,
                    wk: delta(&l.wk)?,
                    wv: delta(&l.wv)?,
                    wo: delta(&l.wo)?,
                    gate: delta(&l.gate)?,
                    up: delta(&l.up)?,
                    down: delta(&l.down)?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let rank = layers.first().map_or(0, |l| l.wq.a.cols());
        let cfg = model.config();
        Ok(LoraAdapter {
            layers,
            rank,
            hidden: cfg.hidden,
            intermediate: cfg.intermediate,
        })
    }

    /// Adapter rank (columns of `A`).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Transformer layer count the adapter covers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Bytes of f32 factor storage across all layers.
    pub fn memory_bytes(&self) -> usize {
        self.layers
            .iter()
            .flat_map(|l| [&l.wq, &l.wk, &l.wv, &l.wo, &l.gate, &l.up, &l.down])
            .map(|d| (d.a.len() + d.b.len()) * 4)
            .sum()
    }

    /// Checks the adapter fits a base model's geometry.
    ///
    /// # Errors
    ///
    /// Returns an error naming the mismatched dimension.
    pub fn check_compatible(&self, cfg: &ModelConfig) -> Result<(), String> {
        if self.layers.len() != cfg.n_layers {
            return Err(format!(
                "adapter has {} layers, base model {}",
                self.layers.len(),
                cfg.n_layers
            ));
        }
        if self.hidden != cfg.hidden || self.intermediate != cfg.intermediate {
            return Err(format!(
                "adapter geometry {}x{} does not match base {}x{}",
                self.hidden, self.intermediate, cfg.hidden, cfg.intermediate
            ));
        }
        Ok(())
    }
}

/// Reload hook: given a tenant name, produce its adapter (typically by
/// reading the tenant's v2 checkpoint and calling
/// [`LoraAdapter::from_model`]). Installed by the layer that knows about
/// checkpoint paths (the CLI); `apollo-nn` itself never touches disk.
pub type AdapterLoader = Box<dyn Fn(&str) -> Result<LoraAdapter, String> + Send + Sync>;

/// One registry entry: resident adapter or evicted placeholder.
struct Slot {
    name: String,
    adapter: Option<Arc<LoraAdapter>>,
    /// Logical LRU clock value of the last [`AdapterRegistry::resolve`].
    last_use: u64,
}

/// Name → id map over N resident LoRA adapters, with optional LRU
/// residency under a cap.
///
/// Ids are dense `0..len` in registration order and never change, so the
/// serving stack can thread a `u32` from HTTP admission through the
/// scheduler. [`AdapterRegistry::resolve`] returns the pinned
/// `Arc<LoraAdapter>`; while a request holds the `Arc`, eviction only
/// drops the registry's reference, never the weights in use.
pub struct AdapterRegistry {
    names: Vec<String>,
    slots: Mutex<Vec<Slot>>,
    loader: Option<AdapterLoader>,
    /// Max adapters resident at once (`usize::MAX` without a loader).
    max_resident: usize,
    clock: AtomicU64,
    loads: AtomicU64,
    evictions: AtomicU64,
}

impl fmt::Debug for AdapterRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AdapterRegistry")
            .field("names", &self.names)
            .field("max_resident", &self.max_resident)
            .finish_non_exhaustive()
    }
}

impl Default for AdapterRegistry {
    fn default() -> Self {
        AdapterRegistry::empty()
    }
}

impl AdapterRegistry {
    /// A registry with no adapters (single-tenant serving).
    pub fn empty() -> Self {
        AdapterRegistry::resident(Vec::new())
    }

    /// A registry with every adapter resident for its lifetime (no loader,
    /// no eviction). Duplicate names keep the first registration.
    pub fn resident(adapters: Vec<(String, LoraAdapter)>) -> Self {
        let mut names = Vec::new();
        let mut slots = Vec::new();
        for (name, adapter) in adapters {
            if names.contains(&name) {
                continue;
            }
            names.push(name.clone());
            slots.push(Slot {
                name,
                adapter: Some(Arc::new(adapter)),
                last_use: 0,
            });
        }
        AdapterRegistry {
            names,
            slots: Mutex::new(slots),
            loader: None,
            max_resident: usize::MAX,
            clock: AtomicU64::new(0),
            loads: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// A registry that keeps at most `max_resident` adapters in memory,
    /// reloading evicted ones through `loader` on demand. Nothing is
    /// loaded up front; the first request routed to each tenant pays its
    /// load.
    ///
    /// # Panics
    ///
    /// Panics if `max_resident` is zero.
    pub fn with_loader(names: Vec<String>, max_resident: usize, loader: AdapterLoader) -> Self {
        assert!(
            max_resident > 0,
            "registry needs at least one resident slot"
        );
        let mut uniq = Vec::new();
        for n in names {
            if !uniq.contains(&n) {
                uniq.push(n);
            }
        }
        let slots = uniq
            .iter()
            .map(|n| Slot {
                name: n.clone(),
                adapter: None,
                last_use: 0,
            })
            .collect();
        AdapterRegistry {
            names: uniq,
            slots: Mutex::new(slots),
            loader: Some(loader),
            max_resident,
            clock: AtomicU64::new(0),
            loads: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Registered adapter count (resident or not).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no adapters are registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Registered tenant names, in id order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The id for a tenant name.
    pub fn id(&self, name: &str) -> Option<u32> {
        self.names.iter().position(|n| n == name).map(|i| i as u32)
    }

    /// Returns the adapter for `id`, loading it (and evicting the
    /// least-recently-used resident adapter past the cap) if necessary.
    ///
    /// # Errors
    ///
    /// Returns an error for an out-of-range id, a load failure, or a
    /// non-resident adapter in a loader-less registry (impossible unless
    /// the registry was built empty-handed).
    pub fn resolve(&self, id: u32) -> Result<Arc<LoraAdapter>, String> {
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let mut slots = self.slots.lock().expect("registry lock");
        let idx = id as usize;
        if idx >= slots.len() {
            return Err(format!("adapter id {id} out of range"));
        }
        if slots[idx].adapter.is_none() {
            let loader = self
                .loader
                .as_ref()
                .ok_or_else(|| format!("adapter `{}` is not resident", slots[idx].name))?;
            let loaded = loader(&slots[idx].name)?;
            self.loads.fetch_add(1, Ordering::Relaxed);
            slots[idx].adapter = Some(Arc::new(loaded));
        }
        slots[idx].last_use = now;
        let out = Arc::clone(slots[idx].adapter.as_ref().expect("just ensured"));
        // Evict past the cap, oldest first; the slot just used has the
        // newest clock so it can never evict itself.
        while slots.iter().filter(|s| s.adapter.is_some()).count() > self.max_resident {
            let victim = slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.adapter.is_some())
                .min_by_key(|(_, s)| s.last_use)
                .map(|(i, _)| i)
                .expect("count > cap implies a resident slot");
            slots[victim].adapter = None;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        Ok(out)
    }

    /// Adapters currently held in memory.
    pub fn resident_count(&self) -> usize {
        self.slots
            .lock()
            .expect("registry lock")
            .iter()
            .filter(|s| s.adapter.is_some())
            .count()
    }

    /// Checkpoint loads performed (initial and post-eviction).
    pub fn load_count(&self) -> u64 {
        self.loads.load(Ordering::Relaxed)
    }

    /// Residency evictions performed.
    pub fn eviction_count(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Bytes of resident adapter storage.
    pub fn memory_bytes(&self) -> usize {
        self.slots
            .lock()
            .expect("registry lock")
            .iter()
            .filter_map(|s| s.adapter.as_ref())
            .map(|a| a.memory_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinearMode, ModelConfig};
    use apollo_tensor::Rng;

    fn lora_model(seed: u64) -> LlamaModel {
        let cfg = ModelConfig::test_tiny();
        let mut rng = Rng::seed_from_u64(seed);
        let mut m = LlamaModel::new(
            &cfg,
            LinearMode::LoRa {
                rank: 2,
                alpha: 4.0,
            },
            &mut rng,
        );
        for p in &mut m.params {
            if p.name.ends_with(".lora_b") {
                p.value = Matrix::randn(p.value.rows(), p.value.cols(), &mut rng);
            }
        }
        m
    }

    #[test]
    fn extracts_factors_and_checks_geometry() {
        let m = lora_model(90);
        let ad = LoraAdapter::from_model(&m).unwrap();
        assert_eq!(ad.rank(), 2);
        assert_eq!(ad.num_layers(), m.config().n_layers);
        assert!(ad.memory_bytes() > 0);
        ad.check_compatible(m.config()).unwrap();
        let mut other = m.config().clone();
        other.hidden *= 2;
        assert!(ad.check_compatible(&other).is_err());
    }

    #[test]
    fn dense_model_is_not_an_adapter_source() {
        let cfg = ModelConfig::test_tiny();
        let mut rng = Rng::seed_from_u64(91);
        let dense = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
        assert!(LoraAdapter::from_model(&dense).is_err());
    }

    #[test]
    fn registry_maps_names_and_resolves() {
        let a = LoraAdapter::from_model(&lora_model(92)).unwrap();
        let b = LoraAdapter::from_model(&lora_model(93)).unwrap();
        let reg = AdapterRegistry::resident(vec![("a".into(), a), ("b".into(), b)]);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.id("b"), Some(1));
        assert_eq!(reg.id("zz"), None);
        assert_eq!(reg.resident_count(), 2);
        let got = reg.resolve(1).unwrap();
        assert_eq!(got.rank(), 2);
        assert!(reg.resolve(5).is_err());
    }

    #[test]
    fn loader_registry_evicts_lru_and_reloads() {
        let reg = AdapterRegistry::with_loader(
            vec!["a".into(), "b".into(), "c".into()],
            2,
            Box::new(|name| {
                let seed = name.bytes().map(u64::from).sum::<u64>();
                LoraAdapter::from_model(&lora_model(seed))
            }),
        );
        assert_eq!(reg.resident_count(), 0);
        reg.resolve(0).unwrap();
        reg.resolve(1).unwrap();
        assert_eq!(reg.resident_count(), 2);
        assert_eq!(reg.load_count(), 2);
        assert_eq!(reg.eviction_count(), 0);
        // Touch `a` so `b` is the LRU victim when `c` loads.
        reg.resolve(0).unwrap();
        reg.resolve(2).unwrap();
        assert_eq!(reg.resident_count(), 2);
        assert_eq!(reg.eviction_count(), 1);
        // `b` reloads on demand.
        reg.resolve(1).unwrap();
        assert_eq!(reg.load_count(), 4);
    }
}
