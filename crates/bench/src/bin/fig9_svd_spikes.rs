//! Fig. 9: training-throughput spikes caused by periodic SVD subspace
//! updates in GaLore-type optimizers.
//!
//! Two complementary reproductions:
//! 1. the analytic model at LLaMA-1B scale (what the paper plots), and
//! 2. *measured* per-step wall-clock on the CPU proxy, where GaLore's
//!    Jacobi-SVD refresh produces the same spike pattern for real.
//!
//! The proxy runs stream JSONL traces (`results/fig9_trace_*.jsonl`); the
//! per-step timings are read back from `StepPhases` events, and the GaLore
//! spikes are cross-checked against the `ProjectorRefresh` events recorded
//! by the optimizer itself.

use apollo_bench::{pretrain_run_observed, print_table, results_dir, scaled, write_json, Method};
use apollo_nn::ModelConfig;
use apollo_obs::{read_trace, Obs, TraceEvent};
use apollo_optim::memory::MethodSpec;
use apollo_sysmodel::{Gpu, MemoryOptions, ThroughputModel};
use apollo_train::TrainConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Fig9 {
    modeled_1b_galore_tokens_per_sec: Vec<f64>,
    modeled_1b_apollo_tokens_per_sec: Vec<f64>,
    measured_proxy_galore_ms: Vec<f32>,
    measured_proxy_apollo_ms: Vec<f32>,
    galore_refresh_steps: Vec<usize>,
    galore_optimizer_ms: Vec<f32>,
}

/// Per-step timings recovered from a run's trace.
struct Timings {
    total_ms: Vec<f32>,
    optimizer_ms: Vec<f32>,
    refresh_steps: Vec<usize>,
}

fn traced_timing(method: Method, steps: usize, name: &str) -> Timings {
    let cfg = ModelConfig::tiny_1b();
    let tc = TrainConfig {
        steps,
        lr: method.default_lr(),
        grad_clip: method.grad_clip(),
        record_step_times: true,
        ..TrainConfig::quick(steps)
    };
    let path = results_dir().join(format!("fig9_trace_{name}.jsonl"));
    let obs = Obs::with_trace(&path, 1).expect("open fig9 trace");
    pretrain_run_observed(&cfg, method, steps, 1, 99, Some(tc), &obs);
    drop(obs);
    let mut t = Timings {
        total_ms: Vec::new(),
        optimizer_ms: Vec::new(),
        refresh_steps: Vec::new(),
    };
    for e in &read_trace(&path).expect("fig9 trace must parse") {
        match e {
            TraceEvent::StepPhases {
                total_ms,
                optimizer_ms,
                ..
            } => {
                t.total_ms.push(*total_ms);
                t.optimizer_ms.push(*optimizer_ms);
            }
            TraceEvent::ProjectorRefresh { step, .. } if t.refresh_steps.last() != Some(step) => {
                t.refresh_steps.push(*step);
            }
            _ => {}
        }
    }
    assert_eq!(t.total_ms.len(), steps, "trace missing StepPhases events");
    t
}

fn spike(xs: &[f32]) -> f32 {
    let max = xs.iter().cloned().fold(0.0f32, f32::max);
    max / median(xs)
}

fn median(xs: &[f32]) -> f32 {
    let mut s = xs.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    s[s.len() / 2]
}

fn main() {
    // Part 1: analytic 1B series, refresh every 200 steps as in the figure.
    let model = ThroughputModel::new(&ModelConfig::llama_1b(), Gpu::a100_80g(), 8, 256);
    let opts = MemoryOptions::standard(1, 256);
    let bs = model
        .max_micro_batch(MethodSpec::GaLore { rank: 512 }, &opts)
        .max(1);
    let tokens_per_step = (bs * 256 * 8) as f64;
    let galore_series = model.step_time_series(MethodSpec::GaLore { rank: 512 }, bs, 600, 200);
    let apollo_series = model.step_time_series(MethodSpec::Apollo { rank: 512 }, bs, 600, 200);
    let g_thpt = galore_series.throughput(tokens_per_step);
    let a_thpt = apollo_series.throughput(tokens_per_step);

    // Part 2: measured proxy runs with per-step timing. GaLore refreshes
    // its SVD basis every UPDATE_FREQ steps; shrink the budget so spikes
    // appear several times. (Projector refresh period is fixed at 200, so
    // run ≥ 2.5 windows.)
    let steps = scaled(450).max(410);
    let galore = traced_timing(Method::GaLore, steps, "galore");
    let apollo = traced_timing(Method::Apollo, steps, "apollo");

    print_table(
        "Fig. 9 — SVD-induced step-time spikes",
        &["Series", "Median step", "Max step", "Spike ratio"],
        &[
            vec![
                "1B model (GaLore, modeled s)".into(),
                format!("{:.2}", galore_series.step_seconds[1]),
                format!("{:.2}", galore_series.step_seconds[0]),
                format!(
                    "{:.1}x",
                    galore_series.step_seconds[0] / galore_series.step_seconds[1]
                ),
            ],
            vec![
                "proxy-1B (GaLore, measured ms)".into(),
                format!("{:.0}", median(&galore.total_ms)),
                format!(
                    "{:.0}",
                    galore.total_ms.iter().cloned().fold(0.0f32, f32::max)
                ),
                format!("{:.1}x", spike(&galore.total_ms)),
            ],
            vec![
                "proxy-1B (APOLLO, measured ms)".into(),
                format!("{:.0}", median(&apollo.total_ms)),
                format!(
                    "{:.0}",
                    apollo.total_ms.iter().cloned().fold(0.0f32, f32::max)
                ),
                format!("{:.1}x", spike(&apollo.total_ms)),
            ],
        ],
    );

    // Cross-check: the slowest GaLore *optimizer phase* must land on a step
    // where the trace also recorded a projector refresh — that is the causal
    // claim of the figure, now verified from the trace itself.
    if let Some(worst) = galore
        .optimizer_ms
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
    {
        let aligned = galore.refresh_steps.contains(&worst);
        println!(
            "\nGaLore refresh steps (from trace): {:?}; slowest optimizer phase at step {} ({})",
            galore.refresh_steps,
            worst,
            if aligned {
                "aligned with a refresh"
            } else {
                "NOT aligned — investigate"
            }
        );
    }
    println!("Paper shape: GaLore throughput collapses every T steps; APOLLO stays flat.");
    write_json(
        "fig9_svd_spikes",
        &Fig9 {
            modeled_1b_galore_tokens_per_sec: g_thpt,
            modeled_1b_apollo_tokens_per_sec: a_thpt,
            measured_proxy_galore_ms: galore.total_ms,
            measured_proxy_apollo_ms: apollo.total_ms,
            galore_refresh_steps: galore.refresh_steps,
            galore_optimizer_ms: galore.optimizer_ms,
        },
    );
}
