//! Evolved-vs-static quality measurement: runs the population-based
//! search on the tiny proxy model with the static fig4 grid trained
//! alongside at the same step budget, and records the final perplexities.
//!
//! Prints a table and writes `BENCH_search.json` into the output directory
//! (first positional argument, default `.`). Deliberately **not** part of
//! the `perf_check` baseline set (the checker loads only the kernel /
//! train / infer / serve files): this probe gates on *quality* — the
//! evolved best must end within 1% of the best static configuration —
//! which is deterministic, while its wall-clock column is informational
//! only.
//!
//! Modes: `--smoke` shrinks the population and step budget for CI runs.

use std::time::Instant;

use apollo_obs::Obs;
use apollo_search::{run_search, ModelConfig, SearchConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_dir = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| ".".into());

    let cfg = SearchConfig {
        model: ModelConfig::test_tiny(),
        population: if smoke { 4 } else { 6 },
        rounds: if smoke { 2 } else { 4 },
        round_steps: if smoke { 5 } else { 25 },
        quantile: 0.25,
        seed: 7,
        threads_per_member: 1,
        batch: 4,
        eval_seqs: 16,
        baseline: true,
    };
    let total = cfg.total_steps();
    println!(
        "search quality ({}, population {}, {} rounds x {} steps, seed {})",
        cfg.model.name, cfg.population, cfg.rounds, cfg.round_steps, cfg.seed
    );

    let started = Instant::now();
    let report = run_search(&cfg, &Obs::disabled()).expect("search config is valid");
    let wall = started.elapsed().as_secs_f64();

    println!("{:<44} {:>10}", "configuration", "final ppl");
    let mut static_rows = Vec::new();
    for b in &report.baseline {
        println!("static  {:<36} {:>10.2}", b.label, b.ppl);
        static_rows.push(format!(
            "{{\"label\":{},\"ppl\":{:.4}}}",
            serde_json::to_string(&b.label).expect("string serializes"),
            b.ppl
        ));
    }
    let best_static = report
        .baseline
        .iter()
        .map(|b| b.ppl)
        .fold(f32::INFINITY, f32::min);
    println!(
        "evolved {:<36} {:>10.2}",
        report.best.genome.label(),
        report.best.ppl
    );
    let ratio = report.best.ppl / best_static;
    println!(
        "evolved/static ratio {ratio:.4} | {} lineage events | {:.1}s",
        report.lineage.len(),
        wall
    );
    assert!(
        ratio <= 1.01,
        "evolved best ppl {} worse than 1% over best static {}",
        report.best.ppl,
        best_static
    );

    let json = format!(
        "{{\"model\":\"{}\",\"population\":{},\"rounds\":{},\"round_steps\":{},\
         \"total_steps\":{total},\"seed\":{},\"evolved_ppl\":{:.4},\
         \"evolved_label\":{},\"best_static_ppl\":{best_static:.4},\
         \"evolved_over_static\":{ratio:.4},\"lineage_events\":{},\
         \"static\":[{}],\"wall_secs\":{wall:.2}}}\n",
        cfg.model.name,
        cfg.population,
        cfg.rounds,
        cfg.round_steps,
        cfg.seed,
        report.best.ppl,
        serde_json::to_string(&report.best.genome.label()).expect("string serializes"),
        report.lineage.len(),
        static_rows.join(","),
    );
    let path = std::path::Path::new(&out_dir).join("BENCH_search.json");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    } else {
        println!("wrote {}", path.display());
    }
}
