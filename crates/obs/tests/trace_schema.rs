//! Golden-file test pinning the JSONL trace schema.
//!
//! `golden_trace.jsonl` holds one line per [`TraceEvent`] kind, written by
//! the current serializer. Every line must (1) parse, (2) re-serialize to
//! the identical byte string, and (3) match the event the test constructs
//! in code. A failure here means the on-disk schema changed: update the
//! golden file *and* the consumers (`apollo trace-check`, the figure
//! probes, EXPERIMENTS.md) together.

use apollo_obs::{parse_line, TraceEvent};

const GOLDEN: &str = include_str!("golden_trace.jsonl");

/// The expected event for each golden line, in file order.
fn expected_events() -> Vec<TraceEvent> {
    vec![
        TraceEvent::RunStart {
            step: 0,
            optimizer: "apollo r=16".to_string(),
            model: "tiny-60m".to_string(),
            steps: 150,
        },
        TraceEvent::StepPhases {
            step: 3,
            batch_ms: 0.4,
            forward_ms: 21.5,
            backward_ms: 30.25,
            clip_ms: 0.5,
            optimizer_ms: 4.75,
            checkpoint_ms: 0.0,
            eval_ms: 0.0,
            total_ms: 58.5,
        },
        TraceEvent::StepMetrics {
            step: 3,
            loss: 6.25,
            grad_norm: 1.5,
            lr: 0.01,
        },
        TraceEvent::ScaleSummary {
            step: 3,
            param: "blk0.attn.wq".to_string(),
            min: 0.25,
            median: 1.0,
            max: 2.5,
            channels: 64,
        },
        TraceEvent::ProjectorRefresh {
            step: 200,
            param: "blk0.attn.wq".to_string(),
            kind: "random".to_string(),
            rank: 16,
        },
        TraceEvent::LimiterClip {
            step: 7,
            param: "blk0.mlp.w1".to_string(),
            ratio: 1.25,
        },
        TraceEvent::Sentinel {
            step: 9,
            kind: "clip_non_finite".to_string(),
            action: "zero_step".to_string(),
        },
        TraceEvent::RunEnd {
            step: 150,
            wall_secs: 7.5,
        },
        TraceEvent::InferStep {
            step: 12,
            prefill_rows: 16,
            decode_rows: 3,
            queue_depth: 2,
            active: 4,
            prefill_ms: 3.5,
            decode_ms: 1.25,
            total_ms: 5.0,
        },
        TraceEvent::InferRequest {
            step: 14,
            id: 7,
            prompt_tokens: 16,
            new_tokens: 32,
            tokens_per_sec: 96.0,
            outcome: "done".to_string(),
        },
        TraceEvent::ServeRequest {
            step: 21,
            status: 200,
            latency_ms: 12.5,
            outcome: "done".to_string(),
            in_flight: 3,
        },
        TraceEvent::PrefixCache {
            step: 33,
            lookups: 12,
            hits: 9,
            hit_tokens: 1152,
            cached_bytes: 65536,
            nodes: 5,
            evictions: 1,
        },
        TraceEvent::ServeDrain {
            step: 40,
            in_flight: 2,
            drained: 2,
            forced: 0,
            wall_ms: 37.5,
        },
        TraceEvent::ReplicaEvent {
            step: 18,
            replica: 1,
            event: "kill".to_string(),
            replicas: 3,
        },
        TraceEvent::SearchRound {
            step: 20,
            round: 1,
            population: 4,
            best_member: 2,
            best_ppl: 42.5,
            worst_ppl: 61.25,
            cloned: 1,
        },
        TraceEvent::MemberEvent {
            step: 20,
            member: 3,
            event: "clone".to_string(),
            source: 2,
            ppl: 61.25,
        },
    ]
}

#[test]
fn golden_file_covers_every_event_kind() {
    let kinds: Vec<&str> = expected_events().iter().map(TraceEvent::kind).collect();
    let mut unique = kinds.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), kinds.len(), "duplicate kind in golden set");
    assert_eq!(
        kinds.len(),
        GOLDEN.lines().filter(|l| !l.trim().is_empty()).count(),
        "golden file line count must match the event-kind count"
    );
}

#[test]
fn golden_lines_parse_to_the_expected_events() {
    let expected = expected_events();
    for (line, want) in GOLDEN.lines().zip(&expected) {
        let got = parse_line(line).expect("golden line must parse");
        assert_eq!(&got, want, "schema drift on {}", want.kind());
    }
}

#[test]
fn golden_lines_round_trip_byte_identically() {
    for line in GOLDEN.lines().filter(|l| !l.trim().is_empty()) {
        let event = parse_line(line).expect("golden line must parse");
        let back = serde_json::to_string(&event).expect("serialize");
        assert_eq!(back, line, "re-serialization differs for {}", event.kind());
    }
}

#[test]
fn constructed_events_serialize_to_the_golden_lines() {
    let lines: Vec<&str> = GOLDEN.lines().filter(|l| !l.trim().is_empty()).collect();
    for (event, want) in expected_events().iter().zip(lines) {
        let got = serde_json::to_string(event).expect("serialize");
        assert_eq!(got, want, "serializer drift on {}", event.kind());
    }
}
