//! Perf-regression checker: compares a fresh `BENCH_kernels.json` /
//! `BENCH_train.json` / `BENCH_infer.json` / `BENCH_serve.json` against
//! the committed baseline at the repo root,
//! prints a delta table, and exits non-zero if any matched entry regressed
//! by more than the tolerance.
//!
//! Usage: `perf_check <fresh_dir> [baseline_dir]` (baseline defaults to
//! `.`). Entries are matched on `(shape, kernel)` for kernels and on the
//! optimizer label for training throughput. A baseline entry that the
//! fresh run no longer produces is a failure — a silently dropped
//! benchmark is indistinguishable from an unbounded regression. Fresh
//! entries with no baseline stay non-failing (so adding a shape or an
//! optimizer does not require regenerating the baseline in the same PR).
//!
//! The tolerance is deliberately loose (30%) because the CI box is a noisy
//! shared VM — the gate exists to catch order-of-magnitude regressions
//! (a kernel falling off its fast path), not single-digit drift.

use std::path::Path;
use std::process::ExitCode;

use apollo_bench::perf::{delta_pct, InferReport, KernelReport, ServeReport, TrainReport};

/// Regression tolerance in percent: fail when fresh < (1 - 30%) · baseline.
const TOLERANCE_PCT: f64 = 30.0;

/// Latency tolerance in percent: fail when fresh > (1 + 200%) · baseline,
/// i.e. a 3x tail-latency blowup. Far looser than the throughput gate
/// because single-digit-millisecond tails on a shared CI VM swing with
/// scheduler jitter, while the regression this guards against (a lost
/// admission path, an accidental busy-wait) is orders of magnitude.
const LATENCY_TOLERANCE_PCT: f64 = 200.0;

/// Absolute slack added on top of the relative latency gate: baselines sit
/// in the single-digit milliseconds, where one preempted timeslice on a
/// shared VM exceeds 3x the baseline outright.
const LATENCY_SLACK_MS: f64 = 25.0;

fn load<T: serde::Deserialize>(dir: &str, name: &str) -> Option<T> {
    let path = Path::new(dir).join(name);
    let data = match std::fs::read_to_string(&path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("perf_check: cannot read {}: {e}", path.display());
            return None;
        }
    };
    match serde_json::from_str(&data) {
        Ok(v) => Some(v),
        Err(e) => {
            eprintln!("perf_check: cannot parse {}: {e}", path.display());
            None
        }
    }
}

/// Prints one delta row and returns whether it regressed past tolerance.
fn check_row(label: &str, base: f64, fresh: f64, unit: &str) -> bool {
    let delta = delta_pct(base, fresh);
    let regressed = delta < -TOLERANCE_PCT;
    let flag = if regressed { "  REGRESSED" } else { "" };
    println!("{label:<32} {base:9.2} -> {fresh:9.2} {unit:<9} {delta:+7.1}%{flag}");
    regressed
}

fn check_kernels(fresh_dir: &str, base_dir: &str) -> (usize, usize) {
    let (Some(base), Some(fresh)) = (
        load::<KernelReport>(base_dir, "BENCH_kernels.json"),
        load::<KernelReport>(fresh_dir, "BENCH_kernels.json"),
    ) else {
        return (0, 1);
    };
    println!(
        "== kernels: baseline threads={} ({}), fresh threads={} ({}) ==",
        base.threads, base.mode, fresh.threads, fresh.mode
    );
    let mut regressions = 0;
    let mut matched = 0;
    for b in &base.entries {
        let Some(f) = fresh
            .entries
            .iter()
            .find(|f| f.shape == b.shape && f.kernel == b.kernel)
        else {
            println!(
                "{:<32} (missing from fresh run)  REGRESSED",
                format!("{}/{}", b.shape, b.kernel)
            );
            regressions += 1;
            continue;
        };
        matched += 1;
        let label = format!("{}/{}", b.shape, b.kernel);
        if check_row(&label, b.gflops, f.gflops, "GFLOP/s") {
            regressions += 1;
        }
    }
    for f in &fresh.entries {
        if !base
            .entries
            .iter()
            .any(|b| b.shape == f.shape && b.kernel == f.kernel)
        {
            println!(
                "{:<32} {:9.2} GFLOP/s (new, no baseline)",
                format!("{}/{}", f.shape, f.kernel),
                f.gflops
            );
        }
    }
    (matched, regressions)
}

fn check_train(fresh_dir: &str, base_dir: &str) -> (usize, usize) {
    let (Some(base), Some(fresh)) = (
        load::<TrainReport>(base_dir, "BENCH_train.json"),
        load::<TrainReport>(fresh_dir, "BENCH_train.json"),
    ) else {
        return (0, 1);
    };
    println!(
        "== train ({}): baseline {} steps, fresh {} steps ==",
        fresh.model, base.steps, fresh.steps
    );
    let mut regressions = 0;
    let mut matched = 0;
    for b in &base.entries {
        let Some(f) = fresh.entries.iter().find(|f| f.optimizer == b.optimizer) else {
            println!("{:<32} (missing from fresh run)  REGRESSED", b.optimizer);
            regressions += 1;
            continue;
        };
        matched += 1;
        if check_row(&b.optimizer, b.steps_per_sec, f.steps_per_sec, "steps/s") {
            regressions += 1;
        }
    }
    for f in &fresh.entries {
        if !base.entries.iter().any(|b| b.optimizer == f.optimizer) {
            println!(
                "{:<32} {:9.2} steps/s (new, no baseline)",
                f.optimizer, f.steps_per_sec
            );
        }
    }
    (matched, regressions)
}

fn check_infer(fresh_dir: &str, base_dir: &str) -> (usize, usize) {
    let (Some(base), Some(fresh)) = (
        load::<InferReport>(base_dir, "BENCH_infer.json"),
        load::<InferReport>(fresh_dir, "BENCH_infer.json"),
    ) else {
        return (0, 1);
    };
    println!(
        "== infer ({}): baseline threads={} ({}), fresh threads={} ({}) ==",
        fresh.model, base.threads, base.mode, fresh.threads, fresh.mode
    );
    let mut regressions = 0;
    let mut matched = 0;
    for b in &base.entries {
        let Some(f) = fresh.entries.iter().find(|f| f.metric == b.metric) else {
            println!("{:<32} (missing from fresh run)  REGRESSED", b.metric);
            regressions += 1;
            continue;
        };
        matched += 1;
        if check_row(&b.metric, b.value, f.value, &b.unit) {
            regressions += 1;
        }
    }
    for f in &fresh.entries {
        if !base.entries.iter().any(|b| b.metric == f.metric) {
            println!(
                "{:<32} {:9.2} {} (new, no baseline)",
                f.metric, f.value, f.unit
            );
        }
    }
    (matched, regressions)
}

fn check_serve(fresh_dir: &str, base_dir: &str) -> (usize, usize) {
    let (Some(base), Some(fresh)) = (
        load::<ServeReport>(base_dir, "BENCH_serve.json"),
        load::<ServeReport>(fresh_dir, "BENCH_serve.json"),
    ) else {
        return (0, 1);
    };
    println!(
        "== serve ({}): baseline threads={} ({}), fresh threads={} ({}) ==",
        fresh.model, base.threads, base.mode, fresh.threads, fresh.mode
    );
    let mut regressions = 0;
    let mut matched = 0;
    for b in &base.entries {
        let Some(f) = fresh.entries.iter().find(|f| f.metric == b.metric) else {
            println!("{:<32} (missing from fresh run)  REGRESSED", b.metric);
            regressions += 1;
            continue;
        };
        matched += 1;
        match b.unit.as_str() {
            // Latency: lower is better, gated at a 3x blowup plus
            // absolute slack for timeslice-scale jitter.
            "ms" => {
                let delta = delta_pct(b.value, f.value);
                let regressed =
                    delta > LATENCY_TOLERANCE_PCT && f.value > b.value + LATENCY_SLACK_MS;
                let flag = if regressed { "  REGRESSED" } else { "" };
                println!(
                    "{:<32} {:9.2} -> {:9.2} {:<9} {delta:+7.1}%{flag}",
                    b.metric, b.value, f.value, b.unit
                );
                if regressed {
                    regressions += 1;
                }
            }
            // Memory footprint: lower is better and deterministic (it is
            // a function of model geometry, not machine load), so growth
            // past tolerance is a real regression — a cache over-allocated
            // or a quantized path silently materializing f32 weights.
            "bytes" => {
                let delta = delta_pct(b.value, f.value);
                let regressed = delta > TOLERANCE_PCT;
                let flag = if regressed { "  REGRESSED" } else { "" };
                println!(
                    "{:<32} {:9.0} -> {:9.0} {:<9} {delta:+7.1}%{flag}",
                    b.metric, b.value, f.value, b.unit
                );
                if regressed {
                    regressions += 1;
                }
            }
            // Shed rate under deliberate overload: informational only —
            // it tracks the offered-vs-capacity ratio, not code quality.
            "ratio" => {
                println!(
                    "{:<32} {:9.3} -> {:9.3} {:<9} (informational)",
                    b.metric, b.value, f.value, b.unit
                );
            }
            // Goodput and anything else: higher is better, standard gate.
            _ => {
                if check_row(&b.metric, b.value, f.value, &b.unit) {
                    regressions += 1;
                }
            }
        }
    }
    for f in &fresh.entries {
        if !base.entries.iter().any(|b| b.metric == f.metric) {
            println!(
                "{:<32} {:9.2} {} (new, no baseline)",
                f.metric, f.value, f.unit
            );
        }
    }
    (matched, regressions)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fresh_dir = args.first().map_or(".", String::as_str);
    let base_dir = args.get(1).map_or(".", String::as_str);
    let (km, kr) = check_kernels(fresh_dir, base_dir);
    let (tm, tr) = check_train(fresh_dir, base_dir);
    let (im, ir) = check_infer(fresh_dir, base_dir);
    let (sm, sr) = check_serve(fresh_dir, base_dir);
    let matched = km + tm + im + sm;
    let regressions = kr + tr + ir + sr;
    if matched == 0 {
        eprintln!("perf_check: no comparable entries (missing or unparseable reports)");
        return ExitCode::FAILURE;
    }
    if regressions > 0 {
        eprintln!(
            "perf_check: {regressions} entr{} regressed beyond {TOLERANCE_PCT}% tolerance",
            if regressions == 1 { "y" } else { "ies" }
        );
        return ExitCode::FAILURE;
    }
    println!("perf_check: {matched} entries within {TOLERANCE_PCT}% tolerance");
    ExitCode::SUCCESS
}
