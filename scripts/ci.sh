#!/usr/bin/env bash
# Full offline CI gate: formatting, lints, build, and every test in the
# workspace (including the vendored dependency shims).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
# --workspace so the smoke stages below always run freshly built binaries
# (a bare `cargo build` only builds the root package here).
cargo build --release --workspace

echo "== cargo test (tier-1: root package)"
cargo test -q

echo "== cargo test --workspace"
cargo test -q --workspace

echo "== trace smoke run (pretrain --trace-out + trace-check)"
TRACE_TMP="$(mktemp -d)"
trap 'rm -rf "$TRACE_TMP"' EXIT
./target/release/apollo pretrain --model test-tiny --optimizer apollo \
    --steps 30 --batch 2 --seed 7 \
    --trace-out "$TRACE_TMP/trace.jsonl" --profile
# Every line must parse and each step's phase times must sum to (at most)
# the recorded step total.
./target/release/apollo trace-check --trace "$TRACE_TMP/trace.jsonl"

echo "== generation smoke run (pretrain --save + generate, thread-invariant)"
# Train a throwaway checkpoint, then stream tokens from it twice at
# different kernel thread counts: the KV-cached decode is bit-identical
# across thread counts, so the two outputs must match byte-for-byte.
./target/release/apollo pretrain --model test-tiny --optimizer apollo \
    --steps 10 --batch 2 --seed 7 --save "$TRACE_TMP/gen.ckpt"
GEN_ARGS=(generate --resume "$TRACE_TMP/gen.ckpt" --prompt-ids "5,9,2,14"
          --max-new-tokens 24 --temperature 0.8 --top-k 16 --seed 11)
APOLLO_NUM_THREADS=1 ./target/release/apollo "${GEN_ARGS[@]}" \
    >"$TRACE_TMP/gen1.txt"
APOLLO_NUM_THREADS=4 ./target/release/apollo "${GEN_ARGS[@]}" \
    >"$TRACE_TMP/gen4.txt"
cmp "$TRACE_TMP/gen1.txt" "$TRACE_TMP/gen4.txt"

echo "== fast-numerics smoke (ULP sweep, pretrain loss delta, INT8 decode)"
# The exact-mode stages above are untouched: this stage opts into the
# Fast tier explicitly and checks its three contracts in release mode —
# the per-kernel ULP envelopes vs exact, training-loss parity on a tiny
# pretrain, and end-to-end generation through the quantized backend.
cargo test -q --release -p apollo-tensor --test fast_numerics
cargo test -q --release -p apollo-train --test numerics_fast
cargo test -q --release -p apollo-infer --test quantized_generation
# INT8-decode generation smoke through the CLI: the group-128 INT8
# weights + BF16 KV cache path must stream in-vocab tokens and be
# run-to-run deterministic (seeded sampling, deterministic kernels).
FAST_ARGS=(generate --resume "$TRACE_TMP/gen.ckpt" --prompt-ids "5,9,2,14"
           --max-new-tokens 24 --temperature 0.8 --top-k 16 --seed 11
           --numerics fast --int8-decode)
./target/release/apollo "${FAST_ARGS[@]}" >"$TRACE_TMP/gen_int8_a.txt"
./target/release/apollo "${FAST_ARGS[@]}" >"$TRACE_TMP/gen_int8_b.txt"
cmp "$TRACE_TMP/gen_int8_a.txt" "$TRACE_TMP/gen_int8_b.txt"
[ -s "$TRACE_TMP/gen_int8_a.txt" ] || { echo "int8 generate printed nothing"; exit 1; }

echo "== replica-invariance smoke run (ddp at 1/2/4 replicas, bit-identical)"
# The DDP driver must produce bit-identical losses at every replica count
# (fixed virtual-slot tree reduction). Train the same tiny proxy three
# times and compare the full-bit "final loss" lines byte-for-byte.
for r in 1 2 4; do
    ./target/release/apollo pretrain --model test-tiny --optimizer apollo \
        --steps 12 --batch 4 --seed 7 --replicas "$r" 2>/dev/null \
        | grep '^final loss' >"$TRACE_TMP/ddp$r.txt"
    [ -s "$TRACE_TMP/ddp$r.txt" ] || { echo "ddp run at $r replicas printed no loss"; exit 1; }
done
cmp "$TRACE_TMP/ddp1.txt" "$TRACE_TMP/ddp2.txt"
cmp "$TRACE_TMP/ddp1.txt" "$TRACE_TMP/ddp4.txt"
# Elastic recovery: kill replica 1 mid-run; the survivor must rebalance,
# resume from the crash-safe checkpoints, and land on the same bits.
./target/release/apollo pretrain --model test-tiny --optimizer apollo \
    --steps 12 --batch 4 --seed 7 --replicas 2 --fault-plan kill:6:1 \
    --checkpoint-dir "$TRACE_TMP/ddp-ckpt" --checkpoint-every 4 2>/dev/null \
    >"$TRACE_TMP/ddp-kill.txt"
grep -q 'ddp: 2 replicas started, 1 finished' "$TRACE_TMP/ddp-kill.txt"
grep '^final loss' "$TRACE_TMP/ddp-kill.txt" >"$TRACE_TMP/ddp-kill-loss.txt"
cmp "$TRACE_TMP/ddp1.txt" "$TRACE_TMP/ddp-kill-loss.txt"

echo "== serve smoke run (loopback server + fault-injected loadgen + drain)"
# Bring up the HTTP front-end on a loopback ephemeral port, drive it with
# the deterministic load generator at the default fault mix (slow-loris,
# mid-stream disconnects, malformed requests, bursts), then signal a
# graceful drain. --expect-clean fails on any transport error or any
# fault probe that got the wrong status code; `apollo serve` itself exits
# non-zero if the drain had to force-abandon a request; trace-check
# validates every serve.* event the run emitted.
./target/release/apollo serve --resume "$TRACE_TMP/gen.ckpt" \
    --addr 127.0.0.1:0 --addr-file "$TRACE_TMP/serve.addr" \
    --shutdown-file "$TRACE_TMP/serve.stop" \
    --trace-out "$TRACE_TMP/serve_trace.jsonl" &
SERVE_PID=$!
for _ in $(seq 1 100); do
    [ -f "$TRACE_TMP/serve.addr" ] && break
    sleep 0.1
done
[ -f "$TRACE_TMP/serve.addr" ] || { echo "serve never published its address"; exit 1; }
./target/release/apollo loadgen --addr "$(cat "$TRACE_TMP/serve.addr")" \
    --requests 30 --rate 100 --faults default --expect-clean
touch "$TRACE_TMP/serve.stop"
wait "$SERVE_PID"
./target/release/apollo trace-check --trace "$TRACE_TMP/serve_trace.jsonl"

echo "== multi-tenant serve smoke (3 adapters, prefix cache, /stats)"
# Derive three LoRA adapter checkpoints from the generation checkpoint,
# serve them over the shared base with a radix-tree prefix cache, and
# drive prefix-heavy traffic: 80% of requests open with a shared
# 48-token prefix and every request names one of the three tenants.
# --expect-clean fails on any transport error; the drain report must
# show nonzero prefix-cache hits; trace-check validates the serve.* and
# infer.prefix.* events the run emitted.
for i in 0 1 2; do
    ./target/release/apollo make-adapter --resume "$TRACE_TMP/gen.ckpt" \
        --out "$TRACE_TMP/tenant$i.ckpt" --rank 4 --seed "$((100 + i))"
done
./target/release/apollo serve --resume "$TRACE_TMP/gen.ckpt" \
    --adapters "tenant0=$TRACE_TMP/tenant0.ckpt,tenant1=$TRACE_TMP/tenant1.ckpt,tenant2=$TRACE_TMP/tenant2.ckpt" \
    --prefix-cache-mb 8 \
    --addr 127.0.0.1:0 --addr-file "$TRACE_TMP/mt.addr" \
    --shutdown-file "$TRACE_TMP/mt.stop" \
    --trace-out "$TRACE_TMP/mt_trace.jsonl" 2>"$TRACE_TMP/mt_serve.log" &
MT_PID=$!
for _ in $(seq 1 100); do
    [ -f "$TRACE_TMP/mt.addr" ] && break
    sleep 0.1
done
[ -f "$TRACE_TMP/mt.addr" ] || {
    echo "multi-tenant serve never published its address"
    cat "$TRACE_TMP/mt_serve.log"
    exit 1
}
./target/release/apollo loadgen --addr "$(cat "$TRACE_TMP/mt.addr")" \
    --requests 40 --rate 100 --prompt-len 56 --max-new-tokens 8 \
    --prefix-reuse 0.8 --prefix-len 48 --adapters 3 --expect-clean
# GET /stats over a raw socket: the counters must be live mid-run.
MT_HOST="$(cut -d: -f1 "$TRACE_TMP/mt.addr")"
MT_PORT="$(cut -d: -f2 "$TRACE_TMP/mt.addr")"
exec 3<>"/dev/tcp/$MT_HOST/$MT_PORT"
printf 'GET /stats HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n' "$MT_HOST" >&3
cat <&3 >"$TRACE_TMP/mt_stats.txt"
exec 3<&- 3>&-
grep -q '"prefix_cache"' "$TRACE_TMP/mt_stats.txt"
grep -q '"adapters"' "$TRACE_TMP/mt_stats.txt"
touch "$TRACE_TMP/mt.stop"
wait "$MT_PID"
# Drain report: the prefix cache must have served real hits.
grep -Eq 'infer\.prefix\.hits +[1-9]' "$TRACE_TMP/mt_serve.log" || {
    echo "multi-tenant run recorded no prefix-cache hits"
    cat "$TRACE_TMP/mt_serve.log"
    exit 1
}
./target/release/apollo trace-check --trace "$TRACE_TMP/mt_trace.jsonl"

echo "== search smoke run (PBT determinism: byte-identical frontier + trace)"
# Two identical seeded population-based searches must produce byte-identical
# frontier JSON and identical trace-event sequences — the determinism
# contract in DESIGN.md. trace-check then validates the SearchRound /
# MemberEvent stream the run emitted.
SEARCH_ARGS=(search --population 4 --rounds 2 --round-steps 5 --batch 2
             --eval-seqs 8 --seed 7 --quantile 0.25)
./target/release/apollo "${SEARCH_ARGS[@]}" \
    --out "$TRACE_TMP/frontier_a.json" --trace-out "$TRACE_TMP/search_a.jsonl"
./target/release/apollo "${SEARCH_ARGS[@]}" \
    --out "$TRACE_TMP/frontier_b.json" --trace-out "$TRACE_TMP/search_b.jsonl"
cmp "$TRACE_TMP/frontier_a.json" "$TRACE_TMP/frontier_b.json"
cmp "$TRACE_TMP/search_a.jsonl" "$TRACE_TMP/search_b.jsonl"
./target/release/apollo trace-check --trace "$TRACE_TMP/search_a.jsonl"

echo "== fused-kernel bit-identity (release mode)"
# The fused single-pass kernels must stay bitwise equal to the staged
# references at every thread count. Debug-mode runs are covered by the
# workspace suite above; release mode is what the benches and users run,
# and is where the vectorizer could legally diverge if a kernel broke the
# float-op-order contract.
cargo test -q --release -p apollo-tensor --test fused_equivalence
cargo test -q --release -p apollo-autograd training_loop_fused

echo "== bench smoke + perf regression check (vs committed baseline)"
# Fresh smoke-mode numbers land in a temp dir and are compared against the
# committed BENCH_*.json at the repo root; perf_check fails the gate on a
# >30% throughput regression for any (shape, kernel) — including the
# fused_*/unfused_* fused-section pairs — optimizer, or inference-metric
# entry, and on any baseline entry missing from the fresh run.
#
# Every entry is measured in two independent sweeps and max-merged
# (--merge) before the check, with one retry sweep on failure: a
# CPU-steal burst on a shared CI box poisons one sweep but does not
# repeat across all of them, while a genuine regression poisons every
# sweep and still fails the merged numbers.
cargo build --release -p apollo-bench --bin perf_kernels --bin perf_infer \
    --bin perf_serve --bin perf_check
BENCH_TMP="$(mktemp -d)"
trap 'rm -rf "$TRACE_TMP" "$BENCH_TMP"' EXIT
run_bench_sweep() {
    APOLLO_NUM_THREADS="${APOLLO_NUM_THREADS:-1}" \
        ./target/release/perf_kernels --smoke "$@" "$BENCH_TMP"
    APOLLO_NUM_THREADS="${APOLLO_NUM_THREADS:-1}" \
        ./target/release/perf_infer --smoke "$@" "$BENCH_TMP"
    APOLLO_NUM_THREADS="${APOLLO_NUM_THREADS:-1}" \
        ./target/release/perf_serve --smoke "$@" "$BENCH_TMP"
}
run_bench_sweep
run_bench_sweep --merge
if ! ./target/release/perf_check "$BENCH_TMP" .; then
    echo "== bench check failed once; re-sweeping (transient load vs real regression)"
    run_bench_sweep --merge
    ./target/release/perf_check "$BENCH_TMP" .
fi

echo "CI green."
