//! Minimal `--flag value` argument parsing (no external dependencies).

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` flags.
#[derive(Debug, Clone)]
pub struct Args {
    /// The first positional argument.
    pub command: String,
    flags: HashMap<String, String>,
}

impl Args {
    /// Parses `args` (excluding the program name).
    ///
    /// A flag followed by another `--flag` (or by nothing) is treated as a
    /// boolean switch and stored as `"true"`, so `--resume` works without
    /// a value.
    ///
    /// # Errors
    ///
    /// Returns a message if no subcommand is present or an argument is not
    /// a flag.
    pub fn parse(args: &[String]) -> Result<Args, String> {
        let mut it = args.iter().peekable();
        let command = it.next().ok_or("missing subcommand")?.clone();
        let mut flags = HashMap::new();
        while let Some(key) = it.next() {
            let Some(name) = key.strip_prefix("--") else {
                return Err(format!("expected --flag, got `{key}`"));
            };
            let value = match it.peek() {
                Some(next) if !next.starts_with("--") => it.next().unwrap().clone(),
                _ => "true".to_string(),
            };
            flags.insert(name.to_string(), value);
        }
        Ok(Args { command, flags })
    }

    /// String flag with a default.
    pub fn get(&self, name: &str, default: &str) -> String {
        self.flags
            .get(name)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Required string flag.
    pub fn require(&self, name: &str) -> Result<String, String> {
        self.flags
            .get(name)
            .cloned()
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// Parsed numeric flag with a default.
    ///
    /// # Errors
    ///
    /// Returns a message if the value does not parse.
    pub fn get_num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag --{name}: cannot parse `{v}`")),
        }
    }

    /// Whether a flag was provided at all.
    pub fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(xs: &[&str]) -> Vec<String> {
        xs.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let a = Args::parse(&strs(&["pretrain", "--steps", "100", "--lr", "0.01"])).unwrap();
        assert_eq!(a.command, "pretrain");
        assert_eq!(a.get_num::<usize>("steps", 0).unwrap(), 100);
        assert_eq!(a.get_num::<f32>("lr", 0.0).unwrap(), 0.01);
        assert_eq!(a.get("model", "tiny-60m"), "tiny-60m");
    }

    #[test]
    fn valueless_flags_parse_as_boolean_switches() {
        let a = Args::parse(&strs(&["pretrain", "--resume", "--steps", "10"])).unwrap();
        assert!(a.has("resume"));
        assert_eq!(a.get("resume", "false"), "true");
        assert_eq!(a.get_num::<usize>("steps", 0).unwrap(), 10);
        let b = Args::parse(&strs(&["pretrain", "--resume"])).unwrap();
        assert!(b.has("resume"));
    }

    #[test]
    fn negative_numbers_are_values_not_flags() {
        let a = Args::parse(&strs(&["x", "--lr", "-0.5"])).unwrap();
        assert_eq!(a.get_num::<f32>("lr", 0.0).unwrap(), -0.5);
    }

    #[test]
    fn bad_number_is_an_error() {
        let a = Args::parse(&strs(&["x", "--steps", "abc"])).unwrap();
        assert!(a.get_num::<usize>("steps", 0).is_err());
    }

    #[test]
    fn require_reports_missing_flags() {
        let a = Args::parse(&strs(&["x"])).unwrap();
        assert!(a.require("checkpoint").is_err());
    }
}
