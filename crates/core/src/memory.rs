//! Closed-form optimizer-state memory model (Table 1 of the paper).
//!
//! For a projectable `m × n` weight (`m ≤ n` after orientation) and rank
//! `r`, the per-tensor optimizer state element counts are:
//!
//! | Method | State elements |
//! |---|---|
//! | AdamW | `2mn` |
//! | SGD | `0` |
//! | SGD-M | `mn` |
//! | APOLLO | `2nr + 2` |
//! | APOLLO-Mini | `2n + 2` |
//! | APOLLO w. SVD | `mr + 2nr + 1` |
//! | GaLore | `mr + 2nr` |
//! | GaLore w. RP / Flora | `2nr + 1` |
//! | Fira | `mr + 2nr + 1` |
//!
//! Non-projectable tensors (norm gains, embeddings) always carry dense
//! AdamW state under the Adam-family methods, as in the official
//! implementations.
//!
//! The unit tests in this module assert that the *live* optimizers'
//! [`crate::Optimizer::state_elems`] agree with these formulas, and
//! `apollo-sysmodel` builds its GB-level breakdowns (Fig. 1, Table 2 memory
//! columns) on top of them.

use serde::{Deserialize, Serialize};

/// A training method whose optimizer-state footprint can be predicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MethodSpec {
    /// Full-precision AdamW.
    AdamW,
    /// AdamW with INT8 moments (affects bytes, not element count).
    Adam8bit,
    /// Adam-mini: full momentum + one second-moment scalar per channel.
    AdamMini,
    /// Plain SGD (no state).
    Sgd,
    /// SGD with momentum.
    SgdMomentum,
    /// APOLLO with random projection at the given rank.
    Apollo {
        /// Auxiliary-space rank.
        rank: usize,
    },
    /// APOLLO with SVD projection at the given rank.
    ApolloSvd {
        /// Auxiliary-space rank.
        rank: usize,
    },
    /// APOLLO-Mini (rank 1, tensor-wise scaling).
    ApolloMini,
    /// GaLore with SVD projection.
    GaLore {
        /// Projection rank.
        rank: usize,
    },
    /// GaLore with INT8 moments.
    GaLore8bit {
        /// Projection rank.
        rank: usize,
    },
    /// Fira (GaLore + residual + limiter scalar).
    Fira {
        /// Projection rank.
        rank: usize,
    },
    /// Flora / GaLore-with-random-projection (seed-only subspace).
    Flora {
        /// Projection rank.
        rank: usize,
    },
}

impl MethodSpec {
    /// Optimizer-state elements for one weight tensor of shape
    /// `(rows, cols)`. `projectable` marks 2-D attention/MLP weights.
    pub fn state_elems_for(&self, rows: usize, cols: usize, projectable: bool) -> usize {
        let (m, n) = (rows.min(cols), rows.max(cols));
        let dense_adam = 2 * rows * cols;
        if !projectable || m <= 1 {
            return match self {
                MethodSpec::Sgd => 0,
                MethodSpec::SgdMomentum => rows * cols,
                MethodSpec::AdamMini => rows * cols + rows.max(cols).min(rows * cols),
                _ => dense_adam,
            };
        }
        let clamp = |r: usize| r.min(m);
        match *self {
            MethodSpec::AdamW | MethodSpec::Adam8bit => dense_adam,
            MethodSpec::AdamMini => m * n + n,
            MethodSpec::Sgd => 0,
            MethodSpec::SgdMomentum => m * n,
            MethodSpec::Apollo { rank } => 2 * n * clamp(rank) + 2,
            MethodSpec::ApolloSvd { rank } => {
                let r = clamp(rank);
                m * r + 2 * n * r + 1
            }
            MethodSpec::ApolloMini => 2 * n + 2,
            MethodSpec::GaLore { rank } | MethodSpec::GaLore8bit { rank } => {
                let r = clamp(rank);
                m * r + 2 * n * r
            }
            MethodSpec::Fira { rank } => {
                let r = clamp(rank);
                m * r + 2 * n * r + 1
            }
            MethodSpec::Flora { rank } => 2 * n * clamp(rank) + 1,
        }
    }

    /// Total optimizer-state elements over a model's weight inventory.
    ///
    /// `shapes` is `(rows, cols, projectable)` per tensor.
    pub fn state_elems(&self, shapes: &[(usize, usize, bool)]) -> usize {
        shapes
            .iter()
            .map(|&(r, c, p)| self.state_elems_for(r, c, p))
            .sum()
    }

    /// Bytes per state element: 1 for INT8-moment methods, 4 otherwise.
    /// (Group-scale overhead is ignored here; the live optimizers report
    /// it exactly via `state_bytes`.)
    pub fn bytes_per_state_elem(&self) -> f64 {
        match self {
            MethodSpec::Adam8bit | MethodSpec::GaLore8bit { .. } => 1.0,
            _ => 4.0,
        }
    }

    /// Total optimizer-state bytes over a model's weight inventory.
    pub fn state_bytes(&self, shapes: &[(usize, usize, bool)]) -> f64 {
        self.state_elems(shapes) as f64 * self.bytes_per_state_elem()
    }

    /// Display name matching the paper's tables.
    pub fn label(&self) -> String {
        match *self {
            MethodSpec::AdamW => "AdamW".into(),
            MethodSpec::AdamMini => "Adam-mini".into(),
            MethodSpec::Adam8bit => "8-bit Adam".into(),
            MethodSpec::Sgd => "SGD".into(),
            MethodSpec::SgdMomentum => "SGD-M".into(),
            MethodSpec::Apollo { rank } => format!("APOLLO(r={rank})"),
            MethodSpec::ApolloSvd { rank } => format!("APOLLO w. SVD(r={rank})"),
            MethodSpec::ApolloMini => "APOLLO-Mini".into(),
            MethodSpec::GaLore { rank } => format!("GaLore(r={rank})"),
            MethodSpec::GaLore8bit { rank } => format!("8-bit GaLore(r={rank})"),
            MethodSpec::Fira { rank } => format!("Fira(r={rank})"),
            MethodSpec::Flora { rank } => format!("Flora(r={rank})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Apollo, Fira, Flora, GaLore, Optimizer, ParamUpdate, Sgd, SgdMomentum};
    use apollo_tensor::Matrix;

    const M: usize = 8;
    const N: usize = 32;
    const R: usize = 4;

    fn live_state(opt: &mut dyn Optimizer, projectable: bool) -> usize {
        let mut w = Matrix::zeros(M, N);
        let g = Matrix::full(M, N, 1.0);
        opt.step(
            &mut [ParamUpdate {
                name: "w",
                value: &mut w,
                grad: &g,
                projectable,
            }],
            0.01,
        );
        opt.state_elems()
    }

    #[test]
    fn formulas_match_live_optimizers_on_projectable_tensor() {
        let shapes = [(M, N, true)];
        let cases: Vec<(MethodSpec, usize)> = vec![
            (
                MethodSpec::AdamW,
                live_state(&mut crate::AdamW::new(), true),
            ),
            (MethodSpec::Sgd, live_state(&mut Sgd::new(), true)),
            (
                MethodSpec::SgdMomentum,
                live_state(&mut SgdMomentum::new(0.9), true),
            ),
            (
                MethodSpec::Apollo { rank: R },
                live_state(&mut Apollo::new(R, 100), true),
            ),
            (
                MethodSpec::ApolloSvd { rank: R },
                live_state(&mut Apollo::new(R, 100).with_svd(), true),
            ),
            (
                MethodSpec::ApolloMini,
                live_state(&mut Apollo::mini(100), true),
            ),
            (
                MethodSpec::GaLore { rank: R },
                live_state(&mut GaLore::new(R, 100), true),
            ),
            (
                MethodSpec::Fira { rank: R },
                live_state(&mut Fira::new(R, 100), true),
            ),
            (
                MethodSpec::Flora { rank: R },
                live_state(&mut Flora::new(R, 100), true),
            ),
        ];
        for (spec, live) in cases {
            assert_eq!(
                spec.state_elems(&shapes),
                live,
                "Table 1 mismatch for {}",
                spec.label()
            );
        }
    }

    #[test]
    fn non_projectable_tensors_get_dense_adam_state() {
        let spec = MethodSpec::Apollo { rank: R };
        assert_eq!(spec.state_elems_for(M, N, false), 2 * M * N);
        let live = live_state(&mut Apollo::new(R, 100), false);
        assert_eq!(live, 2 * M * N);
    }

    #[test]
    fn apollo_mini_is_cheapest_adam_family_method() {
        let shapes = [(M, N, true)];
        let mini = MethodSpec::ApolloMini.state_elems(&shapes);
        for spec in [
            MethodSpec::AdamW,
            MethodSpec::Apollo { rank: R },
            MethodSpec::GaLore { rank: R },
            MethodSpec::Fira { rank: R },
            MethodSpec::Flora { rank: R },
        ] {
            assert!(
                mini < spec.state_elems(&shapes),
                "Mini not below {}",
                spec.label()
            );
        }
        // ...and within a whisker of SGD.
        assert!(mini < M * N / 2);
    }

    #[test]
    fn rank_is_clamped_to_small_dim() {
        let spec = MethodSpec::GaLore { rank: 1000 };
        // r clamps to m = 8.
        assert_eq!(spec.state_elems_for(M, N, true), M * M + 2 * N * M);
    }

    #[test]
    fn orientation_is_symmetric() {
        let spec = MethodSpec::Apollo { rank: R };
        assert_eq!(
            spec.state_elems_for(M, N, true),
            spec.state_elems_for(N, M, true)
        );
    }

    #[test]
    fn bytes_account_for_int8() {
        let shapes = [(M, N, true)];
        let full = MethodSpec::AdamW.state_bytes(&shapes);
        let eight = MethodSpec::Adam8bit.state_bytes(&shapes);
        assert!((full / eight - 4.0).abs() < 1e-9);
    }
}
