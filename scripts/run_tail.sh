#!/bin/sh
# Remaining artifacts after table2, at trimmed scales for the time budget.
set -x
run() {
  bin=$1; scale=$2
  APOLLO_SCALE=$scale cargo run -q --release -p apollo-bench --bin "$bin" \
    > "results/logs/$bin.log" 2>&1
}
run fig5_projection_rank 0.7
run table3_llama7b 1
run fig2_llama7b 1
run fig3_structured_lr 1
run fig4_ratio 1
run fig6_curves 0.7
run fig9_svd_spikes 1
run table4_commonsense 0.8
run table6_quantized 0.6
run table7_granularity 0.6
run table5_mmlu 0.8
run fig7_longcontext 0.7
run ablations 0.7
