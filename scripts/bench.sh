#!/usr/bin/env bash
# Reproducible performance benchmark: emits BENCH_kernels.json,
# BENCH_train.json, BENCH_infer.json, BENCH_serve.json, BENCH_ddp.json,
# and BENCH_search.json at the repo root.
#
# Usage: scripts/bench.sh [--smoke]
#
# The kernel thread count is pinned (default 1) so numbers are comparable
# across machines and runs; override with APOLLO_NUM_THREADS=<n>.
#
# BENCH_ddp.json is committed for reference but deliberately exempt from
# the perf_check gate: replica scaling on a shared CI box is too noisy to
# gate on (see crates/bench/src/bin/perf_ddp.rs). BENCH_search.json is
# likewise exempt (perf_check loads only the kernel/train/infer/serve
# files): perf_search gates on the deterministic evolved-vs-static quality
# ratio internally, and its wall-clock column is informational only.
set -euo pipefail
cd "$(dirname "$0")/.."

export APOLLO_NUM_THREADS="${APOLLO_NUM_THREADS:-1}"

cargo build --release -p apollo-bench --bin perf_kernels --bin perf_infer \
    --bin perf_serve --bin perf_ddp --bin perf_search
./target/release/perf_kernels "$@" .
./target/release/perf_infer "$@" .
./target/release/perf_serve "$@" .
./target/release/perf_ddp "$@" .
./target/release/perf_search "$@" .
