//! Checkpointing: weight-only model snapshots (v1) and crash-safe full
//! training-state checkpoints (v2).
//!
//! Both versions share the same outer shape — a JSON metadata header
//! (magic, format version, [`ModelConfig`], [`LinearMode`], parameter
//! manifest) followed by raw little-endian f32 parameter data in manifest
//! order — read and written in bulk, never element-at-a-time.
//!
//! **v2** additionally carries everything needed to resume a run
//! *bit-exactly*: the full optimizer state (via
//! [`apollo_optim::Optimizer::state_save`]), the data-loader cursor, the
//! merge-RNG state, the LR backoff scale, the spike-detector window, and
//! the cumulative [`ResilienceReport`]. Every v2 section (header, params,
//! optimizer) ends with a CRC32, writes go through a temp file renamed
//! into place (crash-safe: a torn write never shadows a good checkpoint),
//! and [`latest_valid_checkpoint`] scans a directory skipping corrupt or
//! truncated files until it finds one that validates.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use apollo_nn::{LinearMode, LlamaModel, ModelConfig};
use apollo_optim::state::{extend_f32_le, f32_from_le};
use apollo_tensor::{Matrix, Rng};
use serde::{Deserialize, Serialize};

use crate::resilience::ResilienceReport;

const MAGIC: &str = "apollo-checkpoint";
const V1: u32 = 1;
const V2: u32 = 2;
/// No sane JSON header exceeds this.
const MAX_HEADER: u64 = 16 << 20;
/// Upper bound for param/optimizer sections (guards `vec![0; len]` on
/// garbage length prefixes).
const MAX_SECTION: u64 = 4 << 30;

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, the zlib polynomial), table-driven.

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Headers.

#[derive(Serialize, Deserialize)]
struct Header {
    magic: String,
    version: u32,
    config: ModelConfig,
    mode: LinearMode,
    /// `(name, rows, cols)` in storage order.
    manifest: Vec<(String, usize, usize)>,
}

#[derive(Serialize, Deserialize)]
struct HeaderV2 {
    magic: String,
    version: u32,
    config: ModelConfig,
    mode: LinearMode,
    manifest: Vec<(String, usize, usize)>,
    train: TrainMeta,
}

/// Training-loop state carried by a v2 checkpoint alongside the weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainMeta {
    /// The next optimizer step to execute on resume.
    pub step: u64,
    /// Data-loader cursor ([`apollo_data::LmBatcher::cursor`]).
    pub data_cursor: u64,
    /// xoshiro256++ state words of the ReLoRA merge RNG.
    pub rng_state: Vec<u64>,
    /// Cached spare Gaussian of the merge RNG, as f32 bits.
    pub rng_spare: Option<u32>,
    /// Cumulative LR scale from `RollbackAndRetry` backoffs.
    pub lr_scale: f32,
    /// Spike-detector rolling window, oldest first.
    pub spike_window: Vec<f32>,
    /// Resilience counters accumulated so far.
    pub report: ResilienceReport,
}

/// A fully-loaded v2 checkpoint: model, topology mode, training metadata,
/// and the serialized optimizer state.
#[derive(Debug)]
pub struct TrainState {
    /// The reconstructed model with checkpointed weights.
    pub model: LlamaModel,
    /// Linear-layer mode the run was using.
    pub mode: LinearMode,
    /// Loop state (step, cursor, RNG, resilience counters).
    pub meta: TrainMeta,
    /// Opaque optimizer state for [`apollo_optim::Optimizer::state_load`].
    pub optimizer: Vec<u8>,
}

impl TrainState {
    /// Serializes this state to the v2 checkpoint byte format, entirely in
    /// memory. The bytes are exactly what [`save_train_state`] would write
    /// to disk, so a blob can be handed to [`TrainState::from_blob`] (e.g.
    /// population-based-search cloning) or persisted verbatim.
    ///
    /// # Errors
    ///
    /// Returns an error if the header fails to serialize.
    pub fn to_blob(&self) -> io::Result<Vec<u8>> {
        train_state_blob(&self.model, self.mode, &self.meta, &self.optimizer)
    }

    /// Parses a v2 checkpoint blob produced by [`TrainState::to_blob`] (or
    /// read verbatim from a [`save_train_state`] file), validating every
    /// section's framing and CRC against the blob's actual length.
    ///
    /// # Errors
    ///
    /// Returns a descriptive error if the blob is truncated, any section's
    /// checksum fails, the header is not v2, or the manifest is
    /// inconsistent.
    pub fn from_blob(bytes: &[u8]) -> io::Result<TrainState> {
        let mut remaining = bytes.len() as u64;
        let mut r = bytes;
        let head = read_section(&mut r, "header", MAX_HEADER, &mut remaining)?;
        let header: HeaderV2 = serde_json::from_slice(&head).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("not a v2 checkpoint: {e}"),
            )
        })?;
        if header.magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a checkpoint",
            ));
        }
        if header.version != V2 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected a v2 checkpoint, found version {}", header.version),
            ));
        }
        let mut model = LlamaModel::new(&header.config, header.mode, &mut Rng::seed_from_u64(0));
        let body = read_section(&mut r, "params", MAX_SECTION, &mut remaining)?;
        fill_params(&mut model, &header.manifest, &body)?;
        let optimizer = read_section(&mut r, "optimizer", MAX_SECTION, &mut remaining)?;
        Ok(TrainState {
            model,
            mode: header.mode,
            meta: header.train,
            optimizer,
        })
    }
}

/// Serializes a full training state to the v2 framed byte format (header,
/// params, optimizer — each `u64 len | bytes | u32 crc`) without touching
/// disk. [`save_train_state`] writes exactly these bytes atomically.
///
/// # Errors
///
/// Returns an error if the header fails to serialize.
pub fn train_state_blob(
    model: &LlamaModel,
    mode: LinearMode,
    meta: &TrainMeta,
    optimizer: &[u8],
) -> io::Result<Vec<u8>> {
    let header = HeaderV2 {
        magic: MAGIC.to_string(),
        version: V2,
        config: model.config().clone(),
        mode,
        manifest: manifest_of(model),
        train: meta.clone(),
    };
    let head = serde_json::to_vec(&header).map_err(io::Error::other)?;
    let body = params_bytes(model);
    let mut out = Vec::with_capacity(head.len() + body.len() + optimizer.len() + 36);
    write_section(&mut out, &head)?;
    write_section(&mut out, &body)?;
    write_section(&mut out, optimizer)?;
    Ok(out)
}

// ---------------------------------------------------------------------------
// Section framing (v2): u64 length | bytes | u32 crc.

fn write_section(w: &mut impl Write, bytes: &[u8]) -> io::Result<()> {
    w.write_all(&(bytes.len() as u64).to_le_bytes())?;
    w.write_all(bytes)?;
    w.write_all(&crc32(bytes).to_le_bytes())
}

/// Reads one framed section. `remaining` is the number of bytes left in
/// the file *before* this section's length prefix; it is decremented by
/// everything the section consumes. The length prefix is validated against
/// both the hard `max` and `remaining` **before** the payload buffer is
/// allocated, so a truncated or bit-flipped prefix can never demand an
/// allocation larger than the file itself — it routes to the
/// corrupt-checkpoint error path instead.
fn read_section(
    r: &mut impl Read,
    what: &str,
    max: u64,
    remaining: &mut u64,
) -> io::Result<Vec<u8>> {
    let mut len8 = [0u8; 8];
    r.read_exact(&mut len8)?;
    let len = u64::from_le_bytes(len8);
    if len > max {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{what} section claims {len} bytes (limit {max})"),
        ));
    }
    // 8-byte length prefix + payload + 4-byte CRC must fit in what's left.
    let budget = remaining.saturating_sub(8 + 4);
    if len > budget {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{what} section claims {len} bytes but only {budget} remain in the file"),
        ));
    }
    *remaining -= 8 + len + 4;
    let mut bytes = vec![0u8; len as usize];
    r.read_exact(&mut bytes)?;
    let mut crc4 = [0u8; 4];
    r.read_exact(&mut crc4)?;
    let stored = u32::from_le_bytes(crc4);
    let computed = crc32(&bytes);
    if stored != computed {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "{what} section checksum mismatch (stored {stored:08x}, computed {computed:08x})"
            ),
        ));
    }
    Ok(bytes)
}

fn manifest_of(model: &LlamaModel) -> Vec<(String, usize, usize)> {
    model
        .params
        .iter()
        .map(|p| (p.name.clone(), p.value.rows(), p.value.cols()))
        .collect()
}

/// All parameters as one raw little-endian f32 buffer, manifest order.
fn params_bytes(model: &LlamaModel) -> Vec<u8> {
    let total: usize = model.params.iter().map(|p| p.value.len()).sum();
    let mut out = Vec::with_capacity(total * 4);
    for p in &model.params {
        extend_f32_le(&mut out, p.value.as_slice());
    }
    out
}

/// Fills `model`'s parameters from `bytes` in `manifest` order, validating
/// names and shapes.
fn fill_params(
    model: &mut LlamaModel,
    manifest: &[(String, usize, usize)],
    bytes: &[u8],
) -> io::Result<()> {
    let expected: usize = manifest.iter().map(|(_, r, c)| r * c * 4).sum();
    if bytes.len() != expected {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "parameter payload is {} bytes, manifest expects {expected}",
                bytes.len()
            ),
        ));
    }
    let mut off = 0;
    for (name, rows, cols) in manifest {
        let n = rows * cols * 4;
        let data = f32_from_le(&bytes[off..off + n]).map_err(io::Error::other)?;
        off += n;
        let param = model
            .params
            .iter_mut()
            .find(|p| &p.name == name)
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, format!("unknown param {name}"))
            })?;
        if param.value.shape() != (*rows, *cols) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("shape mismatch for {name}"),
            ));
        }
        param.value = Matrix::from_vec(*rows, *cols, data);
    }
    Ok(())
}

/// Writes `bytes` to `path` atomically: a sibling temp file is written,
/// flushed, and renamed into place, so a crash mid-write can never leave a
/// torn file under the final name.
fn atomic_write(
    path: &Path,
    write: impl FnOnce(&mut BufWriter<File>) -> io::Result<()>,
) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    let mut w = BufWriter::new(File::create(&tmp)?);
    write(&mut w)?;
    w.flush()?;
    w.into_inner().map_err(|e| e.into_error())?.sync_all()?;
    std::fs::rename(&tmp, path)
}

// ---------------------------------------------------------------------------
// v1: weight-only snapshots.

/// Saves a weight-only (v1) model snapshot to `path`, atomically.
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
pub fn save_model(model: &LlamaModel, mode: LinearMode, path: &Path) -> io::Result<()> {
    let header = Header {
        magic: MAGIC.to_string(),
        version: V1,
        config: model.config().clone(),
        mode,
        manifest: manifest_of(model),
    };
    let head = serde_json::to_vec(&header).map_err(io::Error::other)?;
    let body = params_bytes(model);
    atomic_write(path, |w| {
        w.write_all(&(head.len() as u64).to_le_bytes())?;
        w.write_all(&head)?;
        w.write_all(&body)
    })
}

/// Loads the model from a checkpoint saved by [`save_model`] (v1) **or**
/// [`save_train_state`] (v2, optimizer state ignored).
///
/// # Errors
///
/// Returns an error if the file is unreadable, the magic/version/checksum
/// mismatch, or any parameter is missing or has the wrong shape.
pub fn load_model(path: &Path) -> io::Result<LlamaModel> {
    let file_len = std::fs::metadata(path)?.len();
    let mut r = BufReader::new(File::open(path)?);
    let mut len8 = [0u8; 8];
    r.read_exact(&mut len8)?;
    let head_len = u64::from_le_bytes(len8);
    if head_len > MAX_HEADER.min(file_len.saturating_sub(8)) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a checkpoint",
        ));
    }
    let mut head = vec![0u8; head_len as usize];
    r.read_exact(&mut head)?;
    let header: Header = serde_json::from_slice(&head).map_err(io::Error::other)?;
    if header.magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a checkpoint",
        ));
    }
    let mut model = LlamaModel::new(&header.config, header.mode, &mut Rng::seed_from_u64(0));
    match header.version {
        V1 => {
            // Raw params follow the header directly, no framing. The total
            // comes from the (attacker-controllable) manifest, so cap it
            // against the bytes actually present before allocating.
            let total: usize = header.manifest.iter().map(|(_, r, c)| r * c * 4).sum();
            let body_budget = file_len.saturating_sub(8 + head_len);
            if total as u64 > body_budget {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("manifest expects {total} body bytes, file holds {body_budget}"),
                ));
            }
            let mut body = vec![0u8; total];
            r.read_exact(&mut body)?;
            fill_params(&mut model, &header.manifest, &body)?;
        }
        V2 => {
            // The v2 header is itself CRC-framed; skip its trailing CRC,
            // then read the checksummed params section.
            let mut crc4 = [0u8; 4];
            r.read_exact(&mut crc4)?;
            if u32::from_le_bytes(crc4) != crc32(&head) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "header section checksum mismatch",
                ));
            }
            let mut remaining = file_len.saturating_sub(8 + head_len + 4);
            let body = read_section(&mut r, "params", MAX_SECTION, &mut remaining)?;
            fill_params(&mut model, &header.manifest, &body)?;
        }
        v => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported checkpoint version {v}"),
            ));
        }
    }
    Ok(model)
}

// ---------------------------------------------------------------------------
// v2: full training state.

/// Saves a crash-safe full-state (v2) checkpoint: weights + optimizer
/// state + loop metadata, every section CRC32-checksummed, written
/// atomically via temp-file + rename.
///
/// # Errors
///
/// Returns any serialization or I/O error; on error the final `path` is
/// untouched.
pub fn save_train_state(
    model: &LlamaModel,
    mode: LinearMode,
    meta: &TrainMeta,
    optimizer: &[u8],
    path: &Path,
) -> io::Result<()> {
    let blob = train_state_blob(model, mode, meta, optimizer)?;
    atomic_write(path, |w| w.write_all(&blob))
}

/// Loads a full-state (v2) checkpoint saved by [`save_train_state`].
///
/// # Errors
///
/// Returns a descriptive error if the file is truncated, any section's
/// checksum fails, the header is not v2, or the manifest is inconsistent.
pub fn load_train_state(path: &Path) -> io::Result<TrainState> {
    TrainState::from_blob(&std::fs::read(path)?)
}

/// The canonical file name for the checkpoint taken before `step`.
pub fn checkpoint_file_name(step: u64) -> String {
    format!("step-{step:08}.ckpt")
}

fn checkpoint_step(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let digits = name.strip_prefix("step-")?.strip_suffix(".ckpt")?;
    digits.parse().ok()
}

/// Scans `dir` for `step-*.ckpt` files and loads the newest one that
/// validates end-to-end, skipping corrupt or truncated candidates. Returns
/// `Ok(None)` when the directory is missing or holds no valid checkpoint.
///
/// # Errors
///
/// Returns an error only when listing an *existing* directory fails.
pub fn latest_valid_checkpoint(dir: &Path) -> io::Result<Option<(PathBuf, TrainState)>> {
    if !dir.is_dir() {
        return Ok(None);
    }
    let mut candidates: Vec<(u64, PathBuf)> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter_map(|p| checkpoint_step(&p).map(|s| (s, p)))
        .collect();
    candidates.sort_by_key(|c| std::cmp::Reverse(c.0));
    for (_, path) in candidates {
        match load_train_state(&path) {
            Ok(state) => return Ok(Some((path, state))),
            Err(_) => continue, // corrupt/truncated: fall back to an older one
        }
    }
    Ok(None)
}

/// Deletes the oldest `step-*.ckpt` files in `dir` so at most `keep`
/// remain. Returns how many were removed.
///
/// # Errors
///
/// Returns an error if the directory cannot be listed.
pub fn prune_checkpoints(dir: &Path, keep: usize) -> io::Result<usize> {
    let mut candidates: Vec<(u64, PathBuf)> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter_map(|p| checkpoint_step(&p).map(|s| (s, p)))
        .collect();
    if candidates.len() <= keep {
        return Ok(0);
    }
    candidates.sort_by_key(|(s, _)| *s);
    let excess = candidates.len() - keep;
    let mut removed = 0;
    for (_, path) in candidates.into_iter().take(excess) {
        if std::fs::remove_file(&path).is_ok() {
            removed += 1;
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apollo_data::{CorpusConfig, LmBatcher, SyntheticCorpus};
    use apollo_optim::{AdamW, Optimizer};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("apollo-ckpt-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("apollo-ckpt-tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn test_meta(step: u64) -> TrainMeta {
        TrainMeta {
            step,
            data_cursor: 41,
            rng_state: vec![1, 2, 3, 4],
            rng_spare: Some(0x3F80_0000),
            lr_scale: 0.5,
            spike_window: vec![1.25, 2.5],
            report: ResilienceReport::default(),
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_preserves_model_exactly() {
        let cfg = ModelConfig::test_tiny();
        let mut rng = Rng::seed_from_u64(200);
        let model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
        let path = tmp("dense.ckpt");
        save_model(&model, LinearMode::Dense, &path).unwrap();
        let loaded = load_model(&path).unwrap();
        for (a, b) in model.params.iter().zip(&loaded.params) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.value, b.value, "{}", a.name);
            assert_eq!(a.trainable, b.trainable);
        }
    }

    #[test]
    fn loaded_model_evaluates_identically() {
        let cfg = ModelConfig::test_tiny();
        let mut rng = Rng::seed_from_u64(201);
        let model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
        let path = tmp("eval.ckpt");
        save_model(&model, LinearMode::Dense, &path).unwrap();
        let loaded = load_model(&path).unwrap();
        let corpus = SyntheticCorpus::new(CorpusConfig::with_vocab(cfg.vocab_size));
        let batcher = LmBatcher::new(corpus, 2, cfg.max_seq);
        let (tokens, targets, _) = batcher.validation_set(4);
        assert_eq!(
            model.eval_loss(&tokens, &targets, 2),
            loaded.eval_loss(&tokens, &targets, 2)
        );
    }

    #[test]
    fn lora_checkpoints_roundtrip() {
        let cfg = ModelConfig::test_tiny();
        let mut rng = Rng::seed_from_u64(202);
        let mode = LinearMode::LoRa {
            rank: 2,
            alpha: 4.0,
        };
        let model = LlamaModel::new(&cfg, mode, &mut rng);
        let path = tmp("lora.ckpt");
        save_model(&model, mode, &path).unwrap();
        let loaded = load_model(&path).unwrap();
        assert_eq!(model.params.len(), loaded.params.len());
        assert_eq!(model.num_trainable(), loaded.num_trainable());
    }

    #[test]
    fn garbage_file_is_rejected() {
        let path = tmp("garbage.ckpt");
        std::fs::write(&path, b"not a checkpoint at all............").unwrap();
        assert!(load_model(&path).is_err());
        assert!(load_train_state(&path).is_err());
    }

    #[test]
    fn train_state_roundtrips_bit_exactly() {
        let cfg = ModelConfig::test_tiny();
        let mut rng = Rng::seed_from_u64(203);
        let model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
        let opt_bytes = AdamW::new().state_save().unwrap();
        let meta = test_meta(17);
        let path = tmp("full.ckpt");
        save_train_state(&model, LinearMode::Dense, &meta, &opt_bytes, &path).unwrap();
        let state = load_train_state(&path).unwrap();
        assert_eq!(state.meta, meta);
        assert_eq!(state.optimizer, opt_bytes);
        assert_eq!(state.mode, LinearMode::Dense);
        for (a, b) in model.params.iter().zip(&state.model.params) {
            assert_eq!(a.value, b.value, "{}", a.name);
        }
    }

    #[test]
    fn blob_roundtrip_is_bit_exact_and_matches_disk() {
        // to_blob → from_blob → to_blob must reproduce the same bytes, and
        // the blob must be byte-identical to what save_train_state puts on
        // disk (the PBT cloning path and the checkpoint path are one
        // format).
        let cfg = ModelConfig::test_tiny();
        let mut rng = Rng::seed_from_u64(212);
        let model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
        let opt_bytes = AdamW::new().state_save().unwrap();
        let meta = test_meta(23);
        let blob = train_state_blob(&model, LinearMode::Dense, &meta, &opt_bytes).unwrap();
        let state = TrainState::from_blob(&blob).unwrap();
        assert_eq!(state.meta, meta);
        assert_eq!(state.optimizer, opt_bytes);
        for (a, b) in model.params.iter().zip(&state.model.params) {
            assert_eq!(a.value, b.value, "{}", a.name);
        }
        assert_eq!(state.to_blob().unwrap(), blob, "re-serialization drifted");
        let path = tmp("blob-vs-disk.ckpt");
        save_train_state(&model, LinearMode::Dense, &meta, &opt_bytes, &path).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), blob);
    }

    #[test]
    fn from_blob_rejects_truncation_and_garbage() {
        let cfg = ModelConfig::test_tiny();
        let mut rng = Rng::seed_from_u64(213);
        let model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
        let blob = train_state_blob(&model, LinearMode::Dense, &test_meta(1), &[7; 16]).unwrap();
        assert!(TrainState::from_blob(&blob[..blob.len() - 5]).is_err());
        assert!(TrainState::from_blob(b"definitely not a checkpoint").is_err());
        let mut flipped = blob.clone();
        flipped[blob.len() / 2] ^= 0x10;
        assert!(TrainState::from_blob(&flipped).is_err());
    }

    #[test]
    fn v1_loader_reads_v2_weights() {
        let cfg = ModelConfig::test_tiny();
        let mut rng = Rng::seed_from_u64(204);
        let model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
        let path = tmp("v2-as-v1.ckpt");
        save_train_state(&model, LinearMode::Dense, &test_meta(3), &[], &path).unwrap();
        let loaded = load_model(&path).unwrap();
        for (a, b) in model.params.iter().zip(&loaded.params) {
            assert_eq!(a.value, b.value, "{}", a.name);
        }
    }

    #[test]
    fn v2_loader_rejects_v1_files_descriptively() {
        let cfg = ModelConfig::test_tiny();
        let mut rng = Rng::seed_from_u64(205);
        let model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
        let path = tmp("v1-only.ckpt");
        save_model(&model, LinearMode::Dense, &path).unwrap();
        let err = load_train_state(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn bit_flip_in_params_is_caught_by_checksum() {
        let cfg = ModelConfig::test_tiny();
        let mut rng = Rng::seed_from_u64(206);
        let model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
        let path = tmp("flipped.ckpt");
        save_train_state(&model, LinearMode::Dense, &test_meta(5), &[1, 2, 3], &path).unwrap();
        let len = std::fs::metadata(&path).unwrap().len();
        // Flip a bit in the middle of the file (deep inside the params
        // section for any non-trivial model).
        crate::resilience::flip_bit(&path, len / 2, 3).unwrap();
        let err = load_train_state(&path).unwrap_err();
        assert!(
            err.to_string().contains("checksum mismatch"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn truncated_file_is_an_error_not_a_panic() {
        let cfg = ModelConfig::test_tiny();
        let mut rng = Rng::seed_from_u64(207);
        let model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
        let path = tmp("truncated.ckpt");
        save_train_state(&model, LinearMode::Dense, &test_meta(5), &[9; 64], &path).unwrap();
        let len = std::fs::metadata(&path).unwrap().len();
        crate::resilience::truncate_file(&path, len - 40).unwrap();
        assert!(load_train_state(&path).is_err());
    }

    #[test]
    fn scanner_skips_corrupt_and_returns_newest_valid() {
        let dir = tmp_dir("scan");
        let cfg = ModelConfig::test_tiny();
        let mut rng = Rng::seed_from_u64(208);
        let model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
        for step in [10u64, 20, 30] {
            let path = dir.join(checkpoint_file_name(step));
            save_train_state(&model, LinearMode::Dense, &test_meta(step), &[], &path).unwrap();
        }
        // Corrupt the newest, truncate the middle one: the scanner must
        // fall back to step 10.
        crate::resilience::flip_bit(&dir.join(checkpoint_file_name(30)), 100, 0).unwrap();
        crate::resilience::truncate_file(&dir.join(checkpoint_file_name(20)), 64).unwrap();
        let (path, state) = latest_valid_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(path, dir.join(checkpoint_file_name(10)));
        assert_eq!(state.meta.step, 10);
    }

    #[test]
    fn scanner_handles_missing_dir_and_empty_dir() {
        let missing = std::env::temp_dir().join("apollo-ckpt-tests/definitely-not-here");
        assert!(latest_valid_checkpoint(&missing).unwrap().is_none());
        let empty = tmp_dir("empty");
        assert!(latest_valid_checkpoint(&empty).unwrap().is_none());
    }

    /// Byte offsets of every frame boundary in a v2 checkpoint: the start
    /// of each section's length prefix, payload, and CRC, plus EOF.
    fn frame_boundaries(bytes: &[u8]) -> Vec<u64> {
        let mut bounds = Vec::new();
        let mut off = 0u64;
        for _ in 0..3 {
            // header, params, optimizer
            bounds.push(off); // length prefix
            let len = u64::from_le_bytes(bytes[off as usize..off as usize + 8].try_into().unwrap());
            off += 8;
            bounds.push(off); // payload start
            off += len;
            bounds.push(off); // CRC start
            off += 4;
        }
        bounds.push(off); // EOF
        assert_eq!(off, bytes.len() as u64, "framing walk must cover the file");
        bounds
    }

    fn fuzz_fixture() -> (std::path::PathBuf, Vec<u8>) {
        let cfg = ModelConfig::test_tiny();
        let mut rng = Rng::seed_from_u64(210);
        let model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
        let path = tmp("fuzz-base.ckpt");
        save_train_state(&model, LinearMode::Dense, &test_meta(7), &[42; 96], &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        (path, bytes)
    }

    #[test]
    fn truncation_at_every_frame_boundary_fails_gracefully() {
        let (_, bytes) = fuzz_fixture();
        let path = tmp("fuzz-trunc.ckpt");
        for &b in &frame_boundaries(&bytes) {
            // At the boundary and one byte to either side: every cut must
            // come back as a plain Err (never a panic, never an allocation
            // beyond what the truncated file can justify).
            for cut in [b.saturating_sub(1), b, b + 1] {
                let cut = cut.min(bytes.len() as u64);
                if cut == bytes.len() as u64 {
                    continue; // full file is the valid case
                }
                std::fs::write(&path, &bytes[..cut as usize]).unwrap();
                let err = load_train_state(&path).unwrap_err();
                assert!(
                    matches!(
                        err.kind(),
                        io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof
                    ),
                    "cut at {cut}: unexpected error kind {:?}",
                    err.kind()
                );
            }
        }
    }

    #[test]
    fn bit_flips_at_every_frame_boundary_fail_gracefully() {
        let (_, bytes) = fuzz_fixture();
        let path = tmp("fuzz-flip.ckpt");
        for &b in &frame_boundaries(&bytes) {
            let byte = b.min(bytes.len() as u64 - 1);
            for bit in [0u8, 7] {
                std::fs::write(&path, &bytes).unwrap();
                crate::resilience::flip_bit(&path, byte, bit).unwrap();
                // A flip in a length prefix lands in the cap or the CRC; a
                // flip in a payload or CRC lands in the checksum check.
                assert!(
                    load_train_state(&path).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn oversized_length_prefix_never_outallocates_the_file() {
        let (_, bytes) = fuzz_fixture();
        let path = tmp("fuzz-prefix.ckpt");
        let mut prefix_offsets = Vec::new();
        let mut off = 0usize;
        for _ in 0..3 {
            prefix_offsets.push(off);
            let len = u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
            off += 8 + len as usize + 4;
        }
        // 8 MiB: under every per-section cap (MAX_HEADER is the smallest
        // at 16 MiB), so only the remaining-bytes cap can reject it — and
        // it must, before any oversized buffer is allocated.
        let huge = (8u64 << 20).to_le_bytes();
        for &p in &prefix_offsets {
            let mut corrupt = bytes.clone();
            corrupt[p..p + 8].copy_from_slice(&huge);
            std::fs::write(&path, &corrupt).unwrap();
            let err = load_train_state(&path).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "prefix at {p}");
            assert!(
                err.to_string().contains("remain in the file"),
                "prefix at {p}: expected the remaining-bytes cap, got: {err}"
            );
        }
    }

    #[test]
    fn huge_v1_manifest_never_outallocates_the_file() {
        // A v1 header whose manifest claims gigabyte shapes on a tiny
        // file: the body allocation must be capped by the actual file size.
        let cfg = ModelConfig::test_tiny();
        let header = Header {
            magic: MAGIC.to_string(),
            version: V1,
            config: cfg.clone(),
            mode: LinearMode::Dense,
            manifest: vec![("tok_embedding".into(), 1 << 20, 1 << 10)],
        };
        let head = serde_json::to_vec(&header).unwrap();
        let path = tmp("fuzz-v1-manifest.ckpt");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(head.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&head);
        bytes.extend_from_slice(&[0u8; 64]);
        std::fs::write(&path, &bytes).unwrap();
        let err = load_model(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("file holds"), "{err}");
    }

    #[test]
    fn corrupt_files_still_fall_through_the_scanner() {
        // End-to-end: a directory of boundary-truncated checkpoints plus
        // one good old one must resolve to the good one.
        let dir = tmp_dir("fuzz-scan");
        let (_, bytes) = fuzz_fixture();
        let cfg = ModelConfig::test_tiny();
        let mut rng = Rng::seed_from_u64(211);
        let model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
        let good = dir.join(checkpoint_file_name(1));
        save_train_state(&model, LinearMode::Dense, &test_meta(1), &[], &good).unwrap();
        for (i, &b) in frame_boundaries(&bytes).iter().enumerate() {
            if b == bytes.len() as u64 {
                continue;
            }
            let path = dir.join(checkpoint_file_name(10 + i as u64));
            std::fs::write(&path, &bytes[..b as usize]).unwrap();
        }
        let (path, state) = latest_valid_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(path, good);
        assert_eq!(state.meta.step, 1);
    }

    #[test]
    fn prune_keeps_newest() {
        let dir = tmp_dir("prune");
        let cfg = ModelConfig::test_tiny();
        let mut rng = Rng::seed_from_u64(209);
        let model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
        for step in [1u64, 2, 3, 4, 5] {
            let path = dir.join(checkpoint_file_name(step));
            save_train_state(&model, LinearMode::Dense, &test_meta(step), &[], &path).unwrap();
        }
        assert_eq!(prune_checkpoints(&dir, 2).unwrap(), 3);
        let (path, _) = latest_valid_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(path, dir.join(checkpoint_file_name(5)));
        assert!(!dir.join(checkpoint_file_name(3)).exists());
    }
}
