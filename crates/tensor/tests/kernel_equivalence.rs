//! Bitwise equivalence of the packed/pooled matmul kernels against naive
//! reference loops.
//!
//! The packed kernels accumulate every output element in ascending-`p`
//! order with a single `f32` accumulator, exactly like the reference
//! triple loop, and the row-band partition is a pure function of
//! `(m, threads)` — so for finite inputs the results must be
//! *bit-identical*, not merely close, at every thread count. These tests
//! assert that, across adversarial shapes (1×1, prime dims, `m ≫ n`,
//! `n ≫ m`, and sizes straddling the parallelism FLOP gate).

use apollo_tensor::{set_thread_override, Matrix, Rng};
use proptest::prelude::*;

/// Reference `a · b`: ascending-`p` scalar accumulation per element.
fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let (k2, n) = b.shape();
    assert_eq!(k, k2);
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a.as_slice()[i * k + p] * b.as_slice()[p * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    Matrix::from_vec(m, n, out)
}

/// Reference `a · bᵀ` (`a: m×k`, `b: n×k`).
fn naive_matmul_transb(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let (n, k2) = b.shape();
    assert_eq!(k, k2);
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a.as_slice()[i * k + p] * b.as_slice()[j * k + p];
            }
            out[i * n + j] = acc;
        }
    }
    Matrix::from_vec(m, n, out)
}

/// Reference `aᵀ · b` (`a: k×m`, `b: k×n`).
fn naive_matmul_transa(a: &Matrix, b: &Matrix) -> Matrix {
    let (k, m) = a.shape();
    let (k2, n) = b.shape();
    assert_eq!(k, k2);
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a.as_slice()[p * m + i] * b.as_slice()[p * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    Matrix::from_vec(m, n, out)
}

/// Asserts `got` and `want` agree bit-for-bit (shape and every element's
/// `to_bits`), reporting the first mismatching index on failure.
fn assert_bits_eq(got: &Matrix, want: &Matrix, what: &str) {
    assert_eq!(got.shape(), want.shape(), "{what}: shape mismatch");
    for (idx, (g, w)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        assert!(
            g.to_bits() == w.to_bits(),
            "{what}: bit mismatch at flat index {idx}: got {g} ({:#010x}), want {w} ({:#010x})",
            g.to_bits(),
            w.to_bits()
        );
    }
}

/// Runs all three kernels against their references at one thread count.
fn check_all_kernels(m: usize, k: usize, n: usize, seed: u64, threads: usize) {
    set_thread_override(Some(threads));
    let mut rng = Rng::seed_from_u64(seed);
    let a = Matrix::randn(m, k, &mut rng);
    let b = Matrix::randn(k, n, &mut rng);
    let at = Matrix::randn(k, m, &mut rng);
    let bt = Matrix::randn(n, k, &mut rng);
    let ctx = format!("({m}x{k}x{n}, threads={threads})");
    assert_bits_eq(
        &a.matmul(&b),
        &naive_matmul(&a, &b),
        &format!("matmul {ctx}"),
    );
    assert_bits_eq(
        &a.matmul_transb(&bt),
        &naive_matmul_transb(&a, &bt),
        &format!("matmul_transb {ctx}"),
    );
    assert_bits_eq(
        &at.matmul_transa(&b),
        &naive_matmul_transa(&at, &b),
        &format!("matmul_transa {ctx}"),
    );
    set_thread_override(None);
}

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

#[test]
fn adversarial_shapes_match_reference_at_all_thread_counts() {
    // (m, k, n): degenerate, prime, skinny-tall, tall-skinny, panel-tail
    // widths just around the NR=32 packing boundary, and one shape large
    // enough to cross the parallelism FLOP gate (2·m·k·n ≥ 2^20).
    let shapes = [
        (1, 1, 1),
        (1, 7, 1),
        (7, 13, 11),
        (31, 17, 5),
        (97, 8, 2),     // m >> n
        (2, 8, 97),     // n >> m
        (3, 5, 31),     // n just under one packed panel
        (3, 5, 32),     // exactly one panel
        (3, 5, 33),     // one panel + 1-wide tail
        (5, 64, 65),    // two panels + tail
        (128, 64, 68),  // crosses the FLOP gate: exercises the worker pool
        (1, 33, 129),   // gemv (decode hot shape), serial: below the gate
        (1, 521, 1031), // gemv crossing the FLOP gate: pooled column bands
    ];
    for (si, &(m, k, n)) in shapes.iter().enumerate() {
        for &t in &THREAD_COUNTS {
            check_all_kernels(m, k, n, 0x5eed_0000 + si as u64, t);
        }
    }
}

#[test]
fn results_are_invariant_across_thread_counts() {
    // Large enough to parallelize; compare thread counts against each other
    // directly (not just against the reference).
    let mut rng = Rng::seed_from_u64(42);
    let a = Matrix::randn(160, 96, &mut rng);
    let b = Matrix::randn(96, 70, &mut rng);
    set_thread_override(Some(1));
    let base = a.matmul(&b);
    for &t in &THREAD_COUNTS[1..] {
        set_thread_override(Some(t));
        assert_bits_eq(&a.matmul(&b), &base, &format!("threads={t} vs threads=1"));
    }
    set_thread_override(None);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_shapes_match_reference(
        seed in any::<u64>(),
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..40,
        ti in 0usize..THREAD_COUNTS.len(),
    ) {
        check_all_kernels(m, k, n, seed, THREAD_COUNTS[ti]);
    }
}
