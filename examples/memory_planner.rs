//! Memory-planning scenario: "which optimizer lets me train model X on
//! GPU Y?" — the §5.3 question, answered with the analytic memory model.
//!
//! ```sh
//! cargo run --release --example memory_planner
//! ```

use apollo_repro::nn::ModelConfig;
use apollo_repro::optim::memory::MethodSpec;
use apollo_repro::sysmodel::{Gpu, MemoryOptions, TrainingMemoryModel, WeightPrecision};

fn main() {
    let gpus = [Gpu::a100_80g(), Gpu::consumer_12g()];
    let models = [ModelConfig::llama_7b(), ModelConfig::llama_13b()];
    let methods = [
        ("AdamW", MethodSpec::AdamW, false),
        ("GaLore r=1024", MethodSpec::GaLore { rank: 1024 }, false),
        ("APOLLO r=256", MethodSpec::Apollo { rank: 256 }, false),
        ("APOLLO-Mini", MethodSpec::ApolloMini, false),
        ("Q-APOLLO-Mini", MethodSpec::ApolloMini, true),
    ];

    for model_cfg in &models {
        let mem = TrainingMemoryModel::new(model_cfg);
        println!(
            "\n=== {} (batch 1, seq 256, layer-wise grads) ===",
            model_cfg.name
        );
        for (name, spec, int8) in methods {
            let opts = MemoryOptions {
                weights: if int8 {
                    WeightPrecision::Int8 { group: 128 }
                } else {
                    WeightPrecision::Bf16
                },
                ..MemoryOptions::figure1(256)
            };
            let b = mem.breakdown(spec, &opts);
            let fits: Vec<String> = gpus
                .iter()
                .map(|g| {
                    format!(
                        "{}: {}",
                        g.name,
                        if b.total_gib() <= g.memory_gib {
                            "fits"
                        } else {
                            "OOM"
                        }
                    )
                })
                .collect();
            println!(
                "{name:<14} {:6.1} GiB (weights {:.1} + states {:.1} + rest {:.1})   [{}]",
                b.total_gib(),
                b.weights_gib,
                b.optimizer_gib,
                b.grads_gib + b.activations_gib,
                fits.join(", ")
            );
        }
    }
    println!(
        "\nHeadlines: APOLLO-Mini fits LLaMA-13B on one A100-80G with naive DDP, and \
         Q-APOLLO-Mini fits LLaMA-7B under 12 GB — AdamW fits neither."
    );
}
