//! Training on *your own text* instead of the synthetic corpus: train a BPE
//! tokenizer on a text sample, tokenize it, and pre-train a tiny model on
//! the resulting stream with APOLLO.
//!
//! ```sh
//! cargo run --release --example custom_text
//! ```

use apollo_repro::data::{BpeTokenizer, Tokenize};
use apollo_repro::nn::{LinearMode, LlamaModel, ModelConfig, ParamKind};
use apollo_repro::optim::{Apollo, Optimizer, ParamUpdate};
use apollo_repro::tensor::Rng;

/// A small built-in text so the example runs without any files; swap in
/// `std::fs::read("your.txt")` for real use.
const SAMPLE: &str = "\
the apollo optimizer approximates channel-wise gradient scaling factors in \
a low-rank auxiliary space fed by a pure random projection. the projection \
matrix is never stored: only a seed is kept, and the matrix is regenerated \
on demand. the optimizer state shrinks from two full moments to two tiny \
low-rank moments, while the update direction stays the raw gradient, scaled \
per channel. the result: sgd-like memory with adamw-level performance. \
the apollo optimizer approximates channel-wise gradient scaling factors in \
a low-rank auxiliary space fed by a pure random projection. ";

fn main() {
    // 1. Train a BPE vocabulary on the sample.
    let tok = BpeTokenizer::train(SAMPLE.as_bytes(), 380);
    let stream = tok.encode(SAMPLE.as_bytes());
    println!(
        "BPE: {} merges, {} bytes -> {} tokens ({:.1}x compression)",
        tok.num_merges(),
        SAMPLE.len(),
        stream.len(),
        SAMPLE.len() as f32 / stream.len() as f32
    );

    // 2. A model sized to the tokenizer's vocabulary.
    let mut cfg = ModelConfig::test_tiny();
    cfg.vocab_size = tok.vocab_size();
    cfg.max_seq = 16;
    let mut rng = Rng::seed_from_u64(9);
    let mut model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
    let mut opt = Apollo::new(cfg.default_rank(), 200);

    // 3. Next-token training on windows of the token stream.
    let seq = cfg.max_seq;
    let batch = 4;
    let mut first_loss = None;
    let mut last_loss = 0.0;
    for step in 0..120 {
        let mut tokens = Vec::with_capacity(batch * seq);
        let mut targets = Vec::with_capacity(batch * seq);
        for b in 0..batch {
            let start = (step * batch + b) * 3 % (stream.len() - seq - 1);
            tokens.extend_from_slice(&stream[start..start + seq]);
            targets.extend_from_slice(&stream[start + 1..start + seq + 1]);
        }
        let (loss, grads) = model.loss_and_grads(&tokens, &targets, batch);
        first_loss.get_or_insert(loss);
        last_loss = loss;
        let mut updates: Vec<ParamUpdate<'_>> = Vec::new();
        for (p, g) in model.params.iter_mut().zip(&grads) {
            if let Some(grad) = g.as_ref() {
                updates.push(ParamUpdate {
                    name: &p.name,
                    value: &mut p.value,
                    grad,
                    projectable: p.kind == ParamKind::Projectable,
                });
            }
        }
        opt.step(&mut updates, 1e-2);
    }
    println!(
        "training loss {:.2} -> {:.2} over 120 APOLLO steps ({} optimizer state elems)",
        first_loss.unwrap(),
        last_loss,
        opt.state_elems()
    );

    // 4. Greedy generation from a prompt.
    let prompt = tok.encode(b"the apollo optimizer ");
    let mut ctx = prompt.clone();
    for _ in 0..12 {
        let window: Vec<u32> = ctx[ctx.len().saturating_sub(seq)..].to_vec();
        let padded: Vec<u32> = if window.len() < seq {
            let mut w = vec![0u32; seq - window.len()];
            w.extend_from_slice(&window);
            w
        } else {
            window
        };
        let next = model.classify(&padded, 1)[0];
        ctx.push(next);
    }
    let text = String::from_utf8_lossy(&tok.decode(&ctx)).to_string();
    println!("greedy sample: {text:?}");
}
