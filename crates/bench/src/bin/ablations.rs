//! Extra ablations beyond the paper's tables (called out in DESIGN.md):
//!
//! 1. projection re-sample period T (Algorithm 1's `update_freq`),
//! 2. APOLLO-Mini's gradient scale factor α,
//! 3. the norm-growth limiter threshold γ.

use apollo_bench::{print_table, scaled, write_json, Method};
use apollo_data::{CorpusConfig, LmBatcher, SyntheticCorpus};
use apollo_nn::{LinearMode, LlamaModel, ModelConfig};
use apollo_optim::{Apollo, NormGrowthLimiter, Optimizer};
use apollo_tensor::Rng;
use apollo_train::{pretrain, TrainConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    sweep: String,
    value: f32,
    ppl: f32,
}

fn run(cfg: &ModelConfig, opt: &mut dyn Optimizer, steps: usize, lr: f32) -> f32 {
    let mut rng = Rng::seed_from_u64(42);
    let mut model = LlamaModel::new(cfg, LinearMode::Dense, &mut rng);
    let corpus = SyntheticCorpus::new(CorpusConfig::with_vocab(cfg.vocab_size));
    let mut batcher = LmBatcher::new(corpus, 4, cfg.max_seq);
    let tc = TrainConfig {
        lr,
        ..TrainConfig::quick(steps)
    };
    pretrain(&mut model, opt, &mut batcher, &tc).final_ppl
}

fn main() {
    let cfg = ModelConfig::tiny_60m();
    let steps = scaled(300);
    let rank = cfg.default_rank();
    let lr = Method::Apollo.default_lr();
    let mut points = Vec::new();

    // 1. Subspace refresh period T. The paper fixes T = 200 without tuning;
    //    robustness across T supports the seed-resample design.
    let mut t_rows = Vec::new();
    for t in [25usize, 100, 200, 1_000_000] {
        eprintln!("[ablations] T = {t} ...");
        let ppl = run(&cfg, &mut Apollo::new(rank, t), steps, lr);
        let label = if t == 1_000_000 {
            "never".to_string()
        } else {
            t.to_string()
        };
        t_rows.push(vec![label, format!("{ppl:.2}")]);
        points.push(Point {
            sweep: "update_freq".into(),
            value: t as f32,
            ppl,
        });
    }
    print_table(
        "Ablation — APOLLO subspace refresh period T",
        &["T", "Val ppl"],
        &t_rows,
    );

    // 2. APOLLO-Mini α sensitivity around the √(hidden/4) rule.
    let base_alpha = Method::mini_alpha(&cfg);
    let mut a_rows = Vec::new();
    for mult in [0.25f32, 0.5, 1.0, 2.0, 4.0] {
        let alpha = base_alpha * mult;
        eprintln!("[ablations] Mini α = {alpha:.2} ...");
        let ppl = run(&cfg, &mut Apollo::mini(200).with_alpha(alpha), steps, lr);
        a_rows.push(vec![
            format!("{alpha:.2} ({mult}x rule)"),
            format!("{ppl:.2}"),
        ]);
        points.push(Point {
            sweep: "mini_alpha".into(),
            value: alpha,
            ppl,
        });
    }
    print_table(
        &format!("Ablation — APOLLO-Mini α (rule value {base_alpha:.2})"),
        &["α", "Val ppl"],
        &a_rows,
    );

    // 3. Norm-growth limiter γ (paper default 1.01). Reuses APOLLO but
    //    swaps each tensor's limiter threshold via a custom loop.
    let mut g_rows = Vec::new();
    for gamma in [1.005f32, 1.01, 1.1, 2.0] {
        eprintln!("[ablations] γ = {gamma} ...");
        // The limiter is constructed inside Apollo; emulate a γ sweep by
        // checking the limiter alone (clamping behaviour) plus a run with
        // the limiter disabled as the γ→∞ reference.
        let mut l = NormGrowthLimiter::new(gamma);
        let mut u1 = apollo_tensor::Matrix::full(1, 4, 1.0);
        l.apply(&mut u1);
        let mut u2 = apollo_tensor::Matrix::full(1, 4, 10.0);
        let clamped = l.apply(&mut u2);
        g_rows.push(vec![
            format!("{gamma}"),
            format!("{clamped:?}"),
            format!("{:.3}", u2.fro_norm()),
        ]);
    }
    let no_limiter_ppl = run(
        &cfg,
        &mut Apollo::new(rank, 200).without_limiter(),
        steps,
        lr,
    );
    let with_limiter_ppl = run(&cfg, &mut Apollo::new(rank, 200), steps, lr);
    g_rows.push(vec![
        "with vs without (ppl)".into(),
        format!("{with_limiter_ppl:.2}"),
        format!("{no_limiter_ppl:.2}"),
    ]);
    points.push(Point {
        sweep: "limiter_on".into(),
        value: 1.0,
        ppl: with_limiter_ppl,
    });
    points.push(Point {
        sweep: "limiter_off".into(),
        value: 0.0,
        ppl: no_limiter_ppl,
    });
    print_table(
        "Ablation — norm-growth limiter",
        &["γ / comparison", "clamped@10x", "‖u‖ after"],
        &g_rows,
    );

    write_json("ablations", &points);
}
