//! LLaMA-style decoder-only transformer blocks and model configurations.
//!
//! The model follows the architecture the APOLLO paper pre-trains: token
//! embedding → N × (RMSNorm → RoPE multi-head causal attention → residual →
//! RMSNorm → SwiGLU MLP → residual) → final RMSNorm → LM head, trained with
//! mean cross-entropy on next-token prediction.
//!
//! [`ModelConfig`] ships both the paper's exact geometries (Table 8,
//! 60M–13B — used by the analytic memory/throughput model) and `tiny-*`
//! proxies with the same depth/width ratios that actually train on CPU.
//!
//! Linear layers support three parameterizations, covering the paper's
//! baselines:
//!
//! - [`LinearMode::Dense`] — ordinary full-rank training,
//! - [`LinearMode::LoRa`] — frozen backbone + low-rank adapter
//!   (`W = W₀ + B·A`; LoRA and ReLoRA baselines),
//! - [`LinearMode::Factored`] — `W = U·V` with both factors trained (the
//!   "Low-Rank" baseline of Table 2).
//!
//! # Example
//!
//! ```
//! use apollo_nn::{LlamaModel, ModelConfig, LinearMode};
//! use apollo_tensor::Rng;
//!
//! let cfg = ModelConfig::test_tiny();
//! let mut rng = Rng::seed_from_u64(0);
//! let mut model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
//! let tokens: Vec<u32> = (0..2 * cfg.max_seq as u32).map(|i| i % 7).collect();
//! let targets: Vec<u32> = tokens.iter().map(|&t| (t + 1) % 7).collect();
//! let (loss, _grads) = model.loss_and_grads(&tokens, &targets, 2);
//! assert!(loss > 0.0);
//! ```

mod adapter;
mod backend;
mod config;
mod decode;
mod linear;
mod model;
mod param;
mod quantized;

pub use adapter::{AdapterLoader, AdapterRegistry, LoraAdapter};
pub use backend::{DecodeBackend, DecodeCaches, KvBlock};
pub use config::ModelConfig;
pub use decode::{KvCache, KvSpan};
pub use linear::{Linear, LinearMode};
pub use model::LlamaModel;
pub use param::{Param, ParamKind};
pub use quantized::{Bf16KvCache, Bf16Span, QuantizedModel, DECODE_QUANT_GROUP};
