//! Table 6: APOLLO-series combined with INT8 weight quantization
//! (Q-APOLLO / Q-APOLLO-Mini vs Q-GaLore), with the paper-geometry memory
//! column (weights + states, INT8 weights at group 128).

use apollo_bench::{pretrain_run, print_table, proxy_for, scaled, write_json, Method};
use apollo_nn::ModelConfig;
use apollo_optim::memory::MethodSpec;
use apollo_sysmodel::{MemoryOptions, TrainingMemoryModel, WeightPrecision};
use apollo_train::TrainConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Cell {
    method: String,
    size: String,
    ppl: f32,
    memory_gib: f64,
}

fn paper_memory_gib(method: Method, quantized: bool, size: &str) -> f64 {
    let cfg = match size {
        "60M" => ModelConfig::llama_60m(),
        "130M" => ModelConfig::llama_130m(),
        "350M" => ModelConfig::llama_350m(),
        _ => unreachable!(),
    };
    let spec = match method {
        Method::GaLore => MethodSpec::GaLore {
            rank: cfg.default_rank(),
        },
        Method::Apollo => MethodSpec::Apollo {
            rank: cfg.default_rank(),
        },
        Method::ApolloMini => MethodSpec::ApolloMini,
        _ => MethodSpec::AdamW,
    };
    let opts = MemoryOptions {
        weights: if quantized {
            WeightPrecision::Int8 { group: 128 }
        } else {
            WeightPrecision::Bf16
        },
        ..MemoryOptions::figure1(256)
    };
    let b = TrainingMemoryModel::new(&cfg).breakdown(spec, &opts);
    b.weights_gib + b.optimizer_gib
}

fn main() {
    let sizes = [
        ("60M", scaled(300)),
        ("130M", scaled(150)),
        ("350M", scaled(80)),
    ];
    // (label base, method, quantize weights?)
    let cases = [
        ("AdamW", Method::AdamW, false),
        ("GaLore", Method::GaLore, false),
        ("Q-GaLore", Method::GaLore, true),
        ("APOLLO", Method::Apollo, false),
        ("Q-APOLLO", Method::Apollo, true),
        ("APOLLO-Mini", Method::ApolloMini, false),
        ("Q-APOLLO-Mini", Method::ApolloMini, true),
    ];
    let mut cells = Vec::new();
    for (size, steps) in sizes {
        let cfg = proxy_for(size);
        for (label, m, quant) in cases {
            eprintln!("[table6] {size} {label} ...");
            let tc = TrainConfig {
                steps,
                lr: m.default_lr(),
                grad_clip: m.grad_clip(),
                quantize_weights: quant.then_some(128),
                ..TrainConfig::quick(steps)
            };
            let log = pretrain_run(&cfg, m, steps, 4, 42, Some(tc));
            cells.push(Cell {
                method: label.to_string(),
                size: size.to_string(),
                ppl: log.final_ppl,
                memory_gib: paper_memory_gib(m, quant, size),
            });
        }
    }
    let mut rows = Vec::new();
    for (label, _, _) in cases {
        let mut row = vec![label.to_string()];
        for (size, _) in sizes {
            let c = cells
                .iter()
                .find(|c| c.method == label && c.size == size)
                .unwrap();
            row.push(format!("{:.2}", c.ppl));
            row.push(format!("{:.2}G", c.memory_gib));
        }
        rows.push(row);
    }
    print_table(
        "Table 6 — INT8-weight training (proxy ppl; paper-geometry weights+states memory)",
        &[
            "Method", "60M ppl", "mem", "130M ppl", "mem", "350M ppl", "mem",
        ],
        &rows,
    );
    println!(
        "\nPaper shape: Q-variants cost a small ppl penalty but halve weight memory; \
         Q-APOLLO stays clearly below Q-GaLore's perplexity."
    );
    write_json("table6_quantized", &cells);
}
