//! Cross-crate integration tests: the full pipeline (synthetic corpus →
//! LLaMA proxy → optimizer → trainer → evaluation) for every optimizer
//! family, plus consistency between the live optimizers and the analytic
//! memory model.

use apollo_repro::data::{CorpusConfig, LmBatcher, SyntheticCorpus, TaskConfig, TaskGen};
use apollo_repro::nn::{LinearMode, LlamaModel, ModelConfig, ParamKind};
use apollo_repro::optim::memory::MethodSpec;
use apollo_repro::optim::{AdamW, Apollo, Fira, GaLore, Optimizer};
use apollo_repro::sysmodel::TrainingMemoryModel;
use apollo_repro::tensor::Rng;
use apollo_repro::train::{eval_perplexity, finetune, pretrain, FinetuneConfig, TrainConfig};

fn fresh(seed: u64) -> (LlamaModel, LmBatcher) {
    let cfg = ModelConfig::test_tiny();
    let mut rng = Rng::seed_from_u64(seed);
    let model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
    let corpus = SyntheticCorpus::new(CorpusConfig::with_vocab(cfg.vocab_size));
    let batcher = LmBatcher::new(corpus, 4, cfg.max_seq);
    (model, batcher)
}

fn run(opt: &mut dyn Optimizer, lr: f32, steps: usize) -> (f32, f32) {
    let (mut model, mut batcher) = fresh(7);
    let before = eval_perplexity(&model, &batcher, 16).expect("eval set is non-empty");
    let tc = TrainConfig {
        lr,
        ..TrainConfig::quick(steps)
    };
    let log = pretrain(&mut model, opt, &mut batcher, &tc);
    (before, log.final_ppl)
}

#[test]
fn every_optimizer_family_learns() {
    let cases: Vec<(Box<dyn Optimizer>, f32)> = vec![
        (Box::new(AdamW::new()), 3e-3),
        (Box::new(AdamW::adam8bit(64)), 3e-3),
        (Box::new(Apollo::new(4, 20)), 1e-2),
        (Box::new(Apollo::new(4, 20).with_svd()), 1e-2),
        (Box::new(Apollo::mini(20).with_alpha(2.0)), 1e-2),
        (Box::new(GaLore::new(4, 20)), 1e-2),
        (Box::new(Fira::new(4, 20)), 1e-2),
    ];
    for (mut opt, lr) in cases {
        let name = opt.name();
        let (before, after) = run(opt.as_mut(), lr, 80);
        assert!(
            after < before * 0.85,
            "{name}: ppl {before:.1} -> {after:.1} (no learning)"
        );
    }
}

#[test]
fn apollo_is_competitive_with_adamw_at_tiny_scale() {
    let (_, adamw) = run(&mut AdamW::new(), 3e-3, 120);
    let (_, apollo) = run(&mut Apollo::new(4, 20), 1e-2, 120);
    // The paper's claim is parity (or better); allow 25% slack at this
    // micro-scale where variance is high.
    assert!(
        apollo < adamw * 1.25,
        "APOLLO {apollo:.1} should be near AdamW {adamw:.1}"
    );
}

#[test]
fn apollo_state_is_far_smaller_than_adamw_on_a_real_model() {
    let (mut model, mut batcher) = fresh(8);
    let mut adamw = AdamW::new();
    let tc = TrainConfig::quick(20);
    pretrain(&mut model, &mut adamw, &mut batcher, &tc);

    let (mut model2, mut batcher2) = fresh(8);
    let mut mini = Apollo::mini(20);
    pretrain(&mut model2, &mut mini, &mut batcher2, &tc);

    // At the micro test geometry the (dense-Adam) embedding/head states
    // dominate, capping the visible gap; assert >2x here and the real >20x
    // on the paper's 7B geometry analytically.
    assert!(
        mini.state_elems() * 2 < adamw.state_elems(),
        "Mini {} vs AdamW {}",
        mini.state_elems(),
        adamw.state_elems()
    );
    let shapes_7b = TrainingMemoryModel::new(&ModelConfig::llama_7b());
    let adamw_7b = MethodSpec::AdamW.state_elems(shapes_7b.shapes());
    let mini_7b = MethodSpec::ApolloMini.state_elems(shapes_7b.shapes());
    assert!(mini_7b * 20 < adamw_7b, "7B: {mini_7b} vs {adamw_7b}");
}

#[test]
fn live_state_matches_analytic_model_on_full_network() {
    // The Table-1 formulas (via MethodSpec + the sysmodel inventory) must
    // agree with what the real optimizer allocates over a whole model.
    let cfg = ModelConfig::test_tiny();
    let mem = TrainingMemoryModel::new(&cfg);
    let (mut model, mut batcher) = fresh(9);
    let mut opt = Apollo::new(4, 20);
    pretrain(&mut model, &mut opt, &mut batcher, &TrainConfig::quick(3));

    // Analytic count over the same inventory, skipping the frozen/norm
    // routing differences: sysmodel marks embed/head non-projectable, the
    // trainer routes exactly the same way via ParamKind.
    let analytic = MethodSpec::Apollo { rank: 4 }.state_elems(mem.shapes());
    assert_eq!(opt.state_elems(), analytic);
}

#[test]
fn trainer_routes_param_kinds_like_the_memory_model() {
    // Every Projectable param in the model is projectable in the sysmodel
    // inventory and vice versa (by shape+name alignment).
    let cfg = ModelConfig::test_tiny();
    let mem = TrainingMemoryModel::new(&cfg);
    let mut rng = Rng::seed_from_u64(1);
    let model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
    let inventory = mem.shapes();
    assert_eq!(inventory.len(), model.params.len());
    for (p, &(r, c, projectable)) in model.params.iter().zip(inventory) {
        assert_eq!(p.value.shape(), (r, c), "{}", p.name);
        assert_eq!(
            p.kind == ParamKind::Projectable,
            projectable,
            "{} routing mismatch",
            p.name
        );
    }
}

#[test]
fn finetune_with_apollo_mini_beats_chance() {
    let cfg = ModelConfig::test_tiny();
    let mut rng = Rng::seed_from_u64(11);
    let mut model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
    let mut task = TaskGen::new(TaskConfig {
        name: "it".into(),
        n_classes: 2,
        vocab_size: cfg.vocab_size,
        seq: cfg.max_seq,
        true_markers: 4,
        distractors: 1,
        seed: 3,
    });
    let mut opt = Apollo::mini(20).with_alpha(2.0);
    let res = finetune(
        &mut model,
        &mut opt,
        &mut task,
        &FinetuneConfig {
            steps: 100,
            batch: 8,
            lr: 3e-3,
            eval_examples: 100,
        },
    );
    assert!(
        res.accuracy > res.chance + 10.0,
        "accuracy {} vs chance {}",
        res.accuracy,
        res.chance
    );
}

#[test]
fn lora_finetune_pipeline_works_end_to_end() {
    let cfg = ModelConfig::test_tiny();
    let mut rng = Rng::seed_from_u64(12);
    let base = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
    let mut lora = base.to_lora(2, 4.0, &mut rng);
    let mut task = TaskGen::new(TaskConfig {
        name: "it".into(),
        n_classes: 2,
        vocab_size: cfg.vocab_size,
        seq: cfg.max_seq,
        true_markers: 4,
        distractors: 1,
        seed: 4,
    });
    let mut opt = AdamW::new();
    let res = finetune(
        &mut lora,
        &mut opt,
        &mut task,
        &FinetuneConfig {
            steps: 60,
            batch: 8,
            lr: 3e-3,
            eval_examples: 60,
        },
    );
    assert!(res.accuracy.is_finite());
    // The frozen backbone holds the vast majority of parameters.
    assert!(lora.num_trainable() * 2 < base.num_trainable());
}

#[test]
fn deterministic_end_to_end() {
    let go = || {
        let (mut model, mut batcher) = fresh(13);
        let mut opt = Apollo::new(4, 10);
        pretrain(&mut model, &mut opt, &mut batcher, &TrainConfig::quick(25)).final_ppl
    };
    assert_eq!(go(), go());
}
