//! Criterion micro-benchmark: the tensor kernels underlying everything
//! (matmul variants, channel norms, INT8 round-trips).

use apollo_quant::QuantizedMatrix;
use apollo_tensor::{Matrix, Rng};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_kernels(c: &mut Criterion) {
    let mut rng = Rng::seed_from_u64(4);
    let a = Matrix::randn(256, 256, &mut rng);
    let b = Matrix::randn(256, 256, &mut rng);

    let mut group = c.benchmark_group("kernels_256");
    group.bench_function("matmul", |bch| bch.iter(|| a.matmul(&b)));
    group.bench_function("matmul_transb", |bch| bch.iter(|| a.matmul_transb(&b)));
    group.bench_function("matmul_transa", |bch| bch.iter(|| a.matmul_transa(&b)));
    group.bench_function("col_norms", |bch| bch.iter(|| a.col_norms()));
    group.bench_function("int8_roundtrip_g128", |bch| {
        bch.iter(|| QuantizedMatrix::quantize(&a, 128).dequantize())
    });
    group.finish();
}

/// Short sampling profile: the reproduction sandbox has a single CPU
/// core, so favour wall-clock over statistical depth.
fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_kernels
}
criterion_main!(benches);
