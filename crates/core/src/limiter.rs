//! The Norm-growth Limiter of Eq. 4 (adopted from Fira).

use apollo_tensor::Matrix;

/// Limits the step-to-step growth of the scaled gradient norm:
///
/// ```text
/// if ‖G̃_t‖ / ‖G̃_{t−1}‖ > γ:   G̃_t ← G̃_t / ‖G̃_t‖ · γ‖G̃_{t−1}‖
/// ```
///
/// The paper uses this in place of vanilla gradient clipping to suppress the
/// early-training loss spikes of structured learning-rate adaptation
/// (Fig. 3), with γ = 1.01 by default. The single stored scalar per tensor
/// is one of the "+2" constants in Table 1's APOLLO state count.
#[derive(Debug, Clone)]
pub struct NormGrowthLimiter {
    gamma: f32,
    prev_norm: Option<f32>,
}

impl NormGrowthLimiter {
    /// Creates a limiter with growth threshold `gamma` (> 1).
    ///
    /// # Panics
    ///
    /// Panics if `gamma <= 1.0`.
    pub fn new(gamma: f32) -> Self {
        assert!(gamma > 1.0, "gamma must exceed 1");
        NormGrowthLimiter {
            gamma,
            prev_norm: None,
        }
    }

    /// The paper's default (γ = 1.01).
    pub fn paper_default() -> Self {
        Self::new(1.01)
    }

    /// Clamps `update` in place if its norm grew more than γ× since the
    /// previous call; records the (post-clamp) norm for the next step.
    /// Returns `true` if clamping occurred.
    pub fn apply(&mut self, update: &mut Matrix) -> bool {
        let norm = update.fro_norm();
        let clamped = match self.prev_norm {
            Some(prev) if prev > 0.0 && norm > self.gamma * prev => {
                update.scale_assign(self.gamma * prev / norm);
                true
            }
            _ => false,
        };
        self.prev_norm = Some(if clamped {
            self.gamma * self.prev_norm.unwrap()
        } else {
            norm
        });
        clamped
    }

    /// Number of stored scalars (for memory accounting): the previous norm.
    pub fn state_elems(&self) -> usize {
        1
    }

    /// Resets the history (used when a training run restarts).
    pub fn reset(&mut self) {
        self.prev_norm = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_step_never_clamps() {
        let mut l = NormGrowthLimiter::new(1.01);
        let mut u = Matrix::full(2, 2, 100.0);
        assert!(!l.apply(&mut u));
        assert_eq!(u.get(0, 0), 100.0);
    }

    #[test]
    fn growth_beyond_gamma_is_clamped_to_gamma() {
        let mut l = NormGrowthLimiter::new(1.01);
        let mut u1 = Matrix::full(1, 4, 1.0); // norm 2
        l.apply(&mut u1);
        let mut u2 = Matrix::full(1, 4, 10.0); // norm 20 ≫ 1.01·2
        assert!(l.apply(&mut u2));
        let expect = 1.01 * 2.0;
        assert!((u2.fro_norm() - expect).abs() < 1e-4, "{}", u2.fro_norm());
    }

    #[test]
    fn shrinking_or_mild_growth_passes_through() {
        let mut l = NormGrowthLimiter::new(1.5);
        let mut u1 = Matrix::full(1, 1, 4.0);
        l.apply(&mut u1);
        let mut u2 = Matrix::full(1, 1, 5.0); // ratio 1.25 < 1.5
        assert!(!l.apply(&mut u2));
        assert_eq!(u2.get(0, 0), 5.0);
        let mut u3 = Matrix::full(1, 1, 1.0);
        assert!(!l.apply(&mut u3));
    }

    #[test]
    fn repeated_spikes_grow_at_most_geometrically() {
        let mut l = NormGrowthLimiter::new(1.01);
        let mut first = Matrix::full(1, 1, 1.0);
        l.apply(&mut first);
        let mut norm = 1.0f32;
        for _ in 0..10 {
            let mut u = Matrix::full(1, 1, 1000.0);
            l.apply(&mut u);
            norm = u.fro_norm();
        }
        // After 10 clamped steps: at most 1.01^10.
        assert!(norm <= 1.01f32.powi(10) + 1e-4, "{norm}");
    }

    #[test]
    #[should_panic(expected = "gamma must exceed 1")]
    fn rejects_gamma_below_one() {
        let _ = NormGrowthLimiter::new(0.9);
    }

    #[test]
    fn reset_forgets_history() {
        let mut l = NormGrowthLimiter::new(1.01);
        let mut u = Matrix::full(1, 1, 1.0);
        l.apply(&mut u);
        l.reset();
        let mut big = Matrix::full(1, 1, 100.0);
        assert!(!l.apply(&mut big), "post-reset first step must not clamp");
    }
}
