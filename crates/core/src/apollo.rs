//! APOLLO and APOLLO-Mini (Algorithm 1 of the paper).

use apollo_obs::{Obs, TraceEvent};
use apollo_tensor::{fused, Matrix};

use crate::limiter::{LimiterOutcome, NormGrowthLimiter};
use crate::projector::{ProjKind, Projector};
use crate::state::{StateReader, StateWriter};
use crate::{
    check_state_header, norm_ratio_scales, save_state_header, AdamMoments, Optimizer, ParamUpdate,
};

/// Granularity of the approximated gradient scaling factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleGranularity {
    /// One factor per channel along the larger tensor dimension — APOLLO
    /// (Eq. 5).
    Channel,
    /// One factor per tensor — APOLLO-Mini (Section 4.2), required for
    /// rank-1 spaces where channel-wise estimates are too noisy.
    Tensor,
}

/// Per-tensor state of the APOLLO optimizer.
#[derive(Debug, Clone)]
enum ApolloState {
    /// Dense AdamW fallback (norm gains, embeddings).
    Dense(AdamMoments),
    /// The auxiliary low-rank optimizer state of Algorithm 1.
    LowRank {
        moments: AdamMoments,
        projector: Projector,
        limiter: NormGrowthLimiter,
        /// Full-rank scratch for the scaled update — a reused allocation,
        /// not optimizer state (excluded from `state_elems` and save/load).
        update: Matrix,
    },
}

/// **APOLLO**: Approximated Gradient Scaling for Memory-Efficient LLM
/// Optimization (Algorithm 1).
///
/// For each projectable weight `W (m × n)` the step is:
///
/// 1. `R = P·G` — random projection (`P ~ N(0, 1/r)` regenerated from a
///    stored seed, refreshed every `update_freq` steps), projecting the
///    smaller dimension;
/// 2. AdamW moments on `R` only: `R̃ = M̂ᴿ/(√V̂ᴿ+ε)`;
/// 3. scaling factors `s` from norm ratios of `R̃` vs `R` — per channel
///    ([`ScaleGranularity::Channel`]) or per tensor
///    ([`ScaleGranularity::Tensor`]);
/// 4. update the weight in the *original* space with the scaled raw
///    gradient: `W ← W − η(α·G·diag(s) + λW)`, guarded by the norm-growth
///    limiter.
///
/// Non-projectable parameters fall back to dense AdamW, as in the official
/// implementation.
///
/// Construct with [`Apollo::new`] (channel-wise, α = 1) or [`Apollo::mini`]
/// (rank 1, tensor-wise, α = √128). `with_*` builders cover the ablations.
#[derive(Debug, Clone)]
pub struct Apollo {
    /// First-moment decay β₁.
    pub beta1: f32,
    /// Second-moment decay β₂.
    pub beta2: f32,
    /// Numerical-stability ε.
    pub eps: f32,
    /// Decoupled weight decay λ.
    pub weight_decay: f32,
    /// Gradient scale factor α (Theorem A.4 suggests √(n/r); APOLLO folds
    /// it into the LR and uses 1, APOLLO-Mini uses √128).
    pub alpha: f32,
    /// Scaling-factor granularity.
    pub granularity: ScaleGranularity,
    /// Projection kind (random by default; SVD for "APOLLO w. SVD").
    pub proj_kind: ProjKind,
    /// Auxiliary-space rank r.
    pub rank: usize,
    /// Subspace refresh period T (200 in the paper).
    pub update_freq: usize,
    /// Whether the norm-growth limiter guards each tensor update.
    pub use_limiter: bool,
    seed: u64,
    states: Vec<ApolloState>,
    /// Scaling factors from the last step, per parameter (length 1 for
    /// tensor granularity; empty for dense-fallback tensors). Consumed by
    /// the Fig. 4 probe.
    pub last_scales: Vec<Vec<f32>>,
    /// Observability handle; disabled (free) unless attached.
    obs: Obs,
}

impl Apollo {
    /// APOLLO with channel-wise scaling and random projection (α = 1).
    pub fn new(rank: usize, update_freq: usize) -> Self {
        Apollo {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            alpha: 1.0,
            granularity: ScaleGranularity::Channel,
            proj_kind: ProjKind::Random,
            rank,
            update_freq,
            use_limiter: true,
            seed: 0xA90110,
            states: Vec::new(),
            last_scales: Vec::new(),
            obs: Obs::disabled(),
        }
    }

    /// APOLLO-Mini: rank-1 auxiliary space, tensor-wise scaling, α = √128 —
    /// SGD-level memory.
    pub fn mini(update_freq: usize) -> Self {
        Apollo {
            rank: 1,
            granularity: ScaleGranularity::Tensor,
            alpha: 128f32.sqrt(),
            ..Self::new(1, update_freq)
        }
    }

    /// Switches to SVD-based projection ("APOLLO w. SVD").
    pub fn with_svd(mut self) -> Self {
        self.proj_kind = ProjKind::Svd;
        self
    }

    /// Overrides the auxiliary-space rank (e.g. to sweep tensor-wise
    /// scaling above rank 1, Fig. 5d).
    pub fn with_rank(mut self, rank: usize) -> Self {
        assert!(rank > 0, "rank must be positive");
        self.rank = rank;
        self
    }

    /// Overrides the gradient scale factor α.
    pub fn with_alpha(mut self, alpha: f32) -> Self {
        self.alpha = alpha;
        self
    }

    /// Overrides the scaling granularity (Table 7 ablation).
    pub fn with_granularity(mut self, granularity: ScaleGranularity) -> Self {
        self.granularity = granularity;
        self
    }

    /// Sets the decoupled weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Sets the base RNG seed used to derive per-tensor projection seeds.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Disables the norm-growth limiter.
    pub fn without_limiter(mut self) -> Self {
        self.use_limiter = false;
        self
    }

    /// Changes the subspace refresh period T on a *live* optimizer: the
    /// config field and every initialized low-rank state's projector are
    /// re-pointed together, so a restored-then-perturbed optimizer behaves
    /// identically to one perturbed in place (the population-search
    /// explore step relies on this). Safe before the first step too — the
    /// states are empty and `init_states` picks up the new value.
    ///
    /// # Panics
    ///
    /// Panics if `update_freq == 0`.
    pub fn set_update_freq(&mut self, update_freq: usize) {
        assert!(update_freq > 0, "update_freq must be positive");
        self.update_freq = update_freq;
        for st in &mut self.states {
            if let ApolloState::LowRank { projector, .. } = st {
                projector.set_update_freq(update_freq);
            }
        }
    }

    fn init_states(&mut self, params: &[ParamUpdate<'_>]) {
        self.states = params
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let (r, c) = p.value.shape();
                if p.projectable && r > 1 && c > 1 {
                    let rank = self.rank.min(r).min(c);
                    let large = r.max(c);
                    // Moments live in the projected space; the projected
                    // gradient is rank × large (or large × rank — the
                    // element count is what matters here).
                    let (mr, mc) = if r <= c { (rank, large) } else { (large, rank) };
                    ApolloState::LowRank {
                        moments: AdamMoments::new(mr, mc),
                        projector: Projector::new(
                            self.proj_kind,
                            rank,
                            self.update_freq,
                            self.seed.wrapping_add(i as u64),
                        ),
                        limiter: NormGrowthLimiter::paper_default(),
                        update: Matrix::zeros(0, 0),
                    }
                } else {
                    ApolloState::Dense(AdamMoments::new(r, c))
                }
            })
            .collect();
        self.last_scales = vec![Vec::new(); params.len()];
    }
}

impl Optimizer for Apollo {
    fn name(&self) -> String {
        let base = match self.granularity {
            ScaleGranularity::Channel => "APOLLO",
            ScaleGranularity::Tensor => {
                if self.rank == 1 {
                    "APOLLO-Mini"
                } else {
                    "APOLLO(tensor)"
                }
            }
        };
        match self.proj_kind {
            ProjKind::Random => base.to_string(),
            ProjKind::Svd => format!("{base} w. SVD"),
        }
    }

    fn step(&mut self, params: &mut [ParamUpdate<'_>], lr: f32) {
        if self.states.is_empty() {
            self.init_states(params);
        }
        assert_eq!(self.states.len(), params.len(), "parameter list changed");
        for (i, p) in params.iter_mut().enumerate() {
            match &mut self.states[i] {
                ApolloState::Dense(moments) => {
                    moments.step_weight(
                        p.value,
                        p.grad,
                        self.beta1,
                        self.beta2,
                        self.eps,
                        lr,
                        self.weight_decay,
                    );
                    self.last_scales[i].clear();
                }
                ApolloState::LowRank {
                    moments,
                    projector,
                    limiter,
                    update,
                } => {
                    // Step 1: project the gradient into the auxiliary space.
                    if projector.begin_step(p.grad) {
                        self.obs.counter("projector_refresh", 1);
                        let step = self.obs.step();
                        let rank = projector.effective_rank(p.grad);
                        let kind = projector.kind_label();
                        let name = p.name;
                        self.obs.emit(|| TraceEvent::ProjectorRefresh {
                            step,
                            param: name.to_string(),
                            kind: kind.to_string(),
                            rank,
                        });
                    }
                    let r = projector.project(p.grad);
                    // Step 2: low-rank AdamW moments.
                    let rt = moments.update(&r, self.beta1, self.beta2, self.eps);
                    // Steps 3+4a, fused: scale the raw gradient by the
                    // approximated factors and by α in one traversal of the
                    // per-param scratch, getting ‖update‖_F as a by-product
                    // for the limiter (the kernel's flat f64 accumulation is
                    // the same as `Matrix::fro_norm`).
                    let norm = match self.granularity {
                        ScaleGranularity::Channel => {
                            let along_cols = p.grad.rows() <= p.grad.cols();
                            let s = norm_ratio_scales(rt, &r, along_cols);
                            let scale = if along_cols {
                                fused::ChannelScale::Cols(&s)
                            } else {
                                fused::ChannelScale::Rows(&s)
                            };
                            let norm = fused::fused_apollo_scale(update, p.grad, scale, self.alpha);
                            self.last_scales[i] = s;
                            norm
                        }
                        ScaleGranularity::Tensor => {
                            let denom = r.fro_norm();
                            let s = if denom > 1e-30 {
                                rt.fro_norm() / denom
                            } else {
                                0.0
                            };
                            let norm = fused::fused_apollo_scale(
                                update,
                                p.grad,
                                fused::ChannelScale::Tensor(s),
                                self.alpha,
                            );
                            self.last_scales[i] = vec![s];
                            norm
                        }
                    };
                    if self.obs.sample_due() && self.obs.has_trace() {
                        if let Some(ev) =
                            apollo_obs::scale_summary(self.obs.step(), p.name, &self.last_scales[i])
                        {
                            self.obs.emit(|| ev);
                        }
                    }
                    if self.use_limiter {
                        match limiter.apply_with_norm(update, norm) {
                            LimiterOutcome::Clamped => {
                                self.obs.counter("limiter_clips", 1);
                                if self.obs.has_trace() {
                                    let post = update.fro_norm();
                                    let ratio = if post > 1e-30 { norm / post } else { 1.0 };
                                    let step = self.obs.step();
                                    let name = p.name;
                                    self.obs.emit(|| TraceEvent::LimiterClip {
                                        step,
                                        param: name.to_string(),
                                        ratio,
                                    });
                                }
                            }
                            LimiterOutcome::NonFinite => {
                                self.obs.counter("limiter_non_finite", 1);
                            }
                            LimiterOutcome::Passed => {}
                        }
                    }
                    // Step 4b, fused: decoupled weight decay + weight write.
                    let decay = if self.weight_decay > 0.0 {
                        1.0 - lr * self.weight_decay
                    } else {
                        1.0
                    };
                    fused::fused_axpy_chain(p.value, decay, -lr, update);
                    r.recycle();
                }
            }
        }
    }

    fn state_elems(&self) -> usize {
        self.states
            .iter()
            .map(|s| match s {
                ApolloState::Dense(m) => m.elems(),
                ApolloState::LowRank {
                    moments, projector, ..
                } => {
                    // Table 1: moments (2nr) + seed + limiter norm = +2 for
                    // the random kind; SVD additionally stores its basis
                    // (mr) but needs no seed (+1).
                    let consts = match projector.kind() {
                        ProjKind::Random => 2,
                        ProjKind::Svd => 1,
                    };
                    moments.elems() + projector.state_elems() + consts
                }
            })
            .sum()
    }

    fn reset_state(&mut self) {
        self.states.clear();
        self.last_scales.clear();
    }

    fn attach_observer(&mut self, obs: Obs) {
        self.obs = obs;
    }

    fn state_save(&self) -> Result<Vec<u8>, String> {
        let mut w = StateWriter::new();
        save_state_header(&mut w, &self.name());
        w.u64(self.states.len() as u64);
        for st in &self.states {
            match st {
                ApolloState::Dense(moments) => {
                    w.u8(0);
                    moments.save_into(&mut w);
                }
                ApolloState::LowRank {
                    moments,
                    projector,
                    limiter,
                    ..
                } => {
                    w.u8(1);
                    moments.save_into(&mut w);
                    projector.save_into(&mut w);
                    limiter.save_into(&mut w);
                }
            }
        }
        w.u64(self.last_scales.len() as u64);
        for s in &self.last_scales {
            w.f32_slice(s);
        }
        Ok(w.into_bytes())
    }

    fn state_load(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = StateReader::new(bytes);
        check_state_header(&mut r, &self.name())?;
        let n = r.len()?;
        let mut states = Vec::with_capacity(n);
        for _ in 0..n {
            states.push(match r.u8()? {
                0 => ApolloState::Dense(AdamMoments::load_from(&mut r)?),
                1 => ApolloState::LowRank {
                    moments: AdamMoments::load_from(&mut r)?,
                    projector: Projector::load_from(&mut r)?,
                    limiter: NormGrowthLimiter::load_from(&mut r)?,
                    update: Matrix::zeros(0, 0),
                },
                other => return Err(format!("unknown APOLLO state tag {other}")),
            });
        }
        let ns = r.len()?;
        let mut last_scales = Vec::with_capacity(ns);
        for _ in 0..ns {
            last_scales.push(r.f32_slice()?);
        }
        r.expect_exhausted()?;
        self.states = states;
        self.last_scales = last_scales;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apollo_tensor::{Matrix, Rng};

    fn one_step(opt: &mut Apollo, w: &mut Matrix, g: &Matrix, lr: f32) {
        let mut params = [ParamUpdate {
            name: "w",
            value: w,
            grad: g,
            projectable: true,
        }];
        opt.step(&mut params, lr);
    }

    #[test]
    fn update_direction_is_channel_scaled_gradient() {
        // APOLLO's update must lie in the span of per-channel-scaled raw
        // gradients: each column of ΔW parallel to the same column of G.
        let mut rng = Rng::seed_from_u64(80);
        let g = Matrix::randn(8, 16, &mut rng);
        let mut w = Matrix::zeros(8, 16);
        let mut opt = Apollo::new(4, 100).without_limiter();
        one_step(&mut opt, &mut w, &g, 1.0);
        for j in 0..16 {
            let wc = w.col(j);
            let gc = g.col(j);
            let dot: f32 = wc.iter().zip(&gc).map(|(a, b)| a * b).sum();
            let (na, nb) = (
                wc.iter().map(|x| x * x).sum::<f32>().sqrt(),
                gc.iter().map(|x| x * x).sum::<f32>().sqrt(),
            );
            if na > 1e-9 {
                assert!(
                    (dot.abs() / (na * nb) - 1.0).abs() < 1e-4,
                    "column {j} not parallel to gradient"
                );
            }
        }
    }

    #[test]
    fn converges_on_quadratic() {
        let mut rng = Rng::seed_from_u64(81);
        let mut w = Matrix::randn(8, 24, &mut rng).scale(3.0);
        let mut opt = Apollo::new(4, 50);
        // Quadratic loss ½‖w‖² ⇒ gradient = w; refresh a reused buffer
        // instead of cloning a fresh matrix every iteration.
        let mut g = Matrix::zeros(8, 24);
        for _ in 0..500 {
            g.copy_from(&w);
            one_step(&mut opt, &mut w, &g, 0.05);
        }
        assert!(w.fro_norm() < 1.0, "‖w‖ = {}", w.fro_norm());
    }

    #[test]
    fn mini_converges_on_quadratic() {
        let mut rng = Rng::seed_from_u64(82);
        let mut w = Matrix::randn(8, 24, &mut rng).scale(3.0);
        let mut opt = Apollo::mini(50).with_alpha(1.0);
        let mut g = Matrix::zeros(8, 24);
        for _ in 0..500 {
            g.copy_from(&w);
            one_step(&mut opt, &mut w, &g, 0.05);
        }
        assert!(w.fro_norm() < 1.0, "‖w‖ = {}", w.fro_norm());
    }

    #[test]
    fn state_matches_table1_formula() {
        // APOLLO on a single m×n tensor: 2·n·r + 2 (n = larger dim).
        let (m, n, r) = (8, 32, 4);
        let mut w = Matrix::zeros(m, n);
        let g = Matrix::full(m, n, 1.0);
        let mut opt = Apollo::new(r, 100);
        one_step(&mut opt, &mut w, &g, 0.01);
        assert_eq!(opt.state_elems(), 2 * n * r + 2);
    }

    #[test]
    fn mini_state_is_2n_plus_2() {
        let (m, n) = (8, 32);
        let mut w = Matrix::zeros(m, n);
        let g = Matrix::full(m, n, 1.0);
        let mut opt = Apollo::mini(100);
        one_step(&mut opt, &mut w, &g, 0.01);
        assert_eq!(opt.state_elems(), 2 * n + 2);
    }

    #[test]
    fn tall_matrices_are_projected_on_the_other_side() {
        let (m, n, r) = (32, 8, 4);
        let mut w = Matrix::zeros(m, n);
        let g = Matrix::full(m, n, 1.0);
        let mut opt = Apollo::new(r, 100);
        one_step(&mut opt, &mut w, &g, 0.01);
        // larger dim is m: 2·m·r + 2.
        assert_eq!(opt.state_elems(), 2 * m * r + 2);
        assert_eq!(opt.last_scales[0].len(), m);
    }

    #[test]
    fn dense_fallback_for_non_projectable() {
        let mut w = Matrix::zeros(1, 16);
        let g = Matrix::full(1, 16, 1.0);
        let mut opt = Apollo::new(4, 100);
        let mut params = [ParamUpdate {
            name: "norm",
            value: &mut w,
            grad: &g,
            projectable: false,
        }];
        opt.step(&mut params, 0.1);
        assert_eq!(opt.state_elems(), 2 * 16); // dense AdamW moments
        assert!(w.get(0, 0) < 0.0);
    }

    #[test]
    fn mini_scale_is_a_single_scalar() {
        let mut rng = Rng::seed_from_u64(83);
        let g = Matrix::randn(8, 16, &mut rng);
        let mut w = Matrix::zeros(8, 16);
        let mut opt = Apollo::mini(100);
        one_step(&mut opt, &mut w, &g, 0.01);
        assert_eq!(opt.last_scales[0].len(), 1);
        assert!(opt.last_scales[0][0] > 0.0);
    }

    #[test]
    fn svd_variant_runs_and_counts_basis() {
        let mut rng = Rng::seed_from_u64(84);
        let g = Matrix::randn(8, 16, &mut rng);
        let mut w = Matrix::zeros(8, 16);
        let mut opt = Apollo::new(4, 100).with_svd();
        one_step(&mut opt, &mut w, &g, 0.01);
        // 2·16·4 moments + 8·4 basis + 1.
        assert_eq!(opt.state_elems(), 2 * 16 * 4 + 8 * 4 + 1);
        assert_eq!(opt.name(), "APOLLO w. SVD");
    }

    #[test]
    fn scaling_factor_shrinks_with_rank_as_sqrt_r_over_n() {
        // Theorem A.4: s^R ≈ √(r/n)·s. With identical gradient streams the
        // tensor-level scale at rank r should be ≈ √(r/m) of the full-rank
        // (r = m) one.
        let mut rng = Rng::seed_from_u64(85);
        let (m, n) = (64, 256);
        let mut scales = Vec::new();
        for rank in [8usize, 16, 64] {
            let mut opt = Apollo::new(rank, 1000)
                .with_granularity(ScaleGranularity::Tensor)
                .without_limiter();
            let mut w = Matrix::zeros(m, n);
            // A few steps with random gradients to settle the moments.
            let mut s = 0.0;
            for _ in 0..20 {
                let g = Matrix::randn(m, n, &mut rng);
                one_step(&mut opt, &mut w, &g, 1e-4);
                s = opt.last_scales[0][0];
            }
            scales.push((rank, s));
        }
        // s(8)/s(64) ≈ √(8/64) ≈ 0.354; accept generous tolerance.
        let ratio = scales[0].1 / scales[2].1;
        assert!(
            (0.2..0.6).contains(&ratio),
            "s(8)/s(64) = {ratio}, scales {scales:?}"
        );
    }

    #[test]
    fn set_update_freq_commutes_with_state_roundtrip() {
        // Mutating the refresh interval on a live optimizer must behave
        // exactly like saving its state, loading it into a fresh optimizer,
        // and mutating that one — the explore step of the search driver
        // uses both paths interchangeably.
        let mut rng = Rng::seed_from_u64(87);
        let grads: Vec<Matrix> = (0..12).map(|_| Matrix::randn(8, 16, &mut rng)).collect();
        let mut live = Apollo::new(4, 10).with_seed(55);
        let mut w_live = Matrix::zeros(8, 16);
        for g in &grads[..5] {
            one_step(&mut live, &mut w_live, g, 0.01);
        }
        let saved = live.state_save().unwrap();
        let mut restored = Apollo::new(4, 10).with_seed(55);
        let mut w_restored = w_live.clone();
        restored.state_load(&saved).unwrap();
        live.set_update_freq(3);
        restored.set_update_freq(3);
        assert_eq!(live.update_freq, 3);
        for g in &grads[5..] {
            one_step(&mut live, &mut w_live, g, 0.01);
            one_step(&mut restored, &mut w_restored, g, 0.01);
        }
        assert_eq!(w_live, w_restored);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut rng = Rng::seed_from_u64(86);
        let g = Matrix::randn(8, 16, &mut rng);
        let run = || {
            let mut w = Matrix::zeros(8, 16);
            let mut opt = Apollo::new(4, 10).with_seed(123);
            for _ in 0..5 {
                one_step(&mut opt, &mut w, &g, 0.01);
            }
            w
        };
        assert_eq!(run(), run());
    }
}
