//! KV-cached incremental decode vs full graph forward: *bit-identical*
//! logits, across adversarial sequence lengths, prefill chunkings,
//! interleaved batches, linear-layer parameterizations, and thread counts.

use apollo_nn::{
    DecodeBackend, KvCache, LinearMode, LlamaModel, LoraAdapter, ModelConfig, QuantizedModel,
};
use apollo_tensor::{set_thread_override, Matrix, Rng};

fn assert_bits_eq(got: &Matrix, want: &Matrix, what: &str) {
    assert_eq!(got.shape(), want.shape(), "{what}: shape mismatch");
    for (idx, (g, w)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        assert!(
            g.to_bits() == w.to_bits(),
            "{what}: bit mismatch at flat index {idx}: got {g} ({:#010x}), want {w} ({:#010x})",
            g.to_bits(),
            w.to_bits()
        );
    }
}

fn random_tokens(n: usize, vocab: usize, rng: &mut Rng) -> Vec<u32> {
    (0..n).map(|_| rng.below(vocab) as u32).collect()
}

/// Feeds `tokens` through one cache in the given chunk sizes and returns
/// the logits of every position, stacked in order.
fn cached_logits_chunked(model: &LlamaModel, tokens: &[u32], chunks: &[usize]) -> Matrix {
    let mut caches = vec![model.new_kv_cache(tokens.len())];
    let vocab = model.config().vocab_size;
    let mut out = Matrix::zeros(tokens.len(), vocab);
    let mut fed = 0;
    for &c in chunks {
        let rows: Vec<(usize, u32)> = tokens[fed..fed + c].iter().map(|&t| (0, t)).collect();
        let hidden = model.forward_cached(&mut caches, &rows);
        let logits = model.lm_logits(&hidden);
        for r in 0..c {
            out.row_mut(fed + r).copy_from_slice(logits.row(r));
        }
        fed += c;
    }
    assert_eq!(fed, tokens.len(), "chunks must cover the sequence");
    assert_eq!(caches[0].len(), tokens.len());
    out
}

#[test]
fn token_at_a_time_decode_matches_full_forward() {
    let cfg = ModelConfig::test_tiny();
    let mut rng = Rng::seed_from_u64(0xDEC0);
    let model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
    // Adversarial lengths: single token, pair, odd prefix, full max_seq.
    for &len in &[1usize, 2, 5, cfg.max_seq] {
        let tokens = random_tokens(len, cfg.vocab_size, &mut rng);
        let full = model.full_logits(&tokens, 1);
        let chunks = vec![1usize; len];
        let inc = cached_logits_chunked(&model, &tokens, &chunks);
        assert_bits_eq(&inc, &full, &format!("len={len} one-by-one"));
    }
}

#[test]
fn chunked_prefill_matches_full_forward() {
    let cfg = ModelConfig::test_tiny();
    let mut rng = Rng::seed_from_u64(0xDEC1);
    let model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
    let tokens = random_tokens(cfg.max_seq, cfg.vocab_size, &mut rng);
    let full = model.full_logits(&tokens, 1);
    // Whole-sequence prefill, uneven chunks, and a prefill+decode split.
    for chunks in [vec![8], vec![3, 1, 4], vec![5, 1, 1, 1], vec![1, 7]] {
        let inc = cached_logits_chunked(&model, &tokens, &chunks);
        assert_bits_eq(&inc, &full, &format!("chunks={chunks:?}"));
    }
}

#[test]
// Indexing by `c`/`t` mirrors the (cache, position) addressing under test.
#[allow(clippy::needless_range_loop)]
fn interleaved_batch_matches_per_sequence_full_forward() {
    let cfg = ModelConfig::test_tiny();
    let mut rng = Rng::seed_from_u64(0xDEC2);
    let model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
    let batch = 3;
    let seq = cfg.max_seq;
    let seqs: Vec<Vec<u32>> = (0..batch)
        .map(|_| random_tokens(seq, cfg.vocab_size, &mut rng))
        .collect();

    // Reference: each sequence through the full forward on its own.
    let fulls: Vec<Matrix> = seqs.iter().map(|s| model.full_logits(s, 1)).collect();

    // Prefill 2 tokens per sequence in one interleaved call, then decode
    // the rest one position at a time across all sequences per call — the
    // continuous-batching access pattern.
    let mut caches: Vec<KvCache> = (0..batch).map(|_| model.new_kv_cache(seq)).collect();
    let mut got: Vec<Matrix> = (0..batch)
        .map(|_| Matrix::zeros(seq, cfg.vocab_size))
        .collect();
    let prefill: Vec<(usize, u32)> = (0..batch)
        .flat_map(|c| [(c, seqs[c][0]), (c, seqs[c][1])])
        .collect();
    let hidden = model.forward_cached(&mut caches, &prefill);
    let logits = model.lm_logits(&hidden);
    for c in 0..batch {
        got[c].row_mut(0).copy_from_slice(logits.row(2 * c));
        got[c].row_mut(1).copy_from_slice(logits.row(2 * c + 1));
    }
    for t in 2..seq {
        let rows: Vec<(usize, u32)> = (0..batch).map(|c| (c, seqs[c][t])).collect();
        let hidden = model.forward_cached(&mut caches, &rows);
        let logits = model.lm_logits(&hidden);
        for c in 0..batch {
            got[c].row_mut(t).copy_from_slice(logits.row(c));
        }
    }
    for c in 0..batch {
        assert_bits_eq(&got[c], &fulls[c], &format!("sequence {c}"));
    }
}

#[test]
fn lora_and_factored_models_decode_bit_identically() {
    let cfg = ModelConfig::test_tiny();
    let mut rng = Rng::seed_from_u64(0xDEC3);
    let modes = [
        LinearMode::LoRa {
            rank: 2,
            alpha: 4.0,
        },
        LinearMode::Factored { rank: 2 },
    ];
    for mode in modes {
        let mut model = LlamaModel::new(&cfg, mode, &mut rng);
        // Give LoRA `B` weight so the adapter path is actually nonzero.
        for p in &mut model.params {
            if p.name.ends_with(".lora_b") {
                p.value = Matrix::randn(p.value.rows(), p.value.cols(), &mut rng);
            }
        }
        let tokens = random_tokens(cfg.max_seq, cfg.vocab_size, &mut rng);
        let full = model.full_logits(&tokens, 1);
        let inc = cached_logits_chunked(&model, &tokens, &vec![1; cfg.max_seq]);
        assert_bits_eq(&inc, &full, &format!("{mode:?}"));
    }
}

/// A LoRA model with nonzero adapters (B is zero-initialized, so perturb it).
fn nonzero_lora(cfg: &ModelConfig, seed: u64) -> LlamaModel {
    let mut rng = Rng::seed_from_u64(seed);
    let mut model = LlamaModel::new(
        cfg,
        LinearMode::LoRa {
            rank: 2,
            alpha: 4.0,
        },
        &mut rng,
    );
    for p in &mut model.params {
        if p.name.ends_with(".lora_b") {
            p.value = Matrix::randn(p.value.rows(), p.value.cols(), &mut rng);
        }
    }
    model
}

/// The dense model a LoRA model decomposes over: `.base` backbones become
/// the dense weights; embedding, norms and head copy across by name.
fn dense_base_of(lora: &LlamaModel) -> LlamaModel {
    let mut rng = Rng::seed_from_u64(0);
    let mut dense = LlamaModel::new(lora.config(), LinearMode::Dense, &mut rng);
    for p in &mut dense.params {
        let base_name = format!("{}.base", p.name);
        let src = lora
            .params
            .iter()
            .find(|q| q.name == p.name || q.name == base_name)
            .unwrap_or_else(|| panic!("no LoRA source for {}", p.name));
        p.value = src.value.clone();
    }
    dense
}

#[test]
fn adapter_delta_matches_full_lora_model() {
    // Serving "dense base + extracted adapter" must be bit-identical to
    // decoding the LoRA model it was extracted from.
    let cfg = ModelConfig::test_tiny();
    let lora = nonzero_lora(&cfg, 0xADA0);
    let base = dense_base_of(&lora);
    let adapter = LoraAdapter::from_model(&lora).unwrap();
    let mut rng = Rng::seed_from_u64(0xADA1);
    let tokens = random_tokens(cfg.max_seq, cfg.vocab_size, &mut rng);

    let want = cached_logits_chunked(&lora, &tokens, &vec![1; cfg.max_seq]);

    let mut caches = vec![base.new_kv_cache(cfg.max_seq)];
    let mut got = Matrix::zeros(cfg.max_seq, cfg.vocab_size);
    for (t, &tok) in tokens.iter().enumerate() {
        let hidden = base.forward_cached_with(&mut caches, &[(0, tok)], &[Some(&adapter)]);
        got.row_mut(t)
            .copy_from_slice(base.lm_logits(&hidden).row(0));
    }
    assert_bits_eq(&got, &want, "base+adapter vs LoRA model");
}

#[test]
// Indexing by `c`/`t` mirrors the (cache, position) addressing under test.
#[allow(clippy::needless_range_loop)]
fn mixed_adapter_batch_matches_serial_per_adapter() {
    // One decode tick batching 3 adapters plus a base-only row must be
    // byte-identical to serving each sequence serially with its adapter.
    let cfg = ModelConfig::test_tiny();
    let base = dense_base_of(&nonzero_lora(&cfg, 0xADA2));
    let adapters: Vec<LoraAdapter> = (0..3)
        .map(|i| LoraAdapter::from_model(&nonzero_lora(&cfg, 0xADA3 + i)).unwrap())
        .collect();
    let per_row: Vec<Option<&LoraAdapter>> = vec![
        Some(&adapters[0]),
        Some(&adapters[1]),
        Some(&adapters[2]),
        None,
    ];
    let batch = per_row.len();
    let seq = cfg.max_seq;
    let mut rng = Rng::seed_from_u64(0xADA7);
    let seqs: Vec<Vec<u32>> = (0..batch)
        .map(|_| random_tokens(seq, cfg.vocab_size, &mut rng))
        .collect();

    // Serial reference: each sequence alone, token at a time.
    let mut serial: Vec<Matrix> = Vec::new();
    for c in 0..batch {
        let mut caches = vec![base.new_kv_cache(seq)];
        let mut out = Matrix::zeros(seq, cfg.vocab_size);
        for (t, &tok) in seqs[c].iter().enumerate() {
            let hidden = base.forward_cached_with(&mut caches, &[(0, tok)], &[per_row[c]]);
            out.row_mut(t)
                .copy_from_slice(base.lm_logits(&hidden).row(0));
        }
        serial.push(out);
    }

    // Mixed batch: every tick carries one row per sequence, adapters mixed.
    let mut caches: Vec<KvCache> = (0..batch).map(|_| base.new_kv_cache(seq)).collect();
    let mut got: Vec<Matrix> = (0..batch)
        .map(|_| Matrix::zeros(seq, cfg.vocab_size))
        .collect();
    for t in 0..seq {
        let rows: Vec<(usize, u32)> = (0..batch).map(|c| (c, seqs[c][t])).collect();
        let hidden = base.forward_cached_with(&mut caches, &rows, &per_row);
        let logits = base.lm_logits(&hidden);
        for c in 0..batch {
            got[c].row_mut(t).copy_from_slice(logits.row(c));
        }
    }
    for c in 0..batch {
        assert_bits_eq(&got[c], &serial[c], &format!("sequence {c}"));
    }
}

#[test]
fn cached_prefix_spans_decode_identically_to_cold_prefill() {
    // Exporting a prefix's KV rows from one cache and appending them into
    // another, then prefilling only the suffix, must give bit-identical
    // logits to cold-prefilling the whole prompt — the prefix cache's
    // exactness contract.
    let cfg = ModelConfig::test_tiny();
    let mut rng = Rng::seed_from_u64(0xCAC0);
    let model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
    let seq = cfg.max_seq;
    let tokens = random_tokens(seq, cfg.vocab_size, &mut rng);
    let full = model.full_logits(&tokens, 1);

    for prefix in [1usize, 3, seq - 1] {
        // Donor prefills the prefix cold, then exports it.
        let mut donor = vec![model.new_kv_cache(seq)];
        let rows: Vec<(usize, u32)> = tokens[..prefix].iter().map(|&t| (0, t)).collect();
        model.forward_cached(&mut donor, &rows);
        let span = donor[0].export_rows(0, prefix);
        assert_eq!(span.rows(), prefix);
        assert!(span.memory_bytes() > 0);

        // Consumer appends the span and prefills only the suffix.
        let mut cons = vec![model.new_kv_cache(seq)];
        cons[0].append_span(&span);
        assert_eq!(cons[0].len(), prefix);
        let rows: Vec<(usize, u32)> = tokens[prefix..].iter().map(|&t| (0, t)).collect();
        let hidden = model.forward_cached(&mut cons, &rows);
        let logits = model.lm_logits(&hidden);
        for (r, t) in (prefix..seq).enumerate() {
            let got = logits.row(r);
            let want = full.row(t);
            for (g, w) in got.iter().zip(want) {
                assert!(
                    g.to_bits() == w.to_bits(),
                    "prefix={prefix} pos={t}: {g} vs {w}"
                );
            }
        }

        // A sliced sub-span (radix-edge split) behaves the same.
        if prefix >= 2 {
            let head = span.slice(0, prefix - 1);
            let tail = span.slice(prefix - 1, prefix);
            let mut split = vec![model.new_kv_cache(seq)];
            split[0].append_span(&head);
            split[0].append_span(&tail);
            let rows: Vec<(usize, u32)> = tokens[prefix..].iter().map(|&t| (0, t)).collect();
            let hidden2 = model.forward_cached(&mut split, &rows);
            assert_bits_eq(
                &model.lm_logits(&hidden2),
                &logits,
                &format!("prefix={prefix} split spans"),
            );
        }
    }
}

#[test]
fn kv_blocks_roundtrip_on_both_backend_tiers() {
    // The tier-agnostic KvBlock path: cached-prefix decode is bit-identical
    // to cold prefill on the exact tier AND on the BF16/INT8 tier (the
    // payload copy is bitwise, and the quantized decode is deterministic).
    let cfg = ModelConfig::test_tiny();
    let mut rng = Rng::seed_from_u64(0xCAC1);
    let model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
    let qm = QuantizedModel::from_model(&model);
    let seq = cfg.max_seq;
    let tokens = random_tokens(seq, cfg.vocab_size, &mut rng);
    let prefix = 5usize;

    for backend in [DecodeBackend::from(model.clone()), DecodeBackend::from(qm)] {
        let mut caches = backend.new_caches(3, seq);
        // Slot 0: cold full-prompt prefill.
        let rows: Vec<(usize, u32)> = tokens.iter().map(|&t| (0, t)).collect();
        let cold_hidden = backend.forward_cached(&mut caches, &rows);
        let cold = backend.lm_logits(&cold_hidden);
        // Slot 1: donor prefix, exported as a block.
        let rows: Vec<(usize, u32)> = tokens[..prefix].iter().map(|&t| (1, t)).collect();
        backend.forward_cached(&mut caches, &rows);
        let block = caches.export_rows(1, 0, prefix);
        assert_eq!(block.rows(), prefix);
        assert_eq!(block.slice(1, 4).rows(), 3);
        // Slot 2: append the block, prefill only the suffix.
        caches.append_block(2, &block);
        assert_eq!(caches.slot_len(2), prefix);
        let rows: Vec<(usize, u32)> = tokens[prefix..].iter().map(|&t| (2, t)).collect();
        let warm_hidden = backend.forward_cached(&mut caches, &rows);
        let warm = backend.lm_logits(&warm_hidden);
        for (r, t) in (prefix..seq).enumerate() {
            for (g, w) in warm.row(r).iter().zip(cold.row(t)) {
                assert!(
                    g.to_bits() == w.to_bits(),
                    "{} pos={t}: {g} vs {w}",
                    backend.mode_name()
                );
            }
        }
        assert!(caches.used_bytes() > 0);
        assert!(caches.used_bytes() <= caches.memory_bytes());
    }
}

#[test]
fn decode_is_thread_invariant() {
    // Wider geometry so the head matmul crosses shapes where kernels pick
    // different paths; the gemv/pooled results must still agree.
    let cfg = ModelConfig::tiny_60m();
    let mut rng = Rng::seed_from_u64(0xDEC4);
    let model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
    let tokens = random_tokens(24, cfg.vocab_size, &mut rng);
    set_thread_override(Some(1));
    let base = cached_logits_chunked(&model, &tokens, &[16, 1, 1, 1, 1, 1, 1, 1, 1]);
    for threads in [2, 8] {
        set_thread_override(Some(threads));
        let got = cached_logits_chunked(&model, &tokens, &[16, 1, 1, 1, 1, 1, 1, 1, 1]);
        assert_bits_eq(&got, &base, &format!("threads={threads}"));
    }
    set_thread_override(None);
    let full = model.full_logits(&tokens, 1);
    assert_bits_eq(&base, &full, "threads=1 vs full forward");
}
