//! GPU profiles used by the memory/throughput model.

use serde::{Deserialize, Serialize};

/// A GPU's capacity and compute profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gpu {
    /// Marketing name.
    pub name: String,
    /// Usable device memory in GiB (a little below the marketing number to
    /// account for framework/CUDA reservations).
    pub memory_gib: f64,
    /// Sustained BF16 throughput in TFLOP/s.
    pub bf16_tflops: f64,
    /// Model FLOPs utilization achievable in this setting (dense decoder
    /// pre-training lands around 0.4–0.5 on A100s).
    pub mfu: f64,
}

impl Gpu {
    /// NVIDIA A100-80GB (the paper's testbed, 8 of them).
    pub fn a100_80g() -> Self {
        Gpu {
            name: "A100-80GB".to_string(),
            memory_gib: 79.0,
            bf16_tflops: 312.0,
            mfu: 0.45,
        }
    }

    /// A 12 GB consumer card (the paper's "low-end GPU" target, e.g.
    /// an RTX 3060-class device).
    pub fn consumer_12g() -> Self {
        Gpu {
            name: "RTX-12GB".to_string(),
            memory_gib: 11.6,
            bf16_tflops: 51.0,
            mfu: 0.35,
        }
    }

    /// Effective sustained FLOP/s.
    pub fn effective_flops(&self) -> f64 {
        self.bf16_tflops * 1e12 * self.mfu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_sane() {
        let a = Gpu::a100_80g();
        assert!(a.memory_gib > 70.0 && a.memory_gib < 80.0);
        assert!(a.effective_flops() > 1e14);
        let c = Gpu::consumer_12g();
        assert!(c.memory_gib < 12.0);
        assert!(c.effective_flops() < a.effective_flops());
    }
}
