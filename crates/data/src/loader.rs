//! Batch iteration for language-model pre-training.

use crate::corpus::SyntheticCorpus;

/// Streams `(tokens, next-token targets)` batches from a [`SyntheticCorpus`]
/// and holds out a fixed validation set, mirroring single-epoch C4 training.
///
/// Batches are laid out as `batch` concatenated sequences of length `seq`
/// (the layout [`apollo_nn::LlamaModel`](https://docs.rs) consumes).
#[derive(Debug, Clone)]
pub struct LmBatcher {
    corpus: SyntheticCorpus,
    batch: usize,
    seq: usize,
    /// Next train stream id; validation streams are negative space
    /// (`u64::MAX - k`), so they never collide.
    next_stream: u64,
}

impl LmBatcher {
    /// Creates a batcher.
    ///
    /// # Panics
    ///
    /// Panics if `batch` or `seq` is zero.
    pub fn new(corpus: SyntheticCorpus, batch: usize, seq: usize) -> Self {
        assert!(batch > 0 && seq > 0, "batch and seq must be positive");
        LmBatcher {
            corpus,
            batch,
            seq,
            next_stream: 1,
        }
    }

    /// Batch size.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Sequence length.
    pub fn seq(&self) -> usize {
        self.seq
    }

    /// A batcher over the same corpus and sequence length but a different
    /// batch size, cursor reset to the start. Data-parallel replicas use
    /// this to carve a global batch into per-slot micro-batches: a slot
    /// batcher positioned with [`Self::set_cursor`] draws exactly the
    /// streams its slice of the global batch would have drawn.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn with_batch(&self, batch: usize) -> Self {
        LmBatcher::new(self.corpus.clone(), batch, self.seq)
    }

    /// Current train-stream cursor: the id the next training batch draws
    /// first. Saved into checkpoints so a resumed run replays the exact
    /// data order an uninterrupted run would have seen.
    pub fn cursor(&self) -> u64 {
        self.next_stream
    }

    /// Restores the train-stream cursor from a checkpoint.
    pub fn set_cursor(&mut self, cursor: u64) {
        self.next_stream = cursor;
    }

    /// Produces the next training batch: `(tokens, targets)`, each of length
    /// `batch · seq`, where `targets[i]` is the token following `tokens[i]`.
    pub fn next_batch(&mut self) -> (Vec<u32>, Vec<u32>) {
        let mut tokens = Vec::with_capacity(self.batch * self.seq);
        let mut targets = Vec::with_capacity(self.batch * self.seq);
        for _ in 0..self.batch {
            let stream = self.next_stream;
            self.next_stream += 1;
            let chunk = self.corpus.generate(self.seq + 1, stream);
            tokens.extend_from_slice(&chunk[..self.seq]);
            targets.extend_from_slice(&chunk[1..]);
        }
        (tokens, targets)
    }

    /// A fixed validation set of `n_seqs` sequences, disjoint from every
    /// training stream. Returns `(tokens, targets, n_seqs)`.
    pub fn validation_set(&self, n_seqs: usize) -> (Vec<u32>, Vec<u32>, usize) {
        let mut tokens = Vec::with_capacity(n_seqs * self.seq);
        let mut targets = Vec::with_capacity(n_seqs * self.seq);
        for k in 0..n_seqs {
            let chunk = self.corpus.generate(self.seq + 1, u64::MAX - k as u64);
            tokens.extend_from_slice(&chunk[..self.seq]);
            targets.extend_from_slice(&chunk[1..]);
        }
        (tokens, targets, n_seqs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;

    fn batcher() -> LmBatcher {
        LmBatcher::new(SyntheticCorpus::new(CorpusConfig::with_vocab(64)), 4, 16)
    }

    #[test]
    fn batch_shapes_and_shift() {
        let mut b = batcher();
        let (tokens, targets) = b.next_batch();
        assert_eq!(tokens.len(), 4 * 16);
        assert_eq!(targets.len(), 4 * 16);
        // Within each sequence, targets are tokens shifted by one.
        for s in 0..4 {
            for i in 0..15 {
                assert_eq!(targets[s * 16 + i], tokens[s * 16 + i + 1]);
            }
        }
    }

    #[test]
    fn successive_batches_differ() {
        let mut b = batcher();
        let (t1, _) = b.next_batch();
        let (t2, _) = b.next_batch();
        assert_ne!(t1, t2);
    }

    #[test]
    fn validation_set_is_stable_and_disjoint_from_train() {
        let mut b = batcher();
        let (v1, _, n) = b.validation_set(3);
        let (v2, _, _) = b.validation_set(3);
        assert_eq!(v1, v2);
        assert_eq!(n, 3);
        let (t, _) = b.next_batch();
        assert_ne!(&v1[..16], &t[..16]);
    }

    #[test]
    fn cursor_roundtrip_replays_identical_batches() {
        let mut a = batcher();
        a.next_batch();
        let saved = a.cursor();
        let (t1, y1) = a.next_batch();
        let mut b = batcher();
        b.set_cursor(saved);
        let (t2, y2) = b.next_batch();
        assert_eq!(t1, t2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn two_batchers_with_same_corpus_agree() {
        let (mut a, mut b) = (batcher(), batcher());
        assert_eq!(a.next_batch(), b.next_batch());
    }

    #[test]
    fn slot_batchers_tile_the_global_batch() {
        // Two batch-2 batchers positioned at the halves of a batch-4
        // cursor must reproduce the batch-4 output exactly.
        let mut global = batcher();
        let (gt, gy) = global.next_batch();
        let mut lo = global.with_batch(2);
        let mut hi = global.with_batch(2);
        lo.set_cursor(1);
        hi.set_cursor(3);
        let (lt, ly) = lo.next_batch();
        let (ht, hy) = hi.next_batch();
        assert_eq!([lt, ht].concat(), gt);
        assert_eq!([ly, hy].concat(), gy);
        assert_eq!(lo.cursor(), 3);
    }
}
