//! Data-parallel scaling measurement: steps/sec of the DDP driver at 1, 2,
//! and 4 replicas on a tiny proxy model, against the analytic
//! `sysmodel::ThroughputModel::ddp_speedup` prediction.
//!
//! Prints a table and writes `BENCH_ddp.json` into the output directory
//! (first positional argument, default `.`). Deliberately **not** part of
//! the `perf_check` baseline set: replica scaling on a shared CI box is
//! too noisy to gate on; the EXPERIMENTS.md table is refreshed manually
//! from a quiet machine.
//!
//! Modes: `--smoke` shrinks the step count for CI sanity runs.

use apollo_data::{CorpusConfig, LmBatcher, SyntheticCorpus};
use apollo_nn::{LinearMode, LlamaModel, ModelConfig};
use apollo_obs::Obs;
use apollo_optim::{Apollo, Optimizer};
use apollo_sysmodel::{Gpu, ThroughputModel};
use apollo_tensor::Rng;
use apollo_train::{pretrain_ddp, DdpConfig, ResilienceConfig, TrainConfig};

fn measure(replicas: usize, steps: usize) -> (f64, u32) {
    let cfg = ModelConfig::test_tiny();
    let mut rng = Rng::seed_from_u64(0xDD9);
    let mut model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
    let corpus = SyntheticCorpus::new(CorpusConfig::with_vocab(cfg.vocab_size));
    let batcher = LmBatcher::new(corpus, 4, cfg.max_seq);
    let make_opt = move |i: usize| -> Box<dyn Optimizer> {
        Box::new(Apollo::new(2, 50).with_seed(0xA90110 + i as u64))
    };
    let out = pretrain_ddp(
        &mut model,
        &make_opt,
        &batcher,
        &TrainConfig::quick(steps),
        &DdpConfig::new(replicas),
        &ResilienceConfig::default(),
        &Obs::disabled(),
    );
    let loss_bits = out
        .log
        .train_losses
        .last()
        .map_or(0, |&(_, loss)| loss.to_bits());
    (steps as f64 / out.log.wall_secs, loss_bits)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_dir = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| ".".into());
    let steps = if smoke { 6 } else { 30 };

    let model = ThroughputModel::new(&ModelConfig::llama_7b(), Gpu::a100_80g(), 8, 256);
    println!("ddp scaling (test-tiny proxy, {steps} steps, apollo, batch 4)");
    println!(
        "{:<10} {:>10} {:>10} {:>12} {:>12}",
        "replicas", "steps/s", "speedup", "predicted", "loss bits"
    );

    let mut rows = Vec::new();
    let (base, base_bits) = measure(1, steps);
    for replicas in [1usize, 2, 4] {
        let (rate, bits) = if replicas == 1 {
            (base, base_bits)
        } else {
            measure(replicas, steps)
        };
        let speedup = rate / base;
        let predicted = model.ddp_speedup(replicas);
        assert_eq!(
            bits, base_bits,
            "replica-invariance violated at {replicas} replicas"
        );
        println!("{replicas:<10} {rate:>10.2} {speedup:>9.2}x {predicted:>11.2}x   0x{bits:08x}");
        rows.push(format!(
            "{{\"replicas\":{replicas},\"steps_per_sec\":{rate:.4},\"speedup\":{speedup:.4},\
             \"predicted\":{predicted:.4},\"loss_bits\":\"0x{bits:08x}\"}}"
        ));
    }
    let json = format!("{{\"entries\":[{}]}}\n", rows.join(","));
    let path = std::path::Path::new(&out_dir).join("BENCH_ddp.json");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    } else {
        println!("wrote {}", path.display());
    }
}
