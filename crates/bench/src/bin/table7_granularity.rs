//! Table 7: scaling-factor granularity ablation — channel-wise vs
//! tensor-wise, under both projection kinds, at rank n/4.

use apollo_bench::{pretrain_run, print_table, proxy_for, scaled, write_json, Method};
use serde::Serialize;

#[derive(Serialize)]
struct Cell {
    method: String,
    granularity: String,
    size: String,
    ppl: f32,
}

fn main() {
    let sizes = [
        ("60M", scaled(300)),
        ("130M", scaled(150)),
        ("350M", scaled(80)),
    ];
    let cases = [
        ("AdamW", "-", Method::AdamW),
        ("GaLore", "-", Method::GaLore),
        ("APOLLO w. SVD", "Channel", Method::ApolloSvd),
        ("APOLLO w. SVD", "Tensor", Method::ApolloTensorSvd),
        ("APOLLO", "Channel", Method::Apollo),
        ("APOLLO", "Tensor", Method::ApolloTensor),
    ];
    let mut cells = Vec::new();
    for (size, steps) in sizes {
        let cfg = proxy_for(size);
        for (name, gran, m) in cases {
            eprintln!("[table7] {size} {name}/{gran} ...");
            let log = pretrain_run(&cfg, m, steps, 4, 42, None);
            cells.push(Cell {
                method: name.to_string(),
                granularity: gran.to_string(),
                size: size.to_string(),
                ppl: log.final_ppl,
            });
        }
    }
    let mut rows = Vec::new();
    for (name, gran, _) in cases {
        let mut row = vec![name.to_string(), gran.to_string()];
        for (size, _) in sizes {
            let c = cells
                .iter()
                .find(|c| c.method == name && c.granularity == gran && c.size == size)
                .unwrap();
            row.push(format!("{:.2}", c.ppl));
        }
        rows.push(row);
    }
    print_table(
        "Table 7 — scaling-factor granularity at rank n/4 (val ppl)",
        &["Method", "Granularity", "60M", "130M", "350M"],
        &rows,
    );
    println!(
        "\nPaper shape: at rank n/4 tensor-wise is within a whisker of channel-wise, and both \
         beat AdamW/GaLore — granularity only matters in the extreme low-rank regime (Fig. 5d)."
    );
    write_json("table7_granularity", &cells);
}
