//! Step-time and end-to-end throughput accounting (Fig. 1 right, Fig. 9).

use apollo_nn::ModelConfig;
use apollo_optim::memory::MethodSpec;
use serde::{Deserialize, Serialize};

use crate::gpu::Gpu;
use crate::memory::{MemoryOptions, TrainingMemoryModel};

/// The paper's published constant: one full-model SVD subspace update on
/// LLaMA-7B takes ~10 minutes.
const SVD_SECONDS_7B: f64 = 600.0;

/// End-to-end throughput estimate for one method on one cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThroughputReport {
    /// Method label.
    pub method: String,
    /// Largest micro-batch per GPU that fits in memory.
    pub micro_batch: usize,
    /// Tokens processed per second across the cluster.
    pub tokens_per_sec: f64,
    /// Seconds per optimizer step (including amortized SVD stalls).
    pub step_seconds: f64,
    /// Peak per-GPU memory at that batch size, GiB.
    pub memory_gib: f64,
}

/// A per-step time series (Fig. 9's SVD-spike plot).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepTimeSeries {
    /// Method label.
    pub method: String,
    /// Seconds for each step.
    pub step_seconds: Vec<f64>,
}

impl StepTimeSeries {
    /// Tokens/second at each step, given tokens per step.
    pub fn throughput(&self, tokens_per_step: f64) -> Vec<f64> {
        self.step_seconds
            .iter()
            .map(|&s| tokens_per_step / s)
            .collect()
    }
}

/// Closed-form training throughput model.
#[derive(Debug, Clone)]
pub struct ThroughputModel {
    mem: TrainingMemoryModel,
    gpu: Gpu,
    n_gpus: usize,
    /// DDP scaling efficiency (naive DDP on NVLink ≈ 0.9).
    pub ddp_efficiency: f64,
    /// Sequence length.
    pub seq: usize,
    /// Subspace refresh period T for SVD-based methods (200 by default;
    /// the paper's 7B runs stretch it to 1000 to survive).
    pub svd_refresh_period: usize,
    /// Tokens-per-GPU at which MFU reaches half its peak. Small batches
    /// under-utilize the GPU (kernel-launch overhead, low arithmetic
    /// intensity) — this is what makes APOLLO's 4× batch worth ~3×
    /// throughput rather than 0%.
    pub mfu_half_tokens: f64,
}

impl ThroughputModel {
    /// Builds the model for a geometry on `n_gpus` copies of `gpu`.
    pub fn new(cfg: &ModelConfig, gpu: Gpu, n_gpus: usize, seq: usize) -> Self {
        ThroughputModel {
            mem: TrainingMemoryModel::new(cfg),
            gpu,
            n_gpus,
            ddp_efficiency: 0.9,
            seq,
            svd_refresh_period: 200,
            mfu_half_tokens: 4096.0,
        }
    }

    /// The memory sub-model.
    pub fn memory(&self) -> &TrainingMemoryModel {
        &self.mem
    }

    /// Predicted data-parallel speedup at `replicas` replicas relative to
    /// one: linear scaling discounted by `ddp_efficiency` once there is an
    /// all-reduce to pay for (a single replica communicates nothing).
    /// The measured curves in EXPERIMENTS.md are compared against this.
    pub fn ddp_speedup(&self, replicas: usize) -> f64 {
        if replicas <= 1 {
            1.0
        } else {
            replicas as f64 * self.ddp_efficiency
        }
    }

    /// Whether this method pays a periodic SVD stall.
    fn uses_svd(method: MethodSpec) -> bool {
        matches!(
            method,
            MethodSpec::GaLore { .. }
                | MethodSpec::GaLore8bit { .. }
                | MethodSpec::Fira { .. }
                | MethodSpec::ApolloSvd { .. }
        )
    }

    /// Seconds for one full-model SVD refresh, scaled from the paper's 7B
    /// constant by the `Σ min(m,n)²·max(m,n)` cost of the projectable
    /// tensors.
    pub fn svd_refresh_seconds(&self) -> f64 {
        let cost = |shapes: &[(usize, usize, bool)]| -> f64 {
            shapes
                .iter()
                .filter(|&&(_, _, p)| p)
                .map(|&(r, c, _)| {
                    let (m, n) = (r.min(c) as f64, r.max(c) as f64);
                    m * m * n
                })
                .sum()
        };
        let this = cost(self.mem.shapes());
        let seven_b = cost(TrainingMemoryModel::new(&ModelConfig::llama_7b()).shapes());
        SVD_SECONDS_7B * this / seven_b
    }

    /// Compute-bound seconds per step at a micro-batch size (classic
    /// `6·params·tokens` dense-decoder FLOPs), with a batch-dependent MFU:
    /// utilization scales as `bt / (bt + mfu_half_tokens)` in the per-GPU
    /// token count `bt`.
    pub fn compute_seconds(&self, micro_batch: usize) -> f64 {
        let tokens = (micro_batch * self.seq) as f64; // per GPU
        let flops = 6.0 * self.mem.weight_elems() as f64 * tokens;
        let util = tokens / (tokens + self.mfu_half_tokens);
        flops / (self.gpu.effective_flops() * util)
    }

    /// The largest micro-batch that fits in GPU memory for a method
    /// (Fig. 1 right's 4× batch advantage comes straight from this).
    pub fn max_micro_batch(&self, method: MethodSpec, opts_proto: &MemoryOptions) -> usize {
        let mut best = 0;
        for batch in 1..=4096 {
            let opts = MemoryOptions {
                batch,
                seq: self.seq,
                ..*opts_proto
            };
            if self.mem.breakdown(method, &opts).total_gib() > self.gpu.memory_gib {
                break;
            }
            best = batch;
        }
        best
    }

    /// Full throughput report: batch-size search, compute time, amortized
    /// SVD stall.
    pub fn report(&self, method: MethodSpec, opts_proto: &MemoryOptions) -> ThroughputReport {
        let micro_batch = self.max_micro_batch(method, opts_proto);
        let opts = MemoryOptions {
            batch: micro_batch.max(1),
            seq: self.seq,
            ..*opts_proto
        };
        let compute = self.compute_seconds(micro_batch.max(1));
        let svd = if Self::uses_svd(method) {
            self.svd_refresh_seconds() / self.svd_refresh_period as f64
        } else {
            0.0
        };
        let step_seconds = compute / self.ddp_efficiency + svd;
        let tokens_per_step = (micro_batch.max(1) * self.seq * self.n_gpus) as f64;
        ThroughputReport {
            method: method.label(),
            micro_batch,
            tokens_per_sec: if micro_batch == 0 {
                0.0
            } else {
                tokens_per_step / step_seconds
            },
            step_seconds,
            memory_gib: self.mem.breakdown(method, &opts).total_gib(),
        }
    }

    /// Per-step time series with SVD spikes every `refresh_every` steps
    /// (Fig. 9).
    pub fn step_time_series(
        &self,
        method: MethodSpec,
        micro_batch: usize,
        steps: usize,
        refresh_every: usize,
    ) -> StepTimeSeries {
        let compute = self.compute_seconds(micro_batch) / self.ddp_efficiency;
        let svd = self.svd_refresh_seconds();
        let step_seconds = (0..steps)
            .map(|s| {
                if Self::uses_svd(method) && s % refresh_every == 0 {
                    compute + svd
                } else {
                    compute
                }
            })
            .collect();
        StepTimeSeries {
            method: method.label(),
            step_seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::WeightPrecision;

    fn cluster_7b() -> ThroughputModel {
        ThroughputModel::new(&ModelConfig::llama_7b(), Gpu::a100_80g(), 8, 256)
    }

    #[test]
    fn ddp_speedup_is_discounted_linear() {
        let m = cluster_7b();
        assert_eq!(m.ddp_speedup(1), 1.0);
        assert!((m.ddp_speedup(2) - 1.8).abs() < 1e-12);
        assert!((m.ddp_speedup(4) - 3.6).abs() < 1e-12);
        assert!(m.ddp_speedup(4) > m.ddp_speedup(2));
    }

    #[test]
    fn svd_refresh_calibrated_to_paper_constant() {
        let t = cluster_7b().svd_refresh_seconds();
        assert!((t - 600.0).abs() < 1.0, "7B refresh {t}");
        let t1b = ThroughputModel::new(&ModelConfig::llama_1b(), Gpu::a100_80g(), 8, 256)
            .svd_refresh_seconds();
        assert!(t1b < t / 3.0, "1B refresh {t1b}");
    }

    #[test]
    fn apollo_supports_about_4x_adamw_batch() {
        // §5.3: AdamW caps at micro-batch 4; APOLLO scales to ~16. AdamW
        // runs the standard full-gradient path; APOLLO is deployed with the
        // layer-wise gradient update (Lv et al.), as the paper states.
        let m = cluster_7b();
        let adamw = m.max_micro_batch(MethodSpec::AdamW, &MemoryOptions::standard(1, 256));
        let apollo_opts = MemoryOptions {
            layer_wise_grad: true,
            ..MemoryOptions::standard(1, 256)
        };
        let apollo = m.max_micro_batch(MethodSpec::Apollo { rank: 256 }, &apollo_opts);
        assert!(
            (2..=8).contains(&adamw),
            "AdamW micro-batch {adamw} (paper: 4)"
        );
        let ratio = apollo as f64 / adamw as f64;
        assert!(
            (2.0..=8.0).contains(&ratio),
            "APOLLO/AdamW batch ratio {ratio} (paper: 4x)"
        );
    }

    #[test]
    fn fig1_right_throughput_ordering() {
        // APOLLO ≳ APOLLO-Mini ≫ GaLore > AdamW in tokens/sec. Projected
        // methods deploy with layer-wise gradients; GaLore's 7B recipe
        // stretches the SVD refresh to every 1000 steps to stay viable.
        let mut m = cluster_7b();
        m.svd_refresh_period = 1000;
        let std = MemoryOptions::standard(1, 256);
        let lw = MemoryOptions {
            layer_wise_grad: true,
            ..std
        };
        let adamw = m.report(MethodSpec::AdamW, &std).tokens_per_sec;
        let galore = m
            .report(MethodSpec::GaLore { rank: 1024 }, &lw)
            .tokens_per_sec;
        let apollo = m
            .report(MethodSpec::Apollo { rank: 256 }, &lw)
            .tokens_per_sec;
        let mini = m.report(MethodSpec::ApolloMini, &lw).tokens_per_sec;
        assert!(apollo > galore, "APOLLO {apollo} vs GaLore {galore}");
        assert!(mini > galore, "Mini {mini} vs GaLore {galore}");
        assert!(galore > adamw, "GaLore {galore} vs AdamW {adamw}");
        // Headline: ~3× over AdamW (accept 1.5-6).
        let ratio = apollo / adamw;
        assert!((1.5..6.0).contains(&ratio), "APOLLO/AdamW {ratio}");
    }

    #[test]
    fn adamw_memory_at_batch4_is_near_capacity() {
        // §5.3: "With a batch size of 4, AdamW already reaches the memory
        // limit (~79 GB)".
        let m = cluster_7b();
        let opts = MemoryOptions::standard(4, 256);
        let b = m.memory().breakdown(MethodSpec::AdamW, &opts);
        assert!(
            (65.0..85.0).contains(&b.total_gib()),
            "AdamW bs4 total {}",
            b.total_gib()
        );
    }

    #[test]
    fn step_series_has_spikes_for_galore_only() {
        let m = cluster_7b();
        let galore = m.step_time_series(MethodSpec::GaLore { rank: 1024 }, 8, 50, 10);
        let apollo = m.step_time_series(MethodSpec::Apollo { rank: 256 }, 8, 50, 10);
        let g_max = galore.step_seconds.iter().cloned().fold(0.0, f64::max);
        let g_min = galore.step_seconds.iter().cloned().fold(f64::MAX, f64::min);
        assert!(g_max / g_min > 10.0, "GaLore spikes {g_max}/{g_min}");
        let a_max = apollo.step_seconds.iter().cloned().fold(0.0, f64::max);
        let a_min = apollo.step_seconds.iter().cloned().fold(f64::MAX, f64::min);
        assert!((a_max / a_min - 1.0).abs() < 1e-9, "APOLLO must be flat");
    }

    #[test]
    fn quantized_weights_reduce_total_memory() {
        let m = cluster_7b();
        let bf16 = MemoryOptions::figure1(256);
        let int8 = MemoryOptions {
            weights: WeightPrecision::Int8 { group: 128 },
            ..bf16
        };
        let a = m
            .memory()
            .breakdown(MethodSpec::ApolloMini, &bf16)
            .total_gib();
        let b = m
            .memory()
            .breakdown(MethodSpec::ApolloMini, &int8)
            .total_gib();
        assert!(b < a * 0.7, "{b} vs {a}");
    }
}
