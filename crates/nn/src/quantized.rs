//! INT8 weight / BF16 KV-cache decode path (the `NumericsMode::Fast` +
//! `--int8-decode` tier).
//!
//! [`QuantizedModel`] snapshots a trained [`LlamaModel`] into group-128
//! INT8 weights (one [`QuantizedMatrix`] per attention/MLP linear and the
//! LM head) and decodes against BF16 key/value caches. Every matmul is a
//! fused dequantize-GEMV — the f32 weight matrix is never materialized —
//! and the attention/norm/activation loops run on the explicit-SIMD
//! kernels in [`apollo_tensor::simd`] with BF16 operands loaded in
//! register.
//!
//! Unlike [`LlamaModel::forward_cached`], this path makes **no bitwise
//! promise**: it is gated by the Fast-tier tolerance tests
//! (`nn/tests/quantized_decode.rs`), which bound its divergence from an
//! exact model holding the same dequantized weights.

use std::cell::RefCell;

use apollo_quant::QuantizedMatrix;
use apollo_tensor::bf16::bf16_encode_slice;
use apollo_tensor::{fused, simd, Matrix};

use crate::config::ModelConfig;
use crate::model::LlamaModel;

/// Per-thread reusable temporaries for [`QuantizedModel::forward_cached`].
/// A decode step is one token, so the ~dozen per-layer activations would
/// otherwise churn the allocator every token; reusing them turns each into
/// a `resize_to` of already-owned storage.
struct Scratch {
    x: Matrix,
    hn: Matrix,
    q: Matrix,
    k: Matrix,
    v: Matrix,
    att: Matrix,
    o: Matrix,
    mn: Matrix,
    gate: Matrix,
    up: Matrix,
    act: Matrix,
    mlp: Matrix,
    s: Vec<f32>,
}

impl Scratch {
    fn new() -> Self {
        let m = || Matrix::zeros(0, 0);
        Scratch {
            x: m(),
            hn: m(),
            q: m(),
            k: m(),
            v: m(),
            att: m(),
            o: m(),
            mn: m(),
            gate: m(),
            up: m(),
            act: m(),
            mlp: m(),
            s: Vec::new(),
        }
    }
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new());
}

/// Applies one quantized linear to every row of `x` via the fused
/// dequant-GEMV, reshaping `y` to `x.rows() × out_dim`.
fn linear_into(w: &QuantizedMatrix, x: &Matrix, y: &mut Matrix) {
    let (_, out_dim) = w.shape();
    y.resize_to(x.rows(), out_dim);
    for r in 0..x.rows() {
        w.dequant_gemv_into(x.row(r), y.row_mut(r));
    }
}

/// Row-wise RMSNorm via the SIMD kernels (`1/√(mean(x²)+ε)` with learned
/// gain) into `y` — same math as the exact path's fused kernel, fast
/// association.
fn rmsnorm_into(x: &Matrix, gain: &[f32], y: &mut Matrix) {
    let n = x.cols() as f32;
    y.resize_to(x.rows(), x.cols());
    for r in 0..x.rows() {
        let row = x.row(r);
        let inv = 1.0 / (simd::sum_squares(row) / n + 1e-5).sqrt();
        simd::scale_gain(y.row_mut(r), row, inv, gain);
    }
}

/// INT8 weight-group size; 128 as in Q-GaLore / the paper's Q-APOLLO runs.
pub const DECODE_QUANT_GROUP: usize = 128;

/// One transformer layer with INT8 projection weights and f32 norm gains.
#[derive(Debug, Clone)]
struct QuantizedLayer {
    attn_norm: Vec<f32>,
    wq: QuantizedMatrix,
    wk: QuantizedMatrix,
    wv: QuantizedMatrix,
    wo: QuantizedMatrix,
    mlp_norm: Vec<f32>,
    gate: QuantizedMatrix,
    up: QuantizedMatrix,
    down: QuantizedMatrix,
}

/// A BF16 key/value cache for one sequence: per layer, `capacity × hidden`
/// u16 payloads for post-RoPE keys and values (2 bytes per element vs the
/// exact cache's 4).
#[derive(Debug, Clone)]
pub struct Bf16KvCache {
    /// Per-layer keys, flat row-major `capacity × hidden` BF16 payloads.
    k: Vec<Vec<u16>>,
    /// Per-layer values, same layout.
    v: Vec<Vec<u16>>,
    hidden: usize,
    capacity: usize,
    len: usize,
}

impl Bf16KvCache {
    /// Positions filled so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no positions have been filled yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum number of positions the cache can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Positions still available before the cache is full.
    pub fn remaining(&self) -> usize {
        self.capacity - self.len
    }

    /// Resets the cache for a new sequence.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Bytes of K/V storage across all layers (2 per BF16 element).
    pub fn memory_bytes(&self) -> usize {
        self.k
            .iter()
            .chain(self.v.iter())
            .map(|m| m.len() * 2)
            .sum()
    }

    /// Copies rows `lo..hi` of every layer into an owned [`Bf16Span`].
    /// BF16 payloads are copied verbatim (no re-encode), so a later
    /// [`Bf16KvCache::append_span`] restores exactly the cached bits.
    ///
    /// # Panics
    ///
    /// Panics unless `lo <= hi <= len()`.
    pub fn export_rows(&self, lo: usize, hi: usize) -> Bf16Span {
        assert!(
            lo <= hi && hi <= self.len,
            "export_rows: {lo}..{hi} of {}",
            self.len
        );
        let cut = |layers: &[Vec<u16>]| -> Vec<Vec<u16>> {
            layers
                .iter()
                .map(|l| l[lo * self.hidden..hi * self.hidden].to_vec())
                .collect()
        };
        Bf16Span {
            k: cut(&self.k),
            v: cut(&self.v),
            rows: hi - lo,
            hidden: self.hidden,
        }
    }

    /// Appends a span's rows at the current length and advances it — a
    /// bitwise payload copy, mirroring [`crate::KvCache::append_span`].
    ///
    /// # Panics
    ///
    /// Panics on layer/width mismatch or if the span does not fit.
    pub fn append_span(&mut self, span: &Bf16Span) {
        assert_eq!(span.k.len(), self.k.len(), "append_span: layer count");
        assert_eq!(span.hidden, self.hidden, "append_span: hidden width");
        assert!(span.rows <= self.remaining(), "append_span: cache full");
        let lo = self.len * self.hidden;
        let hi = (self.len + span.rows) * self.hidden;
        for (dst, src) in self.k.iter_mut().zip(&span.k) {
            dst[lo..hi].copy_from_slice(src);
        }
        for (dst, src) in self.v.iter_mut().zip(&span.v) {
            dst[lo..hi].copy_from_slice(src);
        }
        self.len += span.rows;
    }
}

/// An owned copy of consecutive BF16 KV rows, the [`crate::KvSpan`] mirror
/// for the INT8/BF16 decode tier.
#[derive(Debug, Clone)]
pub struct Bf16Span {
    /// Per-layer keys, `rows × hidden` BF16 payloads.
    k: Vec<Vec<u16>>,
    /// Per-layer values, same layout.
    v: Vec<Vec<u16>>,
    rows: usize,
    hidden: usize,
}

impl Bf16Span {
    /// Token positions covered.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Bytes of BF16 storage across all layers.
    pub fn memory_bytes(&self) -> usize {
        self.k
            .iter()
            .chain(self.v.iter())
            .map(|l| l.len() * 2)
            .sum()
    }

    /// An owned copy of rows `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics unless `lo <= hi <= rows()`.
    pub fn slice(&self, lo: usize, hi: usize) -> Bf16Span {
        assert!(
            lo <= hi && hi <= self.rows,
            "slice: {lo}..{hi} of {}",
            self.rows
        );
        let cut = |layers: &[Vec<u16>]| -> Vec<Vec<u16>> {
            layers
                .iter()
                .map(|l| l[lo * self.hidden..hi * self.hidden].to_vec())
                .collect()
        };
        Bf16Span {
            k: cut(&self.k),
            v: cut(&self.v),
            rows: hi - lo,
            hidden: self.hidden,
        }
    }
}

/// An INT8-quantized snapshot of a [`LlamaModel`] for fast decode.
///
/// The embedding table and norm gains stay in f32 (the embedding is a
/// row gather, not a matmul; the gains are `1 × hidden`); every projection
/// weight — wq/wk/wv/wo, gate/up/down, and the LM head — is group-wise
/// INT8.
#[derive(Debug, Clone)]
pub struct QuantizedModel {
    cfg: ModelConfig,
    embed: Matrix,
    layers: Vec<QuantizedLayer>,
    final_norm: Vec<f32>,
    head: QuantizedMatrix,
    /// RoPE frequency table, precomputed once at quantization time (pure
    /// `powf` of the fixed geometry) instead of per decode step.
    freqs: Vec<f32>,
}

impl QuantizedModel {
    /// Quantizes a trained model with the default group size
    /// ([`DECODE_QUANT_GROUP`]).
    pub fn from_model(model: &LlamaModel) -> Self {
        Self::from_model_grouped(model, DECODE_QUANT_GROUP)
    }

    /// Quantizes a trained model with an explicit group size. Works for any
    /// [`crate::LinearMode`]: each linear's effective dense weight is
    /// materialized once, quantized, and dropped.
    ///
    /// # Panics
    ///
    /// Panics if `group == 0`.
    pub fn from_model_grouped(model: &LlamaModel, group: usize) -> Self {
        let q = |lin: &crate::linear::Linear| {
            QuantizedMatrix::quantize(&lin.effective_weight(&model.params), group)
        };
        let gain = |idx: usize| model.params[idx].value.as_slice().to_vec();
        QuantizedModel {
            cfg: model.cfg.clone(),
            embed: model.params[model.embed].value.clone(),
            layers: model
                .layers
                .iter()
                .map(|l| QuantizedLayer {
                    attn_norm: gain(l.attn_norm),
                    wq: q(&l.wq),
                    wk: q(&l.wk),
                    wv: q(&l.wv),
                    wo: q(&l.wo),
                    mlp_norm: gain(l.mlp_norm),
                    gate: q(&l.gate),
                    up: q(&l.up),
                    down: q(&l.down),
                })
                .collect(),
            final_norm: gain(model.final_norm),
            head: QuantizedMatrix::quantize(&model.params[model.head].value, group),
            freqs: fused::rope_freqs(model.cfg.head_dim(), model.cfg.rope_theta),
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// Bytes of weight storage: INT8 data + group scales for every
    /// quantized projection, plus the f32 embedding and norm gains.
    pub fn weight_bytes(&self) -> usize {
        let mut total = self.embed.len() * 4 + self.final_norm.len() * 4 + self.head.memory_bytes();
        for l in &self.layers {
            total += (l.attn_norm.len() + l.mlp_norm.len()) * 4;
            for w in [&l.wq, &l.wk, &l.wv, &l.wo, &l.gate, &l.up, &l.down] {
                total += w.memory_bytes();
            }
        }
        total
    }

    /// Allocates a fresh [`Bf16KvCache`] able to hold `capacity` positions.
    pub fn new_kv_cache(&self, capacity: usize) -> Bf16KvCache {
        let h = self.cfg.hidden;
        let n = self.layers.len();
        Bf16KvCache {
            k: (0..n).map(|_| vec![0u16; capacity * h]).collect(),
            v: (0..n).map(|_| vec![0u16; capacity * h]).collect(),
            hidden: h,
            capacity,
            len: 0,
        }
    }

    /// Runs the trunk over a batch of new token rows against BF16 caches
    /// and returns the final-norm hidden states. Row semantics (cache
    /// index, absolute position, in-call attention) match
    /// [`LlamaModel::forward_cached`] exactly; only the arithmetic tier
    /// differs.
    ///
    /// # Panics
    ///
    /// Panics if a cache index or token is out of range, or a row's
    /// position would exceed its cache's capacity.
    pub fn forward_cached(&self, caches: &mut [Bf16KvCache], rows: &[(usize, u32)]) -> Matrix {
        SCRATCH.with(|cell| self.forward_scratch(&mut cell.borrow_mut(), caches, rows))
    }

    fn forward_scratch(
        &self,
        sc: &mut Scratch,
        caches: &mut [Bf16KvCache],
        rows: &[(usize, u32)],
    ) -> Matrix {
        let h = self.cfg.hidden;
        let heads = self.cfg.n_heads;
        let hd = self.cfg.head_dim();
        let n_rows = rows.len();
        assert!(n_rows > 0, "forward_cached: no rows");

        let mut next_len: Vec<usize> = caches.iter().map(|c| c.len).collect();
        let positions: Vec<usize> = rows
            .iter()
            .map(|&(c, tok)| {
                assert!(
                    (tok as usize) < self.cfg.vocab_size,
                    "forward_cached: token {tok} out of vocab"
                );
                assert_eq!(caches[c].hidden, h, "forward_cached: cache geometry");
                let pos = next_len[c];
                assert!(
                    pos < caches[c].capacity,
                    "forward_cached: cache {c} full at position {pos}"
                );
                next_len[c] += 1;
                pos
            })
            .collect();

        // Split borrows: every temporary is an independent scratch field.
        let Scratch {
            x,
            hn,
            q,
            k,
            v,
            att,
            o,
            mn,
            gate,
            up,
            act,
            mlp,
            s,
        } = sc;

        x.resize_to(n_rows, h);
        for (r, &(_, tok)) in rows.iter().enumerate() {
            x.row_mut(r).copy_from_slice(self.embed.row(tok as usize));
        }

        let scale = 1.0 / (hd as f32).sqrt();
        for (l, layer) in self.layers.iter().enumerate() {
            rmsnorm_into(x, &layer.attn_norm, hn);
            linear_into(&layer.wq, hn, q);
            linear_into(&layer.wk, hn, k);
            linear_into(&layer.wv, hn, v);
            for (r, &pos) in positions.iter().enumerate() {
                fused::rope_rotate_row(q.row_mut(r), pos as f32, heads, hd, &self.freqs, false);
                fused::rope_rotate_row(k.row_mut(r), pos as f32, heads, hd, &self.freqs, false);
            }
            for (r, &(c, _)) in rows.iter().enumerate() {
                let pos = positions[r];
                let cache = &mut caches[c];
                bf16_encode_slice(k.row(r), &mut cache.k[l][pos * h..(pos + 1) * h]);
                bf16_encode_slice(v.row(r), &mut cache.v[l][pos * h..(pos + 1) * h]);
            }
            att.resize_to(n_rows, h);
            for (r, &(c, _)) in rows.iter().enumerate() {
                let pos = positions[r];
                let kc = &caches[c].k[l];
                let vc = &caches[c].v[l];
                let qrow = q.row(r);
                let orow = att.row_mut(r);
                for hh in 0..heads {
                    let lanes = hh * hd..(hh + 1) * hd;
                    let qh = &qrow[lanes.clone()];
                    // Scores against every cached position in one fused
                    // call, BF16 keys decoded in register.
                    s.resize(pos + 1, 0.0);
                    simd::attn_scores_bf16(qh, kc, h, hh * hd, scale, s);
                    let maxv = simd::max_slice(s);
                    let denom = simd::softmax_exp_sum(s, maxv);
                    // probs · V with the softmax denominator folded into
                    // the probabilities (one fewer pass over the output).
                    let inv = 1.0 / denom;
                    for pj in s.iter_mut() {
                        *pj *= inv;
                    }
                    simd::attn_mix_bf16(s, vc, h, hh * hd, &mut orow[lanes]);
                }
            }
            linear_into(&layer.wo, att, o);
            x.add_assign(o);

            rmsnorm_into(x, &layer.mlp_norm, mn);
            linear_into(&layer.gate, mn, gate);
            linear_into(&layer.up, mn, up);
            act.resize_to(n_rows, gate.cols());
            for r in 0..n_rows {
                simd::silu_mul(gate.row(r), up.row(r), act.row_mut(r));
            }
            linear_into(&layer.down, act, mlp);
            x.add_assign(mlp);
        }
        for (c, len) in next_len.into_iter().enumerate() {
            caches[c].len = len;
        }
        let mut out = Matrix::zeros(0, 0);
        rmsnorm_into(x, &self.final_norm, &mut out);
        out
    }

    /// Decodes final-norm hidden rows through the INT8 LM head.
    pub fn lm_logits(&self, hidden: &Matrix) -> Matrix {
        let mut y = Matrix::zeros(0, 0);
        linear_into(&self.head, hidden, &mut y);
        y
    }

    /// Rebuilds a dense [`LlamaModel`] holding this snapshot's
    /// *dequantized* weights — the tolerance-test oracle: running it
    /// exactly isolates the Fast-tier arithmetic error from the
    /// quantization error.
    ///
    /// # Panics
    ///
    /// Panics unless `template` is a dense model with this snapshot's
    /// geometry.
    pub fn dequantize_into(&self, template: &LlamaModel) -> LlamaModel {
        let mut m = template.clone();
        for (l, ql) in m.layers.clone().iter().zip(&self.layers) {
            for (lin, qw) in [
                (&l.wq, &ql.wq),
                (&l.wk, &ql.wk),
                (&l.wv, &ql.wv),
                (&l.wo, &ql.wo),
                (&l.gate, &ql.gate),
                (&l.up, &ql.up),
                (&l.down, &ql.down),
            ] {
                lin.overwrite_dense(&mut m.params, qw.dequantize());
            }
        }
        m.params[m.head].value = self.head.dequantize();
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KvCache, LinearMode};
    use apollo_tensor::Rng;

    fn decode_both(
        model: &LlamaModel,
        qm: &QuantizedModel,
        tokens: &[u32],
    ) -> (Vec<Matrix>, Vec<Matrix>) {
        let mut ec: Vec<KvCache> = vec![model.new_kv_cache(tokens.len())];
        let mut qc = vec![qm.new_kv_cache(tokens.len())];
        let mut exact = Vec::new();
        let mut fast = Vec::new();
        for &t in tokens {
            let he = model.forward_cached(&mut ec, &[(0, t)]);
            let hq = qm.forward_cached(&mut qc, &[(0, t)]);
            exact.push(model.lm_logits(&he));
            fast.push(qm.lm_logits(&hq));
        }
        (exact, fast)
    }

    #[test]
    fn quantized_decode_tracks_dequantized_exact_model() {
        let cfg = ModelConfig::test_tiny();
        let mut rng = Rng::seed_from_u64(70);
        let model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
        let qm = QuantizedModel::from_model(&model);
        // Oracle: an exact model holding the dequantized weights — this
        // isolates Fast-tier arithmetic error from quantization error.
        let oracle = qm.dequantize_into(&model);
        let tokens: Vec<u32> = (0..12).map(|_| rng.below(cfg.vocab_size) as u32).collect();
        let (exact, fast) = decode_both(&oracle, &qm, &tokens);
        // Residual divergence is dominated by the BF16 KV rounding (2⁻⁸
        // relative per element), compounded across layers and positions.
        for (step, (e, f)) in exact.iter().zip(&fast).enumerate() {
            for (a, b) in e.as_slice().iter().zip(f.as_slice()) {
                let tol = 2e-2 * a.abs().max(1.0);
                assert!((a - b).abs() <= tol, "step {step}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn quantized_decode_argmax_matches_source_model() {
        // Against the *source* model (quantization error included) the
        // logits drift, but greedy decode should still agree on a short
        // horizon for a random init.
        let cfg = ModelConfig::test_tiny();
        let mut rng = Rng::seed_from_u64(71);
        let model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
        let qm = QuantizedModel::from_model(&model);
        let tokens: Vec<u32> = (0..8).map(|_| rng.below(cfg.vocab_size) as u32).collect();
        let (exact, fast) = decode_both(&model, &qm, &tokens);
        let argmax = |m: &Matrix| {
            let row = m.row(0);
            (0..row.len())
                .max_by(|&a, &b| row[a].total_cmp(&row[b]))
                .unwrap()
        };
        let agree = exact
            .iter()
            .zip(&fast)
            .filter(|(e, f)| argmax(e) == argmax(f))
            .count();
        assert!(agree >= 6, "only {agree}/8 greedy tokens agree");
    }

    #[test]
    fn bf16_cache_accounts_memory_and_clears() {
        let cfg = ModelConfig::test_tiny();
        let mut rng = Rng::seed_from_u64(72);
        let model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
        let qm = QuantizedModel::from_model(&model);
        let mut cache = qm.new_kv_cache(16);
        assert_eq!(cache.memory_bytes(), 2 * 2 * cfg.n_layers * 16 * cfg.hidden);
        assert_eq!(cache.remaining(), 16);
        qm.forward_cached(std::slice::from_mut(&mut cache), &[(0, 1), (0, 2)]);
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn quantized_weights_use_a_fraction_of_f32_storage() {
        let cfg = ModelConfig::tiny_60m();
        let mut rng = Rng::seed_from_u64(73);
        let model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
        let qm = QuantizedModel::from_model(&model);
        let f32_bytes: usize = model.params.iter().map(|p| p.value.len() * 4).sum();
        // Projections drop to ~1/4; embedding/head dominate tiny geometries
        // so just require a strict saving.
        assert!(
            qm.weight_bytes() < f32_bytes,
            "{} !< {f32_bytes}",
            qm.weight_bytes()
        );
    }

    #[test]
    fn lora_and_factored_models_quantize_via_effective_weights() {
        let cfg = ModelConfig::test_tiny();
        let mut rng = Rng::seed_from_u64(74);
        for mode in [
            LinearMode::LoRa {
                rank: 2,
                alpha: 4.0,
            },
            LinearMode::Factored { rank: 4 },
        ] {
            let model = LlamaModel::new(&cfg, mode, &mut rng);
            let qm = QuantizedModel::from_model(&model);
            let mut cache = qm.new_kv_cache(4);
            let h = qm.forward_cached(std::slice::from_mut(&mut cache), &[(0, 3)]);
            assert!(qm.lm_logits(&h).all_finite());
        }
    }
}
