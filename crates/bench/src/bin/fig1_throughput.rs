//! Fig. 1 (right): end-to-end LLaMA-7B training throughput on 8×A100-80G.
//!
//! The batch-size search under the 80 GB budget plus the amortized SVD
//! stall reproduce the paper's ~3× (vs AdamW) and ~2× (vs GaLore)
//! advantages.

use apollo_bench::{print_table, write_json};
use apollo_nn::ModelConfig;
use apollo_optim::memory::MethodSpec;
use apollo_sysmodel::{Gpu, MemoryOptions, ThroughputModel};

fn main() {
    let mut model = ThroughputModel::new(&ModelConfig::llama_7b(), Gpu::a100_80g(), 8, 256);
    // The paper's 7B GaLore recipe stretches the subspace refresh to every
    // 1000 steps (A1); APOLLO needs no such accommodation.
    model.svd_refresh_period = 1000;

    let std = MemoryOptions::standard(1, 256);
    let lw = MemoryOptions {
        layer_wise_grad: true,
        ..std
    };
    let cases = [
        (MethodSpec::AdamW, std),
        (MethodSpec::GaLore { rank: 1024 }, lw),
        (MethodSpec::Apollo { rank: 256 }, lw),
        (MethodSpec::ApolloMini, lw),
    ];
    let mut reports = Vec::new();
    for (spec, opts) in cases {
        reports.push(model.report(spec, &opts));
    }
    let base = reports[0].tokens_per_sec;
    let table: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.method.clone(),
                format!("{}", r.micro_batch),
                format!("{:.1}", r.memory_gib),
                format!("{:.2}", r.step_seconds),
                format!("{:.0}", r.tokens_per_sec),
                format!("{:.2}x", r.tokens_per_sec / base),
            ]
        })
        .collect();
    print_table(
        "Fig. 1 (right) — LLaMA-7B throughput, 8x A100-80GB",
        &[
            "Method",
            "Micro-batch",
            "Mem (GiB)",
            "s/step",
            "Tokens/s",
            "vs AdamW",
        ],
        &table,
    );
    println!("\nPaper shape: APOLLO ≈3x AdamW and ≈2x GaLore via 4x larger batches + no SVD.");
    write_json("fig1_throughput", &reports);
}
