//! Façade crate for the APOLLO reproduction.
//!
//! Re-exports every subsystem so examples and integration tests can use a
//! single dependency. See the individual crates for details:
//!
//! - [`tensor`] — dense matrix kernels, RNG, SVD/QR
//! - [`autograd`] — tape-based reverse-mode automatic differentiation
//! - [`nn`] — LLaMA-style transformer blocks and model configs
//! - [`data`] — synthetic C4-substitute corpus and fine-tuning tasks
//! - [`optim`] — the paper's contribution: APOLLO, APOLLO-Mini, and the
//!   baseline optimizers (AdamW, GaLore, Fira, 8-bit Adam, SGD, …)
//! - [`quant`] — INT8 group quantization (Q-APOLLO / Q-GaLore)
//! - [`train`] — training loops, LR schedules, evaluation
//! - [`sysmodel`] — analytic GPU memory / throughput model

pub use apollo_autograd as autograd;
pub use apollo_data as data;
pub use apollo_nn as nn;
pub use apollo_optim as optim;
pub use apollo_quant as quant;
pub use apollo_sysmodel as sysmodel;
pub use apollo_tensor as tensor;
pub use apollo_train as train;
