//! Open-loop Poisson load generator with deterministic fault injection.
//!
//! Open loop means arrivals are scheduled by the clock, not by response
//! completion — the generator keeps offering load at the configured rate
//! even when the server slows down, which is what makes overload (and the
//! shedding path) reachable at all. Inter-arrival gaps are exponential
//! draws from a seeded [`apollo_tensor::Rng`], so a given
//! `(seed, rate, requests)` triple always produces the same arrival
//! schedule and the same fault plan.
//!
//! Faults, chosen per-request from the same deterministic stream
//! ([`FaultMix`]):
//!
//! - **slow-loris** — trickle one header byte at a time past the server's
//!   header deadline; the server must answer 408 or close, never hang.
//! - **disconnect** — start a streaming generate, read one chunk, drop
//!   the socket; the server must cancel the request and free its slot.
//! - **malformed** — send a garbage request line; the server must answer
//!   400 and keep the connection count sane.
//! - **burst** — fire a back-to-back clump of extra requests with no
//!   inter-arrival gap, pushing the server through its shed watermark.
//!
//! Well-formed requests retry on 429/503 with capped exponential backoff
//! honoring `Retry-After` (generation is idempotent per seed, so retries
//! are safe). The run produces a [`LoadReport`] with latency percentiles
//! over successful requests, goodput, and the shed rate — the numbers
//! `BENCH_serve.json` pins.
//!
//! **Traffic shape.** `prefix_reuse` models the shared-system-prompt
//! pattern that prefix caching exists for: that fraction of requests
//! opens with a deterministic `prefix_len`-token prefix (one per
//! adapter, derived from the run seed) followed by a per-request random
//! suffix. `adapters` spreads requests across the first N adapter names
//! advertised by `/healthz`, exercising multi-tenant batching.

use std::io::Write;
use std::net::TcpStream;
use std::sync::mpsc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use apollo_tensor::Rng;
use serde::Value;

use crate::net::{self, ChunkedReader};

/// Per-request fault probabilities (the rest arrive well-formed).
#[derive(Debug, Clone, Copy)]
pub struct FaultMix {
    /// Probability of a slow-loris request (trickled header bytes).
    pub slow_loris: f64,
    /// Probability of a mid-stream client disconnect.
    pub disconnect: f64,
    /// Probability of a malformed request line.
    pub malformed: f64,
    /// Probability that a request arrives as a burst of `burst_size`
    /// back-to-back submissions.
    pub burst: f64,
    /// Requests per burst.
    pub burst_size: usize,
}

impl FaultMix {
    /// No faults — pure well-formed load.
    pub fn none() -> Self {
        FaultMix {
            slow_loris: 0.0,
            disconnect: 0.0,
            malformed: 0.0,
            burst: 0.0,
            burst_size: 4,
        }
    }
}

impl Default for FaultMix {
    fn default() -> Self {
        FaultMix {
            slow_loris: 0.05,
            disconnect: 0.05,
            malformed: 0.05,
            burst: 0.05,
            burst_size: 4,
        }
    }
}

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address, e.g. `127.0.0.1:8337`.
    pub addr: String,
    /// Well-formed request count (faults ride on top of these arrivals).
    pub requests: usize,
    /// Offered load in requests/second (open loop).
    pub rate: f64,
    /// Seed for arrivals, fault plan, and per-request sampling seeds.
    pub seed: u64,
    /// Prompt length in tokens (clamped to the server's KV capacity).
    pub prompt_len: usize,
    /// `max_new_tokens` sent with each request.
    pub max_new_tokens: usize,
    /// `deadline_ms` sent with each request.
    pub deadline_ms: u64,
    /// Request streamed (chunked NDJSON) responses.
    pub stream: bool,
    /// Retries after 429/503 before counting the request as shed.
    pub max_retries: usize,
    /// Ceiling on the per-attempt backoff (bounds `Retry-After`).
    pub backoff_cap: Duration,
    /// Client-side timeout per attempt.
    pub timeout: Duration,
    /// Fault plan.
    pub faults: FaultMix,
    /// Fraction of well-formed requests that open with the shared prefix
    /// (0 disables the shape and keeps the legacy request stream).
    pub prefix_reuse: f64,
    /// Shared-prefix length in tokens (clamped so at least one suffix
    /// token remains).
    pub prefix_len: usize,
    /// Spread requests across this many adapters from `/healthz`
    /// (clamped to what the server advertises; 0 = no adapter field).
    pub adapters: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: String::new(),
            requests: 50,
            rate: 50.0,
            seed: 0,
            prompt_len: 8,
            max_new_tokens: 8,
            deadline_ms: 5_000,
            stream: false,
            max_retries: 3,
            backoff_cap: Duration::from_millis(200),
            timeout: Duration::from_secs(30),
            faults: FaultMix::none(),
            prefix_reuse: 0.0,
            prefix_len: 0,
            adapters: 0,
        }
    }
}

/// Aggregated outcome of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Well-formed requests sent (including burst extras).
    pub sent: usize,
    /// Requests that completed with HTTP 200 and a terminal outcome.
    pub ok: usize,
    /// Requests still shed (429/503) after all retries.
    pub shed: usize,
    /// Requests rejected with a non-retryable 4xx.
    pub rejected: usize,
    /// Requests that timed out client-side.
    pub timed_out: usize,
    /// Transport-level failures (connect/read/write errors).
    pub transport_errors: usize,
    /// Faults injected (slow-loris + disconnect + malformed).
    pub faults_injected: usize,
    /// Well-formed requests that opened with the shared prefix.
    pub prefix_sent: usize,
    /// Fault probes whose response matched expectations (e.g. 400 for a
    /// malformed line).
    pub faults_expected: usize,
    /// Latency percentiles over successful requests, milliseconds.
    pub p50_ms: f32,
    pub p99_ms: f32,
    pub p999_ms: f32,
    /// Successful requests per second of wall time.
    pub goodput_rps: f32,
    /// `shed / sent`.
    pub shed_rate: f32,
    /// Total wall time.
    pub wall_ms: f32,
}

enum ReqOutcome {
    Ok { latency_ms: f32 },
    Shed,
    Rejected,
    TimedOut,
    Transport,
    FaultDone { expected: bool },
}

/// One well-formed submission's shape, fully determined at plan time so
/// workers stay schedule-independent.
#[derive(Clone)]
struct Shot {
    seed: u64,
    /// Adapter name sent with the request (absent → base model).
    adapter: Option<String>,
    /// Shared prefix tokens (empty → plain random prompt).
    prefix: Vec<u32>,
}

enum Plan {
    Normal { shot: Shot },
    Burst { shots: Vec<Shot> },
    SlowLoris,
    Disconnect { shot: Shot },
    Malformed,
}

/// Draws one shot from the deterministic stream. With shaping disabled
/// this consumes exactly one `next_u64`, preserving the legacy request
/// stream for a given seed.
fn draw_shot(
    rng: &mut Rng,
    cfg: &LoadConfig,
    pool: &[String],
    prefixes: &[Vec<u32>],
    shaped: bool,
) -> Shot {
    let seed = rng.next_u64();
    if !shaped {
        return Shot {
            seed,
            adapter: None,
            prefix: Vec::new(),
        };
    }
    // Index pool.len() is the no-adapter prefix slot.
    let idx = if pool.is_empty() {
        pool.len()
    } else {
        rng.below(pool.len())
    };
    let reuse = (rng.uniform() as f64) < cfg.prefix_reuse;
    Shot {
        seed,
        adapter: pool.get(idx).cloned(),
        prefix: if reuse {
            prefixes[idx].clone()
        } else {
            Vec::new()
        },
    }
}

/// Runs the load generator against a serving front-end.
///
/// Reads `vocab_size` and `kv_capacity` from `GET /healthz` first, so
/// prompts always use valid token ids and admissible lengths.
///
/// # Errors
///
/// Returns a message when the server is unreachable or `/healthz` does
/// not parse; per-request failures are *counted*, not returned.
pub fn run_loadgen(cfg: &LoadConfig) -> Result<LoadReport, String> {
    let (vocab_size, kv_capacity, advertised) = fetch_health(&cfg.addr, cfg.timeout)?;
    let prompt_len = cfg.prompt_len.clamp(1, kv_capacity);
    let pool: Vec<String> = advertised.into_iter().take(cfg.adapters).collect();
    if cfg.adapters > 0 && pool.is_empty() {
        return Err("--adapters requested but the server advertises none".to_string());
    }
    let shaped = cfg.prefix_reuse > 0.0 || !pool.is_empty();
    // Shared prefixes: one per adapter plus a no-adapter slot, derived
    // from the run seed so retries and workers agree on every token.
    let prefix_len = cfg.prefix_len.min(prompt_len.saturating_sub(1));
    let prefixes: Vec<Vec<u32>> = (0..=pool.len())
        .map(|i| {
            deterministic_prompt(
                cfg.seed ^ 0x9e37_79b9 ^ ((i as u64) << 32),
                vocab_size,
                prefix_len,
            )
        })
        .collect();
    let mut rng = Rng::seed_from_u64(cfg.seed ^ 0x5e7e_11ad);

    // Draw the complete arrival + fault plan up front: determinism must
    // not depend on worker-thread scheduling.
    let mut plans: Vec<(Duration, Plan)> = Vec::with_capacity(cfg.requests);
    let mut at = Duration::ZERO;
    for _ in 0..cfg.requests {
        let f = &cfg.faults;
        let roll = rng.uniform() as f64;
        let plan = if roll < f.slow_loris {
            Plan::SlowLoris
        } else if roll < f.slow_loris + f.disconnect {
            Plan::Disconnect {
                shot: draw_shot(&mut rng, cfg, &pool, &prefixes, shaped),
            }
        } else if roll < f.slow_loris + f.disconnect + f.malformed {
            Plan::Malformed
        } else if roll < f.slow_loris + f.disconnect + f.malformed + f.burst {
            Plan::Burst {
                shots: (0..f.burst_size.max(1))
                    .map(|_| draw_shot(&mut rng, cfg, &pool, &prefixes, shaped))
                    .collect(),
            }
        } else {
            Plan::Normal {
                shot: draw_shot(&mut rng, cfg, &pool, &prefixes, shaped),
            }
        };
        // Exponential inter-arrival gap for an open-loop Poisson process.
        let u = (rng.uniform() as f64).clamp(1e-9, 1.0 - 1e-9);
        let gap = -u.ln() / cfg.rate.max(1e-9);
        at += Duration::from_secs_f64(gap);
        plans.push((at, plan));
    }

    let (tx, rx) = mpsc::channel::<ReqOutcome>();
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    let t0 = Instant::now();
    let mut sent = 0usize;
    let mut faults_injected = 0usize;
    let mut prefix_sent = 0usize;
    for (when, plan) in plans {
        let now = t0.elapsed();
        if when > now {
            std::thread::sleep(when - now);
        }
        match plan {
            Plan::SlowLoris => {
                faults_injected += 1;
                spawn_worker(&mut workers, tx.clone(), cfg.clone(), move |cfg, tx| {
                    let _ = tx.send(run_slow_loris(&cfg));
                });
            }
            Plan::Malformed => {
                faults_injected += 1;
                spawn_worker(&mut workers, tx.clone(), cfg.clone(), move |cfg, tx| {
                    let _ = tx.send(run_malformed(&cfg));
                });
            }
            Plan::Disconnect { shot } => {
                faults_injected += 1;
                sent += 1;
                prefix_sent += usize::from(!shot.prefix.is_empty());
                spawn_worker(&mut workers, tx.clone(), cfg.clone(), move |cfg, tx| {
                    let _ = tx.send(run_disconnect(&cfg, &shot, vocab_size, prompt_len));
                });
            }
            Plan::Normal { shot } => {
                sent += 1;
                prefix_sent += usize::from(!shot.prefix.is_empty());
                spawn_worker(&mut workers, tx.clone(), cfg.clone(), move |cfg, tx| {
                    let _ = tx.send(run_request(&cfg, &shot, vocab_size, prompt_len));
                });
            }
            Plan::Burst { shots } => {
                for shot in shots {
                    sent += 1;
                    prefix_sent += usize::from(!shot.prefix.is_empty());
                    spawn_worker(&mut workers, tx.clone(), cfg.clone(), move |cfg, tx| {
                        let _ = tx.send(run_request(&cfg, &shot, vocab_size, prompt_len));
                    });
                }
            }
        }
    }
    drop(tx);
    for w in workers {
        let _ = w.join();
    }
    let wall_ms = t0.elapsed().as_secs_f32() * 1e3;

    let mut latencies: Vec<f32> = Vec::new();
    let (mut ok, mut shed, mut rejected, mut timed_out, mut transport, mut expected) =
        (0, 0, 0, 0, 0, 0);
    for outcome in rx {
        match outcome {
            ReqOutcome::Ok { latency_ms } => {
                ok += 1;
                latencies.push(latency_ms);
            }
            ReqOutcome::Shed => shed += 1,
            ReqOutcome::Rejected => rejected += 1,
            ReqOutcome::TimedOut => timed_out += 1,
            ReqOutcome::Transport => transport += 1,
            ReqOutcome::FaultDone { expected: e } => {
                if e {
                    expected += 1;
                }
            }
        }
    }
    latencies.sort_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| -> f32 {
        if latencies.is_empty() {
            return 0.0;
        }
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx.min(latencies.len() - 1)]
    };
    Ok(LoadReport {
        sent,
        ok,
        shed,
        rejected,
        timed_out,
        transport_errors: transport,
        faults_injected,
        prefix_sent,
        faults_expected: expected,
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        p999_ms: pct(0.999),
        goodput_rps: if wall_ms > 0.0 {
            ok as f32 / (wall_ms / 1e3)
        } else {
            0.0
        },
        shed_rate: if sent > 0 {
            shed as f32 / sent as f32
        } else {
            0.0
        },
        wall_ms,
    })
}

fn spawn_worker(
    workers: &mut Vec<JoinHandle<()>>,
    tx: mpsc::Sender<ReqOutcome>,
    cfg: LoadConfig,
    f: impl FnOnce(LoadConfig, mpsc::Sender<ReqOutcome>) + Send + 'static,
) {
    let handle = std::thread::Builder::new()
        .name("apollo-loadgen".to_string())
        .spawn(move || f(cfg, tx))
        .expect("spawn loadgen worker");
    workers.push(handle);
}

/// Queries `/healthz` for `(vocab_size, kv_capacity, adapter names)`.
fn fetch_health(addr: &str, timeout: Duration) -> Result<(usize, usize, Vec<String>), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    net::write_request(&mut stream, "GET", "/healthz", &[], b"")
        .map_err(|e| format!("healthz write: {e}"))?;
    let resp =
        net::read_response(&mut stream, timeout).map_err(|e| format!("healthz read: {e}"))?;
    if resp.status != 200 {
        return Err(format!("healthz returned {}", resp.status));
    }
    let text = String::from_utf8_lossy(&resp.body).to_string();
    let value: Value = serde_json::from_str(&text).map_err(|e| format!("healthz body: {e}"))?;
    let get = |name: &str| -> Result<usize, String> {
        match value.get_field(name) {
            Ok(Value::Num(n)) => n
                .as_u64()
                .map(|v| v as usize)
                .ok_or_else(|| format!("healthz `{name}` not a count")),
            _ => Err(format!("healthz missing `{name}`")),
        }
    };
    let adapters = match value.get_field("adapters") {
        Ok(Value::Arr(items)) => items
            .iter()
            .filter_map(|v| match v {
                Value::Str(s) => Some(s.clone()),
                _ => None,
            })
            .collect(),
        _ => Vec::new(),
    };
    Ok((get("vocab_size")?, get("kv_capacity")?, adapters))
}

fn deterministic_prompt(seed: u64, vocab_size: usize, len: usize) -> Vec<u32> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..len)
        .map(|_| rng.below(vocab_size.max(1)) as u32)
        .collect()
}

fn generate_body(cfg: &LoadConfig, shot: &Shot, vocab_size: usize, prompt_len: usize) -> String {
    let mut prompt = shot.prefix.clone();
    let suffix_len = prompt_len.saturating_sub(prompt.len()).max(1);
    prompt.extend(deterministic_prompt(shot.seed, vocab_size, suffix_len));
    let toks: Vec<String> = prompt.iter().map(|t| t.to_string()).collect();
    let adapter = match &shot.adapter {
        Some(name) => format!(
            ",\"adapter\":\"{}\"",
            name.replace('\\', "\\\\").replace('"', "\\\"")
        ),
        None => String::new(),
    };
    format!(
        "{{\"prompt\":[{}],\"max_new_tokens\":{},\"deadline_ms\":{},\"seed\":{},\"stream\":{}{}}}",
        toks.join(","),
        cfg.max_new_tokens,
        cfg.deadline_ms,
        shot.seed,
        cfg.stream,
        adapter
    )
}

/// One well-formed request with capped exponential backoff on 429/503.
/// Generation is deterministic per seed, so retrying is idempotent.
fn run_request(cfg: &LoadConfig, shot: &Shot, vocab_size: usize, prompt_len: usize) -> ReqOutcome {
    let body = generate_body(cfg, shot, vocab_size, prompt_len);
    let t0 = Instant::now();
    for attempt in 0..=cfg.max_retries {
        let Ok(mut stream) = TcpStream::connect(&cfg.addr) else {
            return ReqOutcome::Transport;
        };
        if net::write_request(&mut stream, "POST", "/generate", &[], body.as_bytes()).is_err() {
            return ReqOutcome::Transport;
        }
        let resp = match net::read_response(&mut stream, cfg.timeout) {
            Ok(r) => r,
            Err(net::HttpError::DeadlineExceeded) => return ReqOutcome::TimedOut,
            Err(_) => return ReqOutcome::Transport,
        };
        match resp.status {
            200 => {
                return ReqOutcome::Ok {
                    latency_ms: t0.elapsed().as_secs_f32() * 1e3,
                }
            }
            429 | 503 => {
                if attempt == cfg.max_retries {
                    return ReqOutcome::Shed;
                }
                // Honor Retry-After, but bound it: exponential growth with
                // a hard cap keeps the open loop from collapsing into a
                // closed one.
                let advertised = resp
                    .header("retry-after")
                    .and_then(|v| v.parse::<u64>().ok())
                    .map(Duration::from_secs)
                    .unwrap_or(Duration::from_millis(20));
                let backoff = advertised
                    .min(cfg.backoff_cap)
                    .max(Duration::from_millis(5))
                    * 2u32.saturating_pow(attempt as u32);
                std::thread::sleep(backoff.min(cfg.backoff_cap * 4));
            }
            408 => return ReqOutcome::TimedOut,
            _ => return ReqOutcome::Rejected,
        }
    }
    ReqOutcome::Shed
}

/// Trickles header bytes slower than the server's header deadline; the
/// expected end state is a 408 or a server-side close — anything but a
/// hang.
fn run_slow_loris(cfg: &LoadConfig) -> ReqOutcome {
    let Ok(mut stream) = TcpStream::connect(&cfg.addr) else {
        return ReqOutcome::FaultDone { expected: false };
    };
    let head = b"POST /generate HTTP/1.1\r\nHost: apollo\r\nContent-Length: 10\r\n";
    let deadline = Instant::now() + cfg.timeout;
    for byte in head.iter() {
        if Instant::now() >= deadline {
            break;
        }
        if stream.write_all(std::slice::from_ref(byte)).is_err() {
            // Server hung up on us mid-trickle: that is the defense working.
            return ReqOutcome::FaultDone { expected: true };
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    // Never send the terminating blank line; wait for the server's verdict.
    match net::read_response(&mut stream, cfg.timeout) {
        Ok(resp) => ReqOutcome::FaultDone {
            expected: resp.status == 408,
        },
        // Truncated/closed also means the server refused to wait.
        Err(net::HttpError::Truncated) | Err(net::HttpError::Io(_)) => {
            ReqOutcome::FaultDone { expected: true }
        }
        Err(_) => ReqOutcome::FaultDone { expected: false },
    }
}

/// Sends a garbage request line; expects 400.
fn run_malformed(cfg: &LoadConfig) -> ReqOutcome {
    let Ok(mut stream) = TcpStream::connect(&cfg.addr) else {
        return ReqOutcome::FaultDone { expected: false };
    };
    if stream
        .write_all(b"NOT A REAL REQUEST LINE\r\nstill: not-http\r\n\r\n")
        .is_err()
    {
        return ReqOutcome::FaultDone { expected: false };
    }
    match net::read_response(&mut stream, cfg.timeout) {
        Ok(resp) => ReqOutcome::FaultDone {
            expected: resp.status == 400,
        },
        Err(_) => ReqOutcome::FaultDone { expected: false },
    }
}

/// Starts a streaming generate, reads at most one chunk, then drops the
/// socket — the server must cancel the request (no leaked slot).
fn run_disconnect(
    cfg: &LoadConfig,
    shot: &Shot,
    vocab_size: usize,
    prompt_len: usize,
) -> ReqOutcome {
    let mut cfg = cfg.clone();
    cfg.stream = true;
    let body = generate_body(&cfg, shot, vocab_size, prompt_len);
    let Ok(mut stream) = TcpStream::connect(&cfg.addr) else {
        return ReqOutcome::FaultDone { expected: false };
    };
    if net::write_request(&mut stream, "POST", "/generate", &[], body.as_bytes()).is_err() {
        return ReqOutcome::FaultDone { expected: false };
    }
    let head = match net::read_response_head(&mut stream, cfg.timeout) {
        Ok(h) => h,
        Err(_) => return ReqOutcome::FaultDone { expected: false },
    };
    if head.status != 200 {
        // Shed before streaming started: still a valid server response.
        return ReqOutcome::FaultDone {
            expected: head.status == 429 || head.status == 503,
        };
    }
    let mut reader = ChunkedReader::new(&mut stream, head.leftover, cfg.timeout);
    let _ = reader.next_chunk();
    // Drop the connection mid-stream.
    drop(stream);
    ReqOutcome::FaultDone { expected: true }
}
