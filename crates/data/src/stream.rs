//! Streaming detokenization for token-at-a-time generation output.
//!
//! Token boundaries do not respect UTF-8 character boundaries: a byte-level
//! token (or a BPE merge) can end mid-way through a multi-byte character,
//! so printing each token's `decode` individually emits broken output.
//! [`DecodeStream`] buffers decoded bytes and only releases the longest
//! prefix that is valid UTF-8, holding back an incomplete trailing sequence
//! (at most 3 bytes) until later tokens complete it.
//!
//! Invalid sequences that can never complete are replaced with U+FFFD using
//! the same maximal-subpart policy as [`String::from_utf8_lossy`], so the
//! concatenation of all [`DecodeStream::push`] outputs plus
//! [`DecodeStream::finish`] equals the lossy decode of the whole token
//! sequence at once — the property `data_properties.rs` pins.

use crate::tokenizer::Tokenize;

/// Incremental lossy UTF-8 decoder over a [`Tokenize`] implementation.
pub struct DecodeStream<'a, T: Tokenize + ?Sized> {
    tok: &'a T,
    /// Decoded bytes held back because they end in an incomplete UTF-8
    /// sequence (never more than 3 bytes between pushes).
    pending: Vec<u8>,
}

impl<'a, T: Tokenize + ?Sized> DecodeStream<'a, T> {
    /// Creates an empty stream over `tok`.
    pub fn new(tok: &'a T) -> Self {
        DecodeStream {
            tok,
            pending: Vec::new(),
        }
    }

    /// Decodes one token and returns whatever text is now safe to emit
    /// (possibly empty if the bytes end mid-character).
    pub fn push(&mut self, token: u32) -> String {
        self.pending.extend_from_slice(&self.tok.decode(&[token]));
        self.drain()
    }

    /// Number of bytes currently held back.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Flushes any held-back bytes, lossily: a final incomplete sequence
    /// can no longer complete, so it becomes U+FFFD replacement characters.
    pub fn finish(&mut self) -> String {
        let rest = String::from_utf8_lossy(&self.pending).into_owned();
        self.pending.clear();
        rest
    }

    /// Emits the longest valid-UTF-8 prefix of `pending`, replacing
    /// definitely-invalid subparts with U+FFFD and keeping only a possibly
    /// still-completable tail.
    fn drain(&mut self) -> String {
        let mut out = String::new();
        loop {
            match std::str::from_utf8(&self.pending) {
                Ok(s) => {
                    out.push_str(s);
                    self.pending.clear();
                    return out;
                }
                Err(e) => {
                    let valid = e.valid_up_to();
                    // SAFETY-free re-parse: the prefix is valid by contract.
                    out.push_str(std::str::from_utf8(&self.pending[..valid]).unwrap());
                    match e.error_len() {
                        // The tail might still become valid with more bytes.
                        None => {
                            self.pending.drain(..valid);
                            return out;
                        }
                        // A maximal invalid subpart: one replacement char,
                        // exactly like `String::from_utf8_lossy`.
                        Some(bad) => {
                            out.push('\u{FFFD}');
                            self.pending.drain(..valid + bad);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::ByteTokenizer;

    #[test]
    fn multibyte_char_split_across_tokens_is_held_back() {
        let tok = ByteTokenizer;
        let mut s = DecodeStream::new(&tok);
        let bytes = "héllo".as_bytes(); // 'é' is two bytes
        let mut text = String::new();
        let mut saw_empty_push = false;
        for &b in bytes {
            let piece = s.push(b as u32);
            saw_empty_push |= piece.is_empty();
            text.push_str(&piece);
        }
        text.push_str(&s.finish());
        assert_eq!(text, "héllo");
        assert!(saw_empty_push, "the é lead byte must be held back");
    }

    #[test]
    fn lone_continuation_byte_becomes_replacement_char() {
        let tok = ByteTokenizer;
        let mut s = DecodeStream::new(&tok);
        let mut text = s.push(0x80);
        text.push_str(&s.push(b'a' as u32));
        text.push_str(&s.finish());
        assert_eq!(text, "\u{FFFD}a");
    }

    #[test]
    fn dangling_lead_byte_flushes_lossily_on_finish() {
        let tok = ByteTokenizer;
        let mut s = DecodeStream::new(&tok);
        assert_eq!(s.push(0xE2), ""); // three-byte lead, held back
        assert_eq!(s.pending_len(), 1);
        assert_eq!(s.finish(), "\u{FFFD}");
        assert_eq!(s.pending_len(), 0);
    }
}
