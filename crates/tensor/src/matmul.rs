//! Matrix-multiplication kernels.
//!
//! The kernels are cache-blocked over `k` and parallelised over row bands
//! with scoped threads. They are deliberately simple — at the proxy scales
//! of this reproduction (hidden dims ≤ 512) they are far from the
//! bottleneck, but the threading keeps the larger pretraining sweeps snappy.

use crate::matrix::Matrix;

/// Multiplications below this many FLOPs (`2 * m * k * n`) run
/// single-threaded; the spawn cost dominates for tiny matrices.
const PAR_MIN_FLOPS: usize = 1 << 20;

/// Default thread cap when `APOLLO_NUM_THREADS` is unset: the kernels stop
/// scaling well past 8 bands at proxy sizes.
const DEFAULT_MAX_THREADS: usize = 8;

/// Resolves the thread count from an optional `APOLLO_NUM_THREADS` override.
///
/// The override must parse as an integer ≥ 1 to take effect; anything else
/// (unset, empty, `0`, garbage) falls back to `available / cap`. Kept as a
/// pure function so it is unit-testable without mutating the environment.
fn resolve_threads(over: Option<&str>, available: usize) -> usize {
    match over.and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => available.min(DEFAULT_MAX_THREADS),
    }
}

fn num_threads() -> usize {
    use std::sync::OnceLock;
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        let available = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        resolve_threads(
            std::env::var("APOLLO_NUM_THREADS").ok().as_deref(),
            available,
        )
    })
}

/// Computes one row band `c[lo..hi] = a[lo..hi] · b` into `out`.
fn band_matmul(a: &Matrix, b: &Matrix, lo: usize, hi: usize, out: &mut [f32]) {
    let (k, n) = (a.cols(), b.cols());
    for (band_r, r) in (lo..hi).enumerate() {
        let arow = a.row(r);
        let crow = &mut out[band_r * n..(band_r + 1) * n];
        crow.fill(0.0);
        for (p, &av) in arow.iter().enumerate().take(k) {
            if av == 0.0 {
                continue;
            }
            let brow = b.row(p);
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
}

fn parallel_rows(
    m: usize,
    flops: usize,
    run: impl Fn(usize, usize, &mut [f32]) + Sync,
    n_out: usize,
) -> Vec<f32> {
    let threads = num_threads();
    if threads <= 1 || flops < PAR_MIN_FLOPS || m < 2 * threads {
        let mut out = vec![0.0; m * n_out];
        run(0, m, &mut out);
        return out;
    }
    let mut out = vec![0.0; m * n_out];
    let band = m.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut rest = out.as_mut_slice();
        let mut lo = 0;
        while lo < m {
            let hi = (lo + band).min(m);
            let (chunk, tail) = rest.split_at_mut((hi - lo) * n_out);
            rest = tail;
            let run = &run;
            scope.spawn(move || run(lo, hi, chunk));
            lo = hi;
        }
    });
    out
}

/// `a · b`.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dims {}x{} · {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let data = parallel_rows(
        m,
        m * k * n,
        |lo, hi, out| band_matmul(a, b, lo, hi, out),
        n,
    );
    Matrix::from_vec(m, n, data)
}

/// `a · bᵀ` without materializing the transpose.
///
/// # Panics
///
/// Panics if `a.cols() != b.cols()`.
pub fn matmul_transb(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_transb: inner dims {}x{} · ({}x{})ᵀ",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.rows());
    let run = |lo: usize, hi: usize, out: &mut [f32]| {
        for (band_r, r) in (lo..hi).enumerate() {
            let arow = a.row(r);
            for c in 0..n {
                let brow = b.row(c);
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += arow[p] * brow[p];
                }
                out[band_r * n + c] = acc;
            }
        }
    };
    let data = parallel_rows(m, m * k * n, run, n);
    Matrix::from_vec(m, n, data)
}

/// `aᵀ · b` without materializing the transpose.
///
/// # Panics
///
/// Panics if `a.rows() != b.rows()`.
pub fn matmul_transa(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_transa: inner dims ({}x{})ᵀ · {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (k, m, n) = (a.rows(), a.cols(), b.cols());
    // out[r, c] = sum_p a[p, r] * b[p, c]. Iterate p outer for locality.
    let run = |lo: usize, hi: usize, out: &mut [f32]| {
        for p in 0..k {
            let arow = a.row(p);
            let brow = b.row(p);
            for (band_r, r) in (lo..hi).enumerate() {
                let av = arow[r];
                if av == 0.0 {
                    continue;
                }
                let orow = &mut out[band_r * n..(band_r + 1) * n];
                for (ov, &bv) in orow.iter_mut().zip(brow) {
                    *ov += av * bv;
                }
            }
        }
    };
    let data = parallel_rows(m, m * k * n, run, n);
    Matrix::from_vec(m, n, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn naive(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for p in 0..a.cols() {
                    acc += a.get(i, p) * b.get(p, j);
                }
                c.set(i, j, acc);
            }
        }
        c
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "{x} vs {y}"
            );
        }
    }

    #[test]
    fn matmul_matches_naive() {
        let mut rng = Rng::seed_from_u64(2);
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (17, 9, 23), (64, 32, 48)] {
            let a = Matrix::randn(m, k, &mut rng);
            let b = Matrix::randn(k, n, &mut rng);
            assert_close(&matmul(&a, &b), &naive(&a, &b), 1e-4);
        }
    }

    #[test]
    fn matmul_transb_matches_explicit_transpose() {
        let mut rng = Rng::seed_from_u64(3);
        let a = Matrix::randn(13, 7, &mut rng);
        let b = Matrix::randn(11, 7, &mut rng);
        assert_close(&matmul_transb(&a, &b), &matmul(&a, &b.transpose()), 1e-4);
    }

    #[test]
    fn matmul_transa_matches_explicit_transpose() {
        let mut rng = Rng::seed_from_u64(4);
        let a = Matrix::randn(7, 13, &mut rng);
        let b = Matrix::randn(7, 11, &mut rng);
        assert_close(&matmul_transa(&a, &b), &matmul(&a.transpose(), &b), 1e-4);
    }

    #[test]
    fn large_parallel_path_matches_naive() {
        let mut rng = Rng::seed_from_u64(5);
        let a = Matrix::randn(200, 120, &mut rng);
        let b = Matrix::randn(120, 90, &mut rng);
        assert_close(&matmul(&a, &b), &naive(&a, &b), 1e-3);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = Rng::seed_from_u64(6);
        let a = Matrix::randn(9, 9, &mut rng);
        assert_close(&matmul(&a, &Matrix::identity(9)), &a, 1e-6);
        assert_close(&matmul(&Matrix::identity(9), &a), &a, 1e-6);
    }

    #[test]
    #[should_panic(expected = "matmul: inner dims")]
    fn dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn thread_override_parses_valid_values() {
        assert_eq!(resolve_threads(Some("4"), 16), 4);
        assert_eq!(resolve_threads(Some(" 12 "), 16), 12);
        // The override may exceed the default cap.
        assert_eq!(resolve_threads(Some("32"), 16), 32);
        assert_eq!(resolve_threads(Some("1"), 16), 1);
    }

    #[test]
    fn thread_override_rejects_invalid_values() {
        assert_eq!(resolve_threads(None, 16), 8);
        assert_eq!(resolve_threads(Some(""), 16), 8);
        assert_eq!(resolve_threads(Some("0"), 16), 8);
        assert_eq!(resolve_threads(Some("-2"), 16), 8);
        assert_eq!(resolve_threads(Some("lots"), 16), 8);
        assert_eq!(resolve_threads(Some("3.5"), 4), 4);
        assert_eq!(resolve_threads(None, 2), 2);
    }
}
