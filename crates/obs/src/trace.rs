//! The JSONL trace: one self-describing event per line, buffered writes.
//!
//! The schema is the contract between the emitting side (trainer,
//! optimizers, resilience sentinels) and the consuming side (the Fig. 3/9
//! bench probes, `apollo trace-check`, ad-hoc `jq` analysis). Every event
//! kind is a struct variant of [`TraceEvent`] so it serializes as
//! `{"Kind": {fields...}}` — greppable and forward-parseable.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use serde::{Deserialize, Serialize};

/// One observability event. Serialized as a single JSON line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// Emitted once when the training loop starts (or resumes).
    RunStart {
        /// First step the loop will execute.
        step: usize,
        /// Optimizer display name.
        optimizer: String,
        /// Model name.
        model: String,
        /// Total step budget of the run.
        steps: usize,
    },
    /// Per-step wall-clock breakdown, in milliseconds. Phases that did not
    /// run this step (e.g. checkpoint, eval) report 0.
    StepPhases {
        /// Step index.
        step: usize,
        /// Batch preparation (data loading) time.
        batch_ms: f32,
        /// Forward-pass time (graph build + loss).
        forward_ms: f32,
        /// Backward-pass time (including gradient collection).
        backward_ms: f32,
        /// Global gradient-norm clipping time.
        clip_ms: f32,
        /// Optimizer step time.
        optimizer_ms: f32,
        /// Checkpoint-write time.
        checkpoint_ms: f32,
        /// Periodic-evaluation time.
        eval_ms: f32,
        /// Whole-step time (the phases plus loop bookkeeping).
        total_ms: f32,
    },
    /// Per-step scalar gauges.
    StepMetrics {
        /// Step index.
        step: usize,
        /// Training loss of this step.
        loss: f32,
        /// Global gradient norm (pre-clip).
        grad_norm: f32,
        /// Learning rate applied this step.
        lr: f32,
    },
    /// Per-layer summary of the APOLLO/channel-wise scaling factors
    /// (`last_scales`): the Fig. 4 signal, one event per projectable
    /// parameter per sampled step.
    ScaleSummary {
        /// Step index.
        step: usize,
        /// Parameter name.
        param: String,
        /// Smallest channel scale.
        min: f32,
        /// Median channel scale.
        median: f32,
        /// Largest channel scale.
        max: f32,
        /// Number of channels (1 for tensor-wise granularity).
        channels: usize,
    },
    /// A projector refreshed its subspace (re-seed for the random kind,
    /// fresh SVD for the SVD kind) — the Fig. 9 spike cause.
    ProjectorRefresh {
        /// Step index.
        step: usize,
        /// Parameter name.
        param: String,
        /// Projection kind: `"random"` or `"svd"`.
        kind: String,
        /// Effective projection rank.
        rank: usize,
    },
    /// The norm-growth limiter clamped a tensor update (Eq. 4).
    LimiterClip {
        /// Step index.
        step: usize,
        /// Parameter name.
        param: String,
        /// Pre-clamp norm divided by post-clamp norm (≥ 1).
        ratio: f32,
    },
    /// A resilience sentinel fired.
    Sentinel {
        /// Step index.
        step: usize,
        /// What fired: `"non_finite_loss"`, `"non_finite_grads"`,
        /// `"loss_spike"`, `"clip_non_finite"`.
        kind: String,
        /// What the loop did about it: `"skip"`, `"clip"`, `"rollback"`,
        /// `"abort"`, `"zero_step"`, `"continue"`.
        action: String,
    },
    /// Emitted once when the loop exits.
    RunEnd {
        /// Step after the last executed one.
        step: usize,
        /// Total wall-clock seconds.
        wall_secs: f64,
    },
    /// One continuous-batching tick of the inference scheduler: how much
    /// prefill and decode work was batched, and where the time went.
    InferStep {
        /// Tick index (monotonic within a server run).
        step: usize,
        /// Prompt rows prefilled this tick, summed over sequences.
        prefill_rows: usize,
        /// Decode rows advanced this tick (one per decoding sequence).
        decode_rows: usize,
        /// Requests still waiting in the admission queue after the tick.
        queue_depth: usize,
        /// Sequences occupying slots after the tick.
        active: usize,
        /// Batched prefill forward time.
        prefill_ms: f32,
        /// Batched decode forward + sampling time.
        decode_ms: f32,
        /// Whole-tick time (prefill, decode, admission bookkeeping).
        total_ms: f32,
    },
    /// A generation request retired from the inference scheduler.
    InferRequest {
        /// Tick index at which the request retired.
        step: usize,
        /// Request id (admission order).
        id: u64,
        /// Prompt length in tokens.
        prompt_tokens: usize,
        /// Tokens generated.
        new_tokens: usize,
        /// Generated tokens per wall-clock second, admission to retirement.
        tokens_per_sec: f64,
        /// Why it retired: `"done"`, `"stop_token"`, `"deadline"`,
        /// `"cache_full"`, `"cancelled"`.
        outcome: String,
    },
    /// One HTTP request handled by the network serving front-end.
    ServeRequest {
        /// Scheduler tick at which the request concluded.
        step: usize,
        /// HTTP status code returned to the client.
        status: u16,
        /// Wall-clock from request receipt to the last response byte (or
        /// to the failure that ended the request).
        latency_ms: f32,
        /// How the request concluded: a generation [`Outcome`] label
        /// (`"done"`, `"stop_token"`, `"deadline"`, `"cache_full"`,
        /// `"cancelled"`) or a front-end disposition (`"shed"`,
        /// `"rejected"`, `"malformed"`, `"disconnected"`, `"draining"`).
        outcome: String,
        /// Requests in flight (accepted, not yet retired) at conclusion.
        in_flight: usize,
    },
    /// A data-parallel replica membership change: replicas joining at round
    /// start, a fault-injected (or real) replica death, and the shard
    /// rebalance that follows it.
    ReplicaEvent {
        /// Training step at which the event fired.
        step: usize,
        /// Replica id the event is about.
        replica: usize,
        /// What happened: `"start"`, `"kill"`, `"rebalance"`, `"finish"`.
        event: String,
        /// Active replica count after the event.
        replicas: usize,
    },
    /// One exploit/explore round of the population-based search driver
    /// (`apollo-search`): members ranked by eval perplexity, the bottom
    /// quantile replaced by perturbed clones of leaders.
    SearchRound {
        /// Per-member training step at the round boundary.
        step: usize,
        /// Round index (0-based).
        round: usize,
        /// Population size.
        population: usize,
        /// Member id with the lowest eval perplexity this round.
        best_member: usize,
        /// Best eval perplexity in the population.
        best_ppl: f32,
        /// Worst eval perplexity in the population.
        worst_ppl: f32,
        /// Members replaced by clones this round.
        cloned: usize,
    },
    /// A population-search member lifecycle event.
    MemberEvent {
        /// Per-member training step at which the event fired.
        step: usize,
        /// Member id the event is about.
        member: usize,
        /// What happened: `"start"`, `"clone"`, `"perturb"`, `"finish"`.
        event: String,
        /// Clone source (leader) member id; the member's own id otherwise.
        source: usize,
        /// The member's eval perplexity at the event (NaN-free: the driver
        /// reports the most recent ranking value, 0 before the first eval).
        ppl: f32,
    },
    /// Cumulative prefix-cache counters, emitted by the scheduler tick
    /// whenever the lookup count moved since the last emission.
    PrefixCache {
        /// Tick index at which the snapshot was taken.
        step: usize,
        /// Prefix-cache lookups so far (admissions with the cache enabled).
        lookups: u64,
        /// Lookups that matched at least one cached token.
        hits: u64,
        /// Prompt tokens served from cache instead of cold prefill.
        hit_tokens: u64,
        /// Bytes of cached KV block storage currently resident.
        cached_bytes: usize,
        /// Live radix-tree nodes.
        nodes: usize,
        /// Leaf evictions under the byte budget so far.
        evictions: u64,
    },
    /// The serving front-end finished its graceful drain.
    ServeDrain {
        /// Scheduler tick at which the drain concluded.
        step: usize,
        /// Requests still in flight when the drain began.
        in_flight: usize,
        /// In-flight requests that completed within the drain deadline.
        drained: usize,
        /// Connections abandoned because the drain deadline expired.
        forced: usize,
        /// Wall-clock the drain took.
        wall_ms: f32,
    },
}

impl TraceEvent {
    /// The event's step index.
    pub fn step(&self) -> usize {
        match *self {
            TraceEvent::RunStart { step, .. }
            | TraceEvent::StepPhases { step, .. }
            | TraceEvent::StepMetrics { step, .. }
            | TraceEvent::ScaleSummary { step, .. }
            | TraceEvent::ProjectorRefresh { step, .. }
            | TraceEvent::LimiterClip { step, .. }
            | TraceEvent::Sentinel { step, .. }
            | TraceEvent::RunEnd { step, .. }
            | TraceEvent::InferStep { step, .. }
            | TraceEvent::InferRequest { step, .. }
            | TraceEvent::ServeRequest { step, .. }
            | TraceEvent::ReplicaEvent { step, .. }
            | TraceEvent::SearchRound { step, .. }
            | TraceEvent::MemberEvent { step, .. }
            | TraceEvent::PrefixCache { step, .. }
            | TraceEvent::ServeDrain { step, .. } => step,
        }
    }

    /// Short kind tag (the JSON object key).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::RunStart { .. } => "RunStart",
            TraceEvent::StepPhases { .. } => "StepPhases",
            TraceEvent::StepMetrics { .. } => "StepMetrics",
            TraceEvent::ScaleSummary { .. } => "ScaleSummary",
            TraceEvent::ProjectorRefresh { .. } => "ProjectorRefresh",
            TraceEvent::LimiterClip { .. } => "LimiterClip",
            TraceEvent::Sentinel { .. } => "Sentinel",
            TraceEvent::RunEnd { .. } => "RunEnd",
            TraceEvent::InferStep { .. } => "InferStep",
            TraceEvent::InferRequest { .. } => "InferRequest",
            TraceEvent::ServeRequest { .. } => "ServeRequest",
            TraceEvent::ReplicaEvent { .. } => "ReplicaEvent",
            TraceEvent::SearchRound { .. } => "SearchRound",
            TraceEvent::MemberEvent { .. } => "MemberEvent",
            TraceEvent::PrefixCache { .. } => "PrefixCache",
            TraceEvent::ServeDrain { .. } => "ServeDrain",
        }
    }
}

/// Buffered line-oriented trace writer. Events are flushed on
/// [`TraceWriter::flush`] and on drop.
#[derive(Debug)]
pub struct TraceWriter {
    out: BufWriter<File>,
    written: usize,
}

impl TraceWriter {
    /// Creates (truncates) the trace file at `path`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the file.
    pub fn create(path: &Path) -> io::Result<Self> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        Ok(TraceWriter {
            out: BufWriter::new(File::create(path)?),
            written: 0,
        })
    }

    /// Appends one event as a JSON line. I/O errors are reported once on
    /// [`TraceWriter::flush`]; per-event emission stays infallible so hot
    /// loops never branch on it.
    pub fn write(&mut self, event: &TraceEvent) {
        let line = serde_json::to_string(event).expect("trace event serializes");
        let _ = self.out.write_all(line.as_bytes());
        let _ = self.out.write_all(b"\n");
        self.written += 1;
    }

    /// Number of events written so far.
    pub fn written(&self) -> usize {
        self.written
    }

    /// Flushes buffered lines to disk.
    ///
    /// # Errors
    ///
    /// Returns any buffered or flush-time I/O error.
    pub fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

impl Drop for TraceWriter {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

/// Builds a [`TraceEvent::ScaleSummary`] from a raw per-channel scale
/// vector, or `None` when the vector is empty. Sorting cost is paid only
/// by callers that actually emit (pass this through a lazy `emit` closure).
pub fn scale_summary(step: usize, param: &str, scales: &[f32]) -> Option<TraceEvent> {
    if scales.is_empty() {
        return None;
    }
    let mut sorted: Vec<f32> = scales.to_vec();
    sorted.sort_by(f32::total_cmp);
    Some(TraceEvent::ScaleSummary {
        step,
        param: param.to_string(),
        min: sorted[0],
        median: sorted[sorted.len() / 2],
        max: sorted[sorted.len() - 1],
        channels: sorted.len(),
    })
}

/// Parses one JSONL trace line.
///
/// # Errors
///
/// Returns the parse error message for a malformed line.
pub fn parse_line(line: &str) -> Result<TraceEvent, String> {
    serde_json::from_str(line).map_err(|e| format!("bad trace line: {e}"))
}

/// Reads a whole JSONL trace back, skipping blank lines.
///
/// # Errors
///
/// Returns an error for I/O failures or any unparseable line (with its
/// 1-based line number).
pub fn read_trace(path: &Path) -> Result<Vec<TraceEvent>, String> {
    let f = File::open(path).map_err(|e| format!("open {}: {e}", path.display()))?;
    let mut events = Vec::new();
    for (i, line) in BufReader::new(f).lines().enumerate() {
        let line = line.map_err(|e| format!("read {}: {e}", path.display()))?;
        if line.trim().is_empty() {
            continue;
        }
        events.push(parse_line(&line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::RunStart {
                step: 0,
                optimizer: "APOLLO".into(),
                model: "test-tiny".into(),
                steps: 30,
            },
            TraceEvent::StepPhases {
                step: 0,
                batch_ms: 0.5,
                forward_ms: 4.0,
                backward_ms: 8.0,
                clip_ms: 0.0,
                optimizer_ms: 1.5,
                checkpoint_ms: 0.0,
                eval_ms: 0.0,
                total_ms: 14.25,
            },
            TraceEvent::StepMetrics {
                step: 0,
                loss: 5.25,
                grad_norm: 1.5,
                lr: 0.01,
            },
            TraceEvent::ScaleSummary {
                step: 0,
                param: "layer0.wq".into(),
                min: 0.5,
                median: 1.0,
                max: 2.0,
                channels: 64,
            },
            TraceEvent::ProjectorRefresh {
                step: 0,
                param: "layer0.wq".into(),
                kind: "random".into(),
                rank: 4,
            },
            TraceEvent::LimiterClip {
                step: 3,
                param: "layer0.wq".into(),
                ratio: 1.75,
            },
            TraceEvent::Sentinel {
                step: 4,
                kind: "clip_non_finite".into(),
                action: "zero_step".into(),
            },
            TraceEvent::ReplicaEvent {
                step: 5,
                replica: 1,
                event: "kill".into(),
                replicas: 3,
            },
            TraceEvent::RunEnd {
                step: 30,
                wall_secs: 1.5,
            },
        ]
    }

    #[test]
    fn events_roundtrip_as_single_lines() {
        for e in sample_events() {
            let line = serde_json::to_string(&e).unwrap();
            assert!(!line.contains('\n'), "must stay one line: {line}");
            assert_eq!(parse_line(&line).unwrap(), e);
        }
    }

    #[test]
    fn writer_then_reader_roundtrips() {
        let dir = std::env::temp_dir().join("apollo-obs-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.jsonl");
        let events = sample_events();
        {
            let mut w = TraceWriter::create(&path).unwrap();
            for e in &events {
                w.write(e);
            }
            assert_eq!(w.written(), events.len());
            w.flush().unwrap();
        }
        assert_eq!(read_trace(&path).unwrap(), events);
    }

    #[test]
    fn malformed_line_reports_its_number() {
        let dir = std::env::temp_dir().join("apollo-obs-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("malformed.jsonl");
        std::fs::write(
            &path,
            "{\"RunEnd\":{\"step\":1,\"wall_secs\":0.1}}\nnot json\n",
        )
        .unwrap();
        let err = read_trace(&path).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn step_and_kind_accessors() {
        let e = TraceEvent::LimiterClip {
            step: 7,
            param: "w".into(),
            ratio: 2.0,
        };
        assert_eq!(e.step(), 7);
        assert_eq!(e.kind(), "LimiterClip");
    }
}
