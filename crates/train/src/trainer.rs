//! The pre-training loop, with optional resilience: step sentinels,
//! recovery policies, crash-safe checkpointing, and deterministic fault
//! injection.

use std::time::Instant;

use apollo_data::LmBatcher;
use apollo_nn::{LlamaModel, ParamKind};
use apollo_obs::{Obs, Phase, PhaseSample, TraceEvent};
use apollo_optim::{Optimizer, ParamUpdate};
use apollo_tensor::{Matrix, Rng};
use serde::{Deserialize, Serialize};

use crate::checkpoint::{
    checkpoint_file_name, latest_valid_checkpoint, prune_checkpoints, save_train_state, TrainMeta,
};
use crate::resilience::{
    FaultKind, RecoveryPolicy, ResilienceConfig, ResilienceReport, SpikeDetector,
};
use crate::schedule::LrSchedule;

/// Pre-training hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Optimizer steps.
    pub steps: usize,
    /// Peak learning rate (the paper uses 0.01 for APOLLO-family runs).
    pub lr: f32,
    /// Global gradient-norm clip (`None` disables; APOLLO-family optimizers
    /// rely on the norm-growth limiter instead).
    pub grad_clip: Option<f32>,
    /// Evaluate validation perplexity every this many steps (0 = only at
    /// the end).
    pub eval_every: usize,
    /// Validation sequences held out per evaluation.
    pub eval_seqs: usize,
    /// ReLoRA adapter-merge period (`None` for non-ReLoRA runs).
    pub merge_every: Option<usize>,
    /// Record per-step wall-clock times (for the Fig. 9 throughput study).
    pub record_step_times: bool,
    /// Micro-batches accumulated per optimizer step (the paper's 7B runs
    /// assemble a 512-sequence global batch from memory-bound
    /// micro-batches). Gradients are averaged across the accumulation
    /// window. 1 = no accumulation.
    pub grad_accum: usize,
    /// Q-GaLore-style INT8 weight training: after every optimizer step,
    /// round-trip all weight matrices (embedding, attention/MLP, LM head —
    /// not norm gains) through group-wise INT8 with this group size, so the
    /// persistent weights are exactly what an INT8 store would hold
    /// (straight-through estimator). `None` trains in full precision.
    pub quantize_weights: Option<usize>,
}

impl TrainConfig {
    /// A short run with sensible defaults for tests and quick experiments.
    pub fn quick(steps: usize) -> Self {
        TrainConfig {
            steps,
            lr: 0.01,
            grad_clip: None,
            eval_every: 0,
            eval_seqs: 16,
            merge_every: None,
            record_step_times: false,
            grad_accum: 1,
            quantize_weights: None,
        }
    }
}

/// Everything a pre-training run produced, serializable for the experiment
/// harness.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunLog {
    /// Optimizer label.
    pub optimizer: String,
    /// Model name.
    pub model: String,
    /// `(step, training loss)` samples.
    pub train_losses: Vec<(usize, f32)>,
    /// `(step, validation perplexity)` samples.
    pub eval_ppls: Vec<(usize, f32)>,
    /// Final validation perplexity.
    pub final_ppl: f32,
    /// Optimizer-state footprint after training, in f32-equivalent elements.
    pub state_elems: usize,
    /// Optimizer-state footprint in bytes (honours INT8 states).
    pub state_bytes: usize,
    /// Total wall-clock seconds.
    pub wall_secs: f64,
    /// Per-step wall-clock milliseconds (only when requested).
    pub step_times_ms: Vec<f32>,
    /// Resilience audit: sentinel firings, recoveries, checkpoints.
    pub resilience: ResilienceReport,
}

/// Validation perplexity of `model` on a fixed held-out set drawn from
/// `batcher`, evaluated in chunks of the batcher's batch size.
///
/// Returns `None` when the held-out set is empty (`eval_seqs == 0` or no
/// validation data), so callers skip the sample instead of recording the
/// NaN that the former `0/0` division produced.
pub fn eval_perplexity(model: &LlamaModel, batcher: &LmBatcher, eval_seqs: usize) -> Option<f32> {
    let (tokens, targets, n_seqs) = batcher.validation_set(eval_seqs);
    if n_seqs == 0 {
        return None;
    }
    let seq = batcher.seq();
    let chunk = batcher.batch().min(n_seqs);
    let mut total_loss = 0.0f64;
    let mut total_seqs = 0usize;
    let mut start = 0;
    while start < n_seqs {
        let end = (start + chunk).min(n_seqs);
        let t = &tokens[start * seq..end * seq];
        let y = &targets[start * seq..end * seq];
        let loss = model.eval_loss(t, y, end - start);
        total_loss += loss as f64 * (end - start) as f64;
        total_seqs += end - start;
        start = end;
    }
    Some(((total_loss / total_seqs as f64).exp()) as f32)
}

/// Global gradient norm across all present tensors.
fn global_grad_norm(grads: &[Option<Matrix>]) -> f32 {
    let total: f64 = grads
        .iter()
        .flatten()
        .map(|g| {
            let n = g.fro_norm() as f64;
            n * n
        })
        .sum();
    total.sqrt() as f32
}

/// What [`clip_global_norm`] found and did.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ClipOutcome {
    /// Pre-clip global gradient norm (possibly NaN/Inf).
    norm: f32,
    /// The norm was NaN/Inf; every gradient was zeroed instead of scaled.
    non_finite: bool,
}

/// Clips the global gradient norm across all trainable tensors to `max_norm`.
///
/// A single NaN/Inf gradient entry makes the global norm non-finite, and
/// `norm > max_norm` is then false — so clipping used to silently pass the
/// poisoned gradients straight to the optimizer. Non-finite norms now zero
/// every gradient and are surfaced in the outcome for the caller to count
/// and skip the step.
fn clip_global_norm(grads: &mut [Option<Matrix>], max_norm: f32) -> ClipOutcome {
    let norm = global_grad_norm(grads);
    if !norm.is_finite() {
        for g in grads.iter_mut().flatten() {
            g.as_mut_slice().fill(0.0);
        }
        return ClipOutcome {
            norm,
            non_finite: true,
        };
    }
    if norm > max_norm {
        let scale = max_norm / norm;
        for g in grads.iter_mut().flatten() {
            g.scale_assign(scale);
        }
    }
    ClipOutcome {
        norm,
        non_finite: false,
    }
}

/// An in-memory restore point for [`RecoveryPolicy::RollbackAndRetry`].
struct Snapshot {
    step: usize,
    params: Vec<Matrix>,
    optimizer: Vec<u8>,
    cursor: u64,
    rng: ([u64; 4], Option<u32>),
    window: Vec<f32>,
}

impl Snapshot {
    fn take(
        step: usize,
        model: &LlamaModel,
        opt: &dyn Optimizer,
        batcher: &LmBatcher,
        rng: &Rng,
        detector: &SpikeDetector,
    ) -> Option<Self> {
        let optimizer = opt.state_save().ok()?;
        Some(Snapshot {
            step,
            params: model.params.iter().map(|p| p.value.clone()).collect(),
            optimizer,
            cursor: batcher.cursor(),
            rng: rng.state(),
            window: detector.window(),
        })
    }

    fn restore(
        &self,
        model: &mut LlamaModel,
        opt: &mut dyn Optimizer,
        batcher: &mut LmBatcher,
        rng: &mut Rng,
        detector: &mut SpikeDetector,
    ) -> Result<(), String> {
        opt.state_load(&self.optimizer)?;
        for (p, saved) in model.params.iter_mut().zip(&self.params) {
            // Overwrite in place: the parameter keeps its allocation.
            p.value.copy_from(saved);
        }
        batcher.set_cursor(self.cursor);
        *rng = Rng::from_state(self.rng.0, self.rng.1);
        detector.restore(&self.window);
        Ok(())
    }
}

/// Zeroes every non-finite gradient entry (in place).
fn sanitize_grads(grads: &mut [Option<Matrix>]) {
    for g in grads.iter_mut().flatten() {
        if g.has_non_finite() {
            for x in g.as_mut_slice() {
                if !x.is_finite() {
                    *x = 0.0;
                }
            }
        }
    }
}

/// Runs the pre-training loop: warmup+cosine schedule, optional global
/// clipping, optional ReLoRA merges, periodic validation-perplexity
/// evaluation. Equivalent to [`pretrain_resilient`] with every resilience
/// feature off.
///
/// # Panics
///
/// Panics if `cfg.steps == 0`.
pub fn pretrain(
    model: &mut LlamaModel,
    opt: &mut dyn Optimizer,
    batcher: &mut LmBatcher,
    cfg: &TrainConfig,
) -> RunLog {
    pretrain_resilient(model, opt, batcher, cfg, &ResilienceConfig::default())
}

/// [`pretrain`] hardened with the resilience subsystem: per-step
/// non-finite/spike sentinels handled by `res.policy`, crash-safe v2
/// checkpoints every `res.checkpoint_every` steps (resumable bit-exactly
/// with `res.resume`), and deterministic fault injection from
/// `res.fault_plan`.
///
/// Under [`ResilienceConfig::default`] this is step-for-step identical to
/// the plain loop.
///
/// # Panics
///
/// Panics if `cfg.steps == 0`.
pub fn pretrain_resilient(
    model: &mut LlamaModel,
    opt: &mut dyn Optimizer,
    batcher: &mut LmBatcher,
    cfg: &TrainConfig,
    res: &ResilienceConfig,
) -> RunLog {
    pretrain_observed(model, opt, batcher, cfg, res, &Obs::disabled())
}

/// [`pretrain_resilient`] with observability: per-step phase timings, loss /
/// grad-norm / LR gauges, sentinel events, and (through
/// [`Optimizer::attach_observer`]) projector-refresh, limiter-clip, and
/// channel-scale events — all routed through `obs`. With
/// [`Obs::disabled`] the handle is a no-op and this is exactly
/// [`pretrain_resilient`].
///
/// # Panics
///
/// Panics if `cfg.steps == 0`.
pub fn pretrain_observed(
    model: &mut LlamaModel,
    opt: &mut dyn Optimizer,
    batcher: &mut LmBatcher,
    cfg: &TrainConfig,
    res: &ResilienceConfig,
    obs: &Obs,
) -> RunLog {
    assert!(cfg.steps > 0, "need at least one step");
    let schedule = LrSchedule::paper_default(cfg.lr, cfg.steps);
    let mut log = RunLog {
        optimizer: opt.name(),
        model: model.config().name.clone(),
        train_losses: Vec::new(),
        eval_ppls: Vec::new(),
        final_ppl: f32::NAN,
        state_elems: 0,
        state_bytes: 0,
        wall_secs: 0.0,
        step_times_ms: Vec::new(),
        resilience: ResilienceReport::default(),
    };
    let started = Instant::now();
    let loss_sample_every = (cfg.steps / 200).max(1);
    let mut merge_rng = Rng::seed_from_u64(0x4E10);
    let mut detector = SpikeDetector::new(res.spike_window, res.spike_factor);
    let mut report = ResilienceReport::default();
    let mut fault_plan = res.fault_plan.clone();
    let mut lr_scale = 1.0f32;
    let mut start_step = 0usize;

    // Resume from the newest valid checkpoint, if asked to.
    if res.resume {
        if let Some(dir) = &res.checkpoint_dir {
            if let Ok(Some((_, state))) = latest_valid_checkpoint(dir) {
                let mut state = state;
                for (p, saved) in model.params.iter_mut().zip(state.model.params.iter_mut()) {
                    assert_eq!(p.name, saved.name, "checkpoint/model manifest mismatch");
                    // The checkpoint is owned here — move the tensor in
                    // instead of cloning it, and recycle the replaced one.
                    let old = std::mem::replace(
                        &mut p.value,
                        std::mem::replace(&mut saved.value, Matrix::zeros(0, 0)),
                    );
                    old.recycle();
                }
                if !state.optimizer.is_empty() {
                    if let Err(e) = opt.state_load(&state.optimizer) {
                        eprintln!("warning: optimizer state not restored ({e}); starting fresh");
                    }
                }
                batcher.set_cursor(state.meta.data_cursor);
                if state.meta.rng_state.len() == 4 {
                    let mut s = [0u64; 4];
                    s.copy_from_slice(&state.meta.rng_state);
                    merge_rng = Rng::from_state(s, state.meta.rng_spare);
                }
                detector.restore(&state.meta.spike_window);
                lr_scale = state.meta.lr_scale;
                report = state.meta.report.clone();
                report.resumed_from_step = Some(state.meta.step);
                start_step = (state.meta.step as usize).min(cfg.steps);
            }
        }
    }

    opt.attach_observer(obs.clone());
    obs.set_step(start_step);
    // Baseline for the run-end pool counters (the pool is process-global).
    let pool_at_start = apollo_tensor::pool::stats();
    obs.emit(|| TraceEvent::RunStart {
        step: start_step,
        optimizer: log.optimizer.clone(),
        model: log.model.clone(),
        steps: cfg.steps,
    });

    // Writes the crash-safe checkpoint capturing "about to run `step`".
    let write_checkpoint = |step: usize,
                            model: &LlamaModel,
                            opt: &dyn Optimizer,
                            batcher: &LmBatcher,
                            merge_rng: &Rng,
                            detector: &SpikeDetector,
                            lr_scale: f32,
                            report: &mut ResilienceReport| {
        let Some(dir) = &res.checkpoint_dir else {
            return;
        };
        let optimizer = match opt.state_save() {
            Ok(b) => b,
            Err(e) => {
                eprintln!("warning: checkpoint skipped ({e})");
                report.checkpoint_errors += 1;
                return;
            }
        };
        let (rng_s, rng_spare) = merge_rng.state();
        let meta = TrainMeta {
            step: step as u64,
            data_cursor: batcher.cursor(),
            rng_state: rng_s.to_vec(),
            rng_spare,
            lr_scale,
            spike_window: detector.window(),
            report: report.clone(),
        };
        let result = std::fs::create_dir_all(dir).and_then(|()| {
            save_train_state(
                model,
                model.mode(),
                &meta,
                &optimizer,
                &dir.join(checkpoint_file_name(step as u64)),
            )
        });
        match result {
            Ok(()) => {
                report.checkpoints_written += 1;
                let _ = prune_checkpoints(dir, res.keep_last.max(1));
            }
            Err(e) => {
                eprintln!("warning: checkpoint write failed ({e})");
                report.checkpoint_errors += 1;
            }
        }
    };

    let accum = cfg.grad_accum.max(1);
    let mut snapshot: Option<Snapshot> = None;
    let mut consecutive_faults = 0usize;
    let mut step = start_step;
    'train: while step < cfg.steps {
        obs.set_step(step);
        let step_started = Instant::now();
        let mut sample = PhaseSample::new();
        // Refresh the rollback restore point on its own cadence.
        if matches!(res.policy, Some(RecoveryPolicy::RollbackAndRetry { .. })) {
            let due = snapshot
                .as_ref()
                .is_none_or(|s| step >= s.step + res.snapshot_every.max(1));
            if due {
                snapshot = Snapshot::take(step, model, opt, batcher, &merge_rng, &detector);
            }
        }
        // Periodic crash-safe checkpoint (skipped at the step we just
        // resumed from — that file already exists).
        if res.checkpoint_every > 0
            && step > 0
            && step != start_step
            && step.is_multiple_of(res.checkpoint_every)
        {
            sample.time(Phase::Checkpoint, || {
                write_checkpoint(
                    step,
                    model,
                    opt,
                    batcher,
                    &merge_rng,
                    &detector,
                    lr_scale,
                    &mut report,
                );
            });
        }

        let (tokens, targets) = sample.time(Phase::BatchPrep, || batcher.next_batch());
        // Forward and backward are timed separately, so the two halves of
        // what `loss_and_grads` fuses are run here by hand.
        let (mut graph, loss_id, pnodes) = sample.time(Phase::Forward, || {
            model.build_loss(&tokens, &targets, batcher.batch())
        });
        let mut loss = graph.value(loss_id).get(0, 0);
        let mut grads = sample.time(Phase::Backward, || {
            graph.backward(loss_id);
            model.collect_grads(&graph, &pnodes)
        });
        drop(graph);
        for _ in 1..accum {
            let (tokens, targets) = sample.time(Phase::BatchPrep, || batcher.next_batch());
            let (mut graph, loss_id, pnodes) = sample.time(Phase::Forward, || {
                model.build_loss(&tokens, &targets, batcher.batch())
            });
            loss += graph.value(loss_id).get(0, 0);
            sample.time(Phase::Backward, || {
                graph.backward(loss_id);
                let extra = model.collect_grads(&graph, &pnodes);
                for (acc, e) in grads.iter_mut().zip(&extra) {
                    if let (Some(a), Some(e)) = (acc.as_mut(), e.as_ref()) {
                        a.add_assign(e);
                    }
                }
            });
        }
        if accum > 1 {
            loss /= accum as f32;
            let inv = 1.0 / accum as f32;
            for g in grads.iter_mut().flatten() {
                g.scale_assign(inv);
            }
        }

        // Deterministic fault injection (tests only; plans are empty in
        // production configs). Faults are one-shot: a retried step passes.
        match fault_plan.take_at(step) {
            Some(FaultKind::NanGrad) => {
                if let Some(g) = grads.iter_mut().flatten().next() {
                    g.set(0, 0, f32::NAN);
                }
            }
            Some(FaultKind::InfGrad) => {
                if let Some(g) = grads.iter_mut().flatten().next() {
                    g.set(0, 0, f32::INFINITY);
                }
            }
            Some(FaultKind::LossSpike { factor }) => {
                loss *= factor;
                for g in grads.iter_mut().flatten() {
                    g.scale_assign(factor);
                }
            }
            Some(FaultKind::Crash) => {
                // Simulated kill -9: no final eval, no final checkpoint.
                report.crashed = true;
                break 'train;
            }
            Some(FaultKind::ReplicaKill { .. }) => {
                // The serial loop has exactly one "replica"; killing it is
                // a crash. The DDP driver handles this kind elastically.
                report.crashed = true;
                break 'train;
            }
            None => {}
        }

        // Step sentinels.
        if let Some(policy) = res.policy {
            let bad_loss = !loss.is_finite();
            let bad_grads = grads.iter().flatten().any(Matrix::has_non_finite);
            let spike = !bad_loss && detector.is_spike(loss);
            if bad_loss {
                report.non_finite_loss += 1;
                obs.counter("sentinel_non_finite_loss", 1);
            }
            if bad_grads {
                report.non_finite_grads += 1;
                obs.counter("sentinel_non_finite_grads", 1);
            }
            if spike {
                report.loss_spikes += 1;
                obs.counter("sentinel_loss_spike", 1);
            }
            if bad_loss || bad_grads || spike {
                let kind = if bad_loss {
                    "non_finite_loss"
                } else if bad_grads {
                    "non_finite_grads"
                } else {
                    "loss_spike"
                };
                let sentinel = |action: &'static str| {
                    obs.emit(|| TraceEvent::Sentinel {
                        step,
                        kind: kind.to_string(),
                        action: action.to_string(),
                    });
                };
                consecutive_faults += 1;
                if consecutive_faults > res.max_consecutive_faults {
                    sentinel("abort");
                    report.aborted = true;
                    break 'train;
                }
                match policy {
                    RecoveryPolicy::SkipStep => {
                        sentinel("skip");
                        report.skipped_steps += 1;
                        step += 1;
                        continue 'train;
                    }
                    RecoveryPolicy::Abort => {
                        sentinel("abort");
                        report.aborted = true;
                        break 'train;
                    }
                    RecoveryPolicy::ClipAndContinue => {
                        sentinel("clip");
                        sanitize_grads(&mut grads);
                        clip_global_norm(&mut grads, res.clip_norm);
                        report.clipped_steps += 1;
                        // Fall through: apply the repaired update.
                    }
                    RecoveryPolicy::RollbackAndRetry { lr_backoff } => {
                        if let Some(s) = &snapshot {
                            if let Err(e) =
                                s.restore(model, opt, batcher, &mut merge_rng, &mut detector)
                            {
                                eprintln!("warning: rollback failed ({e}); aborting");
                                sentinel("abort");
                                report.aborted = true;
                                break 'train;
                            }
                            sentinel("rollback");
                            report.rollbacks += 1;
                            lr_scale *= lr_backoff;
                            step = s.step;
                        } else {
                            // Faulted before any snapshot existed.
                            sentinel("skip");
                            report.skipped_steps += 1;
                            step += 1;
                        }
                        continue 'train;
                    }
                }
            } else {
                consecutive_faults = 0;
            }
        }

        let mut grad_norm = f32::NAN;
        if let Some(max_norm) = cfg.grad_clip {
            let clip = sample.time(Phase::Clip, || clip_global_norm(&mut grads, max_norm));
            grad_norm = clip.norm;
            if clip.non_finite {
                // Latent-NaN fix: the norm itself was NaN/Inf, which the
                // old `norm > max_norm` check silently waved through to the
                // optimizer. The gradients are zeroed; skip the update and
                // count it like any other sentinel firing.
                report.non_finite_grads += 1;
                report.clip_nonfinite_steps += 1;
                report.skipped_steps += 1;
                obs.counter("sentinel_clip_non_finite", 1);
                obs.emit(|| TraceEvent::Sentinel {
                    step,
                    kind: "clip_non_finite".to_string(),
                    action: "zero_step".to_string(),
                });
                step += 1;
                continue 'train;
            }
        }
        let lr = schedule.lr_at(step) * lr_scale;
        if obs.sample_due() {
            let gn = if grad_norm.is_finite() {
                grad_norm
            } else {
                global_grad_norm(&grads)
            };
            obs.gauge("loss", f64::from(loss));
            obs.gauge("grad_norm", f64::from(gn));
            obs.gauge("lr", f64::from(lr));
            obs.emit(|| TraceEvent::StepMetrics {
                step,
                loss,
                grad_norm: gn,
                lr,
            });
        }
        sample.time(Phase::Optimizer, || {
            // Assemble the optimizer's view: trainable params with grads,
            // in stable declaration order.
            let mut updates: Vec<ParamUpdate<'_>> = Vec::new();
            for (p, g) in model.params.iter_mut().zip(&grads) {
                if let (true, Some(grad)) = (p.trainable, g.as_ref()) {
                    updates.push(ParamUpdate {
                        name: &p.name,
                        value: &mut p.value,
                        grad,
                        projectable: p.kind == ParamKind::Projectable,
                    });
                }
            }
            opt.step(&mut updates, lr);
        });
        if let Some(group) = cfg.quantize_weights {
            for p in model.params.iter_mut() {
                if p.kind != ParamKind::Norm {
                    let q = apollo_quant::fake_quantize(&p.value, group);
                    std::mem::replace(&mut p.value, q).recycle();
                }
            }
        }
        if let Some(every) = cfg.merge_every {
            if every > 0 && (step + 1).is_multiple_of(every) {
                model.merge_adapters(&mut merge_rng);
                opt.reset_state();
            }
        }
        detector.record(loss);
        if step.is_multiple_of(loss_sample_every) || step + 1 == cfg.steps {
            log.train_losses.push((step, loss));
        }
        if cfg.eval_every > 0 && (step + 1).is_multiple_of(cfg.eval_every) && step + 1 != cfg.steps
        {
            let ppl = sample.time(Phase::Eval, || {
                eval_perplexity(model, batcher, cfg.eval_seqs)
            });
            if let Some(ppl) = ppl {
                log.eval_ppls.push((step + 1, ppl));
            }
        }
        let total_ms = step_started.elapsed().as_secs_f32() * 1e3;
        if cfg.record_step_times {
            log.step_times_ms.push(total_ms);
        }
        obs.record_step(&sample, total_ms);
        obs.emit(|| TraceEvent::StepPhases {
            step,
            batch_ms: sample.get(Phase::BatchPrep),
            forward_ms: sample.get(Phase::Forward),
            backward_ms: sample.get(Phase::Backward),
            clip_ms: sample.get(Phase::Clip),
            optimizer_ms: sample.get(Phase::Optimizer),
            checkpoint_ms: sample.get(Phase::Checkpoint),
            eval_ms: sample.get(Phase::Eval),
            total_ms,
        });
        step += 1;
    }

    if !report.crashed {
        if let Some(ppl) = eval_perplexity(model, batcher, cfg.eval_seqs) {
            log.final_ppl = ppl;
            log.eval_ppls.push((step, ppl));
        }
        if res.checkpoint_dir.is_some() && res.checkpoint_every > 0 && step != start_step {
            write_checkpoint(
                step,
                model,
                opt,
                batcher,
                &merge_rng,
                &detector,
                lr_scale,
                &mut report,
            );
        }
    }
    log.state_elems = opt.state_elems();
    log.state_bytes = opt.state_bytes();
    log.wall_secs = started.elapsed().as_secs_f64();
    log.resilience = report;
    // Performance-runtime counters: thread-pool jobs/tasks this run and the
    // scratch buffers currently pooled on this thread (printed by
    // `--profile` alongside the sentinel counters).
    let pool = apollo_tensor::pool::stats();
    obs.counter("pool_jobs", pool.jobs.saturating_sub(pool_at_start.jobs));
    obs.counter(
        "pool_worker_tasks",
        pool.worker_tasks.saturating_sub(pool_at_start.worker_tasks),
    );
    obs.counter("pool_workers", pool.workers as u64);
    obs.counter(
        "scratch_pooled_buffers",
        apollo_tensor::scratch::pooled_buffers() as u64,
    );
    // Scratch-pool effectiveness across every thread (the freelists are
    // thread-local, the counters global): bytes parked in freelists at
    // run end and the fraction of takes served without a fresh alloc.
    let scratch = apollo_tensor::scratch::stats();
    obs.counter("scratch_hits", scratch.hits);
    obs.counter("scratch_misses", scratch.misses);
    obs.gauge("scratch.retained_bytes", scratch.retained_bytes as f64);
    obs.gauge("scratch.hit_rate", scratch.hit_rate());
    obs.emit(|| TraceEvent::RunEnd {
        step,
        wall_secs: log.wall_secs,
    });
    if let Err(e) = obs.flush() {
        eprintln!("warning: trace flush failed ({e})");
    }
    log
}

#[cfg(test)]
mod tests {
    use super::*;
    use apollo_data::{CorpusConfig, SyntheticCorpus};
    use apollo_nn::{LinearMode, ModelConfig};
    use apollo_optim::{AdamW, Apollo};
    use apollo_tensor::Rng;

    fn setup(batch: usize) -> (LlamaModel, LmBatcher) {
        let cfg = ModelConfig::test_tiny();
        let mut rng = Rng::seed_from_u64(100);
        let model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
        let corpus = SyntheticCorpus::new(CorpusConfig::with_vocab(cfg.vocab_size));
        let batcher = LmBatcher::new(corpus, batch, cfg.max_seq);
        (model, batcher)
    }

    #[test]
    fn adamw_pretraining_reduces_perplexity() {
        let (mut model, mut batcher) = setup(4);
        let before = eval_perplexity(&model, &batcher, 8).unwrap();
        let mut opt = AdamW::new();
        let log = pretrain(&mut model, &mut opt, &mut batcher, &TrainConfig::quick(60));
        assert!(
            log.final_ppl < before * 0.9,
            "ppl {} -> {}",
            before,
            log.final_ppl
        );
        assert!(log.state_elems > 0);
        assert!(log.wall_secs > 0.0);
    }

    #[test]
    fn apollo_pretraining_reduces_perplexity() {
        let (mut model, mut batcher) = setup(4);
        let before = eval_perplexity(&model, &batcher, 8).unwrap();
        let mut opt = Apollo::new(4, 20);
        let log = pretrain(&mut model, &mut opt, &mut batcher, &TrainConfig::quick(60));
        assert!(
            log.final_ppl < before * 0.9,
            "ppl {} -> {}",
            before,
            log.final_ppl
        );
    }

    #[test]
    fn eval_is_deterministic() {
        let (model, batcher) = setup(4);
        assert_eq!(
            eval_perplexity(&model, &batcher, 8).unwrap(),
            eval_perplexity(&model, &batcher, 8).unwrap()
        );
    }

    #[test]
    fn eval_perplexity_empty_validation_is_none() {
        let (model, batcher) = setup(4);
        assert_eq!(eval_perplexity(&model, &batcher, 0), None);
    }

    #[test]
    fn eval_skipped_cleanly_when_no_validation_data() {
        // eval_seqs = 0 used to divide by zero and poison final_ppl (and
        // every periodic sample) with NaN; now the samples are skipped.
        let (mut model, mut batcher) = setup(2);
        let mut opt = AdamW::new();
        let cfg = TrainConfig {
            eval_seqs: 0,
            eval_every: 2,
            ..TrainConfig::quick(5)
        };
        let log = pretrain(&mut model, &mut opt, &mut batcher, &cfg);
        assert!(log.eval_ppls.is_empty());
        assert!(log.final_ppl.is_nan(), "sentinel default stays NaN");
        assert!(log.train_losses.iter().all(|(_, l)| l.is_finite()));
    }

    #[test]
    fn grad_clip_zeroes_non_finite_gradients() {
        // A NaN entry makes the global norm NaN; `norm > max_norm` is false
        // for NaN, so the old code skipped clipping and passed the poison
        // through. The fix zeroes everything and reports it.
        let mut grads = vec![
            Some(Matrix::full(2, 2, 1.0)),
            None,
            Some(Matrix::full(1, 1, f32::NAN)),
        ];
        let out = clip_global_norm(&mut grads, 1.0);
        assert!(out.non_finite);
        assert!(!out.norm.is_finite());
        for g in grads.iter().flatten() {
            assert!(g.as_slice().iter().all(|&x| x == 0.0));
        }
        let mut inf = vec![Some(Matrix::full(1, 1, f32::INFINITY))];
        assert!(clip_global_norm(&mut inf, 1.0).non_finite);
    }

    /// An optimizer probe that fails the test the moment a non-finite
    /// gradient reaches [`Optimizer::step`].
    struct FiniteGradProbe {
        steps_seen: usize,
    }

    impl Optimizer for FiniteGradProbe {
        fn name(&self) -> String {
            "finite-grad-probe".to_string()
        }

        fn step(&mut self, params: &mut [ParamUpdate<'_>], lr: f32) {
            self.steps_seen += 1;
            for p in params.iter_mut() {
                assert!(
                    !p.grad.has_non_finite(),
                    "non-finite gradient for `{}` reached Optimizer::step",
                    p.name
                );
                p.value.axpy(-lr, p.grad);
            }
        }

        fn state_elems(&self) -> usize {
            0
        }
    }

    #[test]
    fn nan_gradients_trip_the_clip_sentinel_not_the_optimizer() {
        // With grad clipping on and NO recovery policy, an injected NaN
        // gradient used to flow through `clip_global_norm` untouched. The
        // fixed path zeroes the step and reports it.
        let (mut model, mut batcher) = setup(2);
        let mut opt = FiniteGradProbe { steps_seen: 0 };
        let cfg = TrainConfig {
            grad_clip: Some(1.0),
            ..TrainConfig::quick(8)
        };
        let res = ResilienceConfig {
            fault_plan: crate::resilience::FaultPlan::new().inject(3, FaultKind::NanGrad),
            ..ResilienceConfig::default()
        };
        let log = pretrain_resilient(&mut model, &mut opt, &mut batcher, &cfg, &res);
        assert_eq!(log.resilience.clip_nonfinite_steps, 1);
        assert_eq!(log.resilience.non_finite_grads, 1);
        assert_eq!(log.resilience.skipped_steps, 1);
        assert!(!log.resilience.is_clean());
        // The poisoned step is skipped, every other one reaches the probe.
        assert_eq!(opt.steps_seen, 7);
    }

    #[test]
    fn observed_run_writes_a_parseable_trace() {
        let dir = std::env::temp_dir().join("apollo-train-obs-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trainer-smoke.jsonl");
        let (mut model, mut batcher) = setup(2);
        let mut opt = Apollo::new(2, 4);
        let obs = Obs::with_trace(&path, 1).unwrap();
        let cfg = TrainConfig {
            grad_clip: Some(1.0),
            ..TrainConfig::quick(6)
        };
        let log = pretrain_observed(
            &mut model,
            &mut opt,
            &mut batcher,
            &cfg,
            &ResilienceConfig::default(),
            &obs,
        );
        assert!(log.final_ppl.is_finite());
        let events = apollo_obs::read_trace(&path).unwrap();
        let count = |k: &str| events.iter().filter(|e| e.kind() == k).count();
        assert_eq!(count("RunStart"), 1);
        assert_eq!(count("RunEnd"), 1);
        assert_eq!(count("StepPhases"), 6);
        assert_eq!(count("StepMetrics"), 6);
        assert!(count("ProjectorRefresh") > 0, "APOLLO must refresh");
        assert!(count("ScaleSummary") > 0, "APOLLO must emit scales");
        // Phase times must be internally consistent on every step.
        for e in &events {
            if let TraceEvent::StepPhases {
                batch_ms,
                forward_ms,
                backward_ms,
                clip_ms,
                optimizer_ms,
                checkpoint_ms,
                eval_ms,
                total_ms,
                ..
            } = e
            {
                let parts = batch_ms
                    + forward_ms
                    + backward_ms
                    + clip_ms
                    + optimizer_ms
                    + checkpoint_ms
                    + eval_ms;
                assert!(
                    parts <= total_ms * 1.05 + 0.5,
                    "phases {parts} exceed step total {total_ms}"
                );
            }
        }
        // Phase stats accumulated the same number of steps.
        assert_eq!(obs.phase_stats().unwrap().steps(), 6);
        assert!(obs.counter_value("projector_refresh") > 0);
    }

    #[test]
    fn disabled_obs_run_matches_plain_run() {
        // pretrain_observed with a disabled handle must be bit-identical
        // to pretrain (same model weights, same losses).
        let run = |observed: bool| {
            let (mut model, mut batcher) = setup(2);
            let mut opt = Apollo::new(2, 4);
            let cfg = TrainConfig::quick(5);
            let log = if observed {
                pretrain_observed(
                    &mut model,
                    &mut opt,
                    &mut batcher,
                    &cfg,
                    &ResilienceConfig::default(),
                    &Obs::disabled(),
                )
            } else {
                pretrain(&mut model, &mut opt, &mut batcher, &cfg)
            };
            let weights: Vec<Matrix> = model.params.iter().map(|p| p.value.clone()).collect();
            (log.train_losses, log.final_ppl, weights)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn grad_clip_bounds_global_norm() {
        let mut grads = vec![
            Some(Matrix::full(2, 2, 10.0)),
            None,
            Some(Matrix::full(1, 1, 10.0)),
        ];
        clip_global_norm(&mut grads, 1.0);
        let total: f32 = grads
            .iter()
            .flatten()
            .map(|g| g.fro_norm().powi(2))
            .sum::<f32>()
            .sqrt();
        assert!((total - 1.0).abs() < 1e-4, "norm {total}");
    }

    #[test]
    fn grad_clip_leaves_small_gradients_alone() {
        let mut grads = vec![Some(Matrix::full(1, 1, 0.1))];
        clip_global_norm(&mut grads, 1.0);
        assert_eq!(grads[0].as_ref().unwrap().get(0, 0), 0.1);
    }

    #[test]
    fn step_times_recorded_when_requested() {
        let (mut model, mut batcher) = setup(2);
        let mut opt = AdamW::new();
        let cfg = TrainConfig {
            record_step_times: true,
            ..TrainConfig::quick(5)
        };
        let log = pretrain(&mut model, &mut opt, &mut batcher, &cfg);
        assert_eq!(log.step_times_ms.len(), 5);
        assert!(log.step_times_ms.iter().all(|&t| t > 0.0));
    }

    #[test]
    fn periodic_eval_points_are_logged() {
        let (mut model, mut batcher) = setup(2);
        let mut opt = AdamW::new();
        let cfg = TrainConfig {
            eval_every: 10,
            ..TrainConfig::quick(30)
        };
        let log = pretrain(&mut model, &mut opt, &mut batcher, &cfg);
        // evals at 10, 20, and the final one at 30.
        assert_eq!(log.eval_ppls.len(), 3);
        assert_eq!(log.eval_ppls.last().unwrap().0, 30);
    }

    #[test]
    fn quantized_weight_training_stays_on_grid_and_learns() {
        let (mut model, mut batcher) = setup(4);
        let before = eval_perplexity(&model, &batcher, 8).unwrap();
        let mut opt = AdamW::new();
        let cfg = TrainConfig {
            quantize_weights: Some(32),
            ..TrainConfig::quick(60)
        };
        let log = pretrain(&mut model, &mut opt, &mut batcher, &cfg);
        assert!(
            log.final_ppl < before * 0.95,
            "{before} -> {}",
            log.final_ppl
        );
        // Weights must sit exactly on their INT8 grid.
        for p in &model.params {
            if p.kind != apollo_nn::ParamKind::Norm {
                let requant = apollo_quant::fake_quantize(&p.value, 32);
                assert_eq!(requant, p.value, "{} off-grid", p.name);
            }
        }
    }

    #[test]
    fn grad_accumulation_approximates_larger_batch() {
        // accum=2 at batch 2 sees the same data as batch 4 with accum=1
        // would in twice the steps; sanity: it trains and reduces ppl.
        let (mut model, mut batcher) = setup(2);
        let before = eval_perplexity(&model, &batcher, 8).unwrap();
        let mut opt = AdamW::new();
        let cfg = TrainConfig {
            grad_accum: 2,
            ..TrainConfig::quick(40)
        };
        let log = pretrain(&mut model, &mut opt, &mut batcher, &cfg);
        assert!(
            log.final_ppl < before * 0.95,
            "{before} -> {}",
            log.final_ppl
        );
    }

    #[test]
    fn relora_merge_path_runs() {
        let cfg = ModelConfig::test_tiny();
        let mut rng = Rng::seed_from_u64(101);
        let mut model = LlamaModel::new(
            &cfg,
            LinearMode::LoRa {
                rank: 2,
                alpha: 4.0,
            },
            &mut rng,
        );
        let corpus = SyntheticCorpus::new(CorpusConfig::with_vocab(cfg.vocab_size));
        let mut batcher = LmBatcher::new(corpus, 2, cfg.max_seq);
        let mut opt = AdamW::new();
        let cfg_t = TrainConfig {
            merge_every: Some(10),
            ..TrainConfig::quick(25)
        };
        let log = pretrain(&mut model, &mut opt, &mut batcher, &cfg_t);
        assert!(log.final_ppl.is_finite());
    }
}
