//! Persistent worker pool for the matmul kernels.
//!
//! The previous kernels spawned fresh scoped threads (`std::thread::scope`)
//! on every parallel matmul — at proxy scales the spawn/join cost rivals the
//! kernel itself. This pool spawns workers once, parks them on a condvar
//! between jobs, and hands out *tasks* (row bands) through a shared
//! dispenser so a job finishes even if some workers are slow to wake.
//!
//! Determinism: the pool never decides *how* work is split — callers
//! partition rows into bands purely from `(rows, requested_threads)` and
//! each band writes a disjoint output slice with the same per-row
//! accumulation order as the serial path. Which thread runs a band is
//! therefore irrelevant to the result; outputs are bit-identical across
//! pool sizes, wake ordering, and task-stealing interleavings.
//!
//! Jobs from concurrent submitter threads serialize on a submit lock; the
//! submitting thread always participates in its own job, so a pool with
//! zero spawned workers (thread count 1) degrades to the serial loop.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Type-erased pointer to a job's task closure.
///
/// The erased lifetime is sound because [`Pool::run`] blocks until every
/// task of the job has completed, so the pointee outlives all uses.
#[derive(Clone, Copy)]
struct TaskPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared-callable from any thread) and the
// pool only dereferences it while the owning `run` call keeps it alive.
unsafe impl Send for TaskPtr {}
unsafe impl Sync for TaskPtr {}

#[derive(Clone, Copy)]
struct Job {
    task: TaskPtr,
    n_tasks: usize,
}

struct State {
    /// Currently published job, if any.
    job: Option<Job>,
    /// Bumped once per published job so parked workers can tell a fresh
    /// job from the one they already drained.
    generation: u64,
    /// Next task index to hand out for the current job.
    next_task: usize,
    /// Completed task count for the current job.
    completed: usize,
    /// Number of spawned (persistent) workers.
    workers: usize,
}

/// The process-wide worker pool. See the module docs for the design.
pub struct Pool {
    state: Mutex<State>,
    /// Workers park here between jobs.
    work_cv: Condvar,
    /// Submitters park here while workers finish the tail of a job.
    done_cv: Condvar,
    /// Serializes concurrent submitters (one job in flight at a time).
    submit: Mutex<()>,
    jobs: AtomicU64,
    worker_tasks: AtomicU64,
}

/// Counters for observability (`pool_*` metrics in `--profile` output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs dispatched to the pool (parallel kernel invocations).
    pub jobs: u64,
    /// Tasks executed by pooled workers (rest ran on the submitter).
    pub worker_tasks: u64,
    /// Persistent workers currently spawned.
    pub workers: usize,
}

/// Hard cap on spawned workers, over and above the submitter itself.
const MAX_WORKERS: usize = 63;

impl Pool {
    fn global() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| Pool {
            state: Mutex::new(State {
                job: None,
                generation: 0,
                next_task: 0,
                completed: 0,
                workers: 0,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            submit: Mutex::new(()),
            jobs: AtomicU64::new(0),
            worker_tasks: AtomicU64::new(0),
        })
    }

    /// Runs `f(t)` for every task `t in 0..n_tasks` using up to
    /// `threads - 1` pooled workers plus the calling thread, returning once
    /// all tasks completed. With `threads <= 1` (or a single task) this is
    /// exactly the serial `for` loop — no pool, no locks.
    pub fn run(threads: usize, n_tasks: usize, f: &(dyn Fn(usize) + Sync)) {
        let helpers = threads
            .saturating_sub(1)
            .min(n_tasks.saturating_sub(1))
            .min(MAX_WORKERS);
        if helpers == 0 {
            for t in 0..n_tasks {
                f(t);
            }
            return;
        }
        let pool = Self::global();
        let _submit = pool.submit.lock().unwrap();
        pool.jobs.fetch_add(1, Ordering::Relaxed);
        // SAFETY: only the lifetime is erased; `run` blocks below until
        // `completed == n_tasks`, so `f` outlives every dereference.
        let task = TaskPtr(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync),
                *const (dyn Fn(usize) + Sync + 'static),
            >(f as *const (dyn Fn(usize) + Sync))
        });
        {
            let mut st = pool.state.lock().unwrap();
            while st.workers < helpers {
                st.workers += 1;
                let id = st.workers;
                std::thread::Builder::new()
                    .name(format!("apollo-pool-{id}"))
                    .spawn(move || Pool::worker_loop(Pool::global()))
                    .expect("spawn pool worker");
            }
            st.job = Some(Job { task, n_tasks });
            st.generation += 1;
            st.next_task = 0;
            st.completed = 0;
            pool.work_cv.notify_all();
        }
        // The submitter works its own job rather than just waiting.
        loop {
            let t = {
                let mut st = pool.state.lock().unwrap();
                if st.next_task >= n_tasks {
                    break;
                }
                let t = st.next_task;
                st.next_task += 1;
                t
            };
            f(t);
            let mut st = pool.state.lock().unwrap();
            st.completed += 1;
            if st.completed == n_tasks {
                st.job = None;
                pool.done_cv.notify_all();
            }
        }
        let mut st = pool.state.lock().unwrap();
        while st.completed < n_tasks {
            st = pool.done_cv.wait(st).unwrap();
        }
    }

    fn worker_loop(pool: &'static Pool) {
        let mut seen_gen = 0u64;
        loop {
            let (job, generation) = {
                let mut st = pool.state.lock().unwrap();
                loop {
                    if let Some(job) = st.job {
                        if st.generation != seen_gen && st.next_task < job.n_tasks {
                            break (job, st.generation);
                        }
                    }
                    st = pool.work_cv.wait(st).unwrap();
                }
            };
            seen_gen = generation;
            loop {
                let t = {
                    let mut st = pool.state.lock().unwrap();
                    if st.generation != generation || st.next_task >= job.n_tasks {
                        break;
                    }
                    let t = st.next_task;
                    st.next_task += 1;
                    t
                };
                // SAFETY: the submitter blocks in `run` until `completed ==
                // n_tasks`, which includes this task, so the closure behind
                // the erased pointer is still alive.
                unsafe { (*job.task.0)(t) };
                pool.worker_tasks.fetch_add(1, Ordering::Relaxed);
                let mut st = pool.state.lock().unwrap();
                st.completed += 1;
                if st.generation == generation && st.completed == job.n_tasks {
                    st.job = None;
                    pool.done_cv.notify_all();
                }
            }
        }
    }
}

/// Snapshot of the global pool's counters.
pub fn stats() -> PoolStats {
    let pool = Pool::global();
    let workers = pool.state.lock().unwrap().workers;
    PoolStats {
        jobs: pool.jobs.load(Ordering::Relaxed),
        worker_tasks: pool.worker_tasks.load(Ordering::Relaxed),
        workers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn serial_path_runs_all_tasks_in_order() {
        let order = Mutex::new(Vec::new());
        Pool::run(1, 5, &|t| order.lock().unwrap().push(t));
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn pooled_path_runs_each_task_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..32).map(|_| AtomicUsize::new(0)).collect();
        Pool::run(4, hits.len(), &|t| {
            hits[t].fetch_add(1, Ordering::Relaxed);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn back_to_back_jobs_reuse_parked_workers() {
        for round in 0..20 {
            let sum = AtomicUsize::new(0);
            let n = 3 + round % 5;
            Pool::run(3, n, &|t| {
                sum.fetch_add(t + 1, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), n * (n + 1) / 2);
        }
        let stats = stats();
        assert!(stats.jobs >= 20);
        assert!(stats.workers >= 1);
    }

    #[test]
    fn zero_tasks_is_a_no_op() {
        Pool::run(8, 0, &|_| panic!("no tasks to run"));
    }

    #[test]
    fn concurrent_submitters_serialize_cleanly() {
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10 {
                        let sum = AtomicUsize::new(0);
                        Pool::run(2, 8, &|t| {
                            sum.fetch_add(t, Ordering::Relaxed);
                        });
                        assert_eq!(sum.load(Ordering::Relaxed), 28);
                    }
                });
            }
        });
    }
}
