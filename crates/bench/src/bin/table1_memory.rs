//! Table 1: optimizer-state formula comparison across methods.
//!
//! Prints the closed-form per-tensor state counts for a representative
//! `m × n` weight and verifies them against the live optimizers, then the
//! aggregate over a full LLaMA-7B inventory.

use apollo_bench::{print_table, write_json};
use apollo_nn::ModelConfig;
use apollo_optim::memory::MethodSpec;
use apollo_sysmodel::TrainingMemoryModel;

fn main() {
    let (m, n, r) = (4096usize, 11008usize, 256usize);
    let specs = [
        MethodSpec::ApolloMini,
        MethodSpec::Apollo { rank: r },
        MethodSpec::Fira { rank: r },
        MethodSpec::GaLore { rank: r },
        MethodSpec::Flora { rank: r },
        MethodSpec::AdamW,
        MethodSpec::SgdMomentum,
        MethodSpec::Sgd,
    ];

    let mut rows = Vec::new();
    let mem7b = TrainingMemoryModel::new(&ModelConfig::llama_7b());
    for spec in specs {
        let per_tensor = spec.state_elems_for(m, n, true);
        let total = spec.state_elems(mem7b.shapes());
        rows.push(vec![
            spec.label(),
            format!("{per_tensor}"),
            format!("{:.2}", total as f64 / 1e9),
            format!("{:.2}", spec.state_bytes(mem7b.shapes()) * 2.0 / 4.0 / 1e9),
        ]);
    }
    let rows_str: Vec<Vec<String>> = rows
        .iter()
        .map(|r| r.iter().map(|c| c.to_string()).collect())
        .collect();
    print_table(
        &format!("Table 1 — optimizer state for one {m}x{n} tensor (r = {r}) and full LLaMA-7B"),
        &[
            "Method",
            "State elems (tensor)",
            "7B total (G elems)",
            "7B states (GB, BF16)",
        ],
        &rows_str,
    );
    println!(
        "\nPaper formulas (m<=n): APOLLO-Mini 2n+2 | APOLLO 2nr+2 | Fira mr+2nr+1 | \
         GaLore mr+2nr | Flora 2nr+1 | AdamW 2mn"
    );
    write_json("table1_memory", &rows_str);
}
