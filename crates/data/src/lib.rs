//! Synthetic data substrates standing in for the paper's corpora.
//!
//! The paper pre-trains on C4 and fine-tunes on eight commonsense-reasoning
//! suites plus MMLU. Neither is available offline, so this crate provides:
//!
//! - [`SyntheticCorpus`] — a first-order Markov source over a Zipf-distributed
//!   vocabulary. It has genuine sequential structure (each context token
//!   admits a small candidate set), so a language model's perplexity falls
//!   well below the unigram entropy only if the optimizer actually learns —
//!   which is what separates the optimizers under test.
//! - [`LmBatcher`] — an infinite next-token-prediction batch stream plus a
//!   fixed held-out validation set, mirroring single-epoch C4 training.
//! - [`TaskGen`] and the [`commonsense_suite`] / [`mmlu_suite`] constructors
//!   — sequence-classification tasks whose label is recoverable from marker
//!   tokens injected into corpus noise, standing in for the fine-tuning
//!   benchmarks (Tables 4 and 5).
//!
//! Everything is deterministic given its seeds.

mod corpus;
mod loader;
mod stream;
mod tasks;
mod tokenizer;

pub use corpus::{CorpusConfig, SyntheticCorpus};
pub use loader::LmBatcher;
pub use stream::DecodeStream;
pub use tasks::{commonsense_suite, mmlu_suite, TaskConfig, TaskGen};
pub use tokenizer::{tokenize_file, BpeTokenizer, ByteTokenizer, Tokenize};
