//! Radix-tree prefix cache over KV blocks.
//!
//! Prompts are matched token-by-token against a radix tree whose nodes own
//! [`KvBlock`]s — position-independent copies of the KV rows a prefix
//! produces. A hit lets the scheduler append the cached rows into a slot's
//! cache and prefill only the unmatched suffix; because KV rows at
//! position `t` are a pure function of the token prefix `0..=t` (and the
//! adapter), and [`apollo_nn::DecodeCaches::append_block`] is a bitwise
//! copy, decoding on top of a hit is **bit-identical** to cold prefill in
//! Exact mode (pinned by `nn/tests/decode_equivalence.rs` and
//! `infer/tests/prefix_churn.rs`).
//!
//! # Ownership and eviction rules
//!
//! - Every node owns its block outright; lookups hand back *copies*
//!   (sliced to the matched length), so eviction can never corrupt a slot
//!   that already appended a block — there is no aliasing to protect.
//! - Ref-counting exists purely as an eviction guard: a lookup leases
//!   every node on its matched path, and [`PrefixCache::release`] returns
//!   the lease at retirement. Eviction only considers nodes with zero
//!   leases and zero children (childless leaves), so an in-use or interior
//!   node is never dropped.
//! - Under a byte budget, insertion evicts least-recently-used unleased
//!   leaves until the cache fits. A budget of zero disables the cache.
//! - Adapters key separate roots: a prefix cached under one adapter is
//!   never served to another (their KV rows differ).

use std::mem;

use apollo_nn::KvBlock;

/// One radix-tree node: a token span, its KV rows, and its children.
struct Node {
    /// Tokens this edge covers (≥ 1).
    tokens: Vec<u32>,
    /// KV rows for exactly those tokens, owned by the node.
    block: KvBlock,
    /// Child node ids; their spans start with pairwise-distinct tokens.
    children: Vec<usize>,
    /// Outstanding lookup leases (eviction guard, not aliasing).
    leases: usize,
    /// Logical clock of the last lookup/insert touching this node.
    last_use: u64,
}

/// An outstanding lease on a matched path. Must be given back via
/// [`PrefixCache::release`] when the request retires.
#[derive(Debug)]
pub struct PrefixLease {
    path: Vec<usize>,
}

/// A successful lookup: blocks to append (in order), covering `matched`
/// prompt tokens, plus the lease guarding the path.
pub struct PrefixHit {
    /// Owned copies of the matched KV rows, in prompt order.
    pub blocks: Vec<KvBlock>,
    /// Prompt tokens covered (always `< prompt.len()`).
    pub matched: usize,
    /// Eviction guard for the matched path.
    pub lease: PrefixLease,
}

/// Token-level radix tree of cached KV prefixes with per-adapter roots,
/// lease-guarded LRU eviction, and a byte budget.
pub struct PrefixCache {
    /// Arena; `None` slots are free (ids are recycled via `free`).
    nodes: Vec<Option<Node>>,
    free: Vec<usize>,
    /// Root child lists, one per adapter key (`None` = base model).
    roots: Vec<(Option<u32>, Vec<usize>)>,
    bytes: usize,
    budget: usize,
    clock: u64,
    lookups: u64,
    hits: u64,
    hit_tokens: u64,
    insertions: u64,
    evictions: u64,
}

impl PrefixCache {
    /// A cache evicting down to `budget_bytes` of block storage after each
    /// insertion. Zero disables caching entirely.
    pub fn new(budget_bytes: usize) -> Self {
        PrefixCache {
            nodes: Vec::new(),
            free: Vec::new(),
            roots: Vec::new(),
            bytes: 0,
            budget: budget_bytes,
            clock: 0,
            lookups: 0,
            hits: 0,
            hit_tokens: 0,
            insertions: 0,
            evictions: 0,
        }
    }

    /// Whether the cache stores anything at all.
    pub fn enabled(&self) -> bool {
        self.budget > 0
    }

    /// Longest cached prefix of `prompt` under `adapter`, capped at
    /// `prompt.len() - 1` so at least one suffix token remains to prefill
    /// (the requester needs the last prompt row's logits to sample from).
    /// Returns `None` on a miss (zero tokens matched).
    pub fn lookup(&mut self, adapter: Option<u32>, prompt: &[u32]) -> Option<PrefixHit> {
        if !self.enabled() {
            return None;
        }
        self.lookups += 1;
        self.clock += 1;
        let max_match = prompt.len().saturating_sub(1);
        let mut children: &[usize] = match self.roots.iter().find(|(a, _)| *a == adapter) {
            Some((_, c)) => c,
            None => &[],
        };
        let mut blocks = Vec::new();
        let mut path = Vec::new();
        let mut matched = 0;
        while matched < max_match {
            let Some(&child) = children
                .iter()
                .find(|&&id| self.node(id).tokens[0] == prompt[matched])
            else {
                break;
            };
            let node = self.node(child);
            let lcp = node
                .tokens
                .iter()
                .zip(&prompt[matched..])
                .take_while(|(a, b)| a == b)
                .count()
                .min(max_match - matched);
            debug_assert!(lcp >= 1);
            if lcp == node.tokens.len() {
                blocks.push(node.block.clone());
            } else {
                blocks.push(node.block.slice(0, lcp));
            }
            path.push(child);
            matched += lcp;
            if lcp < self.node(child).tokens.len() {
                break; // partial edge: nothing below can extend the match
            }
            children = &self.nodes[child].as_ref().expect("live node").children;
        }
        if matched == 0 {
            return None;
        }
        self.hits += 1;
        self.hit_tokens += matched as u64;
        let now = self.clock;
        for &id in &path {
            let n = self.node_mut(id);
            n.leases += 1;
            n.last_use = now;
        }
        Some(PrefixHit {
            blocks,
            matched,
            lease: PrefixLease { path },
        })
    }

    /// Returns a lease taken by [`PrefixCache::lookup`], re-arming its path
    /// for eviction once no other lease holds it.
    pub fn release(&mut self, lease: PrefixLease) {
        for id in lease.path {
            let n = self.node_mut(id);
            debug_assert!(n.leases > 0, "release without a lease");
            n.leases = n.leases.saturating_sub(1);
        }
    }

    /// Inserts `tokens`' KV rows under `adapter`, exporting only the rows
    /// not already cached via `export(lo, hi)` (global token offsets —
    /// the scheduler maps these straight onto a freshly-prefilled slot's
    /// cache). Splits partial edges as needed; a fully-covered insertion
    /// is a no-op. Evicts down to the budget afterwards.
    pub fn insert(
        &mut self,
        adapter: Option<u32>,
        tokens: &[u32],
        mut export: impl FnMut(usize, usize) -> KvBlock,
    ) {
        if !self.enabled() || tokens.is_empty() {
            return;
        }
        self.clock += 1;
        let root = match self.roots.iter().position(|(a, _)| *a == adapter) {
            Some(i) => i,
            None => {
                self.roots.push((adapter, Vec::new()));
                self.roots.len() - 1
            }
        };
        // Walk down; `parent` of `None` means the root child list.
        let mut parent: Option<usize> = None;
        let mut pos = 0;
        loop {
            let children: &[usize] = match parent {
                None => &self.roots[root].1,
                Some(p) => &self.node(p).children,
            };
            let next = children
                .iter()
                .copied()
                .find(|&id| self.node(id).tokens[0] == tokens[pos]);
            let Some(child) = next else {
                // No edge starts with tokens[pos]: add the whole remainder
                // as one new leaf.
                let block = export(pos, tokens.len());
                self.bytes += block.memory_bytes();
                let id = self.alloc(Node {
                    tokens: tokens[pos..].to_vec(),
                    block,
                    children: Vec::new(),
                    leases: 0,
                    last_use: self.clock,
                });
                match parent {
                    None => self.roots[root].1.push(id),
                    Some(p) => self.node_mut(p).children.push(id),
                }
                self.insertions += 1;
                break;
            };
            let span_len = self.node(child).tokens.len();
            let lcp = self
                .node(child)
                .tokens
                .iter()
                .zip(&tokens[pos..])
                .take_while(|(a, b)| a == b)
                .count();
            self.node_mut(child).last_use = self.clock;
            if lcp == span_len {
                pos += lcp;
                if pos == tokens.len() {
                    break; // fully covered already
                }
                parent = Some(child);
                continue;
            }
            // Diverges (or ends) mid-edge: split the edge at `lcp`. The
            // original node keeps the shared head (and its leases — a lease
            // only ever guards a prefix of what it copied); the new child
            // takes the tail, the block split is an exact row partition.
            self.split(child, lcp);
            pos += lcp;
            if pos < tokens.len() {
                let block = export(pos, tokens.len());
                self.bytes += block.memory_bytes();
                let id = self.alloc(Node {
                    tokens: tokens[pos..].to_vec(),
                    block,
                    children: Vec::new(),
                    leases: 0,
                    last_use: self.clock,
                });
                self.node_mut(child).children.push(id);
                self.insertions += 1;
            }
            break;
        }
        self.evict_to_budget();
    }

    /// Splits node `id`'s span at `at` (`1 ≤ at < len`): the node keeps
    /// `tokens[..at]` and block rows `0..at`; a new child takes the rest,
    /// inheriting the node's children. Total bytes are unchanged (an exact
    /// row partition), so no budget accounting is needed.
    fn split(&mut self, id: usize, at: usize) {
        let (tail_tokens, tail_block, old_children, last_use) = {
            let n = self.node_mut(id);
            debug_assert!(at >= 1 && at < n.tokens.len());
            let tail_tokens = n.tokens.split_off(at);
            let tail_block = n.block.slice(at, at + tail_tokens.len());
            n.block = n.block.slice(0, at);
            (
                tail_tokens,
                tail_block,
                mem::take(&mut n.children),
                n.last_use,
            )
        };
        let tail = self.alloc(Node {
            tokens: tail_tokens,
            block: tail_block,
            children: old_children,
            leases: 0,
            last_use,
        });
        self.node_mut(id).children.push(tail);
    }

    /// Evicts least-recently-used unleased childless leaves until the
    /// cache fits its budget (or no evictable node remains).
    fn evict_to_budget(&mut self) {
        while self.bytes > self.budget {
            let victim = self
                .nodes
                .iter()
                .enumerate()
                .filter_map(|(id, n)| n.as_ref().map(|n| (id, n)))
                .filter(|(_, n)| n.children.is_empty() && n.leases == 0)
                .min_by_key(|(_, n)| n.last_use)
                .map(|(id, _)| id);
            let Some(id) = victim else { break };
            let node = self.nodes[id].take().expect("victim is live");
            self.bytes -= node.block.memory_bytes();
            self.free.push(id);
            self.evictions += 1;
            for (_, roots) in &mut self.roots {
                roots.retain(|&c| c != id);
            }
            for n in self.nodes.iter_mut().flatten() {
                n.children.retain(|&c| c != id);
            }
        }
    }

    fn alloc(&mut self, node: Node) -> usize {
        match self.free.pop() {
            Some(id) => {
                self.nodes[id] = Some(node);
                id
            }
            None => {
                self.nodes.push(Some(node));
                self.nodes.len() - 1
            }
        }
    }

    fn node(&self, id: usize) -> &Node {
        self.nodes[id].as_ref().expect("live node")
    }

    fn node_mut(&mut self, id: usize) -> &mut Node {
        self.nodes[id].as_mut().expect("live node")
    }

    /// Bytes of cached block storage.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Live node count.
    pub fn node_count(&self) -> usize {
        self.nodes.iter().flatten().count()
    }

    /// Lookups since construction.
    pub fn lookup_count(&self) -> u64 {
        self.lookups
    }

    /// Lookups that matched at least one token.
    pub fn hit_count(&self) -> u64 {
        self.hits
    }

    /// Total prompt tokens served from cache.
    pub fn hit_token_count(&self) -> u64 {
        self.hit_tokens
    }

    /// Leaf evictions since construction.
    pub fn eviction_count(&self) -> u64 {
        self.evictions
    }

    /// New-node insertions since construction.
    pub fn insertion_count(&self) -> u64 {
        self.insertions
    }
}

impl std::fmt::Debug for PrefixCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrefixCache")
            .field("nodes", &self.node_count())
            .field("bytes", &self.bytes)
            .field("budget", &self.budget)
            .field("hits", &self.hits)
            .field("lookups", &self.lookups)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apollo_nn::{DecodeBackend, LinearMode, LlamaModel, ModelConfig};
    use apollo_tensor::Rng;

    /// A backend plus one prefilled slot per call, so tests can export
    /// genuine KV blocks for arbitrary token vectors.
    struct Rig {
        backend: DecodeBackend,
    }

    impl Rig {
        fn new() -> Self {
            let cfg = ModelConfig::test_tiny();
            let mut rng = Rng::seed_from_u64(0xF1F0);
            let model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
            Rig {
                backend: DecodeBackend::from(model),
            }
        }

        /// Prefills `tokens` cold and exports rows `lo..hi`.
        fn block(&self, tokens: &[u32], lo: usize, hi: usize) -> KvBlock {
            let mut caches = self.backend.new_caches(1, 64);
            let rows: Vec<(usize, u32)> = tokens.iter().map(|&t| (0, t)).collect();
            self.backend.forward_cached(&mut caches, &rows);
            caches.export_rows(0, lo, hi)
        }
    }

    #[test]
    fn miss_then_hit_with_suffix_reserved() {
        let rig = Rig::new();
        let mut pc = PrefixCache::new(1 << 20);
        let prompt = [1u32, 2, 3, 4, 5];
        assert!(pc.lookup(None, &prompt).is_none());
        pc.insert(None, &prompt, |lo, hi| rig.block(&prompt, lo, hi));
        assert_eq!(pc.node_count(), 1);
        // Same prompt again: match caps at len-1, leaving one suffix token.
        let hit = pc.lookup(None, &prompt).expect("hit");
        assert_eq!(hit.matched, 4);
        assert_eq!(hit.blocks.iter().map(KvBlock::rows).sum::<usize>(), 4);
        pc.release(hit.lease);
        // A longer prompt sharing the prefix matches all 5 cached rows.
        let longer = [1u32, 2, 3, 4, 5, 6, 7];
        let hit = pc.lookup(None, &longer).expect("hit");
        assert_eq!(hit.matched, 5);
        pc.release(hit.lease);
        assert_eq!(pc.hit_count(), 2);
        assert_eq!(pc.lookup_count(), 3);
        assert_eq!(pc.hit_token_count(), 9);
    }

    #[test]
    fn diverging_prompts_split_edges() {
        let rig = Rig::new();
        let mut pc = PrefixCache::new(1 << 20);
        let a = [1u32, 2, 3, 4, 5];
        let b = [1u32, 2, 9, 9, 9];
        pc.insert(None, &a, |lo, hi| rig.block(&a, lo, hi));
        pc.insert(None, &b, |lo, hi| rig.block(&b, lo, hi));
        // Shared head [1,2] + two tails.
        assert_eq!(pc.node_count(), 3);
        let hit = pc.lookup(None, &b).expect("hit");
        assert_eq!(hit.matched, 4);
        pc.release(hit.lease);
        // The shared head still serves the first prompt.
        let hit = pc.lookup(None, &a).expect("hit");
        assert_eq!(hit.matched, 4);
        pc.release(hit.lease);
        // Re-inserting either is a no-op.
        let before = pc.node_count();
        pc.insert(None, &a, |_, _| panic!("fully covered: no export"));
        assert_eq!(pc.node_count(), before);
    }

    #[test]
    fn adapters_do_not_share_prefixes() {
        let rig = Rig::new();
        let mut pc = PrefixCache::new(1 << 20);
        let prompt = [1u32, 2, 3, 4];
        pc.insert(Some(0), &prompt, |lo, hi| rig.block(&prompt, lo, hi));
        assert!(pc.lookup(Some(1), &prompt).is_none());
        assert!(pc.lookup(None, &prompt).is_none());
        let hit = pc.lookup(Some(0), &prompt).expect("own root hits");
        pc.release(hit.lease);
    }

    #[test]
    fn budget_evicts_lru_but_never_leased_nodes() {
        let rig = Rig::new();
        let a = [1u32, 2, 3, 4, 5, 6, 7, 8];
        let one = rig.block(&a, 0, 8).memory_bytes();
        // Room for ~2 full prompts' rows.
        let mut pc = PrefixCache::new(2 * one + 1);
        pc.insert(None, &a, |lo, hi| rig.block(&a, lo, hi));
        let b = [11u32, 12, 13, 14, 15, 16, 17, 18];
        pc.insert(None, &b, |lo, hi| rig.block(&b, lo, hi));
        assert_eq!(pc.eviction_count(), 0);
        // Hold a lease on `a`'s path; inserting a third prompt must evict
        // `b` (LRU, unleased), never `a`.
        let hit = pc.lookup(None, &a).expect("hit");
        let c = [21u32, 22, 23, 24, 25, 26, 27, 28];
        pc.insert(None, &c, |lo, hi| rig.block(&c, lo, hi));
        assert!(pc.eviction_count() >= 1);
        assert!(pc.lookup(None, &b).is_none(), "b evicted");
        let again = pc.lookup(None, &a).expect("leased path survives");
        pc.release(again.lease);
        pc.release(hit.lease);
        assert!(pc.bytes() <= 2 * one + 1);
    }

    #[test]
    fn zero_budget_disables_the_cache() {
        let mut pc = PrefixCache::new(0);
        assert!(!pc.enabled());
        let prompt = [1u32, 2, 3];
        pc.insert(None, &prompt, |_, _| panic!("disabled: no export"));
        assert!(pc.lookup(None, &prompt).is_none());
        assert_eq!(pc.lookup_count(), 0);
    }

    #[test]
    fn eviction_then_reinsertion_serves_fresh_blocks() {
        // The stale-KV regression this cache must never have: evict a
        // prefix, re-insert different tokens reusing the same arena slot,
        // and verify lookups return the *new* tokens' rows.
        let rig = Rig::new();
        let a = [1u32, 2, 3, 4];
        let one = rig.block(&a, 0, 4).memory_bytes();
        let mut pc = PrefixCache::new(one); // room for exactly one prompt
        pc.insert(None, &a, |lo, hi| rig.block(&a, lo, hi));
        let b = [5u32, 6, 7, 8];
        pc.insert(None, &b, |lo, hi| rig.block(&b, lo, hi));
        assert!(pc.lookup(None, &a).is_none(), "a evicted");
        let hit = pc.lookup(None, &b).expect("b cached");
        assert_eq!(hit.matched, 3);
        // The cached rows must be b's genuine KV rows, bit for bit.
        let fresh = rig.block(&b, 0, 3);
        let mut caches = rig.backend.new_caches(2, 16);
        caches.append_block(0, &hit.blocks[0]);
        caches.append_block(1, &fresh);
        let h = rig
            .backend
            .forward_cached(&mut caches, &[(0, b[3]), (1, b[3])]);
        let logits = rig.backend.lm_logits(&h);
        for (x, y) in logits.row(0).iter().zip(logits.row(1)) {
            assert!(x.to_bits() == y.to_bits(), "stale KV served");
        }
        pc.release(hit.lease);
    }
}
