//! One population member: a tiny-proxy pretrain run owning its model,
//! optimizer, and data cursor, plus the clone/transplant machinery the
//! exploit step uses.

use std::io;

use apollo_data::{CorpusConfig, LmBatcher, SyntheticCorpus};
use apollo_nn::{LinearMode, LlamaModel, ParamKind};
use apollo_optim::{AdamWChannelwise, Apollo, Optimizer, ParamUpdate};
use apollo_tensor::Rng;
use apollo_train::{eval_perplexity, train_state_blob, LrSchedule, TrainMeta, TrainState};

use crate::driver::SearchConfig;
use crate::genome::{Genome, OptFamily};

/// Concrete optimizer behind a member. An enum (not `Box<dyn Optimizer>`)
/// so the exploit step can reach family-specific knob setters
/// ([`Apollo::set_update_freq`], the public `alpha` field) after a state
/// transplant.
#[derive(Debug)]
pub enum MemberOpt {
    /// APOLLO or APOLLO-Mini, distinguished by the genome's family.
    Apollo(Apollo),
    /// The channel-wise AdamW control.
    AdamWCw(AdamWChannelwise),
}

impl MemberOpt {
    /// Builds a fresh optimizer configured by `genome`. The APOLLO base
    /// seed stays at its crate default so per-parameter projector seeds
    /// remain position-derived and checkpoint resumes stay bit-exact.
    pub fn from_genome(genome: &Genome) -> MemberOpt {
        match genome.family {
            OptFamily::Apollo => MemberOpt::Apollo(
                Apollo::new(genome.rank.max(1), genome.update_freq).with_alpha(genome.alpha),
            ),
            OptFamily::ApolloMini => {
                MemberOpt::Apollo(Apollo::mini(genome.update_freq).with_alpha(genome.alpha))
            }
            OptFamily::AdamWChannelwise => MemberOpt::AdamWCw(AdamWChannelwise::new()),
        }
    }

    /// The trait-object view for the step loop and state (de)serialization.
    pub fn as_opt(&mut self) -> &mut dyn Optimizer {
        match self {
            MemberOpt::Apollo(o) => o,
            MemberOpt::AdamWCw(o) => o,
        }
    }

    /// Read-only trait-object view.
    pub fn as_opt_ref(&self) -> &dyn Optimizer {
        match self {
            MemberOpt::Apollo(o) => o,
            MemberOpt::AdamWCw(o) => o,
        }
    }

    /// Applies the transplant-safe knobs (α, projector refresh period) in
    /// place, preserving moments and projector bases. Layout-changing knobs
    /// (family, rank) require a rebuild via [`MemberOpt::from_genome`].
    pub fn apply_knobs(&mut self, genome: &Genome) {
        if let MemberOpt::Apollo(o) = self {
            o.alpha = genome.alpha;
            o.set_update_freq(genome.update_freq);
        }
    }
}

/// Clamp a perplexity to a finite value so reports and traces stay
/// JSON-serializable even if a mutated LR diverges the proxy run.
fn finite_ppl(p: f32) -> f32 {
    if p.is_finite() {
        p
    } else {
        f32::MAX
    }
}

/// The shared data source: every member streams the same corpus (its own
/// cursor) and evaluates on the same held-out set, so perplexities are
/// directly comparable.
pub fn base_batcher(cfg: &SearchConfig) -> LmBatcher {
    let corpus = SyntheticCorpus::new(CorpusConfig::with_vocab(cfg.model.vocab_size));
    LmBatcher::new(corpus, cfg.batch, cfg.model.max_seq)
}

/// One concurrent pretrain run in the population.
#[derive(Debug)]
pub struct Member {
    /// Population slot (stable across clones).
    pub id: usize,
    /// Current hyper-parameter assignment.
    pub genome: Genome,
    /// The model being trained.
    pub model: LlamaModel,
    /// The member's optimizer.
    pub opt: MemberOpt,
    /// Private data cursor over the shared corpus.
    pub batcher: LmBatcher,
    /// Optimizer steps taken so far.
    pub step: usize,
    /// Most recent eval perplexity (`f32::MAX` until first eval).
    pub last_ppl: f32,
}

impl Member {
    /// A fresh member: all members share one model-init seed (`cfg.seed`)
    /// and one data stream, so genomes are the only experimental variable.
    pub fn new(id: usize, genome: Genome, cfg: &SearchConfig) -> Member {
        let mut rng = Rng::seed_from_u64(cfg.seed);
        let model = LlamaModel::new(&cfg.model, LinearMode::Dense, &mut rng);
        let opt = MemberOpt::from_genome(&genome);
        Member {
            id,
            genome,
            model,
            opt,
            batcher: base_batcher(cfg),
            step: 0,
            last_ppl: f32::MAX,
        }
    }

    /// Runs `steps` optimizer steps under the genome's warmup+cosine
    /// schedule (defined over the search's full `total_steps` budget, so a
    /// member's schedule position survives cloning).
    pub fn train_segment(&mut self, steps: usize, total_steps: usize) {
        let schedule = LrSchedule {
            peak_lr: self.genome.peak_lr,
            total_steps,
            warmup_frac: self.genome.warmup_frac,
            min_lr_frac: 0.1,
        };
        for _ in 0..steps {
            let (tokens, targets) = self.batcher.next_batch();
            let (mut graph, loss_id, pnodes) =
                self.model
                    .build_loss(&tokens, &targets, self.batcher.batch());
            graph.backward(loss_id);
            let grads = self.model.collect_grads(&graph, &pnodes);
            drop(graph);
            let lr = schedule.lr_at(self.step);
            let mut updates: Vec<ParamUpdate<'_>> = Vec::new();
            for (p, g) in self.model.params.iter_mut().zip(&grads) {
                if let (true, Some(grad)) = (p.trainable, g.as_ref()) {
                    updates.push(ParamUpdate {
                        name: &p.name,
                        value: &mut p.value,
                        grad,
                        projectable: p.kind == ParamKind::Projectable,
                    });
                }
            }
            self.opt.as_opt().step(&mut updates, lr);
            self.step += 1;
        }
    }

    /// Evaluates held-out perplexity, records and returns it.
    pub fn eval(&mut self, eval_seqs: usize) -> f32 {
        let ppl = eval_perplexity(&self.model, &self.batcher, eval_seqs)
            .expect("search configs require eval_seqs > 0");
        self.last_ppl = finite_ppl(ppl);
        self.last_ppl
    }

    /// Serializes the member's full train state (weights, optimizer
    /// moments/projectors, step, data cursor) as an in-memory v2
    /// checkpoint blob — the same format the disk path writes.
    pub fn snapshot(&self) -> io::Result<Vec<u8>> {
        let optimizer = self
            .opt
            .as_opt_ref()
            .state_save()
            .map_err(io::Error::other)?;
        let meta = TrainMeta {
            step: self.step as u64,
            data_cursor: self.batcher.cursor(),
            rng_state: Vec::new(),
            rng_spare: None,
            lr_scale: 1.0,
            spike_window: Vec::new(),
            report: Default::default(),
        };
        train_state_blob(&self.model, LinearMode::Dense, &meta, &optimizer)
    }

    /// Rebuilds a member from a leader's snapshot `blob`, re-configured to
    /// `genome`. `donor` is the leader's genome (the configuration the blob
    /// was saved under). When the mutation is transplant-compatible the
    /// donor's optimizer state is restored verbatim and the new knobs are
    /// applied in place; otherwise (rank/family change) the weights and
    /// data cursor transfer but the optimizer restarts fresh. Returns the
    /// member and `"transplanted"` / `"reset"` for the lineage log.
    pub fn restore(
        id: usize,
        blob: &[u8],
        donor: &Genome,
        genome: Genome,
        cfg: &SearchConfig,
    ) -> io::Result<(Member, &'static str)> {
        let state = TrainState::from_blob(blob)?;
        let (opt, outcome) = if donor.transplant_ok(&genome) {
            let mut opt = MemberOpt::from_genome(donor);
            opt.as_opt()
                .state_load(&state.optimizer)
                .map_err(io::Error::other)?;
            opt.apply_knobs(&genome);
            (opt, "transplanted")
        } else {
            (MemberOpt::from_genome(&genome), "reset")
        };
        let mut batcher = base_batcher(cfg);
        batcher.set_cursor(state.meta.data_cursor);
        Ok((
            Member {
                id,
                genome,
                model: state.model,
                opt,
                batcher,
                step: state.meta.step as usize,
                last_ppl: f32::MAX,
            },
            outcome,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apollo_tensor::Matrix;

    fn weights(m: &Member) -> Vec<Matrix> {
        m.model.params.iter().map(|p| p.value.clone()).collect()
    }

    fn tiny_cfg() -> SearchConfig {
        SearchConfig {
            batch: 2,
            eval_seqs: 4,
            ..SearchConfig::tiny(11)
        }
    }

    /// Satellite property: perturbing the transplant-safe knobs (peak LR
    /// and projector refresh period) at a round boundary and resuming from
    /// the cloned blob is bit-identical to mutating the live member in
    /// place and continuing — clone-and-perturb and live-perturb are the
    /// same trajectory.
    #[test]
    fn clone_perturb_resume_matches_live_perturbed_run() {
        let cfg = tiny_cfg();
        let mut genome = Genome::seed_for(OptFamily::Apollo, &cfg.model);
        genome.rank = 2;
        genome.update_freq = 4; // refresh fires inside both segments
        let mut live = Member::new(0, genome.clone(), &cfg);
        live.train_segment(6, 12);
        let blob = live.snapshot().unwrap();

        let mut mutated = genome.clone();
        mutated.peak_lr *= 1.25;
        mutated.update_freq = 2;
        assert!(genome.transplant_ok(&mutated));

        // Path 1: PBT exploit — restore the blob under the mutated genome.
        let (mut cloned, outcome) =
            Member::restore(1, &blob, &genome, mutated.clone(), &cfg).unwrap();
        assert_eq!(outcome, "transplanted");
        assert_eq!(cloned.step, 6);
        cloned.train_segment(6, 12);

        // Path 2: mutate the live member in place and continue.
        live.genome = mutated;
        live.opt.apply_knobs(&live.genome);
        live.train_segment(6, 12);

        assert_eq!(weights(&live), weights(&cloned));
        assert_eq!(
            live.opt.as_opt_ref().state_save().unwrap(),
            cloned.opt.as_opt_ref().state_save().unwrap(),
            "optimizer state must match bit-for-bit"
        );
        assert_eq!(live.eval(4), cloned.eval(4));
    }

    #[test]
    fn layout_changing_mutation_resets_the_optimizer() {
        let cfg = tiny_cfg();
        let mut genome = Genome::seed_for(OptFamily::Apollo, &cfg.model);
        genome.rank = 2;
        genome.update_freq = 4;
        let mut m = Member::new(0, genome.clone(), &cfg);
        m.train_segment(3, 12);
        let blob = m.snapshot().unwrap();

        let mut reranked = genome.clone();
        reranked.rank = 4;
        let (mut fresh, outcome) = Member::restore(1, &blob, &genome, reranked, &cfg).unwrap();
        assert_eq!(outcome, "reset");
        // Weights and cursor transferred; the fresh optimizer trains on.
        assert_eq!(weights(&m), weights(&fresh));
        assert_eq!(fresh.batcher.cursor(), m.batcher.cursor());
        fresh.train_segment(3, 12);
        assert_eq!(fresh.step, 6);
        assert!(fresh.eval(4).is_finite());
    }

    #[test]
    fn all_families_train_and_snapshot() {
        let cfg = tiny_cfg();
        for family in [
            OptFamily::Apollo,
            OptFamily::ApolloMini,
            OptFamily::AdamWChannelwise,
        ] {
            let genome = Genome::seed_for(family, &cfg.model);
            let mut m = Member::new(0, genome.clone(), &cfg);
            m.train_segment(2, 8);
            let ppl = m.eval(4);
            assert!(ppl.is_finite(), "{family:?}");
            let blob = m.snapshot().unwrap();
            let (restored, outcome) =
                Member::restore(0, &blob, &genome, genome.clone(), &cfg).unwrap();
            assert_eq!(outcome, "transplanted");
            assert_eq!(restored.step, 2);
        }
    }
}
