//! Property-based tests of INT8 quantization.

use apollo_quant::{fake_quantize, fake_quantize_companded, QuantizedMatrix};
use apollo_tensor::{Matrix, Rng};
use proptest::prelude::*;

fn arb_matrix() -> impl Strategy<Value = Matrix> {
    (1usize..8, 1usize..64, any::<u64>(), -3.0f32..3.0).prop_map(|(m, n, seed, log_scale)| {
        let mut rng = Rng::seed_from_u64(seed);
        Matrix::randn_scaled(m, n, 10f32.powf(log_scale), &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_error_within_half_scale(m in arb_matrix(), group in 1usize..64) {
        let q = QuantizedMatrix::quantize(&m, group);
        let deq = q.dequantize();
        let bound = q.max_quantization_error() * 1.0001 + 1e-12;
        for (a, b) in m.as_slice().iter().zip(deq.as_slice()) {
            prop_assert!((a - b).abs() <= bound, "{a} vs {b} bound {bound}");
        }
    }

    #[test]
    fn quantization_is_idempotent(m in arb_matrix(), group in 1usize..32) {
        let once = fake_quantize(&m, group);
        let twice = fake_quantize(&once, group);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn quantization_preserves_sign(m in arb_matrix(), group in 1usize..32) {
        let deq = fake_quantize(&m, group);
        for (a, b) in m.as_slice().iter().zip(deq.as_slice()) {
            prop_assert!(a.signum() == b.signum() || *b == 0.0, "{a} -> {b}");
        }
    }

    #[test]
    fn companded_code_preserves_sign_and_monotone_order_within_group(
        seed in any::<u64>(),
        pow_idx in 0usize..2,
    ) {
        let pow = [0.5f32, 0.25][pow_idx];
        let mut rng = Rng::seed_from_u64(seed);
        let m = Matrix::randn(1, 32, &mut rng);
        let deq = fake_quantize_companded(&m, 32, pow);
        for (a, b) in m.as_slice().iter().zip(deq.as_slice()) {
            prop_assert!(a.signum() == b.signum() || *b == 0.0);
        }
        // Order preservation: if a_i < a_j then deq_i <= deq_j.
        let xs = m.as_slice();
        let ys = deq.as_slice();
        for i in 0..xs.len() {
            for j in 0..xs.len() {
                if xs[i] < xs[j] {
                    prop_assert!(ys[i] <= ys[j] + 1e-9);
                }
            }
        }
    }

    #[test]
    fn companded_beats_linear_on_wide_dynamic_range(seed in any::<u64>()) {
        // Mixture of large and tiny magnitudes: the companded code must
        // preserve the tiny ones far better (in relative terms).
        let mut rng = Rng::seed_from_u64(seed);
        let mut data = Vec::new();
        for _ in 0..16 {
            data.push(rng.gauss() * 10.0);
        }
        for _ in 0..16 {
            data.push(rng.gauss() * 1e-3);
        }
        let m = Matrix::from_vec(1, 32, data);
        let rel_err = |deq: &Matrix| -> f32 {
            m.as_slice()
                .iter()
                .zip(deq.as_slice())
                .filter(|(a, _)| a.abs() > 1e-6 && a.abs() < 1e-2)
                .map(|(a, b)| ((a - b) / a).abs())
                .fold(0.0f32, f32::max)
        };
        let linear = rel_err(&fake_quantize(&m, 32));
        let companded = rel_err(&fake_quantize_companded(&m, 32, 0.25));
        prop_assert!(
            companded <= linear + 1e-6,
            "companded {companded} vs linear {linear}"
        );
    }

    #[test]
    fn memory_bytes_scale_with_group(group in 1usize..128) {
        let m = Matrix::full(4, 64, 1.0);
        let q = QuantizedMatrix::quantize(&m, group);
        let expected = 256 + 4 * 256usize.div_ceil(group);
        prop_assert_eq!(q.memory_bytes(), expected);
    }
}
