//! BF16 (bfloat16) storage emulation.
//!
//! The paper trains everything in BF16; this module provides the rounding
//! primitive so weights/gradients can be held at BF16 fidelity while the
//! arithmetic stays in f32 (exactly what mixed-precision kernels do), and
//! so the memory model's "2 bytes per element" accounting corresponds to a
//! representable format.

use crate::Matrix;

/// Rounds an `f32` to the nearest representable bfloat16 value
/// (round-to-nearest-even on the truncated 16 mantissa bits).
pub fn bf16_round(x: f32) -> f32 {
    if x.is_nan() {
        return x;
    }
    let bits = x.to_bits();
    // Round to nearest even: add 0x7FFF + lsb of the kept part.
    let lsb = (bits >> 16) & 1;
    let rounded = bits.wrapping_add(0x7FFF + lsb) & 0xFFFF_0000;
    f32::from_bits(rounded)
}

/// Rounds every element of a matrix to BF16 precision.
pub fn bf16_round_matrix(m: &Matrix) -> Matrix {
    m.map(bf16_round)
}

/// Encodes one `f32` as its 16-bit BF16 payload (round-to-nearest-even) —
/// the element-level primitive behind [`bf16_pack`] and the BF16 KV-cache
/// storage in `apollo-nn`.
///
/// NaNs encode as a sign-preserving quiet NaN: truncating a NaN whose
/// payload sits entirely in the low 16 mantissa bits would otherwise
/// produce the infinity bit pattern.
#[inline]
pub fn bf16_encode(x: f32) -> u16 {
    if x.is_nan() {
        return ((x.to_bits() >> 16) as u16 & 0x8000) | 0x7FC0;
    }
    (bf16_round(x).to_bits() >> 16) as u16
}

/// Decodes a 16-bit BF16 payload back to `f32` (exact: bf16 values are a
/// subset of f32).
#[inline]
pub fn bf16_decode(bits: u16) -> f32 {
    f32::from_bits(u32::from(bits) << 16)
}

/// Encodes an `f32` slice into a BF16 payload slice in place.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn bf16_encode_slice(src: &[f32], dst: &mut [u16]) {
    assert_eq!(src.len(), dst.len(), "bf16_encode_slice: length mismatch");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = bf16_encode(s);
    }
}

/// Decodes a BF16 payload slice into an `f32` slice in place.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn bf16_decode_slice(src: &[u16], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "bf16_decode_slice: length mismatch");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = bf16_decode(s);
    }
}

/// Packs an `f32` slice into raw BF16 bytes (2 per element) — the storage
/// format a BF16 checkpoint would use.
pub fn bf16_pack(xs: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(xs.len() * 2);
    for &x in xs {
        out.extend_from_slice(&bf16_encode(x).to_le_bytes());
    }
    out
}

/// Unpacks raw BF16 bytes back to `f32`.
///
/// # Panics
///
/// Panics if `bytes.len()` is odd.
pub fn bf16_unpack(bytes: &[u8]) -> Vec<f32> {
    assert!(
        bytes.len().is_multiple_of(2),
        "bf16 data must be 2-byte aligned"
    );
    bytes
        .chunks_exact(2)
        .map(|c| f32::from_bits((u16::from_le_bytes([c[0], c[1]]) as u32) << 16))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn exact_values_pass_through() {
        for x in [0.0f32, 1.0, -2.0, 0.5, 256.0] {
            assert_eq!(bf16_round(x), x);
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        // BF16 has 8 head_dim mantissa bits → relative error ≤ 2^-8.
        let mut rng = Rng::seed_from_u64(300);
        for _ in 0..10_000 {
            let x = rng.gauss() * 10f32.powf(rng.uniform_in(-6.0, 6.0));
            let r = bf16_round(x);
            if x != 0.0 {
                assert!(((r - x) / x).abs() <= 1.0 / 256.0 + 1e-7, "{x} -> {r}");
            }
        }
    }

    #[test]
    fn round_is_idempotent() {
        let mut rng = Rng::seed_from_u64(301);
        for _ in 0..1000 {
            let r = bf16_round(rng.gauss());
            assert_eq!(bf16_round(r), r);
        }
    }

    #[test]
    fn pack_unpack_roundtrips_bf16_values() {
        let mut rng = Rng::seed_from_u64(302);
        let xs: Vec<f32> = (0..64).map(|_| bf16_round(rng.gauss())).collect();
        assert_eq!(bf16_unpack(&bf16_pack(&xs)), xs);
    }

    #[test]
    fn special_values_survive() {
        assert_eq!(bf16_round(f32::INFINITY), f32::INFINITY);
        assert_eq!(bf16_round(f32::NEG_INFINITY), f32::NEG_INFINITY);
        assert!(bf16_round(f32::NAN).is_nan());
        assert_eq!(bf16_round(-0.0).to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn matrix_rounding_preserves_shape() {
        let mut rng = Rng::seed_from_u64(303);
        let m = Matrix::randn(3, 5, &mut rng);
        let r = bf16_round_matrix(&m);
        assert_eq!(r.shape(), m.shape());
        let err = r.sub(&m).max_abs();
        assert!(err < 0.02, "err {err}");
    }
}
