//! Adam-mini (Zhang et al., 2024b): block-wise second moments.
//!
//! The paper positions APOLLO as unifying two streams — low-rank gradient
//! compression (GaLore) and optimizer-state redundancy (Adam-mini). This is
//! the latter: Adam's second moment `V` is replaced by **one scalar per
//! parameter block** (here: per channel along the larger dimension, the
//! same grouping APOLLO's channel-wise rule uses), while the first moment
//! stays full-rank. State drops from `2mn` to `mn + n` — halving AdamW, but
//! still far above APOLLO's `2nr + 2`, which is exactly the gap the paper
//! highlights ("Adam-mini's reliance on full-rank first momentum").

use apollo_tensor::Matrix;

use crate::state::{StateReader, StateWriter};
use crate::{check_state_header, save_state_header, Optimizer, ParamUpdate};

/// Per-tensor Adam-mini state: full first moment, block-wise second moment.
#[derive(Debug, Clone)]
struct MiniState {
    m: Matrix,
    /// One EMA'd mean-square per block (channel).
    v_blocks: Vec<f32>,
    /// Blocks run along columns (`true`) or rows (`false`).
    along_cols: bool,
    t: u32,
}

impl MiniState {
    fn save_into(&self, w: &mut StateWriter) {
        w.matrix(&self.m);
        w.f32_slice(&self.v_blocks);
        w.bool(self.along_cols);
        w.u32(self.t);
    }

    fn load_from(r: &mut StateReader<'_>) -> Result<Self, String> {
        let m = r.matrix()?;
        let v_blocks = r.f32_slice()?;
        let along_cols = r.bool()?;
        let t = r.u32()?;
        let expect = if along_cols { m.cols() } else { m.rows() };
        if v_blocks.len() != expect {
            return Err(format!(
                "Adam-mini block count {} does not match moment shape {:?}",
                v_blocks.len(),
                m.shape()
            ));
        }
        Ok(MiniState {
            m,
            v_blocks,
            along_cols,
            t,
        })
    }
}

/// Block-wise AdamW: full momentum, one second-moment scalar per channel.
#[derive(Debug, Clone)]
pub struct AdamMini {
    /// First-moment decay β₁.
    pub beta1: f32,
    /// Second-moment decay β₂.
    pub beta2: f32,
    /// Numerical-stability ε.
    pub eps: f32,
    /// Decoupled weight decay λ.
    pub weight_decay: f32,
    states: Vec<MiniState>,
}

impl AdamMini {
    /// Standard hyper-parameters (β₁=0.9, β₂=0.999, ε=1e-8).
    pub fn new() -> Self {
        AdamMini {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            states: Vec::new(),
        }
    }
}

impl Default for AdamMini {
    fn default() -> Self {
        Self::new()
    }
}

impl Optimizer for AdamMini {
    fn name(&self) -> String {
        "Adam-mini".to_string()
    }

    fn step(&mut self, params: &mut [ParamUpdate<'_>], lr: f32) {
        if self.states.is_empty() {
            self.states = params
                .iter()
                .map(|p| {
                    let (r, c) = p.value.shape();
                    let along_cols = r <= c;
                    let blocks = if along_cols { c } else { r };
                    MiniState {
                        m: Matrix::zeros(r, c),
                        v_blocks: vec![0.0; blocks],
                        along_cols,
                        t: 0,
                    }
                })
                .collect();
        }
        assert_eq!(self.states.len(), params.len(), "parameter list changed");
        for (p, st) in params.iter_mut().zip(&mut self.states) {
            st.t += 1;
            st.m.ema_assign(self.beta1, p.grad);
            // Block mean-squares of the raw gradient.
            let (rows, cols) = p.grad.shape();
            let mut sums = vec![0.0f64; st.v_blocks.len()];
            for r in 0..rows {
                let row = p.grad.row(r);
                if st.along_cols {
                    for (s, &g) in sums.iter_mut().zip(row) {
                        *s += (g as f64) * (g as f64);
                    }
                } else {
                    sums[r] = row.iter().map(|&g| (g as f64) * (g as f64)).sum();
                }
            }
            let block_len = if st.along_cols { rows } else { cols } as f64;
            for (v, s) in st.v_blocks.iter_mut().zip(&sums) {
                *v = self.beta2 * *v + (1.0 - self.beta2) * (*s / block_len) as f32;
            }
            let bc1 = 1.0 - self.beta1.powi(st.t as i32);
            let bc2 = 1.0 - self.beta2.powi(st.t as i32);
            if self.weight_decay > 0.0 {
                p.value.scale_assign(1.0 - lr * self.weight_decay);
            }
            // update_ij = m̂_ij / (√v̂_block + ε)
            let eps = self.eps;
            for r in 0..rows {
                for c in 0..cols {
                    let b = if st.along_cols { c } else { r };
                    let vhat = (st.v_blocks[b] / bc2).max(0.0);
                    let mhat = st.m.get(r, c) / bc1;
                    let upd = mhat / (vhat.sqrt() + eps);
                    p.value.set(r, c, p.value.get(r, c) - lr * upd);
                }
            }
        }
    }

    fn state_elems(&self) -> usize {
        self.states
            .iter()
            .map(|s| s.m.len() + s.v_blocks.len())
            .sum()
    }

    fn reset_state(&mut self) {
        self.states.clear();
    }

    fn state_save(&self) -> Result<Vec<u8>, String> {
        let mut w = StateWriter::new();
        save_state_header(&mut w, &self.name());
        w.u64(self.states.len() as u64);
        for st in &self.states {
            st.save_into(&mut w);
        }
        Ok(w.into_bytes())
    }

    fn state_load(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = StateReader::new(bytes);
        check_state_header(&mut r, &self.name())?;
        let n = r.len()?;
        let mut states = Vec::with_capacity(n);
        for _ in 0..n {
            states.push(MiniState::load_from(&mut r)?);
        }
        r.expect_exhausted()?;
        self.states = states;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apollo_tensor::Rng;

    fn one_step(opt: &mut AdamMini, w: &mut Matrix, g: &Matrix, lr: f32) {
        let mut params = [ParamUpdate {
            name: "w",
            value: w,
            grad: g,
            projectable: true,
        }];
        opt.step(&mut params, lr);
    }

    #[test]
    fn state_is_mn_plus_n() {
        let (m, n) = (8, 32);
        let mut w = Matrix::zeros(m, n);
        let g = Matrix::full(m, n, 1.0);
        let mut opt = AdamMini::new();
        one_step(&mut opt, &mut w, &g, 0.01);
        assert_eq!(opt.state_elems(), m * n + n);
    }

    #[test]
    fn tall_matrices_block_along_rows() {
        let (m, n) = (32, 8);
        let mut w = Matrix::zeros(m, n);
        let g = Matrix::full(m, n, 1.0);
        let mut opt = AdamMini::new();
        one_step(&mut opt, &mut w, &g, 0.01);
        assert_eq!(opt.state_elems(), m * n + m);
    }

    #[test]
    fn converges_on_quadratic() {
        let mut rng = Rng::seed_from_u64(120);
        let mut w = Matrix::randn(6, 12, &mut rng).scale(3.0);
        let mut opt = AdamMini::new();
        for _ in 0..400 {
            let g = w.clone();
            one_step(&mut opt, &mut w, &g, 0.05);
        }
        assert!(w.fro_norm() < 0.5, "‖w‖ = {}", w.fro_norm());
    }

    #[test]
    fn uniform_gradient_matches_adamw_first_step() {
        // When every element of a block shares the same |g|, the block mean
        // square equals the element square, so Adam-mini == AdamW.
        let mut w_mini = Matrix::zeros(2, 4);
        let mut w_adam = Matrix::zeros(2, 4);
        let g = Matrix::full(2, 4, 0.7);
        let mut mini = AdamMini::new();
        let mut adam = crate::AdamW::new();
        one_step(&mut mini, &mut w_mini, &g, 0.1);
        adam.step(
            &mut [ParamUpdate {
                name: "w",
                value: &mut w_adam,
                grad: &g,
                projectable: true,
            }],
            0.1,
        );
        for (a, b) in w_mini.as_slice().iter().zip(w_adam.as_slice()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn update_is_finite_with_zero_gradient() {
        let mut w = Matrix::full(2, 2, 1.0);
        let g = Matrix::zeros(2, 2);
        let mut opt = AdamMini::new();
        one_step(&mut opt, &mut w, &g, 0.1);
        assert!(w.all_finite());
        assert_eq!(w.get(0, 0), 1.0);
    }
}
