//! Lightweight training observability for the APOLLO reproduction.
//!
//! Three pieces, all reached through one cheap cloneable handle ([`Obs`]):
//!
//! - a [`MetricsRegistry`] of named counters / gauges / histograms;
//! - per-step [`Phase`] timers feeding cumulative [`PhaseStats`] (the
//!   `--profile` breakdown);
//! - a buffered JSONL [`TraceWriter`] emitting self-describing
//!   [`TraceEvent`] lines that the Fig. 3/9 bench probes and
//!   `apollo trace-check` consume.
//!
//! # Design: disabled means free
//!
//! [`Obs::disabled`] (also [`Obs::default`]) carries no allocation — every
//! method is a no-op behind one `Option` check, so production loops thread
//! an `Obs` unconditionally and pay nothing unless the user opts in with
//! `--trace-out` / `--profile`. The measured overhead of the disabled path
//! is below the noise floor of a pretraining step (see DESIGN.md).
//!
//! # Example
//!
//! ```
//! use apollo_obs::{Obs, Phase, PhaseSample, TraceEvent};
//!
//! let obs = Obs::enabled(1); // in-memory metrics only, no trace file
//! obs.set_step(0);
//! let mut sample = PhaseSample::new();
//! sample.time(Phase::Forward, || { /* forward pass */ });
//! obs.record_step(&sample, sample.phase_total());
//! obs.counter("demo", 1);
//! obs.emit(|| TraceEvent::RunEnd { step: 1, wall_secs: 0.0 });
//! assert_eq!(obs.counter_value("demo"), 1);
//! ```

mod metrics;
mod phase;
mod trace;

pub use metrics::{Histogram, MetricsRegistry};
pub use phase::{Phase, PhaseSample, PhaseStats};
pub use trace::{parse_line, read_trace, scale_summary, TraceEvent, TraceWriter};

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

#[derive(Debug)]
struct Inner {
    /// Current training step, published by the trainer so optimizer-side
    /// emitters can stamp events without threading a step argument.
    step: AtomicU64,
    /// Sampling period for high-volume events (scale summaries, metrics).
    metrics_every: u64,
    metrics: Mutex<MetricsRegistry>,
    phases: Mutex<PhaseStats>,
    trace: Option<Mutex<TraceWriter>>,
}

/// Cheap cloneable observability handle; see the crate docs.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    inner: Option<Arc<Inner>>,
}

impl Obs {
    /// The no-op handle: every method returns immediately.
    pub fn disabled() -> Self {
        Obs { inner: None }
    }

    /// In-memory observability (metrics + phase stats), no trace file.
    /// High-volume events are sampled every `metrics_every` steps
    /// (clamped to ≥ 1).
    pub fn enabled(metrics_every: usize) -> Self {
        Obs {
            inner: Some(Arc::new(Inner {
                step: AtomicU64::new(0),
                metrics_every: metrics_every.max(1) as u64,
                metrics: Mutex::new(MetricsRegistry::new()),
                phases: Mutex::new(PhaseStats::new()),
                trace: None,
            })),
        }
    }

    /// Full observability with a JSONL trace written to `path`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the trace file.
    pub fn with_trace(path: &Path, metrics_every: usize) -> std::io::Result<Self> {
        let writer = TraceWriter::create(path)?;
        Ok(Obs {
            inner: Some(Arc::new(Inner {
                step: AtomicU64::new(0),
                metrics_every: metrics_every.max(1) as u64,
                metrics: Mutex::new(MetricsRegistry::new()),
                phases: Mutex::new(PhaseStats::new()),
                trace: Some(Mutex::new(writer)),
            })),
        })
    }

    /// Whether this handle records anything at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether a JSONL trace is attached.
    pub fn has_trace(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|inner| inner.trace.is_some())
    }

    /// Publishes the current training step (trainer-side, once per step).
    pub fn set_step(&self, step: usize) {
        if let Some(inner) = &self.inner {
            inner.step.store(step as u64, Ordering::Relaxed);
        }
    }

    /// The last published step (0 before training starts).
    pub fn step(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |inner| inner.step.load(Ordering::Relaxed) as usize)
    }

    /// Whether high-volume emitters should sample the current step
    /// (`step % metrics_every == 0`). Always false when disabled.
    pub fn sample_due(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|inner| inner.step.load(Ordering::Relaxed) % inner.metrics_every == 0)
    }

    /// Emits one trace event. The event is built lazily so disabled
    /// handles (and handles without a trace file) never pay for string
    /// formatting.
    pub fn emit(&self, event: impl FnOnce() -> TraceEvent) {
        if let Some(inner) = &self.inner {
            if let Some(trace) = &inner.trace {
                trace.lock().expect("trace lock").write(&event());
            }
        }
    }

    /// Adds `delta` to a named counter.
    pub fn counter(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.lock().expect("metrics lock").inc(name, delta);
        }
    }

    /// Sets a named gauge.
    pub fn gauge(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner
                .metrics
                .lock()
                .expect("metrics lock")
                .set_gauge(name, value);
        }
    }

    /// Records a histogram sample.
    pub fn observe(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner
                .metrics
                .lock()
                .expect("metrics lock")
                .observe(name, value);
        }
    }

    /// Folds one step's phase sample into the cumulative statistics.
    pub fn record_step(&self, sample: &PhaseSample, step_total_ms: f32) {
        if let Some(inner) = &self.inner {
            inner
                .phases
                .lock()
                .expect("phases lock")
                .record(sample, step_total_ms);
        }
    }

    /// Snapshot of the cumulative phase statistics (None when disabled).
    pub fn phase_stats(&self) -> Option<PhaseStats> {
        self.inner
            .as_ref()
            .map(|inner| inner.phases.lock().expect("phases lock").clone())
    }

    /// Snapshot of the metrics registry (None when disabled).
    pub fn metrics(&self) -> Option<MetricsRegistry> {
        self.inner
            .as_ref()
            .map(|inner| inner.metrics.lock().expect("metrics lock").clone())
    }

    /// Current value of a counter (0 when disabled or never incremented).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner.as_ref().map_or(0, |inner| {
            inner.metrics.lock().expect("metrics lock").counter(name)
        })
    }

    /// Flushes the trace file, if any.
    ///
    /// # Errors
    ///
    /// Returns any buffered or flush-time I/O error.
    pub fn flush(&self) -> std::io::Result<()> {
        if let Some(inner) = &self.inner {
            if let Some(trace) = &inner.trace {
                return trace.lock().expect("trace lock").flush();
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        assert!(!obs.has_trace());
        assert!(!obs.sample_due());
        obs.set_step(5);
        assert_eq!(obs.step(), 0);
        obs.counter("x", 1);
        assert_eq!(obs.counter_value("x"), 0);
        assert!(obs.phase_stats().is_none());
        assert!(obs.metrics().is_none());
        obs.emit(|| unreachable!("disabled handles must not build events"));
        obs.flush().unwrap();
    }

    #[test]
    fn enabled_handle_counts_and_samples() {
        let obs = Obs::enabled(10);
        assert!(obs.is_enabled());
        assert!(!obs.has_trace());
        obs.set_step(0);
        assert!(obs.sample_due());
        obs.set_step(5);
        assert!(!obs.sample_due());
        obs.set_step(20);
        assert!(obs.sample_due());
        assert_eq!(obs.step(), 20);
        obs.counter("clips", 2);
        obs.counter("clips", 1);
        assert_eq!(obs.counter_value("clips"), 3);
        obs.gauge("loss", 4.5);
        obs.observe("step_ms", 2.0);
        let m = obs.metrics().unwrap();
        assert_eq!(m.gauge("loss"), Some(4.5));
        assert_eq!(m.histogram("step_ms").unwrap().count, 1);
    }

    #[test]
    fn clones_share_state() {
        let obs = Obs::enabled(1);
        let clone = obs.clone();
        clone.counter("shared", 1);
        obs.set_step(7);
        assert_eq!(obs.counter_value("shared"), 1);
        assert_eq!(clone.step(), 7);
    }

    #[test]
    fn trace_events_reach_the_file() {
        let dir = std::env::temp_dir().join("apollo-obs-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("handle.jsonl");
        let obs = Obs::with_trace(&path, 1).unwrap();
        assert!(obs.has_trace());
        obs.emit(|| TraceEvent::RunEnd {
            step: 3,
            wall_secs: 0.5,
        });
        obs.flush().unwrap();
        let events = read_trace(&path).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].step(), 3);
    }

    #[test]
    fn record_step_accumulates_phase_stats() {
        let obs = Obs::enabled(1);
        let mut s = PhaseSample::new();
        s.add(Phase::Optimizer, 3.0);
        obs.record_step(&s, 4.0);
        let stats = obs.phase_stats().unwrap();
        assert_eq!(stats.steps(), 1);
        assert_eq!(stats.total_ms(Phase::Optimizer), 3.0);
        assert_eq!(stats.total_step_ms(), 4.0);
    }
}
