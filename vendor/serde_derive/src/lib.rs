//! Offline shim for `serde_derive`: `#[derive(Serialize, Deserialize)]`
//! for plain (non-generic) structs with named fields and enums with unit
//! or struct variants — exactly the shapes this workspace uses. Built on
//! the compiler's `proc_macro` API alone (no `syn`/`quote`), generating
//! impls of the shim `serde::Serialize`/`serde::Deserialize` traits.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__fields.push(({f:?}.to_string(), \
                         ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 let mut __fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                 {pushes}\n\
                 ::serde::Value::Obj(__fields)\n\
                 }}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|(v, fields)| match fields {
                    None => format!("{name}::{v} => ::serde::Value::Str({v:?}.to_string()),\n"),
                    Some(fs) => {
                        let binds = fs.join(", ");
                        let pushes: String = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "__inner.push(({f:?}.to_string(), \
                                     ::serde::Serialize::to_value({f})));"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => {{\n\
                             let mut __inner: Vec<(String, ::serde::Value)> = Vec::new();\n\
                             {pushes}\n\
                             ::serde::Value::Obj(vec![({v:?}.to_string(), \
                             ::serde::Value::Obj(__inner))])\n\
                             }},\n"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}\n}}\n\
                 }}\n}}"
            )
        }
    };
    code.parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::from_value(__v.get_field({f:?})?)?,\n")
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{\n\
                 Ok({name} {{\n{inits}\n}})\n\
                 }}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, fs)| fs.is_none())
                .map(|(v, _)| format!("{v:?} => Ok({name}::{v}),\n"))
                .collect();
            let struct_tries: String = variants
                .iter()
                .filter_map(|(v, fs)| fs.as_ref().map(|fs| (v, fs)))
                .map(|(v, fs)| {
                    let inits: String = fs
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(\
                                 __inner.get_field({f:?})?)?,\n"
                            )
                        })
                        .collect();
                    format!(
                        "if let Ok(__inner) = __v.get_field({v:?}) {{\n\
                         return Ok({name}::{v} {{\n{inits}\n}});\n\
                         }}\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{\n\
                 if let ::serde::Value::Str(__s) = __v {{\n\
                 return match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => Err(::serde::DeError(format!(\
                 \"unknown variant `{{__other}}` of {name}\"))),\n\
                 }};\n\
                 }}\n\
                 {struct_tries}\
                 Err(::serde::DeError(format!(\
                 \"cannot deserialize {name} from {{}}\", __v.kind())))\n\
                 }}\n}}"
            )
        }
    };
    code.parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}

enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        /// `(variant, None)` for unit variants, `(variant, Some(fields))`
        /// for struct variants.
        variants: Vec<(String, Option<Vec<String>>)>,
    },
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes (doc comments arrive as `#[doc = "…"]`).
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other}"),
    };
    i += 1;
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.clone(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde_derive shim: generic types are not supported ({name})")
            }
            Some(_) => i += 1,
            None => panic!("serde_derive: no braced body found for {name}"),
        }
    };
    match kind.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_named_fields(body.stream()),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(body.stream()),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

/// Extracts the field names of a `{ name: Type, … }` body, skipping
/// attributes, visibility, and the type tokens (tracking `<…>` depth so
/// commas inside generic arguments don't split fields).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) => {
                fields.push(id.to_string());
                i += 1;
                match tokens.get(i) {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
                    other => panic!(
                        "serde_derive shim: expected `:` after field `{}`, found {other:?} \
                         (tuple structs are not supported)",
                        fields.last().unwrap()
                    ),
                }
                let mut angle_depth = 0i32;
                while i < tokens.len() {
                    match &tokens[i] {
                        TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                            i += 1;
                            break;
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            other => panic!("serde_derive shim: unexpected token in fields: {other}"),
        }
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Option<Vec<String>>)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
            TokenTree::Ident(id) => {
                let name = id.to_string();
                i += 1;
                match tokens.get(i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        variants.push((name, Some(parse_named_fields(g.stream()))));
                        i += 1;
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        panic!(
                            "serde_derive shim: tuple variant `{name}` is not supported; \
                             use a struct variant"
                        )
                    }
                    _ => variants.push((name, None)),
                }
            }
            other => panic!("serde_derive shim: unexpected token in variants: {other}"),
        }
    }
    variants
}
