//! The Norm-growth Limiter of Eq. 4 (adopted from Fira).

use apollo_tensor::Matrix;

/// What [`NormGrowthLimiter::apply`] did to the update.
///
/// `NonFinite` is the signal the training-loop step sentinel acts on: the
/// update (and therefore its norm) contains NaN/Inf, the limiter left it
/// untouched, and — crucially — did **not** record the poisoned norm, so
/// one bad step can no longer disable the limiter for the rest of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LimiterOutcome {
    /// Norm growth within γ; update passed through, norm recorded.
    Passed,
    /// Update rescaled down to γ·previous-norm; clamped norm recorded.
    Clamped,
    /// Update norm is NaN/Inf; nothing recorded, update left as-is.
    NonFinite,
}

/// Limits the step-to-step growth of the scaled gradient norm:
///
/// ```text
/// if ‖G̃_t‖ / ‖G̃_{t−1}‖ > γ:   G̃_t ← G̃_t / ‖G̃_t‖ · γ‖G̃_{t−1}‖
/// ```
///
/// The paper uses this in place of vanilla gradient clipping to suppress the
/// early-training loss spikes of structured learning-rate adaptation
/// (Fig. 3), with γ = 1.01 by default. The single stored scalar per tensor
/// is one of the "+2" constants in Table 1's APOLLO state count.
#[derive(Debug, Clone)]
pub struct NormGrowthLimiter {
    gamma: f32,
    prev_norm: Option<f32>,
}

impl NormGrowthLimiter {
    /// Creates a limiter with growth threshold `gamma` (> 1).
    ///
    /// # Panics
    ///
    /// Panics if `gamma <= 1.0`.
    pub fn new(gamma: f32) -> Self {
        assert!(gamma > 1.0, "gamma must exceed 1");
        NormGrowthLimiter {
            gamma,
            prev_norm: None,
        }
    }

    /// The paper's default (γ = 1.01).
    pub fn paper_default() -> Self {
        Self::new(1.01)
    }

    /// Clamps `update` in place if its norm grew more than γ× since the
    /// previous call; records the (post-clamp) norm for the next step.
    ///
    /// A non-finite norm (NaN/Inf gradients upstream) is never recorded:
    /// recording it would poison `prev_norm` and permanently disable
    /// clamping (every later comparison against NaN is false). Instead the
    /// update is left untouched and [`LimiterOutcome::NonFinite`] is
    /// returned for the caller's recovery policy to act on.
    pub fn apply(&mut self, update: &mut Matrix) -> LimiterOutcome {
        let norm = update.fro_norm();
        self.apply_with_norm(update, norm)
    }

    /// Same as [`NormGrowthLimiter::apply`], but takes the update's already
    /// computed Frobenius norm. Callers that obtain the norm as a by-product
    /// of building the update (the fused APOLLO scaling kernel) skip a full
    /// re-traversal of the tensor; passing `update.fro_norm()` makes this
    /// identical to `apply`.
    pub fn apply_with_norm(&mut self, update: &mut Matrix, norm: f32) -> LimiterOutcome {
        if !norm.is_finite() {
            return LimiterOutcome::NonFinite;
        }
        match self.prev_norm {
            Some(prev) if prev > 0.0 && norm > self.gamma * prev => {
                update.scale_assign(self.gamma * prev / norm);
                self.prev_norm = Some(self.gamma * prev);
                LimiterOutcome::Clamped
            }
            _ => {
                self.prev_norm = Some(norm);
                LimiterOutcome::Passed
            }
        }
    }

    /// Number of stored scalars (for memory accounting): the previous norm.
    pub fn state_elems(&self) -> usize {
        1
    }

    /// Resets the history (used when a training run restarts).
    pub fn reset(&mut self) {
        self.prev_norm = None;
    }

    /// The growth threshold γ.
    pub fn gamma(&self) -> f32 {
        self.gamma
    }

    /// The recorded previous norm (checkpointing).
    pub fn prev_norm(&self) -> Option<f32> {
        self.prev_norm
    }

    /// Restores the recorded norm from a checkpoint. Non-finite values are
    /// discarded rather than installed, preserving the `apply` invariant.
    pub fn set_prev_norm(&mut self, prev_norm: Option<f32>) {
        self.prev_norm = prev_norm.filter(|n| n.is_finite());
    }

    pub(crate) fn save_into(&self, w: &mut crate::state::StateWriter) {
        w.f32(self.gamma);
        w.opt_f32(self.prev_norm);
    }

    pub(crate) fn load_from(r: &mut crate::state::StateReader<'_>) -> Result<Self, String> {
        let gamma = r.f32()?;
        if !gamma.is_finite() || gamma <= 1.0 {
            return Err(format!("limiter gamma {gamma} must exceed 1"));
        }
        let mut limiter = NormGrowthLimiter::new(gamma);
        limiter.set_prev_norm(r.opt_f32()?);
        Ok(limiter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_step_never_clamps() {
        let mut l = NormGrowthLimiter::new(1.01);
        let mut u = Matrix::full(2, 2, 100.0);
        assert_eq!(l.apply(&mut u), LimiterOutcome::Passed);
        assert_eq!(u.get(0, 0), 100.0);
    }

    #[test]
    fn growth_beyond_gamma_is_clamped_to_gamma() {
        let mut l = NormGrowthLimiter::new(1.01);
        let mut u1 = Matrix::full(1, 4, 1.0); // norm 2
        l.apply(&mut u1);
        let mut u2 = Matrix::full(1, 4, 10.0); // norm 20 ≫ 1.01·2
        assert_eq!(l.apply(&mut u2), LimiterOutcome::Clamped);
        let expect = 1.01 * 2.0;
        assert!((u2.fro_norm() - expect).abs() < 1e-4, "{}", u2.fro_norm());
    }

    #[test]
    fn shrinking_or_mild_growth_passes_through() {
        let mut l = NormGrowthLimiter::new(1.5);
        let mut u1 = Matrix::full(1, 1, 4.0);
        l.apply(&mut u1);
        let mut u2 = Matrix::full(1, 1, 5.0); // ratio 1.25 < 1.5
        assert_eq!(l.apply(&mut u2), LimiterOutcome::Passed);
        assert_eq!(u2.get(0, 0), 5.0);
        let mut u3 = Matrix::full(1, 1, 1.0);
        assert_eq!(l.apply(&mut u3), LimiterOutcome::Passed);
    }

    #[test]
    fn repeated_spikes_grow_at_most_geometrically() {
        let mut l = NormGrowthLimiter::new(1.01);
        let mut first = Matrix::full(1, 1, 1.0);
        l.apply(&mut first);
        let mut norm = 1.0f32;
        for _ in 0..10 {
            let mut u = Matrix::full(1, 1, 1000.0);
            l.apply(&mut u);
            norm = u.fro_norm();
        }
        // After 10 clamped steps: at most 1.01^10.
        assert!(norm <= 1.01f32.powi(10) + 1e-4, "{norm}");
    }

    #[test]
    #[should_panic(expected = "gamma must exceed 1")]
    fn rejects_gamma_below_one() {
        let _ = NormGrowthLimiter::new(0.9);
    }

    #[test]
    fn reset_forgets_history() {
        let mut l = NormGrowthLimiter::new(1.01);
        let mut u = Matrix::full(1, 1, 1.0);
        l.apply(&mut u);
        l.reset();
        let mut big = Matrix::full(1, 1, 100.0);
        assert_eq!(
            l.apply(&mut big),
            LimiterOutcome::Passed,
            "post-reset first step must not clamp"
        );
    }

    #[test]
    fn non_finite_norm_is_reported_and_never_recorded() {
        let mut l = NormGrowthLimiter::new(1.01);
        let mut u1 = Matrix::full(1, 1, 2.0);
        l.apply(&mut u1);
        assert_eq!(l.prev_norm(), Some(2.0));
        for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let mut poisoned = Matrix::full(1, 1, bad);
            assert_eq!(l.apply(&mut poisoned), LimiterOutcome::NonFinite);
            // Update untouched: the caller's recovery policy decides.
            assert_eq!(poisoned.get(0, 0).to_bits(), bad.to_bits());
            // History untouched: clamping still works afterwards.
            assert_eq!(l.prev_norm(), Some(2.0));
        }
        let mut spike = Matrix::full(1, 1, 100.0);
        assert_eq!(
            l.apply(&mut spike),
            LimiterOutcome::Clamped,
            "limiter must stay armed after a non-finite step"
        );
    }

    #[test]
    fn set_prev_norm_discards_non_finite() {
        let mut l = NormGrowthLimiter::new(1.01);
        l.set_prev_norm(Some(f32::NAN));
        assert_eq!(l.prev_norm(), None);
        l.set_prev_norm(Some(3.0));
        assert_eq!(l.prev_norm(), Some(3.0));
    }
}
