//! Fine-tuning loop for the synthetic classification tasks (Tables 4–5).

use std::time::Instant;

use apollo_data::TaskGen;
use apollo_nn::{LlamaModel, ParamKind};
use apollo_optim::{Optimizer, ParamUpdate};
use serde::{Deserialize, Serialize};

use crate::schedule::LrSchedule;

/// Fine-tuning hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FinetuneConfig {
    /// Optimizer steps.
    pub steps: usize,
    /// Examples per batch.
    pub batch: usize,
    /// Peak learning rate (linear-to-cosine schedule like pre-training).
    pub lr: f32,
    /// Held-out evaluation examples.
    pub eval_examples: usize,
}

impl FinetuneConfig {
    /// Defaults mirroring the paper's protocol at proxy scale.
    pub fn quick(steps: usize) -> Self {
        FinetuneConfig {
            steps,
            batch: 8,
            lr: 3e-3,
            eval_examples: 100,
        }
    }
}

/// Result of one task's fine-tuning run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FinetuneResult {
    /// Task name.
    pub task: String,
    /// Optimizer label.
    pub optimizer: String,
    /// Final held-out accuracy in percent.
    pub accuracy: f32,
    /// Majority-class baseline accuracy in percent (chance level).
    pub chance: f32,
    /// Final training loss.
    pub final_loss: f32,
    /// Wall-clock seconds.
    pub wall_secs: f64,
}

/// Held-out classification accuracy (percent), evaluated in batches.
pub fn eval_accuracy(model: &LlamaModel, task: &TaskGen, n: usize, batch: usize) -> f32 {
    let (tokens, labels) = task.eval_set(n);
    let seq = task.config().seq;
    let mut correct = 0usize;
    let mut start = 0usize;
    while start < n {
        let end = (start + batch).min(n);
        let preds = model.classify(&tokens[start * seq..end * seq], end - start);
        correct += preds
            .iter()
            .zip(&labels[start..end])
            .filter(|(p, l)| p == l)
            .count();
        start = end;
    }
    100.0 * correct as f32 / n as f32
}

/// Fine-tunes `model` on one synthetic task and reports held-out accuracy.
pub fn finetune(
    model: &mut LlamaModel,
    opt: &mut dyn Optimizer,
    task: &mut TaskGen,
    cfg: &FinetuneConfig,
) -> FinetuneResult {
    assert!(cfg.steps > 0, "need at least one step");
    let schedule = LrSchedule::paper_default(cfg.lr, cfg.steps);
    let started = Instant::now();
    let mut final_loss = f32::NAN;
    for step in 0..cfg.steps {
        let (tokens, labels) = task.sample(cfg.batch);
        let (loss, grads) = model.class_loss_and_grads(&tokens, &labels, cfg.batch);
        final_loss = loss;
        let lr = schedule.lr_at(step);
        let mut updates: Vec<ParamUpdate<'_>> = Vec::new();
        for (p, g) in model.params.iter_mut().zip(&grads) {
            if let (true, Some(grad)) = (p.trainable, g.as_ref()) {
                updates.push(ParamUpdate {
                    name: &p.name,
                    value: &mut p.value,
                    grad,
                    projectable: p.kind == ParamKind::Projectable,
                });
            }
        }
        opt.step(&mut updates, lr);
    }
    let accuracy = eval_accuracy(model, task, cfg.eval_examples, cfg.batch);
    FinetuneResult {
        task: task.config().name.clone(),
        optimizer: opt.name(),
        accuracy,
        chance: 100.0 / task.config().n_classes as f32,
        final_loss,
        wall_secs: started.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apollo_data::TaskConfig;
    use apollo_nn::{LinearMode, LlamaModel, ModelConfig};
    use apollo_optim::AdamW;
    use apollo_tensor::Rng;

    fn task_for(cfg: &ModelConfig) -> TaskGen {
        TaskGen::new(TaskConfig {
            name: "unit".into(),
            n_classes: 2,
            vocab_size: cfg.vocab_size,
            seq: cfg.max_seq,
            true_markers: 4,
            distractors: 1,
            seed: 5,
        })
    }

    #[test]
    fn finetuning_beats_chance() {
        let cfg = ModelConfig::test_tiny();
        let mut rng = Rng::seed_from_u64(110);
        let mut model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
        let mut task = task_for(&cfg);
        let mut opt = AdamW::new();
        let res = finetune(
            &mut model,
            &mut opt,
            &mut task,
            &FinetuneConfig {
                steps: 80,
                batch: 8,
                lr: 3e-3,
                eval_examples: 100,
            },
        );
        assert!(
            res.accuracy > res.chance + 10.0,
            "accuracy {} vs chance {}",
            res.accuracy,
            res.chance
        );
    }

    #[test]
    fn accuracy_evaluation_is_deterministic() {
        let cfg = ModelConfig::test_tiny();
        let mut rng = Rng::seed_from_u64(111);
        let model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
        let task = task_for(&cfg);
        assert_eq!(
            eval_accuracy(&model, &task, 40, 8),
            eval_accuracy(&model, &task, 40, 8)
        );
    }

    #[test]
    fn untrained_model_is_near_chance() {
        let cfg = ModelConfig::test_tiny();
        let mut rng = Rng::seed_from_u64(112);
        let model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
        let task = task_for(&cfg);
        // An untrained model's label predictions are essentially arbitrary
        // tokens — accuracy should be ≲ chance (50% here), certainly ≤ 65%.
        let acc = eval_accuracy(&model, &task, 100, 10);
        assert!(acc <= 65.0, "untrained accuracy {acc}");
    }
}
