//! Training-memory accounting (Fig. 1 middle, Table 2/3/6 memory columns).

use apollo_nn::ModelConfig;
use apollo_optim::memory::MethodSpec;
use serde::{Deserialize, Serialize};

const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// Storage precision of the model weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WeightPrecision {
    /// BF16 training (the paper's default): 2 bytes per weight.
    Bf16,
    /// Group-wise INT8 (Q-GaLore / Q-APOLLO): 1 byte per weight plus one
    /// f32 scale per `group` weights.
    Int8 {
        /// Quantization group size (128 in the paper).
        group: usize,
    },
}

impl WeightPrecision {
    fn bytes_per_weight(self) -> f64 {
        match self {
            WeightPrecision::Bf16 => 2.0,
            WeightPrecision::Int8 { group } => 1.0 + 4.0 / group as f64,
        }
    }
}

/// Knobs of a memory estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryOptions {
    /// Weight storage precision.
    pub weights: WeightPrecision,
    /// Bytes per optimizer-state element (2.0 for BF16 states as in the
    /// paper's accounting; `MethodSpec::bytes_per_state_elem` handles the
    /// INT8-moment methods separately via a 0.5× factor on this value).
    pub state_bytes_per_elem: f64,
    /// Layer-wise gradient update (Lv et al., 2023): only one layer's
    /// gradient is alive at a time, instead of a full model-sized buffer.
    pub layer_wise_grad: bool,
    /// Micro-batch size.
    pub batch: usize,
    /// Sequence length.
    pub seq: usize,
    /// Activation checkpointing (store layer inputs only, recompute inside).
    pub act_checkpoint: bool,
}

impl MemoryOptions {
    /// The configuration of Fig. 1 (middle): batch 1, BF16 weights,
    /// layer-wise gradient updates, checkpointed activations.
    pub fn figure1(seq: usize) -> Self {
        MemoryOptions {
            weights: WeightPrecision::Bf16,
            state_bytes_per_elem: 2.0,
            layer_wise_grad: true,
            batch: 1,
            seq,
            act_checkpoint: true,
        }
    }

    /// Standard full-gradient eager-mode training at the given batch size
    /// (no activation checkpointing — the AdamW baseline's deployment).
    pub fn standard(batch: usize, seq: usize) -> Self {
        MemoryOptions {
            weights: WeightPrecision::Bf16,
            state_bytes_per_elem: 2.0,
            layer_wise_grad: false,
            batch,
            seq,
            act_checkpoint: false,
        }
    }
}

/// A GiB-level decomposition of training memory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryBreakdown {
    /// Model weights.
    pub weights_gib: f64,
    /// Gradient buffers.
    pub grads_gib: f64,
    /// Optimizer states.
    pub optimizer_gib: f64,
    /// Activations (forward residuals kept for backward).
    pub activations_gib: f64,
}

impl MemoryBreakdown {
    /// Total GiB.
    pub fn total_gib(&self) -> f64 {
        self.weights_gib + self.grads_gib + self.optimizer_gib + self.activations_gib
    }
}

/// Memory model for one model geometry.
///
/// Built from an [`apollo_nn::ModelConfig`], so the inventory of weight
/// shapes is byte-for-byte the same one the real model allocates.
#[derive(Debug, Clone)]
pub struct TrainingMemoryModel {
    cfg: ModelConfig,
    /// `(rows, cols, projectable)` per weight tensor.
    shapes: Vec<(usize, usize, bool)>,
}

impl TrainingMemoryModel {
    /// Builds the model from a geometry. Attention/MLP 2-D weights are
    /// projectable; norm gains and embedding/head tables are not (they get
    /// dense AdamW states under every method, as in the official code).
    pub fn new(cfg: &ModelConfig) -> Self {
        let shapes = cfg
            .weight_shapes()
            .into_iter()
            .map(|(name, r, c)| {
                let projectable =
                    r > 1 && c > 1 && !name.contains("embed") && !name.contains("lm_head");
                (r, c, projectable)
            })
            .collect();
        TrainingMemoryModel {
            cfg: cfg.clone(),
            shapes,
        }
    }

    /// The underlying geometry.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// Total weight elements.
    pub fn weight_elems(&self) -> usize {
        self.shapes.iter().map(|&(r, c, _)| r * c).sum()
    }

    /// The largest single tensor (the live gradient under layer-wise
    /// updates).
    fn max_tensor_elems(&self) -> usize {
        self.shapes
            .iter()
            .map(|&(r, c, _)| r * c)
            .max()
            .unwrap_or(0)
    }

    /// Activation bytes (BF16) for one training step's live set.
    ///
    /// The per-layer constant `(48·h + 10·i)` bytes-per-token models an
    /// *eager-mode* framework that materializes every intermediate
    /// (pre/post-norm copies, RoPE outputs, attention projections, softmax
    /// in FP32, SwiGLU gates); it is calibrated so a LLaMA-7B AdamW run at
    /// seq 256 saturates an A100-80G near micro-batch 4, matching §5.3.
    /// A fused/compiled stack would sit several times lower — the *shape*
    /// of the comparisons is unaffected.
    fn activation_bytes(&self, opts: &MemoryOptions) -> f64 {
        let tokens = (opts.batch * opts.seq) as f64;
        let h = self.cfg.hidden as f64;
        let i = self.cfg.intermediate as f64;
        let layers = self.cfg.n_layers as f64;
        let heads = self.cfg.n_heads as f64;
        let per_layer_full = tokens * (48.0 * h + 10.0 * i) * 2.0
            + opts.batch as f64 * heads * (opts.seq as f64).powi(2) * 2.0;
        if opts.act_checkpoint {
            // Keep each layer's input plus one layer's live activations.
            layers * tokens * h * 2.0 + per_layer_full
        } else {
            layers * per_layer_full
        }
    }

    /// Full breakdown for a training method under the given options.
    pub fn breakdown(&self, method: MethodSpec, opts: &MemoryOptions) -> MemoryBreakdown {
        let weights_bytes = self.weight_elems() as f64 * opts.weights.bytes_per_weight();
        let grad_elems = if opts.layer_wise_grad {
            self.max_tensor_elems()
        } else {
            self.weight_elems()
        };
        let grads_bytes = grad_elems as f64 * 2.0; // gradients live in BF16
                                                   // BF16 states by default (the paper's accounting); INT8-moment
                                                   // methods store one byte per element either way.
        let per_state_elem = method.bytes_per_state_elem().min(opts.state_bytes_per_elem);
        let optimizer_bytes = method.state_elems(&self.shapes) as f64 * per_state_elem;
        MemoryBreakdown {
            weights_gib: weights_bytes / GIB,
            grads_gib: grads_bytes / GIB,
            optimizer_gib: optimizer_bytes / GIB,
            activations_gib: self.activation_bytes(opts) / GIB,
        }
    }

    /// The `(rows, cols, projectable)` inventory (shared with
    /// [`MethodSpec::state_elems`]).
    pub fn shapes(&self) -> &[(usize, usize, bool)] {
        &self.shapes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_7b() -> TrainingMemoryModel {
        TrainingMemoryModel::new(&ModelConfig::llama_7b())
    }

    #[test]
    fn adamw_7b_matches_paper_intro_numbers() {
        // "Training a LLaMA-7B model from scratch requires at least 58 GB,
        // with 28 GB devoted to AdamW's optimizer states" (weights 14 GB,
        // grads 14 GB, activations a few GB).
        let m = model_7b();
        let b = m.breakdown(MethodSpec::AdamW, &MemoryOptions::standard(1, 256));
        assert!(
            (12.0..16.0).contains(&b.weights_gib),
            "weights {}",
            b.weights_gib
        );
        assert!(
            (24.0..32.0).contains(&b.optimizer_gib),
            "states {}",
            b.optimizer_gib
        );
        assert!(
            (50.0..64.0).contains(&b.total_gib()),
            "total {}",
            b.total_gib()
        );
    }

    #[test]
    fn apollo_mini_states_are_negligible_on_7b() {
        let m = model_7b();
        let b = m.breakdown(MethodSpec::ApolloMini, &MemoryOptions::figure1(256));
        // The residual ~1 GiB is the dense AdamW state of the (untied)
        // embedding and LM-head tables, which the low-rank path never
        // touches; against AdamW's 28 GiB it is negligible.
        assert!(b.optimizer_gib < 1.5, "states {}", b.optimizer_gib);
        let adamw = m
            .breakdown(MethodSpec::AdamW, &MemoryOptions::figure1(256))
            .optimizer_gib;
        assert!(b.optimizer_gib < adamw / 20.0);
    }

    #[test]
    fn fig1_ordering_adamw_galore_apollo_mini() {
        let m = model_7b();
        let opts = MemoryOptions::figure1(256);
        let adamw = m.breakdown(MethodSpec::AdamW, &opts).total_gib();
        let galore = m
            .breakdown(MethodSpec::GaLore { rank: 1024 }, &opts)
            .total_gib();
        let apollo = m
            .breakdown(MethodSpec::Apollo { rank: 256 }, &opts)
            .total_gib();
        let mini = m.breakdown(MethodSpec::ApolloMini, &opts).total_gib();
        assert!(
            adamw > galore && galore > apollo && apollo > mini,
            "ordering: {adamw:.1} > {galore:.1} > {apollo:.1} > {mini:.1}"
        );
    }

    #[test]
    fn layer_wise_gradients_shrink_grad_memory() {
        let m = model_7b();
        let full = m.breakdown(MethodSpec::AdamW, &MemoryOptions::standard(1, 256));
        let lw = m.breakdown(MethodSpec::AdamW, &MemoryOptions::figure1(256));
        assert!(lw.grads_gib < full.grads_gib / 10.0);
    }

    #[test]
    fn int8_weights_halve_the_weight_term() {
        let m = model_7b();
        let mut opts = MemoryOptions::figure1(256);
        let bf16 = m.breakdown(MethodSpec::ApolloMini, &opts).weights_gib;
        opts.weights = WeightPrecision::Int8 { group: 128 };
        let int8 = m.breakdown(MethodSpec::ApolloMini, &opts).weights_gib;
        assert!((bf16 / int8 - 1.94).abs() < 0.1, "ratio {}", bf16 / int8);
    }

    #[test]
    fn activations_grow_linearly_with_batch() {
        let m = model_7b();
        let a1 = m
            .breakdown(MethodSpec::AdamW, &MemoryOptions::standard(1, 256))
            .activations_gib;
        let a4 = m
            .breakdown(MethodSpec::AdamW, &MemoryOptions::standard(4, 256))
            .activations_gib;
        assert!((a4 / a1 - 4.0).abs() < 0.2, "ratio {}", a4 / a1);
    }

    #[test]
    fn table2_memory_column_ordering_60m() {
        // Table 2 (weights + optimizer states only): AdamW 0.36G,
        // GaLore 0.24G, APOLLO 0.24G, APOLLO(half rank) 0.18G, Mini 0.12G.
        let m = TrainingMemoryModel::new(&ModelConfig::llama_60m());
        let wo = |spec: MethodSpec| {
            let b = m.breakdown(spec, &MemoryOptions::figure1(256));
            b.weights_gib + b.optimizer_gib
        };
        let adamw = wo(MethodSpec::AdamW);
        let galore = wo(MethodSpec::GaLore { rank: 128 });
        let apollo = wo(MethodSpec::Apollo { rank: 128 });
        let apollo_half = wo(MethodSpec::Apollo { rank: 64 });
        let mini = wo(MethodSpec::ApolloMini);
        assert!((0.3..0.45).contains(&adamw), "adamw {adamw}");
        assert!(galore < adamw && apollo <= galore, "{galore} vs {apollo}");
        assert!(apollo_half < apollo);
        assert!(mini < apollo_half);
    }
}
