//! Fig. 1 (middle): memory-breakdown comparison for LLaMA-7B at batch 1
//! with the layer-wise gradient update strategy, including the (Q-) INT8
//! weight variants.

use apollo_bench::{print_table, write_json};
use apollo_nn::ModelConfig;
use apollo_optim::memory::MethodSpec;
use apollo_sysmodel::{MemoryOptions, TrainingMemoryModel, WeightPrecision};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    method: String,
    weights_gib: f64,
    grads_gib: f64,
    optimizer_gib: f64,
    activations_gib: f64,
    total_gib: f64,
}

fn main() {
    let mem = TrainingMemoryModel::new(&ModelConfig::llama_7b());
    let bf16 = MemoryOptions::figure1(256);
    let int8 = MemoryOptions {
        weights: WeightPrecision::Int8 { group: 128 },
        ..bf16
    };
    let cases: Vec<(String, MethodSpec, MemoryOptions)> = vec![
        ("AdamW".into(), MethodSpec::AdamW, bf16),
        (
            "GaLore (r=1024)".into(),
            MethodSpec::GaLore { rank: 1024 },
            bf16,
        ),
        (
            "Q-GaLore (r=1024)".into(),
            MethodSpec::GaLore { rank: 1024 },
            int8,
        ),
        (
            "APOLLO (r=256)".into(),
            MethodSpec::Apollo { rank: 256 },
            bf16,
        ),
        (
            "Q-APOLLO (r=256)".into(),
            MethodSpec::Apollo { rank: 256 },
            int8,
        ),
        ("APOLLO-Mini".into(), MethodSpec::ApolloMini, bf16),
        ("Q-APOLLO-Mini".into(), MethodSpec::ApolloMini, int8),
    ];
    let mut rows = Vec::new();
    for (name, spec, opts) in cases {
        let b = mem.breakdown(spec, &opts);
        rows.push(Row {
            method: name,
            weights_gib: b.weights_gib,
            grads_gib: b.grads_gib,
            optimizer_gib: b.optimizer_gib,
            activations_gib: b.activations_gib,
            total_gib: b.total_gib(),
        });
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.method.clone(),
                format!("{:.1}", r.weights_gib),
                format!("{:.2}", r.grads_gib),
                format!("{:.2}", r.optimizer_gib),
                format!("{:.2}", r.activations_gib),
                format!("{:.1}", r.total_gib),
            ]
        })
        .collect();
    print_table(
        "Fig. 1 (middle) — LLaMA-7B memory breakdown, batch 1, layer-wise grads (GiB)",
        &[
            "Method",
            "Weights",
            "Grads",
            "Optimizer",
            "Activations",
            "Total",
        ],
        &table,
    );
    println!("\nPaper shape: AdamW ≈58 GB dominated by 28 GB states; Q-APOLLO-Mini ≈12 GB.");
    write_json("fig1_memory", &rows);
}
