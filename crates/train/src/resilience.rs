//! Training resilience: step sentinels, recovery policies, and a
//! deterministic fault-injection harness.
//!
//! Large pre-training runs fail in practice — loss spikes, NaN/Inf
//! gradients from fp16 overflow, machine crashes. The paper's 7B runs
//! (Section 5.4) span days of wall-clock; this module gives the
//! reproduction the same operational armor at proxy scale:
//!
//! - **Sentinels** watch every step for non-finite losses/gradients and
//!   for loss spikes against a rolling window ([`SpikeDetector`]).
//! - A [`RecoveryPolicy`] decides what happens when a sentinel fires.
//! - [`ResilienceReport`] counts every intervention so runs stay auditable.
//! - [`FaultPlan`] injects faults at exact steps, so integration tests can
//!   prove recovery and bit-exact resume deterministically.

use std::collections::VecDeque;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

use serde::{Deserialize, Serialize};

/// What to do when a step sentinel (non-finite loss/gradient or loss
/// spike) fires.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RecoveryPolicy {
    /// Drop the batch: no parameter update this step, move on.
    SkipStep,
    /// Zero non-finite gradient entries, clip the global norm, then step.
    ClipAndContinue,
    /// Restore the last in-memory snapshot, scale the learning rate down
    /// by `lr_backoff`, and replay from the snapshot step.
    RollbackAndRetry {
        /// Multiplier applied to the LR on every rollback (e.g. 0.5).
        lr_backoff: f32,
    },
    /// Stop training immediately and report.
    Abort,
}

/// Configuration for the resilient training loop.
///
/// The default has every feature off: no sentinels, no checkpoints, no
/// faults — [`crate::pretrain`] under the default config is step-for-step
/// identical to the plain loop.
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Recovery policy; `None` disables all sentinels.
    pub policy: Option<RecoveryPolicy>,
    /// Rolling-window length for the spike detector.
    pub spike_window: usize,
    /// A loss counts as a spike when it exceeds `spike_factor ×` the
    /// rolling mean.
    pub spike_factor: f32,
    /// Global-norm clip used by [`RecoveryPolicy::ClipAndContinue`].
    pub clip_norm: f32,
    /// How often (in steps) `RollbackAndRetry` refreshes its in-memory
    /// snapshot.
    pub snapshot_every: usize,
    /// Consecutive faulted steps tolerated before the run aborts
    /// regardless of policy (guards against a permanently-poisoned state).
    pub max_consecutive_faults: usize,
    /// Directory for crash-safe checkpoints; `None` disables them.
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// Write a checkpoint every this many steps (0 = only the final one).
    pub checkpoint_every: usize,
    /// Retain at most this many periodic checkpoints (oldest pruned).
    pub keep_last: usize,
    /// Resume from the newest valid checkpoint in `checkpoint_dir`.
    pub resume: bool,
    /// Deterministic fault injection for tests.
    pub fault_plan: FaultPlan,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            policy: None,
            spike_window: 16,
            spike_factor: 3.0,
            clip_norm: 1.0,
            snapshot_every: 10,
            max_consecutive_faults: 8,
            checkpoint_dir: None,
            checkpoint_every: 0,
            keep_last: 3,
            resume: false,
            fault_plan: FaultPlan::default(),
        }
    }
}

/// Per-run resilience audit: how often each sentinel fired and what the
/// policy did about it. Serialized into [`crate::RunLog`] and into every
/// checkpoint, so counters survive a resume.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ResilienceReport {
    /// Steps whose gradients contained NaN/Inf.
    pub non_finite_grads: usize,
    /// Steps whose training loss was NaN/Inf.
    pub non_finite_loss: usize,
    /// Steps flagged by the rolling-window spike detector.
    pub loss_spikes: usize,
    /// Steps dropped by [`RecoveryPolicy::SkipStep`] (or degraded rollback).
    pub skipped_steps: usize,
    /// Steps zeroed because the global gradient norm itself was NaN/Inf at
    /// clip time (the latent-NaN path: `norm > max_norm` is false for NaN,
    /// so the old code silently fed the poisoned gradients to the
    /// optimizer).
    pub clip_nonfinite_steps: usize,
    /// Steps repaired by [`RecoveryPolicy::ClipAndContinue`].
    pub clipped_steps: usize,
    /// Snapshot restores performed by [`RecoveryPolicy::RollbackAndRetry`].
    pub rollbacks: usize,
    /// Whether the run stopped early (policy `Abort` or fault-limit hit).
    pub aborted: bool,
    /// Whether a [`FaultKind::Crash`] terminated the run mid-loop.
    pub crashed: bool,
    /// Checkpoints successfully written.
    pub checkpoints_written: usize,
    /// Checkpoint writes that failed (run continues).
    pub checkpoint_errors: usize,
    /// The step a resumed run restarted from, if any.
    pub resumed_from_step: Option<u64>,
}

impl ResilienceReport {
    /// True when no sentinel fired and nothing was skipped or rolled back.
    pub fn is_clean(&self) -> bool {
        self.non_finite_grads == 0
            && self.non_finite_loss == 0
            && self.loss_spikes == 0
            && self.skipped_steps == 0
            && self.clip_nonfinite_steps == 0
            && self.clipped_steps == 0
            && self.rollbacks == 0
            && !self.aborted
            && !self.crashed
    }
}

/// Rolling-window loss-spike detector.
///
/// A loss is a spike when it exceeds `factor ×` the mean of the last
/// `window` *accepted* losses. Spiky or non-finite losses are never
/// recorded, so one spike cannot inflate the baseline and mask the next.
/// The detector stays silent until it has [`Self::MIN_SAMPLES`] samples.
#[derive(Debug, Clone)]
pub struct SpikeDetector {
    window: VecDeque<f32>,
    cap: usize,
    factor: f32,
}

impl SpikeDetector {
    /// Samples required before the detector starts flagging.
    pub const MIN_SAMPLES: usize = 4;

    /// Creates a detector over the last `cap` losses with threshold
    /// `factor` (both clamped to sane minimums).
    pub fn new(cap: usize, factor: f32) -> Self {
        SpikeDetector {
            window: VecDeque::new(),
            cap: cap.max(Self::MIN_SAMPLES),
            factor: factor.max(1.0),
        }
    }

    /// Whether `loss` spikes above the rolling mean. Non-finite losses are
    /// the caller's concern (they trip the non-finite sentinel first).
    pub fn is_spike(&self, loss: f32) -> bool {
        if self.window.len() < Self::MIN_SAMPLES || !loss.is_finite() {
            return false;
        }
        let mean: f32 = self.window.iter().sum::<f32>() / self.window.len() as f32;
        mean > 0.0 && loss > self.factor * mean
    }

    /// Records an accepted (finite, non-spike) loss.
    pub fn record(&mut self, loss: f32) {
        if !loss.is_finite() {
            return;
        }
        if self.window.len() == self.cap {
            self.window.pop_front();
        }
        self.window.push_back(loss);
    }

    /// Window contents, oldest first (for checkpointing).
    pub fn window(&self) -> Vec<f32> {
        self.window.iter().copied().collect()
    }

    /// Restores a window saved by [`Self::window`].
    pub fn restore(&mut self, values: &[f32]) {
        self.window.clear();
        for &v in values.iter().rev().take(self.cap).rev() {
            self.record(v);
        }
    }
}

/// A deterministic fault to inject at a specific step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Poison the first trainable gradient with a NaN entry.
    NanGrad,
    /// Poison the first trainable gradient with an Inf entry.
    InfGrad,
    /// Multiply the observed loss (and gradients) by `factor`, simulating
    /// a data-induced spike.
    LossSpike {
        /// Multiplier applied to the loss and gradients.
        factor: f32,
    },
    /// Terminate the loop immediately — no final checkpoint, no final
    /// eval — as if the process was killed.
    Crash,
    /// Kill one data-parallel replica mid-step, as if its host died. The
    /// DDP driver drops the member, rebalances shards over the survivors,
    /// and resumes bit-exactly from the newest valid checkpoint; the
    /// serial trainer treats it as [`FaultKind::Crash`] (there is only one
    /// "replica" to kill).
    ReplicaKill {
        /// Replica id to kill.
        replica: usize,
    },
}

/// A schedule of [`FaultKind`]s keyed by step, for reproducible failure
/// testing. Empty by default (no faults).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: Vec<(usize, FaultKind)>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fault at `step` (builder-style).
    #[must_use]
    pub fn inject(mut self, step: usize, kind: FaultKind) -> Self {
        self.faults.push((step, kind));
        self
    }

    /// The fault scheduled for `step`, if any (first match wins).
    pub fn at(&self, step: usize) -> Option<FaultKind> {
        self.faults
            .iter()
            .find(|(s, _)| *s == step)
            .map(|(_, k)| *k)
    }

    /// Removes and returns the fault scheduled for `step`. Faults are
    /// transient: once consumed they do not re-fire, so a rolled-back
    /// retry of the same step succeeds (matching a hardware glitch, not a
    /// permanently-poisoned input).
    pub fn take_at(&mut self, step: usize) -> Option<FaultKind> {
        let i = self.faults.iter().position(|(s, _)| *s == step)?;
        Some(self.faults.remove(i).1)
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Removes and returns every [`FaultKind::ReplicaKill`] as
    /// `(step, replica)` pairs sorted by step. The DDP driver consumes the
    /// whole kill schedule up front (kills are membership events, not
    /// per-step gradient faults).
    pub fn take_replica_kills(&mut self) -> Vec<(usize, usize)> {
        let mut kills = Vec::new();
        self.faults.retain(|&(step, kind)| match kind {
            FaultKind::ReplicaKill { replica } => {
                kills.push((step, replica));
                false
            }
            _ => true,
        });
        kills.sort_unstable();
        kills
    }
}

/// Truncates the file at `path` to `keep` bytes — a deterministic
/// "crash mid-write" fault for checkpoint-integrity tests.
///
/// # Errors
///
/// Returns any I/O error from opening or truncating the file.
pub fn truncate_file(path: &Path, keep: u64) -> io::Result<()> {
    let f = std::fs::OpenOptions::new().write(true).open(path)?;
    f.set_len(keep)
}

/// Flips one bit of the file at `path` — a deterministic "silent media
/// corruption" fault. `byte` indexes from the start of the file.
///
/// # Errors
///
/// Returns an error if `byte` is past the end of the file or on any I/O
/// failure.
pub fn flip_bit(path: &Path, byte: u64, bit: u8) -> io::Result<()> {
    let mut f = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)?;
    let len = f.metadata()?.len();
    if byte >= len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("byte {byte} past end of {len}-byte file"),
        ));
    }
    f.seek(SeekFrom::Start(byte))?;
    let mut b = [0u8; 1];
    f.read_exact(&mut b)?;
    b[0] ^= 1 << (bit % 8);
    f.seek(SeekFrom::Start(byte))?;
    f.write_all(&b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detector_is_silent_during_warmup() {
        let mut d = SpikeDetector::new(8, 2.0);
        for _ in 0..SpikeDetector::MIN_SAMPLES - 1 {
            d.record(1.0);
        }
        assert!(!d.is_spike(100.0), "must not fire before MIN_SAMPLES");
        d.record(1.0);
        assert!(d.is_spike(100.0));
    }

    #[test]
    fn detector_flags_only_above_factor() {
        let mut d = SpikeDetector::new(4, 3.0);
        for _ in 0..4 {
            d.record(2.0);
        }
        assert!(!d.is_spike(5.9));
        assert!(d.is_spike(6.1));
    }

    #[test]
    fn spikes_are_not_recorded_into_the_baseline() {
        let mut d = SpikeDetector::new(4, 2.0);
        for _ in 0..4 {
            d.record(1.0);
        }
        // The caller only records accepted losses, so a run of spikes
        // keeps the baseline at 1.0 and every one of them is flagged.
        for _ in 0..10 {
            assert!(d.is_spike(10.0));
        }
        assert_eq!(d.window(), vec![1.0; 4]);
    }

    #[test]
    fn detector_ignores_non_finite() {
        let mut d = SpikeDetector::new(4, 2.0);
        for _ in 0..4 {
            d.record(1.0);
        }
        d.record(f32::NAN);
        assert_eq!(d.window().len(), 4);
        assert!(!d.is_spike(f32::NAN));
        assert!(!d.is_spike(f32::INFINITY));
    }

    #[test]
    fn window_roundtrips_through_restore() {
        let mut d = SpikeDetector::new(4, 2.0);
        for i in 0..6 {
            d.record(i as f32);
        }
        let saved = d.window();
        assert_eq!(saved, vec![2.0, 3.0, 4.0, 5.0]);
        let mut e = SpikeDetector::new(4, 2.0);
        e.restore(&saved);
        assert_eq!(e.window(), saved);
    }

    #[test]
    fn fault_plan_lookup_and_default() {
        let plan = FaultPlan::new()
            .inject(3, FaultKind::NanGrad)
            .inject(7, FaultKind::Crash);
        assert_eq!(plan.at(3), Some(FaultKind::NanGrad));
        assert_eq!(plan.at(7), Some(FaultKind::Crash));
        assert_eq!(plan.at(4), None);
        assert!(FaultPlan::default().is_empty());
    }

    #[test]
    fn faults_are_consumed_once() {
        let mut plan = FaultPlan::new().inject(3, FaultKind::NanGrad);
        assert_eq!(plan.take_at(3), Some(FaultKind::NanGrad));
        assert_eq!(plan.take_at(3), None, "a taken fault must not re-fire");
        assert!(plan.is_empty());
    }

    #[test]
    fn flip_bit_changes_exactly_one_bit() {
        let dir = std::env::temp_dir().join("apollo-resilience-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flip.bin");
        std::fs::write(&path, [0u8; 8]).unwrap();
        flip_bit(&path, 5, 2).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes[5], 1 << 2);
        assert!(bytes.iter().enumerate().all(|(i, &b)| i == 5 || b == 0));
        assert!(flip_bit(&path, 99, 0).is_err(), "out of range is an error");
    }

    #[test]
    fn truncate_file_shortens() {
        let dir = std::env::temp_dir().join("apollo-resilience-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trunc.bin");
        std::fs::write(&path, [7u8; 100]).unwrap();
        truncate_file(&path, 13).unwrap();
        assert_eq!(std::fs::read(&path).unwrap().len(), 13);
    }
}
