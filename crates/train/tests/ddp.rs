//! Data-parallel integration tests: bit-exact replica invariance, elastic
//! replica-kill recovery, and cross-replica-count checkpoint resharding.

use apollo_data::{CorpusConfig, LmBatcher, SyntheticCorpus};
use apollo_nn::{LinearMode, LlamaModel, ModelConfig};
use apollo_obs::Obs;
use apollo_optim::{AdamW, Apollo, Optimizer};
use apollo_tensor::Rng;
use apollo_train::{
    pretrain_ddp, DdpConfig, DdpRunLog, FaultKind, FaultPlan, OptimizerFactory, ResilienceConfig,
    TrainConfig,
};

fn setup(seed: u64) -> (LlamaModel, LmBatcher) {
    let cfg = ModelConfig::test_tiny();
    let mut rng = Rng::seed_from_u64(seed);
    let model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
    let corpus = SyntheticCorpus::new(CorpusConfig::with_vocab(cfg.vocab_size));
    // Global batch 4 = the default virtual-slot count.
    let batcher = LmBatcher::new(corpus, 4, cfg.max_seq);
    (model, batcher)
}

fn fresh_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("apollo-ddp-it").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn apollo_factory(i: usize) -> Box<dyn Optimizer> {
    // Position-derived seed: parameter i gets the projector stream a
    // single-parameter optimizer at local index 0 would derive from it.
    Box::new(Apollo::new(2, 5).with_seed(0xA901_1000 + i as u64))
}

fn adamw_factory(_i: usize) -> Box<dyn Optimizer> {
    Box::new(AdamW::new())
}

fn run(
    seed: u64,
    steps: usize,
    replicas: usize,
    make_opt: &OptimizerFactory,
    res: &ResilienceConfig,
) -> (LlamaModel, DdpRunLog) {
    let (mut model, batcher) = setup(seed);
    let cfg = TrainConfig {
        eval_every: 4,
        ..TrainConfig::quick(steps)
    };
    let log = pretrain_ddp(
        &mut model,
        make_opt,
        &batcher,
        &cfg,
        &DdpConfig::new(replicas),
        res,
        &Obs::disabled(),
    );
    (model, log)
}

fn assert_bit_identical(a: &(LlamaModel, DdpRunLog), b: &(LlamaModel, DdpRunLog), what: &str) {
    let (la, lb) = (&a.1.log, &b.1.log);
    assert_eq!(la.train_losses.len(), lb.train_losses.len(), "{what}");
    for ((sa, xa), (sb, xb)) in la.train_losses.iter().zip(&lb.train_losses) {
        assert_eq!(sa, sb, "{what}: sample steps differ");
        assert_eq!(
            xa.to_bits(),
            xb.to_bits(),
            "{what}: loss at step {sa} diverges ({xa} vs {xb})"
        );
    }
    assert_eq!(la.eval_ppls, lb.eval_ppls, "{what}: eval curves differ");
    assert_eq!(
        la.final_ppl.to_bits(),
        lb.final_ppl.to_bits(),
        "{what}: final perplexity diverges"
    );
    for (pa, pb) in a.0.params.iter().zip(&b.0.params) {
        assert_eq!(pa.name, pb.name);
        for (i, (x, y)) in pa
            .value
            .as_slice()
            .iter()
            .zip(pb.value.as_slice())
            .enumerate()
        {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what}: param {} diverges at element {i}",
                pa.name
            );
        }
    }
}

#[test]
fn losses_and_weights_are_bit_identical_at_any_replica_count() {
    // The replica-invariance contract, for both the sharded-state APOLLO
    // path (position-derived projector seeds) and plain AdamW. Replica
    // counts 1/2/4 partition the 4 virtual slots evenly; 3 does not.
    let res = ResilienceConfig::default();
    for (name, factory) in [
        ("apollo", &apollo_factory as &OptimizerFactory),
        ("adamw", &adamw_factory),
    ] {
        let baseline = run(7, 10, 1, factory, &res);
        assert!(baseline.1.log.final_ppl.is_finite());
        assert_eq!(baseline.1.ddp.rounds, 1);
        for replicas in [2, 3, 4] {
            let multi = run(7, 10, replicas, factory, &res);
            assert_eq!(multi.1.ddp.replicas, replicas);
            assert_eq!(multi.1.ddp.survivors, replicas);
            assert_bit_identical(&baseline, &multi, &format!("{name} x{replicas}"));
        }
    }
}

#[test]
fn sharded_state_tracks_the_serial_optimizer_footprint() {
    // ZeRO sharding splits the state across replicas; the union must be
    // the same state a single replica holds.
    let res = ResilienceConfig::default();
    let solo = run(3, 6, 1, &apollo_factory, &res);
    let duo = run(3, 6, 2, &apollo_factory, &res);
    assert!(solo.1.log.state_elems > 0);
    assert_eq!(solo.1.log.state_elems, duo.1.log.state_elems);
    assert_eq!(solo.1.log.state_bytes, duo.1.log.state_bytes);
}

#[test]
fn killed_replica_rebalances_and_stays_bit_exact() {
    // Kill replica 1 of 2 at step 6: the survivor re-shards, replays from
    // the latest checkpoint, and the run is indistinguishable from an
    // undisturbed one.
    let steps = 12;
    let clean = run(11, steps, 2, &apollo_factory, &ResilienceConfig::default());

    let dir = fresh_dir("kill-rebalance");
    let plan = FaultPlan::new().inject(6, FaultKind::ReplicaKill { replica: 1 });
    let res = ResilienceConfig {
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every: 4,
        fault_plan: plan,
        ..ResilienceConfig::default()
    };
    let faulted = run(11, steps, 2, &apollo_factory, &res);
    assert_eq!(faulted.1.ddp.replica_kills, 1);
    assert_eq!(faulted.1.ddp.rebalances, 1);
    assert_eq!(faulted.1.ddp.rounds, 2);
    assert_eq!(faulted.1.ddp.replicas, 2);
    assert_eq!(faulted.1.ddp.survivors, 1);
    assert!(faulted.1.log.resilience.checkpoints_written > 0);
    assert_bit_identical(&clean, &faulted, "kill at step 6");
}

#[test]
fn kill_without_checkpoints_replays_from_the_start() {
    // No checkpoint directory: the recovery floor is the in-memory
    // round-start state, so the survivor replays the whole run — still
    // bit-exact, just more work.
    let clean = run(13, 8, 2, &adamw_factory, &ResilienceConfig::default());
    let plan = FaultPlan::new().inject(5, FaultKind::ReplicaKill { replica: 0 });
    let res = ResilienceConfig {
        fault_plan: plan,
        ..ResilienceConfig::default()
    };
    let faulted = run(13, 8, 2, &adamw_factory, &res);
    assert_eq!(faulted.1.ddp.replica_kills, 1);
    assert_eq!(faulted.1.ddp.rounds, 2);
    assert_bit_identical(&clean, &faulted, "kill, no checkpoints");
}

#[test]
fn consecutive_kills_survive_down_to_one_replica() {
    let clean = run(17, 10, 4, &apollo_factory, &ResilienceConfig::default());
    let plan = FaultPlan::new()
        .inject(3, FaultKind::ReplicaKill { replica: 2 })
        .inject(5, FaultKind::ReplicaKill { replica: 0 })
        .inject(7, FaultKind::ReplicaKill { replica: 3 });
    let res = ResilienceConfig {
        fault_plan: plan,
        ..ResilienceConfig::default()
    };
    let faulted = run(17, 10, 4, &apollo_factory, &res);
    assert_eq!(faulted.1.ddp.replica_kills, 3);
    assert_eq!(faulted.1.ddp.rounds, 4);
    assert_eq!(faulted.1.ddp.survivors, 1);
    assert_bit_identical(&clean, &faulted, "three kills");
}

#[test]
fn checkpoints_reshard_across_replica_counts() {
    // A checkpoint written by a 2-replica run resumes at 4 replicas (and
    // at 1), landing on exactly the uninterrupted run's weights: the
    // per-parameter state blobs are sharding-agnostic.
    let steps = 10;
    let clean = run(19, steps, 2, &apollo_factory, &ResilienceConfig::default());

    let dir = fresh_dir("reshard");
    let res = ResilienceConfig {
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every: 6,
        ..ResilienceConfig::default()
    };
    // First leg: runs to completion, but the step-6 checkpoint remains.
    let (mut first_model, batcher) = setup(19);
    let cfg = TrainConfig {
        eval_every: 4,
        ..TrainConfig::quick(steps)
    };
    pretrain_ddp(
        &mut first_model,
        &|i| apollo_factory(i),
        &batcher,
        &cfg,
        &DdpConfig::new(2),
        &res,
        &Obs::disabled(),
    );
    for replicas in [1, 4] {
        // Drop the final checkpoint (each leg rewrites it on completion)
        // so every resume starts from the step-6 checkpoint.
        std::fs::remove_file(dir.join(apollo_train::checkpoint_file_name(steps as u64))).unwrap();
        let resume = ResilienceConfig {
            resume: true,
            ..res.clone()
        };
        let resumed = run(19, steps, replicas, &apollo_factory, &resume);
        assert_eq!(
            resumed.1.log.resilience.resumed_from_step,
            Some(6),
            "x{replicas}"
        );
        // The resumed leg replays steps 6.. only; its loss samples are a
        // suffix of the clean curve, and the weights land bit-exactly.
        for (step, loss) in &resumed.1.log.train_losses {
            let clean_loss = clean
                .1
                .log
                .train_losses
                .iter()
                .find(|(s, _)| s == step)
                .unwrap_or_else(|| panic!("x{replicas}: no clean sample at step {step}"));
            assert_eq!(loss.to_bits(), clean_loss.1.to_bits(), "x{replicas}");
        }
        assert_eq!(
            resumed.1.log.final_ppl.to_bits(),
            clean.1.log.final_ppl.to_bits(),
            "x{replicas}"
        );
        for (pa, pb) in clean.0.params.iter().zip(&resumed.0.params) {
            for (x, y) in pa.value.as_slice().iter().zip(pb.value.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "x{replicas}: {}", pa.name);
            }
        }
    }
}

#[test]
fn ddp_counters_and_replica_events_are_emitted() {
    let dir = fresh_dir("trace");
    let trace = dir.join("run.jsonl");
    let obs = Obs::with_trace(&trace, 1).unwrap();
    let (mut model, batcher) = setup(23);
    let plan = FaultPlan::new().inject(2, FaultKind::ReplicaKill { replica: 1 });
    let res = ResilienceConfig {
        fault_plan: plan,
        ..ResilienceConfig::default()
    };
    let log = pretrain_ddp(
        &mut model,
        &|i| adamw_factory(i),
        &batcher,
        &TrainConfig::quick(4),
        &DdpConfig::new(2),
        &res,
        &obs,
    );
    assert_eq!(obs.counter_value("ddp.rounds"), 2);
    assert_eq!(obs.counter_value("ddp.replica_kills"), 1);
    assert_eq!(obs.counter_value("ddp.rebalances"), 1);
    // Steps 0..2 ran in round 1, then 0..4 replayed in round 2.
    assert_eq!(obs.counter_value("ddp.steps"), 2 + 4);
    assert_eq!(log.ddp.survivors, 1);

    let text = std::fs::read_to_string(&trace).unwrap();
    for needle in [
        "\"RunStart\"",
        "\"RunEnd\"",
        "\"StepPhases\"",
        "\"StepMetrics\"",
        "\"ReplicaEvent\"",
    ] {
        assert!(text.contains(needle), "trace is missing {needle}");
    }
    for event in ["\"start\"", "\"kill\"", "\"rebalance\"", "\"finish\""] {
        assert!(
            text.contains(event),
            "trace is missing a {event} replica event"
        );
    }
}

#[test]
#[should_panic(expected = "virtual slots")]
fn replicas_beyond_virtual_slots_are_rejected() {
    let (mut model, batcher) = setup(1);
    let ddp = DdpConfig {
        replicas: 3,
        virtual_slots: 2,
        threads_per_replica: 1,
    };
    pretrain_ddp(
        &mut model,
        &|i| adamw_factory(i),
        &batcher,
        &TrainConfig::quick(2),
        &ddp,
        &ResilienceConfig::default(),
        &Obs::disabled(),
    );
}
