//! Fig. 3: element-wise vs channel-wise learning-rate adaptation, with and
//! without the norm-growth limiter, on the 130M proxy.
//!
//! Reproduction targets: (i) channel-wise matches (or slightly beats)
//! element-wise AdamW; (ii) the limiter removes the early-training loss
//! spikes of the structured rule.

use apollo_bench::{pretrain_run, print_table, scaled, write_json, Method};
use apollo_nn::ModelConfig;
use apollo_train::RunLog;

fn early_spike(log: &RunLog) -> f32 {
    // Largest upward jump between consecutive loss samples in the first
    // third of training.
    let n = log.train_losses.len() / 3;
    log.train_losses
        .windows(2)
        .take(n.max(2))
        .map(|w| w[1].1 - w[0].1)
        .fold(0.0f32, f32::max)
}

fn main() {
    let cfg = ModelConfig::tiny_130m();
    let steps = scaled(400);
    let methods = [
        Method::AdamWElementwise,
        Method::AdamWChannelwise { limiter: false },
        Method::AdamWChannelwise { limiter: true },
    ];
    let mut logs = Vec::new();
    for m in methods {
        eprintln!("[fig3] {} ...", m.label());
        logs.push(pretrain_run(&cfg, m, steps, 4, 42, None));
    }
    let rows: Vec<Vec<String>> = logs
        .iter()
        .map(|l| {
            vec![
                l.optimizer.clone(),
                format!("{:.2}", l.final_ppl),
                format!("{:.3}", early_spike(l)),
                format!("{:.2}", l.train_losses.last().unwrap().1),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Fig. 3 — structured LR adaptation ({}, {} steps)",
            cfg.name, steps
        ),
        &[
            "Method",
            "Val ppl",
            "Max early loss jump",
            "Final train loss",
        ],
        &rows,
    );
    println!(
        "\nPaper shape: channel-wise ≤ element-wise ppl; limiter suppresses the early spike \
         and improves further (24.11 < 24.43 < 25.08 at paper scale)."
    );
    write_json("fig3_structured_lr", &logs);
}
