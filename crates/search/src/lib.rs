//! `apollo-search`: deterministic population-based evolutionary search
//! over APOLLO's hyper-parameters.
//!
//! The paper fixes APOLLO's knobs — projector rank r, gradient scale α,
//! subspace refresh period T, and the LR schedule — by hand-tuned grids
//! (Fig. 4, Appendix A.4). This crate searches that space instead:
//! a population of tiny-proxy pretrain runs trains concurrently, and at
//! every round boundary the bottom quantile clones a leader's full train
//! state (weights, optimizer moments, projector bases, data cursor — the
//! in-memory v2 checkpoint blob) and perturbs its knobs with seed-derived
//! mutations. The result is an exploit/explore trajectory through
//! hyper-parameter space that is **bit-reproducible**: same seed, same
//! frontier file, byte for byte.
//!
//! Layering:
//!
//! - [`Genome`] / [`OptFamily`] — the knob set and its mutation operator;
//! - [`Member`] / [`MemberOpt`] — one concurrent proxy run, with
//!   snapshot/restore built on [`apollo_train`]'s checkpoint blobs;
//! - [`run_search`] / [`SearchConfig`] — the driver loop;
//! - [`FrontierReport`] — the serializable outcome (per-round rankings,
//!   clone/perturb lineage, final best, optional static-grid baseline).

mod driver;
mod genome;
mod member;
mod report;

pub use driver::{run_search, ModelConfig, SearchConfig};
pub use genome::{mini_alpha, Genome, OptFamily};
pub use member::{base_batcher, Member, MemberOpt};
pub use report::{
    BaselineEntry, BestEntry, FrontierReport, LineageEvent, MemberReport, RoundReport,
};
