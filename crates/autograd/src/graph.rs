//! The autodiff tape.
//!
//! Forward and backward arms of the memory-bound ops (rmsnorm, swiglu,
//! rope, softmax cross-entropy) dispatch to the single-pass kernels in
//! [`apollo_tensor::fused`], which are bit-identical to the staged
//! loops they replaced (see `fused::reference` and the
//! `fused_equivalence` property tests).

use apollo_tensor::{fused, Matrix};

/// Handle to a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

/// Recorded operation, including any activation caches needed by backward.
enum Op {
    Leaf,
    /// `a · b`
    MatMul(NodeId, NodeId),
    /// `a + b` (same shape)
    Add(NodeId, NodeId),
    /// `a ⊙ b` (same shape)
    Mul(NodeId, NodeId),
    /// `alpha · a`
    Scale(NodeId, f32),
    /// `silu(a) = a · sigmoid(a)`
    Silu(NodeId),
    /// `silu(a) ⊙ b`, fused (the LLaMA MLP gate without temporaries).
    Swiglu(NodeId, NodeId),
    /// Row-wise RMS normalization with a learned per-column gain.
    RmsNorm {
        x: NodeId,
        gain: NodeId,
        /// Cached `1 / rms` per row.
        inv_rms: Vec<f32>,
    },
    /// Rotary position embedding applied per head.
    Rope {
        x: NodeId,
        seq: usize,
        heads: usize,
        theta_base: f32,
    },
    /// Fused causal multi-head self-attention.
    CausalAttention {
        q: NodeId,
        k: NodeId,
        v: NodeId,
        batch: usize,
        seq: usize,
        heads: usize,
        /// Cached softmax probabilities, one `seq × seq` matrix per
        /// `(batch, head)` pair.
        probs: Vec<Matrix>,
    },
    /// Row gather: `out[i] = table[ids[i]]` (embedding lookup, last-token
    /// selection).
    Gather {
        table: NodeId,
        ids: Vec<u32>,
    },
    /// Mean softmax cross-entropy over rows of `logits`.
    CrossEntropy {
        logits: NodeId,
        targets: Vec<u32>,
        /// Cached unnormalized softmax numerators `exp(x - rowmax)`; the
        /// normalized probability is `exps[r,j] / denoms[r]` (the same
        /// division the staged implementation performed in place).
        exps: Matrix,
        /// Cached per-row softmax denominators.
        denoms: Vec<f32>,
    },
    /// Sum of all elements (scalar output).
    Sum(NodeId),
}

/// A define-by-run autodiff tape.
///
/// Build the forward computation with the op methods, then call
/// [`Graph::backward`] once on a scalar output; gradients are then available
/// through [`Graph::grad`].
pub struct Graph {
    vals: Vec<Matrix>,
    ops: Vec<Op>,
    grads: Vec<Option<Matrix>>,
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Graph {
            vals: Vec::new(),
            ops: Vec::new(),
            grads: Vec::new(),
        }
    }

    fn push(&mut self, value: Matrix, op: Op) -> NodeId {
        self.vals.push(value);
        self.ops.push(op);
        self.grads.push(None);
        NodeId(self.vals.len() - 1)
    }

    /// Registers a non-trainable input (gradient is still computed but
    /// usually ignored).
    pub fn input(&mut self, value: Matrix) -> NodeId {
        self.push(value, Op::Leaf)
    }

    /// Registers a trainable parameter leaf.
    ///
    /// Identical to [`Graph::input`]; the distinction is documentation for
    /// the caller, which keeps the returned id to fetch the gradient.
    pub fn param(&mut self, value: Matrix) -> NodeId {
        self.push(value, Op::Leaf)
    }

    /// The forward value of a node.
    pub fn value(&self, id: NodeId) -> &Matrix {
        &self.vals[id.0]
    }

    /// The gradient of a node after [`Graph::backward`].
    ///
    /// # Panics
    ///
    /// Panics if backward has not reached this node (e.g. it does not
    /// influence the loss).
    pub fn grad(&self, id: NodeId) -> &Matrix {
        self.grads[id.0]
            .as_ref()
            .expect("grad: node has no gradient; did you call backward()?")
    }

    /// The gradient if one was produced.
    pub fn try_grad(&self, id: NodeId) -> Option<&Matrix> {
        self.grads[id.0].as_ref()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    // ----- ops ---------------------------------------------------------------

    /// Matrix product.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.vals[a.0].matmul(&self.vals[b.0]);
        self.push(v, Op::MatMul(a, b))
    }

    /// Elementwise sum of two same-shape nodes.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.vals[a.0].add(&self.vals[b.0]);
        self.push(v, Op::Add(a, b))
    }

    /// Elementwise product of two same-shape nodes.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.vals[a.0].hadamard(&self.vals[b.0]);
        self.push(v, Op::Mul(a, b))
    }

    /// Scalar multiple.
    pub fn scale(&mut self, a: NodeId, alpha: f32) -> NodeId {
        let v = self.vals[a.0].scale(alpha);
        self.push(v, Op::Scale(a, alpha))
    }

    /// SiLU activation `x · σ(x)` (the LLaMA MLP nonlinearity).
    pub fn silu(&mut self, a: NodeId) -> NodeId {
        let v = self.vals[a.0].map(|x| x * sigmoid(x));
        self.push(v, Op::Silu(a))
    }

    /// Fused SwiGLU gate: `silu(a) ⊙ b` in a single traversal.
    ///
    /// Bit-identical to `mul(silu(a), b)` but skips the silu and product
    /// temporaries in both the forward and backward passes.
    ///
    /// # Panics
    ///
    /// Panics if `a` and `b` differ in shape.
    pub fn swiglu(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = fused::fused_swiglu_fwd(&self.vals[a.0], &self.vals[b.0]);
        self.push(v, Op::Swiglu(a, b))
    }

    /// Row-wise RMS normalization with learned gain.
    ///
    /// `gain` must be `1 × cols`. `y[i,j] = x[i,j] / rms(x[i,:]) · gain[j]`.
    ///
    /// # Panics
    ///
    /// Panics if `gain` is not a `1 × cols` row vector.
    pub fn rmsnorm(&mut self, x: NodeId, gain: NodeId, eps: f32) -> NodeId {
        let xm = &self.vals[x.0];
        let gm = &self.vals[gain.0];
        assert_eq!(gm.shape(), (1, xm.cols()), "rmsnorm: gain must be 1 x cols");
        let (y, inv_rms) = fused::fused_rmsnorm_fwd(xm, gm, eps);
        self.push(y, Op::RmsNorm { x, gain, inv_rms })
    }

    /// Applies rotary position embeddings per head.
    ///
    /// `x` is `(batch·seq) × (heads·head_dim)`; `head_dim` must be even.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    pub fn rope(&mut self, x: NodeId, seq: usize, heads: usize, theta_base: f32) -> NodeId {
        let xm = &self.vals[x.0];
        assert_eq!(xm.rows() % seq, 0, "rope: rows not divisible by seq");
        assert_eq!(xm.cols() % heads, 0, "rope: cols not divisible by heads");
        let hd = xm.cols() / heads;
        assert_eq!(hd % 2, 0, "rope: head_dim must be even");
        let mut y = xm.clone();
        fused::rope_apply(&mut y, seq, heads, theta_base, false);
        self.push(
            y,
            Op::Rope {
                x,
                seq,
                heads,
                theta_base,
            },
        )
    }

    /// Fused causal multi-head self-attention.
    ///
    /// `q`, `k`, `v` are `(batch·seq) × (heads·head_dim)`. Returns the
    /// attention output in the same layout.
    ///
    /// # Panics
    ///
    /// Panics if the shapes disagree or the geometry does not divide evenly.
    pub fn causal_attention(
        &mut self,
        q: NodeId,
        k: NodeId,
        v: NodeId,
        batch: usize,
        seq: usize,
        heads: usize,
    ) -> NodeId {
        let (qm, km, vm) = (&self.vals[q.0], &self.vals[k.0], &self.vals[v.0]);
        assert_eq!(qm.shape(), km.shape(), "attention: q/k shape mismatch");
        assert_eq!(qm.shape(), vm.shape(), "attention: q/v shape mismatch");
        assert_eq!(qm.rows(), batch * seq, "attention: rows != batch*seq");
        assert_eq!(
            qm.cols() % heads,
            0,
            "attention: cols not divisible by heads"
        );
        let hd = qm.cols() / heads;
        let scale = 1.0 / (hd as f32).sqrt();

        let mut out = Matrix::zeros(qm.rows(), qm.cols());
        let mut probs = Vec::with_capacity(batch * heads);
        for b in 0..batch {
            for h in 0..heads {
                let qh = slice_head(qm, b, seq, h, hd);
                let kh = slice_head(km, b, seq, h, hd);
                let vh = slice_head(vm, b, seq, h, hd);
                // S = Q·Kᵀ · scale with causal mask, row-softmaxed.
                let mut s = qh.matmul_transb(&kh);
                s.scale_assign(scale);
                let mut p = Matrix::zeros(seq, seq);
                for i in 0..seq {
                    let srow = s.row(i);
                    let maxv = srow[..=i].iter().cloned().fold(f32::MIN, f32::max);
                    let mut denom = 0.0;
                    let prow = p.row_mut(i);
                    for j in 0..=i {
                        let e = (srow[j] - maxv).exp();
                        prow[j] = e;
                        denom += e;
                    }
                    for pj in prow[..=i].iter_mut() {
                        *pj /= denom;
                    }
                }
                let oh = p.matmul(&vh);
                write_head(&mut out, &oh, b, seq, h, hd);
                probs.push(p);
            }
        }
        self.push(
            out,
            Op::CausalAttention {
                q,
                k,
                v,
                batch,
                seq,
                heads,
                probs,
            },
        )
    }

    /// Row gather: `out[i, :] = table[ids[i], :]`.
    ///
    /// Serves as embedding lookup and as last-token row selection.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range.
    pub fn gather(&mut self, table: NodeId, ids: &[u32]) -> NodeId {
        let tm = &self.vals[table.0];
        let mut out = Matrix::zeros(ids.len(), tm.cols());
        for (r, &id) in ids.iter().enumerate() {
            assert!(
                (id as usize) < tm.rows(),
                "gather: id {id} out of range for {} rows",
                tm.rows()
            );
            out.row_mut(r).copy_from_slice(tm.row(id as usize));
        }
        self.push(
            out,
            Op::Gather {
                table,
                ids: ids.to_vec(),
            },
        )
    }

    /// Mean softmax cross-entropy of `logits` rows against integer targets.
    ///
    /// Returns a `1 × 1` scalar node holding the mean negative
    /// log-likelihood in nats.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len() != logits.rows()` or a target is out of range.
    pub fn cross_entropy(&mut self, logits: NodeId, targets: &[u32]) -> NodeId {
        let lm = &self.vals[logits.0];
        assert_eq!(
            targets.len(),
            lm.rows(),
            "cross_entropy: one target per row required"
        );
        for &target in targets {
            let t = target as usize;
            assert!(t < lm.cols(), "cross_entropy: target {t} out of range");
        }
        let (mean, exps, denoms) = fused::fused_softmax_xent_fwd(lm, targets);
        self.push(
            Matrix::from_vec(1, 1, vec![mean]),
            Op::CrossEntropy {
                logits,
                targets: targets.to_vec(),
                exps,
                denoms,
            },
        )
    }

    /// Sum of all elements, as a `1 × 1` node.
    pub fn sum(&mut self, a: NodeId) -> NodeId {
        let v = Matrix::from_vec(1, 1, vec![self.vals[a.0].sum()]);
        self.push(v, Op::Sum(a))
    }

    // ----- backward ----------------------------------------------------------

    fn grad_add(grads: &mut [Option<Matrix>], id: NodeId, delta: Matrix) {
        match &mut grads[id.0] {
            Some(g) => {
                g.add_assign(&delta);
                delta.recycle();
            }
            slot @ None => *slot = Some(delta),
        }
    }

    /// Runs reverse-mode accumulation from `output`, which must be scalar
    /// (`1 × 1`).
    ///
    /// # Panics
    ///
    /// Panics if `output` is not scalar.
    pub fn backward(&mut self, output: NodeId) {
        assert_eq!(
            self.vals[output.0].shape(),
            (1, 1),
            "backward: output must be a 1x1 scalar"
        );
        self.grads[output.0] = Some(Matrix::from_vec(1, 1, vec![1.0]));

        for idx in (0..self.ops.len()).rev() {
            // Every operand id is strictly smaller than the node's own id
            // (the tape is define-by-run), so splitting at `idx` lets us
            // borrow this node's gradient while mutating its operands' —
            // no clone-and-reattach needed.
            let (lower, upper) = self.grads.split_at_mut(idx);
            let Some(gout) = upper[0].as_ref() else {
                continue;
            };
            match &self.ops[idx] {
                Op::Leaf => {}
                Op::MatMul(a, b) => {
                    let da = gout.matmul_transb(&self.vals[b.0]);
                    let db = self.vals[a.0].matmul_transa(gout);
                    Self::grad_add(lower, *a, da);
                    Self::grad_add(lower, *b, db);
                }
                Op::Add(a, b) => {
                    Self::grad_add(lower, *a, gout.clone());
                    Self::grad_add(lower, *b, gout.clone());
                }
                Op::Mul(a, b) => {
                    let da = gout.hadamard(&self.vals[b.0]);
                    let db = gout.hadamard(&self.vals[a.0]);
                    Self::grad_add(lower, *a, da);
                    Self::grad_add(lower, *b, db);
                }
                Op::Scale(a, alpha) => {
                    Self::grad_add(lower, *a, gout.scale(*alpha));
                }
                Op::Silu(a) => {
                    let da = self.vals[a.0].zip_map(gout, |x, g| {
                        let s = sigmoid(x);
                        g * s * (1.0 + x * (1.0 - s))
                    });
                    Self::grad_add(lower, *a, da);
                }
                Op::Swiglu(a, b) => {
                    let (da, db) = fused::fused_swiglu_bwd(&self.vals[a.0], &self.vals[b.0], gout);
                    Self::grad_add(lower, *a, da);
                    Self::grad_add(lower, *b, db);
                }
                Op::RmsNorm { x, gain, inv_rms } => {
                    let (dx, dg) = fused::fused_rmsnorm_bwd(
                        &self.vals[x.0],
                        &self.vals[gain.0],
                        gout,
                        inv_rms,
                    );
                    Self::grad_add(lower, *x, dx);
                    Self::grad_add(lower, *gain, dg);
                }
                Op::Rope {
                    x,
                    seq,
                    heads,
                    theta_base,
                } => {
                    // Inverse rotation on the upstream gradient.
                    let mut dx = gout.clone();
                    fused::rope_apply(&mut dx, *seq, *heads, *theta_base, true);
                    Self::grad_add(lower, *x, dx);
                }
                Op::CausalAttention {
                    q,
                    k,
                    v,
                    batch,
                    seq,
                    heads,
                    probs,
                } => {
                    let (qm, km, vm) = (&self.vals[q.0], &self.vals[k.0], &self.vals[v.0]);
                    let hd = qm.cols() / heads;
                    let scale = 1.0 / (hd as f32).sqrt();
                    let mut dq = Matrix::zeros(qm.rows(), qm.cols());
                    let mut dk = Matrix::zeros(qm.rows(), qm.cols());
                    let mut dv = Matrix::zeros(qm.rows(), qm.cols());
                    for b in 0..*batch {
                        for h in 0..*heads {
                            let p = &probs[b * heads + h];
                            let qh = slice_head(qm, b, *seq, h, hd);
                            let kh = slice_head(km, b, *seq, h, hd);
                            let vh = slice_head(vm, b, *seq, h, hd);
                            let doh = slice_head(gout, b, *seq, h, hd);
                            // dV = Pᵀ · dO
                            let dvh = p.matmul_transa(&doh);
                            // dP = dO · Vᵀ
                            let dp = doh.matmul_transb(&vh);
                            // dS_ij = P_ij (dP_ij − Σ_k dP_ik P_ik)
                            let mut ds = Matrix::zeros(*seq, *seq);
                            for i in 0..*seq {
                                let prow = p.row(i);
                                let dprow = dp.row(i);
                                let dot: f32 =
                                    prow.iter().zip(dprow).map(|(&pv, &dpv)| pv * dpv).sum();
                                let dsrow = ds.row_mut(i);
                                for j in 0..=i {
                                    dsrow[j] = prow[j] * (dprow[j] - dot);
                                }
                            }
                            // dQ = dS·K · scale ; dK = dSᵀ·Q · scale
                            let mut dqh = ds.matmul(&kh);
                            dqh.scale_assign(scale);
                            let mut dkh = ds.matmul_transa(&qh);
                            dkh.scale_assign(scale);
                            write_head(&mut dq, &dqh, b, *seq, h, hd);
                            write_head(&mut dk, &dkh, b, *seq, h, hd);
                            write_head(&mut dv, &dvh, b, *seq, h, hd);
                            // Per-head temporaries recur with identical
                            // shapes every (batch, head) pair — recycle.
                            for m in [qh, kh, vh, doh, dvh, dp, ds, dqh, dkh] {
                                m.recycle();
                            }
                        }
                    }
                    Self::grad_add(lower, *q, dq);
                    Self::grad_add(lower, *k, dk);
                    Self::grad_add(lower, *v, dv);
                }
                Op::Gather { table, ids } => {
                    let tm = &self.vals[table.0];
                    let mut dt = Matrix::zeros(tm.rows(), tm.cols());
                    for (r, &id) in ids.iter().enumerate() {
                        let src = gout.row(r);
                        let dst = dt.row_mut(id as usize);
                        for (d, &s) in dst.iter_mut().zip(src) {
                            *d += s;
                        }
                    }
                    Self::grad_add(lower, *table, dt);
                }
                Op::CrossEntropy {
                    logits,
                    targets,
                    exps,
                    denoms,
                } => {
                    let upstream = gout.get(0, 0);
                    let dl = fused::fused_softmax_xent_bwd(exps, denoms, targets, upstream);
                    Self::grad_add(lower, *logits, dl);
                }
                Op::Sum(a) => {
                    let s = gout.get(0, 0);
                    let da = Matrix::full(self.vals[a.0].rows(), self.vals[a.0].cols(), s);
                    Self::grad_add(lower, *a, da);
                }
            }
        }
    }
}

impl Drop for Graph {
    /// Returns every value, gradient, and activation-cache buffer to the
    /// scratch pool. A fresh tape is built each training step with the same
    /// node shapes, so this makes the steady-state allocation rate of the
    /// forward+backward pass ~zero.
    fn drop(&mut self) {
        for m in self.vals.drain(..) {
            m.recycle();
        }
        for g in self.grads.drain(..).flatten() {
            g.recycle();
        }
        for op in self.ops.drain(..) {
            match op {
                Op::CausalAttention { probs, .. } => {
                    probs.into_iter().for_each(Matrix::recycle);
                }
                Op::CrossEntropy { exps, .. } => exps.recycle(),
                _ => {}
            }
        }
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Extracts head `h` of batch element `b` as a `seq × head_dim` matrix.
fn slice_head(x: &Matrix, b: usize, seq: usize, h: usize, hd: usize) -> Matrix {
    let mut out = Matrix::zeros(seq, hd);
    for t in 0..seq {
        let row = x.row(b * seq + t);
        out.row_mut(t).copy_from_slice(&row[h * hd..(h + 1) * hd]);
    }
    out
}

/// Writes head `h` of batch element `b` back into the flat layout.
fn write_head(x: &mut Matrix, head: &Matrix, b: usize, seq: usize, h: usize, hd: usize) {
    for t in 0..seq {
        let src = head.row(t);
        let dst = x.row_mut(b * seq + t);
        dst[h * hd..(h + 1) * hd].copy_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apollo_tensor::Rng;

    /// Central finite-difference gradient of `f` w.r.t. `param`.
    fn numeric_grad(mut f: impl FnMut(&Matrix) -> f32, param: &Matrix, eps: f32) -> Matrix {
        let mut g = Matrix::zeros(param.rows(), param.cols());
        for r in 0..param.rows() {
            for c in 0..param.cols() {
                let mut p = param.clone();
                p.set(r, c, param.get(r, c) + eps);
                let hi = f(&p);
                p.set(r, c, param.get(r, c) - eps);
                let lo = f(&p);
                g.set(r, c, (hi - lo) / (2.0 * eps));
            }
        }
        g
    }

    fn assert_grad_close(analytic: &Matrix, numeric: &Matrix, tol: f32) {
        assert_eq!(analytic.shape(), numeric.shape());
        for (a, n) in analytic.as_slice().iter().zip(numeric.as_slice()) {
            let scale = 1.0 + a.abs().max(n.abs());
            assert!((a - n).abs() / scale < tol, "analytic {a} vs numeric {n}");
        }
    }

    #[test]
    fn doc_example_matmul_sum() {
        let mut g = Graph::new();
        let x = g.input(Matrix::from_rows(&[&[1.0, 2.0]]));
        let w = g.param(Matrix::from_rows(&[&[3.0], &[4.0]]));
        let y = g.matmul(x, w);
        assert_eq!(g.value(y).get(0, 0), 11.0);
        let loss = g.sum(y);
        g.backward(loss);
        assert_eq!(g.grad(w).as_slice(), &[1.0, 2.0]);
        assert_eq!(g.grad(x).as_slice(), &[3.0, 4.0]);
    }

    #[test]
    fn matmul_gradcheck() {
        let mut rng = Rng::seed_from_u64(31);
        let a0 = Matrix::randn(3, 4, &mut rng);
        let b0 = Matrix::randn(4, 2, &mut rng);
        let f = |am: &Matrix, bm: &Matrix| {
            let mut g = Graph::new();
            let a = g.input(am.clone());
            let b = g.input(bm.clone());
            let y = g.matmul(a, b);
            let s = g.sum(y);
            g.value(s).get(0, 0)
        };
        let mut g = Graph::new();
        let a = g.param(a0.clone());
        let b = g.param(b0.clone());
        let y = g.matmul(a, b);
        let s = g.sum(y);
        g.backward(s);
        assert_grad_close(g.grad(a), &numeric_grad(|p| f(p, &b0), &a0, 1e-2), 2e-2);
        assert_grad_close(g.grad(b), &numeric_grad(|p| f(&a0, p), &b0, 1e-2), 2e-2);
    }

    #[test]
    fn silu_gradcheck() {
        let mut rng = Rng::seed_from_u64(32);
        let x0 = Matrix::randn(2, 5, &mut rng);
        let f = |xm: &Matrix| {
            let mut g = Graph::new();
            let x = g.input(xm.clone());
            let y = g.silu(x);
            let s = g.sum(y);
            g.value(s).get(0, 0)
        };
        let mut g = Graph::new();
        let x = g.param(x0.clone());
        let y = g.silu(x);
        let s = g.sum(y);
        g.backward(s);
        assert_grad_close(g.grad(x), &numeric_grad(f, &x0, 1e-2), 2e-2);
    }

    #[test]
    fn swiglu_gradcheck() {
        let mut rng = Rng::seed_from_u64(52);
        let a0 = Matrix::randn(2, 5, &mut rng);
        let b0 = Matrix::randn(2, 5, &mut rng);
        let f = |am: &Matrix, bm: &Matrix| {
            let mut g = Graph::new();
            let a = g.input(am.clone());
            let b = g.input(bm.clone());
            let y = g.swiglu(a, b);
            let y2 = g.mul(y, y);
            let s = g.sum(y2);
            g.value(s).get(0, 0)
        };
        let mut g = Graph::new();
        let a = g.param(a0.clone());
        let b = g.param(b0.clone());
        let y = g.swiglu(a, b);
        let y2 = g.mul(y, y);
        let s = g.sum(y2);
        g.backward(s);
        assert_grad_close(g.grad(a), &numeric_grad(|p| f(p, &b0), &a0, 1e-2), 2e-2);
        assert_grad_close(g.grad(b), &numeric_grad(|p| f(&a0, p), &b0, 1e-2), 2e-2);
    }

    #[test]
    fn swiglu_matches_silu_mul_bitwise() {
        // The fused gate must be indistinguishable from the unfused
        // silu+mul composition: same forward bits, same gradient bits.
        let mut rng = Rng::seed_from_u64(53);
        let a0 = Matrix::randn(5, 33, &mut rng);
        let b0 = Matrix::randn(5, 33, &mut rng);
        let w0 = Matrix::randn(5, 33, &mut rng);
        let run = |fused_gate: bool| {
            let mut g = Graph::new();
            let a = g.param(a0.clone());
            let b = g.param(b0.clone());
            let w = g.input(w0.clone());
            let y = if fused_gate {
                g.swiglu(a, b)
            } else {
                let sa = g.silu(a);
                g.mul(sa, b)
            };
            let z = g.mul(y, w);
            let s = g.sum(z);
            g.backward(s);
            (
                g.value(y).clone(),
                g.grad(a).clone(),
                g.grad(b).clone(),
                g.value(s).get(0, 0),
            )
        };
        let (yf, daf, dbf, lf) = run(true);
        let (yu, dau, dbu, lu) = run(false);
        assert_eq!(lf.to_bits(), lu.to_bits());
        for (f, u) in [(yf, yu), (daf, dau), (dbf, dbu)] {
            for (a, b) in f.as_slice().iter().zip(u.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "fused {a} vs unfused {b}");
            }
        }
    }

    #[test]
    fn training_loop_fused_vs_unfused_is_bit_identical() {
        // A miniature training loop — rmsnorm → SwiGLU MLP → matmul →
        // cross-entropy, with Adam updates — run twice: once through the
        // fused ops (swiglu op + fused_adam_update), once through the
        // staged arms (silu+mul ops + reference::adam_update). Every
        // per-step loss must agree bit-for-bit.
        use apollo_tensor::fused::{self, reference};
        let (rows, hidden, vocab) = (6, 10, 7);
        let targets: Vec<u32> = (0..rows).map(|r| (r % vocab) as u32).collect();
        let mut rng = Rng::seed_from_u64(54);
        let x0 = Matrix::randn(rows, hidden, &mut rng);
        let gain0 = Matrix::rand_uniform(1, hidden, 0.5, 1.5, &mut rng);
        let wg0 = Matrix::randn(hidden, hidden, &mut rng);
        let wu0 = Matrix::randn(hidden, hidden, &mut rng);
        let wo0 = Matrix::randn(hidden, vocab, &mut rng);
        let (beta1, beta2, eps, lr, wd) = (0.9f32, 0.999f32, 1e-8f32, 0.05f32, 0.1f32);

        let run = |fused_arm: bool| {
            let mut weights = [wg0.clone(), wu0.clone(), wo0.clone()];
            let mut ms: Vec<Matrix> = weights
                .iter()
                .map(|w| Matrix::zeros(w.rows(), w.cols()))
                .collect();
            let mut vs: Vec<Matrix> = ms.clone();
            let mut losses = Vec::new();
            for t in 1..=8i32 {
                let mut g = Graph::new();
                let x = g.input(x0.clone());
                let gain = g.input(gain0.clone());
                let ws: Vec<NodeId> = weights.iter().map(|w| g.param(w.clone())).collect();
                let hn = g.rmsnorm(x, gain, 1e-5);
                let gate_pre = g.matmul(hn, ws[0]);
                let up = g.matmul(hn, ws[1]);
                let act = if fused_arm {
                    g.swiglu(gate_pre, up)
                } else {
                    let s = g.silu(gate_pre);
                    g.mul(s, up)
                };
                let logits = g.matmul(act, ws[2]);
                let loss = g.cross_entropy(logits, &targets);
                losses.push(g.value(loss).get(0, 0).to_bits());
                g.backward(loss);
                let grads: Vec<Matrix> = ws.iter().map(|&id| g.grad(id).clone()).collect();
                drop(g);
                let bc1 = 1.0 - beta1.powi(t);
                let bc2 = 1.0 - beta2.powi(t);
                let decay = 1.0 - lr * wd;
                for ((w, grad), (m, v)) in weights
                    .iter_mut()
                    .zip(&grads)
                    .zip(ms.iter_mut().zip(vs.iter_mut()))
                {
                    if fused_arm {
                        fused::fused_adam_update(
                            w, grad, m, v, beta1, beta2, bc1, bc2, eps, lr, decay,
                        );
                    } else {
                        reference::adam_update(
                            w, grad, m, v, beta1, beta2, bc1, bc2, eps, lr, decay,
                        );
                    }
                }
            }
            losses
        };
        let fused_losses = run(true);
        let staged_losses = run(false);
        assert!(fused_losses.windows(2).any(|w| w[0] != w[1]), "loss static");
        assert_eq!(fused_losses, staged_losses, "train-loop loss bits differ");
    }

    #[test]
    fn mul_and_add_gradcheck() {
        let mut rng = Rng::seed_from_u64(33);
        let a0 = Matrix::randn(3, 3, &mut rng);
        let b0 = Matrix::randn(3, 3, &mut rng);
        let run = |am: &Matrix, bm: &Matrix| -> (f32, Option<(Matrix, Matrix)>) {
            let mut g = Graph::new();
            let a = g.input(am.clone());
            let b = g.input(bm.clone());
            let p = g.mul(a, b);
            let q = g.add(p, a);
            let s = g.sum(q);
            let v = g.value(s).get(0, 0);
            g.backward(s);
            (v, Some((g.grad(a).clone(), g.grad(b).clone())))
        };
        let (_, grads) = run(&a0, &b0);
        let (ga, gb) = grads.unwrap();
        assert_grad_close(&ga, &numeric_grad(|p| run(p, &b0).0, &a0, 1e-2), 2e-2);
        assert_grad_close(&gb, &numeric_grad(|p| run(&a0, p).0, &b0, 1e-2), 2e-2);
    }

    #[test]
    fn rmsnorm_gradcheck() {
        let mut rng = Rng::seed_from_u64(34);
        let x0 = Matrix::randn(3, 6, &mut rng);
        let g0 = Matrix::rand_uniform(1, 6, 0.5, 1.5, &mut rng);
        let f = |xm: &Matrix, gm: &Matrix| {
            let mut g = Graph::new();
            let x = g.input(xm.clone());
            let gn = g.input(gm.clone());
            let y = g.rmsnorm(x, gn, 1e-5);
            // Weighted sum so the gradient is non-uniform.
            let w = g.input(Matrix::from_vec(
                6,
                1,
                (0..6).map(|i| (i as f32 + 1.0) * 0.3).collect(),
            ));
            let z = g.matmul(y, w);
            let s = g.sum(z);
            g.value(s).get(0, 0)
        };
        let mut g = Graph::new();
        let x = g.param(x0.clone());
        let gn = g.param(g0.clone());
        let y = g.rmsnorm(x, gn, 1e-5);
        let w = g.input(Matrix::from_vec(
            6,
            1,
            (0..6).map(|i| (i as f32 + 1.0) * 0.3).collect(),
        ));
        let z = g.matmul(y, w);
        let s = g.sum(z);
        g.backward(s);
        assert_grad_close(g.grad(x), &numeric_grad(|p| f(p, &g0), &x0, 1e-2), 3e-2);
        assert_grad_close(g.grad(gn), &numeric_grad(|p| f(&x0, p), &g0, 1e-2), 3e-2);
    }

    #[test]
    fn rope_is_orthogonal_and_invertible() {
        let mut rng = Rng::seed_from_u64(35);
        let x = Matrix::randn(8, 8, &mut rng); // seq 4, batch 2, heads 2, hd 4
        let mut g = Graph::new();
        let xid = g.input(x.clone());
        let y = g.rope(xid, 4, 2, 10_000.0);
        // Rotation preserves per-row norms.
        for (a, b) in x.row_norms().iter().zip(g.value(y).row_norms()) {
            assert!((a - b).abs() < 1e-4);
        }
        // Inverse rotation restores the input.
        let mut z = g.value(y).clone();
        fused::rope_apply(&mut z, 4, 2, 10_000.0, true);
        for (a, b) in x.as_slice().iter().zip(z.as_slice()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn rope_gradcheck() {
        let mut rng = Rng::seed_from_u64(36);
        let x0 = Matrix::randn(4, 4, &mut rng); // batch 1 seq 4, 1 head hd 4
        let f = |xm: &Matrix| {
            let mut g = Graph::new();
            let x = g.input(xm.clone());
            let y = g.rope(x, 4, 1, 100.0);
            let y2 = g.mul(y, y);
            let s = g.sum(y2);
            g.value(s).get(0, 0)
        };
        let mut g = Graph::new();
        let x = g.param(x0.clone());
        let y = g.rope(x, 4, 1, 100.0);
        let y2 = g.mul(y, y);
        let s = g.sum(y2);
        g.backward(s);
        assert_grad_close(g.grad(x), &numeric_grad(f, &x0, 1e-2), 2e-2);
    }

    #[test]
    fn attention_gradcheck() {
        let mut rng = Rng::seed_from_u64(37);
        let (batch, seq, heads, hd) = (2, 3, 2, 4);
        let rows = batch * seq;
        let cols = heads * hd;
        let q0 = Matrix::randn(rows, cols, &mut rng);
        let k0 = Matrix::randn(rows, cols, &mut rng);
        let v0 = Matrix::randn(rows, cols, &mut rng);
        let weights = Matrix::randn(cols, 1, &mut rng);
        let f = |qm: &Matrix, km: &Matrix, vm: &Matrix| {
            let mut g = Graph::new();
            let q = g.input(qm.clone());
            let k = g.input(km.clone());
            let v = g.input(vm.clone());
            let o = g.causal_attention(q, k, v, batch, seq, heads);
            let w = g.input(weights.clone());
            let z = g.matmul(o, w);
            let s = g.sum(z);
            g.value(s).get(0, 0)
        };
        let mut g = Graph::new();
        let q = g.param(q0.clone());
        let k = g.param(k0.clone());
        let v = g.param(v0.clone());
        let o = g.causal_attention(q, k, v, batch, seq, heads);
        let w = g.input(weights.clone());
        let z = g.matmul(o, w);
        let s = g.sum(z);
        g.backward(s);
        assert_grad_close(
            g.grad(q),
            &numeric_grad(|p| f(p, &k0, &v0), &q0, 1e-2),
            3e-2,
        );
        assert_grad_close(
            g.grad(k),
            &numeric_grad(|p| f(&q0, p, &v0), &k0, 1e-2),
            3e-2,
        );
        assert_grad_close(
            g.grad(v),
            &numeric_grad(|p| f(&q0, &k0, p), &v0, 1e-2),
            3e-2,
        );
    }

    #[test]
    fn attention_is_causal() {
        // Changing a *future* key/value must not change earlier outputs.
        let mut rng = Rng::seed_from_u64(38);
        let (batch, seq, heads, hd) = (1, 4, 1, 4);
        let q0 = Matrix::randn(seq, hd, &mut rng);
        let k0 = Matrix::randn(seq, hd, &mut rng);
        let v0 = Matrix::randn(seq, hd, &mut rng);
        let out = |km: &Matrix, vm: &Matrix| {
            let mut g = Graph::new();
            let q = g.input(q0.clone());
            let k = g.input(km.clone());
            let v = g.input(vm.clone());
            let o = g.causal_attention(q, k, v, batch, seq, heads);
            g.value(o).clone()
        };
        let base = out(&k0, &v0);
        let mut k1 = k0.clone();
        k1.set(3, 0, 99.0);
        let mut v1 = v0.clone();
        v1.set(3, 2, -99.0);
        let perturbed = out(&k1, &v1);
        for t in 0..3 {
            assert_eq!(base.row(t), perturbed.row(t), "row {t} leaked future info");
        }
        assert_ne!(base.row(3), perturbed.row(3));
    }

    #[test]
    fn gather_gradcheck() {
        let mut rng = Rng::seed_from_u64(39);
        let t0 = Matrix::randn(5, 3, &mut rng);
        let ids = [0u32, 2, 2, 4];
        let f = |tm: &Matrix| {
            let mut g = Graph::new();
            let t = g.input(tm.clone());
            let y = g.gather(t, &ids);
            let y2 = g.mul(y, y);
            let s = g.sum(y2);
            g.value(s).get(0, 0)
        };
        let mut g = Graph::new();
        let t = g.param(t0.clone());
        let y = g.gather(t, &ids);
        let y2 = g.mul(y, y);
        let s = g.sum(y2);
        g.backward(s);
        assert_grad_close(g.grad(t), &numeric_grad(f, &t0, 1e-2), 2e-2);
    }

    #[test]
    fn gather_duplicate_ids_accumulate() {
        let t0 = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let mut g = Graph::new();
        let t = g.param(t0);
        let y = g.gather(t, &[1, 1, 1]);
        let s = g.sum(y);
        g.backward(s);
        assert_eq!(g.grad(t).as_slice(), &[0.0, 3.0]);
    }

    #[test]
    fn cross_entropy_matches_manual_and_gradchecks() {
        let logits0 = Matrix::from_rows(&[&[2.0, 0.0, -1.0], &[0.5, 0.5, 0.5]]);
        let targets = [0u32, 2];
        let f = |lm: &Matrix| {
            let mut g = Graph::new();
            let l = g.input(lm.clone());
            let s = g.cross_entropy(l, &targets);
            g.value(s).get(0, 0)
        };
        // Manual check of the forward value.
        let p0 = 2.0f32.exp() / (2.0f32.exp() + 1.0 + (-1.0f32).exp());
        let expected = (-(p0.ln()) + -(1.0f32 / 3.0).ln()) / 2.0;
        assert!((f(&logits0) - expected).abs() < 1e-5);

        let mut g = Graph::new();
        let l = g.param(logits0.clone());
        let s = g.cross_entropy(l, &targets);
        g.backward(s);
        assert_grad_close(g.grad(l), &numeric_grad(f, &logits0, 1e-3), 1e-2);
    }

    #[test]
    fn cross_entropy_uniform_logits_loss_is_log_vocab() {
        let v = 16;
        let logits = Matrix::zeros(4, v);
        let mut g = Graph::new();
        let l = g.input(logits);
        let s = g.cross_entropy(l, &[0, 5, 9, 15]);
        assert!((g.value(s).get(0, 0) - (v as f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn grad_accumulates_over_reused_node() {
        // y = x + x ⇒ dy/dx = 2.
        let mut g = Graph::new();
        let x = g.param(Matrix::from_rows(&[&[5.0]]));
        let y = g.add(x, x);
        let s = g.sum(y);
        g.backward(s);
        assert_eq!(g.grad(x).get(0, 0), 2.0);
    }

    #[test]
    #[should_panic(expected = "backward: output must be a 1x1 scalar")]
    fn backward_rejects_non_scalar() {
        let mut g = Graph::new();
        let x = g.param(Matrix::zeros(2, 2));
        g.backward(x);
    }

    #[test]
    fn try_grad_is_none_for_unreached_nodes() {
        let mut g = Graph::new();
        let x = g.param(Matrix::from_rows(&[&[1.0]]));
        let unused = g.param(Matrix::from_rows(&[&[1.0]]));
        let s = g.sum(x);
        g.backward(s);
        assert!(g.try_grad(unused).is_none());
        assert!(g.try_grad(x).is_some());
    }
}
