//! Quickstart: pre-train a tiny LLaMA-style model with APOLLO and compare
//! the optimizer-state footprint against AdamW.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use apollo_repro::data::{CorpusConfig, LmBatcher, SyntheticCorpus};
use apollo_repro::nn::{LinearMode, LlamaModel, ModelConfig};
use apollo_repro::optim::{AdamW, Apollo, Optimizer};
use apollo_repro::tensor::Rng;
use apollo_repro::train::{eval_perplexity, pretrain, TrainConfig};

fn main() {
    // A CPU-sized LLaMA proxy: 2 layers, hidden 64, vocab 512.
    let cfg = ModelConfig::tiny_60m();
    let corpus = SyntheticCorpus::new(CorpusConfig::with_vocab(cfg.vocab_size));

    for use_apollo in [false, true] {
        let mut rng = Rng::seed_from_u64(0);
        let mut model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
        let mut batcher = LmBatcher::new(corpus.clone(), 4, cfg.max_seq);
        let before = eval_perplexity(&model, &batcher, 32).expect("eval set is non-empty");

        let mut opt: Box<dyn Optimizer> = if use_apollo {
            // Rank = hidden/4, subspace re-seeded every 200 steps
            // (Algorithm 1 defaults).
            Box::new(Apollo::new(cfg.default_rank(), 200))
        } else {
            Box::new(AdamW::new())
        };
        let tc = TrainConfig {
            lr: if use_apollo { 1e-2 } else { 3e-3 },
            grad_clip: if use_apollo { None } else { Some(1.0) },
            ..TrainConfig::quick(200)
        };
        let log = pretrain(&mut model, opt.as_mut(), &mut batcher, &tc);

        println!(
            "{:<8} ppl {:>7.1} -> {:>6.1}   optimizer state: {:>9} f32 elems ({:.1} KiB)",
            log.optimizer,
            before,
            log.final_ppl,
            log.state_elems,
            log.state_bytes as f64 / 1024.0
        );
    }
    println!("\nAPOLLO matches AdamW's perplexity with a fraction of the optimizer state.");
}
