//! KV-cached incremental decode vs full graph forward: *bit-identical*
//! logits, across adversarial sequence lengths, prefill chunkings,
//! interleaved batches, linear-layer parameterizations, and thread counts.

use apollo_nn::{KvCache, LinearMode, LlamaModel, ModelConfig};
use apollo_tensor::{set_thread_override, Matrix, Rng};

fn assert_bits_eq(got: &Matrix, want: &Matrix, what: &str) {
    assert_eq!(got.shape(), want.shape(), "{what}: shape mismatch");
    for (idx, (g, w)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        assert!(
            g.to_bits() == w.to_bits(),
            "{what}: bit mismatch at flat index {idx}: got {g} ({:#010x}), want {w} ({:#010x})",
            g.to_bits(),
            w.to_bits()
        );
    }
}

fn random_tokens(n: usize, vocab: usize, rng: &mut Rng) -> Vec<u32> {
    (0..n).map(|_| rng.below(vocab) as u32).collect()
}

/// Feeds `tokens` through one cache in the given chunk sizes and returns
/// the logits of every position, stacked in order.
fn cached_logits_chunked(model: &LlamaModel, tokens: &[u32], chunks: &[usize]) -> Matrix {
    let mut caches = vec![model.new_kv_cache(tokens.len())];
    let vocab = model.config().vocab_size;
    let mut out = Matrix::zeros(tokens.len(), vocab);
    let mut fed = 0;
    for &c in chunks {
        let rows: Vec<(usize, u32)> = tokens[fed..fed + c].iter().map(|&t| (0, t)).collect();
        let hidden = model.forward_cached(&mut caches, &rows);
        let logits = model.lm_logits(&hidden);
        for r in 0..c {
            out.row_mut(fed + r).copy_from_slice(logits.row(r));
        }
        fed += c;
    }
    assert_eq!(fed, tokens.len(), "chunks must cover the sequence");
    assert_eq!(caches[0].len(), tokens.len());
    out
}

#[test]
fn token_at_a_time_decode_matches_full_forward() {
    let cfg = ModelConfig::test_tiny();
    let mut rng = Rng::seed_from_u64(0xDEC0);
    let model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
    // Adversarial lengths: single token, pair, odd prefix, full max_seq.
    for &len in &[1usize, 2, 5, cfg.max_seq] {
        let tokens = random_tokens(len, cfg.vocab_size, &mut rng);
        let full = model.full_logits(&tokens, 1);
        let chunks = vec![1usize; len];
        let inc = cached_logits_chunked(&model, &tokens, &chunks);
        assert_bits_eq(&inc, &full, &format!("len={len} one-by-one"));
    }
}

#[test]
fn chunked_prefill_matches_full_forward() {
    let cfg = ModelConfig::test_tiny();
    let mut rng = Rng::seed_from_u64(0xDEC1);
    let model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
    let tokens = random_tokens(cfg.max_seq, cfg.vocab_size, &mut rng);
    let full = model.full_logits(&tokens, 1);
    // Whole-sequence prefill, uneven chunks, and a prefill+decode split.
    for chunks in [vec![8], vec![3, 1, 4], vec![5, 1, 1, 1], vec![1, 7]] {
        let inc = cached_logits_chunked(&model, &tokens, &chunks);
        assert_bits_eq(&inc, &full, &format!("chunks={chunks:?}"));
    }
}

#[test]
// Indexing by `c`/`t` mirrors the (cache, position) addressing under test.
#[allow(clippy::needless_range_loop)]
fn interleaved_batch_matches_per_sequence_full_forward() {
    let cfg = ModelConfig::test_tiny();
    let mut rng = Rng::seed_from_u64(0xDEC2);
    let model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
    let batch = 3;
    let seq = cfg.max_seq;
    let seqs: Vec<Vec<u32>> = (0..batch)
        .map(|_| random_tokens(seq, cfg.vocab_size, &mut rng))
        .collect();

    // Reference: each sequence through the full forward on its own.
    let fulls: Vec<Matrix> = seqs.iter().map(|s| model.full_logits(s, 1)).collect();

    // Prefill 2 tokens per sequence in one interleaved call, then decode
    // the rest one position at a time across all sequences per call — the
    // continuous-batching access pattern.
    let mut caches: Vec<KvCache> = (0..batch).map(|_| model.new_kv_cache(seq)).collect();
    let mut got: Vec<Matrix> = (0..batch)
        .map(|_| Matrix::zeros(seq, cfg.vocab_size))
        .collect();
    let prefill: Vec<(usize, u32)> = (0..batch)
        .flat_map(|c| [(c, seqs[c][0]), (c, seqs[c][1])])
        .collect();
    let hidden = model.forward_cached(&mut caches, &prefill);
    let logits = model.lm_logits(&hidden);
    for c in 0..batch {
        got[c].row_mut(0).copy_from_slice(logits.row(2 * c));
        got[c].row_mut(1).copy_from_slice(logits.row(2 * c + 1));
    }
    for t in 2..seq {
        let rows: Vec<(usize, u32)> = (0..batch).map(|c| (c, seqs[c][t])).collect();
        let hidden = model.forward_cached(&mut caches, &rows);
        let logits = model.lm_logits(&hidden);
        for c in 0..batch {
            got[c].row_mut(t).copy_from_slice(logits.row(c));
        }
    }
    for c in 0..batch {
        assert_bits_eq(&got[c], &fulls[c], &format!("sequence {c}"));
    }
}

#[test]
fn lora_and_factored_models_decode_bit_identically() {
    let cfg = ModelConfig::test_tiny();
    let mut rng = Rng::seed_from_u64(0xDEC3);
    let modes = [
        LinearMode::LoRa {
            rank: 2,
            alpha: 4.0,
        },
        LinearMode::Factored { rank: 2 },
    ];
    for mode in modes {
        let mut model = LlamaModel::new(&cfg, mode, &mut rng);
        // Give LoRA `B` weight so the adapter path is actually nonzero.
        for p in &mut model.params {
            if p.name.ends_with(".lora_b") {
                p.value = Matrix::randn(p.value.rows(), p.value.cols(), &mut rng);
            }
        }
        let tokens = random_tokens(cfg.max_seq, cfg.vocab_size, &mut rng);
        let full = model.full_logits(&tokens, 1);
        let inc = cached_logits_chunked(&model, &tokens, &vec![1; cfg.max_seq]);
        assert_bits_eq(&inc, &full, &format!("{mode:?}"));
    }
}

#[test]
fn decode_is_thread_invariant() {
    // Wider geometry so the head matmul crosses shapes where kernels pick
    // different paths; the gemv/pooled results must still agree.
    let cfg = ModelConfig::tiny_60m();
    let mut rng = Rng::seed_from_u64(0xDEC4);
    let model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
    let tokens = random_tokens(24, cfg.vocab_size, &mut rng);
    set_thread_override(Some(1));
    let base = cached_logits_chunked(&model, &tokens, &[16, 1, 1, 1, 1, 1, 1, 1, 1]);
    for threads in [2, 8] {
        set_thread_override(Some(threads));
        let got = cached_logits_chunked(&model, &tokens, &[16, 1, 1, 1, 1, 1, 1, 1, 1]);
        assert_bits_eq(&got, &base, &format!("threads={threads}"));
    }
    set_thread_override(None);
    let full = model.full_logits(&tokens, 1);
    assert_bits_eq(&base, &full, "threads=1 vs full forward");
}
