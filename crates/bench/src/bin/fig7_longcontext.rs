//! Fig. 7: long-context pre-training (4× the default context window) on
//! the 350M proxy. AdamW gets a grid-searched LR; APOLLO/APOLLO-Mini get a
//! lazy α sweep at fixed LR 1e-2, as in §5.4-A5.

use apollo_bench::{print_table, scaled, write_json, Method, UPDATE_FREQ};
use apollo_data::{CorpusConfig, LmBatcher, SyntheticCorpus};
use apollo_nn::{LinearMode, LlamaModel, ModelConfig};
use apollo_optim::{AdamW, Apollo, Optimizer};
use apollo_tensor::Rng;
use apollo_train::{pretrain, RunLog, TrainConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Fig7Run {
    label: String,
    final_ppl: f32,
    log: RunLog,
}

fn run(
    cfg: &ModelConfig,
    opt: &mut dyn Optimizer,
    steps: usize,
    lr: f32,
    clip: Option<f32>,
) -> RunLog {
    let mut rng = Rng::seed_from_u64(42);
    let mut model = LlamaModel::new(cfg, LinearMode::Dense, &mut rng);
    let corpus = SyntheticCorpus::new(CorpusConfig::with_vocab(cfg.vocab_size));
    let mut batcher = LmBatcher::new(corpus, 1, cfg.max_seq);
    let tc = TrainConfig {
        lr,
        grad_clip: clip,
        eval_every: (steps / 4).max(1),
        ..TrainConfig::quick(steps)
    };
    pretrain(&mut model, opt, &mut batcher, &tc)
}

fn main() {
    // 4× the proxy's default 64-token window (the paper goes 256 → 1024).
    let mut cfg = ModelConfig::tiny_350m();
    cfg.max_seq = 256;
    cfg.name = "tiny-350m-long".to_string();
    let steps = scaled(100);
    let rank = cfg.default_rank();
    let mini_alpha = Method::mini_alpha(&cfg);

    let mut results = Vec::new();
    for lr in [3e-3f32, 1e-2] {
        eprintln!("[fig7] AdamW lr={lr} ...");
        let log = run(&cfg, &mut AdamW::new(), steps, lr, Some(1.0));
        results.push(Fig7Run {
            label: format!("AdamW (lr={lr})"),
            final_ppl: log.final_ppl,
            log,
        });
    }
    for alpha_sq in [1.0f32, 2.0, 3.0] {
        eprintln!("[fig7] APOLLO alpha=sqrt({alpha_sq}) ...");
        let mut opt = Apollo::new(rank, UPDATE_FREQ).with_alpha(alpha_sq.sqrt());
        let log = run(&cfg, &mut opt, steps, 1e-2, None);
        results.push(Fig7Run {
            label: format!("APOLLO (α=√{alpha_sq})"),
            final_ppl: log.final_ppl,
            log,
        });
    }
    for mult in [1.0f32, 2.0, 3.0] {
        let alpha = mini_alpha * mult.sqrt();
        eprintln!("[fig7] APOLLO-Mini alpha={alpha:.2} ...");
        let mut opt = Apollo::mini(UPDATE_FREQ).with_alpha(alpha);
        let log = run(&cfg, &mut opt, steps, 1e-2, None);
        results.push(Fig7Run {
            label: format!("APOLLO-Mini (α={alpha:.1})"),
            final_ppl: log.final_ppl,
            log,
        });
    }

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| vec![r.label.clone(), format!("{:.2}", r.final_ppl)])
        .collect();
    print_table(
        &format!(
            "Fig. 7 — long-context (seq {} = 4x base), {} steps",
            cfg.max_seq, steps
        ),
        &["Run", "Val ppl"],
        &rows,
    );
    let best = |prefix: &str| {
        results
            .iter()
            .filter(|r| r.label.starts_with(prefix))
            .map(|r| r.final_ppl)
            .fold(f32::MAX, f32::min)
    };
    println!(
        "\nBest-of-sweep: AdamW {:.2} | APOLLO {:.2} | APOLLO-Mini {:.2}",
        best("AdamW"),
        best("APOLLO ("),
        best("APOLLO-Mini")
    );
    println!("Paper shape: both APOLLO variants match or beat grid-searched AdamW.");
    write_json("fig7_longcontext", &results);
}
