//! Tape-based reverse-mode automatic differentiation over
//! [`apollo_tensor::Matrix`] values.
//!
//! A [`Graph`] records operations as they execute (define-by-run, like
//! PyTorch). Higher-rank activations are flattened to 2-D: a batch of token
//! embeddings is a `(batch·seq) × hidden` matrix, and the attention /
//! rotary ops take the `(batch, seq, heads)` geometry as explicit arguments.
//!
//! The op set is exactly what a LLaMA-style decoder needs: matmul, add,
//! elementwise mul, SiLU, RMSNorm, rotary position embedding, fused causal
//! multi-head attention, row gather (embedding lookup / last-token select),
//! and fused softmax cross-entropy.
//!
//! # Example
//!
//! ```
//! use apollo_autograd::Graph;
//! use apollo_tensor::Matrix;
//!
//! let mut g = Graph::new();
//! let x = g.input(Matrix::from_rows(&[&[1.0, 2.0]]));
//! let w = g.param(Matrix::from_rows(&[&[3.0], &[4.0]]));
//! let y = g.matmul(x, w); // 1x1: [11]
//! let loss = g.sum(y);
//! g.backward(loss);
//! assert_eq!(g.grad(w).as_slice(), &[1.0, 2.0]);
//! ```

mod graph;

pub use graph::{Graph, NodeId};
