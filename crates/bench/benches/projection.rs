//! Criterion micro-benchmark: SVD vs random projection cost (the heart of
//! the paper's throughput argument, Fig. 9 / §A.3).

use apollo_optim::{ProjKind, Projector};
use apollo_tensor::linalg::{randomized_svd, svd_jacobi};
use apollo_tensor::{Matrix, Rng};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_projection(c: &mut Criterion) {
    let mut rng = Rng::seed_from_u64(2);
    let g = Matrix::randn(128, 512, &mut rng);
    let r = 32;

    let mut group = c.benchmark_group("projection_128x512_r32");
    group.bench_function("random_project", |b| {
        let mut p = Projector::new(ProjKind::Random, r, 200, 1);
        p.begin_step(&g);
        b.iter(|| p.project(&g))
    });
    group.bench_function("random_refresh_and_project", |b| {
        // Refresh every step: still just a reseed + regeneration.
        let mut p = Projector::new(ProjKind::Random, r, 1, 1);
        b.iter(|| {
            p.begin_step(&g);
            p.project(&g)
        })
    });
    group.bench_function("svd_refresh_jacobi", |b| b.iter(|| svd_jacobi(&g)));
    group.bench_function("svd_refresh_randomized", |b| {
        let mut rng2 = Rng::seed_from_u64(3);
        b.iter(|| randomized_svd(&g, r, 8, 1, &mut rng2))
    });
    group.finish();
}

/// Short sampling profile: the reproduction sandbox has a single CPU
/// core, so favour wall-clock over statistical depth.
fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_projection
}
criterion_main!(benches);
