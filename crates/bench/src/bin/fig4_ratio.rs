//! Fig. 4 / Fig. 8: the channel-wise scaling-factor ratio follows
//! √(n/r) (Theorem A.4).
//!
//! One model is trained with the full-rank structured rule (the golden
//! `s_j`); at every step the *same gradient stream* also feeds passive
//! APOLLO probes at ranks n/8 and n/4, whose updates are discarded. The
//! per-channel ratios `s_j^R / s_j` should concentrate around √(r/n)
//! (≈ 0.354 and 0.5), i.e. the paper's 1 : √2 : 2√2 pattern.

use apollo_bench::{print_table, scaled, write_json, UPDATE_FREQ};
use apollo_data::{CorpusConfig, LmBatcher, SyntheticCorpus};
use apollo_nn::{LinearMode, LlamaModel, ModelConfig, ParamKind};
use apollo_optim::{AdamWChannelwise, Apollo, Optimizer, ParamUpdate};
use apollo_tensor::Rng;
use serde::Serialize;

#[derive(Serialize)]
struct LayerRatio {
    param: String,
    expected: f32,
    measured_mean: f32,
    measured_p10: f32,
    measured_p90: f32,
    rank: usize,
}

fn step_with(
    opt: &mut dyn Optimizer,
    model: &mut LlamaModel,
    grads: &[Option<apollo_tensor::Matrix>],
    lr: f32,
) {
    let mut updates: Vec<ParamUpdate<'_>> = Vec::new();
    for (p, g) in model.params.iter_mut().zip(grads) {
        if let Some(grad) = g.as_ref() {
            updates.push(ParamUpdate {
                name: &p.name,
                value: &mut p.value,
                grad,
                projectable: p.kind == ParamKind::Projectable,
            });
        }
    }
    opt.step(&mut updates, lr);
}

fn main() {
    let cfg = ModelConfig::tiny_350m(); // hidden 128
    let steps = scaled(60);
    let ranks = [cfg.hidden / 8, cfg.hidden / 4]; // 16, 32
    let mut rng = Rng::seed_from_u64(7);
    let mut model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
    // Probe copies receive identical gradients; their updated weights are
    // never used, so the trajectory is governed by the golden optimizer.
    let mut probes: Vec<(LlamaModel, Apollo)> = ranks
        .iter()
        .map(|&r| (model.clone(), Apollo::new(r, UPDATE_FREQ).without_limiter()))
        .collect();
    let mut golden = AdamWChannelwise::new().without_limiter();

    let corpus = SyntheticCorpus::new(CorpusConfig::with_vocab(cfg.vocab_size));
    let mut batcher = LmBatcher::new(corpus, 4, cfg.max_seq);
    for step in 0..steps {
        let (tokens, targets) = batcher.next_batch();
        let (_, grads) = model.loss_and_grads(&tokens, &targets, 4);
        for (pm, popt) in probes.iter_mut() {
            step_with(popt, pm, &grads, 1e-9); // negligible probe updates
        }
        step_with(&mut golden, &mut model, &grads, 1e-2);
        if step % 20 == 0 {
            eprintln!("[fig4] step {step}/{steps}");
        }
    }

    // Compare scales on projectable params. Note the golden optimizer's
    // ParamUpdate indices line up with the probes' (same param list).
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let trainable: Vec<usize> = model
        .params
        .iter()
        .enumerate()
        .filter(|(_, p)| p.trainable)
        .map(|(i, _)| i)
        .collect();
    for (probe_idx, &rank) in ranks.iter().enumerate() {
        let expected = (rank as f32 / cfg.hidden as f32).sqrt();
        let apollo = &probes[probe_idx].1;
        for (upd_idx, &pi) in trainable.iter().enumerate() {
            let p = &model.params[pi];
            if p.kind != ParamKind::Projectable || !p.name.contains("layers.1.") {
                continue; // one representative layer keeps the table small
            }
            let golden_s = &golden.last_scales[upd_idx];
            let apollo_s = &apollo.last_scales[upd_idx];
            if golden_s.is_empty() || apollo_s.len() != golden_s.len() {
                continue;
            }
            let mut ratios: Vec<f32> = golden_s
                .iter()
                .zip(apollo_s)
                .filter(|(g, _)| **g > 1e-12)
                .map(|(g, a)| a / g)
                .collect();
            ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mean = ratios.iter().sum::<f32>() / ratios.len() as f32;
            let p10 = ratios[ratios.len() / 10];
            let p90 = ratios[ratios.len() * 9 / 10];
            rows.push(vec![
                p.name.clone(),
                format!("{rank}"),
                format!("{expected:.3}"),
                format!("{mean:.3}"),
                format!("[{p10:.3}, {p90:.3}]"),
            ]);
            json_rows.push(LayerRatio {
                param: p.name.clone(),
                expected,
                measured_mean: mean,
                measured_p10: p10,
                measured_p90: p90,
                rank,
            });
        }
    }
    print_table(
        &format!(
            "Fig. 4 — scaling-factor ratio s^R/s vs √(r/n) ({}, n = {})",
            cfg.name, cfg.hidden
        ),
        &["Param (layer 1)", "r", "√(r/n)", "mean ratio", "[p10, p90]"],
        &rows,
    );
    println!("\nPaper shape: ratios track √(r/n) (≈0.354 at n/8, 0.5 at n/4) across layer types.");
    write_json("fig4_ratio", &json_rows);
}
