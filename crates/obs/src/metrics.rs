//! In-memory metrics registry: named counters, gauges, and histograms.
//!
//! The registry is deliberately tiny — `BTreeMap`s keyed by `&'static`-ish
//! names, updated under the [`crate::Obs`] mutex — because at proxy scale a
//! metric update happens a handful of times per multi-millisecond step.
//! Deterministic iteration order (BTree) keeps rendered summaries stable
//! across runs.

use std::collections::BTreeMap;

/// Streaming summary of an observed distribution: count, sum, min, max.
///
/// No buckets are kept — the JSONL trace carries the raw per-step values
/// for anything that needs a real distribution, so the in-memory histogram
/// only answers "how many, how big, what range".
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Histogram {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
}

impl Histogram {
    /// Records one sample. Non-finite samples are dropped — a NaN must not
    /// poison the running sum (the sentinel counters track those).
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Named counters, gauges, and histograms.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter (creating it at 0).
    pub fn inc(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets the named gauge to its latest value.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Records a sample into the named histogram.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Latest value of a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Summary of a histogram.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.histograms.get(name).copied()
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, Histogram)> {
        self.histograms.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::new();
        m.inc("steps", 1);
        m.inc("steps", 2);
        assert_eq!(m.counter("steps"), 3);
        assert_eq!(m.counter("absent"), 0);
    }

    #[test]
    fn gauges_keep_latest() {
        let mut m = MetricsRegistry::new();
        m.set_gauge("loss", 5.0);
        m.set_gauge("loss", 4.0);
        assert_eq!(m.gauge("loss"), Some(4.0));
        assert_eq!(m.gauge("absent"), None);
    }

    #[test]
    fn histogram_tracks_range_and_mean() {
        let mut h = Histogram::default();
        for v in [2.0, 4.0, 6.0] {
            h.record(v);
        }
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 2.0);
        assert_eq!(h.max, 6.0);
        assert_eq!(h.mean(), 4.0);
    }

    #[test]
    fn histogram_drops_non_finite() {
        let mut h = Histogram::default();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count, 0);
        h.record(1.0);
        assert_eq!(h.count, 1);
        assert_eq!(h.mean(), 1.0);
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut m = MetricsRegistry::new();
        m.inc("b", 1);
        m.inc("a", 1);
        let names: Vec<&str> = m.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
