//! The paper's contribution: **APOLLO** and **APOLLO-Mini**, plus every
//! baseline optimizer they are evaluated against.
//!
//! # The idea (Sections 3-4 of the paper)
//!
//! AdamW's update `W ← W − η·M̂/(√V̂+ε)` can be rewritten as SGD with an
//! element-wise *gradient scaling factor* `S = G̃/G`. The paper shows this
//! factor can be coarsened to one scalar per **channel** (column/row along
//! the larger tensor dimension) or even per **tensor** without hurting LLM
//! training. APOLLO then estimates those coarse factors in a low-rank
//! auxiliary space: project `R = P·G` with a *random* projection
//! (`P ~ N(0, 1/r)`, regenerated from a stored seed every `T` steps), run
//! AdamW moments on `R` only, and scale the raw full-rank gradient by
//! `s_j = ‖R̃[:,j]‖/‖R[:,j]‖`. Optimizer state shrinks from `2mn` to
//! `2nr + 2`; with rank 1 and tensor-wise scaling (APOLLO-Mini) it is
//! `2n + 2` — SGD-level memory.
//!
//! # Provided optimizers
//!
//! | Type | Paper role |
//! |---|---|
//! | [`Apollo`] | the contribution (channel-wise, random projection) |
//! | [`Apollo::mini`] | APOLLO-Mini (rank-1, tensor-wise, α=√128) |
//! | [`AdamW`] | the de-facto baseline (also 8-bit variant) |
//! | [`AdamWChannelwise`] | Section 3 structured-LR study (Fig. 3) |
//! | [`GaLore`] | low-rank gradient projection baseline (also 8-bit) |
//! | [`Fira`] | GaLore + full-rank residual baseline |
//! | [`Flora`] | random-projection momentum compression baseline |
//! | [`AdamMini`] | block-wise second-moment baseline (Adam-mini) |
//! | [`Sgd`] / [`SgdMomentum`] | memory floor reference |
//!
//! All optimizers implement [`Optimizer`] and report their true optimizer
//! state footprint via [`Optimizer::state_elems`], which the tests check
//! against the closed-form Table 1 formulas in [`memory`].
//!
//! # Example
//!
//! ```
//! use apollo_optim::{Apollo, Optimizer, ParamUpdate};
//! use apollo_tensor::{Matrix, Rng};
//!
//! let mut rng = Rng::seed_from_u64(0);
//! let mut w = Matrix::randn(8, 32, &mut rng);
//! let g = Matrix::randn(8, 32, &mut rng);
//! let mut opt = Apollo::new(4, 200); // rank 4, re-seed every 200 steps
//! let before = w.clone();
//! opt.step(
//!     &mut [ParamUpdate { name: "w", value: &mut w, grad: &g, projectable: true }],
//!     1e-2,
//! );
//! assert_ne!(w, before);
//! ```

mod adamini;
mod adamw;
mod apollo;
mod galore;
mod limiter;
pub mod memory;
mod projector;
mod sgd;
pub mod state;

pub use adamini::AdamMini;
pub use adamw::{AdamW, AdamWChannelwise};
pub use apollo::{Apollo, ScaleGranularity};
pub use galore::{Fira, Flora, GaLore};
pub use limiter::{LimiterOutcome, NormGrowthLimiter};
pub use projector::{ProjKind, Projector};
pub use sgd::{Sgd, SgdMomentum};

use apollo_tensor::{fused, Matrix};

/// One parameter's view for an optimizer step: current value, fresh
/// gradient, and whether the low-rank projection path applies (2-D
/// attention/MLP weights) or the dense fallback must be used (norm gains,
/// embeddings — matching the official GaLore/APOLLO implementations).
#[derive(Debug)]
pub struct ParamUpdate<'a> {
    /// Parameter name (stable across steps).
    pub name: &'a str,
    /// Parameter tensor, updated in place.
    pub value: &'a mut Matrix,
    /// Gradient of the loss w.r.t. the parameter.
    pub grad: &'a Matrix,
    /// Whether this tensor is eligible for low-rank treatment.
    pub projectable: bool,
}

/// A stateful first-order optimizer.
///
/// Implementations lazily allocate per-parameter state on the first call;
/// callers must pass the **same parameters in the same order** every step.
pub trait Optimizer {
    /// Short human-readable name (used in experiment tables).
    fn name(&self) -> String;

    /// Applies one update step with learning rate `lr` (schedules are the
    /// caller's job).
    fn step(&mut self, params: &mut [ParamUpdate<'_>], lr: f32);

    /// Number of f32-equivalent *optimizer state* elements currently held
    /// (moments, projection matrices, per-tensor scalars). Zero before the
    /// first step.
    fn state_elems(&self) -> usize;

    /// Bytes of optimizer state; defaults to `4 × state_elems`, overridden
    /// by quantized-state optimizers.
    fn state_bytes(&self) -> usize {
        4 * self.state_elems()
    }

    /// Drops all per-parameter state, re-initializing lazily on the next
    /// step. Used by ReLoRA's periodic adapter merges, which invalidate the
    /// old moments.
    fn reset_state(&mut self) {}

    /// Serializes the optimizer's complete mutable state (moments,
    /// projector seeds/steps/bases, limiter scalars) into the
    /// [`state`] binary format, so training resumes **bit-exactly** from a
    /// crash-safe checkpoint. The serialized form embeds [`Optimizer::name`]
    /// and is only loadable into an identically-configured optimizer.
    ///
    /// The default implementation reports the optimizer as
    /// non-checkpointable; every optimizer shipped in this crate overrides
    /// it.
    fn state_save(&self) -> Result<Vec<u8>, String> {
        Err(format!(
            "optimizer `{}` does not support state checkpointing",
            self.name()
        ))
    }

    /// Restores state captured by [`Optimizer::state_save`]. Errors (leaving
    /// existing state untouched) on a name mismatch, layout-version
    /// mismatch, truncation, or trailing bytes.
    fn state_load(&mut self, _bytes: &[u8]) -> Result<(), String> {
        Err(format!(
            "optimizer `{}` does not support state checkpointing",
            self.name()
        ))
    }

    /// Attaches an observability handle. Instrumented optimizers (APOLLO,
    /// GaLore/Fira, channel-wise AdamW) keep the handle and emit
    /// projector-refresh, limiter-clip, and channel-scale events through
    /// it; the default implementation drops it, so plain optimizers pay
    /// nothing. A disabled handle (`Obs::disabled()`) is equally free.
    fn attach_observer(&mut self, _obs: apollo_obs::Obs) {}
}

/// Writes the shared `state_save` header: optimizer name + layout version.
pub(crate) fn save_state_header(w: &mut state::StateWriter, name: &str) {
    w.str(name);
    w.u8(1);
}

/// Validates the shared header against the loading optimizer's name.
pub(crate) fn check_state_header(r: &mut state::StateReader<'_>, name: &str) -> Result<(), String> {
    let tag = r.str()?;
    if tag != name {
        return Err(format!("optimizer state is for `{tag}`, not `{name}`"));
    }
    match r.u8()? {
        1 => Ok(()),
        v => Err(format!("unknown `{name}` state layout version {v}")),
    }
}

/// Shared helper: channel-wise norm-ratio scaling factors.
///
/// Computes `s_c = ‖num[c]‖₂ / ‖den[c]‖₂` per channel, where channels are
/// columns when `along_cols` (the `m ≤ n` case of Eq. 5) or rows otherwise.
/// Channels with zero denominator get factor 0 (their update is zero
/// anyway).
pub(crate) fn norm_ratio_scales(num: &Matrix, den: &Matrix, along_cols: bool) -> Vec<f32> {
    let (n_num, n_den) = if along_cols {
        (num.col_norms(), den.col_norms())
    } else {
        (num.row_norms(), den.row_norms())
    };
    n_num
        .iter()
        .zip(&n_den)
        .map(|(&a, &b)| if b > 1e-30 { a / b } else { 0.0 })
        .collect()
}

/// Shared helper: bias-corrected AdamW moment state for one tensor,
/// optionally stored block-wise INT8-quantized (8-bit Adam / 8-bit GaLore).
#[derive(Debug, Clone)]
pub(crate) struct AdamMoments {
    m: Matrix,
    v: Matrix,
    t: u32,
    /// INT8 group size; `None` keeps full-precision state.
    quant_group: Option<usize>,
    /// Scratch holding the most recent normalized update. Purely a reused
    /// allocation — not optimizer state, so excluded from
    /// [`AdamMoments::elems`]/[`AdamMoments::bytes`] and from save/load.
    upd: Matrix,
}

impl AdamMoments {
    pub(crate) fn new(rows: usize, cols: usize) -> Self {
        AdamMoments {
            m: Matrix::zeros(rows, cols),
            v: Matrix::zeros(rows, cols),
            t: 0,
            quant_group: None,
            upd: Matrix::zeros(0, 0),
        }
    }

    pub(crate) fn new_quantized(rows: usize, cols: usize, group: usize) -> Self {
        AdamMoments {
            quant_group: Some(group),
            ..Self::new(rows, cols)
        }
    }

    /// Updates the moments with gradient `g` and returns the bias-corrected
    /// normalized update `M̂ / (√V̂ + ε)`.
    ///
    /// Full-precision state goes through the single-pass
    /// [`fused::fused_adam_moments`] kernel (bit-identical to the staged
    /// EMA + zip path). Quantized variants keep the staged path: they
    /// round-trip the moments through INT8 after each update, so the
    /// persistent state is exactly what an 8-bit optimizer would hold.
    pub(crate) fn update(&mut self, g: &Matrix, beta1: f32, beta2: f32, eps: f32) -> &Matrix {
        self.t += 1;
        let bc1 = 1.0 - beta1.powi(self.t as i32);
        let bc2 = 1.0 - beta2.powi(self.t as i32);
        if let Some(group) = self.quant_group {
            self.m.ema_assign(beta1, g);
            self.v.ema_square_assign(beta2, g);
            // Companded (nonlinear) code, as real 8-bit optimizers use —
            // linear absmax INT8 would zero small second-moment entries.
            let m = apollo_quant::fake_quantize_companded(&self.m, group, 0.5);
            std::mem::replace(&mut self.m, m).recycle();
            let mut v = apollo_quant::fake_quantize_companded(&self.v, group, 0.25);
            // v is non-negative by construction; keep it that way.
            v.map_assign(|x| x.max(0.0));
            std::mem::replace(&mut self.v, v).recycle();
            self.upd.zip_map_from(&self.m, &self.v, |m, v| {
                (m / bc1) / ((v / bc2).sqrt() + eps)
            });
        } else {
            fused::fused_adam_moments(
                &mut self.m,
                &mut self.v,
                &mut self.upd,
                g,
                beta1,
                beta2,
                bc1,
                bc2,
                eps,
            );
        }
        &self.upd
    }

    /// Fully fused AdamW tensor step: moment EMAs, bias correction,
    /// decoupled weight decay, and the weight write in one traversal, with
    /// no normalized-update temporary. Quantized state takes the staged
    /// path, since the INT8 round-trip must interpose between the moment
    /// update and the weight write.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn step_weight(
        &mut self,
        w: &mut Matrix,
        g: &Matrix,
        beta1: f32,
        beta2: f32,
        eps: f32,
        lr: f32,
        weight_decay: f32,
    ) {
        // `decay = 1.0` is a bit-exact no-op multiply, matching the staged
        // path that skips `scale_assign` entirely when decay is off.
        let decay = if weight_decay > 0.0 {
            1.0 - lr * weight_decay
        } else {
            1.0
        };
        if self.quant_group.is_none() {
            self.t += 1;
            let bc1 = 1.0 - beta1.powi(self.t as i32);
            let bc2 = 1.0 - beta2.powi(self.t as i32);
            fused::fused_adam_update(
                w,
                g,
                &mut self.m,
                &mut self.v,
                beta1,
                beta2,
                bc1,
                bc2,
                eps,
                lr,
                decay,
            );
        } else {
            let update = self.update(g, beta1, beta2, eps);
            fused::fused_axpy_chain(w, decay, -lr, update);
        }
    }

    /// State footprint in f32-equivalent *elements*: the two moment tensors.
    pub(crate) fn elems(&self) -> usize {
        self.m.len() + self.v.len()
    }

    /// State footprint in bytes, honouring INT8 storage (1 byte/element plus
    /// one f32 scale per group).
    pub(crate) fn bytes(&self) -> usize {
        match self.quant_group {
            None => 4 * self.elems(),
            Some(group) => {
                let per = |len: usize| len + 4 * len.div_ceil(group);
                per(self.m.len()) + per(self.v.len())
            }
        }
    }

    pub(crate) fn save_into(&self, w: &mut state::StateWriter) {
        w.matrix(&self.m);
        w.matrix(&self.v);
        w.u32(self.t);
        w.opt_u64(self.quant_group.map(|g| g as u64));
    }

    pub(crate) fn load_from(r: &mut state::StateReader<'_>) -> Result<Self, String> {
        let m = r.matrix()?;
        let v = r.matrix()?;
        if m.shape() != v.shape() {
            return Err(format!(
                "moment shape mismatch: m {:?} vs v {:?}",
                m.shape(),
                v.shape()
            ));
        }
        let t = r.u32()?;
        let quant_group = r.opt_u64()?.map(|g| g as usize);
        Ok(AdamMoments {
            m,
            v,
            t,
            quant_group,
            upd: Matrix::zeros(0, 0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apollo_tensor::Rng;

    #[test]
    fn adam_moments_single_step_matches_hand_math() {
        let mut st = AdamMoments::new(1, 2);
        let g = Matrix::from_rows(&[&[0.5, -1.0]]);
        let upd = st.update(&g, 0.9, 0.999, 1e-8);
        // After one step the bias-corrected update is g/(|g|+eps) ≈ sign(g).
        assert!((upd.get(0, 0) - 1.0).abs() < 1e-3, "{}", upd.get(0, 0));
        assert!((upd.get(0, 1) + 1.0).abs() < 1e-3, "{}", upd.get(0, 1));
    }

    #[test]
    fn norm_ratio_scales_cols_and_rows() {
        let num = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]);
        let den = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert_eq!(norm_ratio_scales(&num, &den, true), vec![2.0, 4.0]);
        assert_eq!(norm_ratio_scales(&num, &den, false), vec![2.0, 4.0]);
    }

    #[test]
    fn norm_ratio_scales_zero_denominator_is_zero() {
        let num = Matrix::from_rows(&[&[1.0], &[1.0]]);
        let den = Matrix::zeros(2, 1);
        assert_eq!(norm_ratio_scales(&num, &den, true), vec![0.0]);
    }

    #[test]
    fn crate_example_runs() {
        let mut rng = Rng::seed_from_u64(0);
        let mut w = Matrix::randn(8, 32, &mut rng);
        let g = Matrix::randn(8, 32, &mut rng);
        let mut opt = Apollo::new(4, 200);
        let before = w.clone();
        opt.step(
            &mut [ParamUpdate {
                name: "w",
                value: &mut w,
                grad: &g,
                projectable: true,
            }],
            1e-2,
        );
        assert_ne!(w, before);
    }
}
