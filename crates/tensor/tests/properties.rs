//! Property-based tests of the tensor kernels.

use apollo_tensor::bf16::{bf16_decode, bf16_encode, bf16_pack, bf16_round, bf16_unpack};
use apollo_tensor::linalg::{qr_thin, svd_jacobi};
use apollo_tensor::{Matrix, Rng};
use proptest::prelude::*;

fn arb_matrix(max_m: usize, max_n: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_m, 1..=max_n, any::<u64>()).prop_map(|(m, n, seed)| {
        let mut rng = Rng::seed_from_u64(seed);
        Matrix::randn(m, n, &mut rng)
    })
}

fn close(a: &Matrix, b: &Matrix, tol: f32) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_distributes_over_addition(seed in any::<u64>(), m in 1usize..8, k in 1usize..8, n in 1usize..8) {
        let mut rng = Rng::seed_from_u64(seed);
        let a = Matrix::randn(m, k, &mut rng);
        let b = Matrix::randn(k, n, &mut rng);
        let c = Matrix::randn(k, n, &mut rng);
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(close(&lhs, &rhs, 1e-4));
    }

    #[test]
    fn transpose_reverses_matmul(seed in any::<u64>(), m in 1usize..8, k in 1usize..8, n in 1usize..8) {
        let mut rng = Rng::seed_from_u64(seed);
        let a = Matrix::randn(m, k, &mut rng);
        let b = Matrix::randn(k, n, &mut rng);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(close(&lhs, &rhs, 1e-4));
    }

    #[test]
    fn trans_variants_agree_with_explicit_transpose(m in arb_matrix(8, 8), seed in any::<u64>()) {
        let mut rng = Rng::seed_from_u64(seed);
        let other = Matrix::randn(m.rows(), m.cols(), &mut rng);
        prop_assert!(close(
            &m.matmul_transb(&other),
            &m.matmul(&other.transpose()),
            1e-4
        ));
        prop_assert!(close(
            &m.matmul_transa(&other),
            &m.transpose().matmul(&other),
            1e-4
        ));
    }

    #[test]
    fn fro_norm_is_subadditive(a in arb_matrix(6, 6), seed in any::<u64>()) {
        let mut rng = Rng::seed_from_u64(seed);
        let b = Matrix::randn(a.rows(), a.cols(), &mut rng);
        prop_assert!(a.add(&b).fro_norm() <= a.fro_norm() + b.fro_norm() + 1e-4);
    }

    #[test]
    fn col_norms_square_sum_to_fro_norm_square(m in arb_matrix(8, 8)) {
        let total: f32 = m.col_norms().iter().map(|&n| n * n).sum();
        let fro2 = m.fro_norm().powi(2);
        prop_assert!((total - fro2).abs() <= 1e-3 * (1.0 + fro2));
    }

    #[test]
    fn scale_cols_matches_diag_right_multiply(m in arb_matrix(6, 6), seed in any::<u64>()) {
        let mut rng = Rng::seed_from_u64(seed);
        let s: Vec<f32> = (0..m.cols()).map(|_| rng.uniform_in(-2.0, 2.0)).collect();
        let mut scaled = m.clone();
        scaled.scale_cols(&s);
        let mut diag = Matrix::zeros(m.cols(), m.cols());
        for (i, &v) in s.iter().enumerate() {
            diag.set(i, i, v);
        }
        prop_assert!(close(&scaled, &m.matmul(&diag), 1e-4));
    }

    #[test]
    fn ema_interpolates(beta in 0.0f32..1.0, seed in any::<u64>()) {
        // β·a + (1−β)·b lies between min and max elementwise.
        let mut rng = Rng::seed_from_u64(seed);
        let a = Matrix::randn(3, 3, &mut rng);
        let b = Matrix::randn(3, 3, &mut rng);
        let mut e = a.clone();
        e.ema_assign(beta, &b);
        for ((&x, &y), &z) in a.as_slice().iter().zip(b.as_slice()).zip(e.as_slice()) {
            let (lo, hi) = (x.min(y), x.max(y));
            prop_assert!(z >= lo - 1e-5 && z <= hi + 1e-5);
        }
    }

    #[test]
    fn qr_q_orthonormal_and_reconstructs(seed in any::<u64>(), m in 2usize..12, n in 1usize..8) {
        prop_assume!(m >= n);
        let mut rng = Rng::seed_from_u64(seed);
        let a = Matrix::randn(m, n, &mut rng);
        let (q, r) = qr_thin(&a);
        prop_assert!(close(&q.matmul(&r), &a, 1e-3));
        prop_assert!(close(&q.matmul_transa(&q), &Matrix::identity(n), 1e-3));
    }

    #[test]
    fn svd_singular_values_bound_the_spectral_action(m in arb_matrix(8, 8), seed in any::<u64>()) {
        // ‖A·x‖ ≤ σ_max·‖x‖ for any x.
        let f = svd_jacobi(&m);
        let sigma_max = f.s.first().copied().unwrap_or(0.0);
        let mut rng = Rng::seed_from_u64(seed);
        let x = Matrix::randn(m.cols(), 1, &mut rng);
        let ax = m.matmul(&x);
        prop_assert!(ax.fro_norm() <= sigma_max * x.fro_norm() * (1.0 + 1e-3) + 1e-4);
    }

    #[test]
    fn rng_uniform_stays_in_range(seed in any::<u64>()) {
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..100 {
            let u = rng.uniform();
            prop_assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn randn_scaled_matches_scaled_randn(seed in any::<u64>(), std in 0.01f32..10.0) {
        let mut r1 = Rng::seed_from_u64(seed);
        let mut r2 = Rng::seed_from_u64(seed);
        let a = Matrix::randn_scaled(3, 4, std, &mut r1);
        let b = Matrix::randn(3, 4, &mut r2).scale(std);
        prop_assert!(close(&a, &b, 1e-5));
    }

    #[test]
    fn bf16_pack_unpack_roundtrips_every_bit_pattern(
        // Raw bit patterns: covers normals, subnormals, ±0, ±Inf, and NaNs;
        // lengths 0..67 include odd and non-multiple-of-8 sizes.
        bits in proptest::collection::vec(any::<u32>(), 0..67),
    ) {
        let xs: Vec<f32> = bits.iter().map(|&b| f32::from_bits(b)).collect();
        let packed = bf16_pack(&xs);
        prop_assert_eq!(packed.len(), xs.len() * 2);
        let un = bf16_unpack(&packed);
        prop_assert_eq!(un.len(), xs.len());
        for (&x, &d) in xs.iter().zip(&un) {
            if x.is_nan() {
                // NaN payloads are not preserved, but NaN-ness and sign are
                // (and never collapse to infinity).
                prop_assert!(d.is_nan(), "NaN {:#x} decoded to {d}", x.to_bits());
                prop_assert_eq!(d.is_sign_negative(), x.is_sign_negative());
            } else {
                // decode∘encode is exactly round-to-nearest-even at bf16.
                prop_assert_eq!(d.to_bits(), bf16_round(x).to_bits());
            }
        }
        // Unpacked values are exactly representable: re-packing is identity.
        prop_assert_eq!(bf16_pack(&un), packed);
    }

    #[test]
    fn bf16_subnormals_round_within_one_storage_ulp(
        mant in 1u32..0x80_0000,
        neg in any::<bool>(),
    ) {
        // `from_bits` of a bare mantissa is exactly the f32 subnormal range
        // (2^-149 ..= (1-2^-23)·2^-126), all below the smallest bf16
        // normal: the round-trip may flush toward zero but never by more
        // than one bf16 subnormal step (2^-133), and never flips sign.
        let mag = f32::from_bits(mant);
        let x = if neg { -mag } else { mag };
        let d = bf16_decode(bf16_encode(x));
        prop_assert!((d - x).abs() <= 2f32.powi(-133), "{x:e} -> {d:e}");
        prop_assert!(d == 0.0 || d.is_sign_negative() == x.is_sign_negative());
    }
}

#[test]
fn bf16_specials_roundtrip_through_encode() {
    assert_eq!(bf16_decode(bf16_encode(f32::INFINITY)), f32::INFINITY);
    assert_eq!(
        bf16_decode(bf16_encode(f32::NEG_INFINITY)),
        f32::NEG_INFINITY
    );
    assert_eq!(bf16_decode(bf16_encode(0.0)).to_bits(), 0);
    assert_eq!(
        bf16_decode(bf16_encode(-0.0)).to_bits(),
        (-0.0f32).to_bits()
    );
    // Adversarial NaN whose payload sits entirely in the truncated low 16
    // mantissa bits: naive truncation would decode it as infinity.
    for bits in [0x7F80_0001u32, 0xFF80_0001, 0x7F80_FFFF] {
        let x = f32::from_bits(bits);
        assert!(x.is_nan());
        let d = bf16_decode(bf16_encode(x));
        assert!(d.is_nan(), "{bits:#x} decoded to {d}");
    }
    // f32::MAX is above the largest bf16; round-to-nearest sends it to ∞.
    assert_eq!(bf16_decode(bf16_encode(f32::MAX)), f32::INFINITY);
}
