//! Table 5: fine-tuning on the four MMLU domain stand-ins with a small
//! learning-rate sweep per method (the paper sweeps nine LRs; the proxy
//! sweeps two and reports the best).

use apollo_bench::{print_table, scaled, write_json, UPDATE_FREQ};
use apollo_data::{mmlu_suite, CorpusConfig, LmBatcher, SyntheticCorpus};
use apollo_nn::{LinearMode, LlamaModel, ModelConfig};
use apollo_optim::{AdamW, Apollo, Fira, GaLore, Optimizer};
use apollo_tensor::Rng;
use apollo_train::{finetune, pretrain, FinetuneConfig, TrainConfig};
use serde::Serialize;

#[derive(Serialize)]
struct MethodRow {
    method: String,
    accuracies: Vec<(String, f32)>,
    average: f32,
    best_lr: f32,
}

/// MMLU uses the small rank (8 at paper scale → 4 on hidden 64).
const FT_RANK: usize = 4;

fn build_optimizer(name: &str, mini_alpha: f32) -> Box<dyn Optimizer> {
    match name {
        "Full" | "LoRA" => Box::new(AdamW::new()),
        "GaLore" => Box::new(GaLore::new(FT_RANK, UPDATE_FREQ)),
        "Fira" => Box::new(Fira::new(FT_RANK, UPDATE_FREQ)),
        "APOLLO w. SVD" => Box::new(Apollo::new(FT_RANK, UPDATE_FREQ).with_svd()),
        "APOLLO" => Box::new(Apollo::new(FT_RANK, UPDATE_FREQ)),
        "APOLLO-Mini" => Box::new(Apollo::mini(UPDATE_FREQ).with_alpha(mini_alpha)),
        other => panic!("unknown method {other}"),
    }
}

fn main() {
    let cfg = ModelConfig::tiny_60m();
    let base_steps = scaled(300);
    let ft_steps = scaled(40);
    // Fine-tuning α: the paper uses √4 for Mini here (more conservative
    // than pre-training).
    let mini_alpha = 2.0;

    eprintln!("[table5] pre-training the base model ({base_steps} steps) ...");
    let mut rng = Rng::seed_from_u64(43);
    let mut base = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
    let corpus = SyntheticCorpus::new(CorpusConfig::with_vocab(cfg.vocab_size));
    let mut batcher = LmBatcher::new(corpus, 4, cfg.max_seq);
    let mut pre_opt = AdamW::new();
    let tc = TrainConfig {
        lr: 3e-3,
        grad_clip: Some(1.0),
        ..TrainConfig::quick(base_steps)
    };
    pretrain(&mut base, &mut pre_opt, &mut batcher, &tc);

    let methods = [
        "Full",
        "LoRA",
        "GaLore",
        "Fira",
        "APOLLO w. SVD",
        "APOLLO",
        "APOLLO-Mini",
    ];
    let lrs = [1e-3f32, 3e-3];
    let mut results = Vec::new();
    for &name in &methods {
        let mut best: Option<MethodRow> = None;
        for &lr in &lrs {
            let mut accs = Vec::new();
            for task in mmlu_suite(cfg.vocab_size, cfg.max_seq).iter_mut() {
                eprintln!("[table5] {name} lr={lr} on {} ...", task.config().name);
                let mut model = if name == "LoRA" {
                    let mut rng = Rng::seed_from_u64(7);
                    base.to_lora(FT_RANK, 2.0 * FT_RANK as f32, &mut rng)
                } else {
                    base.clone()
                };
                let mut opt = build_optimizer(name, mini_alpha);
                let fc = FinetuneConfig {
                    steps: ft_steps,
                    batch: 8,
                    lr,
                    eval_examples: 100,
                };
                let res = finetune(&mut model, opt.as_mut(), task, &fc);
                accs.push((task.config().name.clone(), res.accuracy));
            }
            let average = accs.iter().map(|&(_, a)| a).sum::<f32>() / accs.len() as f32;
            let row = MethodRow {
                method: name.to_string(),
                accuracies: accs,
                average,
                best_lr: lr,
            };
            if best.as_ref().is_none_or(|b| row.average > b.average) {
                best = Some(row);
            }
        }
        results.push(best.expect("at least one LR"));
    }

    let mut headers: Vec<String> = vec!["Method".into()];
    headers.extend(results[0].accuracies.iter().map(|(t, _)| t.clone()));
    headers.push("Average".into());
    headers.push("best LR".into());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            let mut row = vec![r.method.clone()];
            row.extend(r.accuracies.iter().map(|&(_, a)| format!("{a:.1}")));
            row.push(format!("{:.2}", r.average));
            row.push(format!("{}", r.best_lr));
            row
        })
        .collect();
    print_table(
        &format!(
            "Table 5 — MMLU-domain fine-tuning accuracy (%), best of {} LRs",
            lrs.len()
        ),
        &header_refs,
        &rows,
    );
    println!("\nPaper shape: all methods within ~1 pt of full fine-tuning; APOLLO ≥ GaLore.");
    write_json("table5_mmlu", &results);
}
