//! Generation and scheduling through [`DecodeBackend`]: the exact backend
//! must be byte-identical to the plain model engine, and the INT8 backend
//! must run the same serving machinery (engine, scheduler) producing
//! in-vocabulary tokens deterministically.

use std::sync::Arc;

use apollo_infer::{
    generate, generate_backend, GenConfig, GenRequest, Outcome, SchedConfig, Scheduler,
};
use apollo_nn::{DecodeBackend, LinearMode, LlamaModel, ModelConfig, QuantizedModel};
use apollo_obs::Obs;
use apollo_tensor::Rng;

fn tiny_model(seed: u64) -> LlamaModel {
    let cfg = ModelConfig::test_tiny();
    let mut rng = Rng::seed_from_u64(seed);
    LlamaModel::new(&cfg, LinearMode::Dense, &mut rng)
}

fn gen_cfg(seed: u64) -> GenConfig {
    GenConfig {
        max_new_tokens: 20,
        temperature: 0.8,
        top_k: 12,
        top_p: 0.95,
        seed,
        stop_token: None,
    }
}

#[test]
fn exact_backend_generation_is_byte_identical_to_engine() {
    let model = Arc::new(tiny_model(0xB1));
    let backend: DecodeBackend = Arc::clone(&model).into();
    let prompt = [3u32, 1, 4, 1, 5];
    for seed in [7u64, 8, 9] {
        let cfg = gen_cfg(seed);
        let direct = generate(&model, &prompt, &cfg, |_| {});
        let mut streamed = Vec::new();
        let via_backend = generate_backend(&backend, &prompt, &cfg, |t| streamed.push(t));
        assert_eq!(direct, via_backend, "seed {seed}");
        assert_eq!(streamed, via_backend, "seed {seed}: stream order");
    }
}

#[test]
fn int8_backend_generation_is_deterministic_and_in_vocab() {
    let model = tiny_model(0xB2);
    let vocab = model.config().vocab_size;
    let backend: DecodeBackend = QuantizedModel::from_model(&model).into();
    let prompt = [2u32, 7, 2];
    let cfg = gen_cfg(42);
    let first = generate_backend(&backend, &prompt, &cfg, |_| {});
    assert_eq!(first.len(), cfg.max_new_tokens);
    assert!(first.iter().all(|&t| (t as usize) < vocab));
    // Same (backend, prompt, cfg) → same bytes: sampling is seeded and the
    // quantized forward is deterministic.
    let second = generate_backend(&backend, &prompt, &cfg, |_| {});
    assert_eq!(first, second);
}

#[test]
fn scheduler_runs_int8_backend_matching_serial_backend_generation() {
    let model = tiny_model(0xB3);
    let vocab = model.config().vocab_size;
    let backend: DecodeBackend = QuantizedModel::from_model(&model).into();

    let mut rng = Rng::seed_from_u64(0xC0);
    let reqs: Vec<GenRequest> = (0..5)
        .map(|i| GenRequest {
            prompt: (0..1 + i % 4).map(|_| rng.below(vocab) as u32).collect(),
            cfg: gen_cfg(500 + i as u64),
            deadline: None,
            adapter: None,
        })
        .collect();
    // Serial reference through the same backend.
    let serial: Vec<Vec<u32>> = reqs
        .iter()
        .map(|r| generate_backend(&backend, &r.prompt, &r.cfg, |_| {}))
        .collect();

    let cfg = SchedConfig {
        max_active: 3,
        queue_cap: 8,
        prefill_chunk: 2,
        kv_capacity: 64,
        prefix_cache_bytes: 0,
    };
    let mut sched = Scheduler::new(backend, cfg, Obs::disabled());
    for r in &reqs {
        sched.submit(r.clone()).expect("admit");
    }
    let mut results = sched.run_to_completion();
    results.sort_by_key(|r| r.id);
    assert_eq!(results.len(), reqs.len());
    for (res, want) in results.iter().zip(&serial) {
        assert_eq!(res.outcome, Outcome::Done);
        assert_eq!(&res.tokens, want, "request {}", res.id);
    }
}
