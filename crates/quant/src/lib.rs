//! Group-wise INT8 quantization for weights and optimizer states.
//!
//! Two users in the reproduction:
//!
//! - **Q-APOLLO / Q-GaLore** (Table 6, Fig. 1 middle): model weights are
//!   held in INT8 with a per-group scale (group size 128, as in Q-GaLore)
//!   and updated through a dequantize → update → requantize round-trip
//!   (straight-through estimator).
//! - **8-bit Adam / 8-bit GaLore** (Table 3): optimizer moments are stored
//!   block-wise quantized and dequantized on use.
//!
//! The scheme is symmetric absmax quantization: within each group of
//! `group` consecutive elements, `q = round(x / scale)` with
//! `scale = absmax / 127`.
//!
//! # Example
//!
//! ```
//! use apollo_quant::QuantizedMatrix;
//! use apollo_tensor::{Matrix, Rng};
//!
//! let mut rng = Rng::seed_from_u64(0);
//! let w = Matrix::randn(8, 32, &mut rng);
//! let q = QuantizedMatrix::quantize(&w, 128);
//! let err = q.dequantize().sub(&w).max_abs();
//! assert!(err < 0.05); // bounded by scale/2 per group
//! ```

use apollo_tensor::{simd, Matrix};

/// An INT8 matrix with per-group absmax scales.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    group: usize,
    data: Vec<i8>,
    scales: Vec<f32>,
}

impl QuantizedMatrix {
    /// Quantizes a matrix with groups of `group` consecutive (row-major)
    /// elements.
    ///
    /// # Panics
    ///
    /// Panics if `group == 0`.
    pub fn quantize(m: &Matrix, group: usize) -> Self {
        assert!(group > 0, "group size must be positive");
        let flat = m.as_slice();
        let n_groups = flat.len().div_ceil(group);
        let mut data = Vec::with_capacity(flat.len());
        let mut scales = Vec::with_capacity(n_groups);
        for g in 0..n_groups {
            let chunk = &flat[g * group..((g + 1) * group).min(flat.len())];
            let absmax = chunk.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
            let scale = if absmax > 0.0 { absmax / 127.0 } else { 1.0 };
            scales.push(scale);
            for &x in chunk {
                data.push((x / scale).round().clamp(-127.0, 127.0) as i8);
            }
        }
        QuantizedMatrix {
            rows: m.rows(),
            cols: m.cols(),
            group,
            data,
            scales,
        }
    }

    /// Reconstructs the full-precision matrix.
    pub fn dequantize(&self) -> Matrix {
        let mut out = Vec::with_capacity(self.data.len());
        for (i, &q) in self.data.iter().enumerate() {
            out.push(q as f32 * self.scales[i / self.group]);
        }
        Matrix::from_vec(self.rows, self.cols, out)
    }

    /// `(rows, cols)` of the logical matrix.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Group size.
    pub fn group(&self) -> usize {
        self.group
    }

    /// Bytes of storage: one byte per element plus 4 per group scale.
    pub fn memory_bytes(&self) -> usize {
        self.data.len() + 4 * self.scales.len()
    }

    /// The worst-case absolute reconstruction error (`scale / 2` per group).
    pub fn max_quantization_error(&self) -> f32 {
        self.scales.iter().fold(0.0f32, |m, &s| m.max(s / 2.0))
    }

    /// Computes `out = x · W` for a single activation row without ever
    /// materializing the f32 weight matrix: each INT8 row segment with a
    /// constant group scale is folded into one fused `out += (x_p·scale)·q`
    /// pass (the INT8 decode fast path).
    ///
    /// Groups are laid out over *flat* row-major elements, so a group can
    /// span row boundaries; the inner loop walks constant-scale segments of
    /// each row, which degenerates to one segment per row whenever `cols`
    /// divides the group size.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows` or `out.len() != cols`.
    pub fn dequant_gemv_into(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), self.rows, "dequant_gemv_into: x length mismatch");
        assert_eq!(
            out.len(),
            self.cols,
            "dequant_gemv_into: out length mismatch"
        );
        out.fill(0.0);
        // One dispatched call for the whole GEMV — the constant-scale
        // segment walk happens inside the kernel.
        simd::i8_gemv(x, &self.data, &self.scales, self.cols, self.group, out);
    }

    /// Multi-row version of [`Self::dequant_gemv_into`]: `x · W` where `x`
    /// is `(m × rows)`. Used for prompt prefill against INT8 weights.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != rows`.
    pub fn dequant_matmul(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.rows, "dequant_matmul: inner dim mismatch");
        let mut out = Matrix::zeros(x.rows(), self.cols);
        for r in 0..x.rows() {
            self.dequant_gemv_into(x.row(r), out.row_mut(r));
        }
        out
    }

    /// Applies a full-precision update to the quantized weight:
    /// dequantize, add `delta`, requantize (straight-through estimator, as
    /// in Q-GaLore's quantized-weight training).
    pub fn apply_update(&mut self, delta: &Matrix) {
        assert_eq!(
            delta.shape(),
            (self.rows, self.cols),
            "apply_update: shape mismatch"
        );
        let mut full = self.dequantize();
        full.add_assign(delta);
        *self = QuantizedMatrix::quantize(&full, self.group);
    }
}

/// Convenience: round-trips a matrix through INT8 to simulate quantized
/// storage of optimizer states (8-bit Adam).
pub fn fake_quantize(m: &Matrix, group: usize) -> Matrix {
    QuantizedMatrix::quantize(m, group).dequantize()
}

/// Round-trips a matrix through a *companded* INT8 code:
/// `y = sign(x)·|x|^pow` is quantized linearly, stretching the usable
/// dynamic range by `1/pow` in dB. This mimics the nonlinear
/// (dynamic-exponent) codes real 8-bit optimizers (bitsandbytes) use for
/// their moment states — plain absmax INT8 zeroes out small second-moment
/// entries and destabilizes Adam.
///
/// Use `pow = 0.5` for first moments and `pow = 0.25` for second moments:
/// since `v ≈ m²`, the quartic code gives both states the same small-value
/// resolution, so `v` never rounds to zero while `m` survives (which would
/// blow up `m/√v`).
///
/// # Panics
///
/// Panics if `pow` is not in `(0, 1]`.
pub fn fake_quantize_companded(m: &Matrix, group: usize, pow: f32) -> Matrix {
    assert!(pow > 0.0 && pow <= 1.0, "pow must be in (0, 1]");
    let companded = m.map(|x| x.signum() * x.abs().powf(pow));
    let deq = QuantizedMatrix::quantize(&companded, group).dequantize();
    let inv = 1.0 / pow;
    deq.map(|y| y.signum() * y.abs().powf(inv))
}

#[cfg(test)]
mod tests {
    use super::*;
    use apollo_tensor::Rng;

    #[test]
    fn roundtrip_error_is_bounded_by_half_scale() {
        let mut rng = Rng::seed_from_u64(60);
        let m = Matrix::randn(16, 64, &mut rng);
        let q = QuantizedMatrix::quantize(&m, 128);
        let deq = q.dequantize();
        let bound = q.max_quantization_error() + 1e-6;
        for (a, b) in m.as_slice().iter().zip(deq.as_slice()) {
            assert!((a - b).abs() <= bound, "{a} vs {b} (bound {bound})");
        }
    }

    #[test]
    fn zero_matrix_roundtrips_exactly() {
        let m = Matrix::zeros(4, 4);
        assert_eq!(QuantizedMatrix::quantize(&m, 8).dequantize(), m);
    }

    #[test]
    fn extreme_values_hit_plus_minus_127() {
        let m = Matrix::from_rows(&[&[1.0, -1.0, 0.5, 0.0]]);
        let q = QuantizedMatrix::quantize(&m, 4);
        let deq = q.dequantize();
        assert!((deq.get(0, 0) - 1.0).abs() < 1e-6);
        assert!((deq.get(0, 1) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn memory_is_quarter_of_f32_plus_scales() {
        let mut rng = Rng::seed_from_u64(61);
        let m = Matrix::randn(32, 128, &mut rng);
        let q = QuantizedMatrix::quantize(&m, 128);
        let f32_bytes = m.len() * 4;
        assert_eq!(q.memory_bytes(), m.len() + 4 * (m.len() / 128));
        assert!(q.memory_bytes() * 3 < f32_bytes);
    }

    #[test]
    fn per_group_scaling_adapts_to_local_range() {
        // First group huge, second tiny: the tiny group must keep precision.
        let mut data = vec![100.0f32; 4];
        data.extend(vec![0.001f32; 4]);
        let m = Matrix::from_vec(1, 8, data);
        let q = QuantizedMatrix::quantize(&m, 4);
        let deq = q.dequantize();
        assert!((deq.get(0, 5) - 0.001).abs() < 1e-5);
    }

    #[test]
    fn apply_update_moves_the_weight() {
        let mut rng = Rng::seed_from_u64(62);
        let m = Matrix::randn(8, 16, &mut rng);
        let mut q = QuantizedMatrix::quantize(&m, 32);
        let delta = Matrix::full(8, 16, 0.5);
        q.apply_update(&delta);
        let got = q.dequantize();
        let expect = m.map(|x| x + 0.5);
        for (a, b) in got.as_slice().iter().zip(expect.as_slice()) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn ragged_tail_group_is_handled() {
        let mut rng = Rng::seed_from_u64(63);
        let m = Matrix::randn(1, 10, &mut rng); // 10 elements, group 4 → 3 groups
        let q = QuantizedMatrix::quantize(&m, 4);
        assert_eq!(q.dequantize().shape(), (1, 10));
        assert_eq!(q.memory_bytes(), 10 + 4 * 3);
    }

    #[test]
    fn dequant_gemv_matches_materialized_matmul() {
        // Shapes chosen so groups both align with and straddle row
        // boundaries (cols 64 with group 128 → 2 rows per group; cols 50
        // with group 16 → segments inside a row).
        let mut rng = Rng::seed_from_u64(65);
        for (rows, cols, group) in [(64usize, 64usize, 128usize), (37, 50, 16), (8, 512, 128)] {
            let w = Matrix::randn(rows, cols, &mut rng);
            let q = QuantizedMatrix::quantize(&w, group);
            let x = Matrix::randn(1, rows, &mut rng);
            let mut out = vec![0.0f32; cols];
            q.dequant_gemv_into(x.as_slice(), &mut out);
            let reference = x.matmul(&q.dequantize());
            for (a, b) in out.iter().zip(reference.as_slice()) {
                let tol = 1e-4 * b.abs().max(1.0);
                assert!((a - b).abs() <= tol, "{rows}x{cols}/g{group}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn dequant_matmul_matches_per_row_gemv() {
        let mut rng = Rng::seed_from_u64(66);
        let w = Matrix::randn(24, 40, &mut rng);
        let q = QuantizedMatrix::quantize(&w, 128);
        let x = Matrix::randn(5, 24, &mut rng);
        let got = q.dequant_matmul(&x);
        for r in 0..x.rows() {
            let mut row = vec![0.0f32; 40];
            q.dequant_gemv_into(x.row(r), &mut row);
            assert_eq!(got.row(r), &row[..]);
        }
    }

    #[test]
    fn dequant_gemv_skips_zero_rows_consistently() {
        let mut rng = Rng::seed_from_u64(67);
        let w = Matrix::randn(16, 32, &mut rng);
        let q = QuantizedMatrix::quantize(&w, 8);
        let mut x = vec![0.0f32; 16];
        x[3] = 1.5;
        x[11] = -0.25;
        let mut out = vec![0.0f32; 32];
        q.dequant_gemv_into(&x, &mut out);
        let reference = Matrix::from_vec(1, 16, x).matmul(&q.dequantize());
        for (a, b) in out.iter().zip(reference.as_slice()) {
            assert!((a - b).abs() <= 1e-4 * b.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn apply_update_drift_stays_near_fresh_quantization() {
        // Property (satellite): N straight-through updates must land within
        // one quantization step of quantizing the exactly-accumulated
        // weight from scratch — requantization error must not compound.
        let mut rng = Rng::seed_from_u64(68);
        let w0 = Matrix::randn(8, 32, &mut rng);
        let mut q = QuantizedMatrix::quantize(&w0, 32);
        let mut exact = w0.clone();
        for step in 0..50 {
            let delta = Matrix::randn(8, 32, &mut rng).scale(0.01);
            q.apply_update(&delta);
            exact.add_assign(&delta);
            let fresh = QuantizedMatrix::quantize(&exact, 32);
            let drift = q.dequantize().sub(&fresh.dequantize()).max_abs();
            let bound = q.max_quantization_error() + fresh.max_quantization_error();
            assert!(
                drift <= bound * (1.0 + step as f32),
                "step {step}: drift {drift} bound {bound}"
            );
        }
        // And the end state tracks the exact accumulation itself.
        let err = q.dequantize().sub(&exact).max_abs();
        assert!(err < 0.2, "terminal drift {err}");
    }

    #[test]
    fn fake_quantize_matches_quantize_dequantize() {
        let mut rng = Rng::seed_from_u64(64);
        let m = Matrix::randn(4, 32, &mut rng);
        assert_eq!(
            fake_quantize(&m, 16),
            QuantizedMatrix::quantize(&m, 16).dequantize()
        );
    }
}
