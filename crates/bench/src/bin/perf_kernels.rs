//! Performance harness: matmul GFLOP/s at the Table-8 proxy shapes and
//! steps/sec for a tiny-proxy pretrain per optimizer.
//!
//! Emits `BENCH_kernels.json` and `BENCH_train.json` into the output
//! directory (first positional argument, default `.`). Run via
//! `scripts/bench.sh`, which pins the thread count for reproducibility.
//!
//! Modes:
//! - *(default)* full sweep: 5 timing reps per kernel/shape plus a
//!   30-step pretrain per optimizer.
//! - `--smoke`: shorter kernel timing reps, for CI (the pretrain keeps
//!   its 30 steps so steps/sec stays comparable to the baseline).
//! - `--losses`: prints the bit pattern of every training loss of a
//!   fixed-seed APOLLO pretrain and exits — a before/after diff of this
//!   output proves kernel changes kept training bit-identical.

use apollo_bench::perf::{proxy_shapes, time_median, KernelEntry, KernelReport, TrainReport};
use apollo_bench::{perf::TrainEntry, Method};
use apollo_nn::ModelConfig;
use apollo_tensor::{current_threads, Matrix, Rng};

/// One named kernel closure in the per-shape sweep.
type KernelCase<'a> = (&'a str, Box<dyn FnMut() + 'a>);

fn kernel_sweep(mode: &str) -> KernelReport {
    let (reps, min_secs) = if mode == "smoke" {
        (3, 0.005)
    } else {
        (5, 0.05)
    };
    let mut entries = Vec::new();
    for (shape, m, k, n) in proxy_shapes() {
        let mut rng = Rng::seed_from_u64(0xBE7C);
        let a = Matrix::randn(m, k, &mut rng);
        let b = Matrix::randn(k, n, &mut rng);
        let bt = b.transpose();
        let at = a.transpose();
        let flops = 2.0 * (m * k * n) as f64;
        let kernels: [KernelCase; 3] = [
            ("matmul", Box::new(|| drop(a.matmul(&b)))),
            ("matmul_transb", Box::new(|| drop(a.matmul_transb(&bt)))),
            ("matmul_transa", Box::new(|| drop(at.matmul_transa(&b)))),
        ];
        for (name, mut f) in kernels {
            let secs = time_median(reps, min_secs, &mut f);
            let gflops = flops / secs / 1e9;
            eprintln!("[kernel] {shape:>10} {name:<14} {gflops:7.3} GFLOP/s");
            entries.push(KernelEntry {
                shape: shape.clone(),
                kernel: name.to_string(),
                m,
                k,
                n,
                gflops,
            });
        }
    }
    KernelReport {
        threads: current_threads(),
        mode: mode.to_string(),
        entries,
    }
}

fn train_sweep() -> TrainReport {
    let cfg = ModelConfig::tiny_60m();
    // Same step count in both modes: steps/sec is only comparable at equal
    // amortization of periodic work (GaLore's SVD refresh dominates short
    // runs), and 30 steps is already cheap enough for the CI smoke stage.
    let steps = 30;
    let batch = 2;
    let methods = [
        Method::AdamW,
        Method::Apollo,
        Method::ApolloMini,
        Method::GaLore,
    ];
    let mut entries = Vec::new();
    for method in methods {
        let log = apollo_bench::pretrain_run(&cfg, method, steps, batch, 42, None);
        let final_loss = log.train_losses.last().map_or(f32::NAN, |&(_, l)| l);
        let steps_per_sec = steps as f64 / log.wall_secs.max(1e-9);
        eprintln!(
            "[train] {:<14} {steps_per_sec:6.2} steps/s  final loss {final_loss:.4}",
            method.label()
        );
        entries.push(TrainEntry {
            optimizer: method.label().to_string(),
            steps_per_sec,
            wall_secs: log.wall_secs,
            final_loss,
        });
    }
    TrainReport {
        model: cfg.name.to_string(),
        steps,
        batch,
        threads: current_threads(),
        entries,
    }
}

/// Prints `step loss-bits` lines for a fixed-seed APOLLO pretrain; a diff
/// of this output across code versions is the bit-identity check.
fn print_loss_bits() {
    let cfg = ModelConfig::tiny_60m();
    let log = apollo_bench::pretrain_run(&cfg, Method::Apollo, 20, 2, 7, None);
    for (step, loss) in &log.train_losses {
        println!("{step} {:08x}", loss.to_bits());
    }
}

fn main() {
    let mut mode = "full".to_string();
    let mut out_dir = ".".to_string();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => mode = "smoke".to_string(),
            "--losses" => mode = "losses".to_string(),
            other => out_dir = other.to_string(),
        }
    }
    if mode == "losses" {
        print_loss_bits();
        return;
    }
    let kernels = kernel_sweep(&mode);
    let train = train_sweep();
    write_report(&out_dir, "BENCH_kernels.json", &kernels);
    write_report(&out_dir, "BENCH_train.json", &train);
}

fn write_report(out_dir: &str, name: &str, value: &impl serde::Serialize) {
    let path = std::path::Path::new(out_dir).join(name);
    let data = serde_json::to_string_pretty(value).expect("serialize bench report");
    std::fs::write(&path, data).expect("write bench json");
    eprintln!("[saved {}]", path.display());
}
