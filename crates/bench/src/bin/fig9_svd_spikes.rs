//! Fig. 9: training-throughput spikes caused by periodic SVD subspace
//! updates in GaLore-type optimizers.
//!
//! Two complementary reproductions:
//! 1. the analytic model at LLaMA-1B scale (what the paper plots), and
//! 2. *measured* per-step wall-clock on the CPU proxy, where GaLore's
//!    Jacobi-SVD refresh produces the same spike pattern for real.

use apollo_bench::{pretrain_run, print_table, scaled, write_json, Method};
use apollo_nn::ModelConfig;
use apollo_optim::memory::MethodSpec;
use apollo_sysmodel::{Gpu, MemoryOptions, ThroughputModel};
use apollo_train::TrainConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Fig9 {
    modeled_1b_galore_tokens_per_sec: Vec<f64>,
    modeled_1b_apollo_tokens_per_sec: Vec<f64>,
    measured_proxy_galore_ms: Vec<f32>,
    measured_proxy_apollo_ms: Vec<f32>,
}

fn main() {
    // Part 1: analytic 1B series, refresh every 200 steps as in the figure.
    let model = ThroughputModel::new(&ModelConfig::llama_1b(), Gpu::a100_80g(), 8, 256);
    let opts = MemoryOptions::standard(1, 256);
    let bs = model
        .max_micro_batch(MethodSpec::GaLore { rank: 512 }, &opts)
        .max(1);
    let tokens_per_step = (bs * 256 * 8) as f64;
    let galore_series = model.step_time_series(MethodSpec::GaLore { rank: 512 }, bs, 600, 200);
    let apollo_series = model.step_time_series(MethodSpec::Apollo { rank: 512 }, bs, 600, 200);
    let g_thpt = galore_series.throughput(tokens_per_step);
    let a_thpt = apollo_series.throughput(tokens_per_step);

    // Part 2: measured proxy runs with per-step timing. GaLore refreshes
    // its SVD basis every UPDATE_FREQ steps; shrink the budget so spikes
    // appear several times. (Projector refresh period is fixed at 200, so
    // run ≥ 2.5 windows.)
    let steps = scaled(450).max(410);
    let cfg = ModelConfig::tiny_1b();
    let timing = |method: Method| {
        let tc = TrainConfig {
            steps,
            lr: method.default_lr(),
            grad_clip: method.grad_clip(),
            record_step_times: true,
            ..TrainConfig::quick(steps)
        };
        pretrain_run(&cfg, method, steps, 1, 99, Some(tc)).step_times_ms
    };
    let galore_ms = timing(Method::GaLore);
    let apollo_ms = timing(Method::Apollo);

    let spike = |xs: &[f32]| {
        let max = xs.iter().cloned().fold(0.0f32, f32::max);
        let mut sorted: Vec<f32> = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        max / median
    };
    print_table(
        "Fig. 9 — SVD-induced step-time spikes",
        &["Series", "Median step", "Max step", "Spike ratio"],
        &[
            vec![
                "1B model (GaLore, modeled s)".into(),
                format!("{:.2}", galore_series.step_seconds[1]),
                format!("{:.2}", galore_series.step_seconds[0]),
                format!(
                    "{:.1}x",
                    galore_series.step_seconds[0] / galore_series.step_seconds[1]
                ),
            ],
            vec![
                "proxy-1B (GaLore, measured ms)".into(),
                format!("{:.0}", {
                    let mut s = galore_ms.clone();
                    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
                    s[s.len() / 2]
                }),
                format!("{:.0}", galore_ms.iter().cloned().fold(0.0f32, f32::max)),
                format!("{:.1}x", spike(&galore_ms)),
            ],
            vec![
                "proxy-1B (APOLLO, measured ms)".into(),
                format!("{:.0}", {
                    let mut s = apollo_ms.clone();
                    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
                    s[s.len() / 2]
                }),
                format!("{:.0}", apollo_ms.iter().cloned().fold(0.0f32, f32::max)),
                format!("{:.1}x", spike(&apollo_ms)),
            ],
        ],
    );
    println!("\nPaper shape: GaLore throughput collapses every T steps; APOLLO stays flat.");
    write_json(
        "fig9_svd_spikes",
        &Fig9 {
            modeled_1b_galore_tokens_per_sec: g_thpt,
            modeled_1b_apollo_tokens_per_sec: a_thpt,
            measured_proxy_galore_ms: galore_ms,
            measured_proxy_apollo_ms: apollo_ms,
        },
    );
}
