//! `apollo` — train, fine-tune, and plan memory from the command line.
//!
//! ```text
//! apollo pretrain --model tiny-60m --optimizer apollo --steps 500 --save model.ckpt
//! apollo finetune --checkpoint model.ckpt --task WG --optimizer apollo-mini
//! apollo eval     --checkpoint model.ckpt
//! apollo generate --resume model.ckpt --prompt "hello" --max-new-tokens 64
//! apollo memory   --model llama-7b --method apollo --rank 256
//! apollo list
//! ```

mod args;

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use apollo_data::{
    commonsense_suite, mmlu_suite, ByteTokenizer, CorpusConfig, DecodeStream, LmBatcher,
    SyntheticCorpus, Tokenize,
};
use apollo_infer::GenConfig;
use apollo_nn::{AdapterRegistry, LinearMode, LlamaModel, LoraAdapter, ModelConfig};
use apollo_obs::{read_trace, Obs, TraceEvent};
use apollo_optim::memory::MethodSpec;
use apollo_optim::{AdamMini, AdamW, Apollo, Fira, Flora, GaLore, Optimizer, Sgd, SgdMomentum};
use apollo_search::{run_search, SearchConfig};
use apollo_sysmodel::{Gpu, MemoryOptions, TrainingMemoryModel};
use apollo_tensor::{Matrix, Rng};
use apollo_train::{
    eval_perplexity, finetune, load_model, pretrain_ddp, pretrain_observed, save_model, DdpConfig,
    FaultKind, FaultPlan, FinetuneConfig, OptimizerFactory, RecoveryPolicy, ResilienceConfig,
    ResilienceReport, TrainConfig,
};
use args::Args;

const USAGE: &str = "\
apollo — APOLLO optimizer reproduction CLI

USAGE:
  apollo pretrain [--model NAME] [--optimizer NAME] [--steps N] [--batch N]
                  [--lr F] [--rank N] [--seed N] [--quantize-weights GROUP]
                  [--save PATH] [--threads N] [--numerics exact|fast]
                  [--replicas N] [--virtual-slots V] [--threads-per-replica N]
                  [--fault-plan SPEC]
                  [--checkpoint-dir DIR] [--checkpoint-every N] [--resume]
                  [--recovery POLICY] [--lr-backoff F] [--spike-factor F]
                  [--trace-out PATH] [--metrics-every N] [--profile]
  apollo finetune --checkpoint PATH --task NAME [--optimizer NAME]
                  [--steps N] [--batch N] [--lr F] [--rank N]
  apollo eval     --checkpoint PATH [--seqs N]
  apollo generate --resume PATH (--prompt TEXT | --prompt-ids \"1,2,3\")
                  [--max-new-tokens N] [--temperature F] [--top-k N]
                  [--top-p F] [--seed N] [--stop-token N] [--threads N]
                  [--numerics exact|fast] [--int8-decode]
  apollo memory   [--model NAME] [--method NAME] [--rank N] [--gpu NAME]
  apollo serve    --resume PATH [--addr HOST:PORT] [--addr-file PATH]
                  [--shutdown-file PATH] [--run-secs N]
                  [--max-active N] [--queue-cap N] [--kv-capacity N]
                  [--prefill-chunk N] [--shed-watermark N]
                  [--default-deadline-ms N] [--drain-deadline-ms N]
                  [--idle-timeout-ms N] [--header-deadline-ms N]
                  [--max-new-tokens-cap N] [--trace-out PATH] [--threads N]
                  [--numerics exact|fast] [--int8-decode]
                  [--adapters NAME=PATH,NAME=PATH,...]
                  [--max-resident-adapters N] [--prefix-cache-mb N]
  apollo loadgen  --addr HOST:PORT [--requests N] [--rate F] [--seed N]
                  [--prompt-len N] [--max-new-tokens N] [--deadline-ms N]
                  [--stream] [--max-retries N] [--faults none|default]
                  [--prefix-reuse F] [--prefix-len N] [--adapters N]
                  [--expect-clean] [--out PATH]
  apollo make-adapter --resume PATH --out PATH [--rank N] [--alpha F]
                  [--seed N] [--delta-scale F]
  apollo search   [--model NAME] [--population N] [--rounds N]
                  [--round-steps N] [--quantile F] [--seed N]
                  [--threads-per-member N] [--batch N] [--eval-seqs N]
                  [--baseline] [--out PATH] [--trace-out PATH]
                  [--metrics-every N] [--profile]
  apollo trace-check --trace PATH
  apollo list

SEARCH
  search           population-based evolutionary search over APOLLO's knobs
                   (projector rank, scale alpha, refresh period, peak LR /
                   warmup, optimizer family). --population members pretrain
                   the proxy model concurrently (one worker thread each,
                   pinned to --threads-per-member kernel threads); every
                   --round-steps steps the bottom --quantile fraction clone
                   a leader's full train state in memory and perturb their
                   knobs with seed-derived mutations. Bit-reproducible:
                   same --seed, byte-identical --out frontier JSON.
                   --baseline also trains the static fig4 grid straight
                   through the same budget for an evolved-vs-static table.

SERVING
  serve            HTTP/1.1 front-end over the continuous-batching server:
                   GET /healthz, POST /generate (chunked NDJSON streaming
                   with `stream: true`). Admission control maps queue-full
                   to 429 + Retry-After, prompt-too-long to 413, bad
                   requests to 400; --shed-watermark sheds load early.
                   Runs until --run-secs elapses or --shutdown-file
                   appears, then drains gracefully (in-flight requests
                   finish, bounded by --drain-deadline-ms).
  loadgen          open-loop Poisson load generator with deterministic
                   fault injection (slow-loris, mid-stream disconnect,
                   malformed requests, bursts). --expect-clean exits
                   non-zero when any fault probe saw the wrong response
                   or transport errors occurred. --out writes a JSON
                   report (latency percentiles, goodput, shed rate).
                   --prefix-reuse F opens that fraction of requests with
                   a shared --prefix-len token prefix (the system-prompt
                   shape prefix caching serves); --adapters N spreads
                   requests over the first N adapters from /healthz.

MULTI-TENANT SERVING
  --adapters       NAME=PATH list of LoRA adapter checkpoints served over
                   the shared base model. Requests pick a tenant with
                   `\"adapter\": NAME`; one decode tick batches rows across
                   adapters bit-identically to serving each alone.
                   Exact backend only (not --int8-decode).
  --max-resident-adapters N  keep at most N adapters' weights in memory;
                   the rest lazy-load from their checkpoints on demand
                   with LRU eviction (default: all resident).
  --prefix-cache-mb N  radix-tree prefix cache budget over exported KV
                   blocks; prompts sharing a cached prefix skip its
                   prefill bit-exactly (default 32, 0 disables).
  make-adapter     derive a rank-N LoRA adapter checkpoint from a dense
                   base checkpoint (seeded random deltas; use different
                   --seed values to make distinguishable tenants).
  GET /stats       serving counters as JSON: prefix-cache hit rate,
                   resident/evicted adapters, KV bytes, in-flight.

DATA-PARALLEL
  --replicas N       train with N data-parallel replica threads, each owning
                     a ZeRO-style contiguous shard of the optimizer state.
                     Losses and weights are bit-identical at every replica
                     count (fixed virtual-slot tree reduction); supported
                     optimizers: adamw adamw-8bit adam-mini sgd sgd-m
                     apollo apollo-svd apollo-mini
  --virtual-slots V  micro-batch decomposition width (default max(4, N));
                     --batch must divide by V and N must not exceed V
  --threads-per-replica N  kernel threads per replica (default 1)
  --fault-plan SPEC  inject replica failures: comma-separated
                     kill:STEP:REPLICA entries, e.g. kill:40:1 — the
                     survivors rebalance shards and resume bit-exactly

PERFORMANCE
  --threads N        kernel thread count, N >= 1. Precedence: this flag,
                     then the APOLLO_NUM_THREADS environment variable, then
                     min(available cores, 8). Results are bit-identical at
                     every thread count; only throughput changes.
  --numerics MODE    exact (default) keeps the bitwise-reproducibility
                     contract; fast enables explicit-SIMD (AVX2/FMA where
                     available) and reassociated kernels, bounded by
                     tolerance tests instead of bit equality. Precedence:
                     this flag, then APOLLO_NUMERICS, then exact.
  --int8-decode      (generate/serve) snapshot the checkpoint to group-128
                     INT8 weights and decode against BF16 KV caches via
                     fused dequantize-GEMV kernels. Implies fast-tier
                     arithmetic on the decode path.

OBSERVABILITY
  --trace-out PATH   stream a JSONL trace (phase timings, loss/grad-norm/LR,
                     per-layer APOLLO channel scales, projector refreshes,
                     limiter clips, resilience sentinels)
  --metrics-every N  sample StepMetrics/ScaleSummary every N steps (default 1)
  --profile          print an end-of-run phase-time breakdown and counters
  trace-check        validate a trace: every line parses and per-step phase
                     times sum to (at most) the recorded step total

MODELS     test-tiny tiny-60m tiny-130m tiny-350m tiny-1b tiny-7b
           llama-60m llama-130m llama-350m llama-1b llama-7b llama-13b
OPTIMIZERS adamw adamw-8bit adam-mini sgd sgd-m apollo apollo-svd
           apollo-mini galore galore-rp galore-8bit fira flora
TASKS      WG PIQA SIQA OBQA HS BoolQ Arc-E Arc-C
           STEM 'Social Sciences' Humanities Other
GPUS       a100-80g consumer-12g
RECOVERY   off skip clip rollback abort   (what to do on NaN/Inf/loss-spike steps)";

fn model_config(name: &str) -> Result<ModelConfig, String> {
    Ok(match name {
        "test-tiny" => ModelConfig::test_tiny(),
        "tiny-60m" => ModelConfig::tiny_60m(),
        "tiny-130m" => ModelConfig::tiny_130m(),
        "tiny-350m" => ModelConfig::tiny_350m(),
        "tiny-1b" => ModelConfig::tiny_1b(),
        "tiny-7b" => ModelConfig::tiny_7b(),
        "llama-60m" => ModelConfig::llama_60m(),
        "llama-130m" => ModelConfig::llama_130m(),
        "llama-350m" => ModelConfig::llama_350m(),
        "llama-1b" => ModelConfig::llama_1b(),
        "llama-7b" => ModelConfig::llama_7b(),
        "llama-13b" => ModelConfig::llama_13b(),
        other => return Err(format!("unknown model `{other}` (try `apollo list`)")),
    })
}

fn build_optimizer(
    name: &str,
    rank: usize,
    cfg: &ModelConfig,
) -> Result<Box<dyn Optimizer>, String> {
    let freq = 200;
    let mini_alpha = (cfg.hidden as f32 / 4.0).sqrt();
    Ok(match name {
        "adamw" => Box::new(AdamW::new()),
        "adamw-8bit" => Box::new(AdamW::adam8bit(128)),
        "adam-mini" => Box::new(AdamMini::new()),
        "sgd" => Box::new(Sgd::new()),
        "sgd-m" => Box::new(SgdMomentum::new(0.9)),
        "apollo" => Box::new(Apollo::new(rank, freq)),
        "apollo-svd" => Box::new(Apollo::new(rank, freq).with_svd()),
        "apollo-mini" => Box::new(Apollo::mini(freq).with_alpha(mini_alpha)),
        "galore" => Box::new(GaLore::new(rank, freq)),
        "galore-rp" => Box::new(GaLore::new(rank, freq).with_random_projection()),
        "galore-8bit" => Box::new(GaLore::galore8bit(rank, freq, 128)),
        "fira" => Box::new(Fira::new(rank, freq)),
        "flora" => Box::new(Flora::new(rank, freq)),
        other => return Err(format!("unknown optimizer `{other}` (try `apollo list`)")),
    })
}

/// Builds a per-parameter optimizer factory for data-parallel runs: the
/// instance owning parameter `i` derives exactly the state (APOLLO
/// projector seed included) the serial optimizer would have derived for
/// its `i`-th parameter, so sharding is invisible to the math.
fn build_opt_factory(
    name: &str,
    rank: usize,
    cfg: &ModelConfig,
) -> Result<Box<OptimizerFactory>, String> {
    let freq = 200;
    let mini_alpha = (cfg.hidden as f32 / 4.0).sqrt();
    // Apollo's default base seed; per-parameter instances shift it by the
    // global parameter index, matching the serial `seed + local_index`.
    let seed = 0xA90110u64;
    Ok(match name {
        "adamw" => Box::new(|_| Box::new(AdamW::new())),
        "adamw-8bit" => Box::new(|_| Box::new(AdamW::adam8bit(128))),
        "adam-mini" => Box::new(|_| Box::new(AdamMini::new())),
        "sgd" => Box::new(|_| Box::new(Sgd::new())),
        "sgd-m" => Box::new(|_| Box::new(SgdMomentum::new(0.9))),
        "apollo" => Box::new(move |i| {
            Box::new(Apollo::new(rank, freq).with_seed(seed.wrapping_add(i as u64)))
        }),
        "apollo-svd" => Box::new(move |i| {
            Box::new(
                Apollo::new(rank, freq)
                    .with_svd()
                    .with_seed(seed.wrapping_add(i as u64)),
            )
        }),
        "apollo-mini" => Box::new(move |i| {
            Box::new(
                Apollo::mini(freq)
                    .with_alpha(mini_alpha)
                    .with_seed(seed.wrapping_add(i as u64)),
            )
        }),
        other => {
            return Err(format!(
                "optimizer `{other}` is not supported with --replicas (its \
                 projector seeds are not externally controllable)"
            ))
        }
    })
}

/// Parses a `--fault-plan` spec: comma-separated `kill:STEP:REPLICA`.
fn parse_fault_plan(spec: &str) -> Result<FaultPlan, String> {
    let mut plan = FaultPlan::new();
    for entry in spec.split(',').filter(|e| !e.is_empty()) {
        let parts: Vec<&str> = entry.split(':').collect();
        match parts.as_slice() {
            ["kill", step, replica] => {
                let step: usize = step
                    .parse()
                    .map_err(|_| format!("bad step in fault `{entry}`"))?;
                let replica: usize = replica
                    .parse()
                    .map_err(|_| format!("bad replica in fault `{entry}`"))?;
                plan = plan.inject(step, FaultKind::ReplicaKill { replica });
            }
            _ => return Err(format!("bad fault `{entry}` (expected kill:STEP:REPLICA)")),
        }
    }
    Ok(plan)
}

fn default_lr(optimizer: &str) -> f32 {
    match optimizer {
        "adamw" | "adamw-8bit" | "adam-mini" => 1e-2,
        "sgd" | "sgd-m" => 0.3,
        _ => 3e-2,
    }
}

fn resilience_config(a: &Args) -> Result<ResilienceConfig, String> {
    let policy = match a.get("recovery", "off").as_str() {
        "off" => None,
        "skip" => Some(RecoveryPolicy::SkipStep),
        "clip" => Some(RecoveryPolicy::ClipAndContinue),
        "rollback" => Some(RecoveryPolicy::RollbackAndRetry {
            lr_backoff: a.get_num("lr-backoff", 0.5f32)?,
        }),
        "abort" => Some(RecoveryPolicy::Abort),
        other => {
            return Err(format!(
                "unknown recovery policy `{other}` (try `apollo list`)"
            ))
        }
    };
    let mut res = ResilienceConfig {
        policy,
        resume: a.has("resume"),
        spike_factor: a.get_num("spike-factor", 3.0f32)?,
        ..ResilienceConfig::default()
    };
    if a.has("checkpoint-dir") {
        res.checkpoint_dir = Some(PathBuf::from(a.require("checkpoint-dir")?));
        res.checkpoint_every = a.get_num("checkpoint-every", 100usize)?;
    } else if a.has("resume") || a.has("checkpoint-every") {
        return Err("--resume/--checkpoint-every need --checkpoint-dir".into());
    }
    Ok(res)
}

fn print_resilience(r: &ResilienceReport) {
    if let Some(step) = r.resumed_from_step {
        println!("resumed from checkpointed step {step}");
    }
    if r.checkpoints_written > 0 || r.checkpoint_errors > 0 {
        println!(
            "checkpoints: {} written, {} failed",
            r.checkpoints_written, r.checkpoint_errors
        );
    }
    if !r.is_clean() {
        println!(
            "faults: {} NaN/Inf-grad, {} NaN/Inf-loss, {} spike | recovery: {} skipped, {} clipped, {} rollbacks{}",
            r.non_finite_grads,
            r.non_finite_loss,
            r.loss_spikes,
            r.skipped_steps,
            r.clipped_steps,
            r.rollbacks,
            if r.aborted { " | ABORTED" } else { "" },
        );
    }
}

/// Applies `--threads N` as the kernel thread count for this process.
/// The flag takes precedence over `APOLLO_NUM_THREADS`; with neither, the
/// auto default (`min(available cores, 8)`) applies. Kernels are
/// bit-identical across thread counts, so this only changes throughput.
fn apply_threads(a: &Args) -> Result<(), String> {
    if a.has("threads") {
        let n = a.get_num("threads", 0usize)?;
        if n == 0 {
            return Err("--threads must be >= 1".into());
        }
        apollo_tensor::set_thread_override(Some(n));
    }
    Ok(())
}

/// Applies `--numerics exact|fast` as the process-wide kernel tier.
/// `exact` (the default) keeps the bitwise-reproducibility contract;
/// `fast` enables the explicit-SIMD / reassociated kernels, which are
/// held to tolerance bounds instead. The flag takes precedence over the
/// `APOLLO_NUMERICS` environment variable.
fn apply_numerics(a: &Args) -> Result<(), String> {
    if a.has("numerics") {
        let raw = a.require("numerics")?;
        let mode = apollo_tensor::NumericsMode::parse(&raw)
            .ok_or_else(|| format!("--numerics must be `exact` or `fast`, got `{raw}`"))?;
        apollo_tensor::set_numerics_default(mode);
    }
    Ok(())
}

/// Records the resolved numerics mode and probed SIMD tier on an [`Obs`]
/// handle at run start, so traces and bench reports carry the tier that
/// actually executed (free when the handle is disabled).
fn observe_numerics(obs: &Obs) {
    let mode = apollo_tensor::current_numerics().name();
    let tier = apollo_tensor::simd_tier().name();
    obs.counter(&format!("numerics.mode.{mode}"), 1);
    obs.counter(&format!("numerics.simd_tier.{tier}"), 1);
}

fn cmd_pretrain(a: &Args) -> Result<(), String> {
    apply_threads(a)?;
    apply_numerics(a)?;
    let cfg = model_config(&a.get("model", "tiny-60m"))?;
    if cfg.name.starts_with("llama-") {
        return Err("paper-scale geometries are for `apollo memory`; pick a tiny-* model".into());
    }
    let opt_name = a.get("optimizer", "apollo");
    let rank = a.get_num("rank", cfg.default_rank())?;
    let steps = a.get_num("steps", 300usize)?;
    let batch = a.get_num("batch", 4usize)?;
    let lr = a.get_num("lr", default_lr(&opt_name))?;
    let seed = a.get_num("seed", 42u64)?;

    let mut rng = Rng::seed_from_u64(seed);
    let mut model = LlamaModel::new(&cfg, LinearMode::Dense, &mut rng);
    let corpus = SyntheticCorpus::new(CorpusConfig::with_vocab(cfg.vocab_size));
    let mut batcher = LmBatcher::new(corpus, batch, cfg.max_seq);
    let ddp_run = a.has("replicas");
    let tc = TrainConfig {
        steps,
        lr,
        // Global-norm clipping needs a cross-shard reduction the DDP loop
        // does not do (APOLLO-family runs use the per-tensor limiter).
        grad_clip: if !ddp_run && (opt_name.starts_with("adamw") || opt_name.starts_with("sgd")) {
            Some(1.0)
        } else {
            None
        },
        eval_every: (steps / 5).max(1),
        quantize_weights: if a.has("quantize-weights") {
            Some(a.get_num("quantize-weights", 128usize)?)
        } else {
            None
        },
        ..TrainConfig::quick(steps)
    };
    let res = resilience_config(a)?;
    let metrics_every = a.get_num("metrics-every", 1usize)?;
    if metrics_every == 0 {
        return Err("--metrics-every must be >= 1".into());
    }
    let obs = if a.has("trace-out") {
        let path = PathBuf::from(a.require("trace-out")?);
        let obs = Obs::with_trace(&path, metrics_every)
            .map_err(|e| format!("cannot open trace {}: {e}", path.display()))?;
        eprintln!("tracing to {}", path.display());
        obs
    } else if a.has("profile") {
        Obs::enabled(metrics_every)
    } else {
        Obs::disabled()
    };
    observe_numerics(&obs);
    let log = if ddp_run {
        let replicas = a.get_num("replicas", 1usize)?;
        if replicas == 0 {
            return Err("--replicas must be >= 1".into());
        }
        let virtual_slots = a.get_num("virtual-slots", 4.max(replicas))?;
        let ddp = DdpConfig {
            replicas,
            virtual_slots,
            threads_per_replica: a.get_num("threads-per-replica", 1usize)?,
        };
        let mut res = res;
        if a.has("fault-plan") {
            res.fault_plan = parse_fault_plan(&a.require("fault-plan")?)?;
        }
        let make_opt = build_opt_factory(&opt_name, rank, &cfg)?;
        eprintln!(
            "pretraining {} with {} (rank {rank}, lr {lr}, {steps} steps, batch {batch}, \
             {replicas} replicas / {virtual_slots} virtual slots)",
            cfg.name,
            make_opt(0).name()
        );
        let out = pretrain_ddp(
            &mut model,
            make_opt.as_ref(),
            &batcher,
            &tc,
            &ddp,
            &res,
            &obs,
        );
        let d = &out.ddp;
        println!(
            "ddp: {} replicas started, {} finished | {} rounds, {} kills, {} rebalances",
            d.replicas, d.survivors, d.rounds, d.replica_kills, d.rebalances
        );
        // Full-bit precision so replica-invariance can be checked by
        // comparing output lines (ci.sh does exactly that).
        if let Some(&(step, loss)) = out.log.train_losses.last() {
            println!(
                "final loss {loss:.6} at step {step} (bits 0x{:08x})",
                loss.to_bits()
            );
        }
        out.log
    } else {
        if a.has("fault-plan") {
            return Err("--fault-plan needs --replicas".into());
        }
        let mut opt = build_optimizer(&opt_name, rank, &cfg)?;
        eprintln!(
            "pretraining {} with {} (rank {rank}, lr {lr}, {steps} steps, batch {batch})",
            cfg.name,
            opt.name()
        );
        pretrain_observed(&mut model, opt.as_mut(), &mut batcher, &tc, &res, &obs)
    };
    for (step, ppl) in &log.eval_ppls {
        println!("step {step:>6}  val ppl {ppl:.2}");
    }
    println!(
        "final ppl {:.2} | optimizer state {} elems ({} bytes) | {:.1}s",
        log.final_ppl, log.state_elems, log.state_bytes, log.wall_secs
    );
    print_resilience(&log.resilience);
    if a.has("profile") {
        if let Some(stats) = obs.phase_stats() {
            println!("\nphase breakdown ({} steps):", stats.steps());
            print!("{}", stats.render_table());
        }
        let metrics = obs.metrics().expect("profile implies an enabled handle");
        let counters: Vec<(&str, u64)> = metrics.counters().collect();
        if !counters.is_empty() {
            println!("\ncounters:");
            for (name, value) in counters {
                println!("  {name:<24} {value}");
            }
        }
    }
    if a.has("save") {
        let path = PathBuf::from(a.require("save")?);
        save_model(&model, LinearMode::Dense, &path).map_err(|e| e.to_string())?;
        println!("saved checkpoint to {}", path.display());
    }
    Ok(())
}

fn cmd_finetune(a: &Args) -> Result<(), String> {
    let path = PathBuf::from(a.require("checkpoint")?);
    let mut model = load_model(&path).map_err(|e| e.to_string())?;
    let cfg = model.config().clone();
    let task_name = a.require("task")?;
    let mut suite = commonsense_suite(cfg.vocab_size, cfg.max_seq);
    suite.extend(mmlu_suite(cfg.vocab_size, cfg.max_seq));
    let mut task = suite
        .into_iter()
        .find(|t| t.config().name == task_name)
        .ok_or_else(|| format!("unknown task `{task_name}` (try `apollo list`)"))?;

    let opt_name = a.get("optimizer", "apollo");
    let rank = a.get_num("rank", (cfg.hidden / 8).max(1))?;
    let steps = a.get_num("steps", 60usize)?;
    let fc = FinetuneConfig {
        steps,
        batch: a.get_num("batch", 8usize)?,
        lr: a.get_num("lr", 3e-3f32)?,
        eval_examples: 100,
    };
    let mut opt = build_optimizer(&opt_name, rank, &cfg)?;
    eprintln!(
        "fine-tuning on {task_name} with {} ({steps} steps)",
        opt.name()
    );
    let res = finetune(&mut model, opt.as_mut(), &mut task, &fc);
    println!(
        "{}: accuracy {:.1}% (chance {:.0}%), final loss {:.3}, {:.1}s",
        res.task, res.accuracy, res.chance, res.final_loss, res.wall_secs
    );
    Ok(())
}

fn cmd_eval(a: &Args) -> Result<(), String> {
    let path = PathBuf::from(a.require("checkpoint")?);
    let model = load_model(&path).map_err(|e| e.to_string())?;
    let cfg = model.config();
    let corpus = SyntheticCorpus::new(CorpusConfig::with_vocab(cfg.vocab_size));
    let batcher = LmBatcher::new(corpus, 4, cfg.max_seq);
    let Some(ppl) = eval_perplexity(&model, &batcher, a.get_num("seqs", 64usize)?) else {
        return Err("eval requires --seqs >= 1".to_string());
    };
    println!("{}: validation ppl {ppl:.2}", cfg.name);
    Ok(())
}

fn cmd_generate(a: &Args) -> Result<(), String> {
    use std::io::Write;
    apply_threads(a)?;
    apply_numerics(a)?;
    let path = PathBuf::from(a.require("resume")?);
    let model = load_model(&path).map_err(|e| e.to_string())?;
    let cfg = model.config().clone();
    let vocab = cfg.vocab_size;
    // Text prompts go through the byte tokenizer, which needs the model's
    // vocabulary to cover all 256 byte values; smaller vocabularies (the
    // synthetic-corpus models) take raw token ids instead.
    let tok = ByteTokenizer;
    let text_io = vocab >= tok.vocab_size();
    let prompt: Vec<u32> = if a.has("prompt-ids") {
        a.require("prompt-ids")?
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<u32>()
                    .map_err(|_| format!("--prompt-ids: cannot parse `{s}`"))
            })
            .collect::<Result<_, _>>()?
    } else if a.has("prompt") {
        if !text_io {
            return Err(format!(
                "{} has vocab {vocab} < 256: text prompts need a byte-covering \
                 vocabulary, pass --prompt-ids instead",
                cfg.name
            ));
        }
        tok.encode(a.require("prompt")?.as_bytes())
    } else {
        return Err("generate needs --prompt or --prompt-ids".into());
    };
    if prompt.is_empty() {
        return Err("empty prompt".into());
    }
    if let Some(&bad) = prompt.iter().find(|&&t| t as usize >= vocab) {
        return Err(format!("prompt token {bad} out of vocab (size {vocab})"));
    }

    let gen = GenConfig {
        max_new_tokens: a.get_num("max-new-tokens", 64usize)?,
        temperature: a.get_num("temperature", 0.0f32)?,
        top_k: a.get_num("top-k", 0usize)?,
        top_p: a.get_num("top-p", 1.0f32)?,
        seed: a.get_num("seed", 0u64)?,
        stop_token: if a.has("stop-token") {
            Some(a.get_num("stop-token", 0u32)?)
        } else {
            None
        },
    };
    // --int8-decode snapshots the checkpoint into INT8 weights + BF16 KV
    // caches; the exact model is dropped before decoding starts.
    let backend: apollo_nn::DecodeBackend = if a.has("int8-decode") {
        apollo_nn::QuantizedModel::from_model(&model).into()
    } else {
        model.into()
    };
    eprintln!(
        "generating up to {} tokens from {} ({} prompt tokens, temperature {}, seed {}, \
         backend {}, numerics {}, simd {})",
        gen.max_new_tokens,
        cfg.name,
        prompt.len(),
        gen.temperature,
        gen.seed,
        backend.mode_name(),
        apollo_tensor::current_numerics().name(),
        apollo_tensor::simd_tier().name(),
    );

    // Stream tokens as they are decided: decoded text for byte-covering
    // vocabularies, space-separated token ids otherwise.
    let mut stream = DecodeStream::new(&tok);
    let mut stdout = std::io::stdout();
    let t0 = std::time::Instant::now();
    let out = apollo_infer::generate_backend(&backend, &prompt, &gen, |t| {
        if text_io {
            let chunk = stream.push(t);
            print!("{chunk}");
        } else {
            print!("{t} ");
        }
        let _ = stdout.flush();
    });
    if text_io {
        print!("{}", stream.finish());
    }
    println!();
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    eprintln!(
        "{} tokens in {:.2}s ({:.1} tok/s)",
        out.len(),
        secs,
        out.len() as f64 / secs
    );
    Ok(())
}

fn cmd_memory(a: &Args) -> Result<(), String> {
    let cfg = model_config(&a.get("model", "llama-7b"))?;
    let rank = a.get_num("rank", cfg.default_rank())?;
    let spec = match a.get("method", "apollo").as_str() {
        "adamw" => MethodSpec::AdamW,
        "adamw-8bit" => MethodSpec::Adam8bit,
        "adam-mini" => MethodSpec::AdamMini,
        "sgd" => MethodSpec::Sgd,
        "sgd-m" => MethodSpec::SgdMomentum,
        "apollo" => MethodSpec::Apollo { rank },
        "apollo-svd" => MethodSpec::ApolloSvd { rank },
        "apollo-mini" => MethodSpec::ApolloMini,
        "galore" => MethodSpec::GaLore { rank },
        "galore-8bit" => MethodSpec::GaLore8bit { rank },
        "fira" => MethodSpec::Fira { rank },
        "flora" => MethodSpec::Flora { rank },
        other => return Err(format!("unknown method `{other}`")),
    };
    let gpu = match a.get("gpu", "a100-80g").as_str() {
        "a100-80g" => Gpu::a100_80g(),
        "consumer-12g" => Gpu::consumer_12g(),
        other => return Err(format!("unknown gpu `{other}`")),
    };
    let mem = TrainingMemoryModel::new(&cfg);
    let b = mem.breakdown(spec, &MemoryOptions::figure1(256));
    println!(
        "{} + {} (batch 1, layer-wise grads):",
        cfg.name,
        spec.label()
    );
    println!("  weights     {:>8.2} GiB", b.weights_gib);
    println!("  gradients   {:>8.2} GiB", b.grads_gib);
    println!("  optimizer   {:>8.2} GiB", b.optimizer_gib);
    println!("  activations {:>8.2} GiB", b.activations_gib);
    println!("  total       {:>8.2} GiB", b.total_gib());
    println!(
        "  on {} ({} GiB): {}",
        gpu.name,
        gpu.memory_gib,
        if b.total_gib() <= gpu.memory_gib {
            "fits"
        } else {
            "OOM"
        }
    );
    Ok(())
}

/// Parses `--adapters NAME=PATH,...` into a registry. With
/// `--max-resident-adapters` below the adapter count, weights lazy-load
/// through the checkpoint format on first use and LRU-evict at the cap;
/// otherwise everything loads up front (failing fast on a bad file).
/// Either way each checkpoint is verified against the base geometry at
/// load time.
fn build_adapter_registry(a: &Args, base: &ModelConfig) -> Result<AdapterRegistry, String> {
    if !a.has("adapters") {
        return Ok(AdapterRegistry::empty());
    }
    let spec = a.require("adapters")?;
    let mut names: Vec<String> = Vec::new();
    let mut table: std::collections::HashMap<String, String> = std::collections::HashMap::new();
    for entry in spec.split(',').filter(|s| !s.trim().is_empty()) {
        let (name, path) = entry
            .split_once('=')
            .ok_or_else(|| format!("--adapters entry `{entry}` is not NAME=PATH"))?;
        let (name, path) = (name.trim().to_string(), path.trim().to_string());
        if name.is_empty() || path.is_empty() {
            return Err(format!("--adapters entry `{entry}` is not NAME=PATH"));
        }
        if table.insert(name.clone(), path).is_some() {
            return Err(format!("--adapters name `{name}` given twice"));
        }
        names.push(name);
    }
    if names.is_empty() {
        return Err("--adapters is empty".into());
    }
    let base_cfg = base.clone();
    let load_one = move |name: &str| -> Result<LoraAdapter, String> {
        let path = table
            .get(name)
            .ok_or_else(|| format!("unknown adapter `{name}`"))?;
        let model = load_model(&PathBuf::from(path)).map_err(|e| format!("{path}: {e}"))?;
        let adapter = LoraAdapter::from_model(&model).map_err(|e| format!("{path}: {e}"))?;
        adapter
            .check_compatible(&base_cfg)
            .map_err(|e| format!("adapter `{name}` ({path}): {e}"))?;
        Ok(adapter)
    };
    let max_resident = a.get_num("max-resident-adapters", names.len())?;
    if max_resident == 0 {
        return Err("--max-resident-adapters must be at least 1".into());
    }
    if max_resident >= names.len() {
        let mut resident = Vec::new();
        for name in &names {
            resident.push((name.clone(), load_one(name)?));
        }
        Ok(AdapterRegistry::resident(resident))
    } else {
        Ok(AdapterRegistry::with_loader(
            names,
            max_resident,
            Box::new(load_one),
        ))
    }
}

/// Derives a LoRA adapter checkpoint from a dense base checkpoint:
/// frozen backbone plus seeded random low-rank deltas, written in the
/// same checkpoint format `serve --adapters` loads.
fn cmd_make_adapter(a: &Args) -> Result<(), String> {
    let path = PathBuf::from(a.require("resume")?);
    let out = PathBuf::from(a.require("out")?);
    let model = load_model(&path).map_err(|e| e.to_string())?;
    if model.params.iter().any(|p| p.name.contains(".lora_")) {
        return Err(format!(
            "{} is already a LoRA checkpoint; make-adapter needs a dense base",
            path.display()
        ));
    }
    let rank = a.get_num("rank", 4usize)?;
    let alpha = a.get_num("alpha", 2.0 * rank as f32)?;
    let seed = a.get_num("seed", 0u64)?;
    let scale = a.get_num("delta-scale", 0.02f32)?;
    let mut rng = Rng::seed_from_u64(seed);
    let mut lora = model.to_lora(rank, alpha, &mut rng);
    // `to_lora` zero-initializes lora_b, which would make the adapter a
    // no-op; seed-derived deltas give each tenant distinguishable output.
    let mut delta_rng = Rng::seed_from_u64(seed ^ 0xada9_7e50);
    for p in &mut lora.params {
        if p.name.ends_with(".lora_b") {
            p.value = Matrix::randn_scaled(p.value.rows(), p.value.cols(), scale, &mut delta_rng);
        }
    }
    save_model(&lora, LinearMode::LoRa { rank, alpha }, &out).map_err(|e| e.to_string())?;
    println!(
        "wrote rank-{rank} adapter over {} to {} (seed {seed}, delta scale {scale})",
        model.config().name,
        out.display()
    );
    Ok(())
}

fn cmd_serve(a: &Args) -> Result<(), String> {
    use std::time::Duration;
    apply_threads(a)?;
    apply_numerics(a)?;
    let path = PathBuf::from(a.require("resume")?);
    let model = load_model(&path).map_err(|e| e.to_string())?;
    let sched = apollo_infer::SchedConfig {
        max_active: a.get_num("max-active", 4usize)?,
        queue_cap: a.get_num("queue-cap", 64usize)?,
        prefill_chunk: a.get_num("prefill-chunk", 16usize)?,
        kv_capacity: a.get_num("kv-capacity", 512usize)?,
        prefix_cache_bytes: a.get_num("prefix-cache-mb", 32usize)? * (1 << 20),
    };
    let registry = build_adapter_registry(a, model.config())?;
    let mut serve = apollo_infer::ServeConfig {
        addr: a.get("addr", "127.0.0.1:0"),
        shed_watermark: a.get_num("shed-watermark", sched.queue_cap.saturating_sub(8).max(1))?,
        default_deadline: Duration::from_millis(a.get_num("default-deadline-ms", 10_000u64)?),
        drain_deadline: Duration::from_millis(a.get_num("drain-deadline-ms", 5_000u64)?),
        max_new_tokens_cap: a.get_num("max-new-tokens-cap", 256usize)?,
        ..apollo_infer::ServeConfig::default()
    };
    serve.limits.idle_timeout = Duration::from_millis(a.get_num("idle-timeout-ms", 5_000u64)?);
    serve.limits.header_deadline =
        Duration::from_millis(a.get_num("header-deadline-ms", 2_000u64)?);
    let obs = if a.has("trace-out") {
        Obs::with_trace(&PathBuf::from(a.require("trace-out")?), 1).map_err(|e| e.to_string())?
    } else {
        Obs::enabled(1)
    };
    observe_numerics(&obs);

    let backend: apollo_nn::DecodeBackend = if a.has("int8-decode") {
        if !registry.is_empty() {
            return Err(
                "--adapters needs the exact decode backend: INT8 folds the projection \
                 weights, so there is no base/delta split to apply adapters to"
                    .into(),
            );
        }
        apollo_nn::QuantizedModel::from_model(&model).into()
    } else {
        model.into()
    };
    eprintln!(
        "decode backend {} (numerics {}, simd {})",
        backend.mode_name(),
        apollo_tensor::current_numerics().name(),
        apollo_tensor::simd_tier().name(),
    );
    if !registry.is_empty() {
        eprintln!(
            "serving {} adapters ({} resident): {}",
            registry.len(),
            registry.resident_count(),
            registry.names().join(", ")
        );
    }
    let frontend =
        apollo_infer::Frontend::start_multi(backend, sched, serve, obs.clone(), Arc::new(registry))
            .map_err(|e| format!("bind: {e}"))?;
    let addr = frontend.local_addr();
    eprintln!("serving on {addr}");
    // Publish the resolved address atomically (temp + rename), so a
    // coordinating process never reads a half-written file.
    if a.has("addr-file") {
        let target = PathBuf::from(a.require("addr-file")?);
        let tmp = target.with_extension("tmp");
        std::fs::write(&tmp, format!("{addr}\n")).map_err(|e| e.to_string())?;
        std::fs::rename(&tmp, &target).map_err(|e| e.to_string())?;
    }

    // Run until the stop condition, then drain.
    let run_secs: u64 = a.get_num("run-secs", 0u64)?;
    let shutdown_file = if a.has("shutdown-file") {
        Some(PathBuf::from(a.require("shutdown-file")?))
    } else {
        None
    };
    if run_secs == 0 && shutdown_file.is_none() {
        eprintln!("no --run-secs or --shutdown-file: serving until killed");
    }
    let t0 = std::time::Instant::now();
    loop {
        if run_secs > 0 && t0.elapsed() >= Duration::from_secs(run_secs) {
            break;
        }
        if let Some(f) = &shutdown_file {
            if f.exists() {
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    eprintln!("draining ({} in flight)...", frontend.in_flight());
    let report = frontend.shutdown();
    eprintln!(
        "drained {} of {} in-flight requests in {:.0} ms ({} forced)",
        report.drained, report.in_flight_at_drain, report.wall_ms, report.forced
    );
    for counter in [
        "serve.accepted",
        "serve.shed",
        "serve.timed_out",
        "serve.disconnected",
        "serve.malformed",
        "serve.drained",
        "serve.unknown_adapter",
        "infer.prefix.lookups",
        "infer.prefix.hits",
        "infer.prefix.hit_tokens",
        "infer.prefix.evictions",
        "infer.adapter.load_failed",
    ] {
        eprintln!("  {counter:<24} {}", obs.counter_value(counter));
    }
    obs.flush().map_err(|e| e.to_string())?;
    if report.forced > 0 {
        return Err(format!("{} requests did not drain in time", report.forced));
    }
    Ok(())
}

fn cmd_loadgen(a: &Args) -> Result<(), String> {
    use std::time::Duration;
    let faults = match a.get("faults", "none").as_str() {
        "none" => apollo_infer::FaultMix::none(),
        "default" => apollo_infer::FaultMix::default(),
        other => return Err(format!("unknown fault mix `{other}` (none | default)")),
    };
    let cfg = apollo_infer::LoadConfig {
        addr: a.require("addr")?,
        requests: a.get_num("requests", 50usize)?,
        rate: a.get_num("rate", 50.0f64)?,
        seed: a.get_num("seed", 0u64)?,
        prompt_len: a.get_num("prompt-len", 8usize)?,
        max_new_tokens: a.get_num("max-new-tokens", 8usize)?,
        deadline_ms: a.get_num("deadline-ms", 5_000u64)?,
        stream: a.has("stream"),
        max_retries: a.get_num("max-retries", 3usize)?,
        timeout: Duration::from_millis(a.get_num("timeout-ms", 30_000u64)?),
        faults,
        prefix_reuse: a.get_num("prefix-reuse", 0.0f64)?,
        prefix_len: a.get_num("prefix-len", 0usize)?,
        adapters: a.get_num("adapters", 0usize)?,
        ..apollo_infer::LoadConfig::default()
    };
    if !(0.0..=1.0).contains(&cfg.prefix_reuse) {
        return Err("--prefix-reuse must be in [0, 1]".into());
    }
    if cfg.prefix_reuse > 0.0 && cfg.prefix_len == 0 {
        return Err("--prefix-reuse needs --prefix-len".into());
    }
    let report = apollo_infer::run_loadgen(&cfg)?;
    println!(
        "sent {} | ok {} | shed {} | rejected {} | timed out {} | transport {} | prefixed {}",
        report.sent,
        report.ok,
        report.shed,
        report.rejected,
        report.timed_out,
        report.transport_errors,
        report.prefix_sent
    );
    println!(
        "faults {}/{} behaved | p50 {:.1} ms | p99 {:.1} ms | p99.9 {:.1} ms | goodput {:.1} req/s | shed rate {:.3}",
        report.faults_expected,
        report.faults_injected,
        report.p50_ms,
        report.p99_ms,
        report.p999_ms,
        report.goodput_rps,
        report.shed_rate
    );
    if a.has("out") {
        let json = format!(
            "{{\n  \"sent\": {},\n  \"ok\": {},\n  \"shed\": {},\n  \"rejected\": {},\n  \
             \"timed_out\": {},\n  \"transport_errors\": {},\n  \"faults_injected\": {},\n  \
             \"faults_expected\": {},\n  \"prefix_sent\": {},\n  \"p50_ms\": {},\n  \"p99_ms\": {},\n  \
             \"p999_ms\": {},\n  \"goodput_rps\": {},\n  \"shed_rate\": {},\n  \
             \"wall_ms\": {}\n}}\n",
            report.sent,
            report.ok,
            report.shed,
            report.rejected,
            report.timed_out,
            report.transport_errors,
            report.faults_injected,
            report.faults_expected,
            report.prefix_sent,
            report.p50_ms,
            report.p99_ms,
            report.p999_ms,
            report.goodput_rps,
            report.shed_rate,
            report.wall_ms
        );
        std::fs::write(a.require("out")?, json).map_err(|e| e.to_string())?;
    }
    if a.has("expect-clean") {
        if report.ok == 0 {
            return Err("no request succeeded".into());
        }
        if report.transport_errors > 0 {
            return Err(format!("{} transport errors", report.transport_errors));
        }
        if report.faults_expected != report.faults_injected {
            return Err(format!(
                "{} of {} fault probes saw an unexpected response",
                report.faults_injected - report.faults_expected,
                report.faults_injected
            ));
        }
    }
    Ok(())
}

/// Maximum tolerated per-step drift between the sum of phase times and the
/// recorded total, as a fraction of the total (plus 0.5 ms absolute slack
/// for timer granularity on sub-millisecond steps).
const TRACE_PHASE_TOLERANCE: f32 = 0.05;

fn cmd_search(a: &Args) -> Result<(), String> {
    apply_threads(a)?;
    apply_numerics(a)?;
    let model = model_config(&a.get("model", "test-tiny"))?;
    if model.name.starts_with("llama-") {
        return Err("paper-scale geometries are for `apollo memory`; pick a tiny-* model".into());
    }
    let cfg = SearchConfig {
        model,
        population: a.get_num("population", 4usize)?,
        rounds: a.get_num("rounds", 3usize)?,
        round_steps: a.get_num("round-steps", 20usize)?,
        quantile: a.get_num("quantile", 0.25f32)?,
        seed: a.get_num("seed", 7u64)?,
        threads_per_member: a.get_num("threads-per-member", 1usize)?,
        batch: a.get_num("batch", 4usize)?,
        eval_seqs: a.get_num("eval-seqs", 16usize)?,
        baseline: a.has("baseline"),
    };
    let metrics_every = a.get_num("metrics-every", 1usize)?;
    if metrics_every == 0 {
        return Err("--metrics-every must be >= 1".into());
    }
    let obs = if a.has("trace-out") {
        let path = PathBuf::from(a.require("trace-out")?);
        let obs = Obs::with_trace(&path, metrics_every)
            .map_err(|e| format!("cannot open trace {}: {e}", path.display()))?;
        eprintln!("tracing to {}", path.display());
        obs
    } else if a.has("profile") {
        Obs::enabled(metrics_every)
    } else {
        Obs::disabled()
    };
    observe_numerics(&obs);
    eprintln!(
        "searching {}: population {}, {} rounds x {} steps, quantile {}, seed {}",
        cfg.model.name, cfg.population, cfg.rounds, cfg.round_steps, cfg.quantile, cfg.seed
    );
    let report = run_search(&cfg, &obs)?;
    for r in &report.rounds_log {
        let leader = &r.members[r.best_member];
        println!(
            "round {} step {:>5}: best member {} ppl {:.2} ({})",
            r.round,
            r.step,
            r.best_member,
            r.best_ppl,
            leader.genome.label()
        );
    }
    for l in &report.lineage {
        println!(
            "  round {}: member {} cloned leader {} ({}; {})",
            l.round,
            l.member,
            l.source,
            l.optimizer_state,
            l.changes.join(", ")
        );
    }
    println!(
        "best: member {} ppl {:.2} ({})",
        report.best.member,
        report.best.ppl,
        report.best.genome.label()
    );
    if !report.baseline.is_empty() {
        let best_static = report
            .baseline
            .iter()
            .min_by(|x, y| x.ppl.total_cmp(&y.ppl))
            .expect("baseline is non-empty");
        for b in &report.baseline {
            println!("static: {:<40} ppl {:.2}", b.label, b.ppl);
        }
        println!(
            "evolved {:.2} vs best static {:.2} ({:+.2}%)",
            report.best.ppl,
            best_static.ppl,
            (report.best.ppl / best_static.ppl - 1.0) * 100.0
        );
    }
    if a.has("profile") {
        if let Some(metrics) = obs.metrics() {
            let counters: Vec<(&str, u64)> = metrics.counters().collect();
            if !counters.is_empty() {
                println!("\ncounters:");
                for (name, value) in counters {
                    println!("  {name:<24} {value}");
                }
            }
        }
    }
    if a.has("out") {
        let path = PathBuf::from(a.require("out")?);
        let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
        std::fs::write(&path, json + "\n")
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        eprintln!("frontier written to {}", path.display());
    }
    Ok(())
}

fn cmd_trace_check(a: &Args) -> Result<(), String> {
    let path = PathBuf::from(a.require("trace")?);
    let events = read_trace(&path).map_err(|e| e.to_string())?;
    if events.is_empty() {
        return Err(format!("{}: trace is empty", path.display()));
    }
    let mut kinds: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    let mut steps_checked = 0usize;
    for (idx, event) in events.iter().enumerate() {
        *kinds.entry(event.kind()).or_default() += 1;
        if let TraceEvent::StepPhases {
            step,
            batch_ms,
            forward_ms,
            backward_ms,
            clip_ms,
            optimizer_ms,
            checkpoint_ms,
            eval_ms,
            total_ms,
        } = event
        {
            let parts = batch_ms
                + forward_ms
                + backward_ms
                + clip_ms
                + optimizer_ms
                + checkpoint_ms
                + eval_ms;
            if !parts.is_finite() || !total_ms.is_finite() {
                return Err(format!(
                    "line {}: step {step} has non-finite phase times",
                    idx + 1
                ));
            }
            if parts > total_ms * (1.0 + TRACE_PHASE_TOLERANCE) + 0.5 {
                return Err(format!(
                    "line {}: step {step} phase sum {parts:.3} ms exceeds step total {total_ms:.3} ms",
                    idx + 1
                ));
            }
            steps_checked += 1;
        }
    }
    if steps_checked == 0 {
        // Serving / inference / search traces carry no training steps; any
        // of their structural events make the trace checkable. A trace
        // with none of them is vacuous and stays an error.
        let structural = events.iter().any(|e| {
            matches!(
                e,
                TraceEvent::InferStep { .. }
                    | TraceEvent::InferRequest { .. }
                    | TraceEvent::ServeRequest { .. }
                    | TraceEvent::ServeDrain { .. }
                    | TraceEvent::SearchRound { .. }
                    | TraceEvent::MemberEvent { .. }
            )
        });
        if !structural {
            return Err(format!(
                "{}: no StepPhases, infer, serve, or search events",
                path.display()
            ));
        }
    }
    println!(
        "{}: {} events OK, {} step phase breakdowns consistent",
        path.display(),
        events.len(),
        steps_checked
    );
    for (kind, count) in kinds {
        println!("  {kind:<18} {count}");
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "help" || argv[0] == "--help" {
        println!("{USAGE}");
        return Ok(());
    }
    let a = Args::parse(&argv)?;
    match a.command.as_str() {
        "pretrain" => cmd_pretrain(&a),
        "finetune" => cmd_finetune(&a),
        "eval" => cmd_eval(&a),
        "generate" => cmd_generate(&a),
        "memory" => cmd_memory(&a),
        "serve" => cmd_serve(&a),
        "loadgen" => cmd_loadgen(&a),
        "make-adapter" => cmd_make_adapter(&a),
        "search" => cmd_search(&a),
        "trace-check" => cmd_trace_check(&a),
        "list" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand `{other}`\n\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(argv: &[&str]) -> Args {
        let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        Args::parse(&argv).unwrap()
    }

    #[test]
    fn threads_flag_overrides_env_fallback() {
        // The override is thread-local, so this test cannot race others.
        apollo_tensor::set_thread_override(None);
        let without = apollo_tensor::current_threads();
        apply_threads(&parse(&["pretrain"])).unwrap();
        assert_eq!(
            apollo_tensor::current_threads(),
            without,
            "no flag must leave the env/auto fallback in place"
        );
        apply_threads(&parse(&["pretrain", "--threads", "3"])).unwrap();
        assert_eq!(apollo_tensor::current_threads(), 3);
        apollo_tensor::set_thread_override(None);
    }

    #[test]
    fn threads_flag_rejects_zero_and_garbage() {
        assert!(apply_threads(&parse(&["pretrain", "--threads", "0"])).is_err());
        assert!(apply_threads(&parse(&["pretrain", "--threads", "lots"])).is_err());
    }
}
